#!/bin/sh
# Minimal CI: build everything, run the full test suite, then a
# fixed-seed differential-fuzz smoke: a clean campaign must find no
# crashes, and a campaign with a planted miscompile must catch it
# (--expect-crash inverts the exit code).  Both smokes run with
# --jobs 4 — reports are byte-identical to sequential, so this also
# exercises the domain pool.  Finally a timed bench subset guards the
# evaluation harness against performance regressions.
set -eu
cd "$(dirname "$0")"
dune build @all
dune runtest
corpus="$(mktemp -d)"
trap 'rm -rf "$corpus"' EXIT
dune exec bin/bitspecc.exe -- fuzz --seed 1 --trials 25 --corpus "$corpus" \
  --jobs 4
dune exec bin/bitspecc.exe -- fuzz --seed 1 --trials 25 --corpus "$corpus" \
  --jobs 4 --fault miscompile:f --expect-crash

# Timed bench subset: fig8 + table2 (the regression-anchored sections).
# Recorded single-job baseline on the reference container: ~6800 ms.
# Fail if the subset takes more than twice that — a slowdown of that
# size means a fast path or the compile cache broke.
bench_baseline_ms=6800
t0=$(date +%s%3N)
dune exec bench/main.exe -- --jobs 1 fig8 table2 > /dev/null
t1=$(date +%s%3N)
elapsed=$((t1 - t0))
echo "bench subset (fig8 table2): ${elapsed} ms (baseline ${bench_baseline_ms} ms)"
if [ "$elapsed" -gt $((2 * bench_baseline_ms)) ]; then
  echo "bench subset regression: ${elapsed} ms > 2x baseline" >&2
  exit 1
fi
