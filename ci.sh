#!/bin/sh
# Minimal CI: build everything, run the full test suite, then a
# fixed-seed differential-fuzz smoke: a clean campaign must find no
# crashes, and a campaign with a planted miscompile must catch it
# (--expect-crash inverts the exit code).  Both smokes run with
# --jobs 4 — reports are byte-identical to sequential, so this also
# exercises the domain pool.  Finally a timed bench subset guards the
# evaluation harness against performance regressions.
set -eu
cd "$(dirname "$0")"
dune build @all
dune runtest
corpus="$(mktemp -d)"
trap 'rm -rf "$corpus"' EXIT
dune exec bin/bitspecc.exe -- fuzz --seed 1 --trials 25 --corpus "$corpus" \
  --jobs 4
dune exec bin/bitspecc.exe -- fuzz --seed 1 --trials 25 --corpus "$corpus" \
  --jobs 4 --fault miscompile:f --expect-crash

# Observability smoke: a traced compile must produce well-formed Chrome
# trace JSON with balanced begin/end events, the remark stream must
# contain the known CRC32 squeeze decisions and be byte-identical at
# --jobs 1 and --jobs 4, and the misspec histogram total must match the
# simulator's counter.
obs="$(mktemp -d)"
trap 'rm -rf "$corpus" "$obs"' EXIT
dune exec bin/bitspecc.exe -- bench CRC32 --trace "$obs/trace.json" \
  > /dev/null
dune exec bin/bitspecc.exe -- bench CRC32 --remarks --jobs 1 > "$obs/j1.out"
dune exec bin/bitspecc.exe -- bench CRC32 --remarks --jobs 4 > "$obs/j4.out"
b=$(grep -c '"ph":"B"' "$obs/trace.json")
e=$(grep -c '"ph":"E"' "$obs/trace.json")
if [ "$b" -eq 0 ] || [ "$b" -ne "$e" ]; then
  echo "trace smoke: unbalanced events (B=$b E=$e)" >&2
  exit 1
fi
grep -q '"traceEvents"' "$obs/trace.json"
grep -q 'squeezed .*: i32 -> i8 at crc_' "$obs/j1.out"
if ! cmp -s "$obs/j1.out" "$obs/j4.out"; then
  echo "remark smoke: --jobs 1 and --jobs 4 output differ" >&2
  diff "$obs/j1.out" "$obs/j4.out" >&2 || true
  exit 1
fi
dune exec bin/bitspecc.exe -- bench CRC32 --why-misspec \
  | awk '/^misspecs/ { c = $3 } /^misspeculation sites/ { gsub(/[():]/, "", $4); t = $4 }
         END { if (c == "" || t != c) { print "misspec smoke: histogram total " t " != counter " c; exit 1 } }'
echo "observability smoke: OK (trace $b/$e events, remarks jobs-invariant)"

# Intermittent-power smoke: a seeded harvest campaign is deterministic
# (pinned mean restore count) and byte-identical at --jobs 1 vs --jobs 4;
# a power-model injection campaign replays identically run to run; and
# --strict on a clean campaign exits 0.
pw="$(mktemp -d)"
trap 'rm -rf "$corpus" "$obs" "$pw"' EXIT
dune exec bin/bitspecc.exe -- harvest bitcount --trials 10 --dist exp:2000 \
  --seed 3 --jobs 1 > "$pw/h1.out"
dune exec bin/bitspecc.exe -- harvest bitcount --trials 10 --dist exp:2000 \
  --seed 3 --jobs 4 > "$pw/h4.out"
grep -q 'means per trial: 509.1 restores, 2051.0 checkpoints' "$pw/h1.out"
grep -q '^restored  *10$' "$pw/h1.out"
if ! cmp -s "$pw/h1.out" "$pw/h4.out"; then
  echo "harvest smoke: --jobs 1 and --jobs 4 output differ" >&2
  diff "$pw/h1.out" "$pw/h4.out" >&2 || true
  exit 1
fi
dune exec bin/bitspecc.exe -- inject bitcount --model power --strict \
  --trials 8 --seed 5 --dist periodic:1000 > "$pw/p1.out"
dune exec bin/bitspecc.exe -- inject bitcount --model power --strict \
  --trials 8 --seed 5 --dist periodic:1000 > "$pw/p2.out"
if ! cmp -s "$pw/p1.out" "$pw/p2.out"; then
  echo "inject power smoke: runs differ" >&2
  exit 1
fi
grep -q '^restored  *8$' "$pw/p1.out"
# the power reproducers replay into their recorded buckets
dune exec bin/bitspecc.exe -- reduce --check \
  test/corpus/power-restored-hotpc40-seed7.mc > /dev/null
dune exec bin/bitspecc.exe -- reduce --check \
  test/corpus/power-reexec-livelock-hotpc40-seed7.mc > /dev/null
echo "intermittent-power smoke: OK (harvest jobs-invariant, inject deterministic)"

# Engine-differencing smoke: the three dispatch engines (classic /
# threaded / jit) must be observably identical, so a fixed-seed fuzz
# campaign run under classic at --jobs 1 and under jit at --jobs 4 must
# produce byte-identical reports, and every corpus reproducer must
# replay into its recorded bucket under the trace-JIT.
eng="$(mktemp -d)"
trap 'rm -rf "$corpus" "$obs" "$pw" "$eng"' EXIT
dune exec bin/bitspecc.exe -- fuzz --seed 2 --trials 15 --corpus "$eng" \
  --jobs 1 --engine classic > "$eng/classic.out"
dune exec bin/bitspecc.exe -- fuzz --seed 2 --trials 15 --corpus "$eng" \
  --jobs 4 --engine jit > "$eng/jit.out"
if ! cmp -s "$eng/classic.out" "$eng/jit.out"; then
  echo "engine smoke: classic/jobs-1 and jit/jobs-4 reports differ" >&2
  diff "$eng/classic.out" "$eng/jit.out" >&2 || true
  exit 1
fi
for f in test/corpus/*.mc; do
  dune exec bin/bitspecc.exe -- reduce --check --engine jit "$f" > /dev/null
done
echo "engine smoke: OK (fuzz report engine- and jobs-invariant, corpus replays under jit)"

# Interpreter-engine smoke: the closure-compiled interpreter must be
# observably identical to the tree-walker through the whole fuzz
# pipeline — a fixed-seed campaign under each interp engine produces
# byte-identical reports (at different job counts, for good measure) —
# and every corpus reproducer must replay into its recorded bucket with
# the compiled engine serving as the differential reference.
ieng="$(mktemp -d)"
trap 'rm -rf "$corpus" "$obs" "$pw" "$eng" "$ieng"' EXIT
dune exec bin/bitspecc.exe -- fuzz --seed 2 --trials 15 --corpus "$ieng" \
  --jobs 1 --interp-engine tree > "$ieng/tree.out"
dune exec bin/bitspecc.exe -- fuzz --seed 2 --trials 15 --corpus "$ieng" \
  --jobs 4 --interp-engine compiled > "$ieng/compiled.out"
if ! cmp -s "$ieng/tree.out" "$ieng/compiled.out"; then
  echo "interp-engine smoke: tree and compiled fuzz reports differ" >&2
  diff "$ieng/tree.out" "$ieng/compiled.out" >&2 || true
  exit 1
fi
for f in test/corpus/*.mc; do
  dune exec bin/bitspecc.exe -- reduce --check --interp-engine compiled "$f" \
    > /dev/null
done
echo "interp-engine smoke: OK (fuzz report interp-engine-invariant, corpus replays under compiled)"

# Compile-service smoke: start the daemon with a persistent cache, run
# the same seeded zipfian burst twice (the second pass must be served
# almost entirely from the cache layers), kill the server dead
# mid-burst, restart it on the same cache directory and verify the
# store reopened clean (no quarantined entries), then shut down
# gracefully.  Uses the built binary directly: the daemon must not
# hold the dune lock while the client invocations run.
srv="$(mktemp -d)"
serve_pid=
trap 'rm -rf "$corpus" "$obs" "$pw" "$eng" "$srv"; [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
BS=./_build/default/bin/bitspecc.exe
sock="$srv/bs.sock"
"$BS" serve --socket "$sock" --cache-dir "$srv/cache" --jobs 4 \
  --deadline-ms 30000 > "$srv/serve.log" 2>&1 &
serve_pid=$!
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "serve smoke: socket never appeared" >&2; exit 1; }
  sleep 0.1
done
"$BS" client --socket "$sock" ping > /dev/null
"$BS" loadgen --socket "$sock" --seed 7 --requests 120 --clients 4 \
  --crash-every 11 --log "$srv/log-pass1.txt" > "$srv/pass1.out"
"$BS" loadgen --socket "$sock" --seed 7 --requests 120 --clients 4 \
  --crash-every 11 --log "$srv/log-pass2.txt" \
  --out BENCH_pr8.json > "$srv/pass2.out"
# the canonical log is independent of scheduling: same seed, same log
if ! cmp -s "$srv/log-pass1.txt" "$srv/log-pass2.txt"; then
  echo "serve smoke: canonical logs of identical passes differ" >&2
  diff "$srv/log-pass1.txt" "$srv/log-pass2.txt" >&2 || true
  exit 1
fi
# second pass over a warm cache: >= 90% of successful compiles cached
hit=$(awk -F'cache hit rate = ' '/cache hit rate/ { print $2 }' "$srv/pass2.out")
awk "BEGIN { exit !($hit >= 0.90) }" || {
  echo "serve smoke: warm-cache hit rate $hit < 0.90" >&2
  exit 1
}
# kill the server dead mid-burst: clients may fail, the store must not
"$BS" loadgen --socket "$sock" --seed 8 --requests 200 --clients 4 \
  > /dev/null 2>&1 &
burst_pid=$!
sleep 0.5
kill -9 "$serve_pid" 2>/dev/null || true
wait "$burst_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
# kill -9 leaves a stale socket file; clear it so the wait loop below
# sees the NEW server's socket, not the corpse's
rm -f "$sock"
# restart on the same cache directory: it must reopen clean
"$BS" serve --socket "$sock" --cache-dir "$srv/cache" --jobs 2 \
  > "$srv/serve2.log" 2>&1 &
serve_pid=$!
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "serve smoke: no socket after restart" >&2; exit 1; }
  sleep 0.1
done
"$BS" client --socket "$sock" bench CRC32 > /dev/null
"$BS" client --socket "$sock" stats > "$srv/stats.json"
grep -q '"cache_quarantined":0' "$srv/stats.json" || {
  echo "serve smoke: quarantined entries after kill -9 + restart" >&2
  cat "$srv/stats.json" >&2
  exit 1
}
"$BS" client --socket "$sock" shutdown > /dev/null
wait "$serve_pid" 2>/dev/null || true
serve_pid=
# the loadgen summary must carry the latency/hit-rate guards
grep -q '"p99_ms"' BENCH_pr8.json || {
  echo "serve smoke: BENCH_pr8.json is missing p99_ms" >&2
  exit 1
}
grep -q '"cache_hit_rate"' BENCH_pr8.json || {
  echo "serve smoke: BENCH_pr8.json is missing cache_hit_rate" >&2
  exit 1
}
echo "serve smoke: OK (warm hit rate $hit, kill -9 recovery clean)"

# Telemetry smoke: a fresh server must agree with the load generator
# about every latency it reports — loadgen --check-server compares the
# request count exactly and p50/p99 to within one histogram bucket,
# recording both views in BENCH_pr10.json — answer health ok, dump a
# Prometheus exposition on SIGUSR1 and again on graceful shutdown, and
# produce byte-identical deterministic counter/gauge snapshot sections
# for the same seeded mix at --jobs 1 and --jobs 4.
tel="$(mktemp -d)"
trap 'rm -rf "$corpus" "$obs" "$pw" "$eng" "$ieng" "$srv" "$tel"; [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
tsock="$tel/bs.sock"
"$BS" serve --socket "$tsock" --cache-dir "$tel/cache" --jobs 4 \
  --metrics-out "$tel/metrics.prom" > "$tel/serve.log" 2>&1 &
serve_pid=$!
i=0
while [ ! -S "$tsock" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "telemetry smoke: socket never appeared" >&2; exit 1; }
  sleep 0.1
done
"$BS" loadgen --socket "$tsock" --seed 9 --requests 80 --clients 4 \
  --crash-every 13 --check-server --out BENCH_pr10.json > "$tel/load.out"
grep -q 'server count   = .* \[exact\]' "$tel/load.out" || {
  echo "telemetry smoke: server/client request counts disagree" >&2
  cat "$tel/load.out" >&2
  exit 1
}
grep -q 'server p50/p99 = .* \[within bucket\]' "$tel/load.out" || {
  echo "telemetry smoke: server/client percentiles disagree" >&2
  cat "$tel/load.out" >&2
  exit 1
}
"$BS" client --socket "$tsock" health > "$tel/health.json"
grep -q '"ok":true' "$tel/health.json" || {
  echo "telemetry smoke: health not ok after a clean burst" >&2
  cat "$tel/health.json" >&2
  exit 1
}
# a live Prometheus snapshot on SIGUSR1, and another on shutdown
kill -USR1 "$serve_pid"
i=0
while [ ! -s "$tel/metrics.prom" ]; do
  i=$((i + 1))
  [ "$i" -gt 50 ] && { echo "telemetry smoke: no exposition after SIGUSR1" >&2; exit 1; }
  sleep 0.1
done
grep -q '^# TYPE serve_request_ms histogram$' "$tel/metrics.prom"
rm -f "$tel/metrics.prom"
"$BS" client --socket "$tsock" shutdown > /dev/null
wait "$serve_pid" 2>/dev/null || true
serve_pid=
grep -q '^serve_requests_total{outcome="ok"} [1-9]' "$tel/metrics.prom" || {
  echo "telemetry smoke: shutdown exposition missing request counters" >&2
  exit 1
}
# BENCH_pr10.json carries both latency views and the passed cross-check
for key in '"client_p99_ms"' '"server_p99_ms"' '"count_ok":true' '"ok":true'; do
  grep -q "$key" BENCH_pr10.json || {
    echo "telemetry smoke: BENCH_pr10.json is missing $key" >&2
    exit 1
  }
done
# deterministic sections are jobs-invariant: same seeded mix against a
# 1-worker and a 4-worker server, byte-identical counters + gauges
for j in 1 4; do
  "$BS" serve --socket "$tel/s$j.sock" --jobs "$j" > "$tel/serve$j.log" 2>&1 &
  serve_pid=$!
  i=0
  while [ ! -S "$tel/s$j.sock" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "telemetry smoke: no socket (--jobs $j)" >&2; exit 1; }
    sleep 0.1
  done
  "$BS" loadgen --socket "$tel/s$j.sock" --seed 11 --requests 60 --clients 4 \
    --crash-every 9 > /dev/null
  sleep 0.3   # let workers finish post-response bookkeeping (gauges -> 0)
  "$BS" client --socket "$tel/s$j.sock" stats > "$tel/stats$j.json"
  "$BS" client --socket "$tel/s$j.sock" shutdown > /dev/null
  wait "$serve_pid" 2>/dev/null || true
  serve_pid=
  grep -o '"counters":\[[^]]*\]' "$tel/stats$j.json" > "$tel/det$j.txt"
  grep -o '"gauges":\[[^]]*\]' "$tel/stats$j.json" >> "$tel/det$j.txt"
done
if ! cmp -s "$tel/det1.txt" "$tel/det4.txt"; then
  echo "telemetry smoke: deterministic sections differ between --jobs 1 and --jobs 4" >&2
  diff "$tel/det1.txt" "$tel/det4.txt" >&2 || true
  exit 1
fi
echo "telemetry smoke: OK (cross-check exact, health ok, counters jobs-invariant)"

# Timed bench subset: fig8 + table2 (the regression-anchored sections).
# Recorded single-job baseline on the reference container: ~3400 ms
# with the trace-JIT machine engine and the closure-compiled
# interpreter.  Fail if the subset takes more than twice that — a
# slowdown of that size means a fast path, the compile cache, the JIT
# or the compiled interpreter broke.
bench_baseline_ms=3400
t0=$(date +%s%3N)
dune exec bench/main.exe -- --jobs 1 fig8 table2 > /dev/null
t1=$(date +%s%3N)
elapsed=$((t1 - t0))
echo "bench subset (fig8 table2): ${elapsed} ms (baseline ${bench_baseline_ms} ms)"
if [ "$elapsed" -gt $((2 * bench_baseline_ms)) ]; then
  echo "bench subset regression: ${elapsed} ms > 2x baseline" >&2
  exit 1
fi

# The bench run above rewrote BENCH_pr9.json: it must report both host
# execution rates (machine simulator and IR interpreter), and the two
# spans the engines exist for must not regress past twice their
# recorded single-job baselines (~1.7 s simulate, ~0.3 s profile on the
# reference container — the profile phase runs the closure-compiled
# interpreter over the memoised training runs).
grep -q '"simulated_mips"' BENCH_pr9.json || {
  echo "bench guard: BENCH_pr9.json is missing simulated_mips" >&2
  exit 1
}
grep -q '"interp_mips"' BENCH_pr9.json || {
  echo "bench guard: BENCH_pr9.json is missing interp_mips" >&2
  exit 1
}
simulate_baseline_ms=1700
simulate_ms=$(awk -F'"seconds": ' '/"experiment:simulate"/ \
  { split($2, a, ","); printf "%d", a[1] * 1000 }' BENCH_pr9.json)
echo "experiment:simulate span: ${simulate_ms} ms (baseline ${simulate_baseline_ms} ms)"
if [ -z "$simulate_ms" ] || [ "$simulate_ms" -gt $((2 * simulate_baseline_ms)) ]; then
  echo "bench guard: simulate span ${simulate_ms:-missing} ms > 2x baseline" >&2
  exit 1
fi
profile_baseline_ms=300
profile_ms=$(awk -F'"seconds": ' '/"name": "profile"/ \
  { split($2, a, ","); printf "%d", a[1] * 1000 }' BENCH_pr9.json)
echo "profile span: ${profile_ms} ms (baseline ${profile_baseline_ms} ms)"
if [ -z "$profile_ms" ] || [ "$profile_ms" -gt $((2 * profile_baseline_ms)) ]; then
  echo "bench guard: profile span ${profile_ms:-missing} ms > 2x baseline" >&2
  exit 1
fi
