#!/bin/sh
# Minimal CI: build everything, run the full test suite, then a
# fixed-seed differential-fuzz smoke: a clean campaign must find no
# crashes, and a campaign with a planted miscompile must catch it
# (--expect-crash inverts the exit code).
set -eu
cd "$(dirname "$0")"
dune build @all
dune runtest
corpus="$(mktemp -d)"
trap 'rm -rf "$corpus"' EXIT
dune exec bin/bitspecc.exe -- fuzz --seed 1 --trials 25 --corpus "$corpus"
dune exec bin/bitspecc.exe -- fuzz --seed 1 --trials 25 --corpus "$corpus" \
  --fault miscompile:f --expect-crash
