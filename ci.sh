#!/bin/sh
# Minimal CI: build everything, run the full test suite.
set -eu
cd "$(dirname "$0")"
dune build @all
dune runtest
