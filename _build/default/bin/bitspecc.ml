(* bitspecc — the BITSPEC command-line driver.

   Subcommands:
     compile   compile a MiniC file, print IR / MIR / disassembly
     run       compile and simulate, print result and counters
     bench     run a named built-in workload under a configuration
     list      list built-in workloads

   Examples:
     bitspecc compile kernel.mc --emit-ir
     bitspecc run kernel.mc --entry f --args 10,20 --arch bitspec
     bitspecc bench rijndael --arch bitspec --heuristic max *)

open Cmdliner
open Bitspec
open Bs_workloads
open Bs_interp
open Bs_energy

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let arch_of_string = function
  | "baseline" -> Driver.Baseline
  | "bitspec" -> Driver.Bitspec_arch
  | "thumb" -> Driver.Thumb
  | s -> failwith ("unknown architecture " ^ s ^ " (baseline|bitspec|thumb)")

let heuristic_of_string = function
  | "max" -> Profile.Hmax
  | "avg" -> Profile.Havg
  | "min" -> Profile.Hmin
  | s -> failwith ("unknown heuristic " ^ s ^ " (max|avg|min)")

let config_of ~arch ~heuristic ~no_expander =
  let base =
    match arch_of_string arch with
    | Driver.Baseline -> Driver.baseline_config
    | Driver.Bitspec_arch -> Driver.bitspec_config
    | Driver.Thumb -> Driver.thumb_config
  in
  let base = { base with heuristic = heuristic_of_string heuristic } in
  if no_expander then { base with expander = Expander.disabled } else base

let parse_args s =
  if s = "" then []
  else List.map Int64.of_string (String.split_on_char ',' s)

(* --- compile ----------------------------------------------------------- *)

let compile_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let arch = Arg.(value & opt string "bitspec" & info [ "arch" ]) in
  let heuristic = Arg.(value & opt string "max" & info [ "heuristic" ]) in
  let emit_ir = Arg.(value & flag & info [ "emit-ir" ] ~doc:"print SIR") in
  let emit_asm = Arg.(value & flag & info [ "emit-asm" ] ~doc:"print disassembly") in
  let entry = Arg.(value & opt string "run" & info [ "entry" ]) in
  let train = Arg.(value & opt string "" & info [ "train" ] ~doc:"profiling args, comma-separated") in
  let no_expander = Arg.(value & flag & info [ "no-expander" ]) in
  let action file arch heuristic emit_ir emit_asm entry train no_expander =
    let source = read_file file in
    let config = config_of ~arch ~heuristic ~no_expander in
    let c =
      Driver.compile ~config ~source ~train:[ (entry, parse_args train) ] ()
    in
    if emit_ir then print_string (Bs_ir.Printer.module_str c.Driver.ir);
    if emit_asm then print_string (Bs_backend.Asm.disassemble c.Driver.program);
    if not (emit_ir || emit_asm) then
      Printf.printf "compiled %s: %d instructions, Δ = %d\n" file
        (Array.length c.Driver.program.Bs_backend.Asm.code)
        c.Driver.program.Bs_backend.Asm.delta
  in
  Cmd.v (Cmd.info "compile" ~doc:"compile a MiniC file")
    Term.(const action $ file $ arch $ heuristic $ emit_ir $ emit_asm $ entry
          $ train $ no_expander)

(* --- run --------------------------------------------------------------- *)

let print_metrics (m : Experiment.metrics) =
  Printf.printf "result        = %Ld\n" m.Experiment.checksum;
  Printf.printf "instructions  = %d\n" m.Experiment.instrs;
  Printf.printf "cycles        = %d\n" m.Experiment.cycles;
  Printf.printf "misspecs      = %d\n" m.Experiment.misspecs;
  Printf.printf "energy        = %.1f (alu %.1f, regfile %.1f, D$ %.1f, I$ %.1f, pipe %.1f)\n"
    m.Experiment.total_energy m.Experiment.energy.Energy.alu
    m.Experiment.energy.Energy.regfile m.Experiment.energy.Energy.dcache
    m.Experiment.energy.Energy.icache m.Experiment.energy.Energy.pipeline;
  Printf.printf "EPI           = %.3f\n" m.Experiment.epi;
  Printf.printf "reg accesses  = %d x 32-bit, %d x 8-bit\n"
    m.Experiment.reg_accesses_32 m.Experiment.reg_accesses_8;
  Printf.printf "spill traffic = %d loads, %d stores, %d copies\n"
    m.Experiment.spill_loads m.Experiment.spill_stores m.Experiment.copies

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let arch = Arg.(value & opt string "bitspec" & info [ "arch" ]) in
  let heuristic = Arg.(value & opt string "max" & info [ "heuristic" ]) in
  let entry = Arg.(value & opt string "run" & info [ "entry" ]) in
  let args = Arg.(value & opt string "" & info [ "args" ]) in
  let train = Arg.(value & opt string "" & info [ "train" ]) in
  let no_expander = Arg.(value & flag & info [ "no-expander" ]) in
  let action file arch heuristic entry args train no_expander =
    let source = read_file file in
    let config = config_of ~arch ~heuristic ~no_expander in
    let train_args =
      if train = "" then parse_args args else parse_args train
    in
    let c = Driver.compile ~config ~source ~train:[ (entry, train_args) ] () in
    let r = Driver.run_machine c ~entry ~args:(parse_args args) in
    print_metrics (Experiment.metrics_of_run r)
  in
  Cmd.v (Cmd.info "run" ~doc:"compile and simulate a MiniC file")
    Term.(const action $ file $ arch $ heuristic $ entry $ args $ train
          $ no_expander)

(* --- bench ------------------------------------------------------------- *)

let bench_cmd =
  let wname = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  let arch = Arg.(value & opt string "bitspec" & info [ "arch" ]) in
  let heuristic = Arg.(value & opt string "max" & info [ "heuristic" ]) in
  let no_expander = Arg.(value & flag & info [ "no-expander" ]) in
  let relative = Arg.(value & flag & info [ "relative" ] ~doc:"also print values relative to BASELINE") in
  let action wname arch heuristic no_expander relative =
    let w = Registry.find wname in
    let config = config_of ~arch ~heuristic ~no_expander in
    let m = Experiment.run config w in
    print_metrics m;
    let expect = Experiment.reference_checksum w in
    Printf.printf "reference     = %Ld (%s)\n" expect
      (if expect = m.Experiment.checksum then "MATCH" else "MISMATCH");
    if relative then begin
      let b = Experiment.run Driver.baseline_config w in
      Printf.printf "vs BASELINE   : energy %.3f, instrs %.3f, EPI %.3f\n"
        (m.Experiment.total_energy /. b.Experiment.total_energy)
        (float_of_int m.Experiment.instrs /. float_of_int b.Experiment.instrs)
        (m.Experiment.epi /. b.Experiment.epi)
    end
  in
  Cmd.v (Cmd.info "bench" ~doc:"run a built-in workload")
    Term.(const action $ wname $ arch $ heuristic $ no_expander $ relative)

(* --- list -------------------------------------------------------------- *)

let list_cmd =
  let action () =
    List.iter
      (fun (w : Workload.t) ->
        Printf.printf "%-18s %s\n" w.name w.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"list built-in workloads") Term.(const action $ const ())

let () =
  let doc = "the BITSPEC compiler and architecture simulator" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "bitspecc" ~doc)
          [ compile_cmd; run_cmd; bench_cmd; list_cmd ]))
