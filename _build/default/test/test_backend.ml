open Bs_interp
open Bs_sim
open Bitspec

(* Differential tests of the whole back-end + machine model: for each
   program and input, the machine result must equal the reference
   interpreter's, on both architectures, with and without squeezing. *)


let machine_result ?setup c ~entry ~args =
  let r = Driver.run_machine ?setup c ~entry ~args in
  r.Machine.r0

let check_program ?(setup : (Memimage.t -> unit) option) ~name src ~entry
    ~train ~tests () =
  let base =
    Driver.compile ~config:Driver.baseline_config ~source:src
      ~train:[ (entry, train) ] ()
  in
  let setup_gen = Option.map (fun s _m -> s) setup in
  let bspec =
    Driver.compile ~config:Driver.bitspec_config ~source:src ?setup:setup_gen
      ~train:[ (entry, train) ] ()
  in
  List.iter
    (fun args ->
      let expect =
        match (Driver.run_reference ?setup base ~entry ~args).Interp.ret with
        | Some v -> Int64.logand v 0xFFFFFFFFL
        | None -> 0L
      in
      let got_base = machine_result ?setup base ~entry ~args in
      let got_spec = machine_result ?setup bspec ~entry ~args in
      let tag a =
        Printf.sprintf "%s(%s)" name
          (String.concat "," (List.map Int64.to_string a))
      in
      Alcotest.(check int64) (tag args ^ " baseline") expect got_base;
      Alcotest.(check int64) (tag args ^ " bitspec") expect got_spec)
    tests;
  (base, bspec)

let test_minimal () =
  ignore
    (check_program ~name:"const" "u32 f() { return 42; }" ~entry:"f"
       ~train:[] ~tests:[ [] ] ())

let test_arith_machine () =
  ignore
    (check_program ~name:"arith"
       "u32 f(u32 a, u32 b) { return (a + b) * 3 - a / (b + 1) + (a % 7); }"
       ~entry:"f" ~train:[ 100L; 9L ]
       ~tests:[ [ 0L; 0L ]; [ 100L; 9L ]; [ 123456L; 789L ]; [ 0xFFFFFFFFL; 2L ] ]
       ())

let test_signed_machine () =
  ignore
    (check_program ~name:"signed"
       "i32 f(i32 a, i32 b) { if (a < b) return a / b; return (a - 2 * b) >> 2; }"
       ~entry:"f" ~train:[ 10L; 3L ]
       ~tests:[ [ 10L; 3L ]; [ 0xFFFFFFF6L; 3L ]; [ 5L; 0xFFFFFFFEL ] ]
       ())

let test_loop_machine () =
  ignore
    (check_program ~name:"loop"
       "u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += i * i; return s; }"
       ~entry:"f" ~train:[ 20L ]
       ~tests:[ [ 0L ]; [ 1L ]; [ 20L ]; [ 300L ] ] ())

let test_memory_machine () =
  ignore
    (check_program ~name:"memory"
       "u8 buf[128];\n\
        u16 half[32];\n\
        u32 f(u32 n) {\n\
        for (u32 i = 0; i < n; i += 1) buf[i] = (u8)(i * 3 + 1);\n\
        for (u32 i = 0; i < n / 4; i += 1) half[i] = (u16)(i * 1000);\n\
        u32 s = 0;\n\
        for (u32 i = 0; i < n; i += 1) s += buf[i];\n\
        for (u32 i = 0; i < n / 4; i += 1) s += half[i];\n\
        return s; }"
       ~entry:"f" ~train:[ 64L ]
       ~tests:[ [ 0L ]; [ 16L ]; [ 128L ] ] ())

let test_calls_machine () =
  ignore
    (check_program ~name:"calls"
       "u32 sq(u32 x) { return x * x; }\n\
        u32 tri(u32 a, u32 b, u32 c) { return sq(a) + sq(b) + sq(c); }\n\
        u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += tri(i, i+1, i+2); return s; }"
       ~entry:"f" ~train:[ 10L ]
       ~tests:[ [ 0L ]; [ 10L ]; [ 50L ] ] ())

let test_recursion_machine () =
  ignore
    (check_program ~name:"recursion"
       "u32 fib(u32 n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
        u32 f(u32 n) { return fib(n); }"
       ~entry:"f" ~train:[ 10L ]
       ~tests:[ [ 0L ]; [ 1L ]; [ 15L ] ] ())

let test_misspec_machine () =
  (* The do-while example: machine must misspeculate past 255 and still
     compute the right answer via skeleton -> handler -> CFG_orig. *)
  let src =
    "u32 f(u32 lim) { u32 x = 0; do { x += 1; } while (x <= lim); return x; }"
  in
  let bspec =
    Driver.compile ~config:Driver.bitspec_config ~source:src
      ~train:[ ("f", [ 100L ]) ] ()
  in
  let r_small = Driver.run_machine bspec ~entry:"f" ~args:[ 50L ] in
  Alcotest.(check int64) "small" 51L r_small.Machine.r0;
  Alcotest.(check int) "no misspec small" 0 r_small.Machine.ctr.Counters.misspecs;
  let r_big = Driver.run_machine bspec ~entry:"f" ~args:[ 400L ] in
  Alcotest.(check int64) "big" 401L r_big.Machine.r0;
  Alcotest.(check bool) "misspeculated" true
    (r_big.Machine.ctr.Counters.misspecs > 0);
  (* delta must be positive and skeleton slots populated *)
  Alcotest.(check bool) "delta > 0" true (bspec.Driver.program.Bs_backend.Asm.delta > 0)

let test_slice_packing () =
  (* Many simultaneously-live squeezed values: bitspec must use 8-bit
     register accesses (Figure 11's signal). *)
  let src =
    "u8 data[64];\n\
     u32 f(u32 n) {\n\
     u32 s = 0;\n\
     for (u32 i = 0; i < n; i += 1) {\n\
     u32 a = data[i & 63]; u32 b = data[(i + 1) & 63];\n\
     u32 c = data[(i + 2) & 63]; u32 d = data[(i + 3) & 63];\n\
     s += (a & b) + (c ^ d);\n\
     }\n\
     return s & 0xFFFF; }"
  in
  let setup mem_m =
    fun (mem : Memimage.t) ->
      for i = 0 to 63 do
        Memimage.set_global mem mem_m ~name:"data" ~index:i
          (Int64.of_int (i * 3 land 0xFF))
      done
  in
  let bspec =
    Driver.compile ~config:Driver.bitspec_config ~source:src
      ~train:[ ("f", [ 16L ]) ] ()
  in
  let base =
    Driver.compile ~config:Driver.baseline_config ~source:src
      ~train:[ ("f", [ 16L ]) ] ()
  in
  let s_spec = setup bspec.Driver.ir and s_base = setup base.Driver.ir in
  List.iter
    (fun args ->
      let expect =
        match (Driver.run_reference ~setup:s_base base ~entry:"f" ~args).Interp.ret with
        | Some v -> Int64.logand v 0xFFFFFFFFL
        | None -> 0L
      in
      let rs = Driver.run_machine ~setup:s_spec bspec ~entry:"f" ~args in
      let rb = Driver.run_machine ~setup:s_base base ~entry:"f" ~args in
      Alcotest.(check int64) "bitspec result" expect rs.Machine.r0;
      Alcotest.(check int64) "baseline result" expect rb.Machine.r0;
      Alcotest.(check bool) "8-bit register traffic" true
        (rs.Machine.ctr.Counters.reg_read8 > 0);
      Alcotest.(check int) "baseline has no 8-bit traffic" 0
        rb.Machine.ctr.Counters.reg_read8)
    [ [ 64L ] ]

let test_encode_roundtrip_program () =
  (* every emitted instruction must survive encode/decode *)
  let src =
    "u8 t[16];\n\
     u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) { t[i & 15] = (u8)i; s += t[i & 15]; } return s; }"
  in
  let c =
    Driver.compile ~config:Driver.bitspec_config ~source:src
      ~train:[ ("f", [ 10L ]) ] ()
  in
  Array.iter
    (fun insn ->
      let w = Bs_isa.Encode.encode insn in
      let insn' = Bs_isa.Encode.decode w in
      Alcotest.(check string) "roundtrip" (Bs_isa.Isa.to_string insn)
        (Bs_isa.Isa.to_string insn'))
    c.Driver.program.Bs_backend.Asm.code

(* Property: machine == interpreter over random inputs for a mixed kernel. *)
let prop_machine_equiv =
  let src =
    "u32 f(u32 a, u32 b) {\n\
     u32 s = 0;\n\
     for (u32 i = 0; i < (a & 127); i += 1) {\n\
     if ((i ^ b) % 3 == 0) s += i & 0xFF; else s = (s << 1) | (s >> 31);\n\
     }\n\
     return s; }"
  in
  let base =
    Driver.compile ~config:Driver.baseline_config ~source:src
      ~train:[ ("f", [ 40L; 7L ]) ] ()
  in
  let bspec =
    Driver.compile ~config:Driver.bitspec_config ~source:src
      ~train:[ ("f", [ 40L; 7L ]) ] ()
  in
  QCheck.Test.make ~name:"machine == interpreter" ~count:100
    QCheck.(pair (int_bound 500) (int_bound 1000))
    (fun (a, b) ->
      let args = [ Int64.of_int a; Int64.of_int b ] in
      let expect =
        match (Driver.run_reference base ~entry:"f" ~args).Interp.ret with
        | Some v -> Int64.logand v 0xFFFFFFFFL
        | None -> 0L
      in
      machine_result base ~entry:"f" ~args = expect
      && machine_result bspec ~entry:"f" ~args = expect)

let suite =
  [ Alcotest.test_case "minimal" `Quick test_minimal;
    Alcotest.test_case "arithmetic on machine" `Quick test_arith_machine;
    Alcotest.test_case "signed ops on machine" `Quick test_signed_machine;
    Alcotest.test_case "loops on machine" `Quick test_loop_machine;
    Alcotest.test_case "memory widths on machine" `Quick test_memory_machine;
    Alcotest.test_case "calls on machine" `Quick test_calls_machine;
    Alcotest.test_case "recursion on machine" `Quick test_recursion_machine;
    Alcotest.test_case "misspeculation via Δ skeleton" `Quick test_misspec_machine;
    Alcotest.test_case "slice packing (Fig 11 signal)" `Quick test_slice_packing;
    Alcotest.test_case "binary encode/decode roundtrip" `Quick test_encode_roundtrip_program;
    QCheck_alcotest.to_alcotest prop_machine_equiv ]
