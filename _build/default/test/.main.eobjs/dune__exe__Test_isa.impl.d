test/test_isa.ml: Alcotest Bitspec Bs_backend Bs_energy Bs_interp Bs_isa Bs_sim Bs_workloads Cache Encode Isa List QCheck QCheck_alcotest Str_exists
