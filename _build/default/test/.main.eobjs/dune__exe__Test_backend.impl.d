test/test_backend.ml: Alcotest Array Bitspec Bs_backend Bs_interp Bs_isa Bs_sim Counters Driver Int64 Interp List Machine Memimage Option Printf QCheck QCheck_alcotest String
