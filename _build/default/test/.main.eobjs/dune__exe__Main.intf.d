test/main.mli:
