test/test_frontend2.ml: Alcotest Bitspec Bs_frontend Bs_interp Bs_sim Driver Int64 Interp List Lower Option Printf
