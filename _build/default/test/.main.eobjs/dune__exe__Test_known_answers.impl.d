test/test_known_answers.ml: Alcotest Array Bitspec Bs_frontend Bs_interp Bs_sim Bs_workloads Bytes Char Int64 Interp List Lower Memimage Option Printf Registry String Workload
