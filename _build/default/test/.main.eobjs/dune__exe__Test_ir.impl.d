test/test_ir.ml: Alcotest Bs_ir Builder Dom Hashtbl Ir List Liveness Loops Printer Str_exists String Verifier
