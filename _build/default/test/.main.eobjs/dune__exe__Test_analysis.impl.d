test/test_analysis.ml: Alcotest Array Block_coerce Bs_analysis Bs_frontend Bs_interp Bs_ir Demanded_bits Hashtbl Interp Ir List Lower Option Printf Profile
