test/test_squeezer.ml: Alcotest Bitspec Bs_frontend Bs_interp Bs_ir Cfg_prep Int64 Interp List Lower Memimage Printf Profile QCheck QCheck_alcotest Squeezer String Verifier
