test/test_opt.ml: Alcotest Bitspec Bs_frontend Bs_interp Bs_ir Bs_opt Constfold Dce Inline Int64 Interp Ir List Lower Option Printf QCheck QCheck_alcotest Simplify_cfg String Unroll Verifier
