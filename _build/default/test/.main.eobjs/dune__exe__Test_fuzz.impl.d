test/test_fuzz.ml: Alcotest Bitspec Bs_frontend Bs_interp Bs_sim Bs_support Buffer Driver Int64 Interp List Option Printf Profile QCheck QCheck_alcotest Rng String
