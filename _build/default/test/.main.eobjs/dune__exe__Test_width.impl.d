test/test_width.ml: Alcotest Bs_ir Int64 QCheck QCheck_alcotest Width
