test/test_interp.ml: Alcotest Bs_frontend Bs_interp Bs_ir Int64 Interp Ir List Memimage QCheck QCheck_alcotest Width
