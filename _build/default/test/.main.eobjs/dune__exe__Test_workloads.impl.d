test/test_workloads.ml: Alcotest Bitspec Bs_interp Bs_workloads Driver Experiment List Registry Workload
