test/test_machine.ml: Alcotest Array Bs_backend Bs_interp Bs_ir Bs_isa Bs_sim Counters Hashtbl Isa Machine
