test/test_frontend.ml: Alcotest Bs_frontend Bs_interp Bs_ir Int64 Interp Lexer Lower Parser Printer Printf QCheck QCheck_alcotest String Typecheck
