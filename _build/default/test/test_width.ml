open Bs_ir

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let test_mask () =
  check_i64 "mask 8" 0xFFL (Width.mask 8);
  check_i64 "mask 1" 1L (Width.mask 1);
  check_i64 "mask 64" (-1L) (Width.mask 64);
  check_i64 "mask 32" 0xFFFFFFFFL (Width.mask 32)

let test_trunc () =
  check_i64 "trunc 8" 0x34L (Width.trunc 8 0x1234L);
  check_i64 "trunc neg" 0xFFL (Width.trunc 8 (-1L));
  check_i64 "trunc 64 id" (-1L) (Width.trunc 64 (-1L))

let test_sext () =
  check_i64 "sext 8 pos" 0x7FL (Width.sext 8 0x7FL);
  check_i64 "sext 8 neg" (-1L) (Width.sext 8 0xFFL);
  check_i64 "sext 16 neg" (-2L) (Width.sext 16 0xFFFEL);
  check_i64 "sext 1" (-1L) (Width.sext 1 1L)

let test_required_bits () =
  check_int "rb 0" 1 (Width.required_bits 0L);
  check_int "rb 1" 1 (Width.required_bits 1L);
  check_int "rb 2" 2 (Width.required_bits 2L);
  check_int "rb 255" 8 (Width.required_bits 255L);
  check_int "rb 256" 9 (Width.required_bits 256L);
  check_int "rb neg" 64 (Width.required_bits (-1L));
  check_int "rb max" 63 (Width.required_bits Int64.max_int)

let test_fits () =
  Alcotest.(check bool) "255 fits 8" true (Width.fits 8 255L);
  Alcotest.(check bool) "256 !fits 8" false (Width.fits 8 256L);
  Alcotest.(check bool) "0 fits 1" true (Width.fits 1 0L)

let test_class () =
  check_int "class 3" 8 (Width.class_of_bits 3);
  check_int "class 9" 16 (Width.class_of_bits 9);
  check_int "class 17" 32 (Width.class_of_bits 17);
  check_int "class 33" 64 (Width.class_of_bits 33)

let test_signed_bounds () =
  check_i64 "smin 8" 0x80L (Width.signed_min 8);
  check_i64 "smax 8" 0x7FL (Width.signed_max 8);
  check_i64 "smax 32" 0x7FFFFFFFL (Width.signed_max 32)

(* Property: required_bits is the unique n with 2^(n-1) <= v < 2^n. *)
let prop_required_bits =
  QCheck.Test.make ~name:"required_bits bounds" ~count:500
    QCheck.(map Int64.of_int small_nat)
    (fun v ->
      let n = Width.required_bits v in
      let lo = if n = 1 then 0L else Int64.shift_left 1L (n - 1) in
      Int64.unsigned_compare v lo >= 0
      && (n >= 64 || Int64.unsigned_compare v (Int64.shift_left 1L n) < 0))

let prop_trunc_idempotent =
  QCheck.Test.make ~name:"trunc idempotent" ~count:500
    QCheck.(pair (oneofl [ 1; 8; 16; 32; 64 ]) int64)
    (fun (w, v) -> Width.trunc w (Width.trunc w v) = Width.trunc w v)

let prop_sext_trunc_roundtrip =
  QCheck.Test.make ~name:"trunc∘sext = trunc" ~count:500
    QCheck.(pair (oneofl [ 8; 16; 32 ]) int64)
    (fun (w, v) -> Width.trunc w (Width.sext w v) = Width.trunc w v)

let suite =
  [ Alcotest.test_case "mask" `Quick test_mask;
    Alcotest.test_case "trunc" `Quick test_trunc;
    Alcotest.test_case "sext" `Quick test_sext;
    Alcotest.test_case "required_bits" `Quick test_required_bits;
    Alcotest.test_case "fits" `Quick test_fits;
    Alcotest.test_case "class_of_bits" `Quick test_class;
    Alcotest.test_case "signed bounds" `Quick test_signed_bounds;
    QCheck_alcotest.to_alcotest prop_required_bits;
    QCheck_alcotest.to_alcotest prop_trunc_idempotent;
    QCheck_alcotest.to_alcotest prop_sext_trunc_roundtrip ]
