open Bs_ir
open Bs_frontend
open Bs_interp

(* End-to-end front-end tests: compile MiniC sources, verify the IR, run
   them through the interpreter and check results against hand-computed
   values (which mirror C semantics). *)

let run ?(args = []) ?setup src entry =
  let m = Lower.compile src in
  let r, _mem = Interp.run_fresh ?setup m ~entry ~args in
  match r.Interp.ret with
  | Some v -> v
  | None -> Alcotest.fail "expected return value"

let check_ret msg expected src entry ?(args = []) () =
  Alcotest.(check int64) msg expected (run ~args src entry)

let test_arith () =
  check_ret "add" 7L "u32 f() { return 3 + 4; }" "f" ();
  check_ret "precedence" 14L "u32 f() { return 2 + 3 * 4; }" "f" ();
  check_ret "sub wrap u32" 0xFFFFFFFFL "u32 f() { return 0 - 1; }" "f" ();
  check_ret "div" 5L "u32 f() { return 17 / 3; }" "f" ();
  check_ret "mod" 2L "u32 f() { return 17 % 3; }" "f" ();
  check_ret "sdiv" 0xFFFFFFFBL "i32 f() { return -17 / 3; }" "f" ();
  check_ret "shl" 40L "u32 f() { return 5 << 3; }" "f" ();
  check_ret "lshr" 5L "u32 f() { return 40 >> 3; }" "f" ();
  check_ret "ashr" 0xFFFFFFFEL "i32 f() { i32 x = -8; return x >> 2; }" "f" ();
  check_ret "bitops" 10L "u32 f() { return (12 & 10) | (5 ^ 7) & 2; }" "f" ()

let test_types () =
  (* u8 arithmetic promotes to 32 bits, truncates on assignment *)
  check_ret "u8 wrap" 4L "u32 f() { u8 x = 250; x = x + 10; return x; }" "f" ();
  check_ret "u8 promoted" 260L "u32 f() { u8 x = 250; return x + 10; }" "f" ();
  check_ret "i8 sext" 0xFFFFFFF8L "i32 f() { i8 x = -8; return x; }" "f" ();
  check_ret "u16 trunc" 0x2345L "u32 f() { u16 x = (u16)0x12345; return x; }" "f" ();
  check_ret "u64 lit" 0x1_0000_0000L "u64 f() { u64 x = 0x100000000; return x; }" "f" ();
  check_ret "cast narrow" 0x34L "u32 f() { return (u8)0x1234; }" "f" ()

let test_control () =
  check_ret "if" 1L "u32 f(u32 x) { if (x > 5) return 1; return 0; }" "f"
    ~args:[ 9L ] ();
  check_ret "if else" 0L "u32 f(u32 x) { if (x > 5) { return 1; } else { return 0; } }"
    "f" ~args:[ 3L ] ();
  check_ret "while sum" 55L
    "u32 f() { u32 s = 0; u32 i = 1; while (i <= 10) { s += i; i += 1; } return s; }"
    "f" ();
  check_ret "for sum" 55L
    "u32 f() { u32 s = 0; for (u32 i = 1; i <= 10; i += 1) s += i; return s; }"
    "f" ();
  check_ret "do while" 256L
    "u32 f() { u32 x = 0; do { x += 1; } while (x <= 255); return x; }" "f" ();
  check_ret "break" 5L
    "u32 f() { u32 i = 0; while (1) { if (i == 5) break; i += 1; } return i; }"
    "f" ();
  check_ret "continue" 25L
    "u32 f() { u32 s = 0; for (u32 i = 0; i < 10; i += 1) { if (i % 2 == 0) continue; s += i; } return s; }"
    "f" ();
  check_ret "nested loops" 100L
    "u32 f() { u32 s = 0; for (u32 i = 0; i < 10; i += 1) for (u32 j = 0; j < 10; j += 1) s += 1; return s; }"
    "f" ()

let test_logic () =
  check_ret "logand shortcircuit" 0L
    "u32 g() { return 1; } u32 f() { u32 x = 0; if (x != 0 && g() == 1) return 1; return 0; }"
    "f" ();
  check_ret "logor" 1L "u32 f(u32 x) { return x == 0 || x > 10; }" "f"
    ~args:[ 0L ] ();
  check_ret "lognot" 1L "u32 f(u32 x) { return !x; }" "f" ~args:[ 0L ] ();
  check_ret "ternary" 7L "u32 f(u32 x) { return x > 2 ? 7 : 9; }" "f"
    ~args:[ 3L ] ()

let test_arrays () =
  check_ret "local array" 30L
    "u32 f() { u32 a[4]; a[0] = 10; a[1] = 20; return a[0] + a[1]; }" "f" ();
  check_ret "global array" 3L "u32 tab[8]; u32 f() { tab[3] = 3; return tab[3]; }"
    "f" ();
  check_ret "global init list" 6L
    "u32 tab[] = {1, 2, 3}; u32 f() { return tab[0] + tab[1] + tab[2]; }" "f" ();
  check_ret "string init" 104L
    "u8 s[] = \"hi\"; u32 f() { return s[0] + 0 * s[1]; }" "f" ();
  check_ret "u8 array elems" 255L
    "u8 b[4]; u32 f() { b[1] = 255; return b[1]; }" "f" ();
  check_ret "u16 array stride" 0xBEEFL
    "u16 h[4]; u32 f() { h[2] = 0xBEEF; h[1] = 1; return h[2]; }" "f" ();
  check_ret "scalar global" 42L
    "u32 g = 40; u32 f() { g = g + 2; return g; }" "f" ()

let test_functions () =
  check_ret "call" 13L
    "u32 add(u32 a, u32 b) { return a + b; } u32 f() { return add(6, 7); }" "f" ();
  check_ret "recursion fib" 55L
    "u32 fib(u32 n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } u32 f() { return fib(10); }"
    "f" ();
  check_ret "array param" 60L
    "u32 sum(u32 a[], u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += a[i]; return s; }\n\
     u32 buf[3] = {10, 20, 30};\n\
     u32 f() { return sum(buf, 3); }"
    "f" ();
  check_ret "local array param" 6L
    "u32 sum(u8 a[], u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += a[i]; return s; }\n\
     u32 f() { u8 b[4]; b[0] = 1; b[1] = 2; b[2] = 3; return sum(b, 3); }"
    "f" ();
  check_ret "void fn" 5L
    "u32 g = 0; void setg(u32 v) { g = v; } u32 f() { setg(5); return g; }" "f" ()

let test_comments_and_literals () =
  check_ret "comments" 3L
    "// line comment\nu32 f() { /* block\ncomment */ return 3; }" "f" ();
  check_ret "hex" 255L "u32 f() { return 0xFF; }" "f" ();
  check_ret "char lit" 65L "u32 f() { return 'A'; }" "f" ();
  check_ret "escape" 10L "u32 f() { return '\\n'; }" "f" ()

let test_errors () =
  let expect_error src =
    match Lower.compile src with
    | exception (Typecheck.Error _ | Parser.Error _ | Lexer.Error _) -> ()
    | _ -> Alcotest.fail ("expected error for: " ^ src)
  in
  expect_error "u32 f() { return x; }";
  expect_error "u32 f() { break; }";
  expect_error "u32 f() { u32 x = 1; u32 x = 2; return x; }";
  expect_error "u32 f(u32 a) { return a(3); }";
  expect_error "u32 f() { return g(1); }";
  expect_error "u32 f() { if (1) return 1 }";
  expect_error "void f() { return 3; }"

let test_shadowing () =
  (* Inner scopes shadow; alpha-renaming keeps SSA construction sound. *)
  check_ret "shadow" 11L
    "u32 f() { u32 x = 1; { u32 x = 10; x += 1; return x; } }" "f" ();
  check_ret "shadow in loop" 45L
    "u32 f() { u32 s = 0; for (u32 i = 0; i < 10; i += 1) { u32 t = i; s += t; } return s; }"
    "f" ()

let test_verifier_accepts () =
  (* Every compiled module passes the verifier (Lower.compile runs it);
     additionally, printing must not raise. *)
  let m =
    Lower.compile
      "u32 tab[4] = {1,2,3,4};\n\
       u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += tab[i & 3]; return s; }"
  in
  let s = Printer.module_str m in
  Alcotest.(check bool) "prints" true (String.length s > 0)

(* Differential property: MiniC expression evaluation matches a direct
   OCaml model for random small programs over u32 arithmetic. *)
let prop_expr_diff =
  let gen =
    QCheck.Gen.(
      map3
        (fun a b c -> (Int64.of_int a, Int64.of_int b, Int64.of_int c))
        (int_bound 10000) (int_bound 10000) (int_range 1 10000))
  in
  QCheck.Test.make ~name:"u32 expression semantics" ~count:200
    (QCheck.make gen)
    (fun (a, b, c) ->
      let src =
        Printf.sprintf
          "u32 f() { return (%Ld + %Ld) * 3 - %Ld / 2 + (%Ld %% %Ld); }" a b c a c
      in
      let t32 x = Int64.logand x 0xFFFFFFFFL in
      let expected =
        t32
          (Int64.add
             (Int64.sub (t32 (Int64.mul (t32 (Int64.add a b)) 3L)) (Int64.div c 2L))
             (Int64.rem a c))
      in
      run src "f" = expected)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "types and promotion" `Quick test_types;
    Alcotest.test_case "control flow" `Quick test_control;
    Alcotest.test_case "logical operators" `Quick test_logic;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "comments and literals" `Quick test_comments_and_literals;
    Alcotest.test_case "front-end errors" `Quick test_errors;
    Alcotest.test_case "shadowing" `Quick test_shadowing;
    Alcotest.test_case "verifier and printer" `Quick test_verifier_accepts;
    QCheck_alcotest.to_alcotest prop_expr_diff ]
