open Bs_ir

(* Unit tests for the IR substrate: construction, CFG utilities, dominators,
   liveness (including the SIR handler relation), natural loops, cloning,
   block splitting, and the verifier's rejection of malformed programs. *)

(* Hand-build:  entry -> loop(header -> body -> header) -> exit  with an
   accumulator phi. *)
let build_loop_func () =
  let f = Ir.create_func ~name:"loop" ~params:[ ("n", 32) ] ~ret_width:32 in
  let b = Builder.create f in
  let entry = Ir.add_block f "entry" in
  let header = Ir.add_block f "header" in
  let body = Ir.add_block f "body" in
  let exit_b = Ir.add_block f "exit" in
  Builder.position_at_end b entry;
  ignore (Builder.br b header);
  Builder.position_at_end b header;
  let phi_i = Builder.phi b ~width:32 [] in
  let phi_s = Builder.phi b ~width:32 [] in
  let n = Builder.param b 0 in
  let cond = Builder.cmp b Ir.Ult (Builder.value phi_i) (Builder.value n) in
  ignore (Builder.cbr b (Builder.value cond) ~if_true:body ~if_false:exit_b);
  Builder.position_at_end b body;
  let s' =
    Builder.bin b Ir.Add ~width:32 (Builder.value phi_s) (Builder.value phi_i)
  in
  let i' =
    Builder.bin b Ir.Add ~width:32 (Builder.value phi_i) (Ir.const ~width:32 1L)
  in
  ignore (Builder.br b header);
  Builder.position_at_end b exit_b;
  ignore (Builder.ret b (Some (Builder.value phi_s)));
  phi_i.Ir.op <-
    Ir.Phi [ (entry.Ir.bid, Ir.const ~width:32 0L); (body.Ir.bid, Builder.value i') ];
  phi_s.Ir.op <-
    Ir.Phi [ (entry.Ir.bid, Ir.const ~width:32 0L); (body.Ir.bid, Builder.value s') ];
  (f, entry, header, body, exit_b)

let test_builder_and_verify () =
  let f, _, _, _, _ = build_loop_func () in
  Verifier.check_func f;
  let m = { Ir.funcs = [ f ]; globals = [] } in
  match Verifier.verify m with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_succs_preds () =
  let f, entry, header, body, exit_b = build_loop_func () in
  Alcotest.(check (list int)) "entry succs" [ header.Ir.bid ]
    (Ir.succs entry);
  Alcotest.(check (list int)) "header succs" [ body.Ir.bid; exit_b.Ir.bid ]
    (Ir.succs header);
  let preds = Ir.preds f header.Ir.bid in
  Alcotest.(check bool) "header preds" true
    (List.mem entry.Ir.bid preds && List.mem body.Ir.bid preds)

let test_dominators () =
  let f, entry, header, body, exit_b = build_loop_func () in
  let dom = Dom.compute f in
  Alcotest.(check bool) "entry dom all" true
    (List.for_all
       (fun (b : Ir.block) -> Dom.dominates dom entry.Ir.bid b.Ir.bid)
       f.Ir.blocks);
  Alcotest.(check bool) "header dom body" true
    (Dom.dominates dom header.Ir.bid body.Ir.bid);
  Alcotest.(check bool) "body !dom exit" false
    (Dom.dominates dom body.Ir.bid exit_b.Ir.bid);
  Alcotest.(check bool) "strict" false
    (Dom.strictly_dominates dom header.Ir.bid header.Ir.bid)

let test_liveness () =
  let f, _, header, body, _ = build_loop_func () in
  let live = Liveness.compute f in
  (* the accumulator phi is live out of the body (loop-carried) *)
  let phi_s =
    List.find
      (fun (i : Ir.instr) -> Ir.is_phi i && i.Ir.iname = "")
      header.Ir.instrs
  in
  ignore phi_s;
  let out_body = Liveness.live_out live body.Ir.bid in
  Alcotest.(check bool) "body live-out nonempty" false
    (Liveness.IntSet.is_empty out_body)

let test_loops () =
  let f, _, header, body, _ = build_loop_func () in
  let loops = Loops.compute f in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check int) "header" header.Ir.bid l.Loops.header;
  Alcotest.(check (list int)) "latch" [ body.Ir.bid ] l.Loops.latches;
  Alcotest.(check int) "depth" 1 l.Loops.depth;
  let exits = Loops.exits f l in
  Alcotest.(check int) "one exit" 1 (Loops.IntSet.cardinal exits)

let test_split_block () =
  let f, _, _, body, _ = build_loop_func () in
  let before = List.length f.Ir.blocks in
  let nb = Ir.split_block f body ~at:1 in
  Alcotest.(check int) "one more block" (before + 1) (List.length f.Ir.blocks);
  Alcotest.(check int) "body has add + br" 2 (List.length body.Ir.instrs);
  Alcotest.(check bool) "continuation holds rest" true
    (List.length nb.Ir.instrs = 2);
  Verifier.check_func f

let test_clone_blocks () =
  let f, _, _, _, _ = build_loop_func () in
  let n = List.length f.Ir.blocks in
  let cm, clones = Ir.clone_blocks f f.Ir.blocks ~suffix:".c" in
  Alcotest.(check int) "doubled" (2 * n) (List.length f.Ir.blocks);
  Alcotest.(check int) "clones" n (List.length clones);
  (* clone edges are internal: no clone branches to an original *)
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun s ->
          Alcotest.(check bool) "clone target is clone" true
            (List.exists (fun (c : Ir.block) -> c.Ir.bid = s) clones))
        (Ir.succs b))
    clones;
  Alcotest.(check int) "map size" n (Hashtbl.length cm.Ir.cm_block)

let test_regions_and_preds_sir () =
  let f, _, header, body, _ = build_loop_func () in
  let handler = Ir.add_block f "handler" in
  Ir.append_instr handler (Ir.mk_instr f ~width:0 (Ir.Br header.Ir.bid));
  ignore (Ir.add_region f ~blocks:[ body.Ir.bid ] ~handler:handler.Ir.bid);
  let sir = Ir.preds_sir f in
  (* handler's SIR preds = preds of region entry (= body's preds = header) *)
  Alcotest.(check (list int)) "handler preds" [ header.Ir.bid ]
    (Hashtbl.find sir handler.Ir.bid);
  let smir = Ir.preds_smir f in
  Alcotest.(check (list int)) "smir handler preds" [ body.Ir.bid ]
    (Hashtbl.find smir handler.Ir.bid);
  Alcotest.(check bool) "is_handler" true (Ir.is_handler f handler.Ir.bid);
  Alcotest.(check bool) "region_of" true
    (Ir.region_of_block f body.Ir.bid <> None)

let expect_invalid msg f =
  let m = { Ir.funcs = [ f ]; globals = [] } in
  match Verifier.verify m with
  | Error _ -> ()
  | Ok () -> Alcotest.fail ("verifier accepted " ^ msg)

let test_verifier_rejects () =
  (* width mismatch *)
  let f = Ir.create_func ~name:"bad" ~params:[ ("a", 32) ] ~ret_width:32 in
  let b = Builder.create f in
  let e = Ir.add_block f "entry" in
  Builder.position_at_end b e;
  let a = Builder.param b 0 in
  let x = Builder.bin b Ir.Add ~width:16 (Builder.value a) (Ir.const ~width:16 1L) in
  ignore (Builder.ret b (Some (Builder.value x)));
  expect_invalid "width mismatch" f;
  (* use before def in block *)
  let f2 = Ir.create_func ~name:"bad2" ~params:[] ~ret_width:32 in
  let b2 = Builder.create f2 in
  let e2 = Ir.add_block f2 "entry" in
  Builder.position_at_end b2 e2;
  let dead = Ir.mk_instr f2 ~width:32 (Ir.Bin (Ir.Add, Ir.const ~width:32 1L, Ir.const ~width:32 1L)) in
  let y = Builder.bin b2 Ir.Add ~width:32 (Ir.Var dead.Ir.iid) (Ir.const ~width:32 1L) in
  Ir.append_instr e2 dead; (* def placed after use *)
  ignore (Builder.ret b2 (Some (Builder.value y)));
  (* reorder so the use comes first *)
  e2.Ir.instrs <-
    (List.filter (fun (i : Ir.instr) -> i.Ir.iid = y.Ir.iid) e2.Ir.instrs)
    @ List.filter (fun (i : Ir.instr) -> i.Ir.iid <> y.Ir.iid) e2.Ir.instrs;
  expect_invalid "use before def" f2;
  (* handler as branch target *)
  let f3, _, header3, body3, _ = build_loop_func () in
  let h3 = Ir.add_block f3 "h" in
  Ir.append_instr h3 (Ir.mk_instr f3 ~width:0 (Ir.Br header3.Ir.bid));
  ignore (Ir.add_region f3 ~blocks:[ body3.Ir.bid ] ~handler:h3.Ir.bid);
  (* make entry branch into the handler: illegal *)
  (Ir.terminator (Ir.entry f3)).Ir.op <- Ir.Br h3.Ir.bid;
  expect_invalid "handler branch target" f3;
  (* missing terminator *)
  let f4 = Ir.create_func ~name:"bad4" ~params:[] ~ret_width:0 in
  let e4 = Ir.add_block f4 "entry" in
  Ir.append_instr e4 (Ir.mk_instr f4 ~width:32 (Ir.Bin (Ir.Add, Ir.const ~width:32 1L, Ir.const ~width:32 2L)));
  expect_invalid "no terminator" f4

let test_rpo () =
  let f, entry, _, _, _ = build_loop_func () in
  let order = Ir.reverse_postorder f in
  Alcotest.(check int) "visits all" (List.length f.Ir.blocks)
    (List.length order);
  Alcotest.(check int) "entry first" entry.Ir.bid (List.hd order)

let test_printer_roundtrip_shape () =
  let f, _, _, _, _ = build_loop_func () in
  let s = Printer.func_str f in
  Alcotest.(check bool) "mentions phi" true
    (String.length s > 0
    && Str_exists.contains s "phi"
    && Str_exists.contains s "cmp ult")

let suite =
  [ Alcotest.test_case "builder + verifier" `Quick test_builder_and_verify;
    Alcotest.test_case "succs/preds" `Quick test_succs_preds;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "liveness" `Quick test_liveness;
    Alcotest.test_case "natural loops" `Quick test_loops;
    Alcotest.test_case "split_block" `Quick test_split_block;
    Alcotest.test_case "clone_blocks" `Quick test_clone_blocks;
    Alcotest.test_case "regions + SIR/SMIR preds" `Quick test_regions_and_preds_sir;
    Alcotest.test_case "verifier rejects malformed IR" `Quick test_verifier_rejects;
    Alcotest.test_case "reverse postorder" `Quick test_rpo;
    Alcotest.test_case "printer output" `Quick test_printer_roundtrip_shape ]
