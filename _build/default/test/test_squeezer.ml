open Bs_ir
open Bs_frontend
open Bs_interp
open Bitspec

(* Differential tests for the squeezer: for each program, profile on a
   training input, squeeze, then check that the squeezed module computes
   exactly what the original does on fresh inputs — including inputs that
   force misspeculation.  This is the executable form of Theorems 3.1/3.2. *)

let interp_run m ~entry ~args =
  let r, _ = Interp.run_fresh m ~entry ~args in
  (r.Interp.ret, r.Interp.misspecs)

(* Full mini-pipeline: compile, cfg-prep, profile on [train], squeeze. *)
let squeeze_pipeline ?(heuristic = Profile.Hmax) src ~entry ~train =
  let m = Lower.compile src in
  ignore (Cfg_prep.run m);
  Verifier.verify_exn m;
  let profile = Profile.create () in
  let opts = { Interp.default_opts with profile = Some profile } in
  List.iter
    (fun args ->
      let _ = Interp.run_fresh ~opts m ~entry ~args in
      ())
    train;
  let stats = Squeezer.run m ~profile ~heuristic in
  Verifier.verify_exn m;
  (m, stats)

let check_equiv ?heuristic ~name src ~entry ~train ~test () =
  let reference = Lower.compile src in
  let squeezed, stats = squeeze_pipeline ?heuristic src ~entry ~train in
  List.iter
    (fun args ->
      let expect, _ = interp_run reference ~entry ~args in
      let got, _ = interp_run squeezed ~entry ~args in
      Alcotest.(check (option int64))
        (Printf.sprintf "%s(%s)" name
           (String.concat "," (List.map Int64.to_string args)))
        expect got)
    test;
  stats

let paper_example =
  (* §3's running example: a counter that overflows its 8-bit speculation
     on the final iteration. *)
  "u32 f(u32 lim) { u32 x = 0; do { x += 1; } while (x <= lim); return x; }"

let test_paper_example () =
  let stats =
    check_equiv ~name:"paper do-while" paper_example ~entry:"f"
      ~train:[ [ 100L ] ]
      ~test:[ [ 10L ]; [ 100L ]; [ 255L ]; [ 300L ]; [ 1000L ] ]
      ()
  in
  Alcotest.(check bool) "squeezed something" true (stats.Squeezer.squeezed > 0);
  Alcotest.(check bool) "created regions" true (stats.Squeezer.regions > 0)

let test_misspec_occurs () =
  (* Train small so the heuristic picks 8 bits; test past 255 so the
     hardware must misspeculate and re-execute at 32 bits. *)
  let squeezed, _ = squeeze_pipeline paper_example ~entry:"f" ~train:[ [ 50L ] ] in
  let ret, misspecs = interp_run squeezed ~entry:"f" ~args:[ 400L ] in
  Alcotest.(check (option int64)) "result correct" (Some 401L) ret;
  Alcotest.(check bool) "misspeculated" true (misspecs > 0);
  (* small inputs must not misspeculate *)
  let ret2, misspecs2 = interp_run squeezed ~entry:"f" ~args:[ 50L ] in
  Alcotest.(check (option int64)) "small input" (Some 51L) ret2;
  Alcotest.(check int) "no misspec" 0 misspecs2

let test_sum_array () =
  let src =
    "u32 data[64];\n\
     u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += data[i]; return s; }"
  in
  ignore
    (check_equiv ~name:"sum" src ~entry:"f" ~train:[ [ 16L ] ]
       ~test:[ [ 0L ]; [ 1L ]; [ 32L ]; [ 64L ] ] ())

let test_branchy () =
  let src =
    "u32 f(u32 a, u32 b) {\n\
     u32 r = 0;\n\
     for (u32 i = 0; i < a; i += 1) {\n\
     if (i % 3 == 0) r += b; else r += 1;\n\
     if (r > 200) r -= 100;\n\
     }\n\
     return r; }"
  in
  ignore
    (check_equiv ~name:"branchy" src ~entry:"f"
       ~train:[ [ 20L; 3L ] ]
       ~test:[ [ 0L; 0L ]; [ 5L; 7L ]; [ 50L; 2L ]; [ 100L; 9L ]; [ 300L; 250L ] ]
       ())

let test_calls_not_squeezed_across () =
  (* calls make blocks non-idempotent; correctness must survive them *)
  let src =
    "u32 g(u32 x) { return x * 2 + 1; }\n\
     u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += g(i) & 15; return s; }"
  in
  ignore
    (check_equiv ~name:"calls" src ~entry:"f" ~train:[ [ 10L ] ]
       ~test:[ [ 0L ]; [ 10L ]; [ 40L ] ] ())

let test_memory_kernels () =
  let src =
    "u8 buf[256];\n\
     u32 f(u32 n) {\n\
     for (u32 i = 0; i < n; i += 1) buf[i] = (u8)(i * 7);\n\
     u32 s = 0;\n\
     for (u32 i = 0; i < n; i += 1) s += buf[i];\n\
     return s; }"
  in
  ignore
    (check_equiv ~name:"memory" src ~entry:"f" ~train:[ [ 32L ] ]
       ~test:[ [ 0L ]; [ 16L ]; [ 128L ]; [ 256L ] ] ())

let test_heuristics_differ () =
  (* With a bimodal value distribution, MIN squeezes more aggressively
     than MAX and misspeculates more (Table 2's trend). *)
  let src =
    "u32 data[32];\n\
     u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) { s = s + data[i]; s = s & 0xFFFF; } return s; }"
  in
  let run_with heuristic =
    let m = Lower.compile src in
    ignore (Cfg_prep.run m);
    let profile = Profile.create () in
    let opts = { Interp.default_opts with profile = Some profile } in
    (* mostly-small values with rare large outliers *)
    let setup mem =
      for i = 0 to 31 do
        Memimage.set_global mem m ~name:"data" ~index:i
          (if i = 7 then 5000L else Int64.of_int (i land 63))
      done
    in
    let _ = Interp.run_fresh ~opts ~setup m ~entry:"f" ~args:[ 32L ] in
    let stats = Squeezer.run m ~profile ~heuristic in
    Verifier.verify_exn m;
    let r, _ = Interp.run_fresh ~setup m ~entry:"f" ~args:[ 32L ] in
    (stats, r)
  in
  let stats_max, r_max = run_with Profile.Hmax in
  let stats_min, r_min = run_with Profile.Hmin in
  Alcotest.(check (option int64)) "MAX/MIN agree on result" r_max.Interp.ret r_min.Interp.ret;
  Alcotest.(check bool) "MIN at least as aggressive" true
    (stats_min.Squeezer.squeezed >= stats_max.Squeezer.squeezed);
  Alcotest.(check bool) "MIN misspeculates, MAX does not" true
    (r_min.Interp.misspecs >= r_max.Interp.misspecs)

let test_thm31_verified () =
  (* The verifier enforces Theorem 3.1 on every squeezed module (dead
     region definitions at handler entry); squeeze a few programs and let
     it check. *)
  List.iter
    (fun src ->
      let m, _ = squeeze_pipeline src ~entry:"f" ~train:[ [ 20L ] ] in
      match Verifier.verify m with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ paper_example;
      "u32 f(u32 n) { u32 a = 1; u32 b = 1; for (u32 i = 0; i < n; i += 1) { u32 t = a + b; a = b; b = t & 0xFF; } return a; }" ]

(* Property: squeezing never changes results, across random programs from a
   small kernel family and random inputs. *)
let prop_squeeze_equiv =
  let gen = QCheck.Gen.(quad (int_range 0 60) (int_range 0 255) (int_range 1 15) (int_range 0 3)) in
  QCheck.Test.make ~name:"squeeze preserves semantics" ~count:60 (QCheck.make gen)
    (fun (n, add, mask, variant) ->
      let src =
        match variant with
        | 0 ->
            Printf.sprintf
              "u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s = (s + %d) & %d; return s; }"
              add (mask * 16 + 15)
        | 1 ->
            Printf.sprintf
              "u32 f(u32 n) { u32 x = %d; u32 c = 0; while (x != 1 && c < 64) { if (x %% 2 == 0) x = x / 2; else x = 3 * x + 1; c += 1; } return c; }"
              (add + 2)
        | 2 ->
            Printf.sprintf
              "u32 f(u32 n) { u32 a = 0; u32 b = 1; for (u32 i = 0; i < n; i += 1) { u32 t = (a + b) %% %d; a = b; b = t; } return a; }"
              (add + 2)
        | _ ->
            Printf.sprintf
              "u32 f(u32 n) { u32 s = 0; u32 i = 0; do { s ^= i * %d; i += 1; } while (i < n); return s & 0xFFFF; }"
              (mask + 1)
      in
      let reference = Lower.compile src in
      let squeezed, _ =
        squeeze_pipeline src ~entry:"f" ~train:[ [ 10L ]; [ 3L ] ]
      in
      let args = [ Int64.of_int n ] in
      let expect, _ = interp_run reference ~entry:"f" ~args in
      let got, _ = interp_run squeezed ~entry:"f" ~args in
      expect = got)

let suite =
  [ Alcotest.test_case "paper running example" `Quick test_paper_example;
    Alcotest.test_case "misspeculation fires and recovers" `Quick test_misspec_occurs;
    Alcotest.test_case "array sum" `Quick test_sum_array;
    Alcotest.test_case "branchy kernel" `Quick test_branchy;
    Alcotest.test_case "non-idempotent calls" `Quick test_calls_not_squeezed_across;
    Alcotest.test_case "memory kernels" `Quick test_memory_kernels;
    Alcotest.test_case "heuristic aggressiveness (Table 2)" `Quick test_heuristics_differ;
    Alcotest.test_case "Theorem 3.1 holds" `Quick test_thm31_verified;
    QCheck_alcotest.to_alcotest prop_squeeze_equiv ]
