open Bs_frontend
open Bs_interp

(* Second front-end batch: operator precedence against C, every
   op-assignment form, global initialiser forms, and volatile handling. *)

let run ?setup src entry args =
  let m = Lower.compile src in
  let r, _ = Interp.run_fresh ?setup m ~entry ~args in
  Option.get r.Interp.ret

let check msg expected src =
  Alcotest.(check int64) msg expected (run src "f" [])

let test_precedence_table () =
  (* each case would differ under a wrong precedence *)
  check "mul over add" 14L "u32 f() { return 2 + 3 * 4; }";
  check "shift below add" 32L "u32 f() { return 2 + 6 << 2; }";
  check "relational below shift" 1L "u32 f() { return 1 << 3 > 7; }";
  check "equality below relational" 1L "u32 f() { return 3 > 2 == 1; }";
  check "band below equality" 1L "u32 f() { return 7 & 3 == 3; }";
  check "bxor between and/or" 7L "u32 f() { return 4 | 2 ^ 1; }";
  check "bor above logand" 1L "u32 f() { return 4 | 2 && 1; }";
  check "unary tightest" 0xFFFFFFF5L "u32 f() { return ~10; }";
  check "cast binds unary" 6L "u32 f() { return (u8)260 + 2; }";
  check "ternary lowest" 9L "u32 f() { return 1 ? 4 + 5 : 0; }";
  check "nested ternary" 2L "u32 f() { return 0 ? 1 : 0 ? 3 : 2; }"

let test_op_assign_forms () =
  let forms =
    [ ("+=", 15L); ("-=", 5L); ("*=", 50L); ("/=", 2L); ("%=", 0L);
      ("&=", 0L); ("|=", 15L); ("^=", 15L); ("<<=", 320L); (">>=", 0L) ]
  in
  List.iter
    (fun (op, expected) ->
      let src = Printf.sprintf "u32 f() { u32 x = 10; x %s 5; return x; }" op in
      check op expected src)
    forms;
  (* on array elements too *)
  check "array +=" 12L "u32 a[2];\nu32 f() { a[1] = 5; a[1] += 7; return a[1]; }"

let test_global_initialisers () =
  check "scalar init" 7L "u32 g = 7; u32 f() { return g; }";
  check "negative init" 0xFFFFFFFFL "i32 g = -1; u32 f() { return (u32)g; }";
  check "list init" 60L
    "u32 t[] = {10, 20, 30}; u32 f() { return t[0] + t[1] + t[2]; }";
  check "sized list" 30L
    "u32 t[8] = {10, 20}; u32 f() { return t[0] + t[1] + t[7]; }";
  check "string init length" 6L
    "u8 s[] = \"hello\"; u32 f() { u32 n = 0; while (s[n] != 0) n += 1; return n + 1; }";
  check "u16 negative list" 0xFFFEL
    "u16 t[] = {-2}; u32 f() { return t[0]; }"

let test_volatile_blocks_speculation () =
  (* volatile accesses mark blocks non-idempotent, so nothing in them is
     squeezed — and the program still runs correctly *)
  let src =
    "volatile u32 mmio = 0;\n\
     u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) { mmio = i; s += i & 7; } return s + mmio; }"
  in
  let open Bitspec in
  let c =
    Driver.compile ~config:Driver.bitspec_config ~source:src
      ~train:[ ("f", [ 20L ]) ] ()
  in
  let r = Driver.run_machine c ~entry:"f" ~args:[ 40L ] in
  let m = Lower.compile src in
  let expect, _ = Interp.run_fresh m ~entry:"f" ~args:[ 40L ] in
  Alcotest.(check int64) "volatile program correct"
    (Int64.logand (Option.get expect.Interp.ret) 0xFFFFFFFFL)
    r.Bs_sim.Machine.r0

let test_comparison_chains () =
  check "le/ge" 1L "u32 f() { return (5 <= 5) + 0 * (5 >= 6); }";
  check "signed lt" 1L "u32 f() { i32 a = -3; i32 b = 2; return a < b; }";
  check "unsigned lt" 0L "u32 f() { u32 a = 0xFFFFFFFD; u32 b = 2; return a < b; }";
  check "signed div round" 0xFFFFFFFEL "u32 f() { i32 a = -5; return (u32)(a / 2); }"

let test_u16_semantics () =
  check "u16 wraps" 0L "u32 f() { u16 x = 65535; x = (u16)(x + 1); return x; }";
  check "u16 promote" 65536L "u32 f() { u16 x = 65535; return x + 1; }";
  check "i16 sext" 0xFFFF8000L "u32 f() { i16 x = (i16)0x8000; return (u32)(i32)x; }"

let suite =
  [ Alcotest.test_case "operator precedence" `Quick test_precedence_table;
    Alcotest.test_case "op-assignment forms" `Quick test_op_assign_forms;
    Alcotest.test_case "global initialisers" `Quick test_global_initialisers;
    Alcotest.test_case "volatile blocks speculation" `Quick
      test_volatile_blocks_speculation;
    Alcotest.test_case "comparison semantics" `Quick test_comparison_chains;
    Alcotest.test_case "u16/i16 semantics" `Quick test_u16_semantics ]
