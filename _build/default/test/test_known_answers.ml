open Bs_frontend
open Bs_interp
open Bs_workloads

(* Known-answer tests: the workload kernels are real algorithms, so they
   must reproduce published test vectors — through the interpreter AND
   through the full BITSPEC machine pipeline. *)

let run_with_mem ?setup m ~entry ~args =
  let r, mem = Interp.run_fresh ?setup m ~entry ~args in
  (Option.value r.Interp.ret ~default:0L, mem)

(* FIPS-197 appendix C.1: AES-128
   key        000102030405060708090a0b0c0d0e0f
   plaintext  00112233445566778899aabbccddeeff
   ciphertext 69c4e0d86a7b0430d8cdb78070b4c55a *)
let aes_ciphertext =
  [| 0x69; 0xc4; 0xe0; 0xd8; 0x6a; 0x7b; 0x04; 0x30;
     0xd8; 0xcd; 0xb7; 0x80; 0x70; 0xb4; 0xc5; 0x5a |]

let aes_setup m mem =
  for i = 0 to 15 do
    Memimage.set_global mem m ~name:"key" ~index:i (Int64.of_int i);
    let p = ((i * 0x11) land 0xFF) in
    (* plaintext bytes 00 11 22 ... ff *)
    Memimage.set_global mem m ~name:"blocks" ~index:i (Int64.of_int p)
  done

let test_aes_fips_interp () =
  let w = Registry.find "rijndael" in
  let m = Lower.compile w.Workload.source in
  let _, mem = run_with_mem ~setup:(aes_setup m) m ~entry:"run" ~args:[ 1L ] in
  for i = 0 to 15 do
    Alcotest.(check int64)
      (Printf.sprintf "ciphertext[%d]" i)
      (Int64.of_int aes_ciphertext.(i))
      (Memimage.get_global mem m ~name:"blocks" ~index:i)
  done

let test_aes_fips_machine () =
  (* the squeezed, speculative binary computes the same FIPS vector *)
  let w = Registry.find "rijndael" in
  let c =
    Bitspec.Driver.compile ~config:Bitspec.Driver.bitspec_config
      ~source:w.Workload.source
      ~setup:(fun m -> aes_setup m)
      ~train:[ ("run", [ 1L ]) ] ()
  in
  let mem = Memimage.create c.Bitspec.Driver.ir in
  aes_setup c.Bitspec.Driver.ir mem;
  let _ =
    Bs_sim.Machine.run c.Bitspec.Driver.program mem ~entry:"run" ~args:[ 1L ]
  in
  for i = 0 to 15 do
    Alcotest.(check int64)
      (Printf.sprintf "machine ciphertext[%d]" i)
      (Int64.of_int aes_ciphertext.(i))
      (Memimage.get_global mem c.Bitspec.Driver.ir ~name:"blocks" ~index:i)
  done

(* CRC-32 of "123456789" is 0xCBF43926 (the classic check value). *)
let test_crc32_check_value () =
  let w = Registry.find "CRC32" in
  let m = Lower.compile w.Workload.source in
  let setup mem =
    String.iteri
      (fun i ch ->
        Memimage.set_global mem m ~name:"data" ~index:i
          (Int64.of_int (Char.code ch)))
      "123456789";
    Memimage.set_global mem m ~name:"linelen" ~index:0 9L
  in
  let r, _ = run_with_mem ~setup m ~entry:"run" ~args:[ 1L ] in
  Alcotest.(check int64) "CRC32(\"123456789\")" 0xCBF43926L r

(* SHA-1 of "abc": a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d.
   Our kernel digests whole pre-padded blocks, so feed the padded block
   directly and compare the xor-compressed checksum the kernel returns. *)
let test_sha1_abc () =
  let w = Registry.find "sha" in
  let m = Lower.compile w.Workload.source in
  let setup mem =
    let block = Bytes.make 64 '\000' in
    Bytes.set block 0 'a';
    Bytes.set block 1 'b';
    Bytes.set block 2 'c';
    Bytes.set block 3 '\x80';
    (* bit length 24 in the trailing 64-bit big-endian field *)
    Bytes.set block 63 '\x18';
    Bytes.iteri
      (fun i ch ->
        Memimage.set_global mem m ~name:"msg" ~index:i
          (Int64.of_int (Char.code ch)))
      block
  in
  let r, _ = run_with_mem ~setup m ~entry:"run" ~args:[ 1L ] in
  let expected =
    List.fold_left Int64.logxor 0L
      [ 0xa9993e36L; 0x4706816aL; 0xba3e2571L; 0x7850c26cL; 0x9cd0d89dL ]
  in
  Alcotest.(check int64) "SHA-1(\"abc\") xor-checksum" expected r

(* Dijkstra on a hand-built graph with known shortest paths. *)
let test_dijkstra_known_graph () =
  let w = Registry.find "dijkstra" in
  let m = Lower.compile w.Workload.source in
  let setup mem =
    Memimage.set_global mem m ~name:"nnodes" ~index:0 4L;
    let edge u v wt =
      Memimage.set_global mem m ~name:"adj" ~index:((u * 128) + v)
        (Int64.of_int wt)
    in
    (* 0 -> 1 (5), 0 -> 2 (2), 2 -> 1 (1), 1 -> 3 (1), 2 -> 3 (7) *)
    edge 0 1 5; edge 0 2 2; edge 2 1 1; edge 1 3 1; edge 2 3 7
  in
  (* query 0: src = 0, dst = 5 mod 4 = 1 -> shortest 0-2-1 = 3 *)
  let r, _ = run_with_mem ~setup m ~entry:"run" ~args:[ 1L ] in
  Alcotest.(check int64) "shortest path 0->1" 3L r

(* Bitcount: all four strategies agree with a host-computed popcount. *)
let test_bitcount_agrees () =
  let host_popcount x =
    let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
    go x 0
  in
  let src =
    (Registry.find "bitcount").Workload.source
    ^ "\nu32 one(u32 x) { return count_kernighan(x) * 1000000 + count_table(x) * 10000 + count_shift(x) * 100 + count_nibble(x); }"
  in
  let m = Lower.compile src in
  (* btbl must be initialised before the counting functions run *)
  let _ = Interp.run_fresh m ~entry:"btbl_init" ~args:[] in
  List.iter
    (fun x ->
      (* fresh memory per run: re-init the table inside the same image *)
      let mem = Memimage.create m in
      let _ = Interp.exec m ~entry:"btbl_init" ~args:[] mem in
      let r = Interp.exec m ~entry:"one" ~args:[ Int64.of_int x ] mem in
      let p = host_popcount x in
      let expected = Int64.of_int ((p * 1000000) + (p * 10000) + (p * 100) + p) in
      Alcotest.(check int64)
        (Printf.sprintf "popcount %d" x)
        expected
        (Option.get r.Interp.ret))
    [ 0; 1; 0xFF; 0xDEADBEE; 0x7FFFFFFF ]

(* qsort really sorts. *)
let test_qsort_sorts () =
  let w = Registry.find "qsort" in
  let m = Lower.compile w.Workload.source in
  let values = [| 9; 3; 7; 3; 0; 250; 100; 65535; 1; 2 |] in
  let setup mem =
    Array.iteri
      (fun i v ->
        Memimage.set_global mem m ~name:"arr" ~index:i (Int64.of_int v))
      values
  in
  let _, mem =
    run_with_mem ~setup m ~entry:"run" ~args:[ Int64.of_int (Array.length values) ]
  in
  (* the comparator orders by (v & 0xFFF, v) *)
  let key v = (Int64.to_int v land 0xFFF, Int64.to_int v) in
  let out =
    Array.init (Array.length values) (fun i ->
        Memimage.get_global mem m ~name:"arr" ~index:i)
  in
  let sorted = ref true in
  for i = 0 to Array.length out - 2 do
    if key out.(i) > key out.(i + 1) then sorted := false
  done;
  Alcotest.(check bool) "array is sorted" true !sorted

(* stringsearch finds exactly the host-counted occurrences. *)
let test_stringsearch_counts () =
  let w = Registry.find "stringsearch" in
  let m = Lower.compile w.Workload.source in
  let text = "abracadabra_abracadabra_abra" in
  let pat = "abra" in
  let setup mem =
    String.iteri
      (fun i ch ->
        Memimage.set_global mem m ~name:"text" ~index:i
          (Int64.of_int (Char.code ch)))
      text;
    Memimage.set_global mem m ~name:"text_len" ~index:0
      (Int64.of_int (String.length text));
    String.iteri
      (fun i ch ->
        Memimage.set_global mem m ~name:"pats" ~index:i
          (Int64.of_int (Char.code ch)))
      pat;
    Memimage.set_global mem m ~name:"pat_off" ~index:0 0L;
    Memimage.set_global mem m ~name:"pat_len" ~index:0
      (Int64.of_int (String.length pat))
  in
  let r, _ = run_with_mem ~setup m ~entry:"run" ~args:[ 1L ] in
  (* host count of (possibly overlapping) occurrences *)
  let count = ref 0 in
  for i = 0 to String.length text - String.length pat do
    if String.sub text i (String.length pat) = pat then incr count
  done;
  Alcotest.(check int64) "occurrences" (Int64.of_int !count) r

let suite =
  [ Alcotest.test_case "AES-128 FIPS-197 vector (interpreter)" `Quick
      test_aes_fips_interp;
    Alcotest.test_case "AES-128 FIPS-197 vector (bitspec machine)" `Quick
      test_aes_fips_machine;
    Alcotest.test_case "CRC-32 check value" `Quick test_crc32_check_value;
    Alcotest.test_case "SHA-1 of 'abc'" `Quick test_sha1_abc;
    Alcotest.test_case "dijkstra known graph" `Quick test_dijkstra_known_graph;
    Alcotest.test_case "bitcount vs host popcount" `Quick test_bitcount_agrees;
    Alcotest.test_case "qsort sorts" `Quick test_qsort_sorts;
    Alcotest.test_case "stringsearch counts occurrences" `Quick
      test_stringsearch_counts ]
