open Bs_ir
open Bs_frontend
open Bs_interp
open Bs_opt

(* Tests for the generic optimisation passes: every transformation must
   preserve interpreter-observable behaviour, and each pass must actually
   do its job on a crafted input. *)

let interp ?setup m ~entry ~args =
  let r, _ = Interp.run_fresh ?setup m ~entry ~args in
  (Option.value r.Interp.ret ~default:0L, r.Interp.steps)

let check_preserves ~name transform src ~entry ~inputs =
  let reference = Lower.compile src in
  let m = Lower.compile src in
  transform m;
  Verifier.verify_exn m;
  List.iter
    (fun args ->
      let expect, _ = interp reference ~entry ~args in
      let got, _ = interp m ~entry ~args in
      Alcotest.(check int64)
        (Printf.sprintf "%s(%s)" name
           (String.concat "," (List.map Int64.to_string args)))
        expect got)
    inputs

let loopy_src =
  "u32 helper(u32 x) { return (x * 3) ^ (x >> 2); }\n\
   u32 f(u32 n) {\n\
   u32 s = 0;\n\
   for (u32 i = 0; i < n; i += 1) {\n\
   s += helper(i) & 255;\n\
   if (s > 10000) s -= 5000;\n\
   }\n\
   return s; }"

let test_dce () =
  let m =
    Lower.compile
      "u32 f(u32 a) { u32 dead1 = a * 17; u32 dead2 = dead1 + 3; return a + 1; }"
  in
  let removed = Dce.run m in
  Alcotest.(check bool) "removed dead chain" true (removed >= 2);
  Verifier.verify_exn m;
  let r, _ = interp m ~entry:"f" ~args:[ 5L ] in
  Alcotest.(check int64) "result" 6L r

let test_dce_keeps_effects () =
  let m =
    Lower.compile
      "u32 g = 0;\nvoid set() { g = 7; }\nu32 f() { set(); return g; }"
  in
  ignore (Dce.run m);
  let r, _ = interp m ~entry:"f" ~args:[] in
  Alcotest.(check int64) "call survived DCE" 7L r

let test_constfold () =
  let m =
    Lower.compile "u32 f() { u32 a = 3 * 4; u32 b = a + 5; return b * 2; }"
  in
  let folded = Constfold.run m in
  Alcotest.(check bool) "folded" true (folded > 0);
  let r, steps = interp m ~entry:"f" ~args:[] in
  Alcotest.(check int64) "value" 34L r;
  (* after folding, f is nearly a bare return *)
  Alcotest.(check bool) "few steps" true (steps <= 3)

let test_constfold_identities () =
  check_preserves ~name:"identities"
    (fun m -> ignore (Constfold.run m))
    "u32 f(u32 x) { return (x + 0) * 1 + (x & 0xFFFFFFFF) + (x ^ 0) + (x | 0); }"
    ~entry:"f"
    ~inputs:[ [ 0L ]; [ 7L ]; [ 0xFFFFFFFFL ] ]

let test_simplify_cfg () =
  let m =
    Lower.compile
      "u32 f(u32 x) { if (1) { return x + 1; } else { return x + 2; } }"
  in
  ignore (Constfold.run m);
  ignore (Simplify_cfg.run m);
  ignore (Dce.run m);
  Verifier.verify_exn m;
  let f = List.hd m.Ir.funcs in
  Alcotest.(check bool) "dead branch removed" true
    (List.length f.Ir.blocks <= 2);
  let r, _ = interp m ~entry:"f" ~args:[ 10L ] in
  Alcotest.(check int64) "value" 11L r

let test_simplify_merges () =
  let m = Lower.compile loopy_src in
  let before = List.length (List.hd m.Ir.funcs).Ir.blocks in
  ignore (Simplify_cfg.run m);
  Verifier.verify_exn m;
  let after = List.length (List.hd m.Ir.funcs).Ir.blocks in
  Alcotest.(check bool) "did not grow" true (after <= before);
  let r, _ = interp m ~entry:"f" ~args:[ 50L ] in
  let reference = Lower.compile loopy_src in
  let e, _ = interp reference ~entry:"f" ~args:[ 50L ] in
  Alcotest.(check int64) "preserved" e r

let test_inline () =
  check_preserves ~name:"inline"
    (fun m -> ignore (Inline.run m ()))
    loopy_src ~entry:"f"
    ~inputs:[ [ 0L ]; [ 10L ]; [ 100L ] ];
  (* helper really got inlined: no call remains in f *)
  let m = Lower.compile loopy_src in
  ignore (Inline.run m ());
  let f = Option.get (Ir.find_func m "f") in
  let has_call =
    List.exists
      (fun (b : Ir.block) ->
        List.exists
          (fun (i : Ir.instr) ->
            match i.Ir.op with Ir.Call _ -> true | _ -> false)
          b.Ir.instrs)
      f.Ir.blocks
  in
  Alcotest.(check bool) "no calls left" false has_call

let test_inline_respects_recursion () =
  let src =
    "u32 fact(u32 n) { if (n < 2) return 1; return n * fact(n - 1); }\n\
     u32 f(u32 n) { return fact(n); }"
  in
  let m = Lower.compile src in
  ignore (Inline.run m ());
  Verifier.verify_exn m;
  let r, _ = interp m ~entry:"f" ~args:[ 6L ] in
  Alcotest.(check int64) "6! = 720" 720L r

let test_inline_skips_loop_callees () =
  let src =
    "u32 inner(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += i; return s; }\n\
     u32 f(u32 n) { return inner(n) + inner(n + 1); }"
  in
  let m = Lower.compile src in
  ignore (Inline.run m ());
  let f = Option.get (Ir.find_func m "f") in
  let calls =
    List.concat_map
      (fun (b : Ir.block) ->
        List.filter
          (fun (i : Ir.instr) ->
            match i.Ir.op with Ir.Call _ -> true | _ -> false)
          b.Ir.instrs)
      f.Ir.blocks
  in
  Alcotest.(check int) "loopy callee kept out of line" 2 (List.length calls)

let test_unroll () =
  let src =
    "u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s = s * 3 + i; return s; }"
  in
  List.iter
    (fun factor ->
      let m = Lower.compile src in
      let unrolled =
        Unroll.run_func (List.hd m.Ir.funcs) ~factor ~max_loop_size:500
      in
      Alcotest.(check bool) "unrolled" true (unrolled > 0 || factor < 2);
      Verifier.verify_exn m;
      let reference = Lower.compile src in
      List.iter
        (fun n ->
          let e, _ = interp reference ~entry:"f" ~args:[ n ] in
          let g, _ = interp m ~entry:"f" ~args:[ n ] in
          Alcotest.(check int64)
            (Printf.sprintf "factor %d, n=%Ld" factor n)
            e g)
        [ 0L; 1L; 2L; 3L; 7L; 64L; 65L ])
    [ 2; 4; 8 ]

let test_unroll_reduces_header_work () =
  let src =
    "u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += i; return s; }"
  in
  let steps_with factor =
    let m = Lower.compile src in
    if factor > 1 then
      ignore (Unroll.run_func (List.hd m.Ir.funcs) ~factor ~max_loop_size:500);
    ignore (Constfold.run m);
    let _, steps = interp m ~entry:"f" ~args:[ 1000L ] in
    steps
  in
  (* IR instruction count must fall monotonically with unrolling (Fig 3) *)
  let s1 = steps_with 1 and s4 = steps_with 4 in
  Alcotest.(check bool)
    (Printf.sprintf "unrolled executes fewer IR instrs (%d vs %d)" s4 s1)
    true (s4 < s1)

(* Property: the composed pipeline (inline+unroll+fold+simplify+dce)
   preserves results on a family of kernels. *)
let prop_pipeline_preserves =
  QCheck.Test.make ~name:"expander pipeline preserves semantics" ~count:40
    QCheck.(pair (int_bound 200) (int_range 1 6))
    (fun (n, k) ->
      let src =
        Printf.sprintf
          "u32 h(u32 x) { return x %% %d + (x >> 1); }\n\
           u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) { s += h(i + s %% 7); } return s; }"
          (k + 1)
      in
      let reference = Lower.compile src in
      let m = Lower.compile src in
      ignore (Bitspec.Expander.run m Bitspec.Expander.default);
      Verifier.verify_exn m;
      let e, _ = interp reference ~entry:"f" ~args:[ Int64.of_int n ] in
      let g, _ = interp m ~entry:"f" ~args:[ Int64.of_int n ] in
      e = g)

let suite =
  [ Alcotest.test_case "dce removes dead chains" `Quick test_dce;
    Alcotest.test_case "dce keeps side effects" `Quick test_dce_keeps_effects;
    Alcotest.test_case "constant folding" `Quick test_constfold;
    Alcotest.test_case "algebraic identities" `Quick test_constfold_identities;
    Alcotest.test_case "simplifycfg constant branches" `Quick test_simplify_cfg;
    Alcotest.test_case "simplifycfg merging" `Quick test_simplify_merges;
    Alcotest.test_case "inliner" `Quick test_inline;
    Alcotest.test_case "inliner vs recursion" `Quick test_inline_respects_recursion;
    Alcotest.test_case "inliner keeps loop callees" `Quick test_inline_skips_loop_callees;
    Alcotest.test_case "unrolling preserves semantics" `Quick test_unroll;
    Alcotest.test_case "unrolling reduces IR instrs (Fig 3)" `Quick
      test_unroll_reduces_header_work;
    QCheck_alcotest.to_alcotest prop_pipeline_preserves ]
