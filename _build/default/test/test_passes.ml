open Bs_ir
open Bs_frontend
open Bs_interp
open Bitspec

(* Tests for the BITSPEC-specific passes: CFG preparation invariants
   (equations 4-6), compare elimination, bitmask elision, SSA repair, and
   the speculation machinery's structural guarantees. *)

let test_cfg_prep_invariants () =
  List.iter
    (fun (w : Bs_workloads.Workload.t) ->
      let m = Lower.compile w.source in
      ignore (Expander.run m Expander.default);
      ignore (Cfg_prep.run m);
      Verifier.verify_exn m;
      List.iter
        (fun f ->
          Alcotest.(check bool)
            (w.name ^ "/" ^ f.Ir.fname ^ " satisfies eqs 4-6")
            true (Cfg_prep.check_func f))
        m.Ir.funcs)
    Bs_workloads.Registry.all

let test_cfg_prep_splits () =
  (* load-after-store in one statement sequence must end up in separate
     blocks (equation 4) *)
  let m =
    Lower.compile
      "u32 a[4];\nu32 f(u32 x) { a[0] = x; u32 y = a[1]; return y; }"
  in
  ignore (Cfg_prep.run m);
  let f = Option.get (Ir.find_func m "f") in
  Alcotest.(check bool) "split happened" true (List.length f.Ir.blocks >= 2);
  Alcotest.(check bool) "eq4 holds" true (Cfg_prep.check_func f);
  let r, _ = Interp.run_fresh m ~entry:"f" ~args:[ 9L ] in
  Alcotest.(check (option int64)) "semantics" (Some 0L) r.Interp.ret

let test_cfg_prep_isolates_calls () =
  let m =
    Lower.compile
      "u32 g(u32 x) { return x + 1; }\n\
       u32 f(u32 x) { u32 a = x * 2; u32 b = g(a); u32 c = b * 3; return c; }"
  in
  ignore (Cfg_prep.run m);
  let f = Option.get (Ir.find_func m "f") in
  Alcotest.(check bool) "eq5 holds" true (Cfg_prep.check_func f);
  List.iter
    (fun (b : Ir.block) ->
      let calls =
        List.filter
          (fun (i : Ir.instr) ->
            match i.Ir.op with Ir.Call _ -> true | _ -> false)
          b.Ir.instrs
      in
      if calls <> [] then
        Alcotest.(check int) "call is alone" 1 (List.length (Ir.body_instrs b)))
    f.Ir.blocks

let squeeze src ~entry ~train =
  let m = Lower.compile src in
  ignore (Cfg_prep.run m);
  let profile = Profile.create () in
  let opts = { Interp.default_opts with profile = Some profile } in
  List.iter
    (fun args -> ignore (Interp.run_fresh ~opts m ~entry ~args))
    train;
  ignore (Squeezer.run m ~profile ~heuristic:Profile.Hmax);
  m

let test_compare_elim () =
  (* i stays below 40 during profiling, so `i < 1000` compares a squeezed
     8-bit variable against a constant that cannot fit the slice: the
     compare folds to true and control flow rides on the speculation. *)
  let src =
    "u32 f(u32 n) {\n\
     u32 s = 0;\n\
     u32 i = 0;\n\
     do { s += i & 7; i += 1; if (i >= n) break; } while (i < 1000);\n\
     return s; }"
  in
  let m = squeeze src ~entry:"f" ~train:[ [ 40L ] ] in
  let eliminated = Compare_elim.run m in
  ignore (Bs_opt.Constfold.run m);
  ignore (Bs_opt.Dce.run m);
  Verifier.verify_exn m;
  Alcotest.(check bool) "eliminated a compare" true (eliminated > 0);
  (* semantics preserved, including past the speculated range *)
  let reference = Lower.compile src in
  List.iter
    (fun n ->
      let e, _ = Interp.run_fresh reference ~entry:"f" ~args:[ n ] in
      let g, _ = Interp.run_fresh m ~entry:"f" ~args:[ n ] in
      Alcotest.(check (option int64))
        (Printf.sprintf "n=%Ld" n)
        e.Interp.ret g.Interp.ret)
    [ 1L; 40L; 200L; 999L; 5000L ]

let test_bitmask_elide () =
  (* and-0xFF feeding a speculative truncate becomes an exact truncate *)
  let src =
    "u32 tab[256];\n\
     u32 f(u32 n) {\n\
     u32 s = 0;\n\
     for (u32 i = 0; i < n; i += 1) {\n\
     u32 masked = (s * 31 + i) & 0xFF;\n\
     s += masked & 15;\n\
     }\n\
     return s & 0xFFFF; }"
  in
  let m = squeeze src ~entry:"f" ~train:[ [ 50L ] ] in
  let elided = Bitmask_elide.run m in
  Verifier.verify_exn m;
  Alcotest.(check bool) "elided something" true (elided > 0);
  (* all de-speculated truncates are now exact: they can never
     misspeculate, and behaviour is unchanged *)
  let reference = Lower.compile src in
  List.iter
    (fun n ->
      let e, _ = Interp.run_fresh reference ~entry:"f" ~args:[ n ] in
      let g, _ = Interp.run_fresh m ~entry:"f" ~args:[ n ] in
      Alcotest.(check (option int64))
        (Printf.sprintf "n=%Ld" n)
        e.Interp.ret g.Interp.ret)
    [ 0L; 50L; 400L ]

let test_ssa_repair () =
  (* diamond with an extra definition injected in one arm: uses below the
     join must observe a phi *)
  let f = Ir.create_func ~name:"r" ~params:[ ("c", 1) ] ~ret_width:32 in
  let b = Builder.create f in
  let entry = Ir.add_block f "entry" in
  let left = Ir.add_block f "left" in
  let right = Ir.add_block f "right" in
  let join = Ir.add_block f "join" in
  Builder.position_at_end b entry;
  let v =
    Builder.bin b Ir.Add ~width:32 (Ir.const ~width:32 1L) (Ir.const ~width:32 2L)
  in
  ignore (Builder.cbr b (Builder.value (Builder.param b 0)) ~if_true:left ~if_false:right);
  Builder.position_at_end b left;
  let alt =
    Builder.bin b Ir.Add ~width:32 (Ir.const ~width:32 10L) (Ir.const ~width:32 20L)
  in
  ignore (Builder.br b join);
  Builder.position_at_end b right;
  ignore (Builder.br b join);
  Builder.position_at_end b join;
  let use =
    Builder.bin b Ir.Add ~width:32 (Builder.value v) (Ir.const ~width:32 100L)
  in
  ignore (Builder.ret b (Some (Builder.value use)));
  (* inject: on the left path, v is redefined to alt *)
  Ssa_repair.repair f ~var:v.Ir.iid
    ~extra_defs:[ (left.Ir.bid, Builder.value alt) ]
    ~preds:(Ir.preds_map f);
  Verifier.check_func f;
  (* join must now start with a phi merging 30 and 3 *)
  let phi = List.find Ir.is_phi join.Ir.instrs in
  (match phi.Ir.op with
  | Ir.Phi incoming -> Alcotest.(check int) "two incomings" 2 (List.length incoming)
  | _ -> assert false);
  let m = { Ir.funcs = [ f ]; globals = [] } in
  let run c =
    let r, _ = Interp.run_fresh m ~entry:"r" ~args:[ c ] in
    Option.get r.Interp.ret
  in
  Alcotest.(check int64) "left path" 130L (run 1L);
  Alcotest.(check int64) "right path" 103L (run 0L)

let test_squeezer_memory_layout_untouched () =
  (* squeezing never changes array element sizes: a squeezed kernel and
     the original must leave identical memory behind *)
  let src =
    "u32 out[32];\n\
     u32 f(u32 n) { for (u32 i = 0; i < n; i += 1) out[i] = (i * 3) & 0xFF; return 0; }"
  in
  let reference = Lower.compile src in
  let m = squeeze src ~entry:"f" ~train:[ [ 16L ] ] in
  let _, mem_ref = Interp.run_fresh reference ~entry:"f" ~args:[ 32L ] in
  let _, mem_sq = Interp.run_fresh m ~entry:"f" ~args:[ 32L ] in
  for i = 0 to 31 do
    Alcotest.(check int64)
      (Printf.sprintf "out[%d]" i)
      (Memimage.get_global mem_ref reference ~name:"out" ~index:i)
      (Memimage.get_global mem_sq m ~name:"out" ~index:i)
  done

let test_handler_structure () =
  let src =
    "u32 f(u32 lim) { u32 x = 0; do { x += 1; } while (x <= lim); return x; }"
  in
  let m = squeeze src ~entry:"f" ~train:[ [ 60L ] ] in
  let f = Option.get (Ir.find_func m "f") in
  Alcotest.(check bool) "has regions" true (f.Ir.regions <> []);
  List.iter
    (fun (r : Ir.region) ->
      (* handler ends with an unconditional branch into CFG_orig *)
      let h = Ir.block f r.Ir.rhandler in
      (match (Ir.terminator h).Ir.op with
      | Ir.Br _ -> ()
      | _ -> Alcotest.fail "handler must end in Br");
      (* regions are single blocks in this implementation *)
      Alcotest.(check int) "single-block region" 1 (List.length r.Ir.rblocks);
      (* the handler is nobody's branch target *)
      List.iter
        (fun (b : Ir.block) ->
          Alcotest.(check bool) "handler not a target" false
            (List.mem r.Ir.rhandler (Ir.succs b)))
        f.Ir.blocks)
    f.Ir.regions

let test_driver_configs () =
  (* the three public configurations compile and agree on results *)
  let src = "u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += i & 31; return s; }" in
  let results =
    List.map
      (fun cfg ->
        let c = Driver.compile ~config:cfg ~source:src ~train:[ ("f", [ 30L ]) ] () in
        (Driver.run_machine c ~entry:"f" ~args:[ 100L ]).Bs_sim.Machine.r0)
      [ Driver.baseline_config; Driver.bitspec_config; Driver.thumb_config ]
  in
  match results with
  | [ a; b; c ] ->
      Alcotest.(check int64) "baseline=bitspec" a b;
      Alcotest.(check int64) "baseline=thumb" a c
  | _ -> assert false

(* Property: compare elimination + bitmask elision never change results. *)
let prop_opts_preserve =
  QCheck.Test.make ~name:"BITSPEC optimisations preserve semantics" ~count:30
    QCheck.(pair (int_bound 300) (int_range 1 255))
    (fun (n, k) ->
      let src =
        Printf.sprintf
          "u32 f(u32 n) { u32 s = 0; u32 i = 0; do { s += (i * %d) & 0xFF; i += 1; if (i >= n) break; } while (i < 500); return s; }"
          k
      in
      let reference = Lower.compile src in
      let m = squeeze src ~entry:"f" ~train:[ [ 35L ] ] in
      ignore (Compare_elim.run m);
      ignore (Bitmask_elide.run m);
      ignore (Bs_opt.Constfold.run m);
      ignore (Bs_opt.Dce.run m);
      Verifier.verify_exn m;
      let e, _ = Interp.run_fresh reference ~entry:"f" ~args:[ Int64.of_int n ] in
      let g, _ = Interp.run_fresh m ~entry:"f" ~args:[ Int64.of_int n ] in
      e.Interp.ret = g.Interp.ret)

let suite =
  [ Alcotest.test_case "cfg_prep invariants on all workloads" `Slow
      test_cfg_prep_invariants;
    Alcotest.test_case "cfg_prep splits WAR blocks (eq 4)" `Quick
      test_cfg_prep_splits;
    Alcotest.test_case "cfg_prep isolates calls (eq 5)" `Quick
      test_cfg_prep_isolates_calls;
    Alcotest.test_case "compare elimination (§3.2.4)" `Quick test_compare_elim;
    Alcotest.test_case "bitmask elision (RQ3)" `Quick test_bitmask_elide;
    Alcotest.test_case "SSA repair at joins" `Quick test_ssa_repair;
    Alcotest.test_case "memory layout untouched" `Quick
      test_squeezer_memory_layout_untouched;
    Alcotest.test_case "handler structure (§3.1.1)" `Quick test_handler_structure;
    Alcotest.test_case "driver configurations agree" `Quick test_driver_configs;
    QCheck_alcotest.to_alcotest prop_opts_preserve ]
