open Bs_workloads
open Bitspec

(* Every workload must produce the same checksum on:
   - the reference interpreter,
   - the BASELINE machine,
   - the BITSPEC machine (squeezed, speculative),
   - the Thumb machine,
   on its test input.  This pins the whole stack together. *)

let check_workload (w : Workload.t) () =
  let expect = Experiment.reference_checksum w in
  let base = Experiment.run Driver.baseline_config w in
  Alcotest.(check int64) (w.name ^ " baseline") expect base.Experiment.checksum;
  let bspec = Experiment.run Driver.bitspec_config w in
  Alcotest.(check int64) (w.name ^ " bitspec") expect bspec.Experiment.checksum;
  let thumb = Experiment.run Driver.thumb_config w in
  Alcotest.(check int64) (w.name ^ " thumb") expect thumb.Experiment.checksum;
  (* sanity on the counters the figures are built from *)
  Alcotest.(check bool) (w.name ^ " instrs > 0") true (base.Experiment.instrs > 0);
  Alcotest.(check bool)
    (w.name ^ " thumb executes more instructions (Fig 18)")
    true
    (thumb.Experiment.instrs >= base.Experiment.instrs)

let check_heuristics (w : Workload.t) () =
  (* results must be invariant across selection heuristics *)
  let expect = Experiment.reference_checksum w in
  List.iter
    (fun h ->
      let cfg = { Driver.bitspec_config with heuristic = h } in
      let m = Experiment.run cfg w in
      Alcotest.(check int64)
        (w.name ^ " " ^ Bs_interp.Profile.heuristic_name h)
        expect m.Experiment.checksum)
    [ Bs_interp.Profile.Hmax; Bs_interp.Profile.Havg; Bs_interp.Profile.Hmin ]

let suite =
  List.map
    (fun (w : Workload.t) ->
      Alcotest.test_case w.name `Slow (check_workload w))
    Registry.all
  @ List.map
      (fun (w : Workload.t) ->
        Alcotest.test_case (w.name ^ " heuristics") `Slow (check_heuristics w))
      [ Registry.find "CRC32"; Registry.find "stringsearch";
        Registry.find "patricia"; Registry.find "susan-edges" ]
