(* Bring your own kernel: the full public API on user-written MiniC.

     dune exec examples/custom_kernel.exe

   Compiles a small image-threshold kernel under all three architectures
   (BASELINE / BITSPEC / Thumb) and all three selection heuristics,
   demonstrates input setup through the memory image, and prints a small
   report like bitspecc's. *)

open Bitspec
open Bs_interp
open Bs_energy
open Bs_support

let source =
  {|
u8 img[4096];
u8 out[4096];

u32 run(u32 n) {
  u32 edges = 0;
  for (u32 i = 1; i + 1 < n; i += 1) {
    u32 left = img[i - 1];
    u32 here = img[i];
    u32 right = img[i + 1];
    u32 d1 = here > left ? here - left : left - here;
    u32 d2 = here > right ? here - right : right - here;
    u32 grad = d1 + d2;
    if (grad > 40) { out[i] = 255; edges += 1; }
    else out[i] = (u8)(grad * 3);
  }
  return edges * 65536 + (out[n / 2] & 0xFF);
}
|}

let setup m mem =
  let rng = Rng.create 4242L in
  for i = 0 to 4095 do
    (* smooth signal with occasional sharp edges *)
    let base = 100 + int_of_float (40.0 *. sin (float_of_int i /. 25.0)) in
    let v = if Rng.int rng 37 = 0 then 255 else base + Rng.int rng 9 in
    Memimage.set_global mem m ~name:"img" ~index:i (Int64.of_int v)
  done

let () =
  print_endline "=== custom kernel: 1-D edge detector under every build ===\n";
  Printf.printf "%-10s %-5s %12s %12s %10s %8s\n" "arch" "T" "energy" "instrs"
    "EPI" "misspec";
  let run_with config label =
    let c =
      Driver.compile ~config ~source ~setup:(fun m -> setup m)
        ~train:[ ("run", [ 2048L ]) ] ()
    in
    let r =
      Driver.run_machine ~setup:(setup c.Driver.ir) c ~entry:"run"
        ~args:[ 4096L ]
    in
    let e = Energy.of_result r in
    Printf.printf "%-10s %-5s %12.0f %12d %10.3f %8d   -> %Ld\n" label
      (Profile.heuristic_name config.Driver.heuristic)
      (Energy.total e) r.Bs_sim.Machine.ctr.Bs_sim.Counters.instrs
      (Energy.epi e r.Bs_sim.Machine.ctr)
      r.Bs_sim.Machine.ctr.Bs_sim.Counters.misspecs r.Bs_sim.Machine.r0
  in
  run_with Driver.baseline_config "baseline";
  List.iter
    (fun h ->
      run_with { Driver.bitspec_config with heuristic = h } "bitspec")
    [ Profile.Hmax; Profile.Havg; Profile.Hmin ];
  run_with Driver.thumb_config "thumb";
  print_endline
    "\nAll rows print the same checksum: squeezing and heuristics change\n\
     energy and instruction count, never the result."
