(* Quickstart: the paper's §3 running example, end to end.

     dune exec examples/quickstart.exe

   Compiles a counter loop whose value fits 8 bits until it crosses 255,
   shows the squeezed IR (speculative region + handler), then runs the
   binary on the simulated BITSPEC machine — once without misspeculation,
   once across the 8-bit boundary where the hardware redirects PC by Δ
   into the handler and CFG_orig finishes at full width. *)

open Bitspec
open Bs_sim

let source =
  "u32 f(u32 lim) { u32 x = 0; do { x += 1; } while (x <= lim); return x; }"

let () =
  print_endline "=== BITSPEC quickstart: the paper's do-while example ===\n";
  (* 1. Compile with profiling on a small training input (lim = 100). *)
  let c =
    Driver.compile ~config:Driver.bitspec_config ~source
      ~train:[ ("f", [ 100L ]) ] ()
  in
  print_endline "Squeezed SIR (note !speculative ops, the region and its handler):\n";
  print_string (Bs_ir.Printer.module_str c.Driver.ir);
  (match c.Driver.squeeze_stats with
  | Some s ->
      Printf.printf
        "\nsqueezer: %d instructions narrowed, %d speculative truncates, %d \
         extensions, %d regions\n"
        s.Squeezer.squeezed s.Squeezer.truncs s.Squeezer.exts s.Squeezer.regions
  | None -> ());
  Printf.printf "program: %d instructions, Δ (misspeculation displacement) = %d\n\n"
    (Array.length c.Driver.program.Bs_backend.Asm.code)
    c.Driver.program.Bs_backend.Asm.delta;
  (* 2. Run within the speculated range: everything stays at 8 bits. *)
  let r1 = Driver.run_machine c ~entry:"f" ~args:[ 200L ] in
  Printf.printf "f(200) = %Ld   (misspeculations: %d — entirely 8-bit)\n"
    r1.Machine.r0 r1.Machine.ctr.Counters.misspecs;
  (* 3. Run across the slice boundary: the add of 255 + 1 overflows the
     slice, the hardware jumps PC+Δ into the skeleton, the handler extends
     x to 32 bits and CFG_orig finishes the loop. *)
  let r2 = Driver.run_machine c ~entry:"f" ~args:[ 400L ] in
  Printf.printf "f(400) = %Ld   (misspeculations: %d — recovered at 32 bits)\n"
    r2.Machine.r0 r2.Machine.ctr.Counters.misspecs;
  assert (r1.Machine.r0 = 201L && r2.Machine.r0 = 401L);
  print_endline "\nBoth answers match the C semantics. Speculation is invisible."
