(* Figure-1-style bitwidth report for user code.

     dune exec examples/bitwidth_report.exe

   Profiles a kernel and prints, per width class, how its dynamic integer
   instructions are classified by (a) the bits they actually required,
   (b) the programmer's declarations, (c) static demanded-bits analysis,
   and (d) basic-block coercion — the §2 motivation study, on demand. *)

open Bs_frontend
open Bs_interp
open Bs_analysis

let source =
  {|
u8 histogram[256];
u32 total = 0;

u32 run(u32 n) {
  u32 seed = 12345;
  for (u32 i = 0; i < n; i += 1) {
    seed = seed * 1103515245 + 12345;
    u32 bucket = (seed >> 16) & 0xFF;
    histogram[bucket] = (u8)(histogram[bucket] + 1);
    total += 1;
  }
  u32 peak = 0;
  for (u32 b = 0; b < 256; b += 1) {
    if (histogram[b] > peak) peak = histogram[b];
  }
  return peak * 1000 + (total & 0xFF);
}
|}

let print_row name (d : float array) =
  Printf.printf "  %-16s" name;
  Array.iter (fun v -> Printf.printf " %7.1f%%" (100.0 *. v)) d;
  print_newline ()

let () =
  print_endline "=== Bitwidth selection report (the paper's §2 study) ===\n";
  print_endline "Kernel: byte histogram of an LCG stream.\n";
  let m = Lower.compile source in
  let profile = Profile.create () in
  let opts = { Interp.default_opts with profile = Some profile } in
  let r, _ = Interp.run_fresh ~opts m ~entry:"run" ~args:[ 5000L ] in
  Printf.printf "executed %d dynamic IR instructions, result %Ld\n\n"
    r.Interp.steps
    (Option.get r.Interp.ret);
  Printf.printf "  %-16s %8s %8s %8s %8s\n" "" "8-bit" "16-bit" "32-bit" "64-bit";
  print_row "required" (Profile.required_distribution profile);
  print_row "programmer" (Profile.programmer_distribution profile);
  let db = Demanded_bits.module_selection m in
  print_row "demanded-bits" (Profile.selection_distribution profile ~select:db);
  let bc = Block_coerce.selection m profile in
  print_row "block-coerced" (Profile.selection_distribution profile ~select:bc);
  print_newline ();
  Printf.printf "  %-16s %8s %8s %8s %8s\n" "heuristic T =" "8-bit" "16-bit"
    "32-bit" "64-bit";
  List.iter
    (fun h ->
      print_row (Profile.heuristic_name h)
        (Profile.heuristic_distribution profile h))
    [ Profile.Hmax; Profile.Havg; Profile.Hmin ];
  print_endline
    "\nReading: the histogram counters and bucket indices need 8 bits, but\n\
     the declarations and the static analysis keep most of the kernel at\n\
     32 bits — the gap BITSPEC's profile-guided speculation closes."
