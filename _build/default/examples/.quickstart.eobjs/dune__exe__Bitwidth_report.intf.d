examples/bitwidth_report.mli:
