examples/stringsearch_speculation.ml: Bitspec Bs_energy Bs_workloads Driver Energy Experiment Printf Registry
