examples/custom_kernel.ml: Bitspec Bs_energy Bs_interp Bs_sim Bs_support Driver Energy Int64 List Memimage Printf Profile Rng
