examples/quickstart.ml: Array Bitspec Bs_backend Bs_ir Bs_sim Counters Driver Machine Printf Squeezer
