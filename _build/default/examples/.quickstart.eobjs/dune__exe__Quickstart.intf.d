examples/quickstart.mli:
