examples/crc32_outliers.ml: Bitspec Bs_frontend Bs_interp Bs_workloads Crc32 Driver Experiment Int64 Option Printf Registry Workload
