examples/bitwidth_report.ml: Array Block_coerce Bs_analysis Bs_frontend Bs_interp Demanded_bits Interp List Lower Option Printf Profile
