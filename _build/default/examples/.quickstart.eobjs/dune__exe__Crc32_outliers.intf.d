examples/crc32_outliers.mli:
