(* Listing 1 of the paper: stringsearch.

     dune exec examples/stringsearch_speculation.exe

   The hot loop of Boyer-Moore-Horspool operates on pattern positions that
   the programmer declared at full width but that never exceed the pattern
   length (≤ 12 here).  BITSPEC speculates the whole loop into 8-bit
   slices; this example compares the baseline and BITSPEC builds on the
   same inputs and prints where the energy goes. *)

open Bitspec
open Bs_workloads
open Bs_energy

let () =
  print_endline "=== stringsearch: per-variable speculation on Listing 1 ===\n";
  let w = Registry.find "stringsearch" in
  let base = Experiment.run Driver.baseline_config w in
  let spec = Experiment.run Driver.bitspec_config w in
  Printf.printf "checksums: baseline %Ld, bitspec %Ld (%s)\n\n"
    base.Experiment.checksum spec.Experiment.checksum
    (if base.Experiment.checksum = spec.Experiment.checksum then "equal"
     else "DIFFER");
  let p name f =
    Printf.printf "%-24s baseline %12.0f   bitspec %12.0f   (%.3f)\n" name
      (f base) (f spec)
      (f spec /. f base)
  in
  p "energy" (fun m -> m.Experiment.total_energy);
  p "dynamic instructions" (fun m -> float_of_int m.Experiment.instrs);
  p "energy per instruction" (fun m -> m.Experiment.epi);
  p "regfile energy" (fun m -> m.Experiment.energy.Energy.regfile);
  p "ALU energy" (fun m -> m.Experiment.energy.Energy.alu);
  Printf.printf "\n8-bit register accesses: %d (baseline has none)\n"
    spec.Experiment.reg_accesses_8;
  Printf.printf "misspeculations on the test input: %d\n"
    spec.Experiment.misspecs;
  print_endline
    "\nPattern positions, skip-table entries and loop counters all ran in\n\
     8-bit register slices; the rare pattern longer than the training\n\
     profile predicted is caught by the hardware and re-executed wide."
