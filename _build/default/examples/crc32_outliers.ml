(* CRC32 with outlier records: misspeculation as a safety net.

     dune exec examples/crc32_outliers.exe

   The paper observes (§3) that CRC32's record lengths are almost always
   byte-sized, with rare outliers up to 2729 bytes.  The training input
   contains only short records, so the profiler speculates the length
   arithmetic at 8 bits; the test input contains long records, and every
   one of them triggers exactly one misspeculation whose handler re-runs
   that record's loop at 32 bits.  Correctness is untouched. *)

open Bitspec
open Bs_workloads

let () =
  print_endline "=== CRC32: speculation with input outliers ===\n";
  let w = Registry.find "CRC32" in
  let c = Experiment.compile_workload Driver.bitspec_config w in
  (* Short records only: the speculation never fails. *)
  let short = Crc32.gen_input ~seed:77L ~nlines:128 ~outliers:false in
  let m_short = Experiment.run_compiled c w ~input:short in
  Printf.printf "128 short records : checksum %Ld, %d misspeculations\n"
    m_short.Experiment.checksum m_short.Experiment.misspecs;
  (* With outliers: each long record misspeculates once, then recovers. *)
  let long = Crc32.gen_input ~seed:78L ~nlines:128 ~outliers:true in
  let m_long = Experiment.run_compiled c w ~input:long in
  Printf.printf "with outliers     : checksum %Ld, %d misspeculations\n"
    m_long.Experiment.checksum m_long.Experiment.misspecs;
  (* The reference interpreter agrees on both inputs. *)
  let reference input =
    let m = Bs_frontend.Lower.compile w.source in
    let r, _ =
      Bs_interp.Interp.run_fresh ~setup:(input.Workload.setup m) m
        ~entry:w.entry ~args:input.Workload.args
    in
    Int64.logand (Option.get r.Bs_interp.Interp.ret) 0xFFFFFFFFL
  in
  assert (reference short = m_short.Experiment.checksum);
  assert (reference long = m_long.Experiment.checksum);
  Printf.printf
    "\nBoth checksums match the reference interpreter.  Each of the %d\n\
     misspeculations is one long record crossing the 8-bit boundary; its\n\
     invocation finishes at the original bitwidth and the next record\n\
     re-enters the speculative code.\n"
    m_long.Experiment.misspecs
