(* Set-associative LRU cache model.

   The configuration mirrors the paper's platform: 8 KiB 4-way L1
   instruction and data caches with 32-byte lines, backed by a 256 KiB
   8-way L2 and fixed-latency DRAM. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bytes : int;
  tags : int array array;        (* [set].[way] = tag, -1 empty *)
  stamp : int array array;       (* LRU timestamps *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~name ~size_bytes ~ways ~line_bytes =
  let lines = size_bytes / line_bytes in
  let sets = lines / ways in
  { name; sets; ways; line_bytes;
    tags = Array.make_matrix sets ways (-1);
    stamp = Array.make_matrix sets ways 0;
    tick = 0; hits = 0; misses = 0 }

(** [access t addr] looks the address up, updating LRU state and filling on
    miss.  Returns [true] on hit. *)
let access t addr =
  t.tick <- t.tick + 1;
  let line = addr / t.line_bytes in
  let set = line mod t.sets in
  let tag = line / t.sets in
  let ways_tags = t.tags.(set) and ways_stamp = t.stamp.(set) in
  let hit = ref false in
  for w = 0 to t.ways - 1 do
    if ways_tags.(w) = tag then begin
      hit := true;
      ways_stamp.(w) <- t.tick
    end
  done;
  if !hit then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* evict LRU *)
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if ways_stamp.(w) < ways_stamp.(!victim) then victim := w
    done;
    ways_tags.(!victim) <- tag;
    ways_stamp.(!victim) <- t.tick;
    false
  end

let accesses t = t.hits + t.misses

let reset t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) (-1)) t.tags;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.stamp;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0

(** The paper's memory hierarchy, fresh. *)
let l1i () = create ~name:"I$" ~size_bytes:(8 * 1024) ~ways:4 ~line_bytes:32
let l1d () = create ~name:"D$" ~size_bytes:(8 * 1024) ~ways:4 ~line_bytes:32
let l2 () = create ~name:"L2" ~size_bytes:(256 * 1024) ~ways:8 ~line_bytes:32
