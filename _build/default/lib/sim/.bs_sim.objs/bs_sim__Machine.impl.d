lib/sim/machine.ml: Array Bs_backend Bs_interp Bs_isa Cache Counters Hashtbl Int64 Isa List Memimage Printf
