lib/sim/cache.mli:
