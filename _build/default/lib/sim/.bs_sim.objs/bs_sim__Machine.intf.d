lib/sim/machine.mli: Bs_backend Bs_interp Bs_isa Cache Counters
