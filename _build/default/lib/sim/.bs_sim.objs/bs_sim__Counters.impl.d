lib/sim/counters.ml:
