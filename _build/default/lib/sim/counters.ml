(* Activity counters — the simulator's equivalent of the paper's
   gate-level activity tracking, consumed by the energy model (Figure 9)
   and the microarchitectural breakdowns (Figures 10 and 11). *)

type t = {
  mutable cycles : int;
  mutable instrs : int;                (* dynamic instructions *)
  mutable misspecs : int;
  (* register file (Figure 11) *)
  mutable reg_read32 : int;
  mutable reg_read8 : int;
  mutable reg_write32 : int;
  mutable reg_write8 : int;
  (* ALU activity *)
  mutable alu32 : int;
  mutable alu8 : int;
  mutable mul_ops : int;
  mutable div_ops : int;
  (* memory *)
  mutable loads : int;
  mutable stores : int;
  (* spill traffic (Figure 10) *)
  mutable spill_loads : int;
  mutable spill_stores : int;
  mutable copies : int;
  (* stalls *)
  mutable stall_cycles : int;
  mutable branch_stalls : int;
  mutable load_use_stalls : int;
}

let create () =
  { cycles = 0; instrs = 0; misspecs = 0;
    reg_read32 = 0; reg_read8 = 0; reg_write32 = 0; reg_write8 = 0;
    alu32 = 0; alu8 = 0; mul_ops = 0; div_ops = 0;
    loads = 0; stores = 0;
    spill_loads = 0; spill_stores = 0; copies = 0;
    stall_cycles = 0; branch_stalls = 0; load_use_stalls = 0 }

let reg_reads t = t.reg_read32 + t.reg_read8
let reg_writes t = t.reg_write32 + t.reg_write8
let reg_accesses t = reg_reads t + reg_writes t
