(** The BSARM machine model (§3.5): a 32-bit, single-issue, in-order
    6-stage pipeline with the BITSPEC misspeculation hardware.

    Register slices alias register bytes exactly as in hardware.  The
    slice ALU detects misspeculation from carry/overflow at the slice
    boundary; on misspeculation the result is not written and the PC is
    displaced by the Δ special register, landing on the skeleton branch
    that reaches the current region's handler (§3.3.4).

    Timing: 1 cycle per instruction, +2 for taken branches, +1 for
    load-use hazards, +2 MUL, +10 DIV, plus the memory hierarchy (L1 hit
    0, L2 8, DRAM 60 extra cycles). *)

exception Sim_trap of string

type config = {
  mode : Bs_isa.Isa.mode;  (** Classic disables the slice extension (§3.4) *)
  fuel : int;              (** dynamic instruction budget *)
}

val default_config : config

type result = {
  r0 : int64;          (** the return register after HALT *)
  ctr : Counters.t;    (** activity counters (figures 8-11) *)
  icache : Cache.t;
  dcache : Cache.t;
  l2 : Cache.t;
}

val run :
  ?config:config ->
  Bs_backend.Asm.program ->
  Bs_interp.Memimage.t ->
  entry:string ->
  args:int64 list ->
  result
(** Execute [entry] with the stack-args calling convention until the
    bootstrap HALT.  Arguments are pushed onto the simulated stack; the
    result is read from R0.
    @raise Sim_trap on division by zero, PC escapes, classic-mode slice
    use, or fuel exhaustion. *)
