lib/frontend/lower.mli: Bs_ir Tast
