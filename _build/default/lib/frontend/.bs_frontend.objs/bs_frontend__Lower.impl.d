lib/frontend/lower.ml: Ast Bs_ir Builder Hashtbl Ir List Option Parser Tast Typecheck Verifier
