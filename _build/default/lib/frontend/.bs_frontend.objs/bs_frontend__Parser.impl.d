lib/frontend/parser.ml: Ast Bs_ir Int64 Lexer List Printf String Width
