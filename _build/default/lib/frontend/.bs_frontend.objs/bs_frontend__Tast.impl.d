lib/frontend/tast.ml: Ast
