lib/frontend/ast.ml: Printf
