lib/frontend/typecheck.ml: Array Ast Bs_ir Char Hashtbl Int64 List Printf String Tast Width
