(** TAST → SIR lowering with on-the-fly SSA construction (Braun et al.,
    CC 2013): local scalars never touch memory; phis are created lazily
    when blocks are sealed and trivial phis are removed with forwarding. *)

exception Error of string

val lower_func : Tast.tfunc -> Bs_ir.Ir.func
(** Lower one checked function to SSA. *)

val lower_program : Tast.tprogram -> Bs_ir.Ir.modul

val compile : string -> Bs_ir.Ir.modul
(** The whole front-end: lex, parse, check, lower, verify.
    @raise Lexer.Error, Parser.Error, Typecheck.Error or Error on
    malformed input; the returned module always passes the verifier. *)
