(** Recursive-descent parser for MiniC, following C operator precedence. *)

exception Error of string * int
(** Message and source line. *)

val parse : string -> Ast.program
(** [parse src] lexes and parses a compilation unit.
    @raise Error or {!Lexer.Error} on malformed input. *)
