(** Type checking and resolution: AST → TAST.

    MiniC follows simplified C rules: integer promotion to 32 bits for
    arithmetic (keeping signedness — this is what makes Figure 1b's
    programmer-width distribution look like clang output), usual
    arithmetic conversions, value-converting assignment, and truthiness
    conditions.  Locals are alpha-renamed to unique symbols so SSA
    construction never sees shadowing. *)

exception Error of string * int
(** Message and source line. *)

val check_program : Ast.program -> Tast.tprogram
