(* Abstract syntax of MiniC, the C-like input language of the BITSPEC
   compiler.  MiniC covers the integer/array/control-flow subset of C that
   the MiBench kernels use: sized integer types, global and local arrays,
   functions, and structured control flow.  There are no structs and no
   general pointers; arrays decay to addresses when passed to functions
   ([u32 a\[\]] parameters). *)

type ity = { w : int; signed : bool }

let u8 = { w = 8; signed = false }
let u16 = { w = 16; signed = false }
let u32 = { w = 32; signed = false }
let u64 = { w = 64; signed = false }
let i8 = { w = 8; signed = true }
let i16 = { w = 16; signed = true }
let i32 = { w = 32; signed = true }
let i64 = { w = 64; signed = true }
let bool_ty = { w = 1; signed = false }

let ity_name t =
  Printf.sprintf "%c%d" (if t.signed then 'i' else 'u') t.w

type binop =
  | BAdd | BSub | BMul | BDiv | BMod
  | BAnd | BOr | BXor | BShl | BShr
  | BEq | BNe | BLt | BLe | BGt | BGe
  | BLogAnd | BLogOr

type unop = UNeg | UNot (* bitwise ~ *) | ULogNot

type expr = { e : expr_desc; eline : int }

and expr_desc =
  | Int of int64                        (* literal; type chosen by checker *)
  | Ident of string
  | Index of string * expr              (* a[i] *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Cond of expr * expr * expr          (* c ? a : b *)
  | CastE of ity * expr
  | CallE of string * expr list

type lvalue = Lid of string | Lindex of string * expr

type stmt = { s : stmt_desc; sline : int }

and stmt_desc =
  | Decl of ity * string * expr option
  | DeclArr of ity * string * int       (* local array: elem type, name, count *)
  | Assign of lvalue * expr
  | OpAssign of binop * lvalue * expr   (* x += e, a[i] <<= e, ... *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | DoWhile of stmt list * expr
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue
  | ExprStmt of expr
  | Block of stmt list

type param =
  | Pscalar of ity * string
  | Parray of ity * string              (* T name[] — an address parameter *)

type ginit =
  | Gnone
  | Gscalar of int64
  | Glist of int64 list
  | Gstring of string

type top =
  | Gdecl of { gty : ity; gname : string; count : int; init : ginit; volatile : bool }
  | Fdecl of { rty : ity option; fnname : string; fparams : param list; body : stmt list }

type program = top list
