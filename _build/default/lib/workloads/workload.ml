open Bs_ir
open Bs_interp
open Bs_support

(* A benchmark: MiniC source, an entry point returning a checksum, and
   deterministic input generators.

   Three input sets reproduce MiBench's structure:
   - [train]: the profiling input ("small");
   - [test]: the measured input ("large");
   - [alt]: an alternate input from the same generator family, used by the
     RQ6 sensitivity study to profile with. *)

type input = {
  args : int64 list;
  setup : Ir.modul -> Memimage.t -> unit;
}

type t = {
  name : string;
  description : string;
  source : string;
  entry : string;
  train : input;
  test : input;
  alt : input;
  narrow_source : string option;
      (* RQ7: a hand-tuned variant using the narrowest safe declarations,
         against which the default (worst-case-width) source is compared *)
}

let no_setup : Ir.modul -> Memimage.t -> unit = fun _ _ -> ()

(* Shared helpers for input generators. *)

let fill_bytes rng m mem ~name ~count =
  for i = 0 to count - 1 do
    Memimage.set_global mem m ~name ~index:i (Int64.of_int (Rng.int rng 256))
  done

let fill_words rng m mem ~name ~count ~bound =
  for i = 0 to count - 1 do
    Memimage.set_global mem m ~name ~index:i (Int64.of_int (Rng.int rng bound))
  done

let set m mem ~name v = Memimage.set_global mem m ~name ~index:0 v
