open Bs_support

(* The SUSAN image-processing trio (smoothing, edges, corners) on 64×64
   8-bit images with a brightness-similarity LUT, structurally following
   MiBench's susan (masks reduced from the 37-pixel disc to 3×3/5×5
   neighbourhoods to fit tiny-device image sizes).

   Image pixels and the USAN running sums live in 8–16 bits, which is why
   the paper calls out susan as the case where basic-block coercion
   collapses (Figure 1d: few wide accumulators drag every pixel variable
   to 32 bits, where per-variable speculation does not). *)

let dim = 64
let stride = dim + 2 (* one-pixel border *)

let common =
  Printf.sprintf
    {|
u8 img[%d];
u8 blut[512];
u32 out_acc = 0;

void build_lut(u32 threshold) {
  for (u32 i = 0; i < 512; i += 1) {
    u32 d = i > 255 ? i - 255 : 255 - i;
    u32 num = d * 100 / threshold;
    if (num > 100) blut[i] = 0;
    else blut[i] = (u8)(100 - num);
  }
}
|}
    (stride * stride)

let smoothing_source =
  common
  ^ Printf.sprintf
      {|
u32 run(u32 threshold) {
  build_lut(threshold);
  u32 acc = 0;
  for (u32 y = 1; y <= %d; y += 1) {
    for (u32 x = 1; x <= %d; x += 1) {
      u32 c = img[y * %d + x];
      u32 total = 0;
      u32 wsum = 0;
      for (u32 dy = 0; dy < 3; dy += 1) {
        for (u32 dx = 0; dx < 3; dx += 1) {
          u32 p = img[(y + dy - 1) * %d + (x + dx - 1)];
          u32 w = blut[255 + p - c];
          total += w * p;
          wsum += w;
        }
      }
      u32 sm = wsum != 0 ? total / wsum : c;
      acc = (acc + sm) & 0xFFFFFF;
    }
  }
  return acc;
}
|}
      dim dim stride stride

let edges_source =
  common
  ^ Printf.sprintf
      {|
u32 run(u32 threshold) {
  build_lut(threshold);
  u32 g = 600;
  u32 edges = 0;
  u32 acc = 0;
  for (u32 y = 1; y <= %d; y += 1) {
    for (u32 x = 1; x <= %d; x += 1) {
      u32 c = img[y * %d + x];
      u32 usan = 0;
      for (u32 dy = 0; dy < 3; dy += 1) {
        for (u32 dx = 0; dx < 3; dx += 1) {
          u32 p = img[(y + dy - 1) * %d + (x + dx - 1)];
          usan += blut[255 + p - c];
        }
      }
      if (usan < g) {
        edges += 1;
        acc += g - usan;
      }
    }
  }
  return edges * 65536 + (acc & 0xFFFF);
}
|}
      dim dim stride stride

let corners_source =
  common
  ^ Printf.sprintf
      {|
u32 run(u32 threshold) {
  build_lut(threshold);
  u32 g = 350;
  u32 corners = 0;
  u32 acc = 0;
  for (u32 y = 2; y <= %d; y += 1) {
    for (u32 x = 2; x <= %d; x += 1) {
      u32 c = img[y * %d + x];
      u32 usan = 0;
      for (u32 dy = 0; dy < 5; dy += 1) {
        for (u32 dx = 0; dx < 5; dx += 1) {
          u32 yy = y + dy - 2;
          u32 xx = x + dx - 2;
          u32 p = img[yy * %d + xx];
          usan += blut[255 + p - c];
        }
      }
      if (usan < g) {
        corners += 1;
        acc += g - usan;
      }
    }
  }
  return corners * 65536 + (acc & 0xFFFF);
}
|}
      (dim - 1) (dim - 1) stride stride

(** Synthetic textured image: gradients, blobs and noise with a controlled
    intensity range (the BSDS500 substitution for Figure 16). *)
let write_image ~seed ~range m mem =
  let rng = Rng.create seed in
  let cx = Rng.int rng dim and cy = Rng.int rng dim in
  for y = 0 to stride - 1 do
    for x = 0 to stride - 1 do
      let gradient = (x * range / stride) + (y * range / (2 * stride)) in
      let dx = x - cx and dy = y - cy in
      let blob = if (dx * dx) + (dy * dy) < 150 then range / 3 else 0 in
      let noise = Rng.int rng 24 in
      let v = min 255 (gradient + blob + noise) in
      Bs_interp.Memimage.set_global mem m ~name:"img" ~index:((y * stride) + x)
        (Int64.of_int v)
    done
  done

let gen_input ~seed ~range ~threshold : Workload.input =
  { args = [ Int64.of_int threshold ];
    setup = (fun m mem -> write_image ~seed ~range m mem) }

let make name description source : Workload.t =
  { name;
    description;
    source;
    entry = "run";
    train = gen_input ~seed:111L ~range:160 ~threshold:20;
    test = gen_input ~seed:112L ~range:200 ~threshold:20;
    alt = gen_input ~seed:113L ~range:120 ~threshold:20;
    narrow_source = None }

let smoothing = make "susan-smoothing" "USAN-weighted 3x3 smoothing" smoothing_source
let edges = make "susan-edges" "USAN edge response" edges_source
let corners = make "susan-corners" "USAN corner response (5x5)" corners_source
