open Bs_support

(* basicmath: integer square roots, cube-root iteration, GCDs and
   degree/radian conversions in fixed point.

   Substitution note: MiBench's basicmath is double-precision; tiny
   devices run it in fixed point, and integer arithmetic is what the
   BITSPEC hardware speculates on, so this port computes the same
   functions in Q12/integer arithmetic. *)

let source =
  {|
u32 vals[2048];

u32 isqrt(u32 x) {
  u32 res = 0;
  u32 bit = 1 << 30;
  while (bit > x) bit = bit >> 2;
  while (bit != 0) {
    if (x >= res + bit) {
      x -= res + bit;
      res = (res >> 1) + bit;
    } else {
      res = res >> 1;
    }
    bit = bit >> 2;
  }
  return res;
}

u32 icbrt(u32 x) {
  u32 y = 0;
  for (i32 s = 30; s >= 0; s -= 3) {
    y = 2 * y;
    u32 b = (3 * y * (y + 1) + 1) << (u32)s;
    if (x >= b) {
      x -= b;
      y += 1;
    }
  }
  return y;
}

u32 gcd(u32 a, u32 b) {
  while (b != 0) {
    u32 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

u32 deg_to_rad_q12(u32 deg) {
  return (deg * 71) / 4068;
}

u32 run(u32 n) {
  u32 acc = 0;
  for (u32 i = 0; i < n; i += 1) {
    u32 v = vals[i];
    acc += isqrt(v);
    acc += icbrt(v);
    acc += gcd(v | 1, (v >> 3) + 7);
    acc += deg_to_rad_q12(v & 1023);
    acc &= 0xFFFFFF;
  }
  return acc;
}
|}

let gen_input ~seed ~n : Workload.input =
  { args = [ Int64.of_int n ];
    setup =
      (fun m mem ->
        let rng = Rng.create seed in
        Workload.fill_words rng m mem ~name:"vals" ~count:n ~bound:1_000_000) }

let workload : Workload.t =
  { name = "basicmath";
    description = "integer sqrt/cbrt/gcd and fixed-point conversions";
    source;
    entry = "run";
    train = gen_input ~seed:91L ~n:300;
    test = gen_input ~seed:92L ~n:512;
    alt = gen_input ~seed:93L ~n:128;
    narrow_source = None }
