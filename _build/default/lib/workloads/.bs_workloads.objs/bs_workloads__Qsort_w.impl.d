lib/workloads/qsort_w.ml: Bs_support Int64 Rng Workload
