lib/workloads/registry.ml: Basicmath Bitcount Blowfish Crc32 Dijkstra Fft List Patricia Qsort_w Rijndael Sha Stringsearch Susan Workload
