lib/workloads/sha.ml: Bs_support Int64 Rng Workload
