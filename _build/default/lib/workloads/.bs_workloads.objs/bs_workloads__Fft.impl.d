lib/workloads/fft.ml: Bs_interp Bs_support Float Int64 Rng Workload
