lib/workloads/rijndael.ml: Array Bs_support Int64 Printf Rng String Workload
