lib/workloads/workload.ml: Bs_interp Bs_ir Bs_support Int64 Ir Memimage Rng
