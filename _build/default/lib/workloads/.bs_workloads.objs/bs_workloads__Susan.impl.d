lib/workloads/susan.ml: Bs_interp Bs_support Int64 Printf Rng Workload
