lib/workloads/patricia.ml: Bs_interp Bs_support Int64 Rng Workload
