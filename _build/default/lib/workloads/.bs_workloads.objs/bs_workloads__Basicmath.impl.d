lib/workloads/basicmath.ml: Bs_support Int64 Rng Workload
