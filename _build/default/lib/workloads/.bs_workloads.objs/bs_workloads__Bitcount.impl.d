lib/workloads/bitcount.ml: Int64 Workload
