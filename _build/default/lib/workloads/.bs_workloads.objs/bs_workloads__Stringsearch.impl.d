lib/workloads/stringsearch.ml: Bs_interp Bs_support Int64 Printf Rng Workload
