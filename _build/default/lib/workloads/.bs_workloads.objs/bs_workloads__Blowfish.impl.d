lib/workloads/blowfish.ml: Bs_support Int64 Rng Workload
