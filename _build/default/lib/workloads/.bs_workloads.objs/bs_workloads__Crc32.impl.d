lib/workloads/crc32.ml: Bs_interp Bs_support Int64 Rng Workload
