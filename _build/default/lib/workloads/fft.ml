open Bs_support

(* Radix-2 iterative FFT in Q14 fixed point, N = 256.

   Substitution note: MiBench's FFT uses doubles; the fixed-point port
   keeps the same butterfly structure and twiddle-table accesses while
   staying inside the integer datapath the paper speculates on.  Twiddle
   tables are provided as input data (computed by the host, as a real
   deployment would bake them into ROM). *)

let n_fft = 256

let source =
  {|
i32 re[256];
i32 im[256];
i32 cos_tab[128];
i32 sin_tab[128];

u32 bitrev(u32 x, u32 bits) {
  u32 r = 0;
  for (u32 i = 0; i < bits; i += 1) {
    r = (r << 1) | ((x >> i) & 1);
  }
  return r;
}

void fft() {
  u32 n = 256;
  u32 bits = 8;
  for (u32 i = 0; i < n; i += 1) {
    u32 j = bitrev(i, bits);
    if (j > i) {
      i32 tr = re[i]; re[i] = re[j]; re[j] = tr;
      i32 ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
  }
  for (u32 len = 2; len <= n; len = len << 1) {
    u32 half = len >> 1;
    u32 step = n / len;
    for (u32 base = 0; base < n; base += len) {
      for (u32 k = 0; k < half; k += 1) {
        u32 tw = k * step;
        i32 c = cos_tab[tw];
        i32 s = sin_tab[tw];
        u32 a = base + k;
        u32 b = a + half;
        i32 xr = (re[b] * c - im[b] * s) >> 14;
        i32 xi = (re[b] * s + im[b] * c) >> 14;
        re[b] = re[a] - xr;
        im[b] = im[a] - xi;
        re[a] = re[a] + xr;
        im[a] = im[a] + xi;
      }
    }
  }
}

u32 run(u32 reps) {
  u32 acc = 0;
  for (u32 r = 0; r < reps; r += 1) {
    fft();
    acc = acc ^ ((u32)re[1] & 0xFFFF) ^ (((u32)im[2] & 0xFFFF) << 8);
  }
  return acc;
}
|}

let gen_input ~seed ~reps : Workload.input =
  { args = [ Int64.of_int reps ];
    setup =
      (fun m mem ->
        let rng = Rng.create seed in
        (* Q14 twiddle tables *)
        for k = 0 to (n_fft / 2) - 1 do
          let angle = -2.0 *. Float.pi *. float_of_int k /. float_of_int n_fft in
          let q14 x = Int64.of_int (int_of_float (Float.round (x *. 16384.0))) in
          Bs_interp.Memimage.set_global mem m ~name:"cos_tab" ~index:k
            (q14 (cos angle));
          Bs_interp.Memimage.set_global mem m ~name:"sin_tab" ~index:k
            (q14 (sin angle))
        done;
        (* small-amplitude signal: a few tones plus noise *)
        for i = 0 to n_fft - 1 do
          let t = float_of_int i in
          let signal =
            (* amplitudes bounded so Q14 butterflies stay within 32 bits *)
            (200.0 *. sin (2.0 *. Float.pi *. 5.0 *. t /. 256.0))
            +. (80.0 *. sin (2.0 *. Float.pi *. 31.0 *. t /. 256.0))
            +. float_of_int (Rng.int rng 16)
          in
          Bs_interp.Memimage.set_global mem m ~name:"re" ~index:i
            (Int64.of_int (int_of_float signal));
          Bs_interp.Memimage.set_global mem m ~name:"im" ~index:i 0L
        done) }

let workload : Workload.t =
  { name = "FFT";
    description = "radix-2 fixed-point FFT (Q14, N=256)";
    source;
    entry = "run";
    train = gen_input ~seed:101L ~reps:1;
    test = gen_input ~seed:102L ~reps:6;
    alt = gen_input ~seed:103L ~reps:2;
    narrow_source = None }
