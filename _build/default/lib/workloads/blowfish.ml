open Bs_support

(* Blowfish-style Feistel cipher.

   Substitution note (recorded in DESIGN.md): real Blowfish seeds its
   P-array and S-boxes with 4168 bytes of π digits; we generate the tables
   with an in-program LCG instead.  The compute structure the paper's
   results depend on — 16 Feistel rounds of S-box lookups indexed by
   `(x >> k) & 0xFF` byte extractions — is identical, and those masks are
   the bitmask-elision pattern RQ3 measures on blowfish. *)

let source =
  {|
u32 P[18];
u32 S[1024];
u8 data[8192];

void bf_init() {
  u32 seed = 0x243F6A88;
  for (u32 i = 0; i < 18; i += 1) {
    seed = seed * 1103515245 + 12345;
    P[i] = seed;
  }
  for (u32 i = 0; i < 1024; i += 1) {
    seed = seed * 1103515245 + 12345;
    S[i] = seed;
  }
}

u32 feistel(u32 x) {
  u32 a = (x >> 24) & 0xFF;
  u32 b = (x >> 16) & 0xFF;
  u32 c = (x >> 8) & 0xFF;
  u32 d = x & 0xFF;
  return ((S[a] + S[256 + b]) ^ S[512 + c]) + S[768 + d];
}

u32 hi = 0;
u32 lo = 0;

void encrypt_pair(u32 xl, u32 xr) {
  for (u32 i = 0; i < 16; i += 1) {
    xl = xl ^ P[i];
    xr = feistel(xl) ^ xr;
    u32 t = xl; xl = xr; xr = t;
  }
  u32 t = xl; xl = xr; xr = t;
  xr = xr ^ P[16];
  xl = xl ^ P[17];
  hi = xl;
  lo = xr;
}

u32 run(u32 npairs) {
  bf_init();
  u32 acc = 0;
  for (u32 p = 0; p < npairs; p += 1) {
    u32 off = p * 8;
    u32 xl = (data[off] << 24) | (data[off+1] << 16) | (data[off+2] << 8) | data[off+3];
    u32 xr = (data[off+4] << 24) | (data[off+5] << 16) | (data[off+6] << 8) | data[off+7];
    encrypt_pair(xl, xr);
    acc = acc ^ hi ^ (lo * 7);
  }
  return acc;
}
|}

let gen_input ~seed ~npairs : Workload.input =
  { args = [ Int64.of_int npairs ];
    setup =
      (fun m mem ->
        let rng = Rng.create seed in
        Workload.fill_bytes rng m mem ~name:"data" ~count:(npairs * 8)) }

let workload : Workload.t =
  { name = "blowfish";
    description = "16-round Feistel cipher with byte-indexed S-boxes";
    source;
    entry = "run";
    train = gen_input ~seed:51L ~npairs:300;
    test = gen_input ~seed:52L ~npairs:384;
    alt = gen_input ~seed:53L ~npairs:64;
    narrow_source = None }
