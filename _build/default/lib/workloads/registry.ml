(* All benchmarks, in the paper's Figure 8 order. *)

let all : Workload.t list =
  [ Crc32.workload;
    Fft.workload;
    Basicmath.workload;
    Bitcount.workload;
    Blowfish.workload;
    Dijkstra.workload;
    Patricia.workload;
    Qsort_w.workload;
    Rijndael.workload;
    Sha.workload;
    Stringsearch.workload;
    Susan.edges;
    Susan.corners;
    Susan.smoothing ]

let find name =
  match List.find_opt (fun (w : Workload.t) -> w.name = name) all with
  | Some w -> w
  | None -> invalid_arg ("unknown workload " ^ name)

let names = List.map (fun (w : Workload.t) -> w.name) all
