open Bs_support

(* Boyer-Moore-Horspool string search, the paper's Listing 1: pattern
   lengths are at most 12 and skip-table entries at most the pattern
   length, so nearly the whole hot loop runs at 8 bits once speculated.

   [narrow_source] is the RQ7 hand-tuned variant where the programmer
   declared every quantity at its narrowest safe width. *)

let body ~idx_ty =
  Printf.sprintf
    {|
u8 text[8192];
u8 pats[512];
u32 pat_off[40];
u32 pat_len[40];
u32 text_len = 0;
u32 shtab[256];

u32 search(u32 po, u32 plen) {
  if (plen == 0 || plen > 1024) return 0;
  u32 n = text_len;
  for (u32 i = 0; i < 256; i += 1) shtab[i] = plen;
  for (%s i = 0; i + 1 < plen; i += 1) shtab[pats[po + i]] = plen - 1 - i;
  u32 found = 0;
  u32 pos = 0;
  while (pos + plen <= n) {
    %s j = (%s)plen;
    while (j > 0 && text[pos + j - 1] == pats[po + j - 1]) j -= 1;
    if (j == 0) found += 1;
    pos += shtab[text[pos + plen - 1]];
  }
  return found;
}

u32 run(u32 npats) {
  u32 total = 0;
  for (u32 p = 0; p < npats; p += 1) {
    total += search(pat_off[p], pat_len[p]);
  }
  return total;
}
|}
    idx_ty idx_ty idx_ty

(* default: worst-case widths, as unoptimised C would have them *)
let source = body ~idx_ty:"u32"

(* the hand-tuned variant: indices that provably fit 8 bits *)
let narrow = body ~idx_ty:"u8"

let gen_input ~seed ~npats ~text_len : Workload.input =
  { args = [ Int64.of_int npats ];
    setup =
      (fun m mem ->
        let rng = Rng.create seed in
        (* text over a small alphabet so matches actually occur *)
        for i = 0 to text_len - 1 do
          Bs_interp.Memimage.set_global mem m ~name:"text" ~index:i
            (Int64.of_int (97 + Rng.int rng 6))
        done;
        Workload.set m mem ~name:"text_len" (Int64.of_int text_len);
        let off = ref 0 in
        for p = 0 to npats - 1 do
          (* pattern lengths <= 12, as in the paper's input *)
          let len = Rng.int_in rng 2 12 in
          Bs_interp.Memimage.set_global mem m ~name:"pat_off" ~index:p
            (Int64.of_int !off);
          Bs_interp.Memimage.set_global mem m ~name:"pat_len" ~index:p
            (Int64.of_int len);
          for i = 0 to len - 1 do
            Bs_interp.Memimage.set_global mem m ~name:"pats" ~index:(!off + i)
              (Int64.of_int (97 + Rng.int rng 6))
          done;
          off := !off + len
        done) }

let workload : Workload.t =
  { name = "stringsearch";
    description = "Boyer-Moore-Horspool over multiple short patterns";
    source;
    entry = "run";
    train = gen_input ~seed:31L ~npats:8 ~text_len:2048;
    test = gen_input ~seed:32L ~npats:32 ~text_len:8192;
    alt = gen_input ~seed:33L ~npats:12 ~text_len:4096;
    narrow_source = Some narrow }
