open Bs_support

(* Dijkstra single-source shortest paths over a dense adjacency matrix.
   Edge weights are small (< 64), so distances stay in 8–16 bits for the
   paper's graph sizes; queries sweep several sources. *)

let body ~dist_ty =
  Printf.sprintf
    {|
u32 adj[16384];
%s dist[128];
u8 visited[128];
u32 nnodes = 0;

u32 shortest(u32 src, u32 dst) {
  u32 n = nnodes;
  for (u32 i = 0; i < n; i += 1) { dist[i] = (%s)65535; visited[i] = 0; }
  dist[src] = 0;
  for (u32 iter = 0; iter < n; iter += 1) {
    u32 best = 65535;
    u32 u = n;
    for (u32 i = 0; i < n; i += 1) {
      if (visited[i] == 0 && dist[i] < best) { best = dist[i]; u = i; }
    }
    if (u == n) break;
    visited[u] = 1;
    for (u32 v = 0; v < n; v += 1) {
      u32 w = adj[u * 128 + v];
      if (w != 0 && w < 4096 && visited[v] == 0) {
        u32 nd = dist[u] + w;
        if (nd < dist[v]) dist[v] = (%s)nd;
      }
    }
  }
  return dist[dst];
}

u32 run(u32 queries) {
  u32 acc = 0;
  for (u32 q = 0; q < queries; q += 1) {
    u32 src = q * 7 %% nnodes;
    u32 dst = (q * 13 + 5) %% nnodes;
    acc += shortest(src, dst);
  }
  return acc;
}
|}
    dist_ty dist_ty dist_ty

let source = body ~dist_ty:"u32"
let narrow = body ~dist_ty:"u16"

let gen_input ~seed ~nodes ~queries : Workload.input =
  { args = [ Int64.of_int queries ];
    setup =
      (fun m mem ->
        let rng = Rng.create seed in
        Workload.set m mem ~name:"nnodes" (Int64.of_int nodes);
        for u = 0 to nodes - 1 do
          for v = 0 to nodes - 1 do
            let w =
              if u = v then 0
              else if Rng.int rng 4 = 0 then Rng.int_in rng 1 60
              else 0
            in
            Bs_interp.Memimage.set_global mem m ~name:"adj"
              ~index:((u * 128) + v)
              (Int64.of_int w)
          done
        done) }

let workload : Workload.t =
  { name = "dijkstra";
    description = "dense-graph single-source shortest paths";
    source;
    entry = "run";
    train = gen_input ~seed:71L ~nodes:32 ~queries:4;
    test = gen_input ~seed:72L ~nodes:96 ~queries:12;
    alt = gen_input ~seed:73L ~nodes:48 ~queries:6;
    narrow_source = Some narrow }
