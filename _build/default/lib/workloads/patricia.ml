open Bs_support

(* Patricia-style radix trie over 32-bit keys (MiBench uses it for IP
   routing tables).  Nodes live in parallel index arrays rather than
   heap-allocated structs (MiniC has no pointers); the access pattern —
   bit tests steering pointer-chasing descents — is the same.  The paper
   notes MIN misspeculates heavily here (Table 2) and is the one benchmark
   where MIN wins (Figure 14). *)

let source =
  {|
u32 node_key[2048];
u32 node_bit[2048];
u32 node_left[2048];
u32 node_right[2048];
u32 nnodes = 0;
u32 keys[1024];
u32 nkeys = 0;

u32 bit_of(u32 key, u32 b) {
  return (key >> (31 - b)) & 1;
}

u32 trie_find(u32 key) {
  if (nnodes == 0) return 0;
  u32 cur = 0;
  u32 prev = 0;
  do {
    prev = cur;
    if (bit_of(key, node_bit[cur]) != 0) cur = node_right[cur];
    else cur = node_left[cur];
  } while (node_bit[cur] > node_bit[prev]);
  return cur;
}

void trie_insert(u32 key) {
  if (nnodes == 0) {
    node_key[0] = key; node_bit[0] = 0;
    node_left[0] = 0; node_right[0] = 0;
    nnodes = 1;
    return;
  }
  u32 found = trie_find(key);
  if (node_key[found] == key) return;
  u32 diff = node_key[found] ^ key;
  u32 b = 0;
  while (bit_of(diff, b) == 0) b += 1;
  u32 idx = nnodes;
  nnodes += 1;
  node_key[idx] = key;
  node_bit[idx] = b;
  u32 cur = 0;
  u32 prev = 0;
  do {
    prev = cur;
    if (node_bit[cur] >= b) break;
    if (bit_of(key, node_bit[cur]) != 0) cur = node_right[cur];
    else cur = node_left[cur];
  } while (node_bit[cur] > node_bit[prev]);
  if (bit_of(key, b) != 0) { node_right[idx] = cur; node_left[idx] = idx; }
  else { node_left[idx] = cur; node_right[idx] = idx; }
  if (cur == 0 && prev == 0) {
    if (bit_of(key, node_bit[0]) != 0) node_right[0] = idx;
    else node_left[0] = idx;
  }
  else if (bit_of(key, node_bit[prev]) != 0) node_right[prev] = idx;
  else node_left[prev] = idx;
}

u32 run(u32 lookups) {
  for (u32 i = 0; i < nkeys; i += 1) trie_insert(keys[i]);
  u32 hits = 0;
  u32 seed = 0xACE1;
  for (u32 i = 0; i < lookups; i += 1) {
    u32 key = keys[(seed >> 3) % nkeys];
    seed = seed * 1103515245 + 12345;
    u32 f = trie_find(key);
    if (node_key[f] == key) hits += 1;
  }
  return hits * 1000 + nnodes;
}
|}

let gen_input ~seed ~nkeys ~lookups : Workload.input =
  { args = [ Int64.of_int lookups ];
    setup =
      (fun m mem ->
        let rng = Rng.create seed in
        Workload.set m mem ~name:"nkeys" (Int64.of_int nkeys);
        for i = 0 to nkeys - 1 do
          (* IP-like keys: clustered high octets *)
          let key =
            (Rng.int rng 8 lsl 24) lor (Rng.int rng 32 lsl 16)
            lor (Rng.int rng 256 lsl 8) lor Rng.int rng 256
          in
          Bs_interp.Memimage.set_global mem m ~name:"keys" ~index:i
            (Int64.of_int key)
        done) }

let workload : Workload.t =
  { name = "patricia";
    description = "radix trie insert/lookup over IP-like keys";
    source;
    entry = "run";
    train = gen_input ~seed:81L ~nkeys:300 ~lookups:700;
    test = gen_input ~seed:82L ~nkeys:512 ~lookups:4096;
    alt = gen_input ~seed:83L ~nkeys:128 ~lookups:512;
    narrow_source = None }
