(** All benchmarks, in the paper's Figure 8 order. *)

val all : Workload.t list

val find : string -> Workload.t
(** @raise Invalid_argument for unknown names. *)

val names : string list
