open Bs_support

(* Iterative quicksort with an out-of-line comparison function, matching
   MiBench's qsort shape.  The paper observes speculation *hurting* here:
   a misspeculation inside the comparator re-executes it, effectively
   running it twice per invocation (RQ2's qsort inversion). *)

let source =
  {|
u32 arr[4096];
u32 stk_lo[64];
u32 stk_hi[64];

u32 cmp_le(u32 a, u32 b) {
  u32 ka = a & 0xFFF;
  u32 kb = b & 0xFFF;
  if (ka < kb) return 1;
  if (ka == kb && a <= b) return 1;
  return 0;
}

u32 partition(u32 lo, u32 hi) {
  u32 pivot = arr[hi];
  u32 i = lo;
  for (u32 j = lo; j < hi; j += 1) {
    if (cmp_le(arr[j], pivot)) {
      u32 t = arr[i]; arr[i] = arr[j]; arr[j] = t;
      i += 1;
    }
  }
  u32 t = arr[i]; arr[i] = arr[hi]; arr[hi] = t;
  return i;
}

u32 run(u32 n) {
  u32 sp = 0;
  stk_lo[0] = 0;
  stk_hi[0] = n - 1;
  sp = 1;
  while (sp > 0) {
    sp -= 1;
    u32 lo = stk_lo[sp];
    u32 hi = stk_hi[sp];
    if (lo < hi) {
      u32 p = partition(lo, hi);
      if (p > 0) {
        stk_lo[sp] = lo; stk_hi[sp] = p - 1; sp += 1;
      }
      stk_lo[sp] = p + 1; stk_hi[sp] = hi; sp += 1;
    }
  }
  u32 acc = 0;
  for (u32 i = 0; i < n; i += 1) acc = acc * 31 + arr[i];
  return acc;
}
|}

let gen_input ~seed ~n : Workload.input =
  { args = [ Int64.of_int n ];
    setup =
      (fun m mem ->
        let rng = Rng.create seed in
        Workload.fill_words rng m mem ~name:"arr" ~count:n ~bound:0xFFFF) }

let workload : Workload.t =
  { name = "qsort";
    description = "iterative quicksort with an out-of-line comparator";
    source;
    entry = "run";
    train = gen_input ~seed:61L ~n:500;
    test = gen_input ~seed:62L ~n:2048;
    alt = gen_input ~seed:63L ~n:512;
    narrow_source = None }
