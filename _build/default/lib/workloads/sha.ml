open Bs_support

(* SHA-1 over a message buffer (whole 64-byte blocks).  Dominated by 32-bit
   rotate/xor chains — the benchmark where the paper shows demanded-bits
   analysis recovering nothing (§2.2). *)

let source =
  {|
u8 msg[16448];
u32 W[80];
u32 H[5];

u32 rol(u32 x, u32 s) {
  return (x << s) | (x >> (32 - s));
}

void sha_block(u32 off) {
  for (u32 t = 0; t < 16; t += 1) {
    u32 b0 = msg[off + 4 * t];
    u32 b1 = msg[off + 4 * t + 1];
    u32 b2 = msg[off + 4 * t + 2];
    u32 b3 = msg[off + 4 * t + 3];
    W[t] = (b0 << 24) | (b1 << 16) | (b2 << 8) | b3;
  }
  for (u32 t = 16; t < 80; t += 1) {
    W[t] = rol(W[t - 3] ^ W[t - 8] ^ W[t - 14] ^ W[t - 16], 1);
  }
  u32 a = H[0]; u32 b = H[1]; u32 c = H[2]; u32 d = H[3]; u32 e = H[4];
  for (u32 t = 0; t < 80; t += 1) {
    u32 f = 0;
    u32 k = 0;
    if (t < 20) { f = (b & c) | ((~b) & d); k = 0x5A827999; }
    else if (t < 40) { f = b ^ c ^ d; k = 0x6ED9EBA1; }
    else if (t < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8F1BBCDC; }
    else { f = b ^ c ^ d; k = 0xCA62C1D6; }
    u32 tmp = rol(a, 5) + f + e + k + W[t];
    e = d; d = c; c = rol(b, 30); b = a; a = tmp;
  }
  H[0] += a; H[1] += b; H[2] += c; H[3] += d; H[4] += e;
}

u32 run(u32 nblocks) {
  H[0] = 0x67452301; H[1] = 0xEFCDAB89; H[2] = 0x98BADCFE;
  H[3] = 0x10325476; H[4] = 0xC3D2E1F0;
  for (u32 i = 0; i < nblocks; i += 1) {
    sha_block(i * 64);
  }
  return H[0] ^ H[1] ^ H[2] ^ H[3] ^ H[4];
}
|}

let gen_input ~seed ~nblocks : Workload.input =
  { args = [ Int64.of_int nblocks ];
    setup =
      (fun m mem ->
        let rng = Rng.create seed in
        Workload.fill_bytes rng m mem ~name:"msg" ~count:(nblocks * 64)) }

let workload : Workload.t =
  { name = "sha";
    description = "SHA-1 digest over whole message blocks";
    source;
    entry = "run";
    train = gen_input ~seed:21L ~nblocks:20;
    test = gen_input ~seed:22L ~nblocks:96;
    alt = gen_input ~seed:23L ~nblocks:24;
    narrow_source = None }
