open Bs_support

(* CRC32 over newline-delimited records, as MiBench drives it: the paper
   notes line lengths in the provided input range 0..2729 with mean 145.8,
   so most length arithmetic fits 8 bits while outliers exercise
   misspeculation.  The training ("small") input has short lines only; the
   test ("large") input includes >255-byte outliers. *)

let source =
  {|
u32 crctab[256];
u8 data[32768];
u32 linelen[512];

void crc_init() {
  for (u32 i = 0; i < 256; i += 1) {
    u32 c = i;
    for (u32 j = 0; j < 8; j += 1) {
      if (c & 1) c = (c >> 1) ^ 0xEDB88320;
      else c = c >> 1;
    }
    crctab[i] = c;
  }
}

u32 crc_line(u32 off, u32 len) {
  u32 c = 0xFFFFFFFF;
  for (u32 i = 0; i < len; i += 1) {
    c = crctab[(c ^ data[off + i]) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

u32 run(u32 nlines) {
  crc_init();
  u32 acc = 0;
  u32 off = 0;
  for (u32 l = 0; l < nlines; l += 1) {
    u32 len = linelen[l];
    acc = acc ^ crc_line(off, len);
    off = (off + len) & 16383;
  }
  return acc;
}
|}

let gen_input ~seed ~nlines ~outliers : Workload.input =
  { args = [ Int64.of_int nlines ];
    setup =
      (fun m mem ->
        let rng = Rng.create seed in
        Workload.fill_bytes rng m mem ~name:"data" ~count:16384;
        for l = 0 to nlines - 1 do
          (* mean near the paper's 145.8; occasional long records *)
          let len =
            if outliers && Rng.int rng 16 = 0 then Rng.int_in rng 256 2729
            else Rng.int_in rng 20 230
          in
          Bs_interp.Memimage.set_global mem m ~name:"linelen" ~index:l
            (Int64.of_int len)
        done) }

let workload : Workload.t =
  { name = "CRC32";
    description = "table-driven CRC-32 over variable-length records";
    source;
    entry = "run";
    train = gen_input ~seed:11L ~nlines:320 ~outliers:false;
    test = gen_input ~seed:12L ~nlines:256 ~outliers:true;
    alt = gen_input ~seed:13L ~nlines:96 ~outliers:false;
    narrow_source = None }
