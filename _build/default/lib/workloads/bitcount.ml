(* Population-count microbenchmark: MiBench's bitcount runs several
   counting strategies over a pseudo-random stream; counts per word are
   at most 32, so nearly everything fits 8 bits. *)

let source =
  {|
u8 btbl[256];

void btbl_init() {
  btbl[0] = 0;
  for (u32 i = 1; i < 256; i += 1) {
    btbl[i] = (u8)(btbl[i / 2] + (i & 1));
  }
}

u32 count_kernighan(u32 x) {
  u32 n = 0;
  while (x != 0) { x = x & (x - 1); n += 1; }
  return n;
}

u32 count_table(u32 x) {
  return btbl[x & 0xFF] + btbl[(x >> 8) & 0xFF]
       + btbl[(x >> 16) & 0xFF] + btbl[(x >> 24) & 0xFF];
}

u32 count_shift(u32 x) {
  u32 n = 0;
  for (u32 i = 0; i < 32; i += 1) {
    n += (x >> i) & 1;
  }
  return n;
}

u32 count_nibble(u32 x) {
  u32 n = 0;
  while (x != 0) {
    n += btbl[x & 15];
    x = x >> 4;
  }
  return n;
}

u32 run(u32 iters) {
  btbl_init();
  u32 seed = 0x1234567;
  u32 total = 0;
  for (u32 i = 0; i < iters; i += 1) {
    seed = seed * 1103515245 + 12345;
    total += count_kernighan(seed);
    total += count_table(seed);
    total += count_shift(seed);
    total += count_nibble(seed);
  }
  return total;
}
|}

let gen_input ~iters : Workload.input =
  { args = [ Int64.of_int iters ]; setup = Workload.no_setup }

let workload : Workload.t =
  { name = "bitcount";
    description = "four population-count strategies over an LCG stream";
    source;
    entry = "run";
    train = gen_input ~iters:500;
    test = gen_input ~iters:1500;
    alt = gen_input ~iters:350;
    narrow_source = None }
