lib/isa/encode.ml: Int32 Isa List Printf
