open Isa

(* Binary encoding of BSARM into 32-bit words.

   Layout: [31:26] opcode, then fixed fields per format.  Registers take 4
   bits, slices 6 (register ++ byte index), conditions 4.  Branch targets
   are 26-bit absolute instruction indices; MOVW/MOVT carry 16-bit
   immediates; memory offsets are 14-bit unsigned.  The format is not
   ARM-compatible — it exists so the toolchain is a real assembler/loader
   pair and the code image has a concrete footprint (the I$ model indexes
   it by byte address). *)

exception Encode_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Encode_error s)) fmt

(* field builders *)
let check_range name v lo hi =
  if v < lo || v > hi then err "%s out of range: %d" name v

let reg_f r = check_range "reg" r 0 15; r
let slice_f s =
  check_range "slice reg" s.sl_reg 0 15;
  check_range "slice byte" s.sl_byte 0 3;
  (s.sl_reg lsl 2) lor s.sl_byte

let cond_code = function
  | CEq -> 0 | CNe -> 1 | CUlt -> 2 | CUle -> 3 | CUgt -> 4 | CUge -> 5
  | CSlt -> 6 | CSle -> 7 | CSgt -> 8 | CSge -> 9

let cond_of_code = function
  | 0 -> CEq | 1 -> CNe | 2 -> CUlt | 3 -> CUle | 4 -> CUgt | 5 -> CUge
  | 6 -> CSlt | 7 -> CSle | 8 -> CSgt | 9 -> CSge
  | c -> err "bad cond code %d" c

let aluop_code = function
  | OpAdd -> 0 | OpSub -> 1 | OpAnd -> 2 | OpOrr -> 3 | OpEor -> 4
  | OpLsl -> 5 | OpLsr -> 6 | OpAsr -> 7

let aluop_of_code = function
  | 0 -> OpAdd | 1 -> OpSub | 2 -> OpAnd | 3 -> OpOrr | 4 -> OpEor
  | 5 -> OpLsl | 6 -> OpLsr | 7 -> OpAsr
  | c -> err "bad aluop %d" c

let baluop_code = function
  | BAdd -> 0 | BSub -> 1 | BAnd -> 2 | BOrr -> 3 | BEor -> 4

let baluop_of_code = function
  | 0 -> BAdd | 1 -> BSub | 2 -> BAnd | 3 -> BOrr | 4 -> BEor
  | c -> err "bad baluop %d" c

let width_code = function W8 -> 0 | W16 -> 1 | W32 -> 2
let width_of_code = function
  | 0 -> W8 | 1 -> W16 | 2 -> W32 | c -> err "bad width %d" c

let sign_code = function Unsigned -> 0 | Signed -> 1
let sign_of_code = function 0 -> Unsigned | 1 -> Signed | c -> err "bad sign %d" c

(* opcodes *)
let op_mov = 1
let op_movw = 2
let op_movt = 3
let op_alu_r = 4
let op_alu_i = 5
let op_mul = 6
let op_div = 7
let op_cmp_r = 8
let op_cmp_i = 9
let op_cset = 10
let op_b = 11
let op_bc = 12
let op_bl = 13
let op_bx_lr = 14
let op_ldr = 15
let op_str = 16
let op_sxt = 17
let op_uxt = 18
let op_balu_r = 19
let op_balu_i = 20
let op_bcmp_r = 21
let op_bcmp_i = 22
let op_bldrs = 23
let op_bldrb = 24
let op_bstrb = 25
let op_bext = 26
let op_btrn = 27
let op_bmov = 28
let op_bmovi = 29
let op_setdelta = 30
let op_setmode = 31
let op_nop = 32
let op_halt = 33

let word ~op fields =
  (* fields: list of (value, bits) packed low-to-high after the opcode *)
  let v = ref 0 and shift = ref 0 in
  List.iter
    (fun (value, bits) ->
      if value < 0 || value >= 1 lsl bits then
        err "field %d does not fit %d bits" value bits;
      v := !v lor (value lsl !shift);
      shift := !shift + bits)
    fields;
  if !shift > 26 then err "fields exceed 26 bits";
  Int32.logor
    (Int32.shift_left (Int32.of_int op) 26)
    (Int32.of_int !v)

(* slice memory form: mode bit selects imm8 offset vs slice index *)
let mem_slice ~op sl n (x : bindex) =
  match x with
  | BOff off ->
      check_range "offset" off 0 0xFF;
      word ~op [ (0, 1); (slice_f sl, 6); (reg_f n, 4); (off, 8) ]
  | BIdx i -> word ~op [ (1, 1); (slice_f sl, 6); (reg_f n, 4); (slice_f i, 6) ]

(** [encode insn] packs one instruction into a 32-bit word.
    @raise Encode_error on out-of-range fields. *)
let encode (i : insn) : int32 =
  match i with
  | MOV (d, s) -> word ~op:op_mov [ (reg_f d, 4); (reg_f s, 4) ]
  | MOVW (d, v) ->
      check_range "imm16" v 0 0xFFFF;
      word ~op:op_movw [ (reg_f d, 4); (v, 16) ]
  | MOVT (d, v) ->
      check_range "imm16" v 0 0xFFFF;
      word ~op:op_movt [ (reg_f d, 4); (v, 16) ]
  | ALU (op, d, n, Reg m) ->
      word ~op:op_alu_r [ (aluop_code op, 3); (reg_f d, 4); (reg_f n, 4); (reg_f m, 4) ]
  | ALU (op, d, n, Imm v) ->
      check_range "alu imm" v 0 0x7FFF;
      word ~op:op_alu_i [ (aluop_code op, 3); (reg_f d, 4); (reg_f n, 4); (v, 15) ]
  | MUL (d, n, m) ->
      word ~op:op_mul [ (reg_f d, 4); (reg_f n, 4); (reg_f m, 4) ]
  | DIV (s, d, n, m) ->
      word ~op:op_div [ (sign_code s, 1); (reg_f d, 4); (reg_f n, 4); (reg_f m, 4) ]
  | CMP (n, Reg m) -> word ~op:op_cmp_r [ (reg_f n, 4); (reg_f m, 4) ]
  | CMP (n, Imm v) ->
      check_range "cmp imm" v 0 0x3FFFFF;
      word ~op:op_cmp_i [ (reg_f n, 4); (v, 22) ]
  | CSET (c, d) -> word ~op:op_cset [ (cond_code c, 4); (reg_f d, 4) ]
  | B t -> check_range "target" t 0 0x3FFFFFF; word ~op:op_b [ (t, 26) ]
  | BC (c, t) ->
      check_range "target" t 0 0x3FFFFF;
      word ~op:op_bc [ (cond_code c, 4); (t, 22) ]
  | BL t -> check_range "target" t 0 0x3FFFFFF; word ~op:op_bl [ (t, 26) ]
  | BX_LR -> word ~op:op_bx_lr []
  | LDR (w, s, d, n, off) ->
      check_range "offset" off 0 0x3FFF;
      word ~op:op_ldr
        [ (width_code w, 2); (sign_code s, 1); (reg_f d, 4); (reg_f n, 4); (off, 14) ]
  | STR (w, s, n, off) ->
      check_range "offset" off 0 0x3FFF;
      word ~op:op_str [ (width_code w, 2); (reg_f s, 4); (reg_f n, 4); (off, 14) ]
  | SXT (w, d, s) ->
      word ~op:op_sxt [ (width_code w, 2); (reg_f d, 4); (reg_f s, 4) ]
  | UXT (w, d, s) ->
      word ~op:op_uxt [ (width_code w, 2); (reg_f d, 4); (reg_f s, 4) ]
  | BALU (op, d, n, Sl m) ->
      word ~op:op_balu_r
        [ (baluop_code op, 3); (slice_f d, 6); (slice_f n, 6); (slice_f m, 6) ]
  | BALU (op, d, n, BImm v) ->
      check_range "imm4" v 0 15;
      word ~op:op_balu_i
        [ (baluop_code op, 3); (slice_f d, 6); (slice_f n, 6); (v, 4) ]
  | BCMPS (n, Sl m) -> word ~op:op_bcmp_r [ (slice_f n, 6); (slice_f m, 6) ]
  | BCMPS (n, BImm v) ->
      check_range "imm8" v 0 255;
      word ~op:op_bcmp_i [ (slice_f n, 6); (v, 8) ]
  | BLDRS (d, n, x) -> mem_slice ~op:op_bldrs d n x
  | BLDRB (d, n, x) -> mem_slice ~op:op_bldrb d n x
  | BSTRB (s, n, x) -> mem_slice ~op:op_bstrb s n x
  | BEXT (sg, d, s) ->
      word ~op:op_bext [ (sign_code sg, 1); (reg_f d, 4); (slice_f s, 6) ]
  | BTRN (d, s) -> word ~op:op_btrn [ (slice_f d, 6); (reg_f s, 4) ]
  | BMOV (d, s) -> word ~op:op_bmov [ (slice_f d, 6); (slice_f s, 6) ]
  | BMOVI (d, v) ->
      check_range "imm8" v 0 255;
      word ~op:op_bmovi [ (slice_f d, 6); (v, 8) ]
  | SETDELTA v -> check_range "delta" v 0 0x3FFFFFF; word ~op:op_setdelta [ (v, 26) ]
  | SETMODE Classic -> word ~op:op_setmode [ (0, 1) ]
  | SETMODE Bitspec -> word ~op:op_setmode [ (1, 1) ]
  | NOP -> word ~op:op_nop []
  | HALT -> word ~op:op_halt []

(* field extractors for decode *)
type cursor = { w : int; mutable pos : int }

let take c bits =
  let v = (c.w lsr c.pos) land ((1 lsl bits) - 1) in
  c.pos <- c.pos + bits;
  v

let slice_of_f v = { sl_reg = v lsr 2; sl_byte = v land 3 }

(** [decode w] reverses {!encode}. *)
let decode (w32 : int32) : insn =
  let op = Int32.to_int (Int32.shift_right_logical w32 26) land 0x3F in
  let c = { w = Int32.to_int (Int32.logand w32 0x03FF_FFFFl); pos = 0 } in
  match op with
  | o when o = op_mov ->
      let d = take c 4 in
      MOV (d, take c 4)
  | o when o = op_movw ->
      let d = take c 4 in
      MOVW (d, take c 16)
  | o when o = op_movt ->
      let d = take c 4 in
      MOVT (d, take c 16)
  | o when o = op_alu_r ->
      let a = aluop_of_code (take c 3) in
      let d = take c 4 in
      let n = take c 4 in
      ALU (a, d, n, Reg (take c 4))
  | o when o = op_alu_i ->
      let a = aluop_of_code (take c 3) in
      let d = take c 4 in
      let n = take c 4 in
      ALU (a, d, n, Imm (take c 15))
  | o when o = op_mul ->
      let d = take c 4 in
      let n = take c 4 in
      MUL (d, n, take c 4)
  | o when o = op_div ->
      let s = sign_of_code (take c 1) in
      let d = take c 4 in
      let n = take c 4 in
      DIV (s, d, n, take c 4)
  | o when o = op_cmp_r ->
      let n = take c 4 in
      CMP (n, Reg (take c 4))
  | o when o = op_cmp_i ->
      let n = take c 4 in
      CMP (n, Imm (take c 22))
  | o when o = op_cset ->
      let cc = cond_of_code (take c 4) in
      CSET (cc, take c 4)
  | o when o = op_b -> B (take c 26)
  | o when o = op_bc ->
      let cc = cond_of_code (take c 4) in
      BC (cc, take c 22)
  | o when o = op_bl -> BL (take c 26)
  | o when o = op_bx_lr -> BX_LR
  | o when o = op_ldr ->
      let w = width_of_code (take c 2) in
      let s = sign_of_code (take c 1) in
      let d = take c 4 in
      let n = take c 4 in
      LDR (w, s, d, n, take c 14)
  | o when o = op_str ->
      let w = width_of_code (take c 2) in
      let s = take c 4 in
      let n = take c 4 in
      STR (w, s, n, take c 14)
  | o when o = op_sxt ->
      let w = width_of_code (take c 2) in
      let d = take c 4 in
      SXT (w, d, take c 4)
  | o when o = op_uxt ->
      let w = width_of_code (take c 2) in
      let d = take c 4 in
      UXT (w, d, take c 4)
  | o when o = op_balu_r ->
      let b = baluop_of_code (take c 3) in
      let d = slice_of_f (take c 6) in
      let n = slice_of_f (take c 6) in
      BALU (b, d, n, Sl (slice_of_f (take c 6)))
  | o when o = op_balu_i ->
      let b = baluop_of_code (take c 3) in
      let d = slice_of_f (take c 6) in
      let n = slice_of_f (take c 6) in
      BALU (b, d, n, BImm (take c 4))
  | o when o = op_bcmp_r ->
      let n = slice_of_f (take c 6) in
      BCMPS (n, Sl (slice_of_f (take c 6)))
  | o when o = op_bcmp_i ->
      let n = slice_of_f (take c 6) in
      BCMPS (n, BImm (take c 8))
  | o when o = op_bldrs ->
      let mode = take c 1 in
      let d = slice_of_f (take c 6) in
      let n = take c 4 in
      BLDRS (d, n, if mode = 0 then BOff (take c 8) else BIdx (slice_of_f (take c 6)))
  | o when o = op_bldrb ->
      let mode = take c 1 in
      let d = slice_of_f (take c 6) in
      let n = take c 4 in
      BLDRB (d, n, if mode = 0 then BOff (take c 8) else BIdx (slice_of_f (take c 6)))
  | o when o = op_bstrb ->
      let mode = take c 1 in
      let s = slice_of_f (take c 6) in
      let n = take c 4 in
      BSTRB (s, n, if mode = 0 then BOff (take c 8) else BIdx (slice_of_f (take c 6)))
  | o when o = op_bext ->
      let sg = sign_of_code (take c 1) in
      let d = take c 4 in
      BEXT (sg, d, slice_of_f (take c 6))
  | o when o = op_btrn ->
      let d = slice_of_f (take c 6) in
      BTRN (d, take c 4)
  | o when o = op_bmov ->
      let d = slice_of_f (take c 6) in
      BMOV (d, slice_of_f (take c 6))
  | o when o = op_bmovi ->
      let d = slice_of_f (take c 6) in
      BMOVI (d, take c 8)
  | o when o = op_setdelta -> SETDELTA (take c 26)
  | o when o = op_setmode ->
      SETMODE (if take c 1 = 1 then Bitspec else Classic)
  | o when o = op_nop -> NOP
  | o when o = op_halt -> HALT
  | o -> err "unknown opcode %d" o
