(* BSARM: a 32-bit ARM-like load/store ISA, extended with the BITSPEC
   speculative byte-slice operations of Table 1.

   Registers R0..R15 with R13 = SP, R14 = LR, R15 = PC (PC is implicit —
   no instruction takes it as an operand).  The BITSPEC extension adds
   8-bit slice addressing of every GPR: slice (r, k) is byte k of Rr.
   The Δ special register holds the program-counter displacement applied
   on misspeculation (§3.3.4); CLASSIC mode disables the remapped slice
   opcodes for pre-compiled code (§3.4). *)

type reg = int

let sp = 13
let lr = 14
let pc = 15
let num_regs = 16

(** An 8-bit slice of a general-purpose register: byte [sl_byte] (0..3) of
    [sl_reg]. *)
type slice = { sl_reg : reg; sl_byte : int }

type cond =
  | CEq | CNe
  | CUlt | CUle | CUgt | CUge
  | CSlt | CSle | CSgt | CSge

type aluop = OpAdd | OpSub | OpAnd | OpOrr | OpEor | OpLsl | OpLsr | OpAsr

(** Slice ALU operations — the subset with speculative hardware
    (Table 1). *)
type baluop = BAdd | BSub | BAnd | BOrr | BEor

type width = W8 | W16 | W32

type signedness = Signed | Unsigned

type mode = Classic | Bitspec

(** Flexible second operand: register or immediate. *)
type op2 = Reg of reg | Imm of int

(** Slice second operand: slice or 4-bit immediate (Table 1's imm4; loads
    and stores take imm8). *)
type bop2 = Sl of slice | BImm of int

(** Memory index operand of the slice load/store forms:
    Mem[Rn + (Bm or imm8)] (Table 1). *)
type bindex = BOff of int | BIdx of slice

type insn =
  (* --- conventional 32-bit ISA ------------------------------------- *)
  | MOV of reg * reg
  | MOVW of reg * int                  (* Rd := imm16 (low half, zeroed top) *)
  | MOVT of reg * int                  (* Rd(high16) := imm16 *)
  | ALU of aluop * reg * reg * op2     (* Rd := Rn op op2 *)
  | MUL of reg * reg * reg
  | DIV of signedness * reg * reg * reg
  | CMP of reg * op2                   (* sets N/Z/C/V *)
  | CSET of cond * reg                 (* Rd := cond ? 1 : 0 *)
  | B of int                           (* absolute instruction index *)
  | BC of cond * int
  | BL of int                          (* call: LR := return, PC := target *)
  | BX_LR                              (* return *)
  | LDR of width * signedness * reg * reg * int  (* Rd := Mem[Rn + imm] *)
  | STR of width * reg * reg * int               (* Mem[Rn + imm] := Rd *)
  | SXT of width * reg * reg           (* sign-extend low 8/16 bits *)
  | UXT of width * reg * reg
  (* --- BITSPEC slice extension (Table 1) ---------------------------- *)
  | BALU of baluop * slice * slice * bop2   (* Bd := Bn op bop2 *)
  | BCMPS of slice * bop2                   (* unsigned 8-bit compare *)
  | BLDRS of slice * reg * bindex           (* speculative: Bd := Mem32[Rn+x] *)
  | BLDRB of slice * reg * bindex           (* Bd := Mem8[Rn+x] *)
  | BSTRB of slice * reg * bindex           (* Mem8[Rn+x] := Bd *)
  | BEXT of signedness * reg * slice        (* Rd := extend(Bn) *)
  | BTRN of slice * reg                     (* speculative truncate *)
  | BMOV of slice * slice                   (* slice move *)
  | BMOVI of slice * int                    (* Bd := imm8 *)
  (* --- control ------------------------------------------------------ *)
  | SETDELTA of int                    (* Δ := imm (instruction units) *)
  | SETMODE of mode
  | NOP
  | HALT

(** Provenance tags used by the simulator's activity counters (Figure 10
    distinguishes spill loads/stores and register-allocator copies). *)
type provenance =
  | PNormal
  | PSpillLoad
  | PSpillStore
  | PCopy
  | PSkeleton           (* skeleton-area branch (§3.3.4) *)
  | PPrologue

(** Does this instruction exist only in BITSPEC mode? *)
let is_slice_insn = function
  | BALU _ | BCMPS _ | BLDRS _ | BLDRB _ | BSTRB _ | BEXT _ | BTRN _
  | BMOV _ | BMOVI _ -> true
  | _ -> false

(** Can the instruction misspeculate (Table 1's Misspec? column)? *)
let can_misspeculate = function
  | BALU ((BAdd | BSub), _, _, _) -> true
  | BLDRS _ -> true
  | BTRN _ -> true
  | _ -> false

let cond_name = function
  | CEq -> "eq" | CNe -> "ne"
  | CUlt -> "lo" | CUle -> "ls" | CUgt -> "hi" | CUge -> "hs"
  | CSlt -> "lt" | CSle -> "le" | CSgt -> "gt" | CSge -> "ge"

let reg_name r =
  if r = sp then "sp" else if r = lr then "lr" else if r = pc then "pc"
  else "r" ^ string_of_int r

let slice_name s = Printf.sprintf "%s.b%d" (reg_name s.sl_reg) s.sl_byte

let op2_name = function Reg r -> reg_name r | Imm i -> "#" ^ string_of_int i

let bop2_name = function Sl s -> slice_name s | BImm i -> "#" ^ string_of_int i

let bindex_name = function
  | BOff i -> "#" ^ string_of_int i
  | BIdx s -> slice_name s

let aluop_name = function
  | OpAdd -> "add" | OpSub -> "sub" | OpAnd -> "and" | OpOrr -> "orr"
  | OpEor -> "eor" | OpLsl -> "lsl" | OpLsr -> "lsr" | OpAsr -> "asr"

let baluop_name = function
  | BAdd -> "badd" | BSub -> "bsub" | BAnd -> "band" | BOrr -> "borr"
  | BEor -> "beor"

let width_suffix = function W8 -> "b" | W16 -> "h" | W32 -> ""

let to_string (i : insn) =
  match i with
  | MOV (d, s) -> Printf.sprintf "mov %s, %s" (reg_name d) (reg_name s)
  | MOVW (d, v) -> Printf.sprintf "movw %s, #%d" (reg_name d) v
  | MOVT (d, v) -> Printf.sprintf "movt %s, #%d" (reg_name d) v
  | ALU (op, d, n, o) ->
      Printf.sprintf "%s %s, %s, %s" (aluop_name op) (reg_name d) (reg_name n)
        (op2_name o)
  | MUL (d, n, m) ->
      Printf.sprintf "mul %s, %s, %s" (reg_name d) (reg_name n) (reg_name m)
  | DIV (Signed, d, n, m) ->
      Printf.sprintf "sdiv %s, %s, %s" (reg_name d) (reg_name n) (reg_name m)
  | DIV (Unsigned, d, n, m) ->
      Printf.sprintf "udiv %s, %s, %s" (reg_name d) (reg_name n) (reg_name m)
  | CMP (n, o) -> Printf.sprintf "cmp %s, %s" (reg_name n) (op2_name o)
  | CSET (c, d) -> Printf.sprintf "cset.%s %s" (cond_name c) (reg_name d)
  | B t -> Printf.sprintf "b %d" t
  | BC (c, t) -> Printf.sprintf "b.%s %d" (cond_name c) t
  | BL t -> Printf.sprintf "bl %d" t
  | BX_LR -> "bx lr"
  | LDR (w, Signed, d, n, off) ->
      Printf.sprintf "ldrs%s %s, [%s, #%d]" (width_suffix w) (reg_name d)
        (reg_name n) off
  | LDR (w, Unsigned, d, n, off) ->
      Printf.sprintf "ldr%s %s, [%s, #%d]" (width_suffix w) (reg_name d)
        (reg_name n) off
  | STR (w, s, n, off) ->
      Printf.sprintf "str%s %s, [%s, #%d]" (width_suffix w) (reg_name s)
        (reg_name n) off
  | SXT (w, d, s) ->
      Printf.sprintf "sxt%s %s, %s" (width_suffix w) (reg_name d) (reg_name s)
  | UXT (w, d, s) ->
      Printf.sprintf "uxt%s %s, %s" (width_suffix w) (reg_name d) (reg_name s)
  | BALU (op, d, n, o) ->
      Printf.sprintf "%s %s, %s, %s" (baluop_name op) (slice_name d)
        (slice_name n) (bop2_name o)
  | BCMPS (n, o) -> Printf.sprintf "bcmp %s, %s" (slice_name n) (bop2_name o)
  | BLDRS (d, n, x) ->
      Printf.sprintf "bldrs %s, [%s, %s]" (slice_name d) (reg_name n) (bindex_name x)
  | BLDRB (d, n, x) ->
      Printf.sprintf "bldrb %s, [%s, %s]" (slice_name d) (reg_name n) (bindex_name x)
  | BSTRB (s, n, x) ->
      Printf.sprintf "bstrb %s, [%s, %s]" (slice_name s) (reg_name n) (bindex_name x)
  | BEXT (Signed, d, s) -> Printf.sprintf "bsext %s, %s" (reg_name d) (slice_name s)
  | BEXT (Unsigned, d, s) -> Printf.sprintf "bzext %s, %s" (reg_name d) (slice_name s)
  | BTRN (d, s) -> Printf.sprintf "btrn %s, %s" (slice_name d) (reg_name s)
  | BMOV (d, s) -> Printf.sprintf "bmov %s, %s" (slice_name d) (slice_name s)
  | BMOVI (d, v) -> Printf.sprintf "bmovi %s, #%d" (slice_name d) v
  | SETDELTA v -> Printf.sprintf "setdelta #%d" v
  | SETMODE Classic -> "setmode classic"
  | SETMODE Bitspec -> "setmode bitspec"
  | NOP -> "nop"
  | HALT -> "halt"
