(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the repository (workload input generation,
    property-test corpora, synthetic images) flows through this splitmix64
    generator so that every experiment is reproducible bit-for-bit from a
    seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val next : t -> int64
(** [next t] advances the state and returns 64 uniformly distributed
    bits. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] returns a uniform integer in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)

val float : t -> float
(** [float t] returns a uniform float in [\[0, 1)]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)
