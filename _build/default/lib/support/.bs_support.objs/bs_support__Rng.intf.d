lib/support/rng.mli:
