open Bs_ir

(* SSA repair on a complete CFG.

   Used by the squeezer's pass ③: once handlers provide alternative
   definitions for variables that were live at the entry of re-executed
   blocks, each such variable has several definitions and SSA must be
   rebuilt for its uses.  This is the Braun et al. algorithm restricted to
   sealed (fully-known) CFGs: walk predecessors on demand, inserting phis
   at joins and removing the trivial ones. *)

type ctx = {
  f : Ir.func;
  width : int;
  preds : (int, int list) Hashtbl.t;
  defs : (int, Ir.operand) Hashtbl.t;  (* block id -> reaching definition *)
  name : string;
  (* forwarding of removed trivial phis (values captured mid-construction
     can reference a phi deleted by a nested removal) *)
  forward : (int, Ir.operand) Hashtbl.t;
}

let rec resolve ctx (o : Ir.operand) =
  match o with
  | Ir.Var v -> (
      match Hashtbl.find_opt ctx.forward v with
      | Some o' -> resolve ctx o'
      | None -> o)
  | Ir.Const _ -> o

let rec read ctx bid : Ir.operand =
  match Hashtbl.find_opt ctx.defs bid with
  | Some v -> resolve ctx v
  | None -> (
      let ps = match Hashtbl.find_opt ctx.preds bid with Some l -> l | None -> [] in
      match ps with
      | [] ->
          (* unreachable or entry without def: undefined-but-dead *)
          Ir.const ~width:ctx.width 0L
      | [ p ] ->
          let v = read ctx p in
          Hashtbl.replace ctx.defs bid v;
          v
      | _ ->
          let b = Ir.block ctx.f bid in
          let phi =
            Ir.mk_instr ctx.f ~name:ctx.name ~width:ctx.width (Ir.Phi [])
          in
          let phis, rest = List.partition Ir.is_phi b.Ir.instrs in
          b.Ir.instrs <- phis @ [ phi ] @ rest;
          Hashtbl.replace ctx.defs bid (Ir.Var phi.Ir.iid);
          let incoming =
            List.map (fun p -> (p, resolve ctx (read ctx p))) ps
          in
          phi.Ir.op <- Ir.Phi incoming;
          (* trivial-phi removal *)
          let self = Ir.Var phi.Ir.iid in
          let distinct =
            List.sort_uniq compare
              (List.filter (fun v -> v <> self) (List.map snd incoming))
          in
          (match distinct with
          | [ unique ] ->
              Hashtbl.replace ctx.forward phi.Ir.iid unique;
              Ir.replace_all_uses ctx.f ~old_id:phi.Ir.iid ~by:unique;
              Hashtbl.iter
                (fun k v -> if v = self then Hashtbl.replace ctx.defs k unique)
                ctx.defs;
              b.Ir.instrs <-
                List.filter (fun (i : Ir.instr) -> i.Ir.iid <> phi.Ir.iid) b.Ir.instrs;
              Hashtbl.replace ctx.defs bid unique;
              unique
          | _ -> Ir.Var phi.Ir.iid))

(** [repair f ~var ~extra_defs ~preds] rewires every use of the SSA
    variable [var] so it observes the correct reaching definition given the
    additional definitions [extra_defs] (block id, value).  [preds] is the
    predecessor relation of the *final* CFG (including handler branch
    edges).  The block defining [var] keeps [var] as its local
    definition. *)
let repair (f : Ir.func) ~(var : int) ~(extra_defs : (int * Ir.operand) list)
    ~(preds : (int, int list) Hashtbl.t) =
  let vi = Ir.instr f var in
  let def_block =
    List.find_map
      (fun (b : Ir.block) ->
        if List.exists (fun (i : Ir.instr) -> i.Ir.iid = var) b.Ir.instrs then
          Some b.Ir.bid
        else None)
      f.blocks
  in
  let def_block =
    match def_block with
    | Some b -> b
    | None -> invalid_arg "Ssa_repair.repair: variable has no defining block"
  in
  let ctx =
    { f; width = vi.width; preds; defs = Hashtbl.create 16;
      name = (if vi.iname = "" then "rep" else vi.iname ^ ".rep");
      forward = Hashtbl.create 8 }
  in
  Hashtbl.replace ctx.defs def_block (Ir.Var var);
  List.iter (fun (bid, v) -> Hashtbl.replace ctx.defs bid v) extra_defs;
  (* Rewrite uses.  Non-phi uses read at their own block; a use in the
     def's own block stays (straight-line dominance).  Phi uses read at the
     incoming predecessor. *)
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.op with
          | Ir.Phi incoming ->
              (* Phi operands read at the incoming predecessor.  This
                 applies to the variable's own defining phi too: a
                 self-loop operand (phi [init, self]) must observe the
                 reaching definition at the latch, which an extra
                 definition along that path may have changed. *)
              i.Ir.op <-
                Ir.Phi
                  (List.map
                     (fun (p, v) ->
                       match v with
                       | Ir.Var x when x = var -> (p, read ctx p)
                       | _ -> (p, v))
                     incoming)
          | _ ->
              if i.Ir.iid <> var && b.Ir.bid <> def_block then
                Ir.map_operands
                  (fun o ->
                    match o with
                    | Ir.Var x when x = var -> read ctx b.Ir.bid
                    | o -> o)
                  i)
        b.Ir.instrs)
    f.blocks
