lib/core/bitmask_elide.mli: Bs_ir
