lib/core/experiment.ml: Bs_energy Bs_frontend Bs_interp Bs_sim Bs_workloads Cache Counters Driver Energy Int64 Interp Machine Option Workload
