lib/core/bitmask_elide.ml: Bs_ir Hashtbl Ir List Specops Width
