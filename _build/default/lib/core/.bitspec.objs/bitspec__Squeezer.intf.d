lib/core/squeezer.mli: Bs_interp Bs_ir
