lib/core/driver.mli: Bs_backend Bs_interp Bs_ir Bs_sim Expander Squeezer
