lib/core/cfg_prep.mli: Bs_ir
