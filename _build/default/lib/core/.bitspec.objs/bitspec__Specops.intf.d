lib/core/specops.mli: Bs_ir
