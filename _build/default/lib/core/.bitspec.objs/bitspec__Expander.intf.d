lib/core/expander.mli: Bs_ir
