lib/core/experiment.mli: Bs_energy Bs_sim Bs_workloads Driver
