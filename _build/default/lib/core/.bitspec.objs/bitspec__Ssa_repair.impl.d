lib/core/ssa_repair.ml: Bs_ir Hashtbl Ir List
