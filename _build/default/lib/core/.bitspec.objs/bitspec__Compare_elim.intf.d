lib/core/compare_elim.mli: Bs_ir
