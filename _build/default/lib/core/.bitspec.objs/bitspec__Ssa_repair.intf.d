lib/core/ssa_repair.mli: Bs_ir Hashtbl
