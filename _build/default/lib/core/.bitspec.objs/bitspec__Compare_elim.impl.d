lib/core/compare_elim.ml: Bs_ir Dom Hashtbl Ir Lazy List Specops Width
