lib/core/cfg_prep.ml: Bs_ir Ir List
