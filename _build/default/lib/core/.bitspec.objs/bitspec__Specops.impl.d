lib/core/specops.ml: Bs_ir Ir List
