lib/core/expander.ml: Bs_ir Bs_opt Constfold Dce Inline Ir List Simplify_cfg Unroll
