lib/core/squeezer.ml: Bs_interp Bs_ir Hashtbl Int Ir List Liveness Map Option Profile Set Specops Ssa_repair Width
