(** The Speculative? and Idempotent? relations of §3.2.2.

    Table 1 provides 8-bit speculative hardware for addition, subtraction,
    logic, comparison, loads/stores, extension and truncation — but not
    multiplication, division or shifts, so those are never squeezed.
    Signed comparisons are excluded because byte slices compare
    unsigned. *)

val slice_width : int
(** The hardware slice width: 8. *)

val speculative_op : Bs_ir.Ir.op -> bool
(** Does a speculative (slice) variant of this operation exist? *)

val idempotent_block : Bs_ir.Ir.block -> bool
(** Equation (5)'s query: no volatile access, no call. *)

val can_misspeculate : Bs_ir.Ir.instr -> bool
(** Table 1's Misspec? column: speculative add/sub (overflow/underflow)
    and speculative truncates (source exceeds the slice). *)
