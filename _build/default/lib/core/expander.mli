(** The expander (§3.2.1): aggressive inlining and loop unrolling that
    instantiate dynamic code paths as static control flow, widening the
    optimisation space BITSPEC's register packing then exploits. *)

type config = {
  unroll_factor : int;   (** max times any loop is unrolled *)
  max_fn_size : int;     (** static instruction budget per function *)
  max_loop_size : int;   (** static instruction budget per unrolled loop *)
}

val default : config
(** The configuration used throughout the evaluation (the analogue of the
    paper's autotuned setting). *)

val disabled : config
(** No inlining, no unrolling — Figure 13's ablation. *)

val run : Bs_ir.Ir.modul -> config -> int * int
(** [run m config] applies inlining, unrolling and cleanup in place;
    returns (calls inlined, loops unrolled). *)

val autotune :
  compile:(unit -> Bs_ir.Ir.modul) -> measure:(Bs_ir.Ir.modul -> int) -> config
(** Grid search over the expander's knobs minimising [measure] (dynamic
    instructions on the baseline, as in the paper's OpenTuner setup).
    [compile] must produce a fresh module for each trial. *)
