open Bs_ir
open Bs_opt

(* The expander (§3.2.1): aggressive function inlining and loop unrolling,
   instantiating dynamic code paths as static control flow to widen the
   optimisation space that BITSPEC's register packing then exploits.

   The search space matches the paper's autotuner: unrolling factor,
   maximum function size and maximum loop size; [autotune] grid-searches it
   for the configuration minimising dynamic instructions on the baseline
   (the paper tuned against BASELINE with OpenTuner over 10 days; the grid
   here covers the same axes in seconds). *)

type config = {
  unroll_factor : int;   (* max times any loop is unrolled *)
  max_fn_size : int;     (* static instruction budget per function *)
  max_loop_size : int;   (* static instruction budget per unrolled loop *)
}

let default = { unroll_factor = 4; max_fn_size = 2000; max_loop_size = 600 }

let disabled = { unroll_factor = 1; max_fn_size = 0; max_loop_size = 0 }

(** [run m config] applies inlining then unrolling then cleanup.  Returns
    (functions inlined, loops unrolled). *)
let run (m : Ir.modul) (config : config) =
  let inlined =
    if config.max_fn_size > 0 then
      Inline.run m ~max_callee_size:(config.max_fn_size / 4)
        ~max_size:config.max_fn_size ()
    else 0
  in
  let unrolled =
    if config.unroll_factor > 1 then
      List.fold_left
        (fun n f ->
          n
          + Unroll.run_func f ~factor:config.unroll_factor
              ~max_loop_size:config.max_loop_size)
        0 m.funcs
    else 0
  in
  ignore (Constfold.run m);
  ignore (Simplify_cfg.run m);
  ignore (Dce.run m);
  (inlined, unrolled)

(** Grid search over the expander's knobs: [compile ()] must produce a
    fresh module, [measure m] its dynamic instruction count on the target
    workload.  Returns the best configuration. *)
let autotune ~compile ~measure =
  let grid =
    List.concat_map
      (fun uf ->
        List.concat_map
          (fun mfs ->
            List.map
              (fun mls -> { unroll_factor = uf; max_fn_size = mfs; max_loop_size = mls })
              [ 300; 600 ])
          [ 1000; 2000 ])
      [ 1; 2; 4; 8 ]
  in
  let best = ref (default, max_int) in
  List.iter
    (fun cfg ->
      let m = compile () in
      ignore (run m cfg);
      match measure m with
      | cost when cost < snd !best -> best := (cfg, cost)
      | _ -> ())
    grid;
  fst !best
