(** Bitmask elision (RQ3): a speculative truncate fed by [v & 0xFF]
    becomes an exact truncate of [v] — the back-end lowers it to a plain
    register-slice move that can never misspeculate, and the mask itself
    dies at the next DCE.  The pattern dominates encoder kernels
    (blowfish, rijndael). *)

val run_func : Bs_ir.Ir.func -> int
(** Returns the number of truncates de-speculated. *)

val run : Bs_ir.Ir.modul -> int
