open Bs_ir

(* The Speculative? and Idempotent? relations of §3.2.2.

   Table 1 provides 8-bit speculative hardware for addition, subtraction,
   logic, comparison, loads/stores, extension and truncation — but not for
   multiplication, division or shifts, so those operations are never
   squeezed.  Signed comparisons are excluded because byte slices compare
   unsigned. *)

(** The hardware slice width: speculative operations exist at 8 bits
    only. *)
let slice_width = 8

(** [speculative_op op] — does a speculative (slice) variant of this
    operation exist in the ISA? *)
let speculative_op (op : Ir.op) =
  match op with
  | Ir.Bin ((Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor), _, _) -> true
  | Ir.Cmp ((Ir.Eq | Ir.Ne | Ir.Ult | Ir.Ule | Ir.Ugt | Ir.Uge), _, _) -> true
  | Ir.Phi _ -> true  (* a register merge: slices merge like registers *)
  | _ -> false

(** [idempotent_block b] — equation (5)'s query: a block is idempotent iff
    it contains no volatile access and no call. *)
let idempotent_block (b : Ir.block) =
  List.for_all
    (fun (i : Ir.instr) ->
      match i.op with
      | Ir.Call _ -> false
      | Ir.Load l -> not l.l_volatile
      | Ir.Store s -> not s.s_volatile
      | _ -> true)
    b.instrs

(** Misspeculation conditions at the machine level mirror
    {!Bs_interp.Interp.misspeculates}; this predicate tells whether an
    instruction *can* misspeculate at all (Table 1's Misspec? column). *)
let can_misspeculate (i : Ir.instr) =
  i.speculative
  &&
  match i.op with
  | Ir.Bin ((Ir.Add | Ir.Sub), _, _) -> true
  | Ir.Cast (Ir.TruncCast, _) -> true
  | _ -> false
