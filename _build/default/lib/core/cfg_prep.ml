open Bs_ir

(* CFG preparation — pass ① of the squeezer (§3.2.3).

   Blocks are split so that:
   - equation (4): a block contains only loads or only stores, never both
     (removing intra-block WAR hazards so re-execution is safe);
   - equation (5): volatile accesses and calls sit alone in their block,
     making Idempotent? a per-block query;
   - equation (6): a block contains either only phis or no phis. *)

let is_load (i : Ir.instr) = match i.op with Ir.Load _ -> true | _ -> false
let is_store (i : Ir.instr) = match i.op with Ir.Store _ -> true | _ -> false

let is_volatile_or_call (i : Ir.instr) =
  match i.op with
  | Ir.Call _ -> true
  | Ir.Load l -> l.l_volatile
  | Ir.Store s -> s.s_volatile
  | _ -> false

(* Index (counting from 0 over all instructions of [b]) at which [b] must
   be split, or None. *)
let split_point (b : Ir.block) =
  let body = Ir.body_instrs b in
  let n = List.length body in
  let rec scan idx ~seen_load ~seen_store ~seen_nonphi = function
    | [] -> None
    | (i : Ir.instr) :: rest ->
        (* eq (6): a phi after a non-phi cannot happen in valid IR; a
           non-phi after phis splits the block so phis stand alone. *)
        if (not (Ir.is_phi i)) && (not seen_nonphi) && idx > 0 then Some idx
        else if is_volatile_or_call i then
          if idx > 0 then Some idx
          else if n > 1 then Some 1
          else None
        else if is_load i && seen_store then Some idx
        else if is_store i && seen_load then Some idx
        else
          scan (idx + 1)
            ~seen_load:(seen_load || is_load i)
            ~seen_store:(seen_store || is_store i)
            ~seen_nonphi:(seen_nonphi || not (Ir.is_phi i))
            rest
  in
  (* track whether the block starts with phis *)
  match body with
  | [] -> None
  | first :: _ ->
      if Ir.is_phi first then
        (* split right after the phi prefix if anything follows *)
        let phis = List.length (List.filter Ir.is_phi body) in
        if phis < n then Some phis else None
      else scan 0 ~seen_load:false ~seen_store:false ~seen_nonphi:true body

let run_func (f : Ir.func) =
  let splits = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let target =
      List.find_map
        (fun (b : Ir.block) ->
          match split_point b with Some at -> Some (b, at) | None -> None)
        f.blocks
    in
    match target with
    | Some (b, at) ->
        ignore (Ir.split_block f b ~at);
        incr splits;
        progress := true
    | None -> ()
  done;
  !splits

let run (m : Ir.modul) = List.fold_left (fun n f -> n + run_func f) 0 m.funcs

(* --- invariant checks (used by the test suite) ------------------------ *)

let satisfies_eq4 (b : Ir.block) =
  let loads = List.filter is_load b.instrs and stores = List.filter is_store b.instrs in
  loads = [] || stores = []

let satisfies_eq5 (b : Ir.block) =
  let v = List.filter is_volatile_or_call b.instrs in
  v = [] || List.length (Ir.body_instrs b) = 1

let satisfies_eq6 (b : Ir.block) =
  let body = Ir.body_instrs b in
  List.for_all Ir.is_phi body || not (List.exists Ir.is_phi body)

let check_func (f : Ir.func) =
  List.for_all
    (fun b -> satisfies_eq4 b && satisfies_eq5 b && satisfies_eq6 b)
    f.blocks
