(** SSA repair on a complete CFG (Braun et al. restricted to sealed
    graphs).

    Used by the squeezer's pass ③: handlers provide alternative
    definitions for variables live at re-executed blocks, so each such
    variable gains several definitions and its uses must be rewired
    through fresh phis at joins — equation (8)'s φ-merge. *)

val repair :
  Bs_ir.Ir.func ->
  var:int ->
  extra_defs:(int * Bs_ir.Ir.operand) list ->
  preds:(int, int list) Hashtbl.t ->
  unit
(** [repair f ~var ~extra_defs ~preds] rewires every use of SSA variable
    [var] to observe the correct reaching definition given the additional
    definitions (block id, value).  [preds] must be the final CFG's
    relation, including handler branch edges.  Trivial phis are removed
    with forwarding so nested removals stay consistent. *)
