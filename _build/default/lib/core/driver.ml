open Bs_ir
open Bs_frontend
open Bs_interp
open Bs_backend
open Bs_sim

(* The BITSPEC compilation driver (Figure 4): front-end → expander →
   CFG preparation → profile → squeeze → BITSPEC optimisations → back-end
   → binary, plus the baseline pipeline that skips the speculative
   stages. *)

type arch = Baseline | Bitspec_arch | Thumb

type config = {
  arch : arch;
  heuristic : Profile.heuristic;
  expander : Expander.config;
  speculate : bool;               (* RQ2: false = static narrowing only *)
  compare_elim : bool;
  bitmask_elide : bool;
  orig_first : bool;
      (* RQ5: invert the allocator's handler branch weights, giving
         CFG_orig first pick of registers *)
}

let bitspec_config =
  { arch = Bitspec_arch; heuristic = Profile.Hmax;
    expander = Expander.default; speculate = true; compare_elim = true;
    bitmask_elide = true; orig_first = false }

let baseline_config =
  { bitspec_config with arch = Baseline; speculate = false;
    compare_elim = false; bitmask_elide = false }

(** RQ9: the compact-ISA build (Thumb-like: 8 registers, 2-address ops). *)
let thumb_config = { baseline_config with arch = Thumb }

type compiled = {
  ir : Ir.modul;
  program : Asm.program;
  config : config;
  profile : Profile.t option;
  squeeze_stats : Squeezer.stats option;
}

(** Profile [m] by interpreting it on the training runs: each run is an
    (entry, args) pair; [setup] (if any) initialises workload inputs given
    the in-flight module. *)
let profile_module (m : Ir.modul) ?setup
    ~(train : (string * int64 list) list) () =
  let profile = Profile.create () in
  let opts = { Interp.default_opts with profile = Some profile } in
  List.iter
    (fun (entry, args) ->
      let s = Option.map (fun f -> f m) setup in
      ignore (Interp.run_fresh ~opts ?setup:s m ~entry ~args))
    train;
  profile

let lower_to_machine ?(orig_first = false) (m : Ir.modul) ~arch : Asm.program =
  let image = Memimage.create m in
  let addr_of_global = Memimage.addr_of image in
  let slices = arch = Bitspec_arch in
  let funcs =
    List.map
      (fun f ->
        let mf = Isel.lower_func ~slices f in
        let ra =
          match arch with
          | Thumb -> Regalloc.run ~regs:Thumb.thumb_regs ~orig_first mf
          | Baseline | Bitspec_arch -> Regalloc.run ~orig_first mf
        in
        (mf, ra))
      m.Ir.funcs
  in
  let p = Asm.assemble ~addr_of_global funcs in
  match arch with Thumb -> Thumb.expand p | Baseline | Bitspec_arch -> p

(** [compile ~config ~source ~train] runs the full pipeline on MiniC
    source.  [train] supplies the profiling runs (ignored by the baseline
    pipeline). *)
let compile ~config ~source ?setup ~train () : compiled =
  let m = Lower.compile source in
  ignore (Expander.run m config.expander);
  Verifier.verify_exn m;
  ignore (Cfg_prep.run m);
  Verifier.verify_exn m;
  let profile, squeeze_stats =
    if config.arch = Bitspec_arch && config.speculate then begin
      let profile = profile_module m ?setup ~train () in
      let stats = Squeezer.run m ~profile ~heuristic:config.heuristic in
      if config.compare_elim then ignore (Compare_elim.run m);
      if config.bitmask_elide then ignore (Bitmask_elide.run m);
      ignore (Bs_opt.Constfold.run m);
      ignore (Bs_opt.Dce.run m);
      Verifier.verify_exn m;
      (Some profile, Some stats)
    end
    else (None, None)
  in
  let program =
    lower_to_machine ~orig_first:config.orig_first m ~arch:config.arch
  in
  { ir = m; program; config; profile; squeeze_stats }

(** Run the compiled binary on the machine model. *)
let run_machine ?setup ?(fuel = 1_000_000_000) (c : compiled) ~entry ~args =
  let mem = Memimage.create c.ir in
  (match setup with Some f -> f mem | None -> ());
  let mode =
    if c.config.arch = Bitspec_arch then Bs_isa.Isa.Bitspec
    else Bs_isa.Isa.Classic
  in
  Machine.run ~config:{ Machine.mode; fuel } c.program mem ~entry ~args

(** Run the reference interpreter on the same IR (for differential
    checks). *)
let run_reference ?setup (c : compiled) ~entry ~args =
  let r, _ = Interp.run_fresh ?setup c.ir ~entry ~args in
  r
