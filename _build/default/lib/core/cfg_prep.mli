(** CFG preparation — pass ① of the squeezer (§3.2.3).

    Splits blocks until each satisfies equations (4)-(6): only loads or
    only stores per block (no intra-block WAR hazards), volatile accesses
    and calls isolated, phis separated from non-phis. *)

val run_func : Bs_ir.Ir.func -> int
(** Prepare one function; returns the number of splits performed. *)

val run : Bs_ir.Ir.modul -> int
(** Prepare every function of the module. *)

val satisfies_eq4 : Bs_ir.Ir.block -> bool
(** Loads-only or stores-only. *)

val satisfies_eq5 : Bs_ir.Ir.block -> bool
(** Volatile/call instructions stand alone. *)

val satisfies_eq6 : Bs_ir.Ir.block -> bool
(** Phis-only or phi-free. *)

val check_func : Bs_ir.Ir.func -> bool
(** All three invariants hold for every block (used by the test suite). *)
