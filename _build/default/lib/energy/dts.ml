open Bs_sim

(* Dynamic Timing Slack (RQ8): a model of time squeezing (Fan et al.,
   ISCA'19) as the paper applies it.

   Each instruction class has a critical-path fraction d ∈ (0,1]: the part
   of the clock period its longest logic path actually needs.  The
   compiler's per-instruction clock hint lets the hardware reclaim the
   slack by lowering the supply voltage until the path fills the period.
   Voltage is found by inverting the alpha-power-law delay model
   (Sakurai-Newton),  delay ∝ V / (V - Vt)^α,  and dynamic energy scales
   as (V/V0)² (Mudge) — the same "well-established power and delay
   equations" the paper cites.  Razor-style recovery charges a small
   replay penalty.

   Two estimators are provided:
   - [Conservative] is the paper's: the compiler estimate is unaware of
     operand bitwidth, so slice operations get the same class delay as
     32-bit ALU operations.  This makes DTS and BITSPEC compose
     multiplicatively (the paper's Figure 17 finding).
   - [Width_aware] is the future work §4/RQ8 sketches: 8-bit slices induce
     shorter carry chains, so slice ops expose more slack. *)

type estimator = Conservative | Width_aware

let v0 = 1.2      (* nominal supply, paper's synthesis point *)
let vt = 0.35
let alpha = 1.3
let margin = 0.05 (* guard band on every hint *)
let razor_error_rate = 0.001
let razor_penalty_cycles = 6.0

(* relative delay of the circuit at voltage [v], vs nominal *)
let rel_delay v = v /. ((v -. vt) ** alpha) /. (v0 /. ((v0 -. vt) ** alpha))

(* Lowest voltage at which the circuit still meets a period stretched by
   1/d (bisection; rel_delay is monotonically decreasing in v). *)
let voltage_for_slack d =
  let target = 1.0 /. d in
  let lo = ref (vt +. 0.05) and hi = ref v0 in
  for _ = 1 to 40 do
    let mid = 0.5 *. (!lo +. !hi) in
    if rel_delay mid > target then lo := mid else hi := mid
  done;
  !hi

(* energy scale factor for an instruction class with path fraction d *)
let energy_factor d =
  let d = min 1.0 (d +. margin) in
  let v = voltage_for_slack d in
  (v /. v0) ** 2.0

(* critical-path fractions per class *)
let d_mem = 1.0
let d_div = 1.0
let d_mul = 1.0
let d_alu32 = 0.85
let d_branch = 0.75
let d_alu8_aware = 0.55
let d_other = 0.6

(** [scale estimator ctr breakdown] returns the DTS-scaled breakdown and
    the average core energy factor applied. *)
let scale (est : estimator) (ctr : Counters.t) (b : Energy.breakdown) :
    Energy.breakdown * float =
  let f = float_of_int in
  let d_alu8 =
    match est with Conservative -> d_alu32 | Width_aware -> d_alu8_aware
  in
  let mem = ctr.loads + ctr.stores in
  let branches = ctr.branch_stalls / 2 in
  let classified = ctr.alu32 + ctr.alu8 + ctr.mul_ops + ctr.div_ops + mem + branches in
  let other = max 0 (ctr.instrs - classified) in
  let weighted =
    (f ctr.alu32 *. energy_factor d_alu32)
    +. (f ctr.alu8 *. energy_factor d_alu8)
    +. (f ctr.mul_ops *. energy_factor d_mul)
    +. (f ctr.div_ops *. energy_factor d_div)
    +. (f mem *. energy_factor d_mem)
    +. (f branches *. energy_factor d_branch)
    +. (f other *. energy_factor d_other)
  in
  let denom = f (max 1 ctr.instrs) in
  let avg_factor = weighted /. denom in
  (* Razor recovery: replayed instructions burn pipeline cycles *)
  let razor =
    razor_error_rate *. f ctr.instrs *. razor_penalty_cycles *. 1.2
  in
  let scaled =
    { Energy.alu = b.Energy.alu *. avg_factor;
      regfile = b.Energy.regfile *. avg_factor;
      dcache = b.Energy.dcache *. avg_factor;
      icache = b.Energy.icache *. avg_factor;
      pipeline = (b.Energy.pipeline *. avg_factor) +. razor }
  in
  (scaled, avg_factor)
