lib/energy/dts.mli: Bs_sim Energy
