lib/energy/dts.ml: Bs_sim Counters Energy
