lib/energy/energy.mli: Bs_sim
