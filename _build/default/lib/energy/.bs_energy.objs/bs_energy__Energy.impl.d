lib/energy/energy.ml: Bs_sim Cache Counters Machine
