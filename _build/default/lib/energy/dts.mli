(** Dynamic Timing Slack (RQ8): a model of time squeezing as the paper
    applies it.

    Each instruction class exposes a critical-path fraction; the reclaimed
    slack lowers the supply voltage via the inverted alpha-power-law delay
    model, and dynamic energy scales as (V/V0)².  Razor-style recovery
    charges a small replay penalty. *)

type estimator =
  | Conservative
      (** The paper's estimator: unaware of operand bitwidth, so slice
          operations get the 32-bit ALU class delay.  This makes DTS and
          BITSPEC compose multiplicatively (Figure 17's finding). *)
  | Width_aware
      (** The future work §4/RQ8 sketches: 8-bit slices have shorter carry
          chains and expose more slack. *)

val voltage_for_slack : float -> float
(** Lowest supply voltage at which the circuit still meets a period
    stretched by [1/d], by bisection on the Sakurai-Newton delay model. *)

val energy_factor : float -> float
(** Energy scale factor for an instruction class whose critical path uses
    fraction [d] of the cycle (guard band included). *)

val scale :
  estimator ->
  Bs_sim.Counters.t ->
  Energy.breakdown ->
  Energy.breakdown * float
(** [scale est ctr b] applies per-class voltage scaling to the breakdown
    and returns it with the average core energy factor used. *)
