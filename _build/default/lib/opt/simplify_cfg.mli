(** CFG cleanup: constant-branch folding, unreachable-block removal, and
    straight-line block merging.  Speculative-region blocks and handlers
    are never merged, so region structure survives. *)

val run_func : Bs_ir.Ir.func -> bool
(** [true] if anything changed. *)

val run : Bs_ir.Ir.modul -> bool
