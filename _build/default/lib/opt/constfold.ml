open Bs_ir
open Bs_interp

(* Constant folding and trivial algebraic simplification.  Reuses the
   interpreter's evaluation functions so folding and execution can never
   disagree. *)

let fold_instr (f : Ir.func) (i : Ir.instr) : Ir.operand option =
  if i.speculative then None
  else
    match i.op with
    | Ir.Bin (op, Ir.Const a, Ir.Const b) -> (
        match op with
        | (Ir.Udiv | Ir.Sdiv | Ir.Urem | Ir.Srem) when b.cval = 0L -> None
        | _ -> Some (Ir.const ~width:i.width (Interp.eval_binop op i.width a.cval b.cval)))
    | Ir.Cmp (op, Ir.Const a, Ir.Const b) ->
        let w = a.cwidth in
        Some (Ir.const ~width:1 (Interp.eval_cmp op w a.cval b.cval))
    | Ir.Cast (op, Ir.Const a) ->
        let v =
          match op with
          | Ir.Zext -> a.cval
          | Ir.Sext -> Width.trunc i.width (Width.sext a.cwidth a.cval)
          | Ir.TruncCast -> Width.trunc i.width a.cval
        in
        Some (Ir.const ~width:i.width v)
    | Ir.Select (Ir.Const c, a, b) -> Some (if c.cval <> 0L then a else b)
    (* algebraic identities *)
    | Ir.Bin (Ir.Add, x, Ir.Const { cval = 0L; _ })
    | Ir.Bin (Ir.Sub, x, Ir.Const { cval = 0L; _ })
    | Ir.Bin (Ir.Or, x, Ir.Const { cval = 0L; _ })
    | Ir.Bin (Ir.Xor, x, Ir.Const { cval = 0L; _ })
    | Ir.Bin (Ir.Shl, x, Ir.Const { cval = 0L; _ })
    | Ir.Bin (Ir.Lshr, x, Ir.Const { cval = 0L; _ })
    | Ir.Bin (Ir.Ashr, x, Ir.Const { cval = 0L; _ }) ->
        if Ir.operand_width f x = i.width then Some x else None
    | Ir.Bin (Ir.Mul, x, Ir.Const { cval = 1L; _ }) ->
        if Ir.operand_width f x = i.width then Some x else None
    | Ir.Bin (Ir.Mul, _, Ir.Const { cval = 0L; _ })
    | Ir.Bin (Ir.And, _, Ir.Const { cval = 0L; _ }) ->
        Some (Ir.const ~width:i.width 0L)
    | Ir.Bin (Ir.And, x, Ir.Const c) when c.cval = Width.mask i.width ->
        if Ir.operand_width f x = i.width then Some x else None
    | Ir.Phi incoming -> (
        (* all-same-value phi *)
        match List.sort_uniq compare (List.map snd incoming) with
        | [ (Ir.Const _ as v) ] -> Some v
        | [ Ir.Var v ] when v <> i.iid -> Some (Ir.Var v)
        | _ -> None)
    | _ -> None

let run_func (f : Ir.func) =
  let folded = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            if Ir.has_result i then
              match fold_instr f i with
              | Some replacement ->
                  Ir.replace_all_uses f ~old_id:i.iid ~by:replacement;
                  incr folded;
                  progress := true;
                  (* neutralise the instruction; DCE removes it *)
                  i.op <- Ir.Bin (Ir.Add,
                                  Ir.const ~width:i.width 0L,
                                  Ir.const ~width:i.width 0L)
              | None -> ())
          b.instrs)
      f.blocks;
    if !progress then ignore (Dce.run_func f)
  done;
  !folded

let run (m : Ir.modul) = List.fold_left (fun n f -> n + run_func f) 0 m.funcs
