(** Function inlining: the call block is split, the callee body is cloned
    with a complete value map, returns become branches to the tail
    (merging through a phi), and the call disappears.

    Recursive callees and callees containing loops are never inlined — the
    latter keeps speculative blast radii separate (one misspeculation in a
    merged function would abandon speculation for everything that follows,
    the paper's §3 "large functions" pitfall). *)

exception Cannot_inline of string

val func_size : Bs_ir.Ir.func -> int
(** Static instruction count. *)

val has_loops : Bs_ir.Ir.func -> bool

val recursive_functions : Bs_ir.Ir.modul -> string list
(** Functions that transitively call themselves. *)

val inline_call :
  Bs_ir.Ir.func -> Bs_ir.Ir.block -> Bs_ir.Ir.instr -> Bs_ir.Ir.func -> unit
(** Expand one call site in place.  The callee must contain no speculative
    regions (inlining runs before the squeezer). *)

val run_func :
  Bs_ir.Ir.modul -> Bs_ir.Ir.func -> eligible:string list -> max_size:int -> int
(** Inline every eligible call in one function, bounded by caller growth;
    returns the number of calls inlined. *)

val run : Bs_ir.Ir.modul -> ?max_callee_size:int -> ?max_size:int -> unit -> int
(** Module-wide driver. *)
