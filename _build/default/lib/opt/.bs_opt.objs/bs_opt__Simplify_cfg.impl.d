lib/opt/simplify_cfg.ml: Bs_ir Hashtbl Ir List
