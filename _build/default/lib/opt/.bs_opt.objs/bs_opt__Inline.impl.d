lib/opt/inline.ml: Bs_ir Hashtbl Ir List Loops Printf
