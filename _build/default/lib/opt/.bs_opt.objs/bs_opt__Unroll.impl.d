lib/opt/unroll.ml: Bs_ir Hashtbl Ir List Loops Printf
