lib/opt/constfold.ml: Bs_interp Bs_ir Dce Interp Ir List Width
