lib/opt/constfold.mli: Bs_ir
