lib/opt/simplify_cfg.mli: Bs_ir
