lib/opt/dce.ml: Bs_ir Hashtbl Ir List
