lib/opt/inline.mli: Bs_ir
