lib/opt/dce.mli: Bs_ir
