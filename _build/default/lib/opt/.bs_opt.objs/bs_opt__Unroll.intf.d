lib/opt/unroll.mli: Bs_ir
