(** Dead-code elimination: iteratively removes pure instructions whose
    results are unused.  Speculative instructions are retained even when
    unused — compare elimination (§3.2.4) makes control flow depend on
    their speculation outcome. *)

val is_pure : Bs_ir.Ir.instr -> bool

val run_func : Bs_ir.Ir.func -> int
(** Returns the number of instructions removed. *)

val run : Bs_ir.Ir.modul -> int
