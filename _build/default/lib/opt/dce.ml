open Bs_ir

(* Dead-code elimination: iteratively removes pure instructions whose
   results are unused.  Speculative instructions are retained even when
   unused — compare elimination (§3.2.4) makes control flow depend on their
   speculation outcome, so removing them would change behaviour. *)

let is_pure (i : Ir.instr) =
  match i.op with
  | Ir.Bin _ | Ir.Cmp _ | Ir.Cast _ | Ir.Select _ | Ir.Phi _ | Ir.Gaddr _
  | Ir.Param _ -> true
  | Ir.Load l -> not l.l_volatile
  | Ir.Salloc _ ->
      (* address identity matters only through uses *)
      true
  | Ir.Store _ | Ir.Call _ | Ir.Br _ | Ir.Cbr _ | Ir.Ret _ | Ir.Unreachable ->
      false

(** [run_func f] removes dead instructions; returns the number removed. *)
let run_func (f : Ir.func) =
  let removed = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let use_tbl = Ir.uses f in
    List.iter
      (fun (b : Ir.block) ->
        let keep, drop =
          List.partition
            (fun (i : Ir.instr) ->
              not
                (Ir.has_result i && is_pure i && (not i.speculative)
                && not (Hashtbl.mem use_tbl i.iid)))
            b.instrs
        in
        if drop <> [] then begin
          b.instrs <- keep;
          removed := !removed + List.length drop;
          progress := true
        end)
      f.blocks
  done;
  !removed

let run (m : Ir.modul) = List.fold_left (fun n f -> n + run_func f) 0 m.funcs
