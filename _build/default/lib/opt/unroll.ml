open Bs_ir

(* Loop unrolling with retained exit tests.

   A loop is replicated [factor] times; each replica keeps its own exit
   branch, the back edge of replica j enters replica j+1's header, and the
   last replica closes the cycle back to the original header.  This is
   semantics-preserving for any trip count (no prologue/epilogue needed)
   while amortising header phis and enabling downstream folding — the shape
   the expander (§3.2.1) relies on.

   Restrictions (checked, not assumed): single latch, a single exit edge to
   a block whose only predecessor is the exiting block, innermost loop. *)

module IntSet = Loops.IntSet

type candidate = {
  loop : Loops.loop;
  latch : int;
  exit_block : int;
  exiting : int;
}

let find_candidate (f : Ir.func) (l : Loops.loop) : candidate option =
  match l.latches with
  | [ latch ] -> (
      let exit_edges =
        IntSet.fold
          (fun bid acc ->
            List.fold_left
              (fun acc s ->
                if IntSet.mem s l.body then acc else (bid, s) :: acc)
              acc
              (Ir.succs (Ir.block f bid)))
          l.body []
      in
      match exit_edges with
      | [ (exiting, exit_block) ] ->
          let preds = Ir.preds_map f in
          (match Hashtbl.find_opt preds exit_block with
          | Some [ p ] when p = exiting ->
              Some { loop = l; latch; exit_block; exiting }
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Values defined inside the loop and used outside it. *)
let escaping_values (f : Ir.func) body =
  let defs_in =
    List.concat_map
      (fun bid ->
        List.filter_map
          (fun (i : Ir.instr) -> if Ir.has_result i then Some i.iid else None)
          (Ir.block f bid).instrs)
      (IntSet.elements body)
  in
  let def_set = IntSet.of_list defs_in in
  let escapes = ref IntSet.empty in
  List.iter
    (fun (b : Ir.block) ->
      if not (IntSet.mem b.bid body) then
        List.iter
          (fun (i : Ir.instr) ->
            List.iter
              (fun o ->
                match o with
                | Ir.Var v when IntSet.mem v def_set ->
                    escapes := IntSet.add v !escapes
                | _ -> ())
              (Ir.operands i))
          b.instrs)
    f.blocks;
  !escapes

(** [unroll_loop f cand ~factor] unrolls; returns [true] on success. *)
let unroll_loop (f : Ir.func) (cand : candidate) ~factor =
  if factor < 2 then false
  else begin
    let { loop; latch; exit_block; exiting } = cand in
    let header = loop.header in
    let body_blocks =
      List.filter (fun (b : Ir.block) -> IntSet.mem b.bid loop.body) f.blocks
    in
    (* LCSSA-style: route escaping values through phis in the exit block.
       The exit block's only predecessor is [exiting], so a fresh phi there
       is well-formed; replicas will add their own incomings. *)
    let escapes = escaping_values f loop.body in
    let exit_b = Ir.block f exit_block in
    let lcssa =
      IntSet.fold
        (fun v acc ->
          let vi = Ir.instr f v in
          let phi =
            Ir.mk_instr f ~name:(vi.iname ^ ".lcssa") ~width:vi.width
              (Ir.Phi [ (exiting, Ir.Var v) ])
          in
          (v, phi) :: acc)
        escapes []
    in
    (* Replace outside uses with the lcssa phi (not inside the loop, not the
       phi itself). *)
    List.iter
      (fun (v, (phi : Ir.instr)) ->
        List.iter
          (fun (b : Ir.block) ->
            if not (IntSet.mem b.bid loop.body) then
              List.iter
                (fun (i : Ir.instr) ->
                  if i.iid <> phi.Ir.iid then
                    Ir.map_operands
                      (fun o ->
                        match o with
                        | Ir.Var x when x = v -> Ir.Var phi.Ir.iid
                        | o -> o)
                      i)
                b.instrs)
          f.blocks)
      lcssa;
    List.iter
      (fun ((_ : int), phi) -> exit_b.instrs <- phi :: exit_b.instrs)
      lcssa;
    (* Header phi bookkeeping: remember (phi, latch value). *)
    let header_b = Ir.block f header in
    let header_phis =
      List.filter_map
        (fun (i : Ir.instr) ->
          match i.op with
          | Ir.Phi incoming -> (
              match List.assoc_opt latch incoming with
              | Some latch_v -> Some (i, latch_v)
              | None -> None)
          | _ -> None)
        header_b.instrs
    in
    (* Clone factor-1 replicas. *)
    let replicas =
      List.init (factor - 1) (fun j ->
          let cm, blocks =
            Ir.clone_blocks f body_blocks ~suffix:(Printf.sprintf ".u%d" (j + 1))
          in
          (cm, blocks))
    in
    (* Exit-block phis: add incoming from each replica's exiting block. *)
    List.iter
      (fun ((cm : Ir.clone_maps), _) ->
        let rep_exiting = Hashtbl.find cm.cm_block exiting in
        List.iter
          (fun (i : Ir.instr) ->
            match i.op with
            | Ir.Phi incoming -> (
                match List.assoc_opt exiting incoming with
                | Some v ->
                    let v' =
                      match v with
                      | Ir.Var x -> (
                          match Hashtbl.find_opt cm.cm_instr x with
                          | Some x' -> Ir.Var x'
                          | None -> v)
                      | Ir.Const _ -> v
                    in
                    i.op <- Ir.Phi ((rep_exiting, v') :: incoming)
                | None -> ())
            | _ -> ())
          exit_b.instrs)
      replicas;
    (* Wire back edges through the replica chain. *)
    let retarget_latch latch_bid ~from_header ~to_header =
      let lb = Ir.block f latch_bid in
      Ir.map_block_targets
        (fun t -> if t = from_header then to_header else t)
        (Ir.terminator lb)
    in
    let replica_header j =
      let cm, _ = List.nth replicas j in
      Hashtbl.find cm.Ir.cm_block header
    in
    let replica_latch j =
      let cm, _ = List.nth replicas j in
      Hashtbl.find cm.Ir.cm_block latch
    in
    let map_v (cm : Ir.clone_maps) v =
      match v with
      | Ir.Var x -> (
          match Hashtbl.find_opt cm.cm_instr x with
          | Some x' -> Ir.Var x'
          | None -> v)
      | Ir.Const _ -> v
    in
    (* Original latch now enters replica 0's header. *)
    retarget_latch latch ~from_header:header ~to_header:(replica_header 0);
    for j = 0 to factor - 3 do
      retarget_latch (replica_latch j) ~from_header:(replica_header j)
        ~to_header:(replica_header (j + 1))
    done;
    retarget_latch (replica_latch (factor - 2))
      ~from_header:(replica_header (factor - 2))
      ~to_header:header;
    (* Header phis of each replica: the incoming that pointed at the
       replica's own latch must instead come from the previous stage. *)
    List.iteri
      (fun j ((cm : Ir.clone_maps), _) ->
        let prev_latch = if j = 0 then latch else replica_latch (j - 1) in
        let prev_cm_opt =
          if j = 0 then None else Some (fst (List.nth replicas (j - 1)))
        in
        List.iter
          (fun ((orig_phi : Ir.instr), latch_v) ->
            let phi = Ir.instr f (Hashtbl.find cm.cm_instr orig_phi.iid) in
            let prev_value =
              match prev_cm_opt with
              | None -> latch_v                 (* from the original body *)
              | Some pcm -> map_v pcm latch_v   (* from the previous replica *)
            in
            match phi.op with
            | Ir.Phi incoming ->
                let rep_latch = Hashtbl.find cm.cm_block latch in
                let incoming =
                  List.map
                    (fun (p, v) ->
                      if p = rep_latch then (prev_latch, prev_value) else (p, v))
                    incoming
                in
                (* drop stale non-latch incomings (preheader edges cloned
                   verbatim) *)
                let incoming =
                  List.filter (fun (p, _) -> p = prev_latch) incoming
                in
                phi.op <- Ir.Phi incoming
            | _ -> assert false)
          header_phis)
      replicas;
    (* Original header phis: latch incoming now arrives from the last
       replica's latch carrying the last replica's value. *)
    let last_cm = fst (List.nth replicas (factor - 2)) in
    let last_latch = replica_latch (factor - 2) in
    List.iter
      (fun ((phi : Ir.instr), latch_v) ->
        match phi.op with
        | Ir.Phi incoming ->
            phi.op <-
              Ir.Phi
                (List.map
                   (fun (p, v) ->
                     if p = latch then (last_latch, map_v last_cm latch_v)
                     else (p, v))
                   incoming)
        | _ -> assert false)
      header_phis;
    true
  end

(** Unroll every eligible innermost loop of [f] by [factor], skipping loops
    whose unrolled size would exceed [max_loop_size].  Returns the number
    of loops unrolled. *)
let run_func (f : Ir.func) ~factor ~max_loop_size =
  if factor < 2 then 0
  else begin
    let count = ref 0 in
    (* After unrolling, the replica chain is re-detected as one large loop
       with the same header; tracking processed headers prevents
       re-unrolling it exponentially. *)
    let done_headers = ref IntSet.empty in
    let progress = ref true in
    while !progress do
      progress := false;
      let inner = Loops.innermost (Loops.compute f) in
      let todo =
        List.find_map
          (fun (l : Loops.loop) ->
            if IntSet.mem l.header !done_headers then None
            else
              match find_candidate f l with
              | Some c when Loops.size f l * factor <= max_loop_size -> Some c
              | _ ->
                  done_headers := IntSet.add l.header !done_headers;
                  None)
          inner
      in
      match todo with
      | Some c ->
          done_headers := IntSet.add c.loop.header !done_headers;
          if unroll_loop f c ~factor then incr count;
          progress := true
      | None -> ()
    done;
    !count
  end
