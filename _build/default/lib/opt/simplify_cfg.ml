open Bs_ir

(* CFG cleanup: constant-branch folding, unreachable-block removal, and
   straight-line block merging.  Region blocks and handlers are left
   untouched by the merge step so speculative-region structure survives. *)

let in_region f bid = Ir.region_of_block f bid <> None || Ir.is_handler f bid

(* Remove [pred] from the incoming lists of phis in [b]. *)
let drop_phi_incoming (b : Ir.block) pred =
  List.iter
    (fun (i : Ir.instr) ->
      match i.op with
      | Ir.Phi incoming ->
          i.op <- Ir.Phi (List.filter (fun (p, _) -> p <> pred) incoming)
      | _ -> ())
    b.instrs

let fold_constant_branches (f : Ir.func) =
  let changed = ref false in
  List.iter
    (fun (b : Ir.block) ->
      match (Ir.terminator b).op with
      | Ir.Cbr (Ir.Const c, t, e) ->
          let taken, dropped = if c.cval <> 0L then (t, e) else (e, t) in
          (Ir.terminator b).op <- Ir.Br taken;
          if dropped <> taken then drop_phi_incoming (Ir.block f dropped) b.bid;
          changed := true
      | Ir.Cbr (_, t, e) when t = e ->
          (Ir.terminator b).op <- Ir.Br t;
          changed := true
      | _ -> ())
    f.blocks;
  !changed

let remove_unreachable (f : Ir.func) =
  let reachable = Hashtbl.create 16 in
  let rec dfs bid =
    if not (Hashtbl.mem reachable bid) then begin
      Hashtbl.replace reachable bid ();
      List.iter dfs (Ir.succs (Ir.block f bid));
      (* handlers are reachable through misspeculation *)
      match Ir.region_of_block f bid with
      | Some r -> dfs r.rhandler
      | None -> ()
    end
  in
  (match f.blocks with [] -> () | b :: _ -> dfs b.bid);
  let dead =
    List.filter (fun (b : Ir.block) -> not (Hashtbl.mem reachable b.bid)) f.blocks
  in
  if dead = [] then false
  else begin
    let dead_ids = List.map (fun (b : Ir.block) -> b.Ir.bid) dead in
    f.blocks <-
      List.filter (fun (b : Ir.block) -> Hashtbl.mem reachable b.bid) f.blocks;
    List.iter (fun bid -> Hashtbl.remove f.btbl bid) dead_ids;
    (* prune phi incomings referencing dead blocks *)
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            match i.op with
            | Ir.Phi incoming ->
                i.op <-
                  Ir.Phi (List.filter (fun (p, _) -> not (List.mem p dead_ids)) incoming)
            | _ -> ())
          b.instrs)
      f.blocks;
    (* prune regions that lost blocks *)
    f.regions <-
      List.filter_map
        (fun (r : Ir.region) ->
          let blocks = List.filter (fun bid -> not (List.mem bid dead_ids)) r.rblocks in
          if blocks = [] || List.mem r.rhandler dead_ids then None
          else Some { r with rblocks = blocks })
        f.regions;
    true
  end

(* Merge [b] with its unique successor [s] when [s] has a unique
   predecessor. *)
let merge_blocks (f : Ir.func) =
  let changed = ref false in
  let preds = Ir.preds_map f in
  let merged = Hashtbl.create 4 in
  List.iter
    (fun (b : Ir.block) ->
      if not (Hashtbl.mem merged b.bid) then
        match Ir.succs b with
        | [ s ]
          when (not (in_region f b.bid)) && (not (in_region f s))
               && s <> b.bid
               && (match Hashtbl.find_opt preds s with
                  | Some [ p ] -> p = b.bid
                  | _ -> false) ->
            let sb = Ir.block f s in
            if not (Hashtbl.mem merged s) then begin
              (* single predecessor: phis in s are trivial *)
              List.iter
                (fun (i : Ir.instr) ->
                  match i.op with
                  | Ir.Phi [ (_, v) ] -> Ir.replace_all_uses f ~old_id:i.iid ~by:v
                  | Ir.Phi _ -> ()
                  | _ -> ())
                sb.instrs;
              let body =
                List.filter
                  (fun (i : Ir.instr) ->
                    match i.op with Ir.Phi [ _ ] -> false | _ -> true)
                  sb.instrs
              in
              b.instrs <- Ir.body_instrs b @ body;
              (* successors of s now flow from b *)
              List.iter
                (fun succ ->
                  List.iter
                    (fun (i : Ir.instr) ->
                      match i.op with
                      | Ir.Phi incoming ->
                          i.op <-
                            Ir.Phi
                              (List.map
                                 (fun (p, v) -> ((if p = s then b.bid else p), v))
                                 incoming)
                      | _ -> ())
                    (Ir.block f succ).instrs)
                (Ir.succs sb);
              f.blocks <- List.filter (fun (x : Ir.block) -> x.bid <> s) f.blocks;
              Hashtbl.remove f.btbl s;
              Hashtbl.replace merged s ();
              Hashtbl.replace merged b.bid ();
              changed := true
            end
        | _ -> ())
    f.blocks;
  !changed

let run_func (f : Ir.func) =
  let any = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    if fold_constant_branches f then progress := true;
    if remove_unreachable f then progress := true;
    if merge_blocks f then progress := true;
    if !progress then any := true
  done;
  !any

let run (m : Ir.modul) =
  List.fold_left (fun acc f -> run_func f || acc) false m.funcs
