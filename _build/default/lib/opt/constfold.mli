(** Constant folding and trivial algebraic simplification.  Evaluation
    reuses the interpreter's own arithmetic, so folding can never disagree
    with execution. *)

val run_func : Bs_ir.Ir.func -> int
(** Returns the number of instructions folded (DCE is run between
    rounds). *)

val run : Bs_ir.Ir.modul -> int
