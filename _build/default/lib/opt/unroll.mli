(** Loop unrolling with retained exit tests: the loop is replicated
    [factor] times, each replica keeps its own exit branch, and the back
    edge threads the replica chain.  Semantics-preserving for any trip
    count (no prologue/epilogue); escaping values are routed through
    LCSSA-style phis in the single exit block.

    Eligibility (checked): single latch, a single exit edge whose target
    has no other predecessors, innermost loop. *)

val run_func : Bs_ir.Ir.func -> factor:int -> max_loop_size:int -> int
(** Unroll every eligible innermost loop once; returns how many were
    unrolled.  [max_loop_size] bounds the unrolled static size. *)
