lib/interp/interp.mli: Bs_ir Memimage Profile
