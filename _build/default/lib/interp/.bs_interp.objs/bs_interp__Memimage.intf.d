lib/interp/memimage.mli: Bs_ir Bytes Hashtbl
