lib/interp/profile.ml: Array Bs_ir Hashtbl Width
