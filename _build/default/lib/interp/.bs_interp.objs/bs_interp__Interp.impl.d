lib/interp/interp.ml: Bs_ir Hashtbl Int64 Ir List Memimage Option Printf Profile Width
