lib/interp/profile.mli: Hashtbl
