lib/interp/memimage.ml: Array Bs_ir Bytes Char Hashtbl Int64 Ir List Printf Width
