lib/backend/asm.ml: Array Bs_isa Buffer Hashtbl Int64 Isa List Mir Option Printf Regalloc
