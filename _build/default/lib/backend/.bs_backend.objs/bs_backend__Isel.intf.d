lib/backend/isel.mli: Bs_ir Mir
