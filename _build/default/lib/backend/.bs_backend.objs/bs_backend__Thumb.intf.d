lib/backend/thumb.mli: Asm Bs_isa
