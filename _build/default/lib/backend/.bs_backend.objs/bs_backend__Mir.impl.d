lib/backend/mir.ml: Bs_isa Buffer Hashtbl Int64 Isa List Printf String
