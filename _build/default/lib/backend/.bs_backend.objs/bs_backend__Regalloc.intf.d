lib/backend/regalloc.mli: Bs_isa Hashtbl Mir
