lib/backend/regalloc.ml: Bs_isa Hashtbl Int Isa List Mir Set
