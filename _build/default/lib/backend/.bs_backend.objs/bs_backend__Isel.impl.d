lib/backend/isel.ml: Bs_ir Bs_isa Hashtbl Int64 Ir Isa List Mir Option Printf String Width
