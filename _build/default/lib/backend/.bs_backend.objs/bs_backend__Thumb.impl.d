lib/backend/thumb.ml: Array Asm Bs_isa Hashtbl Isa
