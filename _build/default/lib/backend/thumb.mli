(** The compact-ISA comparison point (RQ9).

    A Thumb build is modelled by register-allocating with R0-R7 only and
    padding every instruction with the NOPs its Thumb expansion would add:
    the padded program is semantically identical while its dynamic
    instruction count follows the Thumb cost model (two-address ALU ops,
    short immediates, no conditional set), which is what Figure 18
    reports. *)

val thumb_regs : Bs_isa.Isa.reg list
(** R0-R7. *)

val cost : Bs_isa.Isa.insn -> int
(** Dynamic Thumb instruction count of one BSARM instruction. *)

val expand : Asm.program -> Asm.program
(** Pad and re-link (branch targets, entries and the halt address are
    remapped). *)
