(** Register allocation (§3.3.3).

    Phi elimination (critical-edge splitting + parallel copies), then a
    linear scan over live ranges *with holes*.  Liveness uses equation
    (2)'s SMIR predecessor relation — every region block feeds its handler
    — so values the handler and the re-executed CFG_orig block will read
    stay allocated across the whole region (the guarantee the paper's
    BB_clone construction provides).  Every 8-bit slice of every register
    is an allocatable location: a 32-bit interval claims four slices, an
    8-bit interval one — the register packing of §2.5.  Copy hints
    coalesce the SSA-repair phi webs.

    Calling convention: stack arguments, result in R0, callee saves every
    register it uses except R0; only intervals live across a call must
    avoid R0. *)

type loc =
  | Lreg of Bs_isa.Isa.reg
  | Lslice of Bs_isa.Isa.slice
  | Lstack of int          (** spill slot index *)

val allocatable : Bs_isa.Isa.reg list
(** R0-R10; R11/R12 are the emitter's scratch registers. *)

val scratch0 : Bs_isa.Isa.reg
val scratch1 : Bs_isa.Isa.reg

val eliminate_phis : Mir.mfunc -> unit
(** Destroy SSA: split critical edges, lower phis to width-aware parallel
    copies (cycles broken through a temporary). *)

type result = {
  assignment : (Mir.vreg, loc) Hashtbl.t;
  spill_slots : int;            (** number of 4-byte spill slots *)
  used_regs : Bs_isa.Isa.reg list;
}

val run : ?regs:Bs_isa.Isa.reg list -> ?orig_first:bool -> Mir.mfunc -> result
(** Allocate every virtual register.  [regs] restricts the allocatable set
    (Thumb passes R0-R7); [orig_first] inverts the RQ5 handler
    branch-weight heuristic, giving CFG_orig intervals first pick. *)
