(** Instruction selection (§3.3.2): SIR → SMIR.

    Canonical value representation: in BITSPEC mode width-8 values with a
    slice-friendly consumer live in 8-bit virtual registers (slices);
    everything else lives in 32-bit virtual registers holding its value
    zero-extended.  Speculative instructions map to the Table 1 slice
    operations; two fusions fire during a prepass:
    - a single-use 32-bit load feeding a speculative truncate becomes the
      speculative load BLDRS;
    - a byte-memory address of the form [base + zext(idx8)] becomes the
      slice-indexed Mem[Rn + Bm] form, deleting the extension and the
      add. *)

exception Unsupported of string
(** 64-bit values and other constructs the 32-bit machine cannot hold. *)

val lower_func : slices:bool -> Bs_ir.Ir.func -> Mir.mfunc
(** [slices] enables the BITSPEC extension; the BASELINE and Thumb builds
    pass [false]. *)
