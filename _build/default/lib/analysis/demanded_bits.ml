open Bs_ir

(* Demanded-bits static analysis, reimplementing the LLVM analysis the
   paper evaluates in Figure 1c.

   A backward dataflow computes, for every SSA variable, the mask of result
   bits that can influence program behaviour.  Roots (stores, branches,
   compares, calls, returns, addresses) demand bits unconditionally;
   arithmetic propagates demand to operands according to how information
   flows through each operation (e.g. addition carries only propagate
   upward, so operand demand never exceeds the highest demanded result
   bit). *)

type t = (int, int64) Hashtbl.t  (* iid -> demanded mask *)

let high_bit_mask_up_to mask =
  (* All bits up to and including the highest set bit of [mask]. *)
  if mask = 0L then 0L
  else
    let n = Width.required_bits mask in
    Width.mask n

let compute (f : Ir.func) : t =
  let demand : t = Hashtbl.create 64 in
  let get iid = match Hashtbl.find_opt demand iid with Some d -> d | None -> 0L in
  let changed = ref true in
  let add_demand (o : Ir.operand) bits =
    match o with
    | Ir.Const _ -> ()
    | Ir.Var v ->
        let cur = get v in
        let nw = Int64.logor cur bits in
        if nw <> cur then begin
          Hashtbl.replace demand v nw;
          changed := true
        end
  in
  let full o = add_demand o (Width.mask (Ir.operand_width f o)) in
  (* Seed the roots. *)
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.op with
          | Ir.Store s ->
              full s.s_addr;
              add_demand s.s_value (Width.mask s.s_width)
          | Ir.Load l -> full l.l_addr
          | Ir.Call c -> List.iter full c.args
          | Ir.Ret (Some v) -> full v
          | Ir.Cbr (c, _, _) -> full c
          | Ir.Cmp (_, a, b) ->
              (* A comparison inspects every bit of both operands. *)
              full a;
              full b
          | _ -> ())
        b.instrs)
    f.blocks;
  (* Backward propagation to a fixpoint. *)
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            if Ir.has_result i then begin
              let d = Int64.logand (get i.iid) (Width.mask i.width) in
              if d <> 0L then
                match i.op with
                | Ir.Bin ((Ir.Add | Ir.Sub | Ir.Mul), a, c) ->
                    (* carries/partial products only flow upward *)
                    let m = high_bit_mask_up_to d in
                    add_demand a m;
                    add_demand c m
                | Ir.Bin ((Ir.And | Ir.Or | Ir.Xor), a, c) ->
                    add_demand a d;
                    add_demand c d
                | Ir.Bin (Ir.Shl, a, Ir.Const k) ->
                    let sh = Int64.to_int k.cval land (i.width - 1) in
                    add_demand a (Int64.shift_right_logical d sh)
                | Ir.Bin (Ir.Lshr, a, Ir.Const k) ->
                    let sh = Int64.to_int k.cval land (i.width - 1) in
                    add_demand a
                      (Int64.logand (Int64.shift_left d sh) (Width.mask i.width))
                | Ir.Bin (Ir.Ashr, a, Ir.Const k) ->
                    let sh = Int64.to_int k.cval land (i.width - 1) in
                    let base =
                      Int64.logand (Int64.shift_left d sh) (Width.mask i.width)
                    in
                    (* the sign bit feeds every shifted-in position *)
                    let sign = Int64.shift_left 1L (i.width - 1) in
                    add_demand a (Int64.logor base sign)
                | Ir.Bin ((Ir.Shl | Ir.Lshr | Ir.Ashr), a, c) ->
                    (* variable shifts: conservative *)
                    full a;
                    add_demand c (Width.mask (Ir.operand_width f c))
                | Ir.Bin ((Ir.Udiv | Ir.Sdiv | Ir.Urem | Ir.Srem), a, c) ->
                    full a;
                    full c
                | Ir.Cast (Ir.TruncCast, a) -> add_demand a d
                | Ir.Cast (Ir.Zext, a) ->
                    add_demand a (Int64.logand d (Width.mask (Ir.operand_width f a)))
                | Ir.Cast (Ir.Sext, a) ->
                    let sw = Ir.operand_width f a in
                    let low = Int64.logand d (Width.mask sw) in
                    let above = Int64.logand d (Int64.lognot (Width.mask sw)) in
                    let low =
                      if above <> 0L then
                        Int64.logor low (Int64.shift_left 1L (sw - 1))
                      else low
                    in
                    add_demand a low
                | Ir.Select (c, a, e) ->
                    full c;
                    add_demand a d;
                    add_demand e d
                | Ir.Phi incoming ->
                    List.iter (fun (_, v) -> add_demand v d) incoming
                | Ir.Cmp _ | Ir.Load _ | Ir.Gaddr _ | Ir.Salloc _
                | Ir.Call _ | Ir.Param _ -> ()
                | Ir.Store _ | Ir.Br _ | Ir.Cbr _ | Ir.Ret _ | Ir.Unreachable ->
                    ()
            end)
          b.instrs)
      (List.rev f.blocks)
  done;
  demand

(** Bitwidth selection from the analysis: BW(v) = width class of the
    highest demanded bit, or the declared width when nothing narrows
    (matching how the paper reports "demanded bits analysis ... simply
    outputs the original bitwidth" on failure). *)
let selection (t : t) (f : Ir.func) ~iid =
  let i = Ir.instr f iid in
  match Hashtbl.find_opt t iid with
  | Some d when d <> 0L ->
      min i.width (Width.class_of_bits (Width.required_bits d))
  | _ -> min i.width (Width.class_of_bits i.width)

(** Selection map over a whole module, keyed like the profiler. *)
let module_selection (m : Ir.modul) =
  let per_func = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) -> Hashtbl.replace per_func f.fname (compute f, f))
    m.funcs;
  fun ~func ~iid ->
    match Hashtbl.find_opt per_func func with
    | Some (t, f) -> selection t f ~iid
    | None -> 64
