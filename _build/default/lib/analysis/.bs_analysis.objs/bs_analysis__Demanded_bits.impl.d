lib/analysis/demanded_bits.ml: Bs_ir Hashtbl Int64 Ir List Width
