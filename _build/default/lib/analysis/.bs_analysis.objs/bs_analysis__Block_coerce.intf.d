lib/analysis/block_coerce.mli: Bs_interp Bs_ir
