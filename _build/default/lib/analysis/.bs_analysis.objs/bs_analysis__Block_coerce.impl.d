lib/analysis/block_coerce.ml: Bs_interp Bs_ir Hashtbl Ir List Profile Width
