lib/analysis/demanded_bits.mli: Bs_ir Hashtbl
