(** Demanded-bits static analysis — the reimplementation of LLVM's
    analysis the paper evaluates in Figure 1c.

    A backward dataflow computes, for every SSA variable, the mask of
    result bits that can influence program behaviour; stores, branches,
    compares, calls, returns and addresses seed full demand, and
    arithmetic propagates it according to how information flows through
    each operation. *)

type t = (int, int64) Hashtbl.t
(** Defining instruction id -> demanded-bit mask. *)

val compute : Bs_ir.Ir.func -> t

val selection : t -> Bs_ir.Ir.func -> iid:int -> int
(** BW(v): the width class of the highest demanded bit, or the declared
    width when nothing narrows (the paper notes the analysis "simply
    outputs the original bitwidth" on failure). *)

val module_selection : Bs_ir.Ir.modul -> func:string -> iid:int -> int
(** Selection map over a whole module, keyed like the profiler. *)
