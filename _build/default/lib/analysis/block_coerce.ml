open Bs_ir
open Bs_interp

(* Basic-block-granularity bitwidth coercion, modelling Pokam et al.'s
   speculative datapath-width management (paper §2.3, Figure 1d):
   every variable in a basic block is coerced to the worst-case (maximum)
   profiled bitwidth observed anywhere in that block,
   BW(v) = max_{w in BasicBlock(v)} BW(w). *)

(** [selection m profile] returns a per-variable width-selection function
    usable with {!Profile.selection_distribution}. *)
let selection (m : Ir.modul) (profile : Profile.t) =
  let block_max : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          let m =
            List.fold_left
              (fun acc (i : Ir.instr) ->
                if Ir.has_result i then
                  match Profile.stats profile ~func:f.fname ~iid:i.iid with
                  | Some s -> max acc s.Profile.s_max
                  | None -> acc
                else acc)
              1 b.instrs
          in
          List.iter
            (fun (i : Ir.instr) ->
              if Ir.has_result i then
                Hashtbl.replace block_max (f.fname, i.iid) m)
            b.instrs)
        f.blocks)
    m.funcs;
  fun ~func ~iid ->
    match Hashtbl.find_opt block_max (func, iid) with
    | Some bits -> Width.class_of_bits bits
    | None -> 32
