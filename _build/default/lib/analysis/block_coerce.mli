(** Basic-block-granularity bitwidth coercion, modelling Pokam et al.'s
    speculative datapath-width management (§2.3, Figure 1d): every
    variable in a block is coerced to the worst-case profiled bitwidth
    observed anywhere in that block. *)

val selection :
  Bs_ir.Ir.modul ->
  Bs_interp.Profile.t ->
  func:string ->
  iid:int ->
  int
(** Per-variable width selection usable with
    {!Bs_interp.Profile.selection_distribution}. *)
