(* Natural-loop detection from back edges in the dominator tree, providing
   the loop structure the expander's unroller needs (header, latch, body,
   exits, nesting depth). *)

module IntSet = Set.Make (Int)

type loop = {
  header : int;
  latches : int list;          (* blocks with a back edge to the header *)
  body : IntSet.t;             (* all blocks of the loop, header included *)
  depth : int;                 (* 1 = outermost *)
}

type t = loop list

let compute (f : Ir.func) =
  let dom = Dom.compute ~preds:(Ir.preds_map f) f in
  let preds = Ir.preds_map f in
  (* Back edge: (n -> h) where h dominates n. *)
  let back_edges =
    List.concat_map
      (fun (b : Ir.block) ->
        List.filter_map
          (fun s -> if Dom.dominates dom s b.bid then Some (b.bid, s) else None)
          (Ir.succs b))
      f.blocks
  in
  (* Natural loop of a back edge: h plus all blocks that reach n without
     passing through h. *)
  let loop_of (n, h) =
    let body = ref (IntSet.add h (IntSet.singleton n)) in
    let rec visit m =
      if m <> h then
        let ps = match Hashtbl.find_opt preds m with Some l -> l | None -> [] in
        List.iter
          (fun p ->
            if not (IntSet.mem p !body) then begin
              body := IntSet.add p !body;
              visit p
            end)
          ps
    in
    visit n;
    (h, n, !body)
  in
  let raw = List.map loop_of back_edges in
  (* Merge loops sharing a header (multiple latches). *)
  let tbl : (int, int list * IntSet.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (h, n, body) ->
      match Hashtbl.find_opt tbl h with
      | Some (ns, acc) -> Hashtbl.replace tbl h (n :: ns, IntSet.union acc body)
      | None -> Hashtbl.replace tbl h ([ n ], body))
    raw;
  let loops =
    Hashtbl.fold
      (fun h (latches, body) acc ->
        { header = h; latches; body; depth = 0 } :: acc)
      tbl []
  in
  (* Depth: number of loops containing this loop's header. *)
  let with_depth =
    List.map
      (fun l ->
        let d =
          List.length
            (List.filter (fun l' -> IntSet.mem l.header l'.body) loops)
        in
        { l with depth = d })
      loops
  in
  List.sort (fun a b -> compare a.header b.header) with_depth

let innermost (loops : t) =
  List.filter
    (fun l ->
      not
        (List.exists
           (fun l' ->
             l'.header <> l.header && IntSet.subset l'.body l.body)
           loops))
    loops

(** Blocks outside the loop that a loop block branches to. *)
let exits (f : Ir.func) (l : loop) =
  IntSet.fold
    (fun bid acc ->
      List.fold_left
        (fun acc s -> if IntSet.mem s l.body then acc else IntSet.add s acc)
        acc
        (Ir.succs (Ir.block f bid)))
    l.body IntSet.empty

let size (f : Ir.func) (l : loop) =
  IntSet.fold (fun bid n -> n + List.length (Ir.block f bid).instrs) l.body 0
