(* Structural and semantic validation of SIR functions.

   Beyond the classic SSA checks (dominance of definitions over uses,
   operand-width agreement, well-placed terminators and phis), the verifier
   enforces the speculative-region well-formedness rules of §3.1.1:

   - a region is a contiguous block sequence with a single handler;
   - a block is the handler of at most one region;
   - a handler is not contained in any region;
   - a handler is never the target of an explicit branch;
   - per Theorem 3.1, every variable defined inside a region is dead at the
     entry of its handler. *)

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let check_widths f (i : Ir.instr) =
  let w o = Ir.operand_width f o in
  match i.op with
  | Bin (_, a, b) ->
      if w a <> i.width || w b <> i.width then
        fail "%s: bin operand widths %d/%d mismatch result %d"
          (Printer.instr_str f i) (w a) (w b) i.width
  | Cmp (_, a, b) ->
      if w a <> w b then
        fail "%s: cmp operand widths %d/%d differ" (Printer.instr_str f i)
          (w a) (w b);
      if i.width <> 1 then fail "%s: cmp result must be i1" (Printer.instr_str f i)
  | Cast (op, a) -> (
      match op with
      | Zext | Sext ->
          if w a > i.width then
            fail "%s: extension narrows %d -> %d" (Printer.instr_str f i) (w a)
              i.width
      | TruncCast ->
          if w a < i.width then
            fail "%s: trunc widens %d -> %d" (Printer.instr_str f i) (w a)
              i.width)
  | Select (c, a, b) ->
      if w c <> 1 then fail "%s: select condition must be i1" (Printer.instr_str f i);
      if w a <> i.width || w b <> i.width then
        fail "%s: select arm widths mismatch" (Printer.instr_str f i)
  | Phi incoming ->
      List.iter
        (fun (_, v) ->
          if w v <> i.width then
            fail "%s: phi incoming width %d mismatches %d"
              (Printer.instr_str f i) (w v) i.width)
        incoming
  | Load l -> if w l.l_addr <> 32 then fail "%s: load address must be i32" (Printer.instr_str f i)
  | Store s ->
      if w s.s_addr <> 32 then fail "%s: store address must be i32" (Printer.instr_str f i);
      if w s.s_value <> s.s_width then
        fail "%s: store value width %d mismatches %d" (Printer.instr_str f i)
          (w s.s_value) s.s_width
  | Cbr (c, _, _) ->
      if w c <> 1 then fail "%s: branch condition must be i1" (Printer.instr_str f i)
  | Ret (Some v) ->
      if w v <> f.ret_width then
        fail "%s: return width %d mismatches %d" (Printer.instr_str f i) (w v)
          f.ret_width
  | Ret None ->
      if f.ret_width <> 0 then fail "ret void in non-void function %s" f.fname
  | Param _ | Gaddr _ | Salloc _ | Call _ | Br _ | Unreachable -> ()

let check_structure (f : Ir.func) =
  if f.blocks = [] then fail "function %s has no blocks" f.fname;
  List.iter
    (fun (b : Ir.block) ->
      (match List.rev b.instrs with
      | [] -> fail "block %s is empty" b.bname
      | t :: rest ->
          if not (Ir.is_terminator t) then
            fail "block %s does not end with a terminator" b.bname;
          List.iter
            (fun i ->
              if Ir.is_terminator i then
                fail "block %s has a terminator mid-block" b.bname)
            rest);
      (* Phis must be a prefix of the block. *)
      let seen_nonphi = ref false in
      List.iter
        (fun i ->
          if Ir.is_phi i then begin
            if !seen_nonphi then fail "block %s: phi after non-phi" b.bname
          end
          else seen_nonphi := true)
        b.instrs)
    f.blocks

let check_ssa (f : Ir.func) =
  (* Each id defined at most once; uses are dominated by definitions. *)
  let def_block = Hashtbl.create 64 in
  List.iter
    (fun (i : Ir.instr) -> Hashtbl.replace def_block i.Ir.iid (-1))
    f.param_instrs;
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          if Ir.has_result i then begin
            if Hashtbl.mem def_block i.iid then
              fail "%%%d defined twice" i.iid;
            Hashtbl.replace def_block i.iid b.bid
          end)
        b.instrs)
    f.blocks;
  let dom = Dom.compute f in
  let preds = Ir.preds_sir f in
  (* Unreachable blocks are exempt from dominance checks, as in LLVM:
     passes may leave dead code behind and clean it up later. *)
  let reachable = Hashtbl.create 16 in
  List.iter (fun bid -> Hashtbl.replace reachable bid ()) (Ir.reverse_postorder f);
  let check_use (b : Ir.block) pos_before (o : Ir.operand) user =
    match o with
    | Const _ -> ()
    | Var v -> (
        match Hashtbl.find_opt def_block v with
        | None -> fail "use of undefined %%%d in %s" v (Printer.instr_str f user)
        | Some -1 -> () (* parameter: dominates everything *)
        | Some db ->
            if db = b.bid then begin
              (* must appear earlier in the block *)
              let ok =
                List.exists (fun (j : Ir.instr) -> j.iid = v) pos_before
              in
              if not ok then
                fail "%%%d used before definition in block %s" v b.bname
            end
            else if not (Dom.dominates dom db b.bid) then
              fail "definition of %%%d (block %d) does not dominate use in %s"
                v db b.bname)
  in
  List.iter
    (fun (b : Ir.block) ->
      if not (Hashtbl.mem reachable b.bid) then ()
      else
      let before = ref [] in
      List.iter
        (fun (i : Ir.instr) ->
          (match i.op with
          | Phi incoming ->
              (* Phi operands are checked against the corresponding edge. *)
              let ps =
                match Hashtbl.find_opt preds b.bid with Some l -> l | None -> []
              in
              List.iter
                (fun (p, v) ->
                  if not (List.mem p ps) then
                    fail "phi %s has incoming from non-predecessor %d"
                      (Printer.instr_str f i) p;
                  match v with
                  | Ir.Const _ -> ()
                  | Ir.Var x -> (
                      match Hashtbl.find_opt def_block x with
                      | None -> fail "phi uses undefined %%%d" x
                      | Some -1 -> ()
                      | Some db ->
                          if not (Dom.dominates dom db p) then
                            fail
                              "phi operand %%%d does not dominate edge %d->%d"
                              x p b.bid))
                incoming;
              let missing =
                List.filter
                  (fun p -> not (List.mem_assoc p incoming))
                  (match Hashtbl.find_opt preds b.bid with
                  | Some l -> l
                  | None -> [])
              in
              if missing <> [] then
                fail "phi %s misses incoming for predecessor(s) %s"
                  (Printer.instr_str f i)
                  (String.concat "," (List.map string_of_int missing))
          | _ ->
              List.iter (fun o -> check_use b !before o i) (Ir.operands i));
          before := !before @ [ i ])
        b.instrs)
    f.blocks

let check_regions (f : Ir.func) =
  let handler_count = Hashtbl.create 8 in
  List.iter
    (fun (r : Ir.region) ->
      if r.rblocks = [] then fail "region %d is empty" r.rid;
      List.iter
        (fun bid ->
          if not (Hashtbl.mem f.btbl bid) then
            fail "region %d references missing block %d" r.rid bid)
        r.rblocks;
      if not (Hashtbl.mem f.btbl r.rhandler) then
        fail "region %d has missing handler %d" r.rid r.rhandler;
      if List.mem r.rhandler r.rblocks then
        fail "handler %d contained in its own region" r.rhandler;
      if Ir.region_of_block f r.rhandler <> None then
        fail "handler %d contained in a region" r.rhandler;
      let n = try Hashtbl.find handler_count r.rhandler with Not_found -> 0 in
      Hashtbl.replace handler_count r.rhandler (n + 1))
    f.regions;
  Hashtbl.iter
    (fun h n -> if n > 1 then fail "block %d handles %d regions" h n)
    handler_count;
  (* Handlers are not branch targets. *)
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun s ->
          if Ir.is_handler f s then
            fail "handler %d is a branch target of block %d" s b.bid)
        (Ir.succs b))
    f.blocks;
  (* Blocks belong to at most one region. *)
  let membership = Hashtbl.create 16 in
  List.iter
    (fun (r : Ir.region) ->
      List.iter
        (fun bid ->
          if Hashtbl.mem membership bid then
            fail "block %d belongs to two regions" bid;
          Hashtbl.replace membership bid r.rid)
        r.rblocks)
    f.regions;
  (* Theorem 3.1: region definitions are dead at handler entry. *)
  let live = Liveness.compute ~preds:(Ir.preds_sir f) f in
  List.iter
    (fun (r : Ir.region) ->
      let region_defs =
        List.concat_map
          (fun bid ->
            List.filter_map
              (fun (i : Ir.instr) ->
                if Ir.has_result i then Some i.iid else None)
              (Ir.block f bid).instrs)
          r.rblocks
      in
      let lin = Liveness.live_in live r.rhandler in
      List.iter
        (fun v ->
          if Liveness.IntSet.mem v lin then
            fail "region %d definition %%%d live at handler entry (Thm 3.1)"
              r.rid v)
        region_defs)
    f.regions

let check_func (f : Ir.func) =
  check_structure f;
  List.iter
    (fun (b : Ir.block) -> List.iter (check_widths f) b.instrs)
    f.blocks;
  check_ssa f;
  check_regions f

let check_module (m : Ir.modul) =
  (* Call targets and globals must resolve. *)
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.op with
              | Ir.Call c ->
                  if Ir.find_func m c.callee = None then
                    fail "call to undefined function @%s" c.callee
              | Ir.Gaddr g ->
                  if Ir.find_global m g = None then
                    fail "address of undefined global @%s" g
              | _ -> ())
            b.instrs)
        f.blocks;
      check_func f)
    m.funcs

(** [verify_exn m] raises {!Invalid} with a diagnostic if [m] is
    malformed. *)
let verify_exn = check_module

(** [verify m] returns [Error message] instead of raising. *)
let verify m = try Ok (check_module m) with Invalid s -> Error s
