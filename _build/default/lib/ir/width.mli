(** Bitwidth arithmetic.

    All integer values in the IR are represented as [int64] payloads
    truncated to their declared width.  This module centralises the masking,
    extension and {b RequiredBits} computations the paper's §2.1 relies on. *)

val valid : int list
(** The widths the IR admits: 1, 8, 16, 32 and 64 bits. *)

val is_valid : int -> bool
(** [is_valid w] is true iff [w] is one of {!valid}. *)

val mask : int -> int64
(** [mask w] is a bitmask with the low [w] bits set (all 64 for [w >= 64]). *)

val trunc : int -> int64 -> int64
(** [trunc w v] keeps the low [w] bits of [v], zeroing the rest. *)

val sext : int -> int64 -> int64
(** [sext w v] sign-extends the [w]-bit value stored in the low bits of [v]
    to the full 64-bit payload. *)

val zext : int -> int64 -> int64
(** [zext w v] zero-extends; identical to {!trunc}. *)

val fits : int -> int64 -> bool
(** [fits w v] is true iff the unsigned value [v] is representable in [w]
    bits, i.e. [required_bits v <= w]. *)

val required_bits : int64 -> int
(** [required_bits a] is [⌊lg a⌋ + 1] for [a > 0] and [1] for [a = 0] — the
    number of bits needed to store the unsigned value [a] (paper §2.1).
    A value with bit 63 set requires 64 bits. *)

val class_of_bits : int -> int
(** [class_of_bits b] rounds a bit requirement up to the nearest hardware
    width class: 8, 16, 32 or 64. *)

val signed_min : int -> int64
(** [signed_min w] is the smallest signed [w]-bit value, as a truncated
    payload. *)

val signed_max : int -> int64
(** [signed_max w] is the largest signed [w]-bit value. *)

val to_signed : int -> int64 -> int64
(** [to_signed w v] reinterprets the [w]-bit payload [v] as a signed number
    (an alias of {!sext}, provided for readability at call sites). *)
