(* Dominator computation via the Cooper-Harvey-Kennedy iterative algorithm.
   Handlers participate through the SIR predecessor relation so that the
   verifier can check SSA dominance inside handlers too. *)

type t = {
  idom : (int, int) Hashtbl.t;  (* block id -> immediate dominator id *)
  order : int array;            (* reverse postorder of block ids *)
  index : (int, int) Hashtbl.t; (* block id -> RPO index *)
}

let compute ?preds (f : Ir.func) =
  let preds = match preds with Some p -> p | None -> Ir.preds_sir f in
  let order = Array.of_list (Ir.reverse_postorder f) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i bid -> Hashtbl.replace index bid i) order;
  let idom = Hashtbl.create 16 in
  (match f.blocks with
  | [] -> ()
  | e :: _ ->
      Hashtbl.replace idom e.Ir.bid e.Ir.bid;
      let intersect b1 b2 =
        let rec walk b1 b2 =
          if b1 = b2 then b1
          else
            let i1 = Hashtbl.find index b1 and i2 = Hashtbl.find index b2 in
            if i1 > i2 then walk (Hashtbl.find idom b1) b2
            else walk b1 (Hashtbl.find idom b2)
        in
        walk b1 b2
      in
      let changed = ref true in
      while !changed do
        changed := false;
        Array.iter
          (fun bid ->
            if bid <> e.Ir.bid then begin
              let ps =
                match Hashtbl.find_opt preds bid with Some l -> l | None -> []
              in
              let processed =
                List.filter (fun p -> Hashtbl.mem idom p) ps
              in
              match processed with
              | [] -> ()
              | first :: rest ->
                  let new_idom = List.fold_left intersect first rest in
                  if Hashtbl.find_opt idom bid <> Some new_idom then begin
                    Hashtbl.replace idom bid new_idom;
                    changed := true
                  end
            end)
          order
      done);
  { idom; order; index }

let idom t bid = Hashtbl.find_opt t.idom bid

(** [dominates t a b] is true iff block [a] dominates block [b]. *)
let dominates t a b =
  let rec walk b =
    if a = b then true
    else
      match Hashtbl.find_opt t.idom b with
      | Some p when p <> b -> walk p
      | _ -> false
  in
  walk b

(** [strictly_dominates t a b] is [dominates t a b && a <> b]. *)
let strictly_dominates t a b = a <> b && dominates t a b

(** Blocks in reverse postorder. *)
let rpo t = Array.to_list t.order
