let valid = [ 1; 8; 16; 32; 64 ]

let is_valid w = List.mem w valid

let mask w =
  if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let trunc w v = Int64.logand v (mask w)

let zext = trunc

let sext w v =
  if w >= 64 then v
  else
    let v = trunc w v in
    let sign = Int64.shift_left 1L (w - 1) in
    if Int64.logand v sign <> 0L then Int64.logor v (Int64.lognot (mask w))
    else v

let required_bits a =
  if a = 0L then 1
  else if Int64.compare a 0L < 0 then 64
  else
    let rec go n acc =
      if n = 0L then acc else go (Int64.shift_right_logical n 1) (acc + 1)
    in
    go a 0

let fits w v = required_bits v <= w

let class_of_bits b =
  if b <= 8 then 8 else if b <= 16 then 16 else if b <= 32 then 32 else 64

let signed_min w = Int64.shift_left 1L (w - 1) |> trunc w

let signed_max w = Int64.sub (Int64.shift_left 1L (w - 1)) 1L

let to_signed = sext
