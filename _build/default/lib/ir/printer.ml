(* Textual rendering of SIR modules, in an LLVM-flavoured syntax.  Used by
   golden tests, the CLI's [--emit-ir], and error reporting. *)

let binop_name : Ir.binop -> string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul"
  | Udiv -> "udiv" | Sdiv -> "sdiv" | Urem -> "urem" | Srem -> "srem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let cmpop_name : Ir.cmpop -> string = function
  | Eq -> "eq" | Ne -> "ne"
  | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"
  | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"

let castop_name : Ir.castop -> string = function
  | Zext -> "zext" | Sext -> "sext" | TruncCast -> "trunc"

let operand_str f (o : Ir.operand) =
  match o with
  | Var v ->
      let i = Ir.instr f v in
      if i.iname <> "" then Printf.sprintf "%%%s.%d" i.iname v
      else Printf.sprintf "%%%d" v
  | Const c -> Printf.sprintf "%Ld:i%d" c.cval c.cwidth

let block_str f bid = (Ir.block f bid).bname ^ "." ^ string_of_int bid

let def_str (i : Ir.instr) =
  if i.iname <> "" then Printf.sprintf "%%%s.%d" i.iname i.iid
  else Printf.sprintf "%%%d" i.iid

let instr_str f (i : Ir.instr) =
  let o = operand_str f in
  let b = block_str f in
  let body =
    match i.op with
    | Param k -> Printf.sprintf "param %d" k
    | Bin (op, a, c) ->
        Printf.sprintf "%s i%d %s, %s" (binop_name op) i.width (o a) (o c)
    | Cmp (op, a, c) -> Printf.sprintf "cmp %s %s, %s" (cmpop_name op) (o a) (o c)
    | Cast (op, a) -> Printf.sprintf "%s %s to i%d" (castop_name op) (o a) i.width
    | Select (c, a, d) -> Printf.sprintf "select %s, %s, %s" (o c) (o a) (o d)
    | Phi incoming ->
        let arm (p, v) = Printf.sprintf "[%s, %s]" (o v) (b p) in
        Printf.sprintf "phi i%d %s" i.width
          (String.concat ", " (List.map arm incoming))
    | Load l ->
        Printf.sprintf "load%s i%d, %s"
          (if l.l_volatile then " volatile" else "") i.width (o l.l_addr)
    | Store s ->
        Printf.sprintf "store%s i%d %s, %s"
          (if s.s_volatile then " volatile" else "") s.s_width (o s.s_value)
          (o s.s_addr)
    | Gaddr g -> Printf.sprintf "gaddr @%s" g
    | Salloc n -> Printf.sprintf "salloc %d" n
    | Call c ->
        Printf.sprintf "call i%d @%s(%s)" i.width c.callee
          (String.concat ", " (List.map o c.args))
    | Br t -> Printf.sprintf "br %s" (b t)
    | Cbr (c, t, e) -> Printf.sprintf "br %s, %s, %s" (o c) (b t) (b e)
    | Ret None -> "ret void"
    | Ret (Some v) -> Printf.sprintf "ret %s" (o v)
    | Unreachable -> "unreachable"
  in
  let prefix = if Ir.has_result i then def_str i ^ " = " else "" in
  let suffix = if i.speculative then " !speculative" else "" in
  prefix ^ body ^ suffix

let func_str (f : Ir.func) =
  let buf = Buffer.create 1024 in
  let params =
    String.concat ", "
      (List.map (fun (n, w) -> Printf.sprintf "i%d %%%s" w n) f.params)
  in
  Buffer.add_string buf
    (Printf.sprintf "define i%d @%s(%s) {\n" f.ret_width f.fname params);
  List.iter
    (fun (bl : Ir.block) ->
      let annot =
        match Ir.region_of_block f bl.bid with
        | Some r ->
            Printf.sprintf "  ; region %d, handler %s" r.rid
              (block_str f r.rhandler)
        | None ->
            if Ir.is_handler f bl.bid then "  ; handler" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%s.%d:%s\n" bl.bname bl.bid annot);
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ instr_str f i ^ "\n"))
        bl.instrs)
    f.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let module_str (m : Ir.modul) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (g : Ir.global) ->
      Buffer.add_string buf
        (Printf.sprintf "@%s = global [%d x i%d]\n" g.gname g.count g.elem_width))
    m.globals;
  List.iter (fun f -> Buffer.add_string buf ("\n" ^ func_str f)) m.funcs;
  Buffer.contents buf
