(** Backward liveness over SSA variables.

    The predecessor relation is a parameter: {!Ir.preds_sir} gives §3.1.2's
    semantics (a handler sees the values live at its region's entry),
    {!Ir.preds_smir} gives equation (2)'s machine-level relation used by
    the register allocator.  Phi uses are live-out of the corresponding
    predecessor, not live-in of the phi's block. *)

module IntSet : Set.S with type elt = int

type t = {
  live_in : (int, IntSet.t) Hashtbl.t;
  live_out : (int, IntSet.t) Hashtbl.t;
}

val compute : ?preds:(int, int list) Hashtbl.t -> Ir.func -> t
(** Fixed-point dataflow; [preds] defaults to {!Ir.preds_sir}. *)

val live_in : t -> int -> IntSet.t
val live_out : t -> int -> IntSet.t
