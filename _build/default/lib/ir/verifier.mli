(** Structural and semantic validation of SIR.

    Classic SSA checks (definitions dominate uses, operand widths agree,
    phis are block prefixes with one incoming per predecessor, terminators
    close every block) plus the speculative-region rules of §3.1.1:
    a block handles at most one region, handlers are outside all regions
    and are never branch targets, and — Theorem 3.1, checked through
    SIR-relation liveness — every variable defined inside a region is dead
    at its handler's entry.  Unreachable blocks are exempt from dominance
    checks, as in LLVM. *)

exception Invalid of string

val check_func : Ir.func -> unit
(** @raise Invalid with a diagnostic on the first violation. *)

val check_module : Ir.modul -> unit
(** [check_func] on every function, plus call-target and global-reference
    resolution. *)

val verify_exn : Ir.modul -> unit
(** Alias of {!check_module}. *)

val verify : Ir.modul -> (unit, string) result
(** Non-raising variant. *)
