lib/ir/dom.ml: Array Hashtbl Ir List
