lib/ir/liveness.mli: Hashtbl Ir Set
