lib/ir/verifier.ml: Dom Hashtbl Ir List Liveness Printer Printf String
