lib/ir/width.mli:
