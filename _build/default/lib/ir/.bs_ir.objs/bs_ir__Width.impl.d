lib/ir/width.ml: Int64 List
