lib/ir/loops.mli: Ir Set
