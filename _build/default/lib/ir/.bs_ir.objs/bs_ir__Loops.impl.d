lib/ir/loops.ml: Dom Hashtbl Int Ir List Set
