lib/ir/liveness.ml: Hashtbl Int Ir List Set
