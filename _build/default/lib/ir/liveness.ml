(* Backward liveness dataflow over SSA variables.

   The predecessor relation is a parameter: passing {!Ir.preds_sir} gives
   the SIR semantics of §3.1.2 (handlers see values live at the region
   entry); {!Ir.preds_smir} gives the machine-level relation of equation
   (2) used by the register allocator. *)

module IntSet = Set.Make (Int)

type t = {
  live_in : (int, IntSet.t) Hashtbl.t;
  live_out : (int, IntSet.t) Hashtbl.t;
}

(* A phi use of [v] along edge (p -> b) is live-out of p, not live-in of b.
   SSA liveness handles this by seeding the phi's operands into the
   predecessors' live-out sets. *)

let compute ?preds (f : Ir.func) =
  let preds = match preds with Some p -> p | None -> Ir.preds_sir f in
  (* successor map derived from preds so the two relations stay duals *)
  let succs_tbl : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace succs_tbl b.bid []) f.blocks;
  Hashtbl.iter
    (fun b ps ->
      List.iter
        (fun p ->
          let cur = try Hashtbl.find succs_tbl p with Not_found -> [] in
          if not (List.mem b cur) then Hashtbl.replace succs_tbl p (b :: cur))
        ps)
    preds;
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace live_in b.bid IntSet.empty;
      Hashtbl.replace live_out b.bid IntSet.empty)
    f.blocks;
  (* Per-block gen (upward-exposed non-phi uses + phi presence handled at
     edges) and kill (definitions). *)
  let block_flow (b : Ir.block) out =
    List.fold_right
      (fun (i : Ir.instr) live ->
        let live =
          if Ir.has_result i then IntSet.remove i.iid live else live
        in
        if Ir.is_phi i then live
        else
          List.fold_left
            (fun acc o ->
              match o with Ir.Var v -> IntSet.add v acc | Ir.Const _ -> acc)
            live (Ir.operands i))
      b.instrs out
  in
  (* Values flowing along a phi edge: for successor s reached from p, the phi
     operands of s selected for p are live-out of p; phi defs of s are not
     live across the edge (they are killed by the phi). *)
  let phi_out_of (p : int) (s : Ir.block) =
    List.fold_left
      (fun acc (i : Ir.instr) ->
        match i.op with
        | Phi incoming -> (
            match List.assoc_opt p incoming with
            | Some (Ir.Var v) -> IntSet.add v acc
            | _ -> acc)
        | _ -> acc)
      IntSet.empty s.instrs
  in
  let phi_defs (s : Ir.block) =
    List.fold_left
      (fun acc (i : Ir.instr) ->
        if Ir.is_phi i then IntSet.add i.iid acc else acc)
      IntSet.empty s.instrs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        let succ_ids =
          match Hashtbl.find_opt succs_tbl b.bid with Some l -> l | None -> []
        in
        let out =
          List.fold_left
            (fun acc s ->
              let sb = Ir.block f s in
              let s_in = Hashtbl.find live_in s in
              let via = IntSet.diff s_in (phi_defs sb) in
              IntSet.union acc (IntSet.union via (phi_out_of b.bid sb)))
            IntSet.empty succ_ids
        in
        let inn = block_flow b out in
        if
          not
            (IntSet.equal out (Hashtbl.find live_out b.bid)
            && IntSet.equal inn (Hashtbl.find live_in b.bid))
        then begin
          Hashtbl.replace live_out b.bid out;
          Hashtbl.replace live_in b.bid inn;
          changed := true
        end)
      (List.rev f.blocks)
  done;
  { live_in; live_out }

let live_in t bid =
  match Hashtbl.find_opt t.live_in bid with
  | Some s -> s
  | None -> IntSet.empty

let live_out t bid =
  match Hashtbl.find_opt t.live_out bid with
  | Some s -> s
  | None -> IntSet.empty
