(** Dominator computation (Cooper-Harvey-Kennedy iterative algorithm).

    Handlers participate through the SIR predecessor relation by default,
    so dominance queries are valid inside misspeculation handlers too. *)

type t = {
  idom : (int, int) Hashtbl.t;   (** block id -> immediate dominator *)
  order : int array;             (** reverse postorder of block ids *)
  index : (int, int) Hashtbl.t;  (** block id -> RPO index *)
}

val compute : ?preds:(int, int list) Hashtbl.t -> Ir.func -> t
(** [compute f] builds the dominator tree; [preds] overrides the
    predecessor relation (default {!Ir.preds_sir}). *)

val idom : t -> int -> int option

val dominates : t -> int -> int -> bool
(** [dominates t a b] — block [a] dominates block [b] (reflexive). *)

val strictly_dominates : t -> int -> int -> bool

val rpo : t -> int list
(** Blocks in reverse postorder. *)
