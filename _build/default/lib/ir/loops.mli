(** Natural-loop detection from back edges in the dominator tree — the
    loop structure the expander's unroller consumes. *)

module IntSet : Set.S with type elt = int

type loop = {
  header : int;
  latches : int list;  (** blocks with a back edge to the header *)
  body : IntSet.t;     (** all blocks of the loop, header included *)
  depth : int;         (** 1 = outermost *)
}

type t = loop list

val compute : Ir.func -> t
(** All natural loops (loops sharing a header are merged). *)

val innermost : t -> t
(** Loops containing no other loop. *)

val exits : Ir.func -> loop -> IntSet.t
(** Blocks outside the loop targeted from inside it. *)

val size : Ir.func -> loop -> int
(** Static instruction count of the loop body. *)
