(* Single-flight memoisation.

   The table holds one of three states per key: a landed value, a landed
   exception, or an in-flight marker.  Computations run outside the lock;
   a domain finding the in-flight marker waits on the condition variable
   and retries when the computation (any computation) lands.  A capacity
   overflow flushes the whole table: because memoised computations are
   deterministic, a flush can only cost time, never change a result. *)

type 'v state =
  | Done of 'v
  | Failed of exn * Printexc.raw_backtrace
  | Running

type ('k, 'v) t = {
  tbl : ('k, 'v state) Hashtbl.t;
  lock : Mutex.t;
  landed : Condition.t;
  cap : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(cap = max_int) () =
  { tbl = Hashtbl.create 64; lock = Mutex.create ();
    landed = Condition.create (); cap; hits = 0; misses = 0 }

let rec find_or_add t k f =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.tbl k with
  | Some (Done v) ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      v
  | Some (Failed (e, bt)) ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      Printexc.raise_with_backtrace e bt
  | Some Running ->
      (* someone else is computing this key: wait for any landing, then
         re-examine (spurious wakeups just loop) *)
      Condition.wait t.landed t.lock;
      Mutex.unlock t.lock;
      find_or_add t k f
  | None ->
      t.misses <- t.misses + 1;
      if Hashtbl.length t.tbl >= t.cap then Hashtbl.reset t.tbl;
      Hashtbl.replace t.tbl k Running;
      Mutex.unlock t.lock;
      let outcome =
        match f () with
        | v -> Done v
        | exception e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.lock;
      Hashtbl.replace t.tbl k outcome;
      Condition.broadcast t.landed;
      Mutex.unlock t.lock;
      (match outcome with
      | Done v -> v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Running -> assert false)

let mem t k =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl k with
    | Some (Done _ | Failed _) -> true
    | Some Running | None -> false
  in
  Mutex.unlock t.lock;
  r

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.tbl;
  t.hits <- 0;
  t.misses <- 0;
  Condition.broadcast t.landed;
  Mutex.unlock t.lock

let hits t = t.hits
let misses t = t.misses

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n
