(* Single-flight memoisation.

   The table holds one of three states per key: a landed value, a landed
   failure (with the number of executions that have failed so far), or an
   in-flight marker.  Computations run outside the lock; a domain finding
   the in-flight marker waits on the condition variable and retries when
   the computation (any computation) lands.  A capacity overflow flushes
   the whole table: because memoised computations are deterministic, a
   flush can only cost time, never change a result.

   Failures are NOT pinned forever.  A memoised failure poisons every
   later identical request, which is wrong the moment failures can be
   transient (an injected fault, a timed-out service request).  Each
   negative entry therefore carries an attempt count: until it reaches
   [max_failures], the next requester re-executes the thunk (still
   single-flight — concurrent requesters wait, they don't pile on); once
   the budget is spent the failure is served from the table like before.
   A deterministic failure costs at most [max_failures] executions per
   table lifetime; a transient one heals on the first retry. *)

type 'v state =
  | Done of 'v
  | Failed of exn * Printexc.raw_backtrace * int  (* failed executions *)
  | Running

type ('k, 'v) t = {
  tbl : ('k, 'v state) Hashtbl.t;
  lock : Mutex.t;
  landed : Condition.t;
  cap : int;
  max_failures : int;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
}

(* Process-wide single-flight visibility, across all tables.  Volatile:
   how many requesters pile onto an in-flight key depends on domain
   scheduling, so the value legitimately differs between runs. *)
let coalesced_metric =
  Bs_obs.Metrics.counter ~volatile:true "memo_coalesced_total"

let create ?(cap = max_int) ?(max_failures = 3) () =
  if max_failures < 1 then invalid_arg "Memo.create: max_failures < 1";
  { tbl = Hashtbl.create 64; lock = Mutex.create ();
    landed = Condition.create (); cap; max_failures; hits = 0; misses = 0;
    coalesced = 0 }

(* [counted] distinguishes a requester's first encounter with the
   in-flight marker from its re-examinations after (possibly spurious)
   wakeups, so each coalesced requester is counted exactly once. *)
let rec find_or_add_aux t k f ~counted =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.tbl k with
  | Some (Done v) ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      v
  | Some (Failed (e, bt, attempts)) when attempts >= t.max_failures ->
      (* retry budget exhausted: the failure is as good as a value *)
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      Printexc.raise_with_backtrace e bt
  | Some (Failed (_, _, attempts)) -> run t k f ~attempts
  | Some Running ->
      (* someone else is computing this key: wait for any landing, then
         re-examine (spurious wakeups just loop) *)
      if not counted then begin
        t.coalesced <- t.coalesced + 1;
        Bs_obs.Metrics.inc coalesced_metric
      end;
      Condition.wait t.landed t.lock;
      Mutex.unlock t.lock;
      find_or_add_aux t k f ~counted:true
  | None ->
      if Hashtbl.length t.tbl >= t.cap then Hashtbl.reset t.tbl;
      run t k f ~attempts:0

and find_or_add t k f = find_or_add_aux t k f ~counted:false

(* Execute [f] for [k], holding the in-flight marker.  Called with
   [t.lock] held; releases it around the computation. *)
and run t k f ~attempts =
  t.misses <- t.misses + 1;
  Hashtbl.replace t.tbl k Running;
  Mutex.unlock t.lock;
  let outcome =
    match f () with
    | v -> Done v
    | exception e -> Failed (e, Printexc.get_raw_backtrace (), attempts + 1)
  in
  Mutex.lock t.lock;
  Hashtbl.replace t.tbl k outcome;
  Condition.broadcast t.landed;
  Mutex.unlock t.lock;
  match outcome with
  | Done v -> v
  | Failed (e, bt, _) -> Printexc.raise_with_backtrace e bt
  | Running -> assert false

let mem t k =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl k with
    | Some (Done _ | Failed _) -> true
    | Some Running | None -> false
  in
  Mutex.unlock t.lock;
  r

let failure_attempts t k =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl k with
    | Some (Failed (_, _, n)) -> n
    | _ -> 0
  in
  Mutex.unlock t.lock;
  r

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.tbl;
  t.hits <- 0;
  t.misses <- 0;
  t.coalesced <- 0;
  Condition.broadcast t.landed;
  Mutex.unlock t.lock

let hits t = t.hits
let misses t = t.misses

let coalesced t =
  Mutex.lock t.lock;
  let r = t.coalesced in
  Mutex.unlock t.lock;
  r

(* The individual counter reads above are unsynchronised (fine for a
   single counter: int stores are atomic), but a (hits, misses) PAIR
   read field by field can be torn by a concurrent [find_or_add] landing
   between the two loads.  Reporting code that derives rates or checks
   sums must snapshot both under the lock. *)
let stats t =
  Mutex.lock t.lock;
  let r = (t.hits, t.misses) in
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n
