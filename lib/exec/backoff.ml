(* Exponential backoff with deterministic "equal jitter".  The jitter
   stream is keyed by (seed, key, attempt) through MD5 so it is stable
   across OCaml versions and processes, not just within one run. *)

let mix ~seed ~key ~attempt =
  let d = Digest.string (Printf.sprintf "%Ld|%s|%d" seed key attempt) in
  (* fold the first 8 digest bytes into an int64 seed *)
  let s = ref 0L in
  for i = 0 to 7 do
    s := Int64.logor (Int64.shift_left !s 8) (Int64.of_int (Char.code d.[i]))
  done;
  !s

let delay_ns ~base_ns ~cap_ns ~seed ~key ~attempt =
  if attempt < 1 then invalid_arg "Backoff.delay_ns: attempt < 1";
  if base_ns <= 0L then 0L
  else begin
    let envelope =
      (* base * 2^(attempt-1), saturating *)
      let shift = min (attempt - 1) 62 in
      let e = Int64.shift_left base_ns shift in
      if Int64.compare e base_ns < 0 (* overflow *) || shift >= 62 then cap_ns
      else min e cap_ns
    in
    let half = Int64.div envelope 2L in
    if half <= 0L then envelope
    else begin
      let rng = Bs_support.Rng.create (mix ~seed ~key ~attempt) in
      let j =
        Int64.rem (Int64.logand (Bs_support.Rng.next rng) Int64.max_int)
          (Int64.add half 1L)
      in
      Int64.add half j
    end
  end

type 'a outcome = {
  result : ('a, exn * Printexc.raw_backtrace) result;
  attempts : int;
}

let run ~retries ~is_transient ~sleep ~delay f =
  if retries < 0 then invalid_arg "Backoff.run: retries < 0";
  let rec go attempt =
    match f ~attempt with
    | v -> { result = Ok v; attempts = attempt }
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        if attempt > retries || not (is_transient e) then
          { result = Error (e, bt); attempts = attempt }
        else begin
          sleep (delay ~attempt);
          go (attempt + 1)
        end
  in
  go 1
