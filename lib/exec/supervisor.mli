(** Deadline tokens: the cooperative-cancellation currency of the
    compile service.

    A token is created per request with an optional wall-clock deadline.
    Work holding a token polls it at phase boundaries ({!check} between
    compile and simulate, {!Pool.map}'s [should_stop] between batch
    items) and unwinds with {!Deadline_exceeded} once the deadline has
    passed or a supervisor called {!cancel}.  Nothing is ever killed
    pre-emptively — a hung computation is detected by the watchdog
    observing its token, answered on its behalf, and its eventual
    result discarded. *)

exception Deadline_exceeded

type token

val now_ns : unit -> int64
(** Wall-clock nanoseconds ([Unix.gettimeofday] scaled — deadlines are
    coarse; monotonic precision is not required at these horizons). *)

val create : ?deadline_ns:int64 -> unit -> token
(** A fresh token; [deadline_ns] is absolute ({!now_ns} scale).  Without
    it the token only cancels explicitly. *)

val of_timeout_ms : int -> token
(** Token whose deadline is [ms] milliseconds from now. *)

val cancel : token -> unit
(** Mark the token cancelled (idempotent). *)

val cancelled : token -> bool
(** True once [cancel] was called or the deadline has passed. *)

val check : token -> unit
(** @raise Deadline_exceeded when {!cancelled}. *)

val remaining_ns : token -> int64
(** Nanoseconds until the deadline (clamped at 0; [Int64.max_int] for
    deadline-free tokens; 0 when cancelled). *)

val deadline_ns : token -> int64 option
(** The absolute deadline, if any. *)

val sleep_ns : ?token:token -> int64 -> unit
(** Sleep for the given duration in short slices, polling [token]
    between slices.
    @raise Deadline_exceeded if the token cancels mid-sleep. *)
