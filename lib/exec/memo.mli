(** A thread-safe, single-flight memo table.

    [find_or_add] computes each key at most once per process, whatever
    the number of domains asking: concurrent requests for a key already
    being computed block until the computation lands, then share its
    result.  Exceptions are memoised too — a deterministic computation
    that fails once fails the same way for every caller.

    The table keeps hit/miss counters so callers (the bench harness,
    the compile cache) can report cache effectiveness. *)

type ('k, 'v) t

val create : ?cap:int -> unit -> ('k, 'v) t
(** [create ~cap ()] returns an empty table.  When the number of
    memoised entries reaches [cap] (default: unbounded) the table is
    flushed wholesale before admitting the next entry — crude, but it
    bounds memory without introducing eviction-order nondeterminism in
    the values returned (a re-computation is identical by
    assumption). *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t k f] returns the memoised value for [k], computing
    it with [f] (outside the table lock) on first request.  Rethrows
    the memoised exception if [f] failed. *)

val mem : ('k, 'v) t -> 'k -> bool
(** [mem t k] is true when [k] is memoised (even as a failure). *)

val clear : ('k, 'v) t -> unit
(** Drop all entries and reset the hit/miss counters. *)

val hits : ('k, 'v) t -> int
(** Requests served from the table. *)

val misses : ('k, 'v) t -> int
(** Requests that ran the computation. *)

val length : ('k, 'v) t -> int
