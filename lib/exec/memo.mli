(** A thread-safe, single-flight memo table.

    [find_or_add] computes each key at most once per process, whatever
    the number of domains asking: concurrent requests for a key already
    being computed block until the computation lands, then share its
    result.

    Failures are memoised with a bounded retry budget.  Serving a
    failure forever poisons every later identical request — wrong as
    soon as failures can be transient (an injected fault, a service
    deadline).  Until a key has failed [max_failures] times, the next
    requester re-executes the thunk (still single-flight); after that
    the failure is served from the table.  Deterministic failures
    therefore cost at most [max_failures] executions, and transient
    ones heal on the first retry.

    The table keeps hit/miss counters so callers (the bench harness,
    the compile cache) can report cache effectiveness.  A re-execution
    of a failed key counts as a miss. *)

type ('k, 'v) t

val create : ?cap:int -> ?max_failures:int -> unit -> ('k, 'v) t
(** [create ~cap ~max_failures ()] returns an empty table.  When the
    number of memoised entries reaches [cap] (default: unbounded) the
    table is flushed wholesale before admitting the next entry — crude,
    but it bounds memory without introducing eviction-order
    nondeterminism in the values returned (a re-computation is
    identical by assumption).  [max_failures] (default 3, must be
    ≥ 1) bounds how many times a failing key is re-executed before its
    failure is pinned. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t k f] returns the memoised value for [k], computing
    it with [f] (outside the table lock) on first request.  Rethrows
    the memoised exception if [f] failed [max_failures] times; before
    that, a request for a failed key runs [f] again. *)

val mem : ('k, 'v) t -> 'k -> bool
(** [mem t k] is true when [k] is memoised (even as a failure). *)

val failure_attempts : ('k, 'v) t -> 'k -> int
(** Failed executions recorded for [k] (0 for absent, running or
    succeeded keys). *)

val clear : ('k, 'v) t -> unit
(** Drop all entries and reset the hit/miss counters. *)

val hits : ('k, 'v) t -> int
(** Requests served from the table. *)

val misses : ('k, 'v) t -> int
(** Requests that ran the computation (including failure retries). *)

val coalesced : ('k, 'v) t -> int
(** Requests that found their key in flight and waited for another
    requester's computation instead of running their own (each waiting
    requester counted once, however many times it is woken).  Also
    accumulated process-wide into the volatile
    [memo_coalesced_total] metric. *)

val stats : ('k, 'v) t -> int * int
(** [(hits, misses)] snapshotted atomically under the table lock.
    Reading {!hits} and {!misses} separately can observe a torn pair
    when other domains are mutating the table between the two loads;
    reporting code (hit rates, section sums) must use this instead. *)

val length : ('k, 'v) t -> int
