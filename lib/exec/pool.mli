(** Deterministic Domain-based parallel execution.

    [map] fans an array of independent jobs out over a fixed pool of
    worker domains.  Results come back in input order and worker
    exceptions are rethrown in input order, so a parallel map is
    observationally identical to [Array.map] — callers get parallelism
    without giving up reproducibility.  All randomness must be split
    {e before} the fan-out (each job carries its own seed); the pool
    itself introduces no nondeterminism. *)

exception Cancelled
(** Raised by [map] when [should_stop] ended the batch early and no
    item had failed.  (When an item failed, that failure is rethrown
    instead — it is the more informative signal.) *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for
    [--jobs]. *)

val stats : unit -> int * int
(** [(items_run, items_cancelled)] accumulated process-wide across all
    [map] calls: items actually executed vs items abandoned when a
    batch ended early (failure drain or [should_stop]).  Mirrored in
    the volatile [pool_items_total] metric, with per-item latency in
    the [pool_item_ms] histogram. *)

val map :
  ?should_stop:(unit -> bool) -> jobs:int -> ('a -> 'b) -> 'a array ->
  'b array
(** [map ~jobs f a] applies [f] to every element of [a] on up to [jobs]
    domains (the calling domain included) and returns the results in
    input order.  With [jobs <= 1] (or fewer than two elements) it
    degrades to a plain sequential map — the [--jobs 1] debugging path
    runs no domain machinery at all.

    If any job raises, the remaining unclaimed items are {e not}
    started (workers drain cooperatively, finishing only the items
    already in flight) and the exception of the {e lowest-index}
    failing job is rethrown (with its backtrace) after all workers have
    drained.  Because items are claimed in index order, the executed
    items always form a prefix of the input, so the rethrown failure is
    the same in every schedule — failure is as deterministic as
    success.

    [should_stop] is polled between items (never during one); when it
    returns true, workers stop claiming and [map] raises {!Cancelled}
    once in-flight items have drained.  This is the cooperative hook
    the compile service's deadline watchdog uses to abandon a batch
    promptly. *)

val map_list :
  ?should_stop:(unit -> bool) -> jobs:int -> ('a -> 'b) -> 'a list ->
  'b list
(** [map] over lists, preserving order. *)

val run_all :
  ?should_stop:(unit -> bool) -> jobs:int -> (unit -> unit) array -> unit
(** [run_all ~jobs thunks] executes every thunk, in parallel across the
    pool.  Used to prefill memo tables before a sequential
    (deterministically-ordered) reporting pass. *)
