(** Deterministic Domain-based parallel execution.

    [map] fans an array of independent jobs out over a fixed pool of
    worker domains.  Results come back in input order and worker
    exceptions are rethrown in input order, so a parallel map is
    observationally identical to [Array.map] — callers get parallelism
    without giving up reproducibility.  All randomness must be split
    {e before} the fan-out (each job carries its own seed); the pool
    itself introduces no nondeterminism. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for
    [--jobs]. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f a] applies [f] to every element of [a] on up to [jobs]
    domains (the calling domain included) and returns the results in
    input order.  With [jobs <= 1] (or fewer than two elements) it
    degrades to a plain sequential [Array.map] — the [--jobs 1]
    debugging path runs no domain machinery at all.

    If any job raises, the exception of the {e lowest-index} failing
    job is rethrown (with its backtrace) after all workers have
    drained, so failure is as deterministic as success. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over lists, preserving order. *)

val run_all : jobs:int -> (unit -> unit) array -> unit
(** [run_all ~jobs thunks] executes every thunk, in parallel across the
    pool.  Used to prefill memo tables before a sequential
    (deterministically-ordered) reporting pass. *)
