(* A fixed worker pool over OCaml 5 domains.

   Work distribution is a single atomic cursor over the input array:
   every worker (the spawned domains plus the calling domain) claims the
   next unclaimed index, computes, and stores the result at that index.
   Order is therefore preserved by construction, whatever the
   interleaving.  Exceptions are captured per index and rethrown after
   the join in input order, so the first failure a caller observes does
   not depend on scheduling. *)

let default_jobs () = Domain.recommended_domain_count ()

type 'b cell =
  | Pending
  | Ok of 'b
  | Exn of exn * Printexc.raw_backtrace

let map ~jobs f a =
  let n = Array.length a in
  let jobs = min jobs n in
  (* When tracing, each work item is bracketed in a span; the events
     carry the executing domain's id, so a trace shows which domain ran
     which index (pool occupancy).  Identical span structure on the
     sequential path keeps traces comparable across job counts. *)
  let traced i x =
    if Bs_obs.Trace.is_enabled () then
      Bs_obs.Trace.with_span ~args:[ ("index", string_of_int i) ] "pool:item"
        (fun () -> f x)
    else f x
  in
  if jobs <= 1 || n <= 1 then Array.mapi traced a
  else begin
    let results = Array.make n Pending in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          let r =
            match traced i (Array.unsafe_get a i) with
            | v -> Ok v
            | exception e -> Exn (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- r;
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function
        | Ok v -> v
        | Exn (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false (* cursor passed n for every worker *))
      results
  end

let map_list ~jobs f l = Array.to_list (map ~jobs f (Array.of_list l))

let run_all ~jobs thunks = ignore (map ~jobs (fun g -> g ()) thunks)
