(* A fixed worker pool over OCaml 5 domains.

   Work distribution is a single atomic cursor over the input array:
   every worker (the spawned domains plus the calling domain) claims the
   next unclaimed index, computes, and stores the result at that index.
   Order is therefore preserved by construction, whatever the
   interleaving.  Exceptions are captured per index and rethrown after
   the join in input order, so the first failure a caller observes does
   not depend on scheduling.

   Cancellation is cooperative and checked between items only: a worker
   never abandons the item it is computing, it just stops claiming new
   ones.  Two things raise the stop flag — an item failing (a failed
   batch drains promptly instead of running every remaining item to
   completion) and the caller's [should_stop] (the serve deadline path).
   Determinism of the rethrown failure survives cancellation: the cursor
   claims indices in order, so the set of executed items is always a
   prefix of the input, and the lowest failing index in any schedule is
   the lowest index that fails at all. *)

exception Cancelled

let default_jobs () = Domain.recommended_domain_count ()

(* Pool visibility: items actually executed vs items a batch abandoned
   (failure drain or cooperative stop).  Volatile — how many items are
   in flight when a batch ends early depends on scheduling — but the
   counts let reporting code observe pool behaviour without reaching
   into [map]'s internals.  Item latency feeds a histogram for the
   same reason. *)
let items_run = Bs_obs.Metrics.counter ~volatile:true "pool_items_total"
    ~labels:[ ("event", "run") ]

let items_cancelled =
  Bs_obs.Metrics.counter ~volatile:true "pool_items_total"
    ~labels:[ ("event", "cancelled") ]

let item_ms = Bs_obs.Metrics.histogram "pool_item_ms"

let stats () =
  (Bs_obs.Metrics.counter_value items_run,
   Bs_obs.Metrics.counter_value items_cancelled)

type 'b cell =
  | Pending
  | Ok of 'b
  | Exn of exn * Printexc.raw_backtrace

let never_stop () = false

let map ?(should_stop = never_stop) ~jobs f a =
  let n = Array.length a in
  let jobs = min jobs n in
  (* When tracing, each work item is bracketed in a span; the events
     carry the executing domain's id, so a trace shows which domain ran
     which index (pool occupancy).  Identical span structure on the
     sequential path keeps traces comparable across job counts. *)
  let traced i x =
    let t0 = Unix.gettimeofday () in
    let finally () =
      Bs_obs.Metrics.observe item_ms ((Unix.gettimeofday () -. t0) *. 1e3);
      Bs_obs.Metrics.inc items_run
    in
    if Bs_obs.Trace.is_enabled () then
      Bs_obs.Trace.with_span ~args:[ ("index", string_of_int i) ] "pool:item"
        (fun () -> Fun.protect ~finally (fun () -> f x))
    else Fun.protect ~finally (fun () -> f x)
  in
  if jobs <= 1 || n <= 1 then begin
    (* sequential path: the first failure propagates immediately, which
       is exactly the lowest-index failure; external cancellation is
       still honoured between items *)
    let results = Array.make n Pending in
    for i = 0 to n - 1 do
      if should_stop () then begin
        Bs_obs.Metrics.inc ~by:(n - i) items_cancelled;
        raise Cancelled
      end;
      (match traced i (Array.unsafe_get a i) with
      | v -> results.(i) <- Ok v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Bs_obs.Metrics.inc ~by:(n - i - 1) items_cancelled;
          Printexc.raise_with_backtrace e bt)
    done;
    Array.map
      (function Ok v -> v | Pending | Exn _ -> assert false)
      results
  end
  else begin
    let results = Array.make n Pending in
    let cursor = Atomic.make 0 in
    let failed = Atomic.make false in
    let worker () =
      let rec loop () =
        if not (Atomic.get failed || should_stop ()) then begin
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            let r =
              match traced i (Array.unsafe_get a i) with
              | v -> Ok v
              | exception e ->
                  Atomic.set failed true;
                  Exn (e, Printexc.get_raw_backtrace ())
            in
            results.(i) <- r;
            loop ()
          end
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    let pending =
      Array.fold_left
        (fun acc c -> match c with Pending -> acc + 1 | _ -> acc)
        0 results
    in
    if pending > 0 then Bs_obs.Metrics.inc ~by:pending items_cancelled;
    (* rethrow the lowest-index failure; if only the caller's stop flag
       fired, report the cancellation itself *)
    Array.iter
      (function
        | Exn (e, bt) -> Printexc.raise_with_backtrace e bt
        | Ok _ | Pending -> ())
      results;
    if Array.exists (function Pending -> true | _ -> false) results then
      raise Cancelled;
    Array.map
      (function
        | Ok v -> v
        | Exn _ | Pending -> assert false)
      results
  end

let map_list ?should_stop ~jobs f l =
  Array.to_list (map ?should_stop ~jobs f (Array.of_list l))

let run_all ?should_stop ~jobs thunks =
  ignore (map ?should_stop ~jobs (fun g -> g ()) thunks)
