(* Deadline tokens.  See the interface for the design; the only
   subtlety here is that [cancelled] consults both the explicit flag
   and the clock, so a token "expires" even if no watchdog ever looks
   at it. *)

exception Deadline_exceeded

type token = {
  deadline : int64 option;  (* absolute, now_ns scale *)
  flag : bool Atomic.t;
}

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let create ?deadline_ns () = { deadline = deadline_ns; flag = Atomic.make false }

let of_timeout_ms ms =
  if ms < 0 then invalid_arg "Supervisor.of_timeout_ms: negative timeout";
  create
    ~deadline_ns:(Int64.add (now_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L))
    ()

let cancel t = Atomic.set t.flag true

let cancelled t =
  Atomic.get t.flag
  ||
  match t.deadline with
  | None -> false
  | Some d -> Int64.compare (now_ns ()) d > 0

let check t = if cancelled t then raise Deadline_exceeded

let remaining_ns t =
  if Atomic.get t.flag then 0L
  else
    match t.deadline with
    | None -> Int64.max_int
    | Some d -> Int64.max 0L (Int64.sub d (now_ns ()))

let deadline_ns t = t.deadline

(* Sleep in ≤1 ms slices so a cancellation interrupts promptly. *)
let slice_s = 0.001

let sleep_ns ?token ns =
  let until = Int64.add (now_ns ()) (Int64.max 0L ns) in
  let rec go () =
    (match token with Some t -> check t | None -> ());
    let left = Int64.sub until (now_ns ()) in
    if Int64.compare left 0L > 0 then begin
      let s = min slice_s (Int64.to_float left /. 1e9) in
      (try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()
