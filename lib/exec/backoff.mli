(** Deterministic exponential backoff with seeded jitter, and a small
    retry loop built on it.

    Retries without jitter synchronise: every client that failed
    together retries together.  Jitter without a seed is untestable.
    [delay_ns] therefore draws its jitter from a splitmix64 stream
    keyed by (seed, key, attempt) — a pure function, so a service
    replaying the same request under the same seed backs off by the
    same nanoseconds, and a jobs-1 run is byte-identical to a jobs-N
    run. *)

val delay_ns :
  base_ns:int64 -> cap_ns:int64 -> seed:int64 -> key:string ->
  attempt:int -> int64
(** [delay_ns ~base_ns ~cap_ns ~seed ~key ~attempt] is the pause before
    re-executing [key] after its [attempt]-th failure (attempts count
    from 1).  The uncapped envelope is [base_ns * 2^(attempt-1)],
    clamped to [cap_ns]; the returned delay is drawn uniformly from
    [[envelope/2, envelope]] ("equal jitter": at least half the
    envelope, so retries still spread, but progress is never faster
    than exponential). *)

type 'a outcome = {
  result : ('a, exn * Printexc.raw_backtrace) result;
      (** the first success, or the failure that ended the loop *)
  attempts : int;  (** executions performed (≥ 1) *)
}

val run :
  retries:int ->
  is_transient:(exn -> bool) ->
  sleep:(int64 -> unit) ->
  delay:(attempt:int -> int64) ->
  (attempt:int -> 'a) ->
  'a outcome
(** [run ~retries ~is_transient ~sleep ~delay f] executes [f ~attempt]
    (attempts count from 1) until it succeeds, raises a non-transient
    exception, or has failed [1 + retries] times.  Between transient
    failures it calls [sleep (delay ~attempt)].  An exception raised by
    [sleep] itself (e.g. a deadline token expiring mid-backoff)
    propagates to the caller — the loop never swallows it. *)
