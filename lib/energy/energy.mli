(** The per-component energy model.

    Converts the simulator's activity counters into the paper's Figure 9
    components.  Absolute values are model units — the paper's gate-level
    netlist is not reproducible — and every reported result is relative to
    BASELINE.  The constants are calibrated so the BASELINE split
    approximates Figure 9, with one hard anchor from RQ1: an 8-bit
    register slice access costs 1/4 of a 32-bit access. *)

type breakdown = {
  alu : float;
  regfile : float;
  dcache : float;
  icache : float;
  pipeline : float;  (** clocking, stalls, and the shared L2/DRAM path *)
}

val total : breakdown -> float

val e_reg32 : float
val e_reg8 : float
(** The paper-anchored 1/4 ratio: [e_reg8 = e_reg32 /. 4.0]. *)

val of_run :
  ctr:Bs_sim.Counters.t ->
  icache:Bs_sim.Cache.t ->
  dcache:Bs_sim.Cache.t ->
  l2:Bs_sim.Cache.t ->
  breakdown
(** Energy of one simulation from its raw activity. *)

val of_result : Bs_sim.Machine.result -> breakdown

val epi : breakdown -> Bs_sim.Counters.t -> float
(** Energy per dynamic instruction (Figure 8's third panel). *)

val e_checkpoint_byte : float
(** Per-byte cost of streaming a checkpoint to non-volatile memory. *)

val e_restore : float
(** Fixed cost of one power-failure restore (NVM read-back + refill). *)

val checkpoint_energy : Bs_sim.Counters.t -> float
(** Energy spent on checkpoint writes and restores — the intermittent
    runtime's overhead on top of the execution breakdown. *)

val reexec_energy : breakdown -> Bs_sim.Counters.t -> float
(** The slice of [total] attributable to re-executed (wasted)
    instructions, prorated by the re-execution instruction share. *)

val total_intermittent : breakdown -> Bs_sim.Counters.t -> float
(** [total b +. checkpoint_energy ctr]: whole-run energy under
    intermittent power. *)
