open Bs_sim

(* The per-component energy model.

   The paper derives energy from a synthesized 45 nm gate-level
   implementation; absolute joules are not reproducible without that
   netlist, so this model assigns a fixed energy cost to each
   architectural event counted by the simulator and reports everything
   relative to BASELINE, as the paper does.  One constant is anchored to a
   measurement the paper reports explicitly (§4 RQ1): an 8-bit register
   slice access costs 1/4 of a 32-bit register access.  The remaining
   constants encode standard embedded-core proportions: cache accesses
   dominate register accesses, DRAM dominates everything, and stall cycles
   burn pipeline power without doing work. *)

type breakdown = {
  alu : float;
  regfile : float;
  dcache : float;
  icache : float;
  pipeline : float;      (* everything else, incl. stalls — Figure 9 *)
}

let total b = b.alu +. b.regfile +. b.dcache +. b.icache +. b.pipeline

(* Energy units per event.  Calibrated so the BASELINE per-component split
   approximates the paper's Figure 9 (register file and instruction cache
   as leading consumers, ALU and D$ next, the residual pipeline clocking
   last), with the single hard anchor from RQ1: an 8-bit register slice
   access costs 1/4 of a 32-bit access. *)
let e_reg32 = 1.2
let e_reg8 = 0.3           (* the paper's gate-level 1/4 measurement *)
let e_alu32 = 2.2
let e_alu8 = 0.6           (* shorter carry chain, narrower operand latch *)
let e_mul = 6.0
let e_div = 20.0
let e_icache_access = 2.5
let e_dcache_access = 6.0
let e_l2_access = 20.0
let e_dram_access = 120.0
let e_pipe_cycle = 0.9     (* clocking, fetch/decode latches *)
let e_stall_cycle = 0.7    (* stalled pipeline still burns clock power *)

(* Intermittent-power costs.  A checkpoint streams its bytes to
   non-volatile memory — per-byte cost between D$ and L2 — and a restore
   pays the full NVM read-back plus pipeline refill, on the order of one
   DRAM access. *)
let e_checkpoint_byte = 1.8
let e_restore = 150.0

(** [of_run ~ctr ~icache ~dcache ~l2] converts one simulation's activity
    counters into a per-component energy breakdown. *)
let of_run ~(ctr : Counters.t) ~(icache : Cache.t) ~(dcache : Cache.t)
    ~(l2 : Cache.t) : breakdown =
  let f = float_of_int in
  let alu =
    (f ctr.alu32 *. e_alu32)
    +. (f ctr.alu8 *. e_alu8)
    +. (f ctr.mul_ops *. e_mul)
    +. (f ctr.div_ops *. e_div)
  in
  let regfile =
    (f (ctr.reg_read32 + ctr.reg_write32) *. e_reg32)
    +. (f (ctr.reg_read8 + ctr.reg_write8) *. e_reg8)
  in
  let dcache = f (Cache.accesses dcache) *. e_dcache_access in
  let icache = f (Cache.accesses icache) *. e_icache_access in
  let shared =
    (f (Cache.accesses l2) *. e_l2_access)
    +. (f l2.Cache.misses *. e_dram_access)
  in
  let pipeline =
    (f ctr.cycles *. e_pipe_cycle)
    +. (f ctr.stall_cycles *. e_stall_cycle)
    +. shared
  in
  { alu; regfile; dcache; icache; pipeline }

(** Energy per instruction. *)
let epi b (ctr : Counters.t) =
  if ctr.instrs = 0 then 0.0 else total b /. float_of_int ctr.instrs

(** Convenience: breakdown straight from a machine result. *)
let of_result (r : Machine.result) =
  of_run ~ctr:r.Machine.ctr ~icache:r.Machine.icache ~dcache:r.Machine.dcache
    ~l2:r.Machine.l2

(* Intermittent-power accounting.  The breakdown above already charges
   re-executed instructions (their ALU/register/cache events are counted
   like any others); these helpers separate the overheads so a harvest
   can report "energy wasted on checkpoints" and "energy wasted on
   re-execution" against the forward-progress energy. *)

let checkpoint_energy (ctr : Counters.t) =
  (float_of_int ctr.checkpoint_bytes *. e_checkpoint_byte)
  +. (float_of_int ctr.restores *. e_restore)

let reexec_energy b (ctr : Counters.t) =
  if ctr.instrs = 0 then 0.0
  else total b *. float_of_int ctr.reexec_instrs /. float_of_int ctr.instrs

let total_intermittent b ctr = total b +. checkpoint_energy ctr
