open Bs_ir

(* Function inlining.  Call sites are replaced by a full copy of the callee
   body; the call block is split, callee returns become branches to the
   tail, and multiple returns merge through a phi. *)

exception Cannot_inline of string

let func_size (f : Ir.func) =
  List.fold_left (fun n (b : Ir.block) -> n + List.length b.instrs) 0 f.blocks

(* Callees containing loops are not inlined: pulling a loop into the
   caller merges their speculative blast radii — one misspeculation in the
   merged function abandons speculation for everything that follows
   (the paper's "large functions" pitfall, §3), and real inliners avoid
   loop-into-loop inlining for locality reasons anyway. *)
let has_loops (f : Ir.func) = Loops.compute f <> []

(** Functions that (transitively) call themselves. *)
let recursive_functions (m : Ir.modul) =
  let callees_of f =
    List.concat_map
      (fun (b : Ir.block) ->
        List.filter_map
          (fun (i : Ir.instr) ->
            match i.op with Ir.Call c -> Some c.callee | _ -> None)
          b.instrs)
      f.Ir.blocks
  in
  let reach = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) -> Hashtbl.replace reach f.fname (callees_of f))
    m.funcs;
  let transitively_self name =
    let visited = Hashtbl.create 8 in
    let rec go n =
      if Hashtbl.mem visited n then false
      else begin
        Hashtbl.replace visited n ();
        match Hashtbl.find_opt reach n with
        | None -> false
        | Some cs -> List.exists (fun c -> c = name || go c) cs
      end
    in
    match Hashtbl.find_opt reach name with
    | None -> false
    | Some cs -> List.exists (fun c -> c = name || go c) cs
  in
  List.filter_map
    (fun (f : Ir.func) ->
      if transitively_self f.fname then Some f.fname else None)
    m.funcs

(** [inline_call f b call_i callee] expands the given call site in place.
    The callee must not contain speculative regions (inlining runs before
    the squeezer). *)
let inline_call (f : Ir.func) (b : Ir.block) (call_i : Ir.instr) (callee : Ir.func) =
  if callee.regions <> [] then raise (Cannot_inline "callee has regions");
  let args = match call_i.op with Ir.Call c -> c.args | _ -> assert false in
  (* 1. Split the call block. *)
  let rec split acc = function
    | [] -> raise (Cannot_inline "call not found in block")
    | (i : Ir.instr) :: rest when i.iid = call_i.iid -> (List.rev acc, rest)
    | i :: rest -> split (i :: acc) rest
  in
  let before, after = split [] b.instrs in
  let tail = Ir.insert_block_after f b (b.bname ^ ".tail") in
  tail.instrs <- after;
  b.instrs <- before;
  (* successors of the moved terminator now come from tail *)
  List.iter
    (fun succ ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.op with
          | Ir.Phi incoming ->
              i.op <-
                Ir.Phi
                  (List.map
                     (fun (p, v) -> ((if p = b.bid then tail.bid else p), v))
                     incoming)
          | _ -> ())
        (Ir.block f succ).instrs)
    (Ir.succs tail);
  (* 2. Clone the callee with a complete value map. *)
  let vmap : (int, Ir.operand) Hashtbl.t = Hashtbl.create 64 in
  let bmap : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (try
     List.iter2
       (fun (p : Ir.instr) arg -> Hashtbl.replace vmap p.iid arg)
       callee.param_instrs args
   with Invalid_argument _ -> raise (Cannot_inline "arity mismatch"));
  let clones =
    List.map
      (fun (cb : Ir.block) ->
        let nb =
          { Ir.bid = Ir.fresh_id f;
            bname = callee.fname ^ "." ^ cb.bname;
            instrs = [] }
        in
        Hashtbl.replace f.btbl nb.Ir.bid nb;
        Hashtbl.replace bmap cb.bid nb.Ir.bid;
        (cb, nb))
      callee.blocks
  in
  List.iter
    (fun ((cb : Ir.block), (nb : Ir.block)) ->
      nb.instrs <-
        List.map
          (fun (i : Ir.instr) ->
            let ni =
              { Ir.iid = Ir.fresh_id f; op = i.op; width = i.width;
                speculative = i.speculative; iname = i.iname; line = i.line }
            in
            Hashtbl.replace f.itbl ni.Ir.iid ni;
            Hashtbl.replace vmap i.iid (Ir.Var ni.Ir.iid);
            ni)
          cb.instrs)
    clones;
  let sub_operand = function
    | Ir.Var v -> (
        match Hashtbl.find_opt vmap v with
        | Some o -> o
        | None -> raise (Cannot_inline (Printf.sprintf "unmapped value %%%d" v)))
    | Ir.Const _ as o -> o
  in
  let sub_block t =
    match Hashtbl.find_opt bmap t with
    | Some t' -> t'
    | None -> raise (Cannot_inline "unmapped block")
  in
  List.iter
    (fun ((_ : Ir.block), (nb : Ir.block)) ->
      List.iter
        (fun (i : Ir.instr) ->
          Ir.map_operands sub_operand i;
          Ir.map_block_targets sub_block i)
        nb.instrs)
    clones;
  (* place clones between the split halves in layout order *)
  let clone_blocks = List.map snd clones in
  let rec insert = function
    | [] -> clone_blocks
    | (x : Ir.block) :: rest when x.bid = b.bid -> (x :: clone_blocks) @ rest
    | x :: rest -> x :: insert rest
  in
  f.blocks <-
    insert (List.filter (fun (x : Ir.block) -> not (List.memq x clone_blocks)) f.blocks);
  (* 3. Entry edge. *)
  let entry_clone = Hashtbl.find bmap (Ir.entry callee).bid in
  Ir.append_instr b (Ir.mk_instr f ~width:0 (Ir.Br entry_clone));
  (* 4. Returns become branches to the tail; collect returned values. *)
  let returns = ref [] in
  List.iter
    (fun (nb : Ir.block) ->
      match (Ir.terminator nb).op with
      | Ir.Ret v ->
          returns := (nb.Ir.bid, v) :: !returns;
          (Ir.terminator nb).op <- Ir.Br tail.Ir.bid
      | _ -> ())
    clone_blocks;
  (* 5. Merge the return value. *)
  (if Ir.has_result call_i then
     match !returns with
     | [] -> raise (Cannot_inline "callee never returns")
     | [ (_, Some v) ] -> Ir.replace_all_uses f ~old_id:call_i.iid ~by:v
     | rets ->
         let incoming =
           List.map
             (fun (bid, v) ->
               match v with
               | Some v -> (bid, v)
               | None -> raise (Cannot_inline "void return in non-void callee"))
             rets
         in
         let phi = Ir.mk_instr f ~name:(callee.fname ^ ".ret") ~width:call_i.width
             (Ir.Phi incoming) in
         tail.instrs <- phi :: tail.instrs;
         Ir.replace_all_uses f ~old_id:call_i.iid ~by:(Ir.Var phi.Ir.iid));
  (* call_i was dropped when b.instrs was rebuilt from [before] *)
  Hashtbl.remove f.itbl call_i.iid

(** One inlining sweep over [f]: expand every call to a function in
    [eligible] (bounded by the caller growing past [max_size]).  Returns
    the number of calls inlined. *)
let run_func (m : Ir.modul) (f : Ir.func) ~eligible ~max_size =
  let inlined = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let site =
      List.find_map
        (fun (b : Ir.block) ->
          List.find_map
            (fun (i : Ir.instr) ->
              match i.op with
              | Ir.Call c when List.mem c.callee eligible && c.callee <> f.fname -> (
                  match Ir.find_func m c.callee with
                  | Some callee
                    when func_size f + func_size callee <= max_size ->
                      Some (b, i, callee)
                  | _ -> None)
              | _ -> None)
            b.instrs)
        f.blocks
    in
    match site with
    | Some (b, i, callee) ->
        inline_call f b i callee;
        incr inlined;
        progress := true
    | None -> ()
  done;
  !inlined

(** Module-wide inlining driver: inlines non-recursive callees no larger
    than [max_callee_size], stopping when callers reach [max_size]. *)
let run (m : Ir.modul) ?(max_callee_size = 200) ?(max_size = 2000) () =
  let recursive = recursive_functions m in
  let eligible =
    List.filter_map
      (fun (f : Ir.func) ->
        if
          (not (List.mem f.fname recursive))
          && func_size f <= max_callee_size
          && not (has_loops f)
        then Some f.fname
        else None)
      m.funcs
  in
  List.fold_left
    (fun n f -> n + run_func m f ~eligible ~max_size)
    0 m.funcs
