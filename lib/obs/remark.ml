(* Optimisation remarks: structured records of what a pass did (or
   declined to do) to a named variable, tied back to the source line.
   Passes push remarks into a sink supplied by the driver; the driver
   stores the per-compile list so output is canonical and identical
   at any --jobs level (remarks are never streamed from workers). *)

type kind =
  | Squeezed of int * int  (* from-width, to-width *)
  | Rejected of string  (* reason *)
  | Compare_elim of bool  (* compare folded to this constant *)
  | Elided_mask

type t = { pass : string; kind : kind; fn : string; var : string; line : int }

type sink = t -> unit

let squeezed ~fn ~var ~line ~from_ ~to_ =
  { pass = "squeezer"; kind = Squeezed (from_, to_); fn; var; line }

let rejected ~fn ~var ~line reason =
  { pass = "squeezer"; kind = Rejected reason; fn; var; line }

let compare_elim ~fn ~var ~line value =
  { pass = "compare-elim"; kind = Compare_elim value; fn; var; line }

let elided_mask ~fn ~var ~line =
  { pass = "bitmask-elide"; kind = Elided_mask; fn; var; line }

let at fn line = if line > 0 then Printf.sprintf "%s:%d" fn line else fn

let to_string r =
  match r.kind with
  | Squeezed (w0, w1) ->
      Printf.sprintf "squeezed %s: i%d -> i%d at %s" r.var w0 w1
        (at r.fn r.line)
  | Rejected reason ->
      Printf.sprintf "rejected %s: %s at %s" r.var reason (at r.fn r.line)
  | Compare_elim v ->
      Printf.sprintf "eliminated compare %s: always %b at %s" r.var v
        (at r.fn r.line)
  | Elided_mask ->
      Printf.sprintf "elided mask %s at %s" r.var (at r.fn r.line)

(* Canonical order: by function, then source line, then pass/text, so
   printed remark streams are stable across compile orderings. *)
let compare a b =
  let c = String.compare a.fn b.fn in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare a.pass b.pass in
      if c <> 0 then c else String.compare (to_string a) (to_string b)
