(** Domain-safe metrics registry.

    Counters and gauges are lock-free atomics; histograms are
    log-bucketed latency accumulators (floor 1 µs, ratio 2{^1/4},
    121 finite buckets + overflow) with exact count/sum/max and
    rank-statistic quantile estimation that is never below the true
    quantile and at most one bucket ratio above it.

    Metrics are get-or-create: calling a constructor twice with the
    same name and labels returns the same underlying cell, so modules
    can register their instruments at init time in top-level bindings
    — which also makes the registry contents (and hence the snapshot
    shape) independent of which code paths happened to fire.

    [snapshot_json] serialises the registry sorted by (name, labels)
    into four sections: ["counters"] and ["gauges"] hold only metrics
    whose values are deterministic for a given workload, ["volatile"]
    holds scalar metrics registered with [~volatile:true] (rates,
    scheduling-dependent counts), and ["histograms"] holds every
    histogram (latencies are inherently run-dependent).  The first two
    sections are byte-identical across [--jobs] settings for the same
    scripted request mix; CI compares them with [cmp]. *)

type counter
type gauge
type histogram

val counter :
  ?labels:(string * string) list -> ?volatile:bool -> string -> counter
(** Get or create.  Raises [Invalid_argument] if the (name, labels)
    pair is already registered with a different kind. *)

val gauge :
  ?labels:(string * string) list -> ?volatile:bool -> string -> gauge

val histogram :
  ?labels:(string * string) list -> ?volatile:bool -> string -> histogram

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one sample.  Negative and NaN samples are clamped to 0. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_max : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for q in [0,1]: upper bound of the bucket holding
    the ceil(q·count)-th smallest sample, clamped to the observed max;
    0 when empty.  Guarantees exact ≤ estimate ≤ exact·[bucket_ratio]
    for in-range samples. *)

val bucket_floor : float
(** Upper bound of the first bucket (1 µs as milliseconds). *)

val bucket_ratio : float
(** Geometric spacing between consecutive bucket bounds, 2{^1/4}. *)

val bucket_bound : float -> float
(** Upper bound of the bucket that would count the sample, [infinity]
    for the overflow bucket. *)

val reset : unit -> unit
(** Zero every value.  Registered metric objects are kept — handles
    held in top-level closures remain valid. *)

val snapshot_json : unit -> Bs_support.Jsonx.t
(** Registry snapshot, sections ["counters"]/["gauges"]/["volatile"]/
    ["histograms"], each sorted by (name, labels).  Refreshes the
    [trace_dropped_events] gauge from {!Trace.dropped} first. *)

val prometheus : unit -> string
(** Prometheus text exposition: one [# TYPE] line per metric name,
    sparse cumulative histogram buckets plus [+Inf], [_sum] and
    [_count] series. *)
