(* Span/trace layer: hierarchical begin/end spans with an injectable
   monotonic clock, collected into a process-global buffer and emitted
   as Chrome trace-event JSON (loadable in chrome://tracing or
   Perfetto) plus a human-readable per-phase timing table.

   Tracing is off by default and [with_span] costs one load of an
   atomic flag when disabled, so instrumentation can stay in hot
   paths.  Workers run in separate domains; the buffer is guarded by a
   mutex and every event is tagged with the emitting domain's id so a
   trace shows actual pool occupancy.

   The buffer is bounded: once [cap] events are recorded, further
   events are counted in [dropped] instead of stored, so a
   long-running serve session with --trace cannot grow memory without
   limit.  Requests are stitched across domains with Chrome flow
   events (S/T/F) carrying a flow id, and [with_context] installs
   per-domain key/value pairs (e.g. a request id) that are appended to
   the args of every event the domain emits while the context is
   active. *)

type phase = B | E | I | S | T | F

type event = {
  name : string;
  ph : phase;
  ts : float; (* seconds, from the active clock *)
  tid : int;
  args : (string * string) list;
  flow : int option; (* flow id for S/T/F events *)
}

let enabled = Atomic.make false
let lock = Mutex.create ()

(* Buffer is kept in reverse emission order; [events] re-reverses.
   [count] mirrors its length (guarded by [lock]) so the cap check is
   O(1). *)
let buf : event list ref = ref []
let count = ref 0
let clock : (unit -> float) ref = ref Unix.gettimeofday
let default_cap = 262_144
let cap = Atomic.make default_cap
let dropped_n = Atomic.make 0

let is_enabled () = Atomic.get enabled
let set_cap n = Atomic.set cap (max 1 n)
let dropped () = Atomic.get dropped_n

let enable ?clock:(c = Unix.gettimeofday) () =
  Mutex.lock lock;
  clock := c;
  buf := [];
  count := 0;
  Mutex.unlock lock;
  Atomic.set dropped_n 0;
  Atomic.set enabled true

let disable () = Atomic.set enabled false

let reset () =
  Atomic.set enabled false;
  Mutex.lock lock;
  buf := [];
  count := 0;
  clock := Unix.gettimeofday;
  Mutex.unlock lock;
  Atomic.set dropped_n 0;
  Atomic.set cap default_cap

let tid () = (Domain.self () :> int)

(* Per-domain ambient context, appended to every emitted event's args.
   Worker domains inherit nothing from their parent: a context is
   installed around the work a domain performs, not at spawn time. *)
let ctx_key : (string * string) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let with_context kvs f =
  let old = Domain.DLS.get ctx_key in
  Domain.DLS.set ctx_key (old @ kvs);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key old) f

let push ev =
  Mutex.lock lock;
  if !count >= Atomic.get cap then begin
    Mutex.unlock lock;
    Atomic.incr dropped_n
  end
  else begin
    buf := ev :: !buf;
    incr count;
    Mutex.unlock lock
  end

let emit ?flow ph ?(args = []) name =
  if Atomic.get enabled then
    let args =
      match Domain.DLS.get ctx_key with [] -> args | ctx -> args @ ctx
    in
    push { name; ph; ts = !clock (); tid = tid (); args; flow }

let instant ?args name = emit I ?args name
let flow_start ?args ~id name = emit ~flow:id S ?args name
let flow_step ?args ~id name = emit ~flow:id T ?args name
let flow_end ?args ~id name = emit ~flow:id F ?args name

let with_span ?args name f =
  if not (Atomic.get enabled) then f ()
  else begin
    emit B ?args name;
    Fun.protect ~finally:(fun () -> emit E name) f
  end

let events () = List.rev !buf

(* ---- Chrome trace-event JSON ------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let phase_letter = function
  | B -> "B"
  | E -> "E"
  | I -> "i"
  | S -> "s"
  | T -> "t"
  | F -> "f"

(* Timestamps are rebased to the earliest event so traces start at
   t=0 regardless of the clock's epoch. *)
let write_event out ~t0 ev =
  let us = (ev.ts -. t0) *. 1e6 in
  Buffer.add_string out
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
       (json_escape ev.name) (phase_letter ev.ph) us ev.tid);
  (match ev.flow with
  | None -> ()
  | Some id ->
      Buffer.add_string out (Printf.sprintf ",\"cat\":\"flow\",\"id\":%d" id);
      if ev.ph = F then Buffer.add_string out ",\"bp\":\"e\"");
  (match ev.args with
  | [] -> ()
  | args ->
      Buffer.add_string out ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char out ',';
          Buffer.add_string out
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        args;
      Buffer.add_char out '}');
  Buffer.add_char out '}'

let to_chrome_json () =
  let evs = events () in
  let t0 = match evs with [] -> 0.0 | ev :: _ -> ev.ts in
  let out = Buffer.create 4096 in
  Buffer.add_string out "{\"traceEvents\":[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string out ",\n";
      write_event out ~t0 ev)
    evs;
  Buffer.add_string out "\n]}\n";
  Buffer.contents out

let write_chrome file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))

(* ---- Per-phase timing table -------------------------------------- *)

(* Fold balanced B/E pairs into (name, total seconds, count), using a
   per-tid stack so nested and cross-domain spans aggregate
   correctly.  Rows come out in first-begin order. *)
let phase_table () =
  let stacks : (int, (string * float) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let totals : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  List.iter
    (fun ev ->
      let st = stack_of ev.tid in
      match ev.ph with
      | B ->
          if not (Hashtbl.mem totals ev.name) then begin
            Hashtbl.add totals ev.name (ref 0.0, ref 0);
            order := ev.name :: !order
          end;
          st := (ev.name, ev.ts) :: !st
      | E -> (
          match !st with
          | (name, t0) :: rest when name = ev.name ->
              st := rest;
              let dt, n = Hashtbl.find totals name in
              dt := !dt +. (ev.ts -. t0);
              incr n
          | _ -> () (* unbalanced: ignore rather than crash *))
      | I | S | T | F -> ())
    (events ());
  List.rev_map
    (fun name ->
      let dt, n = Hashtbl.find totals name in
      (name, !dt, !n))
    !order

let pp_phase_table ppf () =
  let rows = phase_table () in
  if rows <> [] then begin
    let w =
      List.fold_left (fun acc (n, _, _) -> max acc (String.length n)) 5 rows
    in
    Format.fprintf ppf "%-*s %10s %6s@." w "phase" "total-ms" "count";
    List.iter
      (fun (name, dt, n) ->
        Format.fprintf ppf "%-*s %10.3f %6d@." w name (dt *. 1e3) n)
      rows
  end;
  let d = dropped () in
  if d > 0 then Format.fprintf ppf "(buffer full: %d events dropped)@." d
