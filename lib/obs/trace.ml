(* Span/trace layer: hierarchical begin/end spans with an injectable
   monotonic clock, collected into a process-global buffer and emitted
   as Chrome trace-event JSON (loadable in chrome://tracing or
   Perfetto) plus a human-readable per-phase timing table.

   Tracing is off by default and [with_span] costs one load of an
   atomic flag when disabled, so instrumentation can stay in hot
   paths.  Workers run in separate domains; the buffer is guarded by a
   mutex and every event is tagged with the emitting domain's id so a
   trace shows actual pool occupancy. *)

type phase = B | E | I

type event = {
  name : string;
  ph : phase;
  ts : float; (* seconds, from the active clock *)
  tid : int;
  args : (string * string) list;
}

let enabled = Atomic.make false
let lock = Mutex.create ()

(* Buffer is kept in reverse emission order; [events] re-reverses. *)
let buf : event list ref = ref []
let clock : (unit -> float) ref = ref Unix.gettimeofday

let is_enabled () = Atomic.get enabled

let enable ?clock:(c = Unix.gettimeofday) () =
  Mutex.lock lock;
  clock := c;
  buf := [];
  Mutex.unlock lock;
  Atomic.set enabled true

let disable () = Atomic.set enabled false

let reset () =
  Atomic.set enabled false;
  Mutex.lock lock;
  buf := [];
  clock := Unix.gettimeofday;
  Mutex.unlock lock

let tid () = (Domain.self () :> int)

let push ev =
  Mutex.lock lock;
  buf := ev :: !buf;
  Mutex.unlock lock

let emit ph ?(args = []) name =
  if Atomic.get enabled then
    push { name; ph; ts = !clock (); tid = tid (); args }

let instant ?args name = emit I ?args name

let with_span ?args name f =
  if not (Atomic.get enabled) then f ()
  else begin
    emit B ?args name;
    Fun.protect ~finally:(fun () -> emit E name) f
  end

let events () = List.rev !buf

(* ---- Chrome trace-event JSON ------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let phase_letter = function B -> "B" | E -> "E" | I -> "i"

(* Timestamps are rebased to the earliest event so traces start at
   t=0 regardless of the clock's epoch. *)
let write_event out ~t0 ev =
  let us = (ev.ts -. t0) *. 1e6 in
  Buffer.add_string out
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
       (json_escape ev.name) (phase_letter ev.ph) us ev.tid);
  (match ev.args with
  | [] -> ()
  | args ->
      Buffer.add_string out ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char out ',';
          Buffer.add_string out
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        args;
      Buffer.add_char out '}');
  Buffer.add_char out '}'

let to_chrome_json () =
  let evs = events () in
  let t0 = match evs with [] -> 0.0 | ev :: _ -> ev.ts in
  let out = Buffer.create 4096 in
  Buffer.add_string out "{\"traceEvents\":[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string out ",\n";
      write_event out ~t0 ev)
    evs;
  Buffer.add_string out "\n]}\n";
  Buffer.contents out

let write_chrome file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))

(* ---- Per-phase timing table -------------------------------------- *)

(* Fold balanced B/E pairs into (name, total seconds, count), using a
   per-tid stack so nested and cross-domain spans aggregate
   correctly.  Rows come out in first-begin order. *)
let phase_table () =
  let stacks : (int, (string * float) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let totals : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  List.iter
    (fun ev ->
      let st = stack_of ev.tid in
      match ev.ph with
      | B ->
          if not (Hashtbl.mem totals ev.name) then begin
            Hashtbl.add totals ev.name (ref 0.0, ref 0);
            order := ev.name :: !order
          end;
          st := (ev.name, ev.ts) :: !st
      | E -> (
          match !st with
          | (name, t0) :: rest when name = ev.name ->
              st := rest;
              let dt, n = Hashtbl.find totals name in
              dt := !dt +. (ev.ts -. t0);
              incr n
          | _ -> () (* unbalanced: ignore rather than crash *))
      | I -> ())
    (events ());
  List.rev_map
    (fun name ->
      let dt, n = Hashtbl.find totals name in
      (name, !dt, !n))
    !order

let pp_phase_table ppf () =
  let rows = phase_table () in
  if rows <> [] then begin
    let w =
      List.fold_left (fun acc (n, _, _) -> max acc (String.length n)) 5 rows
    in
    Format.fprintf ppf "%-*s %10s %6s@." w "phase" "total-ms" "count";
    List.iter
      (fun (name, dt, n) ->
        Format.fprintf ppf "%-*s %10.3f %6d@." w name (dt *. 1e3) n)
      rows
  end
