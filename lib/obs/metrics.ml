(* Domain-safe metrics registry: counters, gauges and log-bucketed
   latency histograms, named and optionally labeled, with a snapshot
   serialiser whose output ordering is deterministic (sorted by name
   then label string) so two runs that perform the same work produce
   byte-identical snapshot sections.

   Counters are [int Atomic.t] (exact under concurrent increment);
   gauges are [float Atomic.t] with a CAS loop for [add_gauge];
   histograms take a per-histogram mutex on [observe] — the service
   observes one latency per request, so contention is negligible.

   Metrics whose values legitimately differ between runs of the same
   workload (rates, MIPS, coalesce counts that depend on scheduling)
   are registered with [~volatile:true] and serialised into a separate
   snapshot section, so the deterministic sections can be compared
   byte-for-byte across --jobs settings. *)

module Jsonx = Bs_support.Jsonx

(* ---- histogram bucketing ----------------------------------------- *)

(* Log-spaced bucket upper bounds: floor 1 µs (0.001 ms), ratio
   2^(1/4) ≈ 1.19, 121 finite bounds (top ≈ 1.07e6 ms ≈ 18 min), plus
   one overflow bucket.  A quantile estimate is the upper bound of the
   bucket holding the rank statistic, clamped to the observed max, so
   exact ≤ estimate ≤ exact·ratio always holds for in-range values. *)
let bucket_floor = 0.001
let bucket_ratio = Float.pow 2.0 0.25
let finite_buckets = 121
let total_buckets = finite_buckets + 1

let bounds =
  Array.init finite_buckets (fun i ->
      bucket_floor *. Float.pow bucket_ratio (float_of_int i))

(* Index of the bucket that counts [v]: smallest i with v <= bounds.(i),
   or the overflow index when v exceeds the top finite bound. *)
let bucket_of v =
  if v <= bounds.(0) then 0
  else if v > bounds.(finite_buckets - 1) then finite_buckets
  else begin
    let lo = ref 0 and hi = ref (finite_buckets - 1) in
    (* invariant: bounds.(!lo) < v <= bounds.(!hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let bucket_bound v =
  let i = bucket_of v in
  if i >= finite_buckets then infinity else bounds.(i)

(* ---- registry ----------------------------------------------------- *)

type hstate = {
  hlock : Mutex.t;
  hbuckets : int array; (* total_buckets cells *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmax : float;
}

type value = C of int Atomic.t | G of float Atomic.t | H of hstate

type metric = {
  m_name : string;
  m_labels : (string * string) list;
  m_key : string; (* name ^ "|" ^ rendered labels: registry + sort key *)
  m_label_str : string;
  m_volatile : bool;
  m_value : value;
}

type counter = metric
type gauge = metric
type histogram = metric

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_lock = Mutex.create ()

let label_str labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register ?(labels = []) ?(volatile = false) name mk =
  let ls = label_str labels in
  let key = name ^ "|" ^ ls in
  Mutex.lock reg_lock;
  let m =
    match Hashtbl.find_opt registry key with
    | Some m -> m
    | None ->
        let m =
          { m_name = name;
            m_labels = labels;
            m_key = key;
            m_label_str = ls;
            m_volatile = volatile;
            m_value = mk () }
        in
        Hashtbl.add registry key m;
        m
  in
  Mutex.unlock reg_lock;
  m

let counter ?labels ?volatile name =
  let m = register ?labels ?volatile name (fun () -> C (Atomic.make 0)) in
  match m.m_value with
  | C _ -> m
  | v -> invalid_arg ("Metrics.counter: " ^ name ^ " is a " ^ kind_name v)

let gauge ?labels ?volatile name =
  let m = register ?labels ?volatile name (fun () -> G (Atomic.make 0.0)) in
  match m.m_value with
  | G _ -> m
  | v -> invalid_arg ("Metrics.gauge: " ^ name ^ " is a " ^ kind_name v)

let histogram ?labels ?volatile name =
  let m =
    register ?labels ?volatile name (fun () ->
        H
          { hlock = Mutex.create ();
            hbuckets = Array.make total_buckets 0;
            hcount = 0;
            hsum = 0.0;
            hmax = 0.0 })
  in
  match m.m_value with
  | H _ -> m
  | v -> invalid_arg ("Metrics.histogram: " ^ name ^ " is a " ^ kind_name v)

(* ---- operations ---------------------------------------------------- *)

let as_counter m =
  match m.m_value with C c -> c | _ -> assert false

let as_gauge m = match m.m_value with G g -> g | _ -> assert false
let as_histo m = match m.m_value with H h -> h | _ -> assert false

let inc ?(by = 1) m = ignore (Atomic.fetch_and_add (as_counter m) by)
let counter_value m = Atomic.get (as_counter m)
let set_gauge m v = Atomic.set (as_gauge m) v

let add_gauge m dv =
  let g = as_gauge m in
  let rec go () =
    let cur = Atomic.get g in
    if not (Atomic.compare_and_set g cur (cur +. dv)) then go ()
  in
  go ()

let gauge_value m = Atomic.get (as_gauge m)

let observe m v =
  let h = as_histo m in
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  Mutex.lock h.hlock;
  h.hbuckets.(bucket_of v) <- h.hbuckets.(bucket_of v) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v;
  if v > h.hmax then h.hmax <- v;
  Mutex.unlock h.hlock

let histogram_count m = (as_histo m).hcount
let histogram_sum m = (as_histo m).hsum
let histogram_max m = (as_histo m).hmax

(* Rank statistic over the buckets: the value returned is the upper
   bound of the bucket containing the ceil(q·count)-th smallest
   observation, clamped to the observed max.  Never below the true
   quantile; at most one bucket ratio above it. *)
let quantile_of_hstate h q =
  if h.hcount = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.hcount)) in
      max 1 (min h.hcount r)
    in
    let i = ref 0 and cum = ref h.hbuckets.(0) in
    while !cum < rank do
      incr i;
      cum := !cum + h.hbuckets.(!i)
    done;
    if !i >= finite_buckets then h.hmax else Float.min bounds.(!i) h.hmax
  end

let quantile m q =
  let h = as_histo m in
  Mutex.lock h.hlock;
  let r = quantile_of_hstate h q in
  Mutex.unlock h.hlock;
  r

(* ---- lifecycle ----------------------------------------------------- *)

(* Zero every value but keep the registered metric objects: handles are
   held in top-level closures throughout the codebase and must stay
   valid across Server restarts in one process (tests, bench). *)
let reset () =
  Mutex.lock reg_lock;
  Hashtbl.iter
    (fun _ m ->
      match m.m_value with
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g 0.0
      | H h ->
          Mutex.lock h.hlock;
          Array.fill h.hbuckets 0 total_buckets 0;
          h.hcount <- 0;
          h.hsum <- 0.0;
          h.hmax <- 0.0;
          Mutex.unlock h.hlock)
    registry;
  Mutex.unlock reg_lock

(* ---- snapshot ------------------------------------------------------ *)

let trace_dropped = gauge "trace_dropped_events"

let sorted_metrics () =
  Mutex.lock reg_lock;
  let ms = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock reg_lock;
  List.sort (fun a b -> compare a.m_key b.m_key) ms

let scalar_json m =
  let value =
    match m.m_value with
    | C c -> Jsonx.int (Atomic.get c)
    | G g -> Jsonx.Num (Atomic.get g)
    | H _ -> assert false
  in
  Jsonx.Obj
    [ ("name", Jsonx.Str m.m_name);
      ("labels", Jsonx.Str m.m_label_str);
      ("value", value) ]

let histo_json m =
  let h = as_histo m in
  Mutex.lock h.hlock;
  let count = h.hcount and sum = h.hsum and hmax = h.hmax in
  let p50 = quantile_of_hstate h 0.50
  and p90 = quantile_of_hstate h 0.90
  and p99 = quantile_of_hstate h 0.99 in
  let cells = ref [] in
  for i = total_buckets - 1 downto 0 do
    if h.hbuckets.(i) > 0 then
      let le =
        if i >= finite_buckets then Jsonx.Str "+Inf" else Jsonx.Num bounds.(i)
      in
      cells :=
        Jsonx.Obj [ ("le", le); ("n", Jsonx.int h.hbuckets.(i)) ] :: !cells
  done;
  Mutex.unlock h.hlock;
  Jsonx.Obj
    [ ("name", Jsonx.Str m.m_name);
      ("labels", Jsonx.Str m.m_label_str);
      ("count", Jsonx.int count);
      ("sum", Jsonx.Num sum);
      ("max", Jsonx.Num hmax);
      ("p50", Jsonx.Num p50);
      ("p90", Jsonx.Num p90);
      ("p99", Jsonx.Num p99);
      ("buckets", Jsonx.Arr !cells) ]

let snapshot_json () =
  set_gauge trace_dropped (float_of_int (Trace.dropped ()));
  let ms = sorted_metrics () in
  let counters = ref [] and gauges = ref [] in
  let volatiles = ref [] and histos = ref [] in
  List.iter
    (fun m ->
      match m.m_value with
      | H _ -> histos := histo_json m :: !histos
      | C _ | G _ ->
          let cell = scalar_json m in
          if m.m_volatile then volatiles := cell :: !volatiles
          else if (match m.m_value with C _ -> true | _ -> false) then
            counters := cell :: !counters
          else gauges := cell :: !gauges)
    ms;
  Jsonx.Obj
    [ ("counters", Jsonx.Arr (List.rev !counters));
      ("gauges", Jsonx.Arr (List.rev !gauges));
      ("volatile", Jsonx.Arr (List.rev !volatiles));
      ("histograms", Jsonx.Arr (List.rev !histos)) ]

(* ---- Prometheus text exposition ------------------------------------ *)

let prom_escape s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels ?extra labels =
  let labels =
    match extra with None -> labels | Some kv -> labels @ [ kv ]
  in
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
             labels)
      ^ "}"

let prom_num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prometheus () =
  set_gauge trace_dropped (float_of_int (Trace.dropped ()));
  let ms = sorted_metrics () in
  let b = Buffer.create 4096 in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if not (Hashtbl.mem typed m.m_name) then begin
        Hashtbl.add typed m.m_name ();
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" m.m_name (kind_name m.m_value))
      end;
      match m.m_value with
      | C c ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" m.m_name (prom_labels m.m_labels)
               (Atomic.get c))
      | G g ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" m.m_name (prom_labels m.m_labels)
               (prom_num (Atomic.get g)))
      | H h ->
          Mutex.lock h.hlock;
          let cum = ref 0 in
          for i = 0 to finite_buckets - 1 do
            if h.hbuckets.(i) > 0 then begin
              cum := !cum + h.hbuckets.(i);
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" m.m_name
                   (prom_labels ~extra:("le", prom_num bounds.(i)) m.m_labels)
                   !cum)
            end
          done;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" m.m_name
               (prom_labels ~extra:("le", "+Inf") m.m_labels)
               h.hcount);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" m.m_name (prom_labels m.m_labels)
               (prom_num h.hsum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" m.m_name
               (prom_labels m.m_labels) h.hcount);
          Mutex.unlock h.hlock)
    ms;
  Buffer.contents b
