(** Structured optimisation remarks.

    Passes report per-variable decisions (squeezed, rejected,
    compare-eliminated, mask-elided) through a [sink]; the driver
    collects them per compile and prints them in canonical order. *)

type kind =
  | Squeezed of int * int  (** from-width, to-width *)
  | Rejected of string  (** reason the squeezer gave up *)
  | Compare_elim of bool  (** compare folded to this constant *)
  | Elided_mask

type t = { pass : string; kind : kind; fn : string; var : string; line : int }

type sink = t -> unit

val squeezed : fn:string -> var:string -> line:int -> from_:int -> to_:int -> t
val rejected : fn:string -> var:string -> line:int -> string -> t
val compare_elim : fn:string -> var:string -> line:int -> bool -> t
val elided_mask : fn:string -> var:string -> line:int -> t

val to_string : t -> string
(** e.g. ["squeezed x: i32 -> i8 at kernel:12"]. *)

val compare : t -> t -> int
(** Canonical order: function, then line, then pass and text. *)
