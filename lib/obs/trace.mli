(** Span/trace layer.

    Off by default; when enabled, [with_span] brackets a computation
    with begin/end events carrying the emitting domain's id, suitable
    for Chrome trace-event JSON ([write_chrome]) and a per-phase
    timing table ([phase_table]).  The clock is injectable so tests
    can drive deterministic timestamps.

    The buffer is bounded ([set_cap], default 262144 events); events
    past the cap are counted in [dropped] instead of stored.  Flow
    events (S/T/F + flow id) stitch one logical request across domain
    tids, and [with_context] installs per-domain args (e.g. a request
    id) appended to every event emitted while active. *)

type phase = B | E | I | S | T | F

type event = {
  name : string;
  ph : phase;
  ts : float;  (** seconds, from the active clock *)
  tid : int;  (** emitting domain id *)
  args : (string * string) list;
  flow : int option;  (** flow id for S/T/F events *)
}

val is_enabled : unit -> bool

val enable : ?clock:(unit -> float) -> unit -> unit
(** Clear the buffer and dropped count, install [clock] (default
    [Unix.gettimeofday]) and start recording. *)

val disable : unit -> unit
(** Stop recording; the buffer is kept for inspection/serialisation. *)

val reset : unit -> unit
(** Stop recording, clear the buffer, restore the default clock and
    cap, zero the dropped count. *)

val set_cap : int -> unit
(** Maximum buffered events; further events are dropped (counted). *)

val dropped : unit -> int
(** Events dropped since the last [enable]/[reset]. *)

val with_context : (string * string) list -> (unit -> 'a) -> 'a
(** [with_context kvs f] appends [kvs] to the args of every event this
    domain emits during [f].  Nests; restored on exit or raise.
    Per-domain: other domains (and threads scheduled on them) are
    unaffected. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] bracketed by B/E events.  The end
    event is emitted even if [f] raises.  When tracing is disabled
    the cost is a single atomic load. *)

val instant : ?args:(string * string) list -> string -> unit
(** Emit a single instant event. *)

val flow_start : ?args:(string * string) list -> id:int -> string -> unit
val flow_step : ?args:(string * string) list -> id:int -> string -> unit

val flow_end : ?args:(string * string) list -> id:int -> string -> unit
(** Chrome flow events: [flow_start] at the producer, [flow_step] at
    each hand-off, [flow_end] at the consumer, all with the same [id];
    viewers draw arrows between the enclosing slices. *)

val events : unit -> event list
(** Recorded events in emission order. *)

val to_chrome_json : unit -> string

val write_chrome : string -> unit
(** Write the buffer as Chrome trace-event JSON (one event per line,
    timestamps rebased to the first event). *)

val phase_table : unit -> (string * float * int) list
(** Aggregate balanced B/E pairs: (name, total seconds, count), in
    first-begin order. *)

val pp_phase_table : Format.formatter -> unit -> unit
(** The phase table plus a trailing line reporting dropped events when
    the buffer cap was hit. *)
