(** Span/trace layer.

    Off by default; when enabled, [with_span] brackets a computation
    with begin/end events carrying the emitting domain's id, suitable
    for Chrome trace-event JSON ([write_chrome]) and a per-phase
    timing table ([phase_table]).  The clock is injectable so tests
    can drive deterministic timestamps. *)

type phase = B | E | I

type event = {
  name : string;
  ph : phase;
  ts : float;  (** seconds, from the active clock *)
  tid : int;  (** emitting domain id *)
  args : (string * string) list;
}

val is_enabled : unit -> bool

val enable : ?clock:(unit -> float) -> unit -> unit
(** Clear the buffer, install [clock] (default [Unix.gettimeofday])
    and start recording. *)

val disable : unit -> unit
(** Stop recording; the buffer is kept for inspection/serialisation. *)

val reset : unit -> unit
(** Stop recording, clear the buffer, restore the default clock. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] bracketed by B/E events.  The end
    event is emitted even if [f] raises.  When tracing is disabled
    the cost is a single atomic load. *)

val instant : ?args:(string * string) list -> string -> unit
(** Emit a single instant event. *)

val events : unit -> event list
(** Recorded events in emission order. *)

val to_chrome_json : unit -> string

val write_chrome : string -> unit
(** Write the buffer as Chrome trace-event JSON (one event per line,
    timestamps rebased to the first event). *)

val phase_table : unit -> (string * float * int) list
(** Aggregate balanced B/E pairs: (name, total seconds, count), in
    first-begin order. *)

val pp_phase_table : Format.formatter -> unit -> unit
