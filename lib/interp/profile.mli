(** Bitwidth profiling data (§3.2.2).

    For each SIR variable — identified by function name and defining
    instruction id — the profiler tracks minimum, maximum and mean
    RequiredBits over all dynamic assignments, from which the MAX / AVG /
    MIN target heuristics derive.  Module-wide histograms of dynamic
    integer instructions by required and programmer-selected bits
    regenerate Figure 1. *)

type heuristic = Hmax | Havg | Hmin

val heuristic_name : heuristic -> string

type var_stats = {
  mutable s_min : int;
  mutable s_max : int;
  mutable s_sum : int;
  mutable s_count : int;  (** dynamic assignments observed *)
}

type t = {
  funcs : (string, (int, var_stats) Hashtbl.t) Hashtbl.t;
      (** per-function variable tables, keyed by defining instruction id *)
  req_hist : int array;   (** by RequiredBits class: 8/16/32/64 *)
  prog_hist : int array;  (** by programmer-selected width class *)
}

val classes : int array
(** The hardware width classes: [| 8; 16; 32; 64 |]. *)

val class_index : int -> int

val create : unit -> t

type cursor
(** A per-function recording handle: resolves the function-name half of
    the variable key once, so each dynamic assignment costs only an
    int-keyed table update.  Hoist one out of any per-step loop. *)

val cursor : t -> func:string -> cursor

val record_at : cursor -> iid:int -> width:int -> int64 -> unit
(** Log one dynamic assignment through a cursor (the hot path). *)

val slot : cursor -> iid:int -> width:int -> int64 -> unit
(** [slot c ~iid ~width] partially applies {!record_at}: the returned
    closure logs assignments of one fixed variable.  Everything but the
    value — the width class and (lazily, on first use) the stats cell —
    is resolved up front, so callers that know the variable statically
    (the closure-compiled interpreter) can hoist the lookups out of the
    execution loop.  Building a slot alone records nothing. *)

val record : t -> func:string -> iid:int -> width:int -> int64 -> unit
(** Log one dynamic assignment. *)

val stats : t -> func:string -> iid:int -> var_stats option

val iter_vars :
  t -> (func:string -> iid:int -> var_stats -> unit) -> unit
(** Iterate every profiled variable (order unspecified). *)

val target : t -> heuristic -> func:string -> iid:int -> int option
(** T(v) under the heuristic as a hardware class, or [None] if the
    variable was never assigned during profiling. *)

val dyn_count : t -> func:string -> iid:int -> int

val required_distribution : t -> float array
(** Figure 1a: fractions of dynamic integer instructions per
    required-bits class. *)

val programmer_distribution : t -> float array
(** Figure 1b. *)

val heuristic_distribution : t -> heuristic -> float array
(** Figure 5. *)

val selection_distribution :
  t -> select:(func:string -> iid:int -> int) -> float array
(** Figures 1c/1d: distribution under an arbitrary per-variable
    selection. *)
