open Bs_ir

(* Flat little-endian memory image shared by the IR interpreter and the
   machine simulator.  Globals are laid out from [globals_base] upward;
   the stack grows down from the top. *)

exception Fault of string

type t = {
  bytes : Bytes.t;
  layout : (string, int) Hashtbl.t;   (* global name -> address *)
  globals_end : int;
}

let globals_base = 0x1000

let align a n = (n + a - 1) / a * a

(** [create ?size m] lays out the globals of [m] and returns a zeroed
    memory image with initialisers applied. *)
let create ?(size = 8 * 1024 * 1024) (m : Ir.modul) =
  let layout = Hashtbl.create 16 in
  let cursor = ref globals_base in
  List.iter
    (fun (g : Ir.global) ->
      let esz = max 1 (g.elem_width / 8) in
      cursor := align esz !cursor;
      Hashtbl.replace layout g.gname !cursor;
      cursor := !cursor + (esz * g.count))
    m.globals;
  let t =
    { bytes = Bytes.make size '\000'; layout; globals_end = !cursor }
  in
  if !cursor >= size then raise (Fault "memory too small for globals");
  (* Apply initialisers. *)
  List.iter
    (fun (g : Ir.global) ->
      let base = Hashtbl.find layout g.gname in
      let esz = max 1 (g.elem_width / 8) in
      Array.iteri
        (fun i v ->
          let addr = base + (i * esz) in
          for b = 0 to esz - 1 do
            Bytes.set t.bytes (addr + b)
              (Char.chr
                 (Int64.to_int
                    (Int64.logand
                       (Int64.shift_right_logical v (8 * b))
                       0xFFL)))
          done)
        g.ginit)
    m.globals;
  t

let size t = Bytes.length t.bytes

let addr_of t name =
  match Hashtbl.find_opt t.layout name with
  | Some a -> a
  | None -> raise (Fault ("unknown global " ^ name))

let check t addr width =
  let bytes = max 1 (width / 8) in
  if addr < 0 || addr + bytes > Bytes.length t.bytes then
    raise (Fault (Printf.sprintf "out-of-bounds access at 0x%x (i%d)" addr width))

(** [read t ~width addr] loads a [width]-bit little-endian value. *)
let read t ~width addr =
  check t addr width;
  let n = max 1 (width / 8) in
  let v = ref 0L in
  for b = n - 1 downto 0 do
    v :=
      Int64.logor
        (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get t.bytes (addr + b))))
  done;
  Width.trunc width !v

(** [write t ~width addr v] stores a [width]-bit little-endian value. *)
let write t ~width addr v =
  check t addr width;
  let n = max 1 (width / 8) in
  for b = 0 to n - 1 do
    Bytes.set t.bytes (addr + b)
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * b)) 0xFFL)))
  done

(* Unboxed accessors for the machine simulator's 8/16/32-bit traffic:
   plain-int reads and writes keep its load/store path free of Int64
   allocation.  Wider (or odd-width) accesses fall back to the Int64
   versions above; values read are unsigned, exactly like [read]. *)

let read_int t ~width addr =
  check t addr width;
  match width with
  | 8 -> Bytes.get_uint8 t.bytes addr
  | 16 -> Bytes.get_uint16_le t.bytes addr
  | 32 ->
      Bytes.get_uint16_le t.bytes addr
      lor (Bytes.get_uint16_le t.bytes (addr + 2) lsl 16)
  | _ -> Int64.to_int (read t ~width addr)

let write_int t ~width addr v =
  check t addr width;
  match width with
  | 8 -> Bytes.set_uint8 t.bytes addr (v land 0xFF)
  | 16 -> Bytes.set_uint16_le t.bytes addr (v land 0xFFFF)
  | 32 ->
      Bytes.set_uint16_le t.bytes addr (v land 0xFFFF);
      Bytes.set_uint16_le t.bytes (addr + 2) ((v lsr 16) land 0xFFFF)
  | _ -> write t ~width addr (Int64.of_int v)

(** Convenience accessors used by workload input generators. *)

let set_global t m ~name ~index v =
  match Ir.find_global m name with
  | Some g ->
      let esz = max 1 (g.elem_width / 8) in
      write t ~width:g.elem_width (addr_of t name + (index * esz)) v
  | None -> raise (Fault ("unknown global " ^ name))

let get_global t m ~name ~index =
  match Ir.find_global m name with
  | Some g ->
      let esz = max 1 (g.elem_width / 8) in
      read t ~width:g.elem_width (addr_of t name + (index * esz))
  | None -> raise (Fault ("unknown global " ^ name))
