open Bs_ir

(* Flat little-endian memory image shared by the IR interpreter and the
   machine simulator.  Globals are laid out from [globals_base] upward;
   the stack grows down from the top. *)

exception Fault of string

exception Layout_error of Bs_support.Diag.t

type t = {
  bytes : Bytes.t;
  layout : (string, int) Hashtbl.t;   (* global name -> address *)
  globals_end : int;
  (* Undo journal for checkpoint/restore (intermittent execution): when
     enabled, every store records the bytes it overwrites, so the image
     can be rolled back to the last commit point in O(bytes written)
     instead of O(image size).  Disabled, the only cost is one branch
     per store. *)
  mutable j_on : bool;
  mutable j_addr : int array;         (* journalled byte addresses *)
  mutable j_old : Bytes.t;            (* their pre-store values *)
  mutable j_len : int;
}

let globals_base = 0x1000

let align a n = (n + a - 1) / a * a

(* Buffer pool: a fresh multi-megabyte [Bytes.make] pays page faults on
   first touch and major-heap churn on every simulation.  Recycled
   buffers are re-zeroed with one [Bytes.fill] over warm pages instead.
   Guarded by a mutex — simulations run concurrently under
   {!Bs_exec.Pool}'s domains. *)
let pool : Bytes.t list ref = ref []
let pool_mutex = Mutex.create ()
let pool_cap = 8

let pool_take size =
  Mutex.lock pool_mutex;
  let found =
    match !pool with
    | b :: rest when Bytes.length b = size ->
        pool := rest;
        Some b
    | _ -> None
  in
  Mutex.unlock pool_mutex;
  match found with
  | Some b ->
      Bytes.fill b 0 size '\000';
      b
  | None -> Bytes.make size '\000'

let recycle t =
  Mutex.lock pool_mutex;
  if List.length !pool < pool_cap then pool := t.bytes :: !pool;
  Mutex.unlock pool_mutex

(* The pure layout computation shared by [create] and [layout_table]:
   global name -> address, plus the end of the globals region. *)
let compute_layout (m : Ir.modul) =
  let layout = Hashtbl.create 16 in
  let cursor = ref globals_base in
  List.iter
    (fun (g : Ir.global) ->
      let esz = max 1 (g.elem_width / 8) in
      cursor := align esz !cursor;
      (* Two globals with one name would silently alias the same storage
         (and the second layout would win), turning every store through
         one into a store through both.  Refuse the module instead. *)
      if Hashtbl.mem layout g.gname then
        raise
          (Layout_error
             (Bs_support.Diag.error ~code:"BS-IMG-01"
                ~phase:Bs_support.Diag.Assemble
                (Printf.sprintf
                   "duplicate global '%s': two definitions would alias one \
                    storage location"
                   g.gname)));
      Hashtbl.replace layout g.gname !cursor;
      cursor := !cursor + (esz * g.count))
    m.globals;
  (layout, !cursor)

(** [layout_table m] computes the global layout without allocating (or
    zeroing) a backing buffer — for consumers that only need addresses,
    e.g. the assembler's [addr_of_global]. *)
let layout_table (m : Ir.modul) : (string, int) Hashtbl.t =
  fst (compute_layout m)

(** [create ?size m] lays out the globals of [m] and returns a zeroed
    memory image with initialisers applied. *)
let create ?(size = 8 * 1024 * 1024) (m : Ir.modul) =
  let layout, cursor = compute_layout m in
  let cursor = ref cursor in
  (* [cursor] now points one past the last global byte, so the layout
     fits exactly when [cursor = size].  Check before allocating or
     initialising anything. *)
  if !cursor > size then raise (Fault "memory too small for globals");
  let t =
    { bytes = pool_take size; layout; globals_end = !cursor;
      j_on = false; j_addr = [||]; j_old = Bytes.empty; j_len = 0 }
  in
  (* Apply initialisers.  This runs once per simulation, and large
     initialised tables are common (lookup tables, input arrays), so the
     common element widths take an unboxed path: bounds are established
     once per global, then the bytes go in with untagged int shifts. *)
  let bytes = t.bytes in
  List.iter
    (fun (g : Ir.global) ->
      let base = Hashtbl.find layout g.gname in
      let esz = max 1 (g.elem_width / 8) in
      let n_init = Array.length g.ginit in
      if esz <= 4 && base >= 0 && base + (esz * n_init) <= size then
        for i = 0 to n_init - 1 do
          (* elements are at most 32 bits wide here, so the low bits of
             [to_int] carry the whole value *)
          let x = Int64.to_int (Array.unsafe_get g.ginit i) in
          let addr = base + (i * esz) in
          for b = 0 to esz - 1 do
            Bytes.unsafe_set bytes (addr + b)
              (Char.unsafe_chr ((x lsr (8 * b)) land 0xFF))
          done
        done
      else
        Array.iteri
          (fun i v ->
            let addr = base + (i * esz) in
            for b = 0 to esz - 1 do
              Bytes.set bytes (addr + b)
                (Char.chr
                   (Int64.to_int
                      (Int64.logand
                         (Int64.shift_right_logical v (8 * b))
                         0xFFL)))
            done)
          g.ginit)
    m.globals;
  t

let size t = Bytes.length t.bytes

let addr_of t name =
  match Hashtbl.find_opt t.layout name with
  | Some a -> a
  | None -> raise (Fault ("unknown global " ^ name))

let check t addr width =
  let bytes = max 1 (width / 8) in
  if addr < 0 || addr + bytes > Bytes.length t.bytes then
    raise (Fault (Printf.sprintf "out-of-bounds access at 0x%x (i%d)" addr width))

(* --- snapshots and the undo journal ------------------------------------ *)

type snapshot = Bytes.t

let snapshot t = Bytes.copy t.bytes

(* Restoring a snapshot replaces the whole image, so any recorded undo
   entries describe contents that no longer exist — and an armed journal
   would keep recording against the *new* contents while the caller still
   believes the old rollback point holds.  Restore therefore disarms AND
   clears the journal; callers that want journalling across a restore
   re-arm with [journal_start]. *)
let restore t s =
  if Bytes.length s <> Bytes.length t.bytes then
    raise (Fault "snapshot size does not match the image");
  Bytes.blit s 0 t.bytes 0 (Bytes.length s);
  t.j_on <- false;
  t.j_len <- 0

let snapshot_equal = Bytes.equal
let snapshot_size = Bytes.length

(* Record the [n] bytes at [addr] about to be overwritten.  The address
   was already bounds-checked by the caller. *)
let journal_record t addr n =
  let need = t.j_len + n in
  if need > Array.length t.j_addr then begin
    let cap = max 256 (max need (2 * Array.length t.j_addr)) in
    let a = Array.make cap 0 in
    Array.blit t.j_addr 0 a 0 t.j_len;
    t.j_addr <- a;
    let b = Bytes.create cap in
    Bytes.blit t.j_old 0 b 0 t.j_len;
    t.j_old <- b
  end;
  for k = 0 to n - 1 do
    t.j_addr.(t.j_len + k) <- addr + k;
    Bytes.unsafe_set t.j_old (t.j_len + k) (Bytes.unsafe_get t.bytes (addr + k))
  done;
  t.j_len <- t.j_len + n

let journal_start t =
  t.j_on <- true;
  t.j_len <- 0

let journal_stop t =
  t.j_on <- false;
  t.j_len <- 0

let journal_pending t = t.j_len

let journal_commit t = t.j_len <- 0

(* Reverse replay: later entries undo first, so overlapping writes to the
   same byte resolve to the value live at the last commit point. *)
let journal_undo t =
  for k = t.j_len - 1 downto 0 do
    Bytes.unsafe_set t.bytes t.j_addr.(k) (Bytes.unsafe_get t.j_old k)
  done;
  t.j_len <- 0

(** [read t ~width addr] loads a [width]-bit little-endian value. *)
let read t ~width addr =
  check t addr width;
  let n = max 1 (width / 8) in
  let v = ref 0L in
  for b = n - 1 downto 0 do
    v :=
      Int64.logor
        (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get t.bytes (addr + b))))
  done;
  Width.trunc width !v

(** [write t ~width addr v] stores a [width]-bit little-endian value. *)
let write t ~width addr v =
  check t addr width;
  let n = max 1 (width / 8) in
  if t.j_on then journal_record t addr n;
  for b = 0 to n - 1 do
    Bytes.set t.bytes (addr + b)
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * b)) 0xFFL)))
  done

(* Unboxed accessors for the machine simulator's 8/16/32-bit traffic:
   plain-int reads and writes keep its load/store path free of Int64
   allocation.  Wider (or odd-width) accesses fall back to the Int64
   versions above; values read are unsigned, exactly like [read]. *)

let read_int t ~width addr =
  check t addr width;
  match width with
  | 8 -> Bytes.get_uint8 t.bytes addr
  | 16 -> Bytes.get_uint16_le t.bytes addr
  | 32 ->
      Bytes.get_uint16_le t.bytes addr
      lor (Bytes.get_uint16_le t.bytes (addr + 2) lsl 16)
  | _ -> Int64.to_int (read t ~width addr)

let write_int t ~width addr v =
  check t addr width;
  match width with
  | 8 ->
      if t.j_on then journal_record t addr 1;
      Bytes.set_uint8 t.bytes addr (v land 0xFF)
  | 16 ->
      if t.j_on then journal_record t addr 2;
      Bytes.set_uint16_le t.bytes addr (v land 0xFFFF)
  | 32 ->
      if t.j_on then journal_record t addr 4;
      Bytes.set_uint16_le t.bytes addr (v land 0xFFFF);
      Bytes.set_uint16_le t.bytes (addr + 2) ((v lsr 16) land 0xFFFF)
  | _ -> write t ~width addr (Int64.of_int v) (* [write] journals *)

(** Convenience accessors used by workload input generators. *)

let set_global t m ~name ~index v =
  match Ir.find_global m name with
  | Some g ->
      let esz = max 1 (g.elem_width / 8) in
      write t ~width:g.elem_width (addr_of t name + (index * esz)) v
  | None -> raise (Fault ("unknown global " ^ name))

let get_global t m ~name ~index =
  match Ir.find_global m name with
  | Some g ->
      let esz = max 1 (g.elem_width / 8) in
      read t ~width:g.elem_width (addr_of t name + (index * esz))
  | None -> raise (Fault ("unknown global " ^ name))
