(** Flat little-endian memory image shared by the IR interpreter and the
    machine simulator: globals laid out from {!globals_base} upward, the
    simulated stack growing down from the top. *)

exception Fault of string
(** Out-of-bounds access or unknown global. *)

type t = {
  bytes : Bytes.t;
  layout : (string, int) Hashtbl.t;  (** global name -> base address *)
  globals_end : int;                 (** first address above the globals *)
}

val globals_base : int

val create : ?size:int -> Bs_ir.Ir.modul -> t
(** [create m] lays the module's globals out and applies their
    initialisers.  Default size 8 MiB. *)

val size : t -> int

val addr_of : t -> string -> int
(** Base address of a global. *)

val read : t -> width:int -> int -> int64
(** Little-endian load of [width] bits. *)

val write : t -> width:int -> int -> int64 -> unit
(** Little-endian store of [width] bits. *)

val read_int : t -> width:int -> int -> int
(** [read] for 8/16/32-bit values as a plain unsigned int — the machine
    simulator's allocation-free load path. *)

val write_int : t -> width:int -> int -> int -> unit
(** [write] from a plain int (low [width] bits stored). *)

val set_global : t -> Bs_ir.Ir.modul -> name:string -> index:int -> int64 -> unit
(** Write one element of a global array (workload input setup). *)

val get_global : t -> Bs_ir.Ir.modul -> name:string -> index:int -> int64
(** Read one element of a global array (result inspection). *)
