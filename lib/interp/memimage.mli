(** Flat little-endian memory image shared by the IR interpreter and the
    machine simulator: globals laid out from {!globals_base} upward, the
    simulated stack growing down from the top. *)

exception Fault of string
(** Out-of-bounds access or unknown global. *)

exception Layout_error of Bs_support.Diag.t
(** The module's globals cannot be laid out — currently [BS-IMG-01]:
    two globals share a name, which would silently alias one storage
    location.  Carries a structured diagnostic rather than a bare
    string so drivers can report it like any other pipeline failure. *)

type t = {
  bytes : Bytes.t;
  layout : (string, int) Hashtbl.t;  (** global name -> base address *)
  globals_end : int;                 (** first address above the globals *)
  mutable j_on : bool;               (** undo journal armed (see below) *)
  mutable j_addr : int array;
  mutable j_old : Bytes.t;
  mutable j_len : int;
}

val globals_base : int

val create : ?size:int -> Bs_ir.Ir.modul -> t
(** [create m] lays the module's globals out and applies their
    initialisers.  Default size 8 MiB.  A layout that ends exactly at
    [size] fits; one byte more raises.
    @raise Fault when the globals do not fit in [size].
    @raise Layout_error on duplicate global names. *)

val size : t -> int

val recycle : t -> unit
(** Return the image's buffer to a process-wide pool, where the next
    {!create} of the same size reuses it (re-zeroed) instead of paying a
    fresh multi-megabyte allocation.  Only call when nothing can touch
    the image again — the caller is declaring it dead.  Thread-safe. *)

val addr_of : t -> string -> int
(** Base address of a global. *)

val layout_table : Bs_ir.Ir.modul -> (string, int) Hashtbl.t
(** The global layout alone — identical addresses to {!create}'s — with
    no backing buffer allocated or initialised.  For consumers that
    only resolve addresses (the assembler's [addr_of_global]).
    @raise Layout_error on duplicate global names. *)

val read : t -> width:int -> int -> int64
(** Little-endian load of [width] bits. *)

val write : t -> width:int -> int -> int64 -> unit
(** Little-endian store of [width] bits. *)

val read_int : t -> width:int -> int -> int
(** [read] for 8/16/32-bit values as a plain unsigned int — the machine
    simulator's allocation-free load path. *)

val write_int : t -> width:int -> int -> int -> unit
(** [write] from a plain int (low [width] bits stored). *)

(** {2 Snapshots and the undo journal}

    Two restoration mechanisms for checkpointed (intermittent-power)
    execution.  A {!snapshot} is a full copy of the image — O(size) to
    take, O(size) to restore, independent of anything else.  The journal
    is the cheap path the machine model uses: arm it once, and every
    subsequent store records the bytes it overwrites; {!journal_undo}
    rolls the image back to the last {!journal_commit} in O(bytes
    written).  The two compose: a journal undo after a commit point
    restores exactly the state a snapshot at that point would. *)

type snapshot

val snapshot : t -> snapshot
(** Full copy of the image contents. *)

val restore : t -> snapshot -> unit
(** Overwrite the image with a snapshot's contents.  The undo journal is
    {b disarmed and cleared}: recorded entries describe overwritten
    contents, and an armed journal would keep recording against a
    rollback point that no longer exists.  Re-arm with {!journal_start}
    to journal the restored image.  @raise Fault on size mismatch. *)

val snapshot_equal : snapshot -> snapshot -> bool
val snapshot_size : snapshot -> int

val journal_start : t -> unit
(** Arm the journal (clearing any pending entries).  From here on every
    {!write}/{!write_int} records the overwritten bytes. *)

val journal_stop : t -> unit
(** Disarm and clear the journal. *)

val journal_pending : t -> int
(** Bytes recorded since the last commit — the dirty-byte count a
    checkpoint must flush. *)

val journal_commit : t -> unit
(** Make the current contents the rollback point: forget the recorded
    undo entries. *)

val journal_undo : t -> unit
(** Roll every write since the last commit back, restoring the contents
    at the commit point (reverse replay, so overlapping writes resolve
    correctly). *)

val set_global : t -> Bs_ir.Ir.modul -> name:string -> index:int -> int64 -> unit
(** Write one element of a global array (workload input setup). *)

val get_global : t -> Bs_ir.Ir.modul -> name:string -> index:int -> int64
(** Read one element of a global array (result inspection). *)
