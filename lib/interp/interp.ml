open Bs_ir

(* Reference interpreter for SIR.

   Executes modules directly on an in-memory image.  Three roles:
   - reference semantics for differential testing of the whole pipeline;
   - the bitwidth profiler of §3.2.2 (via the [profile] option);
   - speculative execution of squeezed code: a [!speculative] instruction
     inside a speculative region that violates its misspeculation
     condition (Table 1) redirects control to the region's handler without
     writing its result, exactly like the hardware. *)

exception Trap of string

(* internal: unwinds to [exec]'s top level, where it becomes the
   structured [Out_of_fuel] outcome shared with the machine model *)
exception Fuel_exhausted

(* Two execution engines with identical observable behaviour:

   [Tree] walks the IR instruction lists directly, re-dispatching on
   every operand and opcode — simple, and the reference for the other.

   [Compiled] pre-compiles each function body to OCaml closures once
   per function per execution (mirroring the machine simulator's
   superblock tier): operand reads, width truncation, misspeculation
   guards, Salloc frame offsets and profiling hooks are all resolved at
   compile time, phis are pre-resolved per incoming edge, and each
   basic block becomes one fused straight-line run whose only exits are
   traps, fuel exhaustion, misspeculation redirects and terminators. *)
type engine = Tree | Compiled

type opts = {
  profile : Profile.t option;
  fuel : int;
  engine : engine;
}

let default_opts = { profile = None; fuel = 2_000_000_000; engine = Compiled }

type counters = {
  mutable steps : int;        (* dynamic IR instructions executed *)
  mutable misspecs : int;     (* misspeculation events *)
  mutable calls : int;
  sites : (string * string * int, int) Hashtbl.t;
      (* (function, variable, line) -> misspec count; totals = misspecs *)
}

type result = {
  ret : int64 option;
  steps : int;
  misspecs : int;
  calls : int;
  outcome : Bs_support.Outcome.t;
  misspec_sites : ((string * string * int) * int) list;
      (* per-site misspec attribution, sorted; counts sum to [misspecs] *)
}

type state = {
  m : Ir.modul;
  mem : Memimage.t;
  opts : opts;
  ctr : counters;
  mutable sp : int;           (* stack pointer for Salloc frames *)
}

let eval_binop op w a b =
  let open Int64 in
  let t = Width.trunc w in
  match (op : Ir.binop) with
  | Add -> t (add a b)
  | Sub -> t (sub a b)
  | Mul -> t (mul a b)
  | Udiv ->
      if b = 0L then raise (Trap "division by zero")
      else t (unsigned_div a b)
  | Urem ->
      if b = 0L then raise (Trap "remainder by zero")
      else t (unsigned_rem a b)
  | Sdiv ->
      if b = 0L then raise (Trap "division by zero")
      else t (div (Width.sext w a) (Width.sext w b))
  | Srem ->
      if b = 0L then raise (Trap "remainder by zero")
      else t (rem (Width.sext w a) (Width.sext w b))
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl ->
      let amt = to_int b land (w - 1) in
      t (shift_left a amt)
  | Lshr ->
      let amt = to_int b land (w - 1) in
      t (shift_right_logical (Width.trunc w a) amt)
  | Ashr ->
      let amt = to_int b land (w - 1) in
      t (shift_right (Width.sext w a) amt)

let eval_cmp op w a b =
  let unsigned c = Int64.unsigned_compare (Width.trunc w a) (Width.trunc w b) |> c in
  let signed c = Int64.compare (Width.sext w a) (Width.sext w b) |> c in
  let r =
    match (op : Ir.cmpop) with
    | Eq -> Width.trunc w a = Width.trunc w b
    | Ne -> Width.trunc w a <> Width.trunc w b
    | Ult -> unsigned (fun c -> c < 0)
    | Ule -> unsigned (fun c -> c <= 0)
    | Ugt -> unsigned (fun c -> c > 0)
    | Uge -> unsigned (fun c -> c >= 0)
    | Slt -> signed (fun c -> c < 0)
    | Sle -> signed (fun c -> c <= 0)
    | Sgt -> signed (fun c -> c > 0)
    | Sge -> signed (fun c -> c >= 0)
  in
  if r then 1L else 0L

(* Misspeculation conditions of Table 1, at the IR level. *)
let misspeculates (i : Ir.instr) operand_values result =
  match i.op with
  | Ir.Bin (Ir.Add, _, _) | Ir.Bin (Ir.Sub, _, _) -> (
      (* Overflow/underflow beyond the slice: exact result does not fit. *)
      match operand_values with
      | [ a; b ] ->
          let exact =
            match i.op with
            | Ir.Bin (Ir.Add, _, _) -> Int64.add a b
            | _ -> Int64.sub a b
          in
          Int64.compare exact 0L < 0 || not (Width.fits i.width exact)
      | _ -> false)
  | Ir.Cast (Ir.TruncCast, _) -> (
      (* Speculative truncate: source value must fit the slice. *)
      match operand_values with
      | [ a ] -> not (Width.fits i.width a)
      | _ -> false)
  | _ -> ignore result; false

(* Everything about a function's body that doesn't depend on the dynamic
   state is computed once per execution and reused on every call and every
   block entry: the static frame layout, the block→region map, and each
   block's instruction list pre-split into its phi prefix and its body.
   The splits used to be two [List.filter]s per block *execution*, which
   dominated the profile on loop-heavy workloads. *)
type fctx = {
  fc_sallocs : (int * int) list;          (* (iid, bytes), frame order *)
  fc_frame : int;                          (* total frame size, 8-aligned *)
  fc_region : Ir.region option array;     (* bid-indexed block→region map *)
  fc_phis : Ir.instr list array;          (* bid-indexed phi prefix *)
  fc_body : Ir.instr list array;          (* bid-indexed non-phi body *)
  fc_srcw : int array;
      (* iid-indexed source-operand width for Cmp/Cast (-1 elsewhere) *)
  fc_block : Ir.block option array;       (* bid-indexed block table *)
}

let build_fctx (f : Ir.func) : fctx =
  let n = f.next_id in
  let fc_sallocs =
    List.concat_map
      (fun (b : Ir.block) ->
        List.filter_map
          (fun (i : Ir.instr) ->
            match i.op with Ir.Salloc n -> Some (i.iid, n) | _ -> None)
          b.instrs)
      f.blocks
  in
  let fc_frame =
    List.fold_left (fun acc (_, n) -> acc + ((n + 7) / 8 * 8)) 0 fc_sallocs
  in
  let fc_region = Array.make n None in
  List.iter
    (fun (r : Ir.region) ->
      List.iter (fun bid -> fc_region.(bid) <- Some r) r.rblocks)
    f.regions;
  let fc_phis = Array.make n [] in
  let fc_body = Array.make n [] in
  let fc_srcw = Array.make n (-1) in
  let fc_block = Array.make n None in
  List.iter
    (fun (b : Ir.block) ->
      fc_block.(b.bid) <- Some b;
      fc_phis.(b.bid) <- List.filter Ir.is_phi b.instrs;
      fc_body.(b.bid) <- List.filter (fun i -> not (Ir.is_phi i)) b.instrs;
      List.iter
        (fun (i : Ir.instr) ->
          match i.op with
          | Ir.Cmp (_, a, _) | Ir.Cast (_, a) ->
              fc_srcw.(i.iid) <- Ir.operand_width f a
          | _ -> ())
        b.instrs)
    f.blocks;
  { fc_sallocs; fc_frame; fc_region; fc_phis; fc_body; fc_srcw; fc_block }

(* --- tree-walking engine ----------------------------------------------- *)

let exec_tree (st : state) ~entry ~(args : int64 list) : int64 option =
  let m = st.m in
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace funcs f.fname f) m.funcs;
  let get_func name =
    match Hashtbl.find_opt funcs name with
    | Some f -> f
    | None -> raise (Trap ("call to unknown function " ^ name))
  in
  let fctxs : (string, fctx) Hashtbl.t = Hashtbl.create 16 in
  let get_fctx (f : Ir.func) =
    match Hashtbl.find_opt fctxs f.fname with
    | Some c -> c
    | None ->
        let c = build_fctx f in
        Hashtbl.replace fctxs f.fname c;
        c
  in
  let depth = ref 0 in
  let rec exec_func (f : Ir.func) (args : int64 list) : int64 option =
    (* frameless recursion never trips the simulated-SP check, and OCaml 5
       grows the host fiber stack for gigabytes before Stack_overflow —
       bound the call depth explicitly so runaway recursion traps fast *)
    incr depth;
    if !depth > 100_000 then raise (Trap "stack overflow");
    st.ctr.calls <- st.ctr.calls + 1;
    (* the environment: iids are dense per function, so a flat value
       array plus presence bytes beats a hashtable — no hashing, no
       option or bucket allocation on the per-step read/write path *)
    let nids = f.next_id in
    let env = Array.make nids 0L in
    let set = Bytes.make nids '\000' in
    let env_set i v =
      Array.unsafe_set env i v;
      Bytes.unsafe_set set i '\001'
    in
    (* hoist the profiler's per-function cursor out of the step loop *)
    let prof =
      match st.opts.profile with
      | Some p -> Some (Profile.cursor p ~func:f.fname)
      | None -> None
    in
    (* bind parameters; a call assigns them, so the profiler records them
       like any other dynamic assignment (their bitwidth gates squeezing
       of compares and arithmetic against parameters) *)
    (try
       List.iter2
         (fun (i : Ir.instr) v ->
           let v = Width.trunc i.width v in
           env_set i.iid v;
           match prof with
           | Some c -> Profile.record_at c ~iid:i.iid ~width:i.width v
           | None -> ())
         f.param_instrs args
     with Invalid_argument _ ->
       raise (Trap ("arity mismatch calling " ^ f.fname)));
    (* allocate the static stack frame (layout precomputed in the fctx) *)
    let ctx = get_fctx f in
    let saved_sp = st.sp in
    st.sp <- st.sp - ctx.fc_frame;
    if st.sp < st.mem.Memimage.globals_end then raise (Trap "stack overflow");
    let salloc_addr = Hashtbl.create 4 in
    let cursor = ref st.sp in
    List.iter
      (fun (iid, n) ->
        Hashtbl.replace salloc_addr iid !cursor;
        cursor := !cursor + ((n + 7) / 8 * 8))
      ctx.fc_sallocs;
    let goto bid =
      if bid >= 0 && bid < nids then
        match Array.unsafe_get ctx.fc_block bid with
        | Some b -> b
        | None -> Ir.block f bid (* unknown target: fail as the IR does *)
      else Ir.block f bid
    in
    let value = function
      | Ir.Const c -> c.Ir.cval
      | Ir.Var v ->
          if v >= 0 && v < nids && Bytes.unsafe_get set v = '\001' then
            Array.unsafe_get env v
          else
            raise
              (Trap (Printf.sprintf "read of unset %%%d in %s" v f.fname))
    in
    let record (i : Ir.instr) v =
      match prof with
      | Some c when i.width > 0 ->
          Profile.record_at c ~iid:i.iid ~width:i.width v
      | _ -> ()
    in
    let ret_val = ref None in
    let finished = ref false in
    let cur = ref (Ir.entry f) and prev = ref (-1) in
    while not !finished do
      let b = !cur in
      let phis = ctx.fc_phis.(b.Ir.bid) and body = ctx.fc_body.(b.Ir.bid) in
      (* Phase 1: evaluate all phis w.r.t. the incoming edge, then commit
         simultaneously. *)
      let phi_values =
        List.map
          (fun (i : Ir.instr) ->
            match i.op with
            | Ir.Phi incoming -> (
                match List.assoc_opt !prev incoming with
                | Some v -> (i, Width.trunc i.width (value v))
                | None ->
                    raise
                      (Trap
                         (Printf.sprintf "phi %%%d has no incoming for block %d"
                            i.iid !prev)))
            | _ -> assert false)
          phis
      in
      List.iter
        (fun ((i : Ir.instr), v) ->
          st.ctr.steps <- st.ctr.steps + 1;
          env_set i.iid v;
          record i v)
        phi_values;
      (* Phase 2: straight-line execution with misspeculation checks. *)
      let rec run = function
        | [] -> ()
        | (i : Ir.instr) :: rest ->
            st.ctr.steps <- st.ctr.steps + 1;
            if st.ctr.steps > st.opts.fuel then raise Fuel_exhausted;
            let commit v =
              let v = Width.trunc i.width v in
              env_set i.iid v;
              record i v
            in
            (* only reached when [i.speculative] — the call sites guard,
               so the non-speculative path allocates no operand list *)
            let misspec_check ops result =
              if misspeculates i ops result then begin
                match ctx.fc_region.(b.bid) with
                | Some r ->
                    st.ctr.misspecs <- st.ctr.misspecs + 1;
                    let var =
                      if i.iname <> "" then i.iname
                      else Printf.sprintf "%%%d" i.iid
                    in
                    let key = (f.Ir.fname, var, i.line) in
                    (match Hashtbl.find_opt st.ctr.sites key with
                    | Some n -> Hashtbl.replace st.ctr.sites key (n + 1)
                    | None -> Hashtbl.add st.ctr.sites key 1);
                    prev := b.bid;
                    cur := goto r.rhandler;
                    true
                | None ->
                    raise (Trap "speculative instruction outside a region")
              end
              else false
            in
            (match i.op with
            | Ir.Param _ -> raise (Trap "param instruction in block")
            | Ir.Bin (op, a, c) ->
                let va = value a and vc = value c in
                let r = eval_binop op i.width va vc in
                if i.speculative && misspec_check [ va; vc ] r then ()
                else begin
                  commit r;
                  run rest
                end
            | Ir.Cmp (op, a, c) ->
                let va = value a and vc = value c in
                let w = Array.unsafe_get ctx.fc_srcw i.iid in
                commit (eval_cmp op w va vc);
                run rest
            | Ir.Cast (op, a) ->
                let va = value a in
                let src_w = Array.unsafe_get ctx.fc_srcw i.iid in
                let r =
                  match op with
                  | Ir.Zext -> Width.zext src_w va
                  | Ir.Sext -> Width.trunc i.width (Width.sext src_w va)
                  | Ir.TruncCast -> Width.trunc i.width va
                in
                if i.speculative && misspec_check [ va ] r then ()
                else begin
                  commit r;
                  run rest
                end
            | Ir.Select (c, a, d) ->
                commit (if value c <> 0L then value a else value d);
                run rest
            | Ir.Phi _ -> raise (Trap "phi after non-phi")
            | Ir.Load l ->
                let addr = Int64.to_int (value l.l_addr) in
                commit (Memimage.read st.mem ~width:i.width addr);
                run rest
            | Ir.Store s ->
                let addr = Int64.to_int (value s.s_addr) in
                Memimage.write st.mem ~width:s.s_width addr (value s.s_value);
                run rest
            | Ir.Gaddr g ->
                commit (Int64.of_int (Memimage.addr_of st.mem g));
                run rest
            | Ir.Salloc _ ->
                commit (Int64.of_int (Hashtbl.find salloc_addr i.iid));
                run rest
            | Ir.Call c ->
                let vargs = List.map value c.args in
                let r = exec_func (get_func c.callee) vargs in
                (match r with
                | Some v when i.width > 0 -> commit v
                | _ -> ());
                run rest
            | Ir.Br t ->
                prev := b.bid;
                cur := goto t
            | Ir.Cbr (c, t, e) ->
                prev := b.bid;
                cur := goto (if value c <> 0L then t else e)
            | Ir.Ret v ->
                ret_val := Option.map value v;
                finished := true
            | Ir.Unreachable -> raise (Trap "reached unreachable"));
            ()
      in
      run body
    done;
    st.sp <- saved_sp;
    decr depth;
    !ret_val
  in
  exec_func (get_func entry) args

(* --- closure-compiled engine ------------------------------------------- *)

(* The per-call frame threaded through every compiled closure: the dense
   environment and its presence bytes, the incoming-edge cursor for phi
   resolution, the frame base for Salloc addressing, the phi scratch for
   the two-phase commit, and the landing slot for Ret.

   The environment and scratch are int64 bigarrays, not [int64 array]s:
   a bigarray element is stored and loaded unboxed, so a committed value
   costs a plain 8-byte store.  With boxed storage every commit
   allocated, and — worse — boxes held by frames that stay live across a
   minor collection (deep recursion, large table state) were promoted,
   putting the major GC on the per-step path; call-heavy workloads spent
   more time collecting than executing.  Frames themselves are pooled
   per function (see [compile_func]) for the same reason. *)
module A1 = Bigarray.Array1

type i64arr = (int64, Bigarray.int64_elt, Bigarray.c_layout) A1.t

let make_i64arr n : i64arr =
  let a = A1.create Bigarray.Int64 Bigarray.C_layout n in
  A1.fill a 0L;
  a

type cframe = {
  f_env : i64arr;
  f_set : Bytes.t;
  mutable f_prev : int;
  mutable f_base : int;
  mutable f_ret : int64 option;
  f_scratch : i64arr;
}

(* Block closures return the next block id to execute; [ret_bid] means
   the frame's function returned (every real bid is non-negative). *)
let ret_bid = -1

let no_scratch : i64arr = make_i64arr 0

(* Operand access descriptor for the fused instruction bodies.  Each
   instruction closure matches on these inline, so an operand value is
   a local of the closure body from the environment load to the
   environment store — the compiler keeps it unboxed.  Routing the read
   through a [cframe -> int64] closure instead (the shape the first cut
   of this engine used) boxes the value at every boundary; with two
   operands, an operation and a commit per instruction, that is four
   allocations per step and was the dominant cost. *)
type acc =
  | Aconst of int64
  | Avar of int * string  (** env slot, unset-read trap message *)
  | Atrap of string  (** statically out-of-range operand *)

let exec_compiled (st : state) ~entry ~(args : int64 list) : int64 option =
  let m = st.m in
  let ctr = st.ctr in
  let fuel = st.opts.fuel in
  let mem = st.mem in
  let globals_end = mem.Memimage.globals_end in
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace funcs f.fname f) m.funcs;
  let depth = ref 0 in
  (* compiled functions by name; compilation is lazy (first call), like
     the tree engine's fctx construction, so a function that is never
     called is never compiled — and compile-time failures (e.g. an empty
     function body) surface at the same point of execution *)
  let ctab : (string, int64 list -> int64 option) Hashtbl.t =
    Hashtbl.create 16
  in
  let rec get_compiled name : int64 list -> int64 option =
    match Hashtbl.find_opt ctab name with
    | Some g -> g
    | None -> (
        match Hashtbl.find_opt funcs name with
        | None -> raise (Trap ("call to unknown function " ^ name))
        | Some f ->
            let g = compile_func f in
            Hashtbl.replace ctab f.Ir.fname g;
            g)
  and compile_func (f : Ir.func) : int64 list -> int64 option =
    let ctx = build_fctx f in
    let nids = f.next_id in
    let prof =
      match st.opts.profile with
      | Some p -> Some (Profile.cursor p ~func:f.fname)
      | None -> None
    in
    let step () =
      let s = ctr.steps + 1 in
      ctr.steps <- s;
      if s > fuel then raise Fuel_exhausted
    in
    (* profiling hook for one committing instruction: a baked slot when
       profiling is on and the width is recordable, nothing otherwise *)
    let record_of (i : Ir.instr) : (int64 -> unit) option =
      match prof with
      | Some c when i.width > 0 ->
          Some (Profile.slot c ~iid:i.iid ~width:i.width)
      | _ -> None
    in
    (* operand readers: constants are immediate, variables read the dense
       environment with the presence check (and its trap message) baked *)
    let rd (o : Ir.operand) : cframe -> int64 =
      match o with
      | Ir.Const c ->
          let v = c.Ir.cval in
          fun _ -> v
      | Ir.Var v ->
          let msg = Printf.sprintf "read of unset %%%d in %s" v f.fname in
          if v >= 0 && v < nids then fun fr ->
            if Bytes.unsafe_get fr.f_set v = '\001' then
              A1.unsafe_get fr.f_env v
            else raise (Trap msg)
          else fun _ -> raise (Trap msg)
    in
    (* same access, as a descriptor for the fused bodies (the [Avar]
       index is validated here, so the unsafe reads below stay safe) *)
    let acc_of (o : Ir.operand) : acc =
      match o with
      | Ir.Const c -> Aconst c.Ir.cval
      | Ir.Var v ->
          let msg = Printf.sprintf "read of unset %%%d in %s" v f.fname in
          if v >= 0 && v < nids then Avar (v, msg) else Atrap msg
    in
    (* the commit path: truncate, write the environment, record *)
    let commit_of (i : Ir.instr) : cframe -> int64 -> unit =
      let iid = i.iid in
      let t = Width.trunc i.width in
      match record_of i with
      | None ->
          fun fr v ->
            A1.unsafe_set fr.f_env iid (t v);
            Bytes.unsafe_set fr.f_set iid '\001'
      | Some rec_ ->
          fun fr v ->
            let v = t v in
            A1.unsafe_set fr.f_env iid v;
            Bytes.unsafe_set fr.f_set iid '\001';
            rec_ v
    in
    (* static jump: a valid target becomes a constant, an invalid one
       fails at execution time exactly as the tree engine's goto does *)
    let jump_to t : cframe -> int =
      if t >= 0 && t < nids && ctx.fc_block.(t) <> None then fun _ -> t
      else fun _ ->
        ignore (Ir.block f t);
        assert false
    in
    (* misspeculation exit: counter bump, site attribution and handler
       redirect, all resolved at compile time *)
    let misspec_exit_of (b : Ir.block) (i : Ir.instr) : cframe -> int =
      match ctx.fc_region.(b.Ir.bid) with
      | None -> fun _ -> raise (Trap "speculative instruction outside a region")
      | Some r ->
          let var =
            if i.iname <> "" then i.iname else Printf.sprintf "%%%d" i.iid
          in
          let key = (f.Ir.fname, var, i.line) in
          let jump = jump_to r.Ir.rhandler in
          let bid = b.Ir.bid in
          fun fr ->
            ctr.misspecs <- ctr.misspecs + 1;
            (match Hashtbl.find_opt ctr.sites key with
            | Some n -> Hashtbl.replace ctr.sites key (n + 1)
            | None -> Hashtbl.add ctr.sites key 1);
            fr.f_prev <- bid;
            jump fr
    in
    (* Salloc frame offsets (tree engine: per-call hashtable walk) *)
    let salloc_off = Hashtbl.create 4 in
    let () =
      let cur = ref 0 in
      List.iter
        (fun (iid, n) ->
          Hashtbl.replace salloc_off iid !cur;
          cur := !cur + ((n + 7) / 8 * 8))
        ctx.fc_sallocs
    in
    (* phi prefix, pre-resolved per incoming edge.  Phase 1 evaluates
       every phi w.r.t. the edge into the frame's scratch (traps — unset
       reads, missing edges — surface in phi order, before any commit);
       phase 2 commits simultaneously. *)
    let compile_phis (phis : Ir.instr list) : cframe -> unit =
      let phis = Array.of_list phis in
      let n = Array.length phis in
      let incoming_of (i : Ir.instr) =
        match i.Ir.op with Ir.Phi inc -> inc | _ -> assert false
      in
      let iids = Array.map (fun (i : Ir.instr) -> i.Ir.iid) phis in
      let recs = Array.map record_of phis in
      let masks =
        Array.map (fun (i : Ir.instr) -> Width.mask i.Ir.width) phis
      in
      let no_edge_msg (i : Ir.instr) p =
        Printf.sprintf "phi %%%d has no incoming for block %d" i.Ir.iid p
      in
      (* every predecessor edge any phi knows about gets a plan *)
      let preds =
        let acc = ref [] in
        Array.iter
          (fun i ->
            List.iter
              (fun (p, _) -> if not (List.mem p !acc) then acc := p :: !acc)
              (incoming_of i))
          phis;
        Array.of_list (List.rev !acc)
      in
      let plan_for p : cframe -> unit =
        (* accesses for the phi prefix in order, stopping at the first
           phi with no entry for this edge (evaluations before it still
           run, so their traps keep priority, as in the tree engine) *)
        let rec accesses k acc =
          if k = n then `Complete (Array.of_list (List.rev acc))
          else
            let i = phis.(k) in
            match List.assoc_opt p (incoming_of i) with
            | None -> `Missing (Array.of_list (List.rev acc), no_edge_msg i p)
            | Some o -> accesses (k + 1) (acc_of o :: acc)
        in
        match accesses 0 [] with
        | `Missing (accs, msg) ->
            fun fr ->
              let set = fr.f_set in
              for k = 0 to Array.length accs - 1 do
                match Array.unsafe_get accs k with
                | Aconst _ -> ()
                | Avar (x, m) ->
                    if Bytes.unsafe_get set x <> '\001' then raise (Trap m)
                | Atrap m -> raise (Trap m)
              done;
              raise (Trap msg)
        | `Complete accs ->
            fun fr ->
              let env = fr.f_env and set = fr.f_set in
              let sc = fr.f_scratch in
              for k = 0 to n - 1 do
                let v =
                  match Array.unsafe_get accs k with
                  | Aconst v -> v
                  | Avar (x, m) ->
                      if Bytes.unsafe_get set x = '\001' then
                        A1.unsafe_get env x
                      else raise (Trap m)
                  | Atrap m -> raise (Trap m)
                in
                A1.unsafe_set sc k
                  (Int64.logand v (Array.unsafe_get masks k))
              done;
              ctr.steps <- ctr.steps + n;
              for k = 0 to n - 1 do
                let v = A1.unsafe_get sc k in
                let iid = Array.unsafe_get iids k in
                A1.unsafe_set env iid v;
                Bytes.unsafe_set set iid '\001';
                match Array.unsafe_get recs k with
                | Some r -> r v
                | None -> ()
              done
      in
      let plans = Array.map plan_for preds in
      let nplans = Array.length preds in
      let fallback fr =
        (* an edge no phi lists: the tree engine's phase 1 fails on the
           first phi, naming the dynamic predecessor *)
        raise (Trap (no_edge_msg phis.(0) fr.f_prev))
      in
      fun fr ->
        let p = fr.f_prev in
        let rec find k =
          if k = nplans then fallback fr
          else if Array.unsafe_get preds k = p then
            (Array.unsafe_get plans k) fr
          else find (k + 1)
        in
        find 0
    in
    (* the fused body: one closure per instruction, each tail-calling its
       continuation; terminators return the next block id instead *)
    let rec comp_body (b : Ir.block) (is : Ir.instr list) : cframe -> int =
      match is with
      | [] ->
          (* a block without a terminator re-enters itself with the same
             incoming edge, exactly like the tree engine's outer loop *)
          let bid = b.Ir.bid in
          fun _ -> bid
      | i :: rest -> comp_instr b i (comp_body b rest)
    and comp_instr (b : Ir.block) (i : Ir.instr) (k : cframe -> int) :
        cframe -> int =
      match i.Ir.op with
      | Ir.Param _ ->
          fun _ ->
            step ();
            raise (Trap "param instruction in block")
      | Ir.Bin (op, a, c) ->
          let w = i.width in
          let wmask = Width.mask w in
          let iid = i.iid in
          let ka = acc_of a and kc = acc_of c in
          let rec_ = record_of i in
          let guarded =
            i.speculative
            && match op with Ir.Add | Ir.Sub -> true | _ -> false
          in
          if guarded then begin
            let exit_ = misspec_exit_of b i in
            let is_add = match op with Ir.Add -> true | _ -> false in
            fun fr ->
              let s = ctr.steps + 1 in
              ctr.steps <- s;
              if s > fuel then raise Fuel_exhausted;
              let env = fr.f_env and set = fr.f_set in
              let va =
                match ka with
                | Aconst v -> v
                | Avar (x, m) ->
                    if Bytes.unsafe_get set x = '\001' then
                      A1.unsafe_get env x
                    else raise (Trap m)
                | Atrap m -> raise (Trap m)
              in
              let vc =
                match kc with
                | Aconst v -> v
                | Avar (x, m) ->
                    if Bytes.unsafe_get set x = '\001' then
                      A1.unsafe_get env x
                    else raise (Trap m)
                | Atrap m -> raise (Trap m)
              in
              let e = if is_add then Int64.add va vc else Int64.sub va vc in
              (* e < 0 || not (fits w e), with [fits] unfolded: for
                 e >= 0 the bit length exceeds w iff w < 64 and
                 e > mask w *)
              if
                Int64.compare e 0L < 0
                || (w < 64 && Int64.compare e wmask > 0)
              then exit_ fr
              else begin
                let v = Int64.logand e wmask in
                A1.unsafe_set env iid v;
                Bytes.unsafe_set set iid '\001';
                (match rec_ with Some r -> r v | None -> ());
                k fr
              end
          end
          else
            fun fr ->
              let s = ctr.steps + 1 in
              ctr.steps <- s;
              if s > fuel then raise Fuel_exhausted;
              let env = fr.f_env and set = fr.f_set in
              let va =
                match ka with
                | Aconst v -> v
                | Avar (x, m) ->
                    if Bytes.unsafe_get set x = '\001' then
                      A1.unsafe_get env x
                    else raise (Trap m)
                | Atrap m -> raise (Trap m)
              in
              let vc =
                match kc with
                | Aconst v -> v
                | Avar (x, m) ->
                    if Bytes.unsafe_get set x = '\001' then
                      A1.unsafe_get env x
                    else raise (Trap m)
                | Atrap m -> raise (Trap m)
              in
              let v =
                match op with
                | Ir.Add -> Int64.logand (Int64.add va vc) wmask
                | Ir.Sub -> Int64.logand (Int64.sub va vc) wmask
                | Ir.Mul -> Int64.logand (Int64.mul va vc) wmask
                | Ir.Udiv ->
                    if Int64.compare vc 0L = 0 then
                      raise (Trap "division by zero")
                    else Int64.logand (Int64.unsigned_div va vc) wmask
                | Ir.Urem ->
                    if Int64.compare vc 0L = 0 then
                      raise (Trap "remainder by zero")
                    else Int64.logand (Int64.unsigned_rem va vc) wmask
                | Ir.Sdiv ->
                    if Int64.compare vc 0L = 0 then
                      raise (Trap "division by zero")
                    else
                      Int64.logand
                        (Int64.div (Width.sext w va) (Width.sext w vc))
                        wmask
                | Ir.Srem ->
                    if Int64.compare vc 0L = 0 then
                      raise (Trap "remainder by zero")
                    else
                      Int64.logand
                        (Int64.rem (Width.sext w va) (Width.sext w vc))
                        wmask
                | Ir.And -> Int64.logand va vc
                | Ir.Or -> Int64.logor va vc
                | Ir.Xor -> Int64.logxor va vc
                | Ir.Shl ->
                    Int64.logand
                      (Int64.shift_left va (Int64.to_int vc land (w - 1)))
                      wmask
                | Ir.Lshr ->
                    Int64.logand
                      (Int64.shift_right_logical (Int64.logand va wmask)
                         (Int64.to_int vc land (w - 1)))
                      wmask
                | Ir.Ashr ->
                    Int64.logand
                      (Int64.shift_right (Width.sext w va)
                         (Int64.to_int vc land (w - 1)))
                      wmask
              in
              A1.unsafe_set env iid v;
              Bytes.unsafe_set set iid '\001';
              (match rec_ with Some r -> r v | None -> ());
              k fr
      | Ir.Cmp (op, a, c) ->
          let cw = ctx.fc_srcw.(i.iid) in
          let cmask = Width.mask cw in
          let csh = 64 - cw in
          let one = Width.trunc i.width 1L in
          let iid = i.iid in
          let ka = acc_of a and kc = acc_of c in
          let rec_ = record_of i in
          fun fr ->
            let s = ctr.steps + 1 in
            ctr.steps <- s;
            if s > fuel then raise Fuel_exhausted;
            let env = fr.f_env and set = fr.f_set in
            let va =
              match ka with
              | Aconst v -> v
              | Avar (x, m) ->
                  if Bytes.unsafe_get set x = '\001' then
                    A1.unsafe_get env x
                  else raise (Trap m)
              | Atrap m -> raise (Trap m)
            in
            let vc =
              match kc with
              | Aconst v -> v
              | Avar (x, m) ->
                  if Bytes.unsafe_get set x = '\001' then
                    A1.unsafe_get env x
                  else raise (Trap m)
              | Atrap m -> raise (Trap m)
            in
            let r =
              (* [shift_left then shift_right] is sext-of-trunc at
                 [cw], i.e. exactly [Width.sext cw] *)
              match op with
              | Ir.Eq ->
                  Int64.compare (Int64.logand va cmask)
                    (Int64.logand vc cmask)
                  = 0
              | Ir.Ne ->
                  Int64.compare (Int64.logand va cmask)
                    (Int64.logand vc cmask)
                  <> 0
              | Ir.Ult ->
                  Int64.unsigned_compare (Int64.logand va cmask)
                    (Int64.logand vc cmask)
                  < 0
              | Ir.Ule ->
                  Int64.unsigned_compare (Int64.logand va cmask)
                    (Int64.logand vc cmask)
                  <= 0
              | Ir.Ugt ->
                  Int64.unsigned_compare (Int64.logand va cmask)
                    (Int64.logand vc cmask)
                  > 0
              | Ir.Uge ->
                  Int64.unsigned_compare (Int64.logand va cmask)
                    (Int64.logand vc cmask)
                  >= 0
              | Ir.Slt ->
                  Int64.compare
                    (Int64.shift_right (Int64.shift_left va csh) csh)
                    (Int64.shift_right (Int64.shift_left vc csh) csh)
                  < 0
              | Ir.Sle ->
                  Int64.compare
                    (Int64.shift_right (Int64.shift_left va csh) csh)
                    (Int64.shift_right (Int64.shift_left vc csh) csh)
                  <= 0
              | Ir.Sgt ->
                  Int64.compare
                    (Int64.shift_right (Int64.shift_left va csh) csh)
                    (Int64.shift_right (Int64.shift_left vc csh) csh)
                  > 0
              | Ir.Sge ->
                  Int64.compare
                    (Int64.shift_right (Int64.shift_left va csh) csh)
                    (Int64.shift_right (Int64.shift_left vc csh) csh)
                  >= 0
            in
            let v = if r then one else 0L in
            A1.unsafe_set env iid v;
            Bytes.unsafe_set set iid '\001';
            (match rec_ with Some r -> r v | None -> ());
            k fr
      | Ir.Cast (op, a) -> (
          let src_w = ctx.fc_srcw.(i.iid) in
          let w = i.width in
          let wmask = Width.mask w in
          let iid = i.iid in
          let ka = acc_of a in
          let rec_ = record_of i in
          match op with
          | Ir.Zext ->
              (* trunc w (zext src_w v) = v land (smask land wmask) *)
              let m = Int64.logand (Width.mask src_w) wmask in
              fun fr ->
                let s = ctr.steps + 1 in
                ctr.steps <- s;
                if s > fuel then raise Fuel_exhausted;
                let env = fr.f_env and set = fr.f_set in
                let va =
                  match ka with
                  | Aconst v -> v
                  | Avar (x, m) ->
                      if Bytes.unsafe_get set x = '\001' then
                        A1.unsafe_get env x
                      else raise (Trap m)
                  | Atrap m -> raise (Trap m)
                in
                let v = Int64.logand va m in
                A1.unsafe_set env iid v;
                Bytes.unsafe_set set iid '\001';
                (match rec_ with Some r -> r v | None -> ());
                k fr
          | Ir.Sext ->
              let ssh = 64 - src_w in
              fun fr ->
                let s = ctr.steps + 1 in
                ctr.steps <- s;
                if s > fuel then raise Fuel_exhausted;
                let env = fr.f_env and set = fr.f_set in
                let va =
                  match ka with
                  | Aconst v -> v
                  | Avar (x, m) ->
                      if Bytes.unsafe_get set x = '\001' then
                        A1.unsafe_get env x
                      else raise (Trap m)
                  | Atrap m -> raise (Trap m)
                in
                let v =
                  Int64.logand
                    (Int64.shift_right (Int64.shift_left va ssh) ssh)
                    wmask
                in
                A1.unsafe_set env iid v;
                Bytes.unsafe_set set iid '\001';
                (match rec_ with Some r -> r v | None -> ());
                k fr
          | Ir.TruncCast ->
              if i.speculative then begin
                let exit_ = misspec_exit_of b i in
                fun fr ->
                  let s = ctr.steps + 1 in
                  ctr.steps <- s;
                  if s > fuel then raise Fuel_exhausted;
                  let env = fr.f_env and set = fr.f_set in
                  let va =
                    match ka with
                    | Aconst v -> v
                    | Avar (x, m) ->
                        if Bytes.unsafe_get set x = '\001' then
                          A1.unsafe_get env x
                        else raise (Trap m)
                    | Atrap m -> raise (Trap m)
                  in
                  (* not (fits w va): for w = 64 every value fits; below
                     that, negatives need 64 bits and non-negatives fit
                     iff va <= mask w *)
                  if
                    w < 64
                    && (Int64.compare va 0L < 0
                       || Int64.compare va wmask > 0)
                  then exit_ fr
                  else begin
                    let v = Int64.logand va wmask in
                    A1.unsafe_set env iid v;
                    Bytes.unsafe_set set iid '\001';
                    (match rec_ with Some r -> r v | None -> ());
                    k fr
                  end
              end
              else
                fun fr ->
                  let s = ctr.steps + 1 in
                  ctr.steps <- s;
                  if s > fuel then raise Fuel_exhausted;
                  let env = fr.f_env and set = fr.f_set in
                  let va =
                    match ka with
                    | Aconst v -> v
                    | Avar (x, m) ->
                        if Bytes.unsafe_get set x = '\001' then
                          A1.unsafe_get env x
                        else raise (Trap m)
                    | Atrap m -> raise (Trap m)
                  in
                  let v = Int64.logand va wmask in
                  A1.unsafe_set env iid v;
                  Bytes.unsafe_set set iid '\001';
                  (match rec_ with Some r -> r v | None -> ());
                  k fr)
      | Ir.Select (c, a, d) ->
          let wmask = Width.mask i.width in
          let iid = i.iid in
          let kc = acc_of c and ka = acc_of a and kd = acc_of d in
          let rec_ = record_of i in
          fun fr ->
            let s = ctr.steps + 1 in
            ctr.steps <- s;
            if s > fuel then raise Fuel_exhausted;
            let env = fr.f_env and set = fr.f_set in
            let vc =
              match kc with
              | Aconst v -> v
              | Avar (x, m) ->
                  if Bytes.unsafe_get set x = '\001' then
                    A1.unsafe_get env x
                  else raise (Trap m)
              | Atrap m -> raise (Trap m)
            in
            (* only the taken arm evaluates (and traps), as in the
               tree engine *)
            let v0 =
              if Int64.compare vc 0L <> 0 then
                match ka with
                | Aconst v -> v
                | Avar (x, m) ->
                    if Bytes.unsafe_get set x = '\001' then
                      A1.unsafe_get env x
                    else raise (Trap m)
                | Atrap m -> raise (Trap m)
              else
                match kd with
                | Aconst v -> v
                | Avar (x, m) ->
                    if Bytes.unsafe_get set x = '\001' then
                      A1.unsafe_get env x
                    else raise (Trap m)
                | Atrap m -> raise (Trap m)
            in
            let v = Int64.logand v0 wmask in
            A1.unsafe_set env iid v;
            Bytes.unsafe_set set iid '\001';
            (match rec_ with Some r -> r v | None -> ());
            k fr
      | Ir.Phi _ ->
          (* unreachable: the body excludes the phi prefix *)
          fun _ ->
            step ();
            raise (Trap "phi after non-phi")
      | Ir.Load l ->
          let w = i.width in
          let wmask = Width.mask w in
          let iid = i.iid in
          let ka = acc_of l.Ir.l_addr in
          let rec_ = record_of i in
          fun fr ->
            let s = ctr.steps + 1 in
            ctr.steps <- s;
            if s > fuel then raise Fuel_exhausted;
            let env = fr.f_env and set = fr.f_set in
            let va =
              match ka with
              | Aconst v -> v
              | Avar (x, m) ->
                  if Bytes.unsafe_get set x = '\001' then
                    A1.unsafe_get env x
                  else raise (Trap m)
              | Atrap m -> raise (Trap m)
            in
            let v =
              Int64.logand
                (Memimage.read mem ~width:w (Int64.to_int va))
                wmask
            in
            A1.unsafe_set env iid v;
            Bytes.unsafe_set set iid '\001';
            (match rec_ with Some r -> r v | None -> ());
            k fr
      | Ir.Store s ->
          let w = s.Ir.s_width in
          let ka = acc_of s.Ir.s_addr and kv = acc_of s.Ir.s_value in
          fun fr ->
            let st_ = ctr.steps + 1 in
            ctr.steps <- st_;
            if st_ > fuel then raise Fuel_exhausted;
            let env = fr.f_env and set = fr.f_set in
            let va =
              match ka with
              | Aconst v -> v
              | Avar (x, m) ->
                  if Bytes.unsafe_get set x = '\001' then
                    A1.unsafe_get env x
                  else raise (Trap m)
              | Atrap m -> raise (Trap m)
            in
            let vv =
              match kv with
              | Aconst v -> v
              | Avar (x, m) ->
                  if Bytes.unsafe_get set x = '\001' then
                    A1.unsafe_get env x
                  else raise (Trap m)
              | Atrap m -> raise (Trap m)
            in
            Memimage.write mem ~width:w (Int64.to_int va) vv;
            k fr
      | Ir.Gaddr g ->
          let wmask = Width.mask i.width in
          let iid = i.iid in
          let rec_ = record_of i in
          fun fr ->
            let s = ctr.steps + 1 in
            ctr.steps <- s;
            if s > fuel then raise Fuel_exhausted;
            let v =
              Int64.logand (Int64.of_int (Memimage.addr_of mem g)) wmask
            in
            A1.unsafe_set fr.f_env iid v;
            Bytes.unsafe_set fr.f_set iid '\001';
            (match rec_ with Some r -> r v | None -> ());
            k fr
      | Ir.Salloc _ ->
          let off = Hashtbl.find salloc_off i.iid in
          let wmask = Width.mask i.width in
          let iid = i.iid in
          let rec_ = record_of i in
          fun fr ->
            let s = ctr.steps + 1 in
            ctr.steps <- s;
            if s > fuel then raise Fuel_exhausted;
            let v = Int64.logand (Int64.of_int (fr.f_base + off)) wmask in
            A1.unsafe_set fr.f_env iid v;
            Bytes.unsafe_set fr.f_set iid '\001';
            (match rec_ with Some r -> r v | None -> ());
            k fr
      | Ir.Call c ->
          let rargs = Array.of_list (List.map rd c.Ir.args) in
          let na = Array.length rargs in
          let callee = c.Ir.callee in
          let target = ref None in
          let w = i.width in
          let commit = commit_of i in
          fun fr ->
            step ();
            (* arguments left to right, then callee resolution — the
               tree engine's order (unknown callees trap after the
               arguments evaluate) *)
            let rec eval j =
              if j = na then []
              else
                let v = (Array.unsafe_get rargs j) fr in
                v :: eval (j + 1)
            in
            let vargs = eval 0 in
            let g =
              match !target with
              | Some g -> g
              | None ->
                  let g = get_compiled callee in
                  target := Some g;
                  g
            in
            (match g vargs with
            | Some v when w > 0 -> commit fr v
            | _ -> ());
            k fr
      | Ir.Br t ->
          let j = jump_to t in
          let bid = b.Ir.bid in
          fun fr ->
            step ();
            fr.f_prev <- bid;
            j fr
      | Ir.Cbr (c, t, e) ->
          let kc = acc_of c in
          let jt = jump_to t and je = jump_to e in
          let bid = b.Ir.bid in
          fun fr ->
            let s = ctr.steps + 1 in
            ctr.steps <- s;
            if s > fuel then raise Fuel_exhausted;
            (* prev is set before the condition evaluates, as in the
               tree engine *)
            fr.f_prev <- bid;
            let vc =
              match kc with
              | Aconst v -> v
              | Avar (x, m) ->
                  if Bytes.unsafe_get fr.f_set x = '\001' then
                    A1.unsafe_get fr.f_env x
                  else raise (Trap m)
              | Atrap m -> raise (Trap m)
            in
            if Int64.compare vc 0L <> 0 then jt fr else je fr
      | Ir.Ret v -> (
          match v with
          | None ->
              fun fr ->
                step ();
                fr.f_ret <- None;
                ret_bid
          | Some o ->
              let r = rd o in
              fun fr ->
                step ();
                fr.f_ret <- Some (r fr);
                ret_bid)
      | Ir.Unreachable ->
          fun _ ->
            step ();
            raise (Trap "reached unreachable")
    in
    let bcode : (cframe -> int) array =
      Array.make (max nids 1) (fun _ -> assert false)
    in
    let max_phis = ref 0 in
    List.iter
      (fun (b : Ir.block) ->
        let body = comp_body b ctx.fc_body.(b.Ir.bid) in
        let code =
          match ctx.fc_phis.(b.Ir.bid) with
          | [] -> body
          | phis ->
              max_phis := max !max_phis (List.length phis);
              let ph = compile_phis phis in
              fun fr ->
                ph fr;
                body fr
        in
        bcode.(b.Ir.bid) <- code)
      f.blocks;
    let max_phis = !max_phis in
    (* parameter binding, mirroring List.iter2: the common prefix binds
       (and records) before an arity mismatch traps *)
    let psets : (cframe -> int64 -> unit) array =
      Array.of_list
        (List.map
           (fun (i : Ir.instr) ->
             let iid = i.Ir.iid in
             let t = Width.trunc i.width in
             match prof with
             | Some c ->
                 (* parameters record like any dynamic assignment, with
                    no width gate — exactly the tree engine's bind *)
                 let slot = Profile.slot c ~iid ~width:i.width in
                 fun fr v ->
                   let v = t v in
                   A1.unsafe_set fr.f_env iid v;
                   Bytes.unsafe_set fr.f_set iid '\001';
                   slot v
             | None ->
                 fun fr v ->
                   let v = t v in
                   A1.unsafe_set fr.f_env iid v;
                   Bytes.unsafe_set fr.f_set iid '\001')
           f.param_instrs)
    in
    let nparams = Array.length psets in
    let arity_msg = "arity mismatch calling " ^ f.fname in
    let frame = ctx.fc_frame in
    let entry_bid = (Ir.entry f).Ir.bid in
    (* Frame pool (LIFO, matching call nesting): a returning call parks
       its frame here and the next call to this function reuses it after
       scrubbing the presence bytes — every compiled read checks those
       before touching the environment, so stale slot values are
       unobservable.  Frames abandoned by an unwinding exception are
       simply not returned; the pool re-allocates on demand. *)
    let pool : cframe list ref = ref [] in
    fun (args : int64 list) ->
      incr depth;
      if !depth > 100_000 then raise (Trap "stack overflow");
      ctr.calls <- ctr.calls + 1;
      let fr =
        match !pool with
        | fr :: rest ->
            pool := rest;
            Bytes.fill fr.f_set 0 nids '\000';
            fr.f_prev <- -1;
            fr.f_ret <- None;
            fr
        | [] ->
            { f_env = make_i64arr nids;
              f_set = Bytes.make nids '\000';
              f_prev = -1;
              f_base = 0;
              f_ret = None;
              f_scratch =
                (if max_phis = 0 then no_scratch else make_i64arr max_phis) }
      in
      let rec bind j = function
        | [] -> if j < nparams then raise (Trap arity_msg)
        | v :: rest ->
            if j >= nparams then raise (Trap arity_msg)
            else begin
              (Array.unsafe_get psets j) fr v;
              bind (j + 1) rest
            end
      in
      bind 0 args;
      let saved_sp = st.sp in
      st.sp <- st.sp - frame;
      if st.sp < globals_end then raise (Trap "stack overflow");
      fr.f_base <- st.sp;
      let bid = ref entry_bid in
      while !bid >= 0 do
        bid := (Array.unsafe_get bcode !bid) fr
      done;
      st.sp <- saved_sp;
      decr depth;
      let r = fr.f_ret in
      pool := fr :: !pool;
      r
  in
  (get_compiled entry) args

(* --- shared entry point ------------------------------------------------ *)

let exec ?(opts = default_opts) (m : Ir.modul) ~entry ~(args : int64 list) mem
    =
  let st =
    { m; mem; opts;
      ctr = { steps = 0; misspecs = 0; calls = 0; sites = Hashtbl.create 16 };
      sp = Memimage.size mem }
  in
  let ret, outcome =
    match
      match opts.engine with
      | Tree -> exec_tree st ~entry ~args
      | Compiled -> exec_compiled st ~entry ~args
    with
    | r -> (r, Bs_support.Outcome.Finished)
    | exception Fuel_exhausted -> (None, Bs_support.Outcome.Out_of_fuel)
    | exception Stack_overflow ->
        (* unbounded simulated recursion without stack frames exhausts the
           host stack instead of the simulated one; report it uniformly *)
        raise (Trap "stack overflow")
  in
  { ret; steps = st.ctr.steps; misspecs = st.ctr.misspecs;
    calls = st.ctr.calls; outcome;
    misspec_sites =
      List.sort compare
        (Hashtbl.fold (fun k n acc -> (k, n) :: acc) st.ctr.sites []) }

(** [run_fresh m ~entry ~args] builds a fresh memory image for [m],
    optionally letting [setup] fill workload inputs, and executes. *)
let run_fresh ?(opts = default_opts) ?setup ?mem_size (m : Ir.modul) ~entry ~args =
  let mem = Memimage.create ?size:mem_size m in
  (match setup with Some f -> f mem | None -> ());
  (exec ~opts m ~entry ~args mem, mem)
