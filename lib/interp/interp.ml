open Bs_ir

(* Reference interpreter for SIR.

   Executes modules directly on an in-memory image.  Three roles:
   - reference semantics for differential testing of the whole pipeline;
   - the bitwidth profiler of §3.2.2 (via the [profile] option);
   - speculative execution of squeezed code: a [!speculative] instruction
     inside a speculative region that violates its misspeculation
     condition (Table 1) redirects control to the region's handler without
     writing its result, exactly like the hardware. *)

exception Trap of string

(* internal: unwinds to [exec]'s top level, where it becomes the
   structured [Out_of_fuel] outcome shared with the machine model *)
exception Fuel_exhausted

type opts = {
  profile : Profile.t option;
  fuel : int;
}

let default_opts = { profile = None; fuel = 2_000_000_000 }

type counters = {
  mutable steps : int;        (* dynamic IR instructions executed *)
  mutable misspecs : int;     (* misspeculation events *)
  mutable calls : int;
  sites : (string * string * int, int) Hashtbl.t;
      (* (function, variable, line) -> misspec count; totals = misspecs *)
}

type result = {
  ret : int64 option;
  steps : int;
  misspecs : int;
  calls : int;
  outcome : Bs_support.Outcome.t;
  misspec_sites : ((string * string * int) * int) list;
      (* per-site misspec attribution, sorted; counts sum to [misspecs] *)
}

type state = {
  m : Ir.modul;
  mem : Memimage.t;
  opts : opts;
  ctr : counters;
  mutable sp : int;           (* stack pointer for Salloc frames *)
}

let eval_binop op w a b =
  let open Int64 in
  let t = Width.trunc w in
  match (op : Ir.binop) with
  | Add -> t (add a b)
  | Sub -> t (sub a b)
  | Mul -> t (mul a b)
  | Udiv ->
      if b = 0L then raise (Trap "division by zero")
      else t (unsigned_div a b)
  | Urem ->
      if b = 0L then raise (Trap "remainder by zero")
      else t (unsigned_rem a b)
  | Sdiv ->
      if b = 0L then raise (Trap "division by zero")
      else t (div (Width.sext w a) (Width.sext w b))
  | Srem ->
      if b = 0L then raise (Trap "remainder by zero")
      else t (rem (Width.sext w a) (Width.sext w b))
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl ->
      let amt = to_int b land (w - 1) in
      t (shift_left a amt)
  | Lshr ->
      let amt = to_int b land (w - 1) in
      t (shift_right_logical (Width.trunc w a) amt)
  | Ashr ->
      let amt = to_int b land (w - 1) in
      t (shift_right (Width.sext w a) amt)

let eval_cmp op w a b =
  let unsigned c = Int64.unsigned_compare (Width.trunc w a) (Width.trunc w b) |> c in
  let signed c = Int64.compare (Width.sext w a) (Width.sext w b) |> c in
  let r =
    match (op : Ir.cmpop) with
    | Eq -> Width.trunc w a = Width.trunc w b
    | Ne -> Width.trunc w a <> Width.trunc w b
    | Ult -> unsigned (fun c -> c < 0)
    | Ule -> unsigned (fun c -> c <= 0)
    | Ugt -> unsigned (fun c -> c > 0)
    | Uge -> unsigned (fun c -> c >= 0)
    | Slt -> signed (fun c -> c < 0)
    | Sle -> signed (fun c -> c <= 0)
    | Sgt -> signed (fun c -> c > 0)
    | Sge -> signed (fun c -> c >= 0)
  in
  if r then 1L else 0L

(* Misspeculation conditions of Table 1, at the IR level. *)
let misspeculates (i : Ir.instr) operand_values result =
  match i.op with
  | Ir.Bin (Ir.Add, _, _) | Ir.Bin (Ir.Sub, _, _) -> (
      (* Overflow/underflow beyond the slice: exact result does not fit. *)
      match operand_values with
      | [ a; b ] ->
          let exact =
            match i.op with
            | Ir.Bin (Ir.Add, _, _) -> Int64.add a b
            | _ -> Int64.sub a b
          in
          Int64.compare exact 0L < 0 || not (Width.fits i.width exact)
      | _ -> false)
  | Ir.Cast (Ir.TruncCast, _) -> (
      (* Speculative truncate: source value must fit the slice. *)
      match operand_values with
      | [ a ] -> not (Width.fits i.width a)
      | _ -> false)
  | _ -> ignore result; false

(* Everything about a function's body that doesn't depend on the dynamic
   state is computed once per execution and reused on every call and every
   block entry: the static frame layout, the block→region map, and each
   block's instruction list pre-split into its phi prefix and its body.
   The splits used to be two [List.filter]s per block *execution*, which
   dominated the profile on loop-heavy workloads. *)
type fctx = {
  fc_sallocs : (int * int) list;          (* (iid, bytes), frame order *)
  fc_frame : int;                          (* total frame size, 8-aligned *)
  fc_region : Ir.region option array;     (* bid-indexed block→region map *)
  fc_phis : Ir.instr list array;          (* bid-indexed phi prefix *)
  fc_body : Ir.instr list array;          (* bid-indexed non-phi body *)
  fc_srcw : int array;
      (* iid-indexed source-operand width for Cmp/Cast (-1 elsewhere) *)
  fc_block : Ir.block option array;       (* bid-indexed block table *)
}

let build_fctx (f : Ir.func) : fctx =
  let n = f.next_id in
  let fc_sallocs =
    List.concat_map
      (fun (b : Ir.block) ->
        List.filter_map
          (fun (i : Ir.instr) ->
            match i.op with Ir.Salloc n -> Some (i.iid, n) | _ -> None)
          b.instrs)
      f.blocks
  in
  let fc_frame =
    List.fold_left (fun acc (_, n) -> acc + ((n + 7) / 8 * 8)) 0 fc_sallocs
  in
  let fc_region = Array.make n None in
  List.iter
    (fun (r : Ir.region) ->
      List.iter (fun bid -> fc_region.(bid) <- Some r) r.rblocks)
    f.regions;
  let fc_phis = Array.make n [] in
  let fc_body = Array.make n [] in
  let fc_srcw = Array.make n (-1) in
  let fc_block = Array.make n None in
  List.iter
    (fun (b : Ir.block) ->
      fc_block.(b.bid) <- Some b;
      fc_phis.(b.bid) <- List.filter Ir.is_phi b.instrs;
      fc_body.(b.bid) <- List.filter (fun i -> not (Ir.is_phi i)) b.instrs;
      List.iter
        (fun (i : Ir.instr) ->
          match i.op with
          | Ir.Cmp (_, a, _) | Ir.Cast (_, a) ->
              fc_srcw.(i.iid) <- Ir.operand_width f a
          | _ -> ())
        b.instrs)
    f.blocks;
  { fc_sallocs; fc_frame; fc_region; fc_phis; fc_body; fc_srcw; fc_block }

let exec ?(opts = default_opts) (m : Ir.modul) ~entry ~(args : int64 list) mem =
  let st =
    { m; mem; opts;
      ctr = { steps = 0; misspecs = 0; calls = 0; sites = Hashtbl.create 16 };
      sp = Memimage.size mem }
  in
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace funcs f.fname f) m.funcs;
  let get_func name =
    match Hashtbl.find_opt funcs name with
    | Some f -> f
    | None -> raise (Trap ("call to unknown function " ^ name))
  in
  let fctxs : (string, fctx) Hashtbl.t = Hashtbl.create 16 in
  let get_fctx (f : Ir.func) =
    match Hashtbl.find_opt fctxs f.fname with
    | Some c -> c
    | None ->
        let c = build_fctx f in
        Hashtbl.replace fctxs f.fname c;
        c
  in
  let depth = ref 0 in
  let rec exec_func (f : Ir.func) (args : int64 list) : int64 option =
    (* frameless recursion never trips the simulated-SP check, and OCaml 5
       grows the host fiber stack for gigabytes before Stack_overflow —
       bound the call depth explicitly so runaway recursion traps fast *)
    incr depth;
    if !depth > 100_000 then raise (Trap "stack overflow");
    st.ctr.calls <- st.ctr.calls + 1;
    (* the environment: iids are dense per function, so a flat value
       array plus presence bytes beats a hashtable — no hashing, no
       option or bucket allocation on the per-step read/write path *)
    let nids = f.next_id in
    let env = Array.make nids 0L in
    let set = Bytes.make nids '\000' in
    let env_set i v =
      Array.unsafe_set env i v;
      Bytes.unsafe_set set i '\001'
    in
    (* hoist the profiler's per-function cursor out of the step loop *)
    let prof =
      match st.opts.profile with
      | Some p -> Some (Profile.cursor p ~func:f.fname)
      | None -> None
    in
    (* bind parameters; a call assigns them, so the profiler records them
       like any other dynamic assignment (their bitwidth gates squeezing
       of compares and arithmetic against parameters) *)
    (try
       List.iter2
         (fun (i : Ir.instr) v ->
           let v = Width.trunc i.width v in
           env_set i.iid v;
           match prof with
           | Some c -> Profile.record_at c ~iid:i.iid ~width:i.width v
           | None -> ())
         f.param_instrs args
     with Invalid_argument _ ->
       raise (Trap ("arity mismatch calling " ^ f.fname)));
    (* allocate the static stack frame (layout precomputed in the fctx) *)
    let ctx = get_fctx f in
    let saved_sp = st.sp in
    st.sp <- st.sp - ctx.fc_frame;
    if st.sp < st.mem.Memimage.globals_end then raise (Trap "stack overflow");
    let salloc_addr = Hashtbl.create 4 in
    let cursor = ref st.sp in
    List.iter
      (fun (iid, n) ->
        Hashtbl.replace salloc_addr iid !cursor;
        cursor := !cursor + ((n + 7) / 8 * 8))
      ctx.fc_sallocs;
    let goto bid =
      if bid >= 0 && bid < nids then
        match Array.unsafe_get ctx.fc_block bid with
        | Some b -> b
        | None -> Ir.block f bid (* unknown target: fail as the IR does *)
      else Ir.block f bid
    in
    let value = function
      | Ir.Const c -> c.Ir.cval
      | Ir.Var v ->
          if v >= 0 && v < nids && Bytes.unsafe_get set v = '\001' then
            Array.unsafe_get env v
          else
            raise
              (Trap (Printf.sprintf "read of unset %%%d in %s" v f.fname))
    in
    let record (i : Ir.instr) v =
      match prof with
      | Some c when i.width > 0 ->
          Profile.record_at c ~iid:i.iid ~width:i.width v
      | _ -> ()
    in
    let ret_val = ref None in
    let finished = ref false in
    let cur = ref (Ir.entry f) and prev = ref (-1) in
    while not !finished do
      let b = !cur in
      let phis = ctx.fc_phis.(b.Ir.bid) and body = ctx.fc_body.(b.Ir.bid) in
      (* Phase 1: evaluate all phis w.r.t. the incoming edge, then commit
         simultaneously. *)
      let phi_values =
        List.map
          (fun (i : Ir.instr) ->
            match i.op with
            | Ir.Phi incoming -> (
                match List.assoc_opt !prev incoming with
                | Some v -> (i, Width.trunc i.width (value v))
                | None ->
                    raise
                      (Trap
                         (Printf.sprintf "phi %%%d has no incoming for block %d"
                            i.iid !prev)))
            | _ -> assert false)
          phis
      in
      List.iter
        (fun ((i : Ir.instr), v) ->
          st.ctr.steps <- st.ctr.steps + 1;
          env_set i.iid v;
          record i v)
        phi_values;
      (* Phase 2: straight-line execution with misspeculation checks. *)
      let rec run = function
        | [] -> ()
        | (i : Ir.instr) :: rest ->
            st.ctr.steps <- st.ctr.steps + 1;
            if st.ctr.steps > st.opts.fuel then raise Fuel_exhausted;
            let commit v =
              let v = Width.trunc i.width v in
              env_set i.iid v;
              record i v
            in
            (* only reached when [i.speculative] — the call sites guard,
               so the non-speculative path allocates no operand list *)
            let misspec_check ops result =
              if misspeculates i ops result then begin
                match ctx.fc_region.(b.bid) with
                | Some r ->
                    st.ctr.misspecs <- st.ctr.misspecs + 1;
                    let var =
                      if i.iname <> "" then i.iname
                      else Printf.sprintf "%%%d" i.iid
                    in
                    let key = (f.Ir.fname, var, i.line) in
                    (match Hashtbl.find_opt st.ctr.sites key with
                    | Some n -> Hashtbl.replace st.ctr.sites key (n + 1)
                    | None -> Hashtbl.add st.ctr.sites key 1);
                    prev := b.bid;
                    cur := goto r.rhandler;
                    true
                | None ->
                    raise (Trap "speculative instruction outside a region")
              end
              else false
            in
            (match i.op with
            | Ir.Param _ -> raise (Trap "param instruction in block")
            | Ir.Bin (op, a, c) ->
                let va = value a and vc = value c in
                let r = eval_binop op i.width va vc in
                if i.speculative && misspec_check [ va; vc ] r then ()
                else begin
                  commit r;
                  run rest
                end
            | Ir.Cmp (op, a, c) ->
                let va = value a and vc = value c in
                let w = Array.unsafe_get ctx.fc_srcw i.iid in
                commit (eval_cmp op w va vc);
                run rest
            | Ir.Cast (op, a) ->
                let va = value a in
                let src_w = Array.unsafe_get ctx.fc_srcw i.iid in
                let r =
                  match op with
                  | Ir.Zext -> Width.zext src_w va
                  | Ir.Sext -> Width.trunc i.width (Width.sext src_w va)
                  | Ir.TruncCast -> Width.trunc i.width va
                in
                if i.speculative && misspec_check [ va ] r then ()
                else begin
                  commit r;
                  run rest
                end
            | Ir.Select (c, a, d) ->
                commit (if value c <> 0L then value a else value d);
                run rest
            | Ir.Phi _ -> raise (Trap "phi after non-phi")
            | Ir.Load l ->
                let addr = Int64.to_int (value l.l_addr) in
                commit (Memimage.read st.mem ~width:i.width addr);
                run rest
            | Ir.Store s ->
                let addr = Int64.to_int (value s.s_addr) in
                Memimage.write st.mem ~width:s.s_width addr (value s.s_value);
                run rest
            | Ir.Gaddr g ->
                commit (Int64.of_int (Memimage.addr_of st.mem g));
                run rest
            | Ir.Salloc _ ->
                commit (Int64.of_int (Hashtbl.find salloc_addr i.iid));
                run rest
            | Ir.Call c ->
                let vargs = List.map value c.args in
                let r = exec_func (get_func c.callee) vargs in
                (match r with
                | Some v when i.width > 0 -> commit v
                | _ -> ());
                run rest
            | Ir.Br t ->
                prev := b.bid;
                cur := goto t
            | Ir.Cbr (c, t, e) ->
                prev := b.bid;
                cur := goto (if value c <> 0L then t else e)
            | Ir.Ret v ->
                ret_val := Option.map value v;
                finished := true
            | Ir.Unreachable -> raise (Trap "reached unreachable"));
            ()
      in
      run body
    done;
    st.sp <- saved_sp;
    decr depth;
    !ret_val
  in
  let f = get_func entry in
  let ret, outcome =
    match exec_func f args with
    | r -> (r, Bs_support.Outcome.Finished)
    | exception Fuel_exhausted -> (None, Bs_support.Outcome.Out_of_fuel)
    | exception Stack_overflow ->
        (* unbounded simulated recursion without stack frames exhausts the
           host stack instead of the simulated one; report it uniformly *)
        raise (Trap "stack overflow")
  in
  { ret; steps = st.ctr.steps; misspecs = st.ctr.misspecs;
    calls = st.ctr.calls; outcome;
    misspec_sites =
      List.sort compare
        (Hashtbl.fold (fun k n acc -> (k, n) :: acc) st.ctr.sites []) }

(** [run_fresh m ~entry ~args] builds a fresh memory image for [m],
    optionally letting [setup] fill workload inputs, and executes. *)
let run_fresh ?(opts = default_opts) ?setup ?mem_size (m : Ir.modul) ~entry ~args =
  let mem = Memimage.create ?size:mem_size m in
  (match setup with Some f -> f mem | None -> ());
  (exec ~opts m ~entry ~args mem, mem)
