(** Reference interpreter for SIR.

    Three roles: reference semantics for differential testing of the whole
    pipeline; the bitwidth profiler of §3.2.2 (via [profile]); and
    speculative execution of squeezed code — a [!speculative] instruction
    inside a speculative region that violates its Table 1 misspeculation
    condition redirects control to the region's handler without committing
    its result, exactly like the hardware. *)

exception Trap of string
(** Undefined behaviour at run time: division by zero, out-of-bounds
    access, unknown callee, arity mismatch, … Fuel exhaustion is NOT an
    exception: it is reported as [Out_of_fuel] in the result's [outcome],
    the same {!Bs_support.Outcome.t} variant the machine model uses. *)

type engine =
  | Tree      (** walk the IR directly, re-dispatching per instruction *)
  | Compiled
      (** pre-compile each function body to fused closures: per-block,
          phi-resolved per incoming edge, with operand reads, width
          truncation, misspeculation guards and profiling hooks baked in
          at compile time.  Observably identical to [Tree] — outputs,
          counters, traps and misspeculation-site attribution all match
          bit for bit. *)

type opts = {
  profile : Profile.t option;  (** record per-variable bitwidth statistics *)
  fuel : int;                  (** dynamic IR instruction budget *)
  engine : engine;             (** execution engine ([Compiled] by default) *)
}

val default_opts : opts

type counters = {
  mutable steps : int;
  mutable misspecs : int;
  mutable calls : int;
  sites : (string * string * int, int) Hashtbl.t;
      (** (function, variable, line) -> misspec count *)
}

type result = {
  ret : int64 option;  (** the entry function's return value *)
  steps : int;         (** dynamic IR instructions executed *)
  misspecs : int;      (** misspeculation events *)
  calls : int;         (** function invocations *)
  outcome : Bs_support.Outcome.t;
      (** [Finished], or [Out_of_fuel] when the budget ran out ([ret] is
          [None] in that case) *)
  misspec_sites : ((string * string * int) * int) list;
      (** ((function, variable, line), count) attribution of every
          misspeculation event, sorted; counts sum to [misspecs] *)
}

val eval_binop : Bs_ir.Ir.binop -> int -> int64 -> int64 -> int64
(** [eval_binop op width a b] — the IR's arithmetic, exposed so constant
    folding can never disagree with execution.
    @raise Trap on division by zero. *)

val eval_cmp : Bs_ir.Ir.cmpop -> int -> int64 -> int64 -> int64
(** Comparison at the given operand width; returns 0 or 1. *)

val misspeculates : Bs_ir.Ir.instr -> int64 list -> int64 -> bool
(** Table 1's misspeculation conditions at the IR level, given the
    instruction, its operand values, and its (truncated) result. *)

val exec :
  ?opts:opts ->
  Bs_ir.Ir.modul ->
  entry:string ->
  args:int64 list ->
  Memimage.t ->
  result
(** Execute [entry] on an existing memory image (mutating it). *)

val run_fresh :
  ?opts:opts ->
  ?setup:(Memimage.t -> unit) ->
  ?mem_size:int ->
  Bs_ir.Ir.modul ->
  entry:string ->
  args:int64 list ->
  result * Memimage.t
(** Build a fresh memory image for the module, apply [setup], execute, and
    return the result together with the final memory. *)
