open Bs_ir

(* Bitwidth profiling data (§3.2.2).

   For each SIR variable (identified by function name and instruction id)
   we track the minimum, maximum and mean RequiredBits over all dynamic
   assignments, from which the MAX / AVG / MIN target-selection heuristics
   are derived.  We also keep module-wide histograms of dynamic integer
   instructions classified by required bits and by programmer-selected
   bits, which regenerate Figure 1.

   Recording is the hot path of every profiling run, so variables are
   stored per function: a {!cursor} resolves the function-name half of
   the key once per call frame, leaving an int-keyed lookup (no tuple
   allocation, no string hash) per dynamic assignment. *)

type heuristic = Hmax | Havg | Hmin

let heuristic_name = function Hmax -> "MAX" | Havg -> "AVG" | Hmin -> "MIN"

type var_stats = {
  mutable s_min : int;
  mutable s_max : int;
  mutable s_sum : int;
  mutable s_count : int;
}

type t = {
  funcs : (string, (int, var_stats) Hashtbl.t) Hashtbl.t;
  (* histograms indexed by width class position: 8,16,32,64 *)
  req_hist : int array;
  prog_hist : int array;
}

let class_index bits =
  if bits <= 8 then 0 else if bits <= 16 then 1 else if bits <= 32 then 2 else 3

let classes = [| 8; 16; 32; 64 |]

let create () =
  { funcs = Hashtbl.create 16; req_hist = Array.make 4 0;
    prog_hist = Array.make 4 0 }

type cursor = { c_prof : t; c_vars : (int, var_stats) Hashtbl.t }

let cursor t ~func =
  let vars =
    match Hashtbl.find_opt t.funcs func with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 64 in
        Hashtbl.replace t.funcs func tbl;
        tbl
  in
  { c_prof = t; c_vars = vars }

(** [record_at c ~iid ~width value] logs one dynamic assignment of
    [value] to the variable defined by [iid] in the cursor's function. *)
let record_at c ~iid ~width value =
  let t = c.c_prof in
  let bits = Width.required_bits value in
  let s =
    match Hashtbl.find_opt c.c_vars iid with
    | Some s -> s
    | None ->
        let s = { s_min = max_int; s_max = 0; s_sum = 0; s_count = 0 } in
        Hashtbl.replace c.c_vars iid s;
        s
  in
  if bits < s.s_min then s.s_min <- bits;
  if bits > s.s_max then s.s_max <- bits;
  s.s_sum <- s.s_sum + bits;
  s.s_count <- s.s_count + 1;
  t.req_hist.(class_index bits) <- t.req_hist.(class_index bits) + 1;
  (* width 1 (booleans) are counted in the 8-bit class *)
  t.prog_hist.(class_index width) <- t.prog_hist.(class_index width) + 1

(** [slot c ~iid ~width] pre-resolves everything about one variable's
    recording except the value: the programmer-width class and (lazily,
    on the first assignment, so a never-assigned variable still reports
    as unprofiled) its stats cell.  The closure-compiled interpreter
    bakes one of these per committing instruction at compile time,
    leaving only the RequiredBits computation and a few cell updates on
    the per-assignment path. *)
let slot c ~iid ~width =
  let t = c.c_prof in
  let pc = class_index width in
  let cell = ref None in
  fun value ->
    let s =
      match !cell with
      | Some s -> s
      | None ->
          let s =
            match Hashtbl.find_opt c.c_vars iid with
            | Some s -> s
            | None ->
                let s =
                  { s_min = max_int; s_max = 0; s_sum = 0; s_count = 0 }
                in
                Hashtbl.replace c.c_vars iid s;
                s
          in
          cell := Some s;
          s
    in
    let bits = Width.required_bits value in
    if bits < s.s_min then s.s_min <- bits;
    if bits > s.s_max then s.s_max <- bits;
    s.s_sum <- s.s_sum + bits;
    s.s_count <- s.s_count + 1;
    t.req_hist.(class_index bits) <- t.req_hist.(class_index bits) + 1;
    t.prog_hist.(pc) <- t.prog_hist.(pc) + 1

(** [record t ~func ~iid ~width value] logs one dynamic assignment of
    [value] to the variable defined by [iid]. *)
let record t ~func ~iid ~width value =
  record_at (cursor t ~func) ~iid ~width value

let stats t ~func ~iid =
  match Hashtbl.find_opt t.funcs func with
  | None -> None
  | Some tbl -> Hashtbl.find_opt tbl iid

(** Iterate every profiled variable. *)
let iter_vars t f =
  Hashtbl.iter
    (fun func tbl -> Hashtbl.iter (fun iid s -> f ~func ~iid s) tbl)
    t.funcs

(** Target bitwidth [T(v)] under a heuristic, as a hardware width class
    (8/16/32/64), or [None] if the variable was never assigned during
    profiling. *)
let target t heuristic ~func ~iid =
  match stats t ~func ~iid with
  | None -> None
  | Some s ->
      let bits =
        match heuristic with
        | Hmax -> s.s_max
        | Hmin -> s.s_min
        | Havg -> (s.s_sum + s.s_count - 1) / s.s_count (* ceiling mean *)
      in
      Some (Width.class_of_bits bits)

(** Dynamic execution count of the variable (its defining instruction). *)
let dyn_count t ~func ~iid =
  match stats t ~func ~iid with Some s -> s.s_count | None -> 0

(** Histogram of dynamic integer instructions by required-bits class, as
    fractions summing to 1 (Figure 1a). *)
let required_distribution t =
  let total = Array.fold_left ( + ) 0 t.req_hist in
  if total = 0 then [||]
  else Array.map (fun n -> float_of_int n /. float_of_int total) t.req_hist

(** Histogram by programmer-selected width class (Figure 1b). *)
let programmer_distribution t =
  let total = Array.fold_left ( + ) 0 t.prog_hist in
  if total = 0 then [||]
  else Array.map (fun n -> float_of_int n /. float_of_int total) t.prog_hist

(** Distribution of dynamic instructions under a heuristic's selections
    (Figure 5): each variable's dynamic count lands in the class the
    heuristic assigns it. *)
let heuristic_distribution t heuristic =
  let hist = Array.make 4 0 in
  iter_vars t (fun ~func ~iid (s : var_stats) ->
      match target t heuristic ~func ~iid with
      | Some cls -> hist.(class_index cls) <- hist.(class_index cls) + s.s_count
      | None -> ());
  let total = Array.fold_left ( + ) 0 hist in
  if total = 0 then [||]
  else Array.map (fun n -> float_of_int n /. float_of_int total) hist

(** Distribution under an arbitrary per-variable selection (used for the
    demanded-bits and basic-block-coercion comparisons of Figures 1c/1d).
    [select ~func ~iid] returns the selected width for that variable. *)
let selection_distribution t ~select =
  let hist = Array.make 4 0 in
  iter_vars t (fun ~func ~iid (s : var_stats) ->
      let cls = select ~func ~iid in
      hist.(class_index cls) <- hist.(class_index cls) + s.s_count);
  let total = Array.fold_left ( + ) 0 hist in
  if total = 0 then [||]
  else Array.map (fun n -> float_of_int n /. float_of_int total) hist
