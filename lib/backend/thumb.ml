open Bs_isa
open Isa

(* The compact-ISA comparison point (RQ9).

   ARM's Thumb trades encoding density for instruction count: two-address
   ALU operations, 8 allocatable registers, 3/8-bit immediates, short
   load/store offsets and no conditional-set instruction all cost extra
   dynamic instructions.  We model a Thumb build by register-allocating
   with R0–R7 only and then padding every instruction with the NOPs its
   Thumb expansion would add — the padded program is semantically
   identical (the real instruction still executes) while its dynamic
   instruction count matches the Thumb cost model, which is exactly what
   Figure 18 reports. *)

let thumb_regs = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* +1 per high-register operand: Thumb reaches R8+ only through moves. *)
let high_reg r = if r >= 8 && r < 13 then 1 else 0

let high_of_op2 = function Reg r -> high_reg r | Imm _ -> 0

(** Dynamic Thumb cost of one BSARM instruction. *)
let cost (i : insn) =
  match i with
  | MOV (d, s) -> 1 + high_reg d + high_reg s
  | MOVW (_, v) -> if v <= 255 then 1 else 2
  | MOVT _ -> 2
  | ALU (_, d, n, o) ->
      let base = if d = n then 1 else 2 in
      let imm_cost = match o with Imm v when v > 255 -> 2 | _ -> 0 in
      base + imm_cost + high_reg d + high_reg n + high_of_op2 o
  | MUL (d, n, m) -> (if d = n then 1 else 2) + high_reg d + high_reg n + high_reg m
  | DIV (_, d, n, m) -> 1 + high_reg d + high_reg n + high_reg m
  | CMP (n, o) ->
      let imm_cost = match o with Imm v when v > 255 -> 2 | _ -> 0 in
      1 + imm_cost + high_reg n + high_of_op2 o
  | CSET _ -> 3 (* branch + two moves *)
  | B _ | BC _ | BL _ | BX_LR -> 1
  | LDR (_, _, _, _, off) ->
      (* SP-relative and short-offset loads are single Thumb instructions;
         a Thumb build would allocate spill temporaries in low registers *)
      if off <= 124 then 1 else 2
  | STR (_, _, _, off) -> if off <= 124 then 1 else 2
  | SXT (_, d, s) | UXT (_, d, s) -> 1 + high_reg d + high_reg s
  | SETDELTA _ | SETMODE _ | NOP | HALT -> 1
  | BALU _ | BCMPS _ | BLDRS _ | BLDRB _ | BSTRB _ | BEXT _ | BTRN _
  | BMOV _ | BMOVI _ ->
      (* slice extension does not exist on Thumb; the Thumb pipeline never
         compiles squeezed code *)
      1

(** [expand p] pads each instruction with NOPs up to its Thumb cost and
    remaps all control-flow targets. *)
let expand (p : Asm.program) : Asm.program =
  let n = Array.length p.Asm.code in
  let new_index = Array.make (n + 1) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i insn ->
      new_index.(i) <- !total;
      total := !total + cost insn)
    p.Asm.code;
  new_index.(n) <- !total;
  let code = Array.make !total NOP in
  let prov = Array.make !total PNormal in
  let srcmap = Array.make !total None in
  Array.iteri
    (fun i insn ->
      let insn' =
        match insn with
        | B t -> B new_index.(t)
        | BC (c, t) -> BC (c, new_index.(t))
        | BL t -> BL new_index.(t)
        | other -> other
      in
      code.(new_index.(i)) <- insn';
      prov.(new_index.(i)) <- p.Asm.prov.(i);
      srcmap.(new_index.(i)) <- p.Asm.srcmap.(i))
    p.Asm.code;
  let entries = Hashtbl.create 8 in
  Hashtbl.iter
    (fun name pc -> Hashtbl.replace entries name new_index.(pc))
    p.Asm.entries;
  let handler_pcs = Hashtbl.create 1 in
  { Asm.code; prov; srcmap; entries; delta = p.Asm.delta;
    halt_pc = new_index.(p.Asm.halt_pc); handler_pcs }
