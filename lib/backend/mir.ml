open Bs_isa

(* Speculative Machine IR (SMIR, §3.1.3): the virtual-register machine
   representation between instruction selection and register allocation.

   Virtual registers carry a width (8 for slice candidates, 32 otherwise);
   speculative regions are propagated from SIR so the register allocator
   can apply equation (2)'s predecessor relation. *)

type vreg = int

type vop2 = Vr of vreg | Vi of int64

type mop =
  | Mmov of vreg * vreg                       (* same-width move *)
  | Mmovi of vreg * int64
  | Malu of Isa.aluop * vreg * vreg * vop2
  | Mmul of vreg * vreg * vreg
  | Mdiv of Isa.signedness * vreg * vreg * vreg
  | Mcmp of vreg * vop2                       (* sets flags; width from vreg *)
  | Mcset of Isa.cond * vreg
  | Mb of int                                 (* MIR block id *)
  | Mbc of Isa.cond * int * int               (* taken, fallthrough *)
  | Mcall of string * vreg list * vreg option
  | Mret of vreg option
  | Mload of Isa.width * Isa.signedness * vreg * vreg * int
  | Mloadspec of vreg * vreg * int            (* Table 1 speculative load *)
  | Mstore of Isa.width * vreg * vreg * int
  (* slice-indexed forms: Mem[base + slice] (Table 1's Bm index operand) *)
  | Mload8x of vreg * vreg * vreg             (* dst8 := Mem8[base + idx8] *)
  | Mloadspecx of vreg * vreg * vreg          (* dst8 := Mem32[base + idx8] *)
  | Mstore8x of vreg * vreg * vreg            (* Mem8[base + idx8] := src8 *)
  | Mext of Isa.signedness * vreg * vreg      (* 8-bit vreg -> 32-bit vreg *)
  | Mtrunc_spec of vreg * vreg                (* speculative truncate *)
  | Mtrunc_exact of vreg * vreg               (* exact slice move *)
  | Muxt of Isa.width * vreg * vreg           (* mask 32-bit value to 8/16 *)
  | Msxt of Isa.width * vreg * vreg
  | Mgaddr of vreg * string
  | Mframeaddr of vreg * int                  (* salloc slot id *)
  | Margload of vreg * int                    (* k-th incoming argument *)

(* Source attribution for speculative instructions: the IR variable
   (and its line) whose squeeze introduced the speculation.  Carried
   from isel through assembly into [Asm.program.srcmap] so the
   simulator can charge each misspeculation back to its source. *)
type site = { s_fn : string; s_var : string; s_line : int }

type minstr = {
  mutable mop : mop;
  mutable speculative : bool;   (* can trigger misspeculation *)
  mutable prov : Isa.provenance;
  mutable msite : site option;  (* attribution for speculative ops *)
}

type mblock = {
  mbid : int;
  mutable mphis : (vreg * (int * vop2) list) list;  (* parallel phis *)
  mutable mins : minstr list;                        (* terminator last *)
  mutable in_region : int option;                    (* region id *)
  mutable handler_of : int option;                   (* region id *)
  mutable is_orig : bool;  (* block belongs to CFG_orig (fallback code) *)
}

type mfunc = {
  mname : string;
  nargs : int;
  mutable mblocks : mblock list;
  vwidth : (vreg, int) Hashtbl.t;              (* vreg -> 8 or 32 *)
  mutable next_vreg : int;
  mutable sallocs : (int * int) list;          (* slot id, bytes *)
  mutable mregions : (int * int list * int) list;  (* region id, blocks, handler *)
}

let mk_instr ?(spec = false) ?(prov = Isa.PNormal) ?site mop =
  { mop; speculative = spec; prov; msite = site }

let fresh_vreg (f : mfunc) ~width =
  let v = f.next_vreg in
  f.next_vreg <- v + 1;
  Hashtbl.replace f.vwidth v width;
  v

let width_of (f : mfunc) v =
  match Hashtbl.find_opt f.vwidth v with Some w -> w | None -> 32

let block (f : mfunc) bid = List.find (fun b -> b.mbid = bid) f.mblocks

let terminator (b : mblock) =
  match List.rev b.mins with
  | t :: _ -> t
  | [] -> invalid_arg "Mir.terminator: empty block"

let succs (b : mblock) =
  match (terminator b).mop with
  | Mb t -> [ t ]
  | Mbc (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Mret _ -> []
  | _ -> []

(** Defs and uses of an instruction, for liveness and allocation. *)
let defs_uses (i : minstr) : vreg list * vreg list =
  let of_vop2 = function Vr v -> [ v ] | Vi _ -> [] in
  match i.mop with
  | Mmov (d, s) -> ([ d ], [ s ])
  | Mmovi (d, _) -> ([ d ], [])
  | Malu (_, d, n, o) -> ([ d ], n :: of_vop2 o)
  | Mmul (d, n, m) | Mdiv (_, d, n, m) -> ([ d ], [ n; m ])
  | Mcmp (n, o) -> ([], n :: of_vop2 o)
  | Mcset (_, d) -> ([ d ], [])
  | Mb _ -> ([], [])
  | Mbc _ -> ([], [])
  | Mcall (_, args, ret) ->
      ((match ret with Some r -> [ r ] | None -> []), args)
  | Mret v -> ([], match v with Some v -> [ v ] | None -> [])
  | Mload (_, _, d, a, _) -> ([ d ], [ a ])
  | Mloadspec (d, a, _) -> ([ d ], [ a ])
  | Mstore (_, s, a, _) -> ([], [ s; a ])
  | Mload8x (d, a, x) | Mloadspecx (d, a, x) -> ([ d ], [ a; x ])
  | Mstore8x (s, a, x) -> ([], [ s; a; x ])
  | Mext (_, d, s)
  | Mtrunc_spec (d, s)
  | Mtrunc_exact (d, s)
  | Muxt (_, d, s)
  | Msxt (_, d, s) -> ([ d ], [ s ])
  | Mgaddr (d, _) | Mframeaddr (d, _) | Margload (d, _) -> ([ d ], [])

let to_string (f : mfunc) (i : minstr) =
  let v r = Printf.sprintf "v%d:%d" r (width_of f r) in
  let o = function Vr r -> v r | Vi c -> Printf.sprintf "#%Ld" c in
  let s =
    match i.mop with
    | Mmov (d, x) -> Printf.sprintf "mov %s, %s" (v d) (v x)
    | Mmovi (d, c) -> Printf.sprintf "movi %s, #%Ld" (v d) c
    | Malu (op, d, n, x) ->
        Printf.sprintf "%s %s, %s, %s" (Isa.aluop_name op) (v d) (v n) (o x)
    | Mmul (d, n, m) -> Printf.sprintf "mul %s, %s, %s" (v d) (v n) (v m)
    | Mdiv (_, d, n, m) -> Printf.sprintf "div %s, %s, %s" (v d) (v n) (v m)
    | Mcmp (n, x) -> Printf.sprintf "cmp %s, %s" (v n) (o x)
    | Mcset (c, d) -> Printf.sprintf "cset.%s %s" (Isa.cond_name c) (v d)
    | Mb t -> Printf.sprintf "b mb%d" t
    | Mbc (c, t, e) -> Printf.sprintf "b.%s mb%d else mb%d" (Isa.cond_name c) t e
    | Mcall (f, args, ret) ->
        Printf.sprintf "call @%s(%s)%s" f
          (String.concat ", " (List.map v args))
          (match ret with Some r -> " -> " ^ v r | None -> "")
    | Mret (Some x) -> Printf.sprintf "ret %s" (v x)
    | Mret None -> "ret"
    | Mload (w, _, d, a, off) ->
        Printf.sprintf "ldr%s %s, [%s, #%d]" (Isa.width_suffix w) (v d) (v a) off
    | Mloadspec (d, a, off) -> Printf.sprintf "ldrspec %s, [%s, #%d]" (v d) (v a) off
    | Mstore (w, x, a, off) ->
        Printf.sprintf "str%s %s, [%s, #%d]" (Isa.width_suffix w) (v x) (v a) off
    | Mload8x (d, a, x) -> Printf.sprintf "ldrb %s, [%s, %s]" (v d) (v a) (v x)
    | Mloadspecx (d, a, x) ->
        Printf.sprintf "ldrspec %s, [%s, %s]" (v d) (v a) (v x)
    | Mstore8x (sv, a, x) -> Printf.sprintf "strb %s, [%s, %s]" (v sv) (v a) (v x)
    | Mext (Isa.Unsigned, d, x) -> Printf.sprintf "zext %s, %s" (v d) (v x)
    | Mext (Isa.Signed, d, x) -> Printf.sprintf "sext %s, %s" (v d) (v x)
    | Mtrunc_spec (d, x) -> Printf.sprintf "truncspec %s, %s" (v d) (v x)
    | Mtrunc_exact (d, x) -> Printf.sprintf "trunc %s, %s" (v d) (v x)
    | Muxt (w, d, x) -> Printf.sprintf "uxt%s %s, %s" (Isa.width_suffix w) (v d) (v x)
    | Msxt (w, d, x) -> Printf.sprintf "sxt%s %s, %s" (Isa.width_suffix w) (v d) (v x)
    | Mgaddr (d, g) -> Printf.sprintf "adr %s, @%s" (v d) g
    | Mframeaddr (d, slot) -> Printf.sprintf "frameaddr %s, slot%d" (v d) slot
    | Margload (d, k) -> Printf.sprintf "arg %s, #%d" (v d) k
  in
  if i.speculative then s ^ " !spec" else s

let func_to_string (f : mfunc) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "mfunc @%s(%d args)\n" f.mname f.nargs);
  List.iter
    (fun b ->
      let tag =
        match (b.in_region, b.handler_of) with
        | Some r, _ -> Printf.sprintf " region %d" r
        | _, Some r -> Printf.sprintf " handler %d" r
        | _ -> ""
      in
      Buffer.add_string buf (Printf.sprintf "mb%d:%s\n" b.mbid tag);
      List.iter
        (fun (d, incoming) ->
          Buffer.add_string buf
            (Printf.sprintf "  v%d := phi %s\n" d
               (String.concat ", "
                  (List.map
                     (fun (p, x) ->
                       Printf.sprintf "[mb%d: %s]" p
                         (match x with
                         | Vr r -> "v" ^ string_of_int r
                         | Vi c -> "#" ^ Int64.to_string c))
                     incoming))))
        b.mphis;
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ to_string f i ^ "\n"))
        b.mins)
    f.mblocks;
  Buffer.contents buf
