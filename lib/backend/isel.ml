open Bs_ir
open Bs_isa
open Isa
open Mir

(* Instruction selection (§3.3.2): SIR -> SMIR.

   Canonical value representation:
   - in BITSPEC mode ([slices] true), width-8 SIR values live in 8-bit
     virtual registers (register slices); everything else lives in 32-bit
     virtual registers holding their value zero-extended;
   - in BASELINE mode every value lives in a 32-bit virtual register.

   Speculative instructions map to the Table 1 slice operations; a
   speculative truncate whose only operand is a single-use 32-bit load
   fuses into the speculative load BLDRS. *)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type ctx = {
  ir : Ir.func;
  mf : mfunc;
  slices : bool;
  vmap : (int, vreg) Hashtbl.t;          (* SIR iid -> vreg *)
  bmap : (int, int) Hashtbl.t;           (* SIR bid -> MIR bid *)
  uses : (int, Ir.instr list) Hashtbl.t;
  fused_loads : (int, unit) Hashtbl.t;   (* loads folded into BLDRS *)
  fused_truncs : (int, Ir.operand) Hashtbl.t;  (* trunc iid -> load address *)
  fused_cmps : (int, unit) Hashtbl.t;    (* compares emitted at their branch *)
  (* slice-indexed addressing (Table 1's Mem[Rn + Bm]): memory op iid ->
     (base operand, index variable) *)
  mem_index : (int, Ir.operand * int) Hashtbl.t;
  fused_addr_adds : (int, unit) Hashtbl.t;
  fused_zexts : (int, unit) Hashtbl.t;
  salloc_slot : (int, int) Hashtbl.t;    (* salloc iid -> frame slot id *)
  mutable cur : mblock;
}

let emit ctx ?(spec = false) ?(prov = Isa.PNormal) mop =
  ctx.cur.mins <- ctx.cur.mins @ [ mk_instr ~spec ~prov mop ]

(* Attribution for speculative ops: the squeezed IR variable behind
   this instruction, with its source line (see Mir.site). *)
let site_of ctx (i : Ir.instr) =
  let var =
    if i.Ir.iname <> "" then i.Ir.iname else Printf.sprintf "%%%d" i.Ir.iid
  in
  Some { s_fn = ctx.ir.Ir.fname; s_var = var; s_line = i.Ir.line }

let unsigned_cmpop = function
  | Ir.Eq | Ir.Ne | Ir.Ult | Ir.Ule | Ir.Ugt | Ir.Uge -> true
  | Ir.Slt | Ir.Sle | Ir.Sgt | Ir.Sge -> false

(* A width-8 value deserves an 8-bit virtual register (a slice) only when
   some consumer actually wants a slice; otherwise holding it
   zero-extended in a word register avoids an extension at every wide
   use (LDRB into a word register is what the baseline does anyway).
   The recursion through width-8 phis is bounded (phi cycles). *)
let rec slice_friendly_use ?(depth = 4) ctx (i : Ir.instr) =
  depth > 0
  &&
  match Hashtbl.find_opt ctx.uses i.iid with
  | None -> false
  | Some users ->
      List.exists
        (fun (u : Ir.instr) ->
          u.Ir.speculative
          || (match u.Ir.op with
             | Ir.Store s -> s.s_width = 8
             | Ir.Cmp (op, a, b) ->
                 unsigned_cmpop op
                 && Ir.operand_width ctx.ir a = 8
                 && Ir.operand_width ctx.ir b = 8
             | Ir.Phi _ when u.Ir.width = 8 ->
                 slice_friendly_use ~depth:(depth - 1) ctx u
             | _ -> false))
        users

and vreg_width ctx (i : Ir.instr) =
  match i.op with
  | Ir.Param _ -> 32
  | _ ->
      if ctx.slices && i.width = 8
         && (i.speculative || slice_friendly_use ctx i)
      then 8
      else 32

let vreg_of ctx (i : Ir.instr) =
  match Hashtbl.find_opt ctx.vmap i.iid with
  | Some v -> v
  | None ->
      let v = fresh_vreg ctx.mf ~width:(vreg_width ctx i) in
      Hashtbl.replace ctx.vmap i.iid v;
      v

(* 32-bit vreg holding the operand zero-extended. *)
let rec val32 ctx (o : Ir.operand) : vreg =
  match o with
  | Ir.Const c ->
      if c.cwidth > 32 then unsupported "64-bit constant in back-end";
      let t = fresh_vreg ctx.mf ~width:32 in
      emit ctx (Mmovi (t, Width.trunc 32 c.cval));
      t
  | Ir.Var v ->
      let vi = Ir.instr ctx.ir v in
      if vi.width > 32 then unsupported "64-bit value %%%d in back-end" v;
      let r = vreg_of ctx vi in
      if width_of ctx.mf r = 8 then begin
        let t = fresh_vreg ctx.mf ~width:32 in
        emit ctx (Mext (Unsigned, t, r));
        t
      end
      else r

(* 32-bit vreg holding the operand sign-extended from [width]. *)
and val32s ctx ~width (o : Ir.operand) : vreg =
  if width >= 32 then val32 ctx o
  else
    match o with
    | Ir.Const c ->
        let t = fresh_vreg ctx.mf ~width:32 in
        emit ctx (Mmovi (t, Width.trunc 32 (Width.sext width c.cval)));
        t
    | Ir.Var _ ->
        let r = val32 ctx o in
        let t = fresh_vreg ctx.mf ~width:32 in
        emit ctx (Msxt ((if width = 8 then W8 else W16), t, r));
        t

(* 8-bit vreg (slice) holding the operand. *)
let val8 ctx (o : Ir.operand) : vreg =
  match o with
  | Ir.Const c ->
      let t = fresh_vreg ctx.mf ~width:8 in
      emit ctx (Mmovi (t, Width.trunc 8 c.cval));
      t
  | Ir.Var v ->
      let vi = Ir.instr ctx.ir v in
      let r = vreg_of ctx vi in
      if width_of ctx.mf r = 8 then r
      else begin
        (* canonical 32-bit holder of a width-8 value: exact slice move *)
        let t = fresh_vreg ctx.mf ~width:8 in
        emit ctx (Mtrunc_exact (t, r));
        t
      end

(* Immediate-or-register second operand for 32-bit ALU ops. *)
let vop2_32 ctx (o : Ir.operand) : vop2 =
  match o with
  | Ir.Const c when c.cwidth <= 32 && Int64.compare c.cval 0L >= 0
                    && Int64.compare c.cval 0x7FFFL <= 0 ->
      Vi c.cval
  | _ -> Vr (val32 ctx o)

let cond_of_cmpop signed_ok (op : Ir.cmpop) : Isa.cond =
  ignore signed_ok;
  match op with
  | Ir.Eq -> CEq | Ir.Ne -> CNe
  | Ir.Ult -> CUlt | Ir.Ule -> CUle | Ir.Ugt -> CUgt | Ir.Uge -> CUge
  | Ir.Slt -> CSlt | Ir.Sle -> CSle | Ir.Sgt -> CSgt | Ir.Sge -> CSge

let is_signed_cmp = function
  | Ir.Slt | Ir.Sle | Ir.Sgt | Ir.Sge -> true
  | _ -> false

(* Emit the flag-setting compare for [Cmp (op, a, b)] and return the branch
   condition. *)
let emit_compare ctx (i : Ir.instr) op a b : Isa.cond =
  let w = Ir.operand_width ctx.ir a in
  if w > 32 then unsupported "64-bit compare in back-end";
  (* 8-bit unsigned comparisons use the slice comparator whether or not
     they are speculative: BCMPS never misspeculates (Table 1) *)
  let operand_is_slice o =
    match o with
    | Ir.Var v -> Hashtbl.mem ctx.vmap (Ir.instr ctx.ir v).iid
                  && width_of ctx.mf (vreg_of ctx (Ir.instr ctx.ir v)) = 8
    | Ir.Const c -> Width.fits 8 c.cval
  in
  if ctx.slices
     && (i.speculative
        || (w = 8 && unsigned_cmpop op && operand_is_slice a
           && operand_is_slice b))
  then begin
    (* 8-bit slice compare (unsigned only; the squeezer guarantees it) *)
    let ra = val8 ctx a in
    let rhs =
      match b with
      | Ir.Const c when Int64.compare c.cval 0L >= 0 && Int64.compare c.cval 255L <= 0 ->
          `Imm (Int64.to_int c.cval)
      | _ -> `Reg (val8 ctx b)
    in
    (match rhs with
    | `Imm v ->
        ctx.cur.mins <- ctx.cur.mins @ [ { mop = Mcmp (ra, Vi (Int64.of_int v));
                                           speculative = true; prov = PNormal;
                                           msite = site_of ctx i } ]
    | `Reg rb ->
        ctx.cur.mins <- ctx.cur.mins @ [ { mop = Mcmp (ra, Vr rb);
                                           speculative = true; prov = PNormal;
                                           msite = site_of ctx i } ]);
    cond_of_cmpop false op
  end
  else begin
    let signed = is_signed_cmp op in
    let ra = if signed && w < 32 then val32s ctx ~width:w a else val32 ctx a in
    let rb =
      if signed && w < 32 then Vr (val32s ctx ~width:w b) else vop2_32 ctx b
    in
    emit ctx (Mcmp (ra, rb));
    cond_of_cmpop true op
  end


let mask_to_width ctx ~width dst src =
  if width = 32 then (if dst <> src then emit ctx (Mmov (dst, src)))
  else if width = 16 then emit ctx (Muxt (W16, dst, src))
  else if width = 8 then emit ctx (Muxt (W8, dst, src))
  else if width = 1 then
    emit ctx (Malu (OpAnd, dst, src, Vi 1L))
  else unsupported "mask to width %d" width

(* --- main per-instruction lowering ------------------------------------ *)

let lower_instr ctx (_b : Ir.block) (i : Ir.instr) =
  let ir = ctx.ir in
  match i.op with
  | Ir.Param _ -> ()
  | Ir.Phi _ -> () (* handled as block phis *)
  | Ir.Bin _ when Hashtbl.mem ctx.fused_addr_adds i.iid -> ()
  | Ir.Cast (Ir.Zext, _) when Hashtbl.mem ctx.fused_zexts i.iid -> ()
  | Ir.Bin (op, a, c) when i.speculative && ctx.slices && i.width = 8 -> (
      (* speculative slice arithmetic / logic *)
      let d = vreg_of ctx i in
      let ra = val8 ctx a in
      let rhs =
        match c with
        | Ir.Const k when Int64.compare k.cval 0L >= 0 && Int64.compare k.cval 15L <= 0 ->
            Vi k.cval
        | _ -> Vr (val8 ctx c)
      in
      let bop =
        match op with
        | Ir.Add -> OpAdd | Ir.Sub -> OpSub | Ir.And -> OpAnd
        | Ir.Or -> OpOrr | Ir.Xor -> OpEor
        | _ -> unsupported "speculative %s" (Bs_ir.Printer.binop_name op)
      in
      let spec = match op with Ir.Add | Ir.Sub -> true | _ -> false in
      ctx.cur.mins <-
        ctx.cur.mins @ [ { mop = Malu (bop, d, ra, rhs); speculative = spec;
                           prov = PNormal;
                           msite = (if spec then site_of ctx i else None) } ])
  | Ir.Bin (op, a, c) -> (
      if i.width > 32 then unsupported "64-bit arithmetic in back-end";
      let d = vreg_of ctx i in
      let w = i.width in
      match op with
      | Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Lshr ->
          let ra = val32 ctx a and rc = vop2_32 ctx c in
          let aop =
            match op with
            | Ir.Add -> OpAdd | Ir.Sub -> OpSub | Ir.And -> OpAnd
            | Ir.Or -> OpOrr | Ir.Xor -> OpEor | Ir.Shl -> OpLsl
            | _ -> OpLsr
          in
          if w = 32 || op = Ir.And || op = Ir.Or || op = Ir.Xor || op = Ir.Lshr
          then emit ctx (Malu (aop, d, ra, rc))
          else begin
            let t = fresh_vreg ctx.mf ~width:32 in
            emit ctx (Malu (aop, t, ra, rc));
            mask_to_width ctx ~width:w d t
          end
      | Ir.Ashr ->
          let ra = val32s ctx ~width:w a and rc = vop2_32 ctx c in
          if w = 32 then emit ctx (Malu (OpAsr, d, ra, rc))
          else begin
            let t = fresh_vreg ctx.mf ~width:32 in
            emit ctx (Malu (OpAsr, t, ra, rc));
            mask_to_width ctx ~width:w d t
          end
      | Ir.Mul ->
          let ra = val32 ctx a and rc = val32 ctx c in
          if w = 32 then emit ctx (Mmul (d, ra, rc))
          else begin
            let t = fresh_vreg ctx.mf ~width:32 in
            emit ctx (Mmul (t, ra, rc));
            mask_to_width ctx ~width:w d t
          end
      | Ir.Udiv ->
          emit ctx (Mdiv (Unsigned, d, val32 ctx a, val32 ctx c))
      | Ir.Sdiv ->
          let ra = val32s ctx ~width:w a and rc = val32s ctx ~width:w c in
          if w = 32 then emit ctx (Mdiv (Signed, d, ra, rc))
          else begin
            let t = fresh_vreg ctx.mf ~width:32 in
            emit ctx (Mdiv (Signed, t, ra, rc));
            mask_to_width ctx ~width:w d t
          end
      | Ir.Urem ->
          (* r = a - (a/b)*b *)
          let ra = val32 ctx a and rc = val32 ctx c in
          let q = fresh_vreg ctx.mf ~width:32 in
          let p = fresh_vreg ctx.mf ~width:32 in
          emit ctx (Mdiv (Unsigned, q, ra, rc));
          emit ctx (Mmul (p, q, rc));
          emit ctx (Malu (OpSub, d, ra, Vr p))
      | Ir.Srem ->
          let ra = val32s ctx ~width:w a and rc = val32s ctx ~width:w c in
          let q = fresh_vreg ctx.mf ~width:32 in
          let p = fresh_vreg ctx.mf ~width:32 in
          let t = fresh_vreg ctx.mf ~width:32 in
          emit ctx (Mdiv (Signed, q, ra, rc));
          emit ctx (Mmul (p, q, rc));
          emit ctx (Malu (OpSub, t, ra, Vr p));
          mask_to_width ctx ~width:w d t)
  | Ir.Cmp (op, a, c) ->
      if Hashtbl.mem ctx.fused_cmps i.iid then () (* emitted at the branch *)
      else begin
        let cond = emit_compare ctx i op a c in
        emit ctx (Mcset (cond, vreg_of ctx i))
      end
  | Ir.Cast (castop, a) -> (
      let src_w = Ir.operand_width ir a in
      if i.width > 32 || src_w > 32 then unsupported "64-bit cast in back-end";
      let d = vreg_of ctx i in
      match castop with
      | Ir.Zext ->
          (* canonical form is already zero-extended *)
          if width_of ctx.mf d = 8 then
            emit ctx (Mmov (d, val8 ctx a))
          else begin
            match a with
            | Ir.Var v when width_of ctx.mf (vreg_of ctx (Ir.instr ir v)) = 8 ->
                emit ctx (Mext (Unsigned, d, vreg_of ctx (Ir.instr ir v)))
            | _ -> emit ctx (Mmov (d, val32 ctx a))
          end
      | Ir.Sext ->
          let extended =
            match a with
            | Ir.Var v when width_of ctx.mf (vreg_of ctx (Ir.instr ir v)) = 8 ->
                let t = fresh_vreg ctx.mf ~width:32 in
                emit ctx (Mext (Signed, t, vreg_of ctx (Ir.instr ir v)));
                t
            | _ -> val32s ctx ~width:src_w a
          in
          if width_of ctx.mf d = 8 then emit ctx (Mtrunc_exact (d, extended))
          else mask_to_width ctx ~width:i.width d extended
      | Ir.TruncCast ->
          if i.speculative then begin
            if not ctx.slices then
              unsupported "speculative truncate without slice hardware";
            match Hashtbl.find_opt ctx.fused_truncs i.iid with
            | Some addr_op -> (
                (* fused load + speculative truncate: Table 1's BLDRS *)
                match Hashtbl.find_opt ctx.mem_index i.iid with
                | Some (base, sv) ->
                    let br = val32 ctx base in
                    let xs = vreg_of ctx (Ir.instr ir sv) in
                    ctx.cur.mins <-
                      ctx.cur.mins
                      @ [ { mop = Mloadspecx (d, br, xs); speculative = true;
                            prov = PNormal; msite = site_of ctx i } ]
                | None ->
                    let addr = val32 ctx addr_op in
                    ctx.cur.mins <-
                      ctx.cur.mins
                      @ [ { mop = Mloadspec (d, addr, 0); speculative = true;
                            prov = PNormal; msite = site_of ctx i } ])
            | None ->
                let src = val32 ctx a in
                ctx.cur.mins <-
                  ctx.cur.mins
                  @ [ { mop = Mtrunc_spec (d, src); speculative = true;
                        prov = PNormal; msite = site_of ctx i } ]
          end
          else if width_of ctx.mf d = 8 then
            emit ctx (Mtrunc_exact (d, val32 ctx a))
          else mask_to_width ctx ~width:i.width d (val32 ctx a))
  | Ir.Select (c, a, e) ->
      (* branchless: d = e ^ ((a ^ e) & (0 - cond)) *)
      let d = vreg_of ctx i in
      let rc = val32 ctx c and ra = val32 ctx a and re = val32 ctx e in
      let zero = fresh_vreg ctx.mf ~width:32 in
      let m = fresh_vreg ctx.mf ~width:32 in
      let x = fresh_vreg ctx.mf ~width:32 in
      let y = fresh_vreg ctx.mf ~width:32 in
      emit ctx (Mmovi (zero, 0L));
      emit ctx (Malu (OpSub, m, zero, Vr rc));
      emit ctx (Malu (OpEor, x, ra, Vr re));
      emit ctx (Malu (OpAnd, y, x, Vr m));
      emit ctx (Malu (OpEor, d, re, Vr y))
  | Ir.Load l ->
      if Hashtbl.mem ctx.fused_loads i.iid then ()
      else begin
        if i.width > 32 then unsupported "64-bit load in back-end";
        match Hashtbl.find_opt ctx.mem_index i.iid with
        | Some (base, sv) ->
            let br = val32 ctx base in
            let xs = vreg_of ctx (Ir.instr ir sv) in
            let d = vreg_of ctx i in
            if width_of ctx.mf d = 8 then emit ctx (Mload8x (d, br, xs))
            else begin
              (* destination wants a word register: load through a slice *)
              let t = fresh_vreg ctx.mf ~width:8 in
              emit ctx (Mload8x (t, br, xs));
              emit ctx (Mext (Unsigned, d, t))
            end
        | None ->
            let addr = val32 ctx l.l_addr in
            let d = vreg_of ctx i in
            if width_of ctx.mf d = 8 then
              emit ctx (Mload (W8, Unsigned, d, addr, 0))
            else
              let w = match i.width with 8 -> W8 | 16 -> W16 | _ -> W32 in
              emit ctx (Mload (w, Unsigned, d, addr, 0))
      end
  | Ir.Store s ->
      if s.s_width > 32 then unsupported "64-bit store in back-end";
      if s.s_width = 8 then begin
        match Hashtbl.find_opt ctx.mem_index i.iid with
        | Some (base, sv) ->
            (* the address add was fused away: do not materialise it *)
            let vs = val8 ctx s.s_value in
            let br = val32 ctx base in
            let xs = vreg_of ctx (Ir.instr ir sv) in
            emit ctx (Mstore8x (vs, br, xs))
        | None -> (
            let addr = val32 ctx s.s_addr in
            match s.s_value with
            | Ir.Var v
              when ctx.slices
                   && width_of ctx.mf (vreg_of ctx (Ir.instr ir v)) = 8 ->
                emit ctx (Mstore (W8, vreg_of ctx (Ir.instr ir v), addr, 0))
            | _ -> emit ctx (Mstore (W8, val32 ctx s.s_value, addr, 0)))
      end
      else begin
        let addr = val32 ctx s.s_addr in
        let w = if s.s_width = 16 then W16 else W32 in
        emit ctx (Mstore (w, val32 ctx s.s_value, addr, 0))
      end
  | Ir.Gaddr g -> emit ctx (Mgaddr (vreg_of ctx i, g))
  | Ir.Salloc _ ->
      emit ctx (Mframeaddr (vreg_of ctx i, Hashtbl.find ctx.salloc_slot i.iid))
  | Ir.Call c ->
      let args = List.map (val32 ctx) c.args in
      let ret = if Ir.has_result i then Some (vreg_of ctx i) else None in
      (* width-8 results arrive zero-extended in R0; re-slice if needed *)
      (match ret with
      | Some r when width_of ctx.mf r = 8 ->
          let t = fresh_vreg ctx.mf ~width:32 in
          emit ctx (Mcall (c.callee, args, Some t));
          emit ctx (Mtrunc_exact (r, t))
      | _ -> emit ctx (Mcall (c.callee, args, ret)))
  | Ir.Br t -> emit ctx (Mb (Hashtbl.find ctx.bmap t))
  | Ir.Cbr (cond, t, e) -> (
      let mt = Hashtbl.find ctx.bmap t and me = Hashtbl.find ctx.bmap e in
      match cond with
      | Ir.Var cv when Hashtbl.mem ctx.fused_cmps cv -> (
          let ci = Ir.instr ir cv in
          match ci.op with
          | Ir.Cmp (op, a, c2) ->
              let cc = emit_compare ctx ci op a c2 in
              emit ctx (Mbc (cc, mt, me))
          | _ -> assert false)
      | _ ->
          let rc = val32 ctx cond in
          emit ctx (Mcmp (rc, Vi 0L));
          emit ctx (Mbc (CNe, mt, me)))
  | Ir.Ret v ->
      let rv = Option.map (val32 ctx) v in
      emit ctx (Mret rv)
  | Ir.Unreachable ->
      (* trap: jump to self is not expressible; return 0 *)
      emit ctx (Mret (if ctx.ir.ret_width = 0 then None else Some (val32 ctx (Ir.const ~width:32 0L))))

(* --- function lowering ------------------------------------------------- *)

let lower_func ~slices (ir : Ir.func) : mfunc =
  let mf =
    { mname = ir.fname; nargs = List.length ir.params; mblocks = [];
      vwidth = Hashtbl.create 64; next_vreg = 0; sallocs = [];
      mregions = [] }
  in
  let ctx =
    { ir; mf; slices; vmap = Hashtbl.create 64; bmap = Hashtbl.create 16;
      uses = Ir.uses ir; fused_loads = Hashtbl.create 8;
      fused_truncs = Hashtbl.create 8; fused_cmps = Hashtbl.create 8;
      mem_index = Hashtbl.create 8; fused_addr_adds = Hashtbl.create 8;
      fused_zexts = Hashtbl.create 8;
      salloc_slot = Hashtbl.create 8;
      cur = { mbid = -1; mphis = []; mins = []; in_region = None;
              handler_of = None; is_orig = false } }
  in
  (* block ids *)
  List.iteri
    (fun idx (b : Ir.block) -> Hashtbl.replace ctx.bmap b.bid idx)
    ir.blocks;
  (* fusion prepass: spec-load pairs and compare/branch pairs *)
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.op with
          | Ir.Cast (Ir.TruncCast, Ir.Var l) when i.speculative && slices -> (
              let li = Ir.instr ir l in
              match li.op with
              | Ir.Load ld
                when (not ld.l_volatile) && li.width = 32
                     && (match Hashtbl.find_opt ctx.uses l with
                        | Some [ u ] -> u.Ir.iid = i.iid
                        | _ -> false)
                     && List.exists (fun (j : Ir.instr) -> j.Ir.iid = l) b.instrs ->
                  Hashtbl.replace ctx.fused_loads l ();
                  Hashtbl.replace ctx.fused_truncs i.iid ld.l_addr
              | _ -> ())
          | Ir.Cmp _ -> (
              match Hashtbl.find_opt ctx.uses i.iid with
              | Some [ user ] -> (
                  match user.Ir.op with
                  | Ir.Cbr (Ir.Var c, _, _)
                    when c = i.iid
                         && List.exists
                              (fun (j : Ir.instr) -> j.Ir.iid = user.Ir.iid)
                              b.instrs ->
                      Hashtbl.replace ctx.fused_cmps i.iid ()
                  | _ -> ())
              | _ -> ())
          | _ -> ())
        b.instrs)
    ir.blocks;
  (* slice-indexed addressing prepass: an address of the form
     base + zext(idx8) feeding a byte-width memory access maps to the
     Mem[Rn + Bm] form of Table 1 — the zext and the add disappear. *)
  if slices then begin
    let single_use v =
      match Hashtbl.find_opt ctx.uses v with Some [ _ ] -> true | _ -> false
    in
    let slice_index (addr : Ir.operand) =
      match addr with
      | Ir.Var a -> (
          let ai = Ir.instr ir a in
          match ai.op with
          | Ir.Bin (Ir.Add, x, y) when single_use a ->
              let try_pair base z =
                match z with
                | Ir.Var zv -> (
                    let zi = Ir.instr ir zv in
                    match zi.op with
                    | Ir.Cast (Ir.Zext, Ir.Var sv)
                      when (Ir.instr ir sv).width = 8 ->
                        Some (base, zv, sv, a)
                    | _ -> None)
                | Ir.Const _ -> None
              in
              (match try_pair x y with Some r -> Some r | None -> try_pair y x)
          | _ -> None)
      | _ -> None
    in
    let fuse_site iid addr =
      match slice_index addr with
      | Some (base, zv, sv, add_iid) ->
          Hashtbl.replace ctx.mem_index iid (base, sv);
          Hashtbl.replace ctx.fused_addr_adds add_iid ();
          (* force the index value into a slice *)
          if not (Hashtbl.mem ctx.vmap sv) then
            Hashtbl.replace ctx.vmap sv (fresh_vreg mf ~width:8);
          ignore zv
      | None -> ()
    in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            match i.op with
            | Ir.Load l when i.width = 8 && not l.l_volatile ->
                fuse_site i.iid l.l_addr
            | Ir.Store st when st.s_width = 8 && not st.s_volatile ->
                fuse_site i.iid st.s_addr
            | Ir.Cast (Ir.TruncCast, _)
              when Hashtbl.mem ctx.fused_truncs i.iid ->
                fuse_site i.iid (Hashtbl.find ctx.fused_truncs i.iid)
            | _ -> ())
          b.instrs)
      ir.blocks;
    (* a zext whose every user is a fused address add is dead code *)
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            match i.op with
            | Ir.Cast (Ir.Zext, _) -> (
                match Hashtbl.find_opt ctx.uses i.iid with
                | Some users
                  when users <> []
                       && List.for_all
                            (fun (u : Ir.instr) ->
                              Hashtbl.mem ctx.fused_addr_adds u.Ir.iid)
                            users ->
                    Hashtbl.replace ctx.fused_zexts i.iid ()
                | _ -> ())
            | _ -> ())
          b.instrs)
      ir.blocks
  end;
  (* salloc slots *)
  let next_slot = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.op with
          | Ir.Salloc n ->
              Hashtbl.replace ctx.salloc_slot i.iid !next_slot;
              mf.sallocs <- mf.sallocs @ [ (!next_slot, n) ];
              incr next_slot
          | _ -> ())
        b.instrs)
    ir.blocks;
  (* region propagation (§3.3.1) *)
  let region_of_bid = Hashtbl.create 8 in
  let handler_of_bid = Hashtbl.create 8 in
  List.iter
    (fun (r : Ir.region) ->
      List.iter
        (fun bid -> Hashtbl.replace region_of_bid bid r.Ir.rid)
        r.Ir.rblocks;
      Hashtbl.replace handler_of_bid r.Ir.rhandler r.Ir.rid;
      mf.mregions <-
        mf.mregions
        @ [ (r.Ir.rid,
             List.map (fun b -> Hashtbl.find ctx.bmap b) r.Ir.rblocks,
             Hashtbl.find ctx.bmap r.Ir.rhandler) ])
    ir.regions;
  (* lower blocks *)
  let mblocks =
    List.map
      (fun (b : Ir.block) ->
        let is_orig_name n =
          (* CFG_orig clones carry the squeezer's ".o" suffix *)
          let rec has i =
            i + 2 <= String.length n
            && (String.sub n i 2 = ".o" || has (i + 1))
          in
          has 0
        in
        let mb =
          { mbid = Hashtbl.find ctx.bmap b.bid;
            mphis = []; mins = [];
            in_region = Hashtbl.find_opt region_of_bid b.bid;
            handler_of = Hashtbl.find_opt handler_of_bid b.bid;
            is_orig = is_orig_name b.bname }
        in
        ctx.cur <- mb;
        (* incoming arguments *)
        if b.bid = (Ir.entry ir).bid then
          List.iteri
            (fun k (p : Ir.instr) ->
              let d = vreg_of ctx p in
              emit ctx (Margload (d, k));
              (* canonicalise narrow parameters *)
              if p.width < 32 && p.width > 1 then begin
                let t = fresh_vreg ctx.mf ~width:32 in
                emit ctx (Mmov (t, d));
                mask_to_width ctx ~width:p.width d t
              end)
            ir.param_instrs;
        (* phis collected first *)
        mb.mphis <-
          List.filter_map
            (fun (i : Ir.instr) ->
              match i.op with
              | Ir.Phi incoming ->
                  let d = vreg_of ctx i in
                  Some
                    ( d,
                      List.map
                        (fun (p, v) ->
                          let mp = Hashtbl.find ctx.bmap p in
                          match v with
                          | Ir.Const c -> (mp, Vi (Width.trunc 32 c.cval))
                          | Ir.Var x ->
                              (mp, Vr (vreg_of ctx (Ir.instr ir x))))
                        incoming )
              | _ -> None)
            b.instrs;
        List.iter (fun i -> lower_instr ctx b i) b.instrs;
        mb)
      ir.blocks
  in
  mf.mblocks <- mblocks;
  mf
