open Bs_isa
open Mir

(* Register allocation (§3.3.3).

   Phase 1 destroys SSA: critical edges are split and phis become parallel
   copies in predecessors (cycles broken through a temporary).

   Phase 2 is a linear scan over linearised SMIR.  Liveness uses the SMIR
   predecessor relation of equation (2): every block of a speculative
   region has an implicit edge to the region's handler, so values the
   handler (and the re-executed CFG_orig block) will read stay allocated
   across the whole region — the guarantee equation (9) provides in the
   paper.  Every 8-bit slice of every 32-bit register is exposed as an
   allocatable location: a 32-bit interval claims all four slices of a
   register, an 8-bit interval claims one, which is how multiple squeezed
   variables pack into one conventional register (§2.5).

   Calling convention: arguments on the stack, result in R0, callee saves
   every register it uses except R0.  Only intervals crossing a call must
   therefore avoid R0. *)

type loc =
  | Lreg of Isa.reg
  | Lslice of Isa.slice
  | Lstack of int          (* spill slot index *)

let allocatable = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
let scratch0 = 11
let scratch1 = 12

(* --- phi elimination --------------------------------------------------- *)

let preds_map (f : mfunc) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace tbl b.mbid []) f.mblocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find tbl s with Not_found -> [] in
          if not (List.mem b.mbid cur) then Hashtbl.replace tbl s (b.mbid :: cur))
        (succs b))
    f.mblocks;
  tbl

let retarget (b : mblock) ~from_ ~to_ =
  let t = terminator b in
  t.mop <-
    (match t.mop with
    | Mb x -> Mb (if x = from_ then to_ else x)
    | Mbc (c, x, y) ->
        Mbc (c, (if x = from_ then to_ else x), if y = from_ then to_ else y)
    | other -> other)

let split_critical_edges (f : mfunc) =
  let next_bid = ref (List.fold_left (fun m b -> max m b.mbid) 0 f.mblocks + 1) in
  let preds = preds_map f in
  List.iter
    (fun s ->
      if s.mphis <> [] then
        let ps = try Hashtbl.find preds s.mbid with Not_found -> [] in
        if List.length ps > 1 then
          List.iter
            (fun pbid ->
              let p = block f pbid in
              if List.length (succs p) > 1 then begin
                (* critical edge p -> s: interpose a block *)
                let nb =
                  { mbid = !next_bid; mphis = [];
                    mins = [ mk_instr (Mb s.mbid) ];
                    in_region = None; handler_of = None;
                    is_orig = s.is_orig && p.is_orig }
                in
                incr next_bid;
                retarget p ~from_:s.mbid ~to_:nb.mbid;
                (* phi incomings from p now arrive via nb *)
                s.mphis <-
                  List.map
                    (fun (d, incoming) ->
                      ( d,
                        List.map
                          (fun (q, v) -> ((if q = pbid then nb.mbid else q), v))
                          incoming ))
                    s.mphis;
                f.mblocks <- f.mblocks @ [ nb ]
              end)
            ps)
    f.mblocks

(* Emit one width-aware copy. *)
let copy_instr (f : mfunc) dst (src : vop2) =
  let wd = width_of f dst in
  match src with
  | Vi c -> mk_instr ~prov:PCopy (Mmovi (dst, c))
  | Vr s ->
      let ws = width_of f s in
      if wd = ws then mk_instr ~prov:PCopy (Mmov (dst, s))
      else if wd = 8 then mk_instr ~prov:PCopy (Mtrunc_exact (dst, s))
      else mk_instr ~prov:PCopy (Mext (Unsigned, dst, s))

(* Sequentialise a parallel copy, breaking cycles with a temporary. *)
let sequentialize (f : mfunc) (copies : (vreg * vop2) list) : minstr list =
  let pending = ref (List.filter (fun (d, s) -> s <> Vr d) copies) in
  let out = ref [] in
  let emit i = out := i :: !out in
  let src_is v (_, s) = s = Vr v in
  let rec loop () =
    match !pending with
    | [] -> ()
    | _ -> (
        match
          List.find_opt
            (fun (d, _) -> not (List.exists (src_is d) !pending))
            !pending
        with
        | Some ((d, s) as c) ->
            emit (copy_instr f d s);
            pending := List.filter (fun x -> x != c) !pending;
            loop ()
        | None ->
            (* cycle: rotate through a temp of the right width *)
            let (d, s) = List.hd !pending in
            let w = width_of f d in
            let t = fresh_vreg f ~width:w in
            emit (copy_instr f t (Vr d));
            pending :=
              List.map
                (fun (d', s') -> (d', if s' = Vr d then Vr t else s'))
                (List.tl !pending)
              @ [ (d, s) ];
            loop ())
  in
  loop ();
  List.rev !out

let eliminate_phis (f : mfunc) =
  split_critical_edges f;
  List.iter
    (fun s ->
      if s.mphis <> [] then begin
        (* group copies per incoming edge *)
        let by_pred = Hashtbl.create 4 in
        List.iter
          (fun (d, incoming) ->
            List.iter
              (fun (p, v) ->
                let cur = try Hashtbl.find by_pred p with Not_found -> [] in
                Hashtbl.replace by_pred p ((d, v) :: cur))
              incoming)
          s.mphis;
        Hashtbl.iter
          (fun pbid copies ->
            let p = block f pbid in
            let seq = sequentialize f copies in
            (* insert before the terminator *)
            let rec place = function
              | [ t ] when (match t.mop with Mb _ | Mbc _ | Mret _ -> true | _ -> false) ->
                  seq @ [ t ]
              | x :: rest -> x :: place rest
              | [] -> seq
            in
            p.mins <- place p.mins)
          by_pred;
        s.mphis <- []
      end)
    f.mblocks

(* --- liveness ----------------------------------------------------------- *)

module VSet = Set.Make (Int)

let liveness (f : mfunc) =
  (* equation (2): region blocks flow into their handler *)
  let handler_of_region = Hashtbl.create 4 in
  List.iter
    (fun (rid, _, h) -> Hashtbl.replace handler_of_region rid h)
    f.mregions;
  let succs_ext b =
    succs b
    @ (match b.in_region with
      | Some r -> (
          match Hashtbl.find_opt handler_of_region r with
          | Some h -> [ h ]
          | None -> [])
      | None -> [])
  in
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.replace live_in b.mbid VSet.empty;
      Hashtbl.replace live_out b.mbid VSet.empty)
    f.mblocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        let out =
          List.fold_left
            (fun acc s ->
              VSet.union acc
                (try Hashtbl.find live_in s with Not_found -> VSet.empty))
            VSet.empty (succs_ext b)
        in
        let inn =
          List.fold_right
            (fun i live ->
              let defs, uses = defs_uses i in
              let live = List.fold_left (fun l d -> VSet.remove d l) live defs in
              List.fold_left (fun l u -> VSet.add u l) live uses)
            b.mins out
        in
        if
          not
            (VSet.equal out (Hashtbl.find live_out b.mbid)
            && VSet.equal inn (Hashtbl.find live_in b.mbid))
        then begin
          Hashtbl.replace live_out b.mbid out;
          Hashtbl.replace live_in b.mbid inn;
          changed := true
        end)
      (List.rev f.mblocks)
  done;
  (live_in, live_out)

(* --- linear scan -------------------------------------------------------- *)

(* A live interval is a set of disjoint ranges (holes preserved).  Without
   holes, the implicit region->handler edges of equation (2) would stretch
   every value read by CFG_orig across the whole function and manufacture
   spill pressure the hardware does not have. *)

type interval = {
  ivreg : vreg;
  iwidth : int;
  mutable ranges : (int * int) list;   (* sorted, disjoint [start, end) *)
  mutable icrosses_call : bool;
}

type result = {
  assignment : (vreg, loc) Hashtbl.t;
  spill_slots : int;                  (* number of 4-byte spill slots *)
  used_regs : Isa.reg list;           (* physical registers touched *)
}

let interval_start iv = match iv.ranges with (s, _) :: _ -> s | [] -> 0

let add_range iv s e =
  (* ranges are built in increasing order; merge with the last one *)
  let rec insert = function
    | [] -> [ (s, e) ]
    | (s0, e0) :: rest when e < s0 -> (s, e) :: (s0, e0) :: rest
    | (s0, e0) :: rest when s > e0 -> (s0, e0) :: insert rest
    | (s0, e0) :: rest -> insert2 (min s s0) (max e e0) rest
  and insert2 s e = function
    | (s0, e0) :: rest when s0 <= e -> insert2 s (max e e0) rest
    | rest -> (s, e) :: rest
  in
  iv.ranges <- insert iv.ranges

(* Claimed ranges on one (reg, slice), keyed by start.  Claims only ever
   follow a successful free-probe, so the stored ranges are pairwise
   disjoint — which makes an overlap query a single predecessor lookup:
   among disjoint ranges, only the one with the greatest start below the
   query's end can reach into it. *)
module Occ = Map.Make (Int)

let occ_clashes (m : int Occ.t) (s, e) =
  match Occ.find_last_opt (fun k -> k < e) m with
  | Some (_, e0) -> e0 > s
  | None -> false

let occ_claim (m : int Occ.t) ranges =
  List.fold_left (fun m (s, e) -> Occ.add s e m) m ranges

let build_intervals (f : mfunc) =
  let live_in, live_out = liveness f in
  let pos = ref 0 in
  let tbl : (vreg, interval) Hashtbl.t = Hashtbl.create 64 in
  let call_positions = ref [] in
  let get v =
    match Hashtbl.find_opt tbl v with
    | Some iv -> iv
    | None ->
        let iv = { ivreg = v; iwidth = width_of f v; ranges = [];
                   icrosses_call = false } in
        Hashtbl.replace tbl v iv;
        iv
  in
  List.iter
    (fun b ->
      let bstart = !pos in
      let bend = bstart + List.length b.mins in
      let lin = Hashtbl.find live_in b.mbid in
      let lout = Hashtbl.find live_out b.mbid in
      (* per-block last use / first def positions *)
      let first_def = Hashtbl.create 8 and last_use = Hashtbl.create 8 in
      List.iteri
        (fun k i ->
          let defs, uses = defs_uses i in
          List.iter
            (fun u -> Hashtbl.replace last_use u (bstart + k)) uses;
          List.iter
            (fun d ->
              if not (Hashtbl.mem first_def d) then
                Hashtbl.replace first_def d (bstart + k))
            defs)
        b.mins;
      let vars = Hashtbl.create 16 in
      VSet.iter (fun v -> Hashtbl.replace vars v ()) lin;
      VSet.iter (fun v -> Hashtbl.replace vars v ()) lout;
      Hashtbl.iter (fun v _ -> Hashtbl.replace vars v ()) first_def;
      Hashtbl.iter (fun v _ -> Hashtbl.replace vars v ()) last_use;
      Hashtbl.iter
        (fun v () ->
          let s =
            if VSet.mem v lin then bstart
            else
              match Hashtbl.find_opt first_def v with
              | Some p -> p
              | None -> ( (* used before any def here: upward exposed *)
                  match Hashtbl.find_opt last_use v with
                  | Some _ -> bstart
                  | None -> bstart)
          in
          let e =
            if VSet.mem v lout then bend
            else
              match Hashtbl.find_opt last_use v with
              | Some p -> p + 1
              | None -> (
                  match Hashtbl.find_opt first_def v with
                  | Some p -> p + 1
                  | None -> bstart)
          in
          if e > s then add_range (get v) s e
          else add_range (get v) s (s + 1))
        vars;
      List.iteri
        (fun k i ->
          match i.mop with
          | Mcall _ -> call_positions := (bstart + k) :: !call_positions
          | _ -> ())
        b.mins;
      pos := bend)
    f.mblocks;
  (* call positions, sorted for a binary-search probe per range (the
     pairwise calls × ranges scan was quadratic on call-heavy code) *)
  let calls = Array.of_list (List.sort Int.compare !call_positions) in
  let ncalls = Array.length calls in
  (* any call position in [s, e)? *)
  let call_in s e =
    let lo = ref 0 and hi = ref ncalls in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if calls.(mid) < s then lo := mid + 1 else hi := mid
    done;
    !lo < ncalls && calls.(!lo) < e
  in
  Hashtbl.iter
    (fun _ iv ->
      iv.icrosses_call <-
        List.exists (fun (s, e) -> call_in s (e - 1)) iv.ranges)
    tbl;
  let intervals = Hashtbl.fold (fun _ iv acc -> iv :: acc) tbl [] in
  List.sort
    (fun a b -> compare (interval_start a, a.ivreg) (interval_start b, b.ivreg))
    intervals

(** [run ?regs f] allocates every virtual register of [f] to a register, a
    register slice, or a spill slot.  [regs] restricts the allocatable set
    (the Thumb build passes R0-R7). *)
(* RQ5's register-allocator heuristic: by default handlers are treated as
   almost-never-entered, so CFG_spec intervals allocate first and get the
   best registers; [orig_first] inverts the weights, giving CFG_orig
   first pick (the experiment that recovers MIN's code quality in §4). *)
let run ?(regs = allocatable) ?(orig_first = false) (f : mfunc) : result =
  let allocatable = regs in
  eliminate_phis f;
  let intervals = build_intervals f in
  let intervals =
    (* partition by where the interval starts: spec code lies before orig
       code in layout order, so block spans classify positions *)
    let pos = ref 0 in
    let orig_spans =
      List.filter_map
        (fun b ->
          let s = !pos in
          pos := !pos + List.length b.mins;
          if b.is_orig then Some (s, !pos) else None)
        f.mblocks
    in
    let starts_in_orig iv =
      List.exists
        (fun (s, e) -> interval_start iv >= s && interval_start iv < e)
        orig_spans
    in
    let o, sp = List.partition starts_in_orig intervals in
    if orig_first then o @ sp else sp @ o
  in
  (* Copy hints: allocating both ends of a move to the same register (or
     slice) lets the emitter elide it — this is what coalesces the phi
     webs the squeezer's SSA repair threads through CFG_orig. *)
  let hints : (vreg, vreg list) Hashtbl.t = Hashtbl.create 32 in
  let add_hint a b =
    let cur = try Hashtbl.find hints a with Not_found -> [] in
    Hashtbl.replace hints a (b :: cur)
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.mop with
          | Mmov (d, s) | Mtrunc_exact (d, s) | Mext (_, d, s) ->
              add_hint d s;
              add_hint s d
          | _ -> ())
        b.mins)
    f.mblocks;
  (* occupancy per (reg, slice) *)
  let occ : (int * int, int Occ.t ref) Hashtbl.t = Hashtbl.create 64 in
  let occ_of r s =
    match Hashtbl.find_opt occ (r, s) with
    | Some l -> l
    | None ->
        let l = ref Occ.empty in
        Hashtbl.replace occ (r, s) l;
        l
  in
  let slice_free r s iv =
    let m = !(occ_of r s) in
    not (List.exists (occ_clashes m) iv.ranges)
  in
  let reg_free r iv =
    slice_free r 0 iv && slice_free r 1 iv && slice_free r 2 iv
    && slice_free r 3 iv
  in
  let assignment = Hashtbl.create 64 in
  let spill_slots = ref 0 in
  let used = Hashtbl.create 16 in
  let claim_reg r iv =
    for s = 0 to 3 do
      let l = occ_of r s in
      l := occ_claim !l iv.ranges
    done;
    Hashtbl.replace used r ()
  in
  let claim_slice r s iv =
    let l = occ_of r s in
    l := occ_claim !l iv.ranges;
    Hashtbl.replace used r ()
  in
  let candidates iv =
    if iv.icrosses_call then List.filter (fun r -> r <> 0) allocatable
    else allocatable
  in
  let hinted_locs iv =
    match Hashtbl.find_opt hints iv.ivreg with
    | None -> []
    | Some partners ->
        List.filter_map (fun p -> Hashtbl.find_opt assignment p) partners
  in
  List.iter
    (fun iv ->
      if iv.iwidth = 8 then begin
        (* prefer the slice (or slice 0 of the register) a copy partner got *)
        let hint =
          List.find_map
            (fun l ->
              match l with
              | Lslice sl
                when List.mem sl.Isa.sl_reg (candidates iv)
                     && slice_free sl.Isa.sl_reg sl.Isa.sl_byte iv ->
                  Some (sl.Isa.sl_reg, sl.Isa.sl_byte)
              | Lreg r when List.mem r (candidates iv) && slice_free r 0 iv ->
                  Some (r, 0)
              | _ -> None)
            (hinted_locs iv)
        in
        match hint with
        | Some (r, sl) ->
            claim_slice r sl iv;
            Hashtbl.replace assignment iv.ivreg
              (Lslice { sl_reg = r; sl_byte = sl })
        | None ->
        (* packing: prefer a slice of a register already hosting other
           slice values (most occupied slices first) *)
        let score r =
          List.length
            (List.filter (fun s -> not (slice_free r s iv)) [ 0; 1; 2; 3 ])
        in
        let ranked =
          List.sort
            (fun a b -> compare (score b, a) (score a, b))
            (candidates iv)
        in
        let found =
          List.find_map
            (fun r ->
              List.find_map
                (fun s -> if slice_free r s iv then Some (r, s) else None)
                [ 0; 1; 2; 3 ])
            (List.filter (fun r -> score r > 0 && score r < 4) ranked)
        in
        let found =
          match found with
          | Some _ -> found
          | None ->
              List.find_map
                (fun r -> if reg_free r iv then Some (r, 0) else None)
                (candidates iv)
        in
        match found with
        | Some (r, s) ->
            claim_slice r s iv;
            Hashtbl.replace assignment iv.ivreg (Lslice { sl_reg = r; sl_byte = s })
        | None ->
            let slot = !spill_slots in
            incr spill_slots;
            Hashtbl.replace assignment iv.ivreg (Lstack slot)
      end
      else begin
        let hint =
          List.find_map
            (fun l ->
              match l with
              | Lreg r when List.mem r (candidates iv) && reg_free r iv ->
                  Some r
              | _ -> None)
            (hinted_locs iv)
        in
        let reg =
          match hint with
          | Some r -> Some r
          | None -> List.find_opt (fun r -> reg_free r iv) (candidates iv)
        in
        match reg with
        | Some r ->
            claim_reg r iv;
            Hashtbl.replace assignment iv.ivreg (Lreg r)
        | None ->
            let slot = !spill_slots in
            incr spill_slots;
            Hashtbl.replace assignment iv.ivreg (Lstack slot)
      end)
    intervals;
  { assignment; spill_slots = !spill_slots;
    used_regs = Hashtbl.fold (fun r () acc -> r :: acc) used [] }
