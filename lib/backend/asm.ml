open Bs_isa
open Isa
open Mir
open Regalloc

(* Code emission, layout and linking (§3.3.4).

   Emission maps allocated SMIR to BSARM instructions, inserting spill
   loads/stores (tagged for the Figure 10 counters) and the function
   prologue/epilogue of the stack-args calling convention.

   Layout realises the skeleton-block co-design: every block belonging to
   a speculative region is placed in one contiguous low area; a skeleton
   area of exactly the same size follows, where the slot at offset k holds
   an unconditional branch to the handler of the region owning low-area
   instruction k.  Δ is the size of the low area, so the hardware's
   PC := PC + Δ on misspeculation lands on precisely the branch that
   reaches the right handler.  Δ is a single program-wide constant, as in
   the paper's artifact. *)

exception Emit_error of string

type raw =
  | RI of insn * provenance * Mir.site option
  | RBr of cond option * int * provenance     (* local block target *)
  | RCall of string

(* an emitted block: function, MIR block id, region?, instructions *)
type eblock = {
  e_fn : string;
  e_bid : int;
  e_region : int option;      (* region id if the block is in a region *)
  e_handler : bool;
  mutable e_raw : raw list;
}

type program = {
  code : insn array;
  prov : provenance array;
  srcmap : Mir.site option array;  (* per-pc attribution (speculative ops) *)
  entries : (string, int) Hashtbl.t;
  delta : int;
  halt_pc : int;
  handler_pcs : (int, unit) Hashtbl.t;  (* pcs inside handler blocks *)
}

let frame_align n = (n + 7) / 8 * 8

type fctx = {
  mf : mfunc;
  ra : Regalloc.result;
  addr_of_global : string -> int;
  salloc_off : (int, int) Hashtbl.t;
  spill_base : int;          (* offset of spill slot 0 *)
  frame_total : int;
  saved : reg list;          (* callee-saved registers, ordered *)
  mutable sp_adjust : int;   (* extra SP displacement during call setup *)
  mutable out : raw list;    (* reversed *)
  mutable cur_src : Mir.site option;  (* attribution of the minstr in flight *)
}

let emit c ?(prov = PNormal) i = c.out <- RI (i, prov, c.cur_src) :: c.out

let spill_off c slot = c.spill_base + (4 * slot) + c.sp_adjust

let loc_of c v =
  match Hashtbl.find_opt c.ra.assignment v with
  | Some l -> l
  | None -> Lreg scratch0 (* dead value: any location *)

(* Read a 32-bit vreg into a physical register (scratch when spilled). *)
let read32 c v ~scratch =
  match loc_of c v with
  | Lreg r -> r
  | Lstack slot ->
      emit c ~prov:PSpillLoad (LDR (W32, Unsigned, scratch, sp, spill_off c slot));
      scratch
  | Lslice _ -> raise (Emit_error "32-bit vreg in a slice")

(* Slice spill traffic: BLDRB/BSTRB carry an 8-bit offset; frames larger
   than that go through LR as an emergency address register (LR is only
   live at prologue/epilogue and across BL, never inside these
   sequences). *)
let slice_spill_addr c slot =
  let off = spill_off c slot in
  if off <= 255 then (sp, off)
  else begin
    emit c (ALU (OpAdd, lr, sp, Imm off));
    (lr, 0)
  end

(* Read an 8-bit vreg as a slice; spills load into the given scratch
   slice. *)
let read8 c v ~scratch_slice =
  match loc_of c v with
  | Lslice s -> s
  | Lstack slot ->
      let base, off = slice_spill_addr c slot in
      emit c ~prov:PSpillLoad (BLDRB (scratch_slice, base, BOff off));
      scratch_slice
  | Lreg _ -> raise (Emit_error "8-bit vreg in a full register")

(* Destination helpers: return the register/slice to write, plus a closure
   storing it back if the vreg is spilled. *)
let write32 c v ~scratch =
  match loc_of c v with
  | Lreg r -> (r, fun () -> ())
  | Lstack slot ->
      ( scratch,
        fun () ->
          emit c ~prov:PSpillStore (STR (W32, scratch, sp, spill_off c slot)) )
  | Lslice _ -> raise (Emit_error "32-bit vreg in a slice")

let write8 c v ~scratch_slice =
  match loc_of c v with
  | Lslice s -> (s, fun () -> ())
  | Lstack slot ->
      ( scratch_slice,
        fun () ->
          let base, off = slice_spill_addr c slot in
          emit c ~prov:PSpillStore (BSTRB (scratch_slice, base, BOff off)) )
  | Lreg _ -> raise (Emit_error "8-bit vreg in a full register")

let load_const c r (v : int64) =
  let v = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
  let lo = v land 0xFFFF and hi = (v lsr 16) land 0xFFFF in
  emit c (MOVW (r, lo));
  if hi <> 0 then emit c (MOVT (r, hi))

let is_width8 c v = width_of c.mf v = 8

let emit_instr (c : fctx) (i : minstr) =
  let prov = i.prov in
  match i.mop with
  | Mmov (d, s) ->
      if is_width8 c d then begin
        let ss = read8 c s ~scratch_slice:{ sl_reg = scratch0; sl_byte = 0 } in
        let ds, fin = write8 c d ~scratch_slice:{ sl_reg = scratch1; sl_byte = 0 } in
        emit c ~prov (BMOV (ds, ss));
        fin ()
      end
      else begin
        let sr = read32 c s ~scratch:scratch0 in
        let dr, fin = write32 c d ~scratch:scratch1 in
        if dr <> sr then emit c ~prov (MOV (dr, sr));
        fin ()
      end
  | Mmovi (d, v) ->
      if is_width8 c d then begin
        let ds, fin = write8 c d ~scratch_slice:{ sl_reg = scratch0; sl_byte = 0 } in
        emit c ~prov (BMOVI (ds, Int64.to_int (Int64.logand v 0xFFL)));
        fin ()
      end
      else begin
        let dr, fin = write32 c d ~scratch:scratch0 in
        load_const c dr v;
        fin ()
      end
  | Malu (op, d, n, o) ->
      if is_width8 c d then begin
        let bop =
          match op with
          | OpAdd -> BAdd | OpSub -> BSub | OpAnd -> BAnd | OpOrr -> BOrr
          | OpEor -> BEor
          | _ -> raise (Emit_error "slice shift")
        in
        let ns = read8 c n ~scratch_slice:{ sl_reg = scratch0; sl_byte = 0 } in
        let o2 =
          match o with
          | Vi v when Int64.compare v 0L >= 0 && Int64.compare v 15L <= 0 ->
              BImm (Int64.to_int v)
          | Vi v ->
              let s = { sl_reg = scratch1; sl_byte = 1 } in
              emit c (BMOVI (s, Int64.to_int (Int64.logand v 0xFFL)));
              Sl s
          | Vr m -> Sl (read8 c m ~scratch_slice:{ sl_reg = scratch1; sl_byte = 1 })
        in
        let ds, fin = write8 c d ~scratch_slice:{ sl_reg = scratch1; sl_byte = 0 } in
        emit c ~prov (BALU (bop, ds, ns, o2));
        fin ()
      end
      else begin
        let nr = read32 c n ~scratch:scratch0 in
        let o2 =
          match o with
          | Vi v when Int64.compare v 0L >= 0 && Int64.compare v 0x7FFFL <= 0 ->
              Imm (Int64.to_int v)
          | Vi v ->
              load_const c scratch1 v;
              Reg scratch1
          | Vr m -> Reg (read32 c m ~scratch:scratch1)
        in
        let dr, fin = write32 c d ~scratch:scratch0 in
        emit c ~prov (ALU (op, dr, nr, o2));
        fin ()
      end
  | Mmul (d, n, m) ->
      let nr = read32 c n ~scratch:scratch0 in
      let mr = read32 c m ~scratch:scratch1 in
      let dr, fin = write32 c d ~scratch:scratch0 in
      emit c ~prov (MUL (dr, nr, mr));
      fin ()
  | Mdiv (sg, d, n, m) ->
      let nr = read32 c n ~scratch:scratch0 in
      let mr = read32 c m ~scratch:scratch1 in
      let dr, fin = write32 c d ~scratch:scratch0 in
      emit c ~prov (DIV (sg, dr, nr, mr));
      fin ()
  | Mcmp (n, o) ->
      if is_width8 c n then begin
        let ns = read8 c n ~scratch_slice:{ sl_reg = scratch0; sl_byte = 0 } in
        let o2 =
          match o with
          | Vi v -> BImm (Int64.to_int (Int64.logand v 0xFFL))
          | Vr m -> Sl (read8 c m ~scratch_slice:{ sl_reg = scratch1; sl_byte = 1 })
        in
        emit c ~prov (BCMPS (ns, o2))
      end
      else begin
        let nr = read32 c n ~scratch:scratch0 in
        let o2 =
          match o with
          | Vi v when Int64.compare v 0L >= 0 && Int64.compare v 0x3FFFFFL <= 0 ->
              Imm (Int64.to_int v)
          | Vi v ->
              load_const c scratch1 v;
              Reg scratch1
          | Vr m -> Reg (read32 c m ~scratch:scratch1)
        in
        emit c ~prov (CMP (nr, o2))
      end
  | Mcset (cc, d) ->
      let dr, fin = write32 c d ~scratch:scratch0 in
      emit c ~prov (CSET (cc, dr));
      fin ()
  | Mb t -> c.out <- RBr (None, t, prov) :: c.out
  | Mbc (cc, t, e) ->
      c.out <- RBr (Some cc, t, prov) :: c.out;
      c.out <- RBr (None, e, prov) :: c.out
  | Mcall (callee, args, ret) ->
      let n = List.length args in
      let bytes = 4 * n in
      if n > 0 then emit c (ALU (OpSub, sp, sp, Imm bytes));
      c.sp_adjust <- c.sp_adjust + bytes;
      List.iteri
        (fun k a ->
          let r = read32 c a ~scratch:scratch0 in
          emit c (STR (W32, r, sp, 4 * k)))
        args;
      c.out <- RCall callee :: c.out;
      c.sp_adjust <- c.sp_adjust - bytes;
      if n > 0 then emit c (ALU (OpAdd, sp, sp, Imm bytes));
      (match ret with
      | Some d ->
          let dr, fin = write32 c d ~scratch:scratch0 in
          if dr <> 0 then emit c (MOV (dr, 0));
          fin ()
      | None -> ())
  | Mret v ->
      (match v with
      | Some x ->
          let r = read32 c x ~scratch:scratch0 in
          if r <> 0 then emit c (MOV (0, r))
      | None -> ());
      (* epilogue *)
      List.iteri
        (fun k r ->
          emit c ~prov:PPrologue
            (LDR (W32, Unsigned, r, sp,
                  c.spill_base + (4 * c.ra.spill_slots) + (4 * k))))
        c.saved;
      emit c ~prov:PPrologue
        (LDR (W32, Unsigned, lr, sp,
              c.spill_base + (4 * c.ra.spill_slots) + (4 * List.length c.saved)));
      emit c ~prov:PPrologue (ALU (OpAdd, sp, sp, Imm c.frame_total));
      emit c ~prov:PPrologue BX_LR
  | Mload (w, sg, d, a, off) ->
      let ar = read32 c a ~scratch:scratch0 in
      if is_width8 c d then begin
        let ds, fin = write8 c d ~scratch_slice:{ sl_reg = scratch1; sl_byte = 0 } in
        emit c ~prov (BLDRB (ds, ar, BOff off));
        fin ()
      end
      else begin
        let dr, fin = write32 c d ~scratch:scratch1 in
        emit c ~prov (LDR (w, sg, dr, ar, off));
        fin ()
      end
  | Mloadspec (d, a, off) ->
      let ar = read32 c a ~scratch:scratch0 in
      let ds, fin = write8 c d ~scratch_slice:{ sl_reg = scratch1; sl_byte = 0 } in
      emit c ~prov (BLDRS (ds, ar, BOff off));
      fin ()
  | Mload8x (d, a, x) ->
      let ar = read32 c a ~scratch:scratch0 in
      let xs = read8 c x ~scratch_slice:{ sl_reg = scratch1; sl_byte = 1 } in
      let ds, fin = write8 c d ~scratch_slice:{ sl_reg = scratch1; sl_byte = 0 } in
      emit c ~prov (BLDRB (ds, ar, BIdx xs));
      fin ()
  | Mloadspecx (d, a, x) ->
      let ar = read32 c a ~scratch:scratch0 in
      let xs = read8 c x ~scratch_slice:{ sl_reg = scratch1; sl_byte = 1 } in
      let ds, fin = write8 c d ~scratch_slice:{ sl_reg = scratch1; sl_byte = 0 } in
      emit c ~prov (BLDRS (ds, ar, BIdx xs));
      fin ()
  | Mstore8x (sv, a, x) ->
      let ss = read8 c sv ~scratch_slice:{ sl_reg = scratch0; sl_byte = 0 } in
      let ar = read32 c a ~scratch:scratch1 in
      let xs = read8 c x ~scratch_slice:{ sl_reg = scratch0; sl_byte = 1 } in
      emit c ~prov (BSTRB (ss, ar, BIdx xs))
  | Mstore (w, s, a, off) ->
      if w = W8 && is_width8 c s then begin
        let ss = read8 c s ~scratch_slice:{ sl_reg = scratch0; sl_byte = 0 } in
        let ar = read32 c a ~scratch:scratch1 in
        emit c ~prov (BSTRB (ss, ar, BOff off))
      end
      else begin
        let sr = read32 c s ~scratch:scratch0 in
        let ar = read32 c a ~scratch:scratch1 in
        emit c ~prov (STR (w, sr, ar, off))
      end
  | Mext (sg, d, s) ->
      let ss = read8 c s ~scratch_slice:{ sl_reg = scratch0; sl_byte = 0 } in
      let dr, fin = write32 c d ~scratch:scratch1 in
      emit c ~prov (BEXT (sg, dr, ss));
      fin ()
  | Mtrunc_spec (d, s) ->
      let sr = read32 c s ~scratch:scratch0 in
      let ds, fin = write8 c d ~scratch_slice:{ sl_reg = scratch1; sl_byte = 0 } in
      emit c ~prov (BTRN (ds, sr));
      fin ()
  | Mtrunc_exact (d, s) ->
      let sr = read32 c s ~scratch:scratch0 in
      let ds, fin = write8 c d ~scratch_slice:{ sl_reg = scratch1; sl_byte = 0 } in
      emit c ~prov (BMOV (ds, { sl_reg = sr; sl_byte = 0 }));
      fin ()
  | Muxt (w, d, s) ->
      let sr = read32 c s ~scratch:scratch0 in
      let dr, fin = write32 c d ~scratch:scratch1 in
      emit c ~prov (UXT (w, dr, sr));
      fin ()
  | Msxt (w, d, s) ->
      let sr = read32 c s ~scratch:scratch0 in
      let dr, fin = write32 c d ~scratch:scratch1 in
      emit c ~prov (SXT (w, dr, sr));
      (* canonical form keeps the full sign-extended 32-bit value *)
      fin ()
  | Mgaddr (d, g) ->
      let dr, fin = write32 c d ~scratch:scratch0 in
      load_const c dr (Int64.of_int (c.addr_of_global g));
      fin ()
  | Mframeaddr (d, slot) ->
      let dr, fin = write32 c d ~scratch:scratch0 in
      emit c (ALU (OpAdd, dr, sp, Imm (Hashtbl.find c.salloc_off slot)));
      fin ()
  | Margload (d, k) ->
      let dr, fin = write32 c d ~scratch:scratch0 in
      emit c ~prov (LDR (W32, Unsigned, dr, sp, c.frame_total + (4 * k)));
      fin ()

(* --- function emission -------------------------------------------------- *)

let emit_func ~addr_of_global (mf : mfunc) (ra : Regalloc.result) : eblock list =
  (* frame layout *)
  let salloc_off = Hashtbl.create 4 in
  let cursor = ref 0 in
  List.iter
    (fun (slot, bytes) ->
      Hashtbl.replace salloc_off slot !cursor;
      cursor := !cursor + frame_align bytes)
    mf.sallocs;
  let spill_base = !cursor in
  let saved =
    List.sort compare (List.filter (fun r -> r <> 0) ra.used_regs)
  in
  let frame_total =
    frame_align (spill_base + (4 * ra.spill_slots) + (4 * List.length saved) + 4)
  in
  let handler_blocks = Hashtbl.create 4 in
  List.iter
    (fun (rid, _, h) -> Hashtbl.replace handler_blocks h rid)
    mf.mregions;
  let c =
    { mf; ra; addr_of_global; salloc_off; spill_base; frame_total; saved;
      sp_adjust = 0; out = []; cur_src = None }
  in
  List.mapi
    (fun idx (b : mblock) ->
      c.out <- [];
      (* prologue in the entry block *)
      if idx = 0 then begin
        emit c ~prov:PPrologue (ALU (OpSub, sp, sp, Imm frame_total));
        List.iteri
          (fun k r ->
            emit c ~prov:PPrologue
              (STR (W32, r, sp, spill_base + (4 * ra.spill_slots) + (4 * k))))
          saved;
        emit c ~prov:PPrologue
          (STR (W32, lr, sp,
                spill_base + (4 * ra.spill_slots) + (4 * List.length saved)))
      end;
      List.iter
        (fun (i : minstr) ->
          c.cur_src <- (if i.speculative then i.msite else None);
          emit_instr c i;
          c.cur_src <- None)
        b.mins;
      { e_fn = mf.mname; e_bid = b.mbid; e_region = b.in_region;
        e_handler = Hashtbl.mem handler_blocks b.mbid;
        e_raw = List.rev c.out })
    mf.mblocks

(* --- module layout and linking ------------------------------------------ *)

let assemble ~addr_of_global (funcs : (mfunc * Regalloc.result) list) : program =
  let all_blocks =
    List.concat_map (fun (mf, ra) -> emit_func ~addr_of_global mf ra) funcs
  in
  let low, rest = List.partition (fun b -> b.e_region <> None) all_blocks in
  let low_size =
    List.fold_left (fun n b -> n + List.length b.e_raw) 0 low
  in
  let delta = low_size in
  (* assign addresses: [low][skeleton][rest][halt] *)
  let labels : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  let pc = ref 0 in
  let place blocks =
    List.iter
      (fun b ->
        Hashtbl.replace labels (b.e_fn, b.e_bid) !pc;
        pc := !pc + List.length b.e_raw)
      blocks
  in
  place low;
  let skeleton_start = !pc in
  pc := !pc + low_size;
  place rest;
  let halt_pc = !pc in
  let total = !pc + 1 in
  assert (skeleton_start = delta);
  (* handler lookup per low-area instruction slot *)
  let handler_label_of_region =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (mf, _) ->
        List.iter
          (fun (rid, _, h) -> Hashtbl.replace tbl (mf.mname, rid) (mf.mname, h))
          mf.mregions)
      funcs;
    tbl
  in
  let code = Array.make total NOP in
  let prov = Array.make total PNormal in
  let srcmap = Array.make total None in
  let resolve_label fn bid =
    match Hashtbl.find_opt labels (fn, bid) with
    | Some a -> a
    | None -> raise (Emit_error (Printf.sprintf "unresolved label %s/mb%d" fn bid))
  in
  let entries = Hashtbl.create 8 in
  List.iter
    (fun (mf, _) ->
      Hashtbl.replace entries mf.mname
        (resolve_label mf.mname
           (match mf.mblocks with b :: _ -> b.mbid | [] -> 0)))
    funcs;
  let handler_pcs = Hashtbl.create 16 in
  let emit_block (b : eblock) =
    let base = resolve_label b.e_fn b.e_bid in
    List.iteri
      (fun k raw ->
        let a = base + k in
        if b.e_handler then Hashtbl.replace handler_pcs a ();
        match raw with
        | RI (i, p, src) ->
            code.(a) <- i;
            prov.(a) <- p;
            srcmap.(a) <- src
        | RBr (None, t, p) ->
            code.(a) <- B (resolve_label b.e_fn t);
            prov.(a) <- p
        | RBr (Some cc, t, p) ->
            code.(a) <- BC (cc, resolve_label b.e_fn t);
            prov.(a) <- p
        | RCall callee -> (
            match Hashtbl.find_opt entries callee with
            | Some e -> code.(a) <- BL e
            | None -> raise (Emit_error ("undefined function " ^ callee))))
      b.e_raw
  in
  List.iter emit_block low;
  List.iter emit_block rest;
  (* skeleton area: slot k mirrors low-area instruction k (§3.3.4) *)
  let k = ref 0 in
  List.iter
    (fun b ->
      let rid = Option.get b.e_region in
      let hfn, hbid = Hashtbl.find handler_label_of_region (b.e_fn, rid) in
      let target = resolve_label hfn hbid in
      List.iter
        (fun _ ->
          code.(skeleton_start + !k) <- B target;
          prov.(skeleton_start + !k) <- PSkeleton;
          incr k)
        b.e_raw)
    low;
  code.(halt_pc) <- HALT;
  { code; prov; srcmap; entries; delta; halt_pc; handler_pcs }

let disassemble (p : program) =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i insn ->
      Buffer.add_string buf (Printf.sprintf "%6d: %s\n" i (Isa.to_string insn)))
    p.code;
  Buffer.contents buf
