(* Speculative IR ("SIR", paper §3.1): an LLVM-like SSA intermediate
   representation extended with speculative regions.

   Every instruction that produces a value defines exactly one SSA variable,
   identified by the instruction's [iid].  Operands reference defining
   instructions by id, so the IR is a mutable graph keyed by integer ids,
   with per-function lookup tables.  Blocks hold their instructions in
   order, terminator last. *)

(** Binary integer operations. Signedness is encoded in the operation, not
    the type, exactly as in LLVM. *)
type binop =
  | Add | Sub | Mul | Udiv | Sdiv | Urem | Srem
  | And | Or | Xor | Shl | Lshr | Ashr

(** Integer comparison predicates. *)
type cmpop = Eq | Ne | Ult | Ule | Ugt | Uge | Slt | Sle | Sgt | Sge

(** Width conversions. The destination width is the instruction's width. *)
type castop = Zext | Sext | TruncCast

(** A typed integer literal: the payload is kept truncated to [cwidth]. *)
type const = { cval : int64; cwidth : int }

(** An operand is either the SSA variable defined by instruction [iid], or
    a constant. *)
type operand = Var of int | Const of const

type load_info = { l_addr : operand; l_volatile : bool }
type store_info = { s_addr : operand; s_value : operand; s_width : int; s_volatile : bool }
type call_info = { callee : string; args : operand list }

(** Instruction payloads.  [Load] reads the instruction's width from
    memory; [Store] writes [s_width] bits.  [Gaddr] yields the address of a
    module global; [Salloc n] reserves [n] bytes of function-local stack
    and yields its address.  [Param k] is the pseudo-definition of the
    k-th function parameter. *)
type op =
  | Param of int
  | Bin of binop * operand * operand
  | Cmp of cmpop * operand * operand
  | Cast of castop * operand
  | Select of operand * operand * operand
  | Phi of (int * operand) list        (* (predecessor block id, value) *)
  | Load of load_info
  | Store of store_info
  | Gaddr of string
  | Salloc of int
  | Call of call_info
  | Br of int
  | Cbr of operand * int * int
  | Ret of operand option
  | Unreachable

type instr = {
  iid : int;
  mutable op : op;
  mutable width : int;          (* result width in bits; 0 = no result *)
  mutable speculative : bool;   (* set by the squeezer (§3.2.3 pass 2) *)
  mutable iname : string;       (* printing hint only *)
  mutable line : int;           (* source line; 0 = unknown/synthetic *)
}

type block = {
  bid : int;
  mutable bname : string;
  mutable instrs : instr list;  (* non-empty once built; terminator last *)
}

(** A speculative region (§3.1.1): a single-entry single-exit sequence of
    blocks with a unique misspeculation handler. *)
type region = {
  rid : int;
  mutable rblocks : int list;
  mutable rhandler : int;
}

type func = {
  fname : string;
  params : (string * int) list;
  ret_width : int;                       (* 0 = void *)
  param_instrs : instr list;             (* Param pseudo-definitions *)
  mutable blocks : block list;           (* entry first; layout order *)
  mutable regions : region list;
  itbl : (int, instr) Hashtbl.t;
  btbl : (int, block) Hashtbl.t;
  mutable next_id : int;
}

(** A module global: a flat array of [count] elements of [elem_width] bits.
    Scalars are arrays of length one. *)
type global = {
  gname : string;
  elem_width : int;
  count : int;
  mutable ginit : int64 array;  (* [||] means zero-initialised *)
}

type modul = {
  mutable funcs : func list;
  mutable globals : global list;
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let fresh_id f =
  let id = f.next_id in
  f.next_id <- id + 1;
  id

let create_func ~name ~params ~ret_width =
  let f =
    { fname = name; params; ret_width; param_instrs = [];
      blocks = []; regions = []; itbl = Hashtbl.create 64;
      btbl = Hashtbl.create 16; next_id = 0 }
  in
  let param_instrs =
    List.mapi
      (fun k (pname, w) ->
        let i = { iid = fresh_id f; op = Param k; width = w;
                  speculative = false; iname = pname; line = 0 } in
        Hashtbl.replace f.itbl i.iid i;
        i)
      params
  in
  { f with param_instrs }

let add_block f name =
  let b = { bid = fresh_id f; bname = name; instrs = [] } in
  Hashtbl.replace f.btbl b.bid b;
  f.blocks <- f.blocks @ [ b ];
  b

(** [insert_block_after f anchor name] creates a block placed directly
    after [anchor] in layout order. *)
let insert_block_after f anchor name =
  let b = { bid = fresh_id f; bname = name; instrs = [] } in
  Hashtbl.replace f.btbl b.bid b;
  let rec place = function
    | [] -> [ b ]
    | x :: rest when x.bid = anchor.bid -> x :: b :: rest
    | x :: rest -> x :: place rest
  in
  f.blocks <- place f.blocks;
  b

let mk_instr f ?(name = "") ?(line = 0) ~width op =
  let i =
    { iid = fresh_id f; op; width; speculative = false; iname = name; line }
  in
  Hashtbl.replace f.itbl i.iid i;
  i

let append_instr b i = b.instrs <- b.instrs @ [ i ]

let prepend_instr b i = b.instrs <- i :: b.instrs

let instr f iid =
  match Hashtbl.find_opt f.itbl iid with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Ir.instr: unknown id %%%d in %s" iid f.fname)

let block f bid =
  match Hashtbl.find_opt f.btbl bid with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Ir.block: unknown block %d in %s" bid f.fname)

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("Ir.entry: empty function " ^ f.fname)

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs

let find_global m name = List.find_opt (fun g -> g.gname = name) m.globals

(** [copy_func f] deep-copies a function: fresh instruction and block
    records, rebuilt lookup tables.  Mutating the copy (or the original)
    never affects the other — the degradation driver snapshots functions
    before risky passes and restores the copy on failure. *)
let copy_func (f : func) : func =
  let itbl = Hashtbl.create (Hashtbl.length f.itbl) in
  let copy_instr (i : instr) =
    let i' = { i with iid = i.iid } in
    Hashtbl.replace itbl i'.iid i';
    i'
  in
  let param_instrs = List.map copy_instr f.param_instrs in
  let btbl = Hashtbl.create (Hashtbl.length f.btbl) in
  let blocks =
    List.map
      (fun (b : block) ->
        let b' = { b with instrs = List.map copy_instr b.instrs } in
        Hashtbl.replace btbl b'.bid b';
        b')
      f.blocks
  in
  (* instructions registered but not placed in any block (detached by a
     pass) still need table entries so id lookups keep resolving *)
  Hashtbl.iter
    (fun iid i ->
      if not (Hashtbl.mem itbl iid) then
        Hashtbl.replace itbl iid { i with iid = i.iid })
    f.itbl;
  let regions =
    List.map (fun (r : region) -> { r with rblocks = r.rblocks }) f.regions
  in
  { f with param_instrs; blocks; regions; itbl; btbl }

(** Deep copy of a whole module (functions and global initialisers). *)
let copy_module (m : modul) : modul =
  { funcs = List.map copy_func m.funcs;
    globals =
      List.map (fun g -> { g with ginit = Array.copy g.ginit }) m.globals }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let is_terminator i =
  match i.op with Br _ | Cbr _ | Ret _ | Unreachable -> true | _ -> false

let terminator b =
  match List.rev b.instrs with
  | t :: _ when is_terminator t -> t
  | _ -> invalid_arg (Printf.sprintf "Ir.terminator: block %s lacks one" b.bname)

let body_instrs b =
  List.filter (fun i -> not (is_terminator i)) b.instrs

let is_phi i = match i.op with Phi _ -> true | _ -> false

let has_result i = i.width > 0

let succs b =
  match (terminator b).op with
  | Br t -> [ t ]
  | Cbr (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Ret _ | Unreachable -> []
  | _ -> []

(** Operand list of an instruction, in evaluation order. *)
let operands i =
  match i.op with
  | Param _ | Gaddr _ | Salloc _ | Br _ | Unreachable -> []
  | Bin (_, a, b) | Cmp (_, a, b) -> [ a; b ]
  | Cast (_, a) -> [ a ]
  | Select (c, a, b) -> [ c; a; b ]
  | Phi incoming -> List.map snd incoming
  | Load l -> [ l.l_addr ]
  | Store s -> [ s.s_addr; s.s_value ]
  | Call c -> c.args
  | Cbr (c, _, _) -> [ c ]
  | Ret (Some v) -> [ v ]
  | Ret None -> []

(** [map_operands fn i] rewrites each operand of [i] through [fn],
    mutating the instruction in place. *)
let map_operands fn i =
  let g = fn in
  i.op <-
    (match i.op with
    | Param _ | Gaddr _ | Salloc _ | Br _ | Unreachable -> i.op
    | Bin (o, a, b) -> Bin (o, g a, g b)
    | Cmp (o, a, b) -> Cmp (o, g a, g b)
    | Cast (o, a) -> Cast (o, g a)
    | Select (c, a, b) -> Select (g c, g a, g b)
    | Phi incoming -> Phi (List.map (fun (p, v) -> (p, g v)) incoming)
    | Load l -> Load { l with l_addr = g l.l_addr }
    | Store s -> Store { s with s_addr = g s.s_addr; s_value = g s.s_value }
    | Call c -> Call { c with args = List.map g c.args }
    | Cbr (c, t, e) -> Cbr (g c, t, e)
    | Ret (Some v) -> Ret (Some (g v))
    | Ret None -> Ret None)

(** [map_block_targets fn i] rewrites the block ids mentioned by [i]
    (branch targets and phi incoming edges) through [fn]. *)
let map_block_targets fn i =
  i.op <-
    (match i.op with
    | Br t -> Br (fn t)
    | Cbr (c, t, e) -> Cbr (c, fn t, fn e)
    | Phi incoming -> Phi (List.map (fun (p, v) -> (fn p, v)) incoming)
    | other -> other)

(** Plain CFG predecessor map: block id -> predecessor block ids. *)
let preds_map f =
  let tbl = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace tbl b.bid []) f.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find tbl s with Not_found -> [] in
          if not (List.mem b.bid cur) then Hashtbl.replace tbl s (b.bid :: cur))
        (succs b))
    f.blocks;
  tbl

let preds f bid =
  match Hashtbl.find_opt (preds_map f) bid with Some l -> l | None -> []

(* ------------------------------------------------------------------ *)
(* Speculative regions                                                 *)
(* ------------------------------------------------------------------ *)

let add_region f ~blocks ~handler =
  let r = { rid = fresh_id f; rblocks = blocks; rhandler = handler } in
  f.regions <- f.regions @ [ r ];
  r

let region_of_block f bid =
  List.find_opt (fun r -> List.mem bid r.rblocks) f.regions

let region_entry r =
  match r.rblocks with
  | b :: _ -> b
  | [] -> invalid_arg "Ir.region_entry: empty region"

let is_handler f bid = List.exists (fun r -> r.rhandler = bid) f.regions

let handler_region f bid = List.find_opt (fun r -> r.rhandler = bid) f.regions

(** SIR predecessor relation (§3.1.2, equation 1): the predecessors of a
    handler are the predecessors of its region's entry block; all other
    blocks use the plain CFG relation. *)
let preds_sir f =
  let base = preds_map f in
  let tbl = Hashtbl.copy base in
  List.iter
    (fun r ->
      let entry_preds =
        match Hashtbl.find_opt base (region_entry r) with
        | Some (_ :: _ as l) -> l
        | _ ->
            (* the region entry is the function entry (or has no explicit
               predecessors): the handler still executes strictly after it,
               so for dominance purposes the entry itself stands in *)
            [ region_entry r ]
      in
      Hashtbl.replace tbl r.rhandler entry_preds)
    f.regions;
  tbl

(** SMIR predecessor relation (§3.1.3, equation 2): every block of a region
    is a predecessor of the region's handler, modelling misspeculation
    control flow. *)
let preds_smir f =
  let tbl = Hashtbl.copy (preds_map f) in
  List.iter
    (fun r -> Hashtbl.replace tbl r.rhandler r.rblocks)
    f.regions;
  tbl

(* ------------------------------------------------------------------ *)
(* Use lists and rewriting                                             *)
(* ------------------------------------------------------------------ *)

(** [uses f] builds a map from defining instruction id to the list of
    instructions that read it (including phis and terminators). *)
let uses f =
  let tbl = Hashtbl.create 64 in
  let record user = function
    | Var v ->
        let cur = try Hashtbl.find tbl v with Not_found -> [] in
        Hashtbl.replace tbl v (user :: cur)
    | Const _ -> ()
  in
  List.iter
    (fun b -> List.iter (fun i -> List.iter (record i) (operands i)) b.instrs)
    f.blocks;
  tbl

(** [replace_all_uses f ~old_id ~by] substitutes operand [Var old_id] with
    [by] everywhere in [f]. *)
let replace_all_uses f ~old_id ~by =
  let sub o = match o with Var v when v = old_id -> by | _ -> o in
  List.iter
    (fun b -> List.iter (map_operands sub) b.instrs)
    f.blocks

(** [remove_instr f b i] deletes [i] from [b].  The caller must ensure the
    instruction has no remaining uses. *)
let remove_instr _f b i =
  b.instrs <- List.filter (fun j -> j.iid <> i.iid) b.instrs

(* ------------------------------------------------------------------ *)
(* Cloning                                                             *)
(* ------------------------------------------------------------------ *)

(** Result of {!clone_blocks}: id translation maps from originals to
    clones. *)
type clone_maps = {
  cm_block : (int, int) Hashtbl.t;  (* original bid -> clone bid *)
  cm_instr : (int, int) Hashtbl.t;  (* original iid -> clone iid *)
}

(** [clone_blocks f bs ~suffix] deep-copies the blocks [bs] into [f],
    appending them to the layout.  Operand references and block targets
    that point inside the cloned set are redirected to the clones;
    references to definitions or blocks outside the set are left pointing
    at the originals.  Returns the translation maps (the paper's
    [Spec]/[Orig] correspondence is [cm_block]/[cm_instr] and its
    inverse). *)
let clone_blocks f bs ~suffix =
  let cm = { cm_block = Hashtbl.create 16; cm_instr = Hashtbl.create 64 } in
  let clones =
    List.map
      (fun b ->
        let nb = { bid = fresh_id f; bname = b.bname ^ suffix; instrs = [] } in
        Hashtbl.replace f.btbl nb.bid nb;
        Hashtbl.replace cm.cm_block b.bid nb.bid;
        (b, nb))
      bs
  in
  (* First pass: clone instructions, establishing the id map. *)
  List.iter
    (fun (b, nb) ->
      nb.instrs <-
        List.map
          (fun i ->
            let ni =
              { iid = fresh_id f; op = i.op; width = i.width;
                speculative = i.speculative; line = i.line;
                iname = (if i.iname = "" then "" else i.iname ^ suffix) }
            in
            Hashtbl.replace f.itbl ni.iid ni;
            Hashtbl.replace cm.cm_instr i.iid ni.iid;
            ni)
          b.instrs)
    clones;
  (* Second pass: redirect operands and block targets into the clone set. *)
  let sub_operand = function
    | Var v as o ->
        (match Hashtbl.find_opt cm.cm_instr v with
        | Some v' -> Var v'
        | None -> o)
    | Const _ as o -> o
  in
  let sub_block t =
    match Hashtbl.find_opt cm.cm_block t with Some t' -> t' | None -> t
  in
  List.iter
    (fun (_, nb) ->
      List.iter
        (fun i ->
          map_operands sub_operand i;
          map_block_targets sub_block i)
        nb.instrs)
    clones;
  f.blocks <- f.blocks @ List.map snd clones;
  (cm, List.map snd clones)

(** [split_block f b ~at] splits [b] before instruction index [at]
    (counting all instructions): the first [at] instructions stay in [b],
    the rest move to a fresh successor block, [b] branches to it, and phis
    in the moved terminator's targets are retargeted.  Returns the new
    block. *)
let split_block f (b : block) ~at =
  let rec take n = function
    | rest when n = 0 -> ([], rest)
    | [] -> ([], [])
    | x :: rest ->
        let a, b = take (n - 1) rest in
        (x :: a, b)
  in
  let before, after = take at b.instrs in
  let nb = insert_block_after f b (b.bname ^ ".s") in
  nb.instrs <- after;
  b.instrs <- before;
  (* successors of the moved terminator now flow from nb *)
  List.iter
    (fun succ ->
      List.iter
        (fun (i : instr) ->
          match i.op with
          | Phi incoming ->
              i.op <-
                Phi
                  (List.map
                     (fun (p, v) -> ((if p = b.bid then nb.bid else p), v))
                     incoming)
          | _ -> ())
        (block f succ).instrs)
    (succs nb);
  append_instr b (mk_instr f ~width:0 (Br nb.bid));
  nb

(* ------------------------------------------------------------------ *)
(* Constant helpers                                                    *)
(* ------------------------------------------------------------------ *)

let const ~width v = Const { cval = Width.trunc width v; cwidth = width }

let operand_width f = function
  | Var v -> (instr f v).width
  | Const c -> c.cwidth

(** Reverse-postorder traversal of the reachable CFG (plain edges plus the
    handler edges so handlers are visited). *)
let reverse_postorder f =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs bid =
    if not (Hashtbl.mem visited bid) then begin
      Hashtbl.replace visited bid ();
      let b = block f bid in
      let extra =
        match region_of_block f bid with
        | Some r when (region_entry r) = bid -> [ r.rhandler ]
        | _ -> []
      in
      List.iter dfs (succs b @ extra);
      order := bid :: !order
    end
  in
  (match f.blocks with [] -> () | b :: _ -> dfs b.bid);
  !order
