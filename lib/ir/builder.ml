(* A positional builder over {!Ir}, in the style of LLVM's IRBuilder.
   It keeps an insertion block and appends instructions before that block's
   terminator (or at the end while the block is still open). *)

type t = {
  func : Ir.func;
  mutable cursor : Ir.block option;
  mutable line : int;  (* current source line stamped onto new instrs *)
}

let create func = { func; cursor = None; line = 0 }

let set_line t n = t.line <- n

let position_at_end t b = t.cursor <- Some b

let current_block t =
  match t.cursor with
  | Some b -> b
  | None -> invalid_arg "Builder: no insertion block"

let func t = t.func

let insert t i =
  let b = current_block t in
  if i.Ir.line = 0 then i.Ir.line <- t.line;
  Ir.append_instr b i;
  i

let value i = Ir.Var i.Ir.iid

(* Each smart constructor returns the defining instruction so callers can
   chain [value]. *)

let bin t ?(name = "") op ~width a b =
  insert t (Ir.mk_instr t.func ~name ~width (Ir.Bin (op, a, b)))

let cmp t ?(name = "") op a b =
  insert t (Ir.mk_instr t.func ~name ~width:1 (Ir.Cmp (op, a, b)))

let cast t ?(name = "") op ~width a =
  insert t (Ir.mk_instr t.func ~name ~width (Ir.Cast (op, a)))

let select t ?(name = "") ~width c a b =
  insert t (Ir.mk_instr t.func ~name ~width (Ir.Select (c, a, b)))

let phi t ?(name = "") ~width incoming =
  let b = current_block t in
  let i = Ir.mk_instr t.func ~name ~line:t.line ~width (Ir.Phi incoming) in
  (* Phis go before any non-phi instruction. *)
  let phis, rest = List.partition Ir.is_phi b.Ir.instrs in
  b.Ir.instrs <- phis @ [ i ] @ rest;
  i

let load t ?(name = "") ?(volatile = false) ~width addr =
  insert t
    (Ir.mk_instr t.func ~name ~width
       (Ir.Load { l_addr = addr; l_volatile = volatile }))

let store t ?(volatile = false) ~width ~addr v =
  insert t
    (Ir.mk_instr t.func ~width:0
       (Ir.Store { s_addr = addr; s_value = v; s_width = width; s_volatile = volatile }))

let gaddr t ?(name = "") g =
  insert t (Ir.mk_instr t.func ~name ~width:32 (Ir.Gaddr g))

let salloc t ?(name = "") bytes =
  insert t (Ir.mk_instr t.func ~name ~width:32 (Ir.Salloc bytes))

let call t ?(name = "") ~width callee args =
  insert t (Ir.mk_instr t.func ~name ~width (Ir.Call { callee; args }))

let br t target =
  insert t (Ir.mk_instr t.func ~width:0 (Ir.Br target.Ir.bid))

let cbr t cond ~if_true ~if_false =
  insert t
    (Ir.mk_instr t.func ~width:0 (Ir.Cbr (cond, if_true.Ir.bid, if_false.Ir.bid)))

let ret t v = insert t (Ir.mk_instr t.func ~width:0 (Ir.Ret v))

let unreachable t = insert t (Ir.mk_instr t.func ~width:0 Ir.Unreachable)

let param t k =
  match List.nth_opt t.func.Ir.param_instrs k with
  | Some i -> i
  | None -> invalid_arg "Builder.param: index out of range"
