let valid = [ 1; 8; 16; 32; 64 ]

let is_valid w = List.mem w valid

let mask w =
  if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let trunc w v = Int64.logand v (mask w)

let zext = trunc

let sext w v =
  if w >= 64 then v
  else
    let v = trunc w v in
    let sign = Int64.shift_left 1L (w - 1) in
    if Int64.logand v sign <> 0L then Int64.logor v (Int64.lognot (mask w))
    else v

(* Bit length of a non-negative value; 1 for zero, 64 for negatives.
   This sits on the profiler's per-assignment path and in every
   speculative misspeculation check, so the positive case drops to a
   native int and binary-searches the length instead of shifting one
   bit per iteration. *)
let required_bits a =
  if Int64.compare a 0L < 0 then 64
  else if a = 0L then 1
  else if Int64.compare a 0x4000_0000_0000_0000L >= 0 then 63
  else begin
    (* positive and < 2^62: representable exactly as a native int *)
    let n = Int64.to_int a in
    let n, acc = if n >= 1 lsl 32 then (n lsr 32, 32) else (n, 0) in
    let n, acc = if n >= 1 lsl 16 then (n lsr 16, acc + 16) else (n, acc) in
    let n, acc = if n >= 1 lsl 8 then (n lsr 8, acc + 8) else (n, acc) in
    let n, acc = if n >= 1 lsl 4 then (n lsr 4, acc + 4) else (n, acc) in
    let n, acc = if n >= 1 lsl 2 then (n lsr 2, acc + 2) else (n, acc) in
    if n >= 2 then acc + 2 else acc + n
  end

let fits w v = required_bits v <= w

let class_of_bits b =
  if b <= 8 then 8 else if b <= 16 then 16 else if b <= 32 then 32 else 64

let signed_min w = Int64.shift_left 1L (w - 1) |> trunc w

let signed_max w = Int64.sub (Int64.shift_left 1L (w - 1)) 1L

let to_signed = sext
