open Bs_support
open Bs_interp
open Bitspec

(* The differential oracle.

   The reference semantics of a program is its pristine lowering run on
   the IR interpreter.  Each engine below compiles the same source through
   the full pipeline (degrade mode, so pass failures surface as
   diagnostics rather than exceptions) and simulates it on the machine
   model.  The first engine that disagrees with the reference determines
   the verdict's bucket; engine order is fixed so identical inputs yield
   identical buckets. *)

type engine = { ename : string; config : Driver.config }

let engines =
  [ { ename = "baseline"; config = Driver.baseline_config };
    { ename = "bitspec-max"; config = Driver.bitspec_config };
    { ename = "bitspec-avg";
      config = { Driver.bitspec_config with heuristic = Profile.Havg } };
    { ename = "bitspec-min";
      config = { Driver.bitspec_config with heuristic = Profile.Hmin } };
    { ename = "thumb"; config = Driver.thumb_config } ]

type exec_obs =
  | Value of int64
  | Fuel
  | Trap of string

type verdict =
  | Agree of exec_obs
  | Skip of string
  | Crash of { bucket : Bucket.t; details : string }

let mask32 v = Int64.logand v 0xFFFFFFFFL

let obs_str = function
  | Value v -> Printf.sprintf "value %Ld" v
  | Fuel -> "out of fuel"
  | Trap t -> "trap " ^ t

(* The interpreter's traps carry free-form messages; coarsen them to the
   same stable names [Outcome.trap_name] gives machine traps, so a trap
   that classifies identically on both sides is not a divergence. *)
let interp_trap_name msg =
  let has sub =
    let n = String.length sub and m = String.length msg in
    let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
    go 0
  in
  if has "division" || has "remainder" then "div0"
  else if has "stack overflow" then "stack-overflow"
  else if has "out-of-bounds" || has "memory" then "memory-fault"
  else if has "unknown" then "unknown-function"
  else "trap"

let frontend_bucket e =
  let open Bs_frontend in
  let detail =
    match e with
    | Lexer.Error _ -> "lex"
    | Parser.Error _ -> "parse"
    | Typecheck.Error _ -> "typecheck"
    | Lower.Error _ -> "lower"
    | Stack_overflow -> "stack-overflow"
    | _ -> "other"
  in
  Bucket.make ~code:"BS-FE-01" ~detail Bucket.Frontend_reject

let run ?plant ?(fuel = 2_000_000) ?train ?(engine = Bs_sim.Machine.Jit)
    ?(interp_engine = Interp.Compiled) ~source ~entry ~args () =
  let train =
    match train with Some t -> t | None -> [ (entry, Gen.train_args) ]
  in
  (* 1. The reference: pristine lowering on the interpreter. *)
  match Bs_frontend.Lower.compile source with
  | exception e ->
      Crash
        { bucket = frontend_bucket e;
          details = "front-end rejected the program: " ^ Printexc.to_string e }
  | m -> (
      let opts = { Interp.profile = None; fuel; engine = interp_engine } in
      let ref_obs, machine_fuel =
        match Interp.run_fresh ~opts m ~entry ~args with
        | r, _ -> (
            match r.Interp.outcome with
            | Outcome.Finished ->
                ( Value (mask32 (Option.value r.Interp.ret ~default:0L)),
                  (* a machine run executes a small constant factor more
                     instructions than IR steps; 20x + slack detects hangs
                     quickly without false positives (the budget formula
                     is shared with the injection campaigns) *)
                  Outcome.hang_fuel ~steps:r.Interp.steps ~factor:20 )
            | Outcome.Out_of_fuel -> (Fuel, fuel)
            | Outcome.Trapped t -> (Trap (Outcome.trap_name t), fuel)
            | Outcome.Livelock ->
                (* the interpreter never runs under a power trace *)
                (Fuel, fuel))
        | exception Interp.Trap msg -> (Trap (interp_trap_name msg), fuel)
        | exception Memimage.Fault _ -> (Trap "memory-fault", fuel)
      in
      match ref_obs with
      | Fuel -> Skip "reference interpreter ran out of fuel"
      | _ ->
          (* 2. Each engine versus the reference, first divergence wins.
             Compiles go through the process-wide cache: the key covers
             everything the compile depends on (source, configuration,
             training runs, planted fault), so the reducer's repeated
             oracle calls and the final reproducer replay each compile a
             given candidate once per engine. *)
          let src_key = Compile_cache.source_key source in
          let train_key =
            String.concat ";"
              (List.map
                 (fun (e, args) ->
                   e ^ ":" ^ String.concat "," (List.map Int64.to_string args))
                 train)
          in
          let plant_key =
            match plant with Some f -> Corpus.fault_to_string f | None -> "-"
          in
          let rec check = function
            | [] -> Agree ref_obs
            | { ename; config } :: rest -> (
                match
                  Compile_cache.try_compile
                    ~key:
                      (Printf.sprintf "fuzz|%s|%s|%s|%s" src_key
                         (Driver.config_tag config) train_key plant_key)
                    (fun () ->
                      Driver.try_compile ?pass_fault:plant ~config ~source
                        ~train ())
                with
                | Error diags ->
                    let d =
                      match Diag.errors diags with
                      | d :: _ -> d
                      | [] -> Diag.error ~code:"BS-FE-01" ~phase:Diag.Other
                                "compilation failed without a diagnostic"
                    in
                    Crash
                      { bucket = Bucket.of_diag ~detail:ename d;
                        details =
                          Printf.sprintf "%s failed to compile: %s" ename
                            (Diag.to_string d) }
                | Ok c -> (
                    match Diag.errors c.Driver.diagnostics with
                    | d :: _ ->
                        Crash
                          { bucket = Bucket.of_diag ~detail:ename d;
                            details =
                              Printf.sprintf "%s degraded during compilation: %s"
                                ename (Diag.to_string d) }
                    | [] -> (
                        let eng_obs =
                          match
                            Driver.run_machine ~fuel:machine_fuel ~engine c
                              ~entry ~args
                          with
                          | r -> (
                              match r.Bs_sim.Machine.outcome with
                              | Outcome.Finished ->
                                  Value (mask32 r.Bs_sim.Machine.r0)
                              | Outcome.Out_of_fuel -> Fuel
                              | Outcome.Trapped t ->
                                  Trap (Outcome.trap_name t)
                              | Outcome.Livelock ->
                                  (* no power trace in a fuzz run *)
                                  Fuel)
                          | exception Bs_sim.Machine.Sim_trap t ->
                              Trap (Outcome.trap_name t)
                          | exception Memimage.Fault _ -> Trap "memory-fault"
                        in
                        let crash bucket =
                          Crash
                            { bucket;
                              details =
                                Printf.sprintf
                                  "%s: reference %s, machine %s" ename
                                  (obs_str ref_obs) (obs_str eng_obs) }
                        in
                        match (ref_obs, eng_obs) with
                        | a, b when a = b -> check rest
                        | Value _, Value _ ->
                            crash
                              (Bucket.make ~detail:ename
                                 Bucket.Result_mismatch)
                        | _, Fuel ->
                            crash (Bucket.hang ~detail:ename ())
                        | _, Trap t ->
                            crash
                              (Bucket.make ~detail:(ename ^ ":" ^ t)
                                 Bucket.Trap_divergence)
                        | Trap _, Value _ ->
                            crash
                              (Bucket.make ~detail:(ename ^ ":none")
                                 Bucket.Trap_divergence)
                        | Fuel, _ ->
                            (* unreachable: reference fuel was handled *)
                            check rest)))
          in
          check engines)

let describe = function
  | Agree o -> "agree: " ^ obs_str o
  | Skip why -> "skipped: " ^ why
  | Crash { bucket; details } ->
      Printf.sprintf "CRASH [%s] %s" (Bucket.key bucket) details

(* --- intermittent-power replay ----------------------------------------- *)

(* Replay a program under a recorded power-failure configuration and
   classify the outcome into the shared bucket namespace.  The oracle is
   the same binary's own fault-free machine run: a restore rolls state
   back exactly, so the intermittent run must reproduce the fault-free
   checksum bit for bit — any mismatch is a checkpoint/restore bug. *)

type power_verdict = {
  p_bucket : Bucket.t option;  (* None: completed without a restore *)
  p_details : string;
}

let describe_power v =
  match v.p_bucket with
  | Some b -> Printf.sprintf "POWER [%s] %s" (Bucket.key b) v.p_details
  | None -> "power: " ^ v.p_details

let run_power ?train ?(engine = Bs_sim.Machine.Jit) ~source ~entry ~args
    ~(power : Corpus.power_meta) () : power_verdict =
  let train =
    match train with Some t -> t | None -> [ (entry, Gen.train_args) ]
  in
  match Driver.try_compile ~config:Driver.bitspec_config ~source ~train () with
  | Error diags ->
      let d =
        match Diag.errors diags with
        | d :: _ -> d
        | [] ->
            Diag.error ~code:"BS-FE-01" ~phase:Diag.Other
              "compilation failed without a diagnostic"
      in
      { p_bucket = Some (Bucket.of_diag ~detail:"power" d);
        p_details = "failed to compile: " ^ Diag.to_string d }
  | Ok c -> (
      match Driver.run_machine ~engine c ~entry ~args with
      | exception e ->
          { p_bucket = Some (Bucket.hang ());
            p_details = "fault-free run raised: " ^ Printexc.to_string e }
      | golden when golden.Bs_sim.Machine.outcome <> Outcome.Finished ->
          { p_bucket = Some (Bucket.hang ());
            p_details =
              "fault-free run did not finish: "
              ^ Outcome.to_string golden.Bs_sim.Machine.outcome }
      | golden -> (
          let open Bs_sim in
          let expected = golden.Machine.r0 in
          let steps = golden.Machine.ctr.Counters.instrs in
          let fuel = Outcome.hang_fuel ~steps ~factor:8 in
          let hot_pcs =
            let acc = ref [] in
            Array.iteri
              (fun pc s -> if s <> None then acc := pc :: !acc)
              c.Driver.program.Bs_backend.Asm.srcmap;
            List.rev !acc
          in
          let trace =
            Powertrace.create ~seed:power.Corpus.pw_seed ~hot_pcs
              power.Corpus.pw_dist
          in
          let pw =
            { Machine.trace; policy = power.Corpus.pw_policy;
              max_retries = power.Corpus.pw_retries }
          in
          match Driver.run_machine ~fuel ~power:pw ~engine c ~entry ~args with
          | exception Machine.Sim_trap t ->
              { p_bucket =
                  Some
                    (Bucket.make ~detail:(Outcome.trap_name t)
                       Bucket.Trap_divergence);
                p_details = "trapped under power failures" }
          | exception Memimage.Fault m ->
              { p_bucket =
                  Some
                    (Bucket.make ~detail:"memory-fault"
                       Bucket.Trap_divergence);
                p_details = "memory fault under power failures: " ^ m }
          | r -> (
              let ctr = r.Machine.ctr in
              let stats =
                Printf.sprintf
                  "%d restores, %d checkpoints, %d re-executed instrs"
                  ctr.Counters.restores ctr.Counters.checkpoints
                  ctr.Counters.reexec_instrs
              in
              match r.Machine.outcome with
              | Outcome.Livelock ->
                  { p_bucket = Some (Bucket.reexec_livelock ());
                    p_details = stats }
              | Outcome.Out_of_fuel ->
                  { p_bucket = Some (Bucket.hang ()); p_details = stats }
              | Outcome.Trapped t ->
                  { p_bucket =
                      Some
                        (Bucket.make ~detail:(Outcome.trap_name t)
                           Bucket.Trap_divergence);
                    p_details = stats }
              | Outcome.Finished ->
                  if r.Machine.r0 <> expected then
                    { p_bucket =
                        Some (Bucket.make ~detail:"power" Bucket.Result_mismatch);
                      p_details =
                        Printf.sprintf
                          "checksum %Ld, fault-free %Ld after %s"
                          r.Machine.r0 expected stats }
                  else if ctr.Counters.restores > 0 then
                    { p_bucket = Some (Bucket.restored ());
                      p_details = stats ^ ", correct checksum" }
                  else
                    { p_bucket = None;
                      p_details = "completed without an outage (" ^ stats ^ ")" })))
