open Bs_support

(* Random MiniC programs for differential fuzzing.

   Grown from the generator that used to live in test/test_fuzz.ml.  The
   additions all target the squeezer's blind spots:

   - helper functions (u32/u16/u8 parameters, implicit argument casts)
     called from statements and expressions of the entry function;
   - u8/u16/u32 global arrays read and written through computed indices;
   - extra scalar globals seeded with slice-boundary constants;
   - nested loops whose bodies may [break] out under a data-dependent
     guard (early exits change which region handlers are reachable);
   - expression shapes that straddle the 8-bit slice boundary (masked
     operands summed past 255, boundary constants), so a profile trained
     on a small input misspeculates on the real one.

   Termination is by construction: every loop has a literal bound and a
   non-assignable counter, [break] only exits early, and every divisor is
   or-ed with 1. *)

type genv = {
  rng : Rng.t;
  (* (name, type, assignable): loop counters are readable but never
     assignment targets — clobbering one would unbound its loop *)
  mutable vars : (string * [ `U8 | `U16 | `U32 ] * bool) list;
  mutable helpers : (string * int) list;  (* (name, arity), callable *)
  mutable fresh : int;
  buf : Buffer.t;
  mutable depth : int;
  mutable in_loop : bool;
}

let ty_name = function `U8 -> "u8" | `U16 -> "u16" | `U32 -> "u32"

let entry = "f"
let entry_arg seed = Int64.of_int (seed land 1023)
let train_args = [ 17L ]

(* Constants chosen to sit on (or just past) the 8- and 16-bit
   boundaries: the values whose widths the MAX/AVG/MIN heuristics
   disagree about. *)
let boundary_consts =
  [ 127; 128; 200; 253; 254; 255; 256; 257; 300; 511; 512; 65535; 65536 ]

let fresh_var ?(assignable = true) g ty =
  let name = Printf.sprintf "v%d" g.fresh in
  g.fresh <- g.fresh + 1;
  g.vars <- (name, ty, assignable) :: g.vars;
  name

let pick_var g =
  match g.vars with
  | [] -> None
  | vs ->
      let n, _, _ = List.nth vs (Rng.int g.rng (List.length vs)) in
      Some n

let pick_assignable g =
  match List.filter (fun (_, _, a) -> a) g.vars with
  | [] -> None
  | vs ->
      let n, _, _ = List.nth vs (Rng.int g.rng (List.length vs)) in
      Some n

(* The global arrays every program declares: (name, index mask, element
   type).  Computed indices are masked to stay in bounds. *)
let arrays = [ ("buf", 63, `U8); ("tab", 15, `U16); ("wide", 7, `U32) ]

let pick_array g = List.nth arrays (Rng.int g.rng (List.length arrays))

let rec gen_expr g depth =
  if depth = 0 || Rng.int g.rng 4 = 0 then
    match Rng.int g.rng 6 with
    | 0 | 1 -> (
        match pick_var g with
        | Some v -> v
        | None -> string_of_int (Rng.int g.rng 300))
    | 2 ->
        string_of_int
          (List.nth boundary_consts
             (Rng.int g.rng (List.length boundary_consts)))
    | 3 -> if Rng.bool g.rng then "acc" else "gw"
    | _ -> string_of_int (Rng.int g.rng 300)
  else
    match Rng.int g.rng 14 with
    | 0 -> bin g depth "+"
    | 1 -> bin g depth "-"
    | 2 -> bin g depth "*"
    | 3 -> bin g depth "&"
    | 4 -> bin g depth "|"
    | 5 -> bin g depth "^"
    | 6 -> Printf.sprintf "(%s >> %d)" (gen_expr g (depth - 1)) (Rng.int_in g.rng 1 7)
    | 7 ->
        Printf.sprintf "((%s << %d) & 0xFFFFFF)" (gen_expr g (depth - 1))
          (Rng.int_in g.rng 1 4)
    | 8 ->
        Printf.sprintf "(%s / (%s | 1))" (gen_expr g (depth - 1))
          (gen_expr g (depth - 1))
    | 9 ->
        Printf.sprintf "(%s %% ((%s & 63) | 1))" (gen_expr g (depth - 1))
          (gen_expr g (depth - 1))
    | 10 ->
        (* slice-boundary straddle: two bytes summed can carry past 255 *)
        Printf.sprintf "((%s & 255) + (%s & 255))" (gen_expr g (depth - 1))
          (gen_expr g (depth - 1))
    | 11 ->
        (* array read through a computed index *)
        let name, mask, _ = pick_array g in
        Printf.sprintf "%s[(%s) & %d]" name (gen_expr g (depth - 1)) mask
    | 12 when g.helpers <> [] ->
        (* helper call in expression position; arguments cast implicitly *)
        let name, arity =
          List.nth g.helpers (Rng.int g.rng (List.length g.helpers))
        in
        let args = List.init arity (fun _ -> gen_expr g (depth - 1)) in
        Printf.sprintf "%s(%s)" name (String.concat ", " args)
    | _ -> bin g depth "+"

and bin g depth op =
  Printf.sprintf "(%s %s %s)" (gen_expr g (depth - 1)) op
    (gen_expr g (depth - 1))

let gen_cond g =
  let a = gen_expr g 1 and b = gen_expr g 1 in
  let op = List.nth [ "<"; "<="; ">"; ">="; "=="; "!=" ] (Rng.int g.rng 6) in
  Printf.sprintf "%s %s %s" a op b

let indent g = String.make (2 * g.depth) ' '

let rec gen_stmt g budget =
  if budget <= 0 then ()
  else begin
    (match Rng.int g.rng 11 with
    | 0 | 1 ->
        (* declaration *)
        let ty = List.nth [ `U8; `U16; `U32; `U32 ] (Rng.int g.rng 4) in
        let e = gen_expr g 2 in
        let v = fresh_var g ty in
        Buffer.add_string g.buf
          (Printf.sprintf "%s%s %s = (%s)(%s);\n" (indent g) (ty_name ty) v
             (ty_name ty) e)
    | 2 | 3 -> (
        (* assignment *)
        match pick_assignable g with
        | Some v ->
            let op = List.nth [ "="; "+="; "^="; "&="; "|=" ] (Rng.int g.rng 5) in
            Buffer.add_string g.buf
              (Printf.sprintf "%s%s %s %s;\n" (indent g) v op (gen_expr g 2))
        | None -> ())
    | 4 when g.depth < 3 ->
        (* bounded loop over a fresh counter; body declarations go out of
           scope at the closing brace.  Half the loops open with a
           guard-driven early exit. *)
        let saved = g.vars and saved_loop = g.in_loop in
        let v = fresh_var ~assignable:false g `U32 in
        let n = Rng.int_in g.rng 1 9 in
        Buffer.add_string g.buf
          (Printf.sprintf "%sfor (u32 %s = 0; %s < %d; %s += 1) {\n" (indent g)
             v v n v);
        g.depth <- g.depth + 1;
        g.in_loop <- true;
        if Rng.bool g.rng then
          Buffer.add_string g.buf
            (Printf.sprintf "%sif (%s) break;\n" (indent g) (gen_cond g));
        gen_stmt g (budget / 2);
        gen_stmt g (budget / 2);
        g.in_loop <- saved_loop;
        g.depth <- g.depth - 1;
        Buffer.add_string g.buf (indent g ^ "}\n");
        g.vars <- saved
    | 5 when g.depth < 3 ->
        let saved = g.vars in
        Buffer.add_string g.buf
          (Printf.sprintf "%sif (%s) {\n" (indent g) (gen_cond g));
        g.depth <- g.depth + 1;
        gen_stmt g (budget / 2);
        g.depth <- g.depth - 1;
        g.vars <- saved;
        Buffer.add_string g.buf (indent g ^ "} else {\n");
        g.depth <- g.depth + 1;
        gen_stmt g (budget / 2);
        g.depth <- g.depth - 1;
        Buffer.add_string g.buf (indent g ^ "}\n");
        g.vars <- saved
    | 6 -> (
        (* array traffic through a computed index *)
        match pick_assignable g with
        | Some v ->
            let name, mask, ty = pick_array g in
            Buffer.add_string g.buf
              (Printf.sprintf "%s%s[(%s) & %d] = (%s)(%s);\n" (indent g) name
                 (gen_expr g 1) mask (ty_name ty) (gen_expr g 1));
            Buffer.add_string g.buf
              (Printf.sprintf "%s%s ^= %s[(%s) & %d];\n" (indent g) v name
                 (gen_expr g 1) mask)
        | None -> ())
    | 7 when g.helpers <> [] -> (
        (* helper call in statement position *)
        match pick_assignable g with
        | Some v ->
            let name, arity =
              List.nth g.helpers (Rng.int g.rng (List.length g.helpers))
            in
            let args = List.init arity (fun _ -> gen_expr g 1) in
            Buffer.add_string g.buf
              (Printf.sprintf "%s%s += %s(%s);\n" (indent g) v name
                 (String.concat ", " args))
        | None -> ())
    | 8 -> (
        (* masked accumulate straddling the slice boundary *)
        match pick_assignable g with
        | Some v ->
            Buffer.add_string g.buf
              (Printf.sprintf "%s%s = ((%s) & 255) + %d;\n" (indent g) v
                 (gen_expr g 1) (Rng.int_in g.rng 100 300))
        | None -> ())
    | 9 when g.in_loop ->
        (* guard-driven early exit in the middle of a loop body *)
        Buffer.add_string g.buf
          (Printf.sprintf "%sif (%s) break;\n" (indent g) (gen_cond g))
    | _ -> (
        (* a guard compare against a constant the slice cannot hold:
           compare-elimination bait *)
        match pick_var g with
        | Some v ->
            Buffer.add_string g.buf
              (Printf.sprintf "%sif (%s < %d) acc += %s;\n" (indent g) v
                 (Rng.int_in g.rng 300 100000) v)
        | None -> ()));
    gen_stmt g (budget - 1)
  end

(* One helper function [u32 hK(...)]: a small loop-free body over its own
   parameters, so helpers terminate trivially and never recurse (each may
   only call helpers defined before it). *)
let gen_helper g k =
  let arity = Rng.int_in g.rng 1 2 in
  let ptys =
    List.init arity (fun _ ->
        List.nth [ `U8; `U16; `U32 ] (Rng.int g.rng 3))
  in
  let name = Printf.sprintf "h%d" k in
  let params =
    List.mapi (fun i ty -> Printf.sprintf "%s a%d" (ty_name ty) i) ptys
  in
  let saved = g.vars in
  g.vars <- List.mapi (fun i ty -> (Printf.sprintf "a%d" i, ty, true)) ptys;
  Buffer.add_string g.buf
    (Printf.sprintf "u32 %s(%s) {\n" name (String.concat ", " params));
  g.depth <- 1;
  gen_stmt g (Rng.int_in g.rng 1 3);
  Buffer.add_string g.buf
    (Printf.sprintf "  return (%s) & 0xFFFFFF;\n}\n" (gen_expr g 2));
  g.vars <- saved;
  g.helpers <- (name, arity) :: g.helpers

let program ?(size = 10) seed =
  let g =
    { rng = Rng.create (Int64.of_int seed); vars = []; helpers = [];
      fresh = 0; buf = Buffer.create 512; depth = 1; in_loop = false }
  in
  Buffer.add_string g.buf "u8 buf[64];\nu16 tab[16];\nu32 wide[8];\n";
  Buffer.add_string g.buf "u32 acc = 0;\n";
  Buffer.add_string g.buf
    (Printf.sprintf "u32 gw = %d;\n"
       (List.nth boundary_consts
          (Rng.int g.rng (List.length boundary_consts))));
  let nhelpers = Rng.int g.rng 3 in
  for k = 0 to nhelpers - 1 do
    gen_helper g k
  done;
  Buffer.add_string g.buf (Printf.sprintf "u32 %s(u32 p) {\n" entry);
  g.vars <- [ ("p", `U32, true) ];
  g.depth <- 1;
  gen_stmt g size;
  let parts =
    List.filter_map
      (fun (v, _, _) -> if Rng.bool g.rng then Some v else None)
      g.vars
  in
  let result = String.concat " ^ " ("acc + p" :: parts) in
  Buffer.add_string g.buf
    (Printf.sprintf "  return (%s) & 0xFFFFFF;\n}\n" result);
  Buffer.contents g.buf

(* Randomly damage a source string to exercise the front-end error paths;
   kept with the generator so the robustness property in test/ and any
   future mutation stage share one definition. *)
let corrupt rng source =
  match Rng.int rng 4 with
  | 0 -> source (* leave well-formed *)
  | 1 ->
      (* truncate mid-token: unterminated construct for the parser *)
      String.sub source 0 (1 + Rng.int rng (String.length source - 1))
  | 2 ->
      (* splice in a token no production accepts *)
      let cut = Rng.int rng (String.length source) in
      String.sub source 0 cut ^ " @ $ "
      ^ String.sub source cut (String.length source - cut)
  | _ ->
      (* undefined variable: a typechecker error on a well-formed parse *)
      source ^ "\nu32 g() { return undefined_variable_xyz; }\n"
