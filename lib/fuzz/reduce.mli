(** Automatic test-case reduction (delta debugging).

    Reduction is driven by a predicate — "this candidate still reproduces
    the original bucket" — supplied by the caller; the reducer itself
    knows nothing about compilation.  Candidates that break the program
    (unbalanced braces, undefined variables) simply fail the predicate and
    are rejected, so no grammar knowledge is needed.

    Two stages, iterated to a fixpoint: statement-level {!ddmin} over
    source lines, then {!fill_holes}, which replaces parenthesised
    subexpressions with the constants [0] and [1]. *)

val ddmin : pred:(string -> bool) -> string -> string
(** Classic ddmin over the source's lines.  [pred source] must hold; the
    result is a 1-minimal-by-lines source on which [pred] still holds. *)

val fill_holes : ?max_tests:int -> pred:(string -> bool) -> string -> string
(** Replace balanced [( ... )] spans by ["0"] or ["1"] wherever the
    predicate keeps holding, largest spans first, restarting after every
    accepted replacement.  [max_tests] bounds predicate evaluations
    (default 400). *)

val run : ?rounds:int -> pred:(string -> bool) -> string -> string
(** [ddmin] then [fill_holes], repeated until a fixpoint or [rounds]
    iterations (default 3).  Requires [pred source]; guarantees [pred] on
    the result. *)

val line_count : string -> int
(** Non-blank lines — the size metric quoted in fuzz reports. *)
