open Bs_support
open Bitspec

(* Campaign driver: seed stream -> generate -> oracle -> triage -> reduce.

   Buckets deduplicate: the first trial landing in a bucket is kept (and
   reduced); later occurrences only bump the tally.  The reducer re-runs
   the oracle per candidate with the same arguments and planted fault, so
   a reduced reproducer lands in the same bucket by construction. *)

type crash = {
  trial : int;
  tseed : int;
  bucket : Bucket.t;
  details : string;
  source : string;
  reduced : string;
  args : int64 list;
}

type t = {
  seed : int;
  requested : int;
  executed : int;
  agreed : int;
  skipped : int;
  crashes : crash list;
  tally : Bucket.tally;
  plant : Driver.pass_fault option;
}

let run ?plant ?budget ?(reduce = true) ?size ?fuel ?(jobs = 1)
    ?(engine = Bs_sim.Machine.Jit)
    ?(interp_engine = Bs_interp.Interp.Compiled) ~seed ~trials () =
  let rng = Rng.create (Int64.of_int seed) in
  let started = Sys.time () in
  let over_budget () =
    match budget with
    | Some b -> Sys.time () -. started > b
    | None -> false
  in
  let agreed = ref 0 and skipped = ref 0 and executed = ref 0 in
  let tally = ref Bucket.empty_tally in
  let crashes = ref [] in
  let seen key = List.exists (fun c -> Bucket.key c.bucket = key) !crashes in
  (* Trials run in chunks.  Each chunk's seeds are drawn from the rng
     sequentially up front — the seed stream is identical whatever
     [jobs] — then the (independent, rng-free) generate+oracle runs fan
     out over the pool, and tallying, dedup and reduction fold over the
     verdicts in trial order.  With [jobs] = 1 the chunk size is 1, so
     the budget check falls exactly where the sequential loop had it. *)
  let chunk = if jobs <= 1 then 1 else jobs * 4 in
  let i = ref 0 in
  while !i < trials && not (over_budget ()) do
    let k = min chunk (trials - !i) in
    let tseeds =
      Array.init k (fun _ ->
          Int64.to_int (Int64.logand (Rng.next rng) 0x3FFFFFFFL))
    in
    let verdicts =
      Bs_obs.Trace.with_span "fuzz:fanout" @@ fun () ->
      Bs_exec.Pool.map ~jobs
        (fun tseed ->
          let source = Gen.program ?size tseed in
          let args = [ Gen.entry_arg tseed ] in
          ( source, args,
            Oracle.run ?plant ?fuel ~engine ~interp_engine ~source
              ~entry:Gen.entry ~args () ))
        tseeds
    in
    Array.iteri
      (fun off (source, args, verdict) ->
        incr executed;
        match verdict with
        | Oracle.Agree _ -> incr agreed
        | Oracle.Skip _ -> incr skipped
        | Oracle.Crash { bucket; details } ->
            let key = Bucket.key bucket in
            tally := Bucket.add !tally key;
            if not (seen key) then begin
              let reproduces s =
                match
                  Oracle.run ?plant ?fuel ~engine ~interp_engine ~source:s
                    ~entry:Gen.entry ~args ()
                with
                | Oracle.Crash { bucket = b; _ } -> Bucket.key b = key
                | _ -> false
              in
              let reduced =
                if reduce then Reduce.run ~pred:reproduces source else source
              in
              crashes :=
                { trial = !i + off; tseed = tseeds.(off); bucket; details;
                  source; reduced; args }
                :: !crashes
            end)
      verdicts;
    i := !i + k
  done;
  { seed; requested = trials; executed = !executed; agreed = !agreed;
    skipped = !skipped; crashes = List.rev !crashes; tally = !tally; plant }

let meta_of_crash t (c : crash) =
  { Corpus.bucket_key = Bucket.key c.bucket; entry = Gen.entry;
    args = c.args; train = Gen.train_args; fault = t.plant; power = None }

(* corpus file name: bucket key slug + the trial seed *)
let crash_name c =
  let slug =
    String.map
      (fun ch ->
        if (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9')
           || (ch >= 'A' && ch <= 'Z')
        then ch
        else '-')
      (Bucket.key c.bucket)
  in
  Printf.sprintf "%s-seed%d.mc" slug c.tseed

let save_corpus ~dir t =
  List.map
    (fun c -> Corpus.save ~dir ~name:(crash_name c) (meta_of_crash t c) c.reduced)
    t.crashes

let report t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "fuzz campaign: seed %d, %d/%d trials%s\n" t.seed
       t.executed t.requested
       (match t.plant with
       | Some f -> " (planted fault " ^ Corpus.fault_to_string f ^ ")"
       | None -> ""));
  Buffer.add_string b
    (Printf.sprintf "agree %d, skip %d, crash %d (%d distinct bucket%s)\n\n"
       t.agreed t.skipped (Bucket.total t.tally) (List.length t.crashes)
       (if List.length t.crashes = 1 then "" else "s"));
  Buffer.add_string b (Bucket.report t.tally);
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf
           "\n--- bucket %s (trial %d, seed %d)\n%s\nminimized to %d line%s:\n"
           (Bucket.key c.bucket) c.trial c.tseed c.details
           (Reduce.line_count c.reduced)
           (if Reduce.line_count c.reduced = 1 then "" else "s"));
      Buffer.add_string b c.reduced;
      if c.reduced = "" || c.reduced.[String.length c.reduced - 1] <> '\n'
      then Buffer.add_char b '\n';
      Buffer.add_string b
        ("replay: "
        ^ Corpus.replay_command ~file:(crash_name c) (meta_of_crash t c)
        ^ "\n"))
    t.crashes;
  Buffer.contents b
