(* Delta debugging over MiniC source.

   The predicate abstracts "still reproduces the original bucket", so the
   same machinery minimises miscompiles, trap divergences and front-end
   crashes alike.  Structural validity is not tracked: a candidate with
   unbalanced braces fails to compile, compiles to a different bucket, and
   is rejected by the predicate like any other bad candidate. *)

let split_lines s = String.split_on_char '\n' s
let join_lines ls = String.concat "\n" ls

let is_blank l = String.trim l = ""

let line_count s =
  List.length (List.filter (fun l -> not (is_blank l)) (split_lines s))

(* Partition [items] into [n] contiguous chunks of near-equal length. *)
let partition items n =
  let len = List.length items in
  let arr = Array.of_list items in
  List.init n (fun i ->
      let lo = i * len / n and hi = (i + 1) * len / n in
      Array.to_list (Array.sub arr lo (hi - lo)))

(* Classic ddmin (Zeller & Hildebrandt): try removing each of n chunks;
   on success restart with the complement at coarser granularity,
   otherwise refine until single-line granularity is exhausted. *)
let ddmin ~pred source =
  let test lines = pred (join_lines lines) in
  let rec go lines n =
    let len = List.length lines in
    if len <= 1 then lines
    else begin
      let chunks = partition lines n in
      let complement_of i =
        List.concat (List.filteri (fun j _ -> j <> i) chunks)
      in
      let rec try_chunks i =
        if i >= List.length chunks then None
        else
          let c = complement_of i in
          if List.length c < len && test c then Some c else try_chunks (i + 1)
      in
      match try_chunks 0 with
      | Some smaller -> go smaller (max (n - 1) 2)
      | None -> if n >= len then lines else go lines (min (2 * n) len)
    end
  in
  let lines = List.filter (fun l -> not (is_blank l)) (split_lines source) in
  if not (test lines) then source (* blank-stripping broke it: keep as-is *)
  else join_lines (go lines 2)

(* All balanced "(...)" spans of [s] as (start, length), outermost/largest
   first so one accepted replacement deletes a whole subtree at once. *)
let paren_spans s =
  let spans = ref [] in
  let stack = ref [] in
  String.iteri
    (fun i c ->
      if c = '(' then stack := i :: !stack
      else if c = ')' then
        match !stack with
        | o :: rest ->
            stack := rest;
            spans := (o, i - o + 1) :: !spans
        | [] -> ())
    s;
  List.sort (fun (_, a) (_, b) -> compare b a) !spans

let fill_holes ?(max_tests = 400) ~pred source =
  let budget = ref max_tests in
  let try_replace s (off, len) =
    List.find_map
      (fun filler ->
        if !budget <= 0 then None
        else begin
          decr budget;
          let cand =
            String.sub s 0 off ^ filler
            ^ String.sub s (off + len) (String.length s - off - len)
          in
          if pred cand then Some cand else None
        end)
      [ "0"; "1" ]
  in
  (* restart the scan after every accepted replacement: offsets shift *)
  let rec pass s =
    if !budget <= 0 then s
    else
      match List.find_map (try_replace s) (paren_spans s) with
      | Some s' -> pass s'
      | None -> s
  in
  pass source

let run ?(rounds = 3) ~pred source =
  let rec go s n =
    if n = 0 then s
    else
      let s' = fill_holes ~pred (ddmin ~pred s) in
      if s' = s then s else go s' (n - 1)
  in
  if pred source then go source rounds else source
