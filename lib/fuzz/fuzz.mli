(** Differential fuzzing campaigns.

    A campaign draws per-trial seeds from one splitmix64 stream, generates
    a program per trial, runs the {!Oracle}, tallies verdict buckets, and
    (by default) ddmin-reduces the first crash of each distinct bucket.
    Everything downstream of the campaign seed is deterministic: identical
    seeds yield bit-identical campaigns, trial for trial.  A wall-clock
    [budget] can truncate a campaign early; the trials that do run are
    still the same prefix of the same stream. *)

open Bs_support
open Bitspec

type crash = {
  trial : int;           (** trial index within the campaign *)
  tseed : int;           (** the generator seed of this trial *)
  bucket : Bucket.t;
  details : string;      (** the oracle's human-readable account *)
  source : string;       (** the program as generated *)
  reduced : string;      (** minimized reproducer ([= source] if not reduced) *)
  args : int64 list;     (** entry arguments of the differential run *)
}

type t = {
  seed : int;
  requested : int;       (** trials asked for *)
  executed : int;        (** trials actually run (budget may truncate) *)
  agreed : int;
  skipped : int;
  crashes : crash list;  (** first crash per distinct bucket, discovery order *)
  tally : Bucket.tally;  (** every crash occurrence, keyed by bucket *)
  plant : Driver.pass_fault option;
}

val run :
  ?plant:Driver.pass_fault ->
  ?budget:float ->
  ?reduce:bool ->
  ?size:int ->
  ?fuel:int ->
  ?jobs:int ->
  ?engine:Bs_sim.Machine.engine ->
  ?interp_engine:Bs_interp.Interp.engine ->
  seed:int ->
  trials:int ->
  unit ->
  t
(** Run a campaign.  [plant] injects a compiler fault into every trial's
    compiles (self-test mode); [budget] is wall-clock seconds; [reduce]
    (default true) minimises the first crash of each bucket; [size] and
    [fuel] are passed through to {!Gen.program} and {!Oracle.run};
    [engine] (default [Jit]) picks the machine dispatch engine and
    [interp_engine] (default [Compiled]) the reference interpreter's —
    verdicts and reports are invariant under both.

    [jobs] (default 1) fans trials out over a domain pool in chunks:
    every trial seed is drawn from the campaign stream sequentially
    before its chunk runs, and tallying, dedup and reduction fold over
    the verdicts in trial order, so an unbudgeted campaign's result is
    byte-identical whatever [jobs].  (A [budget] is checked between
    chunks, so where a budgeted campaign truncates may depend on
    [jobs] — but the trials that do run are still the same prefix.) *)

val meta_of_crash : t -> crash -> Corpus.meta

val save_corpus : dir:string -> t -> string list
(** Write each crash's reduced reproducer (with metadata header) to
    [dir]; returns the paths written. *)

val report : t -> string
(** Deterministic human-readable report: verdict counts, bucket tally,
    and per-bucket minimized reproducers with replay commands.  Contains
    no timing data, so equal-seed campaigns render identically. *)
