open Bitspec

(* Reproducer files: a //-comment metadata header over plain MiniC.  The
   header lines are ordinary comments, so a reproducer is also directly
   compilable by `bitspecc compile`. *)

(* Intermittent-power replay parameters: the outage distribution and
   seed, checkpoint policy and retry limit that reproduce a power-fail
   bucket (restored, reexec-livelock, ...). *)
type power_meta = {
  pw_dist : Bs_sim.Powertrace.dist;
  pw_seed : int64;
  pw_policy : Bs_sim.Checkpoint.policy;
  pw_retries : int;
}

type meta = {
  bucket_key : string;
  entry : string;
  args : int64 list;
  train : int64 list;
  fault : Driver.pass_fault option;
  power : power_meta option;
}

let pass_to_string = function
  | Driver.Fault_squeeze -> "squeeze"
  | Driver.Fault_regalloc -> "regalloc"
  | Driver.Fault_miscompile -> "miscompile"

let fault_to_string (f : Driver.pass_fault) =
  pass_to_string f.Driver.fault_pass ^ ":" ^ f.Driver.fault_func

let fault_of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
      let pass = String.sub s 0 i in
      let func = String.sub s (i + 1) (String.length s - i - 1) in
      let fp =
        match pass with
        | "squeeze" -> Some Driver.Fault_squeeze
        | "regalloc" -> Some Driver.Fault_regalloc
        | "miscompile" -> Some Driver.Fault_miscompile
        | _ -> None
      in
      Option.map
        (fun fault_pass -> { Driver.fault_pass; fault_func = func })
        fp

let power_to_string (p : power_meta) =
  Printf.sprintf "%s %Ld %s %d"
    (Bs_sim.Powertrace.dist_to_string p.pw_dist)
    p.pw_seed
    (Bs_sim.Checkpoint.policy_name p.pw_policy)
    p.pw_retries

let power_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ d; seed; pol; retries ] -> (
      match
        ( Bs_sim.Powertrace.dist_of_string d,
          Int64.of_string_opt seed,
          Bs_sim.Checkpoint.policy_of_string pol,
          int_of_string_opt retries )
      with
      | Some pw_dist, Some pw_seed, Some pw_policy, Some pw_retries ->
          Some { pw_dist; pw_seed; pw_policy; pw_retries }
      | _ -> None)
  | _ -> None

let args_to_string args =
  String.concat "," (List.map Int64.to_string args)

let args_of_string s =
  if String.trim s = "" then []
  else
    List.filter_map
      (fun p -> Int64.of_string_opt (String.trim p))
      (String.split_on_char ',' s)

let replay_command ?(file = "<file.mc>") m =
  match m.power with
  | Some p ->
      (* `reduce --check` re-reads the header, so the power parameters
         need not travel on the command line; `run` replays them
         interactively for a human *)
      Printf.sprintf
        "bitspecc run %s --entry %s --args %s --power %s --power-seed %Ld \
         --policy %s --retries %d"
        file m.entry (args_to_string m.args)
        (Bs_sim.Powertrace.dist_to_string p.pw_dist)
        p.pw_seed
        (Bs_sim.Checkpoint.policy_name p.pw_policy)
        p.pw_retries
  | None ->
      let fault =
        match m.fault with
        | Some f -> Printf.sprintf " --fault %s" (fault_to_string f)
        | None -> ""
      in
      Printf.sprintf
        "bitspecc reduce --check --entry %s --args %s --train %s%s %s" m.entry
        (args_to_string m.args) (args_to_string m.train) fault file

let render m source =
  let b = Buffer.create (String.length source + 256) in
  Buffer.add_string b "// bs-fuzz reproducer\n";
  Buffer.add_string b ("// bucket: " ^ m.bucket_key ^ "\n");
  Buffer.add_string b ("// entry: " ^ m.entry ^ "\n");
  Buffer.add_string b ("// args: " ^ args_to_string m.args ^ "\n");
  Buffer.add_string b ("// train: " ^ args_to_string m.train ^ "\n");
  (match m.fault with
  | Some f -> Buffer.add_string b ("// fault: " ^ fault_to_string f ^ "\n")
  | None -> ());
  (match m.power with
  | Some p -> Buffer.add_string b ("// power: " ^ power_to_string p ^ "\n")
  | None -> ());
  Buffer.add_string b ("// replay: " ^ replay_command m ^ "\n\n");
  Buffer.add_string b source;
  if source = "" || source.[String.length source - 1] <> '\n' then
    Buffer.add_char b '\n';
  Buffer.contents b

let header_value line key =
  let prefix = "// " ^ key ^ ": " in
  let n = String.length prefix in
  if String.length line >= n && String.sub line 0 n = prefix then
    Some (String.sub line n (String.length line - n))
  else None

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let bucket = ref None and entry = ref "f" and args = ref [ 17L ] in
  let train = ref [ 17L ] and fault = ref None and power = ref None in
  List.iter
    (fun l ->
      Option.iter (fun v -> bucket := Some v) (header_value l "bucket");
      Option.iter (fun v -> entry := v) (header_value l "entry");
      Option.iter (fun v -> args := args_of_string v) (header_value l "args");
      Option.iter (fun v -> train := args_of_string v) (header_value l "train");
      Option.iter (fun v -> fault := fault_of_string v) (header_value l "fault");
      Option.iter (fun v -> power := power_of_string v) (header_value l "power"))
    lines;
  let meta =
    Option.map
      (fun bucket_key ->
        { bucket_key; entry = !entry; args = !args; train = !train;
          fault = !fault; power = !power })
      !bucket
  in
  (meta, contents)

let save ~dir ~name m source =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render m source));
  path

let load path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents

let list_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mc")
    |> List.sort compare
    |> List.map (Filename.concat dir)
