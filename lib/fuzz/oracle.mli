(** The differential oracle.

    One source program is interpreted pristine (the reference) and
    compiled + simulated under every build configuration; any disagreement
    is classified into a stable {!Bs_support.Bucket.t}.  The oracle never
    raises: traps, fuel exhaustion, front-end rejections and pass
    degradations all classify. *)

open Bs_support
open Bitspec

type engine = { ename : string; config : Driver.config }

val engines : engine list
(** The configurations compared against the reference interpreter, in
    fixed order: baseline, bitspec-max, bitspec-avg, bitspec-min, thumb.
    The order makes the first-divergence bucket deterministic. *)

(** How one execution ended, coarsened for comparison. *)
type exec_obs =
  | Value of int64      (** finished; result masked to 32 bits *)
  | Fuel                (** instruction budget exhausted *)
  | Trap of string      (** trapped; stable {!Outcome.trap_name}-style name *)

type verdict =
  | Agree of exec_obs
      (** every configuration matches the reference observation *)
  | Skip of string
      (** the reference itself ran out of fuel: no ground truth *)
  | Crash of { bucket : Bucket.t; details : string }
      (** a divergence; [details] is a human-readable account (values,
          traps, diagnostics) — never part of the bucket key *)

val run :
  ?plant:Driver.pass_fault ->
  ?fuel:int ->
  ?train:(string * int64 list) list ->
  ?engine:Bs_sim.Machine.engine ->
  ?interp_engine:Bs_interp.Interp.engine ->
  source:string ->
  entry:string ->
  args:int64 list ->
  unit ->
  verdict
(** Run the full differential comparison.  [plant] injects a compiler
    fault into every configuration's compile (the planted-bug self-test);
    [fuel] bounds both the reference interpreter and each machine run
    (default 2,000,000); [train] is the profiling input (default: [entry]
    on {!Gen.train_args}); [engine] picks the machine dispatch engine
    (default [Jit]) and [interp_engine] the reference interpreter's
    engine (default [Compiled]) — the verdict is invariant under both,
    so differencing verdicts across engines is itself an engine test. *)

val describe : verdict -> string

(** {1 Intermittent-power replay} *)

type power_verdict = {
  p_bucket : Bs_support.Bucket.t option;
      (** [None]: completed without a restore (nothing to triage) *)
  p_details : string;
}

val run_power :
  ?train:(string * int64 list) list ->
  ?engine:Bs_sim.Machine.engine ->
  source:string ->
  entry:string ->
  args:int64 list ->
  power:Corpus.power_meta ->
  unit ->
  power_verdict
(** Replay [source] under the recorded power-failure configuration and
    classify against the same binary's fault-free machine run: correct
    checksum through [n > 0] restores ⇒ the [restored] bucket, retry
    exhaustion ⇒ [reexec-livelock], fuel ⇒ [hang], a wrong checksum ⇒
    [result-mismatch:power] (a checkpoint/restore bug). *)

val describe_power : power_verdict -> string
