(** The on-disk reproducer format (test/corpus/).

    A reproducer is a plain MiniC file with a machine-readable
    [//]-comment header recording everything needed to replay it: the
    triage bucket it must land in, the entry/arguments, the profiling
    input and (for planted-bug self-tests) the injected compiler fault.
    The files double as a regression suite: [test/main.ml] replays every
    corpus entry through the oracle and checks the bucket key. *)

open Bitspec

(** Intermittent-power replay parameters (the [// power:] header line):
    outage distribution + seed, checkpoint policy, retry limit. *)
type power_meta = {
  pw_dist : Bs_sim.Powertrace.dist;
  pw_seed : int64;
  pw_policy : Bs_sim.Checkpoint.policy;
  pw_retries : int;
}

type meta = {
  bucket_key : string;       (** the {!Bs_support.Bucket.key} to reproduce *)
  entry : string;
  args : int64 list;
  train : int64 list;        (** profiling input for the entry *)
  fault : Driver.pass_fault option;  (** planted compiler fault, if any *)
  power : power_meta option;
      (** power-failure replay parameters; their presence marks the file
          as an intermittent-power reproducer *)
}

val fault_to_string : Driver.pass_fault -> string
(** ["miscompile:f"], ["squeeze:g"], ["regalloc:h"]. *)

val fault_of_string : string -> Driver.pass_fault option

val power_to_string : power_meta -> string
(** ["<dist> <seed> <policy> <retries>"], e.g.
    ["hotpc:40 7 interval:100000 3"]. *)

val power_of_string : string -> power_meta option

val replay_command : ?file:string -> meta -> string
(** The one-line shell command that reproduces the bucket. *)

val render : meta -> string -> string
(** [render meta source] is the file contents: header then source. *)

val parse : string -> meta option * string
(** Split file contents into the header (if one is present and names a
    bucket) and the raw source (always compilable: the header is made of
    comments, so the source part is simply everything). *)

val save : dir:string -> name:string -> meta -> string -> string
(** Write [render meta source] to [dir/name] (creating [dir] if needed)
    and return the path. *)

val load : string -> meta option * string
(** Read and {!parse} one file. *)

val list_dir : string -> string list
(** The [.mc] files of a directory, sorted; [[]] if the directory does
    not exist. *)
