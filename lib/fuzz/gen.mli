(** Random MiniC program generation for differential fuzzing.

    Programs are deterministic functions of the seed, terminate by
    construction (loops have literal bounds and only [break] early-exits,
    divisors are or-ed with 1) and are tuned to stress the squeezer:
    u8/u16/u32 arrays with computed indices, globals, helper functions
    called from the entry, nested loops with guard-driven early exits, and
    expression shapes that straddle the 8-bit slice boundary so the
    misspeculation handler actually fires. *)

val entry : string
(** The entry point every generated program defines: [u32 f(u32 p)]. *)

val entry_arg : int -> int64
(** The differential-run argument derived from a seed.  Distinct from the
    training argument, so profiles under-estimate runtime widths and
    speculation is actually exercised. *)

val train_args : int64 list
(** The fixed profiling input (see {!entry_arg}). *)

val program : ?size:int -> int -> string
(** [program seed] renders one MiniC compilation unit.  [size] scales the
    statement budget of the entry function (default 10). *)

val corrupt : Bs_support.Rng.t -> string -> string
(** Randomly damage a source string (truncation, alien tokens, undefined
    variables) to exercise front-end error paths.  May also return the
    input unchanged. *)
