open Bs_ir

(* TAST -> SIR lowering with on-the-fly SSA construction (Braun et al.,
   "Simple and Efficient Construction of Static Single Assignment Form",
   CC 2013).  Local scalar variables never touch memory: reads and writes
   go through per-block definition tables, phis are created lazily when a
   block is sealed, and trivial phis are removed recursively. *)

exception Error of string

module IntPair = struct
  type t = int * int

  let equal (a, b) (c, d) = a = c && b = d
  let hash = Hashtbl.hash
end

module DefTbl = Hashtbl.Make (IntPair)

type loop_ctx = { break_to : Ir.block; continue_to : Ir.block }

type st = {
  func : Ir.func;
  bld : Builder.t;
  defs : Ir.operand DefTbl.t;                 (* (block id, sym id) -> value *)
  sealed : (int, unit) Hashtbl.t;
  incomplete : (int, (int * Ast.ity * Ir.instr) list ref) Hashtbl.t;
  preds : (int, int list) Hashtbl.t;          (* built as branches are emitted *)
  mutable cur : Ir.block;
  mutable terminated : bool;
  mutable loops : loop_ctx list;
  mutable entry_allocs : (int * Ir.instr) list;  (* sym id, salloc instr *)
  (* Forwarding of removed trivial phis: a removed phi's replacement can
     itself be removed while recursing over its users, so every value read
     out of the definition tables is chased through this map first. *)
  forward : (int, Ir.operand) Hashtbl.t;
}

let rec resolve st (o : Ir.operand) =
  match o with
  | Ir.Var v -> (
      match Hashtbl.find_opt st.forward v with
      | Some o' -> resolve st o'
      | None -> o)
  | Ir.Const _ -> o

let add_pred st ~from ~target =
  let cur = try Hashtbl.find st.preds target with Not_found -> [] in
  if not (List.mem from cur) then Hashtbl.replace st.preds target (from :: cur)

let block_preds st bid =
  match Hashtbl.find_opt st.preds bid with Some l -> List.rev l | None -> []

(* --- SSA variable bookkeeping ----------------------------------------- *)

let write_var st bid sid v = DefTbl.replace st.defs (bid, sid) v

let new_phi st (b : Ir.block) width name =
  let i = Ir.mk_instr st.func ~name ~width (Ir.Phi []) in
  let phis, rest = List.partition Ir.is_phi b.Ir.instrs in
  b.Ir.instrs <- phis @ [ i ] @ rest;
  i

let rec read_var st bid (sid : int) (ty : Ast.ity) : Ir.operand =
  match DefTbl.find_opt st.defs (bid, sid) with
  | Some v -> resolve st v
  | None -> read_var_recursive st bid sid ty

and read_var_recursive st bid sid ty =
  let b = Ir.block st.func bid in
  let v =
    if not (Hashtbl.mem st.sealed bid) then begin
      (* Unknown predecessors: place an operandless phi and fill it when the
         block is sealed. *)
      let phi = new_phi st b ty.Ast.w ("v" ^ string_of_int sid) in
      let pending =
        match Hashtbl.find_opt st.incomplete bid with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.replace st.incomplete bid r;
            r
      in
      pending := (sid, ty, phi) :: !pending;
      Ir.Var phi.Ir.iid
    end
    else
      match block_preds st bid with
      | [] -> Ir.const ~width:ty.Ast.w 0L (* unreachable block *)
      | [ p ] -> read_var st p sid ty
      | _ ->
          (* Break potential cycles by writing the phi before visiting
             predecessors. *)
          let phi = new_phi st b ty.Ast.w ("v" ^ string_of_int sid) in
          write_var st bid sid (Ir.Var phi.Ir.iid);
          add_phi_operands st bid sid ty phi
  in
  let v = resolve st v in
  write_var st bid sid v;
  v

and add_phi_operands st bid sid ty phi =
  let incoming =
    List.map (fun p -> (p, read_var st p sid ty)) (block_preds st bid)
  in
  phi.Ir.op <- Ir.Phi incoming;
  try_remove_trivial_phi st phi

and try_remove_trivial_phi st phi =
  match phi.Ir.op with
  | Ir.Phi incoming ->
      let self = Ir.Var phi.Ir.iid in
      let distinct =
        List.sort_uniq compare
          (List.filter (fun (v : Ir.operand) -> v <> self)
             (List.map snd incoming))
      in
      (match distinct with
      | [ unique ] ->
          (* The phi merges a single value: replace it everywhere. *)
          Hashtbl.replace st.forward phi.Ir.iid unique;
          let users =
            match Hashtbl.find_opt (Ir.uses st.func) phi.Ir.iid with
            | Some us -> us
            | None -> []
          in
          Ir.replace_all_uses st.func ~old_id:phi.Ir.iid ~by:unique;
          (* Also rewrite definition-table entries referring to the phi. *)
          DefTbl.iter
            (fun k v -> if v = self then DefTbl.replace st.defs k unique)
            st.defs;
          List.iter
            (fun (b : Ir.block) ->
              b.Ir.instrs <-
                List.filter (fun (i : Ir.instr) -> i.Ir.iid <> phi.Ir.iid) b.Ir.instrs)
            st.func.Ir.blocks;
          (* Removing this phi may make phi users trivial in turn. *)
          List.iter
            (fun (u : Ir.instr) ->
              if Ir.is_phi u && u.Ir.iid <> phi.Ir.iid then
                ignore (try_remove_trivial_phi st u))
            users;
          (* the replacement may have been removed by the recursion above *)
          resolve st unique
      | _ -> Ir.Var phi.Ir.iid)
  | _ -> Ir.Var phi.Ir.iid

let seal_block st (b : Ir.block) =
  if not (Hashtbl.mem st.sealed b.Ir.bid) then begin
    (match Hashtbl.find_opt st.incomplete b.Ir.bid with
    | Some pending ->
        List.iter
          (fun (sid, ty, phi) ->
            ignore (add_phi_operands st b.Ir.bid sid ty phi))
          !pending;
        Hashtbl.remove st.incomplete b.Ir.bid
    | None -> ());
    Hashtbl.replace st.sealed b.Ir.bid ()
  end

(* --- control-flow helpers --------------------------------------------- *)

let start_block st (b : Ir.block) =
  st.cur <- b;
  st.terminated <- false;
  Builder.position_at_end st.bld b

let emit_br st target =
  if not st.terminated then begin
    ignore (Builder.br st.bld target);
    add_pred st ~from:st.cur.Ir.bid ~target:target.Ir.bid;
    st.terminated <- true
  end

let emit_cbr st cond ~if_true ~if_false =
  if not st.terminated then begin
    ignore (Builder.cbr st.bld cond ~if_true ~if_false);
    add_pred st ~from:st.cur.Ir.bid ~target:if_true.Ir.bid;
    add_pred st ~from:st.cur.Ir.bid ~target:if_false.Ir.bid;
    st.terminated <- true
  end

let emit_ret st v =
  if not st.terminated then begin
    ignore (Builder.ret st.bld v);
    st.terminated <- true
  end

let fresh_block st name =
  let b = Ir.add_block st.func name in
  b

(* --- expressions ------------------------------------------------------ *)

let binop_ir signed (op : Ast.binop) : Ir.binop =
  match op with
  | Ast.BAdd -> Ir.Add | Ast.BSub -> Ir.Sub | Ast.BMul -> Ir.Mul
  | Ast.BDiv -> if signed then Ir.Sdiv else Ir.Udiv
  | Ast.BMod -> if signed then Ir.Srem else Ir.Urem
  | Ast.BAnd -> Ir.And | Ast.BOr -> Ir.Or | Ast.BXor -> Ir.Xor
  | Ast.BShl -> Ir.Shl
  | Ast.BShr -> if signed then Ir.Ashr else Ir.Lshr
  | _ -> raise (Error "not an arithmetic operator")

let cmpop_ir signed (op : Ast.binop) : Ir.cmpop =
  match op with
  | Ast.BEq -> Ir.Eq | Ast.BNe -> Ir.Ne
  | Ast.BLt -> if signed then Ir.Slt else Ir.Ult
  | Ast.BLe -> if signed then Ir.Sle else Ir.Ule
  | Ast.BGt -> if signed then Ir.Sgt else Ir.Ugt
  | Ast.BGe -> if signed then Ir.Sge else Ir.Uge
  | _ -> raise (Error "not a comparison operator")

let elem_info = function
  | Tast.Aglobal (_, t, vol) -> (t, vol)
  | Tast.Alocal (_, t, _) -> (t, false)
  | Tast.Aparam (_, t) -> (t, false)

let rec lower_expr st (e : Tast.texpr) : Ir.operand =
  match e.te with
  | TConst v -> Ir.const ~width:e.tty.Ast.w v
  | TVar sym -> read_var st st.cur.Ir.bid sym.sid sym.sty
  | TLoadArr (arr, idx) ->
      let elem, vol = elem_info arr in
      let addr = lower_elem_addr st arr idx elem in
      Builder.value (Builder.load st.bld ~volatile:vol ~width:elem.Ast.w addr)
  | TBin (op, a, b) ->
      let signed = e.tty.Ast.signed in
      let va = lower_expr st a and vb = lower_expr st b in
      Builder.value
        (Builder.bin st.bld (binop_ir signed op) ~width:e.tty.Ast.w va vb)
  | TCmp (op, signed, a, b) ->
      let va = lower_expr st a and vb = lower_expr st b in
      Builder.value (Builder.cmp st.bld (cmpop_ir signed op) va vb)
  | TLogAnd (a, b) -> lower_shortcircuit st ~is_and:true a b
  | TLogOr (a, b) -> lower_shortcircuit st ~is_and:false a b
  | TLogNot a ->
      let va = lower_expr st a in
      Builder.value (Builder.cmp st.bld Ir.Eq va (Ir.const ~width:1 0L))
  | TCast (a, ty) ->
      let va = lower_expr st a in
      let src = a.tty in
      if src.Ast.w = ty.Ast.w then va
      else if ty.Ast.w < src.Ast.w then
        Builder.value (Builder.cast st.bld Ir.TruncCast ~width:ty.Ast.w va)
      else if src.Ast.signed then
        Builder.value (Builder.cast st.bld Ir.Sext ~width:ty.Ast.w va)
      else Builder.value (Builder.cast st.bld Ir.Zext ~width:ty.Ast.w va)
  | TCall (name, args) ->
      let vargs = List.map (lower_expr st) args in
      Builder.value (Builder.call st.bld ~width:e.tty.Ast.w name vargs)
  | TArrayAddr arr -> lower_base_addr st arr
  | TCond (c, a, b) ->
      (* Lower through control flow so arm side effects stay conditional. *)
      let vc = lower_expr st c in
      let then_b = fresh_block st "sel.then" in
      let else_b = fresh_block st "sel.else" in
      let merge_b = fresh_block st "sel.end" in
      emit_cbr st vc ~if_true:then_b ~if_false:else_b;
      seal_block st then_b;
      seal_block st else_b;
      start_block st then_b;
      let va = lower_expr st a in
      let then_end = st.cur in
      emit_br st merge_b;
      start_block st else_b;
      let vb = lower_expr st b in
      let else_end = st.cur in
      emit_br st merge_b;
      seal_block st merge_b;
      start_block st merge_b;
      Builder.position_at_end st.bld merge_b;
      let phi =
        Builder.phi st.bld ~width:e.tty.Ast.w
          [ (then_end.Ir.bid, va); (else_end.Ir.bid, vb) ]
      in
      Builder.value phi

and lower_shortcircuit st ~is_and a b =
  let va = lower_expr st a in
  let rhs_b = fresh_block st (if is_and then "and.rhs" else "or.rhs") in
  let merge_b = fresh_block st (if is_and then "and.end" else "or.end") in
  let from = st.cur in
  if is_and then emit_cbr st va ~if_true:rhs_b ~if_false:merge_b
  else emit_cbr st va ~if_true:merge_b ~if_false:rhs_b;
  seal_block st rhs_b;
  start_block st rhs_b;
  let vb = lower_expr st b in
  let rhs_end = st.cur in
  emit_br st merge_b;
  seal_block st merge_b;
  start_block st merge_b;
  let short_val = Ir.const ~width:1 (if is_and then 0L else 1L) in
  let phi =
    Builder.phi st.bld ~width:1
      [ (from.Ir.bid, short_val); (rhs_end.Ir.bid, vb) ]
  in
  Builder.value phi

and lower_base_addr st (arr : Tast.arr_ref) : Ir.operand =
  match arr with
  | Aglobal (name, _, _) -> Builder.value (Builder.gaddr st.bld name)
  | Alocal (sym, _, _) -> (
      match List.assoc_opt sym.sid st.entry_allocs with
      | Some i -> Ir.Var i.Ir.iid
      | None -> raise (Error ("local array used before declaration: " ^ sym.sname)))
  | Aparam (sym, _) -> read_var st st.cur.Ir.bid sym.sid Ast.u32

and lower_elem_addr st arr (idx : Tast.texpr) (elem : Ast.ity) : Ir.operand =
  let base = lower_base_addr st arr in
  let vidx = lower_expr st idx in
  let bytes = elem.Ast.w / 8 in
  let scaled =
    if bytes = 1 then vidx
    else
      let shift =
        match bytes with 2 -> 1L | 4 -> 2L | 8 -> 3L | _ -> assert false
      in
      Builder.value
        (Builder.bin st.bld Ir.Shl ~width:32 vidx (Ir.const ~width:32 shift))
  in
  Builder.value (Builder.bin st.bld Ir.Add ~width:32 base scaled)

(* --- statements ------------------------------------------------------- *)

let rec lower_stmts st stmts = List.iter (lower_stmt st) stmts

and lower_stmt st (s : Tast.tstmt) =
  match s with
  | TLine n -> Builder.set_line st.bld n
  | _ ->
  if st.terminated then () (* dead code after return/break *)
  else
    match s with
    | TDecl (sym, init) ->
        let v = lower_expr st init in
        write_var st st.cur.Ir.bid sym.sid v
    | TDeclArr (sym, elem, count) ->
        let bytes = count * (elem.Ast.w / 8) in
        let i = Ir.mk_instr st.func ~name:sym.sname ~width:32 (Ir.Salloc bytes) in
        st.entry_allocs <- st.entry_allocs @ [ (sym.sid, i) ]
    | TAssign (TLvar sym, e) ->
        let v = lower_expr st e in
        write_var st st.cur.Ir.bid sym.sid v
    | TAssign (TLarr (arr, idx), e) ->
        let elem, vol = elem_info arr in
        let addr = lower_elem_addr st arr idx elem in
        let v = lower_expr st e in
        ignore (Builder.store st.bld ~volatile:vol ~width:elem.Ast.w ~addr v)
    | TIf (c, thn, els) ->
        let vc = lower_expr st c in
        let then_b = fresh_block st "if.then" in
        let else_b = fresh_block st "if.else" in
        let merge_b = fresh_block st "if.end" in
        emit_cbr st vc ~if_true:then_b ~if_false:else_b;
        seal_block st then_b;
        seal_block st else_b;
        start_block st then_b;
        lower_stmts st thn;
        emit_br st merge_b;
        start_block st else_b;
        lower_stmts st els;
        emit_br st merge_b;
        seal_block st merge_b;
        start_block st merge_b
    | TWhile (c, body) ->
        let header = fresh_block st "while.cond" in
        let body_b = fresh_block st "while.body" in
        let exit_b = fresh_block st "while.end" in
        emit_br st header;
        (* header stays unsealed until the latch edge is known *)
        start_block st header;
        let vc = lower_expr st c in
        emit_cbr st vc ~if_true:body_b ~if_false:exit_b;
        seal_block st body_b;
        start_block st body_b;
        st.loops <- { break_to = exit_b; continue_to = header } :: st.loops;
        lower_stmts st body;
        st.loops <- List.tl st.loops;
        emit_br st header;
        seal_block st header;
        seal_block st exit_b;
        start_block st exit_b
    | TFor (c, body, step) ->
        (* Separate step block so that [continue] still executes the
           induction update. *)
        let header = fresh_block st "for.cond" in
        let body_b = fresh_block st "for.body" in
        let step_b = fresh_block st "for.step" in
        let exit_b = fresh_block st "for.end" in
        emit_br st header;
        start_block st header;
        let vc = lower_expr st c in
        emit_cbr st vc ~if_true:body_b ~if_false:exit_b;
        seal_block st body_b;
        start_block st body_b;
        st.loops <- { break_to = exit_b; continue_to = step_b } :: st.loops;
        lower_stmts st body;
        st.loops <- List.tl st.loops;
        emit_br st step_b;
        seal_block st step_b;
        start_block st step_b;
        lower_stmts st step;
        emit_br st header;
        seal_block st header;
        seal_block st exit_b;
        start_block st exit_b
    | TDoWhile (body, c) ->
        let body_b = fresh_block st "do.body" in
        let cond_b = fresh_block st "do.cond" in
        let exit_b = fresh_block st "do.end" in
        emit_br st body_b;
        start_block st body_b;
        st.loops <- { break_to = exit_b; continue_to = cond_b } :: st.loops;
        lower_stmts st body;
        st.loops <- List.tl st.loops;
        emit_br st cond_b;
        seal_block st cond_b;
        start_block st cond_b;
        let vc = lower_expr st c in
        emit_cbr st vc ~if_true:body_b ~if_false:exit_b;
        seal_block st body_b;
        seal_block st exit_b;
        start_block st exit_b
    | TReturn v ->
        let v = Option.map (lower_expr st) v in
        emit_ret st v
    | TBreak -> (
        match st.loops with
        | ctx :: _ -> emit_br st ctx.break_to
        | [] -> raise (Error "break outside loop"))
    | TContinue -> (
        match st.loops with
        | ctx :: _ -> emit_br st ctx.continue_to
        | [] -> raise (Error "continue outside loop"))
    | TExpr e -> ignore (lower_expr st e)
    | TLine _ -> assert false (* handled above *)

(* --- functions and modules -------------------------------------------- *)

let lower_func (tf : Tast.tfunc) : Ir.func =
  let params =
    List.map (fun (p : Tast.tparam) -> (p.p_sym.sname, p.p_sym.sty.Ast.w)) tf.tf_params
  in
  let ret_width = match tf.tf_ret with Some t -> t.Ast.w | None -> 0 in
  let func = Ir.create_func ~name:tf.tf_name ~params ~ret_width in
  let entry = Ir.add_block func "entry" in
  let st =
    { func; bld = Builder.create func; defs = DefTbl.create 64;
      sealed = Hashtbl.create 16; incomplete = Hashtbl.create 8;
      preds = Hashtbl.create 16; cur = entry; terminated = false;
      loops = []; entry_allocs = []; forward = Hashtbl.create 16 }
  in
  Hashtbl.replace st.sealed entry.Ir.bid ();
  Builder.position_at_end st.bld entry;
  (* Parameters seed the entry block's definitions. *)
  List.iteri
    (fun k (p : Tast.tparam) ->
      let i = List.nth func.Ir.param_instrs k in
      write_var st entry.Ir.bid p.p_sym.sid (Ir.Var i.Ir.iid))
    tf.tf_params;
  lower_stmts st tf.tf_body;
  (* Implicit return at fall-through. *)
  if not st.terminated then
    emit_ret st (if ret_width = 0 then None else Some (Ir.const ~width:ret_width 0L));
  (* Static stack allocations live at the top of the entry block. *)
  List.iter
    (fun (_, i) -> Ir.prepend_instr entry i)
    (List.rev st.entry_allocs);
  func

let lower_global (g : Tast.tglobal) : Ir.global =
  { Ir.gname = g.tg_name; elem_width = g.tg_ty.Ast.w; count = g.tg_count;
    ginit = g.tg_init }

(** [lower_program p] converts a checked program to an SIR module. *)
let lower_program (p : Tast.tprogram) : Ir.modul =
  { Ir.funcs = List.map lower_func p.tfuncs;
    globals = List.map lower_global p.tglobals }

(** [compile src] runs the full front-end: lex, parse, check, lower, and
    verify.  Raises on malformed input. *)
let compile (src : string) : Ir.modul =
  let ast = Parser.parse src in
  let tast = Typecheck.check_program ast in
  let m = lower_program tast in
  Verifier.verify_exn m;
  m
