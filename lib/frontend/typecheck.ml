open Bs_ir

(* Type checking and resolution: AST -> TAST.

   MiniC follows simplified C conversion rules:
   - integer promotion: operands of arithmetic narrower than 32 bits are
     promoted to 32 bits, keeping their signedness (this mirrors what
     clang-generated LLVM IR looks like, which is what Figure 1b of the
     paper measures);
   - usual arithmetic conversion: the common type of two operands is the
     wider one; at equal width unsigned wins;
   - assignment converts the value to the destination type (truncating or
     extending according to the source's signedness);
   - conditions are booleans; integers used as conditions compare != 0. *)

exception Error of string * int

let fail line fmt = Printf.ksprintf (fun s -> raise (Error (s, line))) fmt

type entry =
  | Escalar of Tast.sym
  | Earray of Tast.arr_ref
  | Egscalar of string * Ast.ity * bool   (* scalar global: name, type, volatile *)
  | Efunc of Ast.ity option * Tast.tparam list

type env = {
  mutable scopes : (string, entry) Hashtbl.t list;
  globals : (string, entry) Hashtbl.t;
  mutable next_sid : int;
}

let fresh_sym env name ty =
  let sid = env.next_sid in
  env.next_sid <- sid + 1;
  { Tast.sid; sname = name; sty = ty }

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> ()

let define env line name entry =
  match env.scopes with
  | scope :: _ ->
      if Hashtbl.mem scope name then fail line "redefinition of %s" name;
      Hashtbl.replace scope name entry
  | [] -> Hashtbl.replace env.globals name entry

let lookup env line name =
  let rec go = function
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some e -> e
        | None -> go rest)
    | [] -> (
        match Hashtbl.find_opt env.globals name with
        | Some e -> e
        | None -> fail line "undefined identifier %s" name)
  in
  go env.scopes

(* --- conversions ------------------------------------------------------ *)

let is_bool (t : Ast.ity) = t.w = 1

let cast_to (e : Tast.texpr) (ty : Ast.ity) : Tast.texpr =
  if e.tty = ty then e else { te = TCast (e, ty); tty = ty }

(* Promote to at least 32 bits for arithmetic, C-style. *)
let promote (e : Tast.texpr) : Tast.texpr =
  if is_bool e.tty then cast_to e Ast.u32
  else if e.tty.w < 32 then cast_to e { Ast.w = 32; signed = e.tty.signed }
  else e

let common_type (a : Ast.ity) (b : Ast.ity) : Ast.ity =
  if a.w > b.w then a
  else if b.w > a.w then b
  else { Ast.w = a.w; signed = a.signed && b.signed }

let arith_pair a b =
  let a = promote a and b = promote b in
  let t = common_type a.Tast.tty b.Tast.tty in
  (cast_to a t, cast_to b t, t)

let as_condition (e : Tast.texpr) : Tast.texpr =
  if is_bool e.tty then e
  else
    { te = TCmp (Ast.BNe, false, e, { te = TConst 0L; tty = e.tty });
      tty = Ast.bool_ty }

(* --- expressions ------------------------------------------------------ *)

let rec check_expr env (e : Ast.expr) : Tast.texpr =
  let line = e.eline in
  match e.e with
  | Ast.Int v ->
      (* Literals default to u32 unless they need 64 bits; negative
         literals arrive via unary minus. *)
      (* C-style: decimal literals are signed when they fit *)
      let bits = Width.required_bits v in
      let ty =
        if bits <= 31 then Ast.i32
        else if bits <= 32 then Ast.u32
        else if bits <= 63 then Ast.i64
        else Ast.u64
      in
      { te = TConst (Width.trunc ty.w v); tty = ty }
  | Ast.Ident name -> (
      match lookup env line name with
      | Escalar s -> { te = TVar s; tty = s.sty }
      | Earray a -> { te = TArrayAddr a; tty = Ast.u32 }
      | Egscalar (g, ty, vol) ->
          let zero = { Tast.te = TConst 0L; tty = Ast.u32 } in
          { te = TLoadArr (Aglobal (g, ty, vol), zero); tty = ty }
      | Efunc _ -> fail line "%s is a function" name)
  | Ast.Index (name, idx) -> (
      let idx = cast_to (promote (check_expr env idx)) Ast.u32 in
      match lookup env line name with
      | Earray a ->
          let elem =
            match a with
            | Aglobal (_, t, _) | Alocal (_, t, _) | Aparam (_, t) -> t
          in
          { te = TLoadArr (a, idx); tty = elem }
      | Escalar _ | Egscalar _ -> fail line "%s is not an array" name
      | Efunc _ -> fail line "%s is a function" name)
  | Ast.Bin (op, a, b) -> check_bin env line op a b
  | Ast.Un (Ast.UNeg, a) ->
      let a = promote (check_expr env a) in
      let zero = { Tast.te = TConst 0L; tty = a.tty } in
      { te = TBin (Ast.BSub, zero, a); tty = a.tty }
  | Ast.Un (Ast.UNot, a) ->
      let a = promote (check_expr env a) in
      let ones = { Tast.te = TConst (Width.mask a.tty.w); tty = a.tty } in
      { te = TBin (Ast.BXor, a, ones); tty = a.tty }
  | Ast.Un (Ast.ULogNot, a) ->
      { te = TLogNot (as_condition (check_expr env a)); tty = Ast.bool_ty }
  | Ast.Cond (c, a, b) ->
      let c = as_condition (check_expr env c) in
      let a, b, t = arith_pair (check_expr env a) (check_expr env b) in
      { te = TCond (c, a, b); tty = t }
  | Ast.CastE (ty, a) -> cast_to (check_expr env a) ty
  | Ast.CallE (name, args) -> (
      match lookup env line name with
      | Efunc (rty, params) ->
          if List.length args <> List.length params then
            fail line "%s expects %d argument(s)" name (List.length params);
          let targs =
            List.map2
              (fun arg (p : Tast.tparam) ->
                let a = check_expr env arg in
                if p.p_array then begin
                  (* must be an address: an array decay or a u32 value *)
                  cast_to a Ast.u32
                end
                else cast_to a p.p_sym.sty)
              args params
          in
          let rty =
            match rty with
            | Some t -> t
            | None -> fail line "void function %s used as value" name
          in
          { te = TCall (name, targs); tty = rty }
      | _ -> fail line "%s is not a function" name)

and check_bin env _line op a b : Tast.texpr =
  match op with
  | Ast.BLogAnd ->
      let a = as_condition (check_expr env a) in
      let b = as_condition (check_expr env b) in
      { te = TLogAnd (a, b); tty = Ast.bool_ty }
  | Ast.BLogOr ->
      let a = as_condition (check_expr env a) in
      let b = as_condition (check_expr env b) in
      { te = TLogOr (a, b); tty = Ast.bool_ty }
  | Ast.BEq | Ast.BNe | Ast.BLt | Ast.BLe | Ast.BGt | Ast.BGe ->
      let a, b, t = arith_pair (check_expr env a) (check_expr env b) in
      { te = TCmp (op, t.signed, a, b); tty = Ast.bool_ty }
  | Ast.BShl | Ast.BShr ->
      (* Shift result takes the promoted left operand's type. *)
      let a = promote (check_expr env a) in
      let b = cast_to (promote (check_expr env b)) a.Tast.tty in
      { te = TBin (op, a, b); tty = a.Tast.tty }
  | Ast.BAdd | Ast.BSub | Ast.BMul | Ast.BDiv | Ast.BMod
  | Ast.BAnd | Ast.BOr | Ast.BXor ->
      let a, b, t = arith_pair (check_expr env a) (check_expr env b) in
      { te = TBin (op, a, b); tty = t }

(* --- statements ------------------------------------------------------- *)

type fctx = { ret : Ast.ity option; in_loop : bool }

let rec check_stmts env fctx stmts =
  List.concat_map
    (fun (s : Ast.stmt) -> Tast.TLine s.sline :: check_stmt env fctx s)
    stmts

and check_stmt env fctx (s : Ast.stmt) : Tast.tstmt list =
  let line = s.sline in
  match s.s with
  | Ast.Decl (ty, name, init) ->
      let sym = fresh_sym env name ty in
      define env line name (Escalar sym);
      let v =
        match init with
        | Some e -> cast_to (check_expr env e) ty
        | None -> { Tast.te = TConst 0L; tty = ty }
      in
      [ TDecl (sym, v) ]
  | Ast.DeclArr (ty, name, count) ->
      if count <= 0 then fail line "array %s must have positive size" name;
      let sym = fresh_sym env name Ast.u32 in
      define env line name (Earray (Alocal (sym, ty, count)));
      [ TDeclArr (sym, ty, count) ]
  | Ast.Assign (lv, e) ->
      let tlv, ty = check_lvalue env line lv in
      [ TAssign (tlv, cast_to (check_expr env e) ty) ]
  | Ast.OpAssign (op, lv, e) ->
      let tlv, ty = check_lvalue env line lv in
      let cur : Tast.texpr =
        match tlv with
        | TLvar s -> { te = TVar s; tty = s.sty }
        | TLarr (a, idx) -> { te = TLoadArr (a, idx); tty = ty }
      in
      let rhs = check_bin_t line op cur (check_expr env e) in
      [ TAssign (tlv, cast_to rhs ty) ]
  | Ast.If (c, thn, els) ->
      let c = as_condition (check_expr env c) in
      push_scope env;
      let thn = check_stmts env fctx thn in
      pop_scope env;
      push_scope env;
      let els = check_stmts env fctx els in
      pop_scope env;
      [ TIf (c, thn, els) ]
  | Ast.While (c, body) ->
      let c = as_condition (check_expr env c) in
      push_scope env;
      let body = check_stmts env { fctx with in_loop = true } body in
      pop_scope env;
      [ TWhile (c, body) ]
  | Ast.DoWhile (body, c) ->
      push_scope env;
      let body = check_stmts env { fctx with in_loop = true } body in
      pop_scope env;
      let c = as_condition (check_expr env c) in
      [ TDoWhile (body, c) ]
  | Ast.For (init, cond, step, body) ->
      push_scope env;
      let init = match init with Some s -> check_stmt env fctx s | None -> [] in
      let cond =
        match cond with
        | Some c -> as_condition (check_expr env c)
        | None -> { Tast.te = TConst 1L; tty = Ast.bool_ty }
      in
      push_scope env;
      let body = check_stmts env { fctx with in_loop = true } body in
      let step = match step with Some s -> check_stmt env { fctx with in_loop = true } s | None -> [] in
      pop_scope env;
      pop_scope env;
      init @ [ Tast.TFor (cond, body, step) ]
  | Ast.Return None ->
      if fctx.ret <> None then fail line "missing return value";
      [ TReturn None ]
  | Ast.Return (Some e) -> (
      match fctx.ret with
      | None -> fail line "void function returns a value"
      | Some ty -> [ TReturn (Some (cast_to (check_expr env e) ty)) ])
  | Ast.Break ->
      if not fctx.in_loop then fail line "break outside loop";
      [ TBreak ]
  | Ast.Continue ->
      if not fctx.in_loop then fail line "continue outside loop";
      [ TContinue ]
  | Ast.ExprStmt e -> (
      (* Permit void calls. *)
      match e.e with
      | Ast.CallE (name, args) -> (
          match lookup env line name with
          | Efunc (None, params) ->
              if List.length args <> List.length params then
                fail line "%s expects %d argument(s)" name (List.length params);
              let targs =
                List.map2
                  (fun arg (p : Tast.tparam) ->
                    let a = check_expr env arg in
                    if p.p_array then cast_to a Ast.u32
                    else cast_to a p.p_sym.sty)
                  args params
              in
              [ TExpr { te = TCall (name, targs); tty = { Ast.w = 0; signed = false } } ]
          | _ -> [ TExpr (check_expr env e) ])
      | _ -> [ TExpr (check_expr env e) ])
  | Ast.Block body ->
      push_scope env;
      let body = check_stmts env fctx body in
      pop_scope env;
      body

and check_bin_t _line op (a : Tast.texpr) (b : Tast.texpr) : Tast.texpr =
  (* binop on already-typed operands, used by OpAssign *)

  match op with
  | Ast.BShl | Ast.BShr ->
      let a = promote a in
      let b = cast_to (promote b) a.Tast.tty in
      { te = TBin (op, a, b); tty = a.Tast.tty }
  | _ ->
      let a, b, t = arith_pair a b in
      { te = TBin (op, a, b); tty = t }

and check_lvalue env line (lv : Ast.lvalue) : Tast.tlvalue * Ast.ity =
  match lv with
  | Ast.Lid name -> (
      match lookup env line name with
      | Escalar s -> (TLvar s, s.sty)
      | Egscalar (g, ty, vol) ->
          let zero = { Tast.te = TConst 0L; tty = Ast.u32 } in
          (TLarr (Aglobal (g, ty, vol), zero), ty)
      | Earray _ -> fail line "cannot assign to array %s" name
      | Efunc _ -> fail line "cannot assign to function %s" name)
  | Ast.Lindex (name, idx) -> (
      let idx = cast_to (promote (check_expr env idx)) Ast.u32 in
      match lookup env line name with
      | Earray a ->
          let elem =
            match a with
            | Aglobal (_, t, _) | Alocal (_, t, _) | Aparam (_, t) -> t
          in
          (TLarr (a, idx), elem)
      | _ -> fail line "%s is not an array" name)

(* --- top level -------------------------------------------------------- *)

let check_program (prog : Ast.program) : Tast.tprogram =
  let env = { scopes = []; globals = Hashtbl.create 32; next_sid = 0 } in
  let tglobals = ref [] and tfuncs = ref [] in
  (* First pass: register signatures and globals so order doesn't matter. *)
  List.iter
    (fun top ->
      match top with
      | Ast.Gdecl g ->
          let scalar = g.count = 0 in
          let count = if scalar then 1 else g.count in
          let init =
            match g.init with
            | Ast.Gnone -> [||]
            | Ast.Gscalar v -> [| v |]
            | Ast.Glist l -> Array.of_list l
            | Ast.Gstring s ->
                Array.init count (fun i ->
                    if i < String.length s then Int64.of_int (Char.code s.[i])
                    else 0L)
          in
          if Array.length init > count then
            fail 0 "initializer for %s exceeds its size" g.gname;
          let entry =
            if scalar then Egscalar (g.gname, g.gty, g.volatile)
            else Earray (Aglobal (g.gname, g.gty, g.volatile))
          in
          if Hashtbl.mem env.globals g.gname then
            fail 0 "redefinition of global %s" g.gname;
          Hashtbl.replace env.globals g.gname entry;
          tglobals :=
            { Tast.tg_name = g.gname; tg_ty = g.gty; tg_count = count;
              tg_scalar = scalar; tg_volatile = g.volatile; tg_init = init }
            :: !tglobals
      | Ast.Fdecl f ->
          let params =
            List.map
              (fun p ->
                match p with
                | Ast.Pscalar (t, n) ->
                    { Tast.p_sym = fresh_sym env n t; p_array = false; p_elem = t }
                | Ast.Parray (t, n) ->
                    { Tast.p_sym = fresh_sym env n Ast.u32; p_array = true;
                      p_elem = t })
              f.fparams
          in
          if Hashtbl.mem env.globals f.fnname then
            fail 0 "redefinition of %s" f.fnname;
          Hashtbl.replace env.globals f.fnname (Efunc (f.rty, params)))
    prog;
  (* Second pass: check function bodies. *)
  List.iter
    (fun top ->
      match top with
      | Ast.Gdecl _ -> ()
      | Ast.Fdecl f ->
          let params =
            match Hashtbl.find_opt env.globals f.fnname with
            | Some (Efunc (_, ps)) -> ps
            | _ -> assert false
          in
          push_scope env;
          List.iter
            (fun (p : Tast.tparam) ->
              let entry =
                if p.p_array then Earray (Aparam (p.p_sym, p.p_elem))
                else Escalar p.p_sym
              in
              define env 0 p.p_sym.sname entry)
            params;
          let body =
            check_stmts env { ret = f.rty; in_loop = false } f.body
          in
          pop_scope env;
          tfuncs :=
            { Tast.tf_name = f.fnname; tf_ret = f.rty; tf_params = params;
              tf_body = body }
            :: !tfuncs)
    prog;
  { tfuncs = List.rev !tfuncs; tglobals = List.rev !tglobals }
