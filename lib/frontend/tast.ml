(* Typed, resolved AST produced by {!Typecheck} and consumed by {!Lower}.

   Every expression carries its integer type; all implicit conversions of
   MiniC's C-style rules have been made explicit [TCast] nodes; every local
   variable has been alpha-renamed to a unique symbol so SSA construction
   never sees shadowing. *)

type ity = Ast.ity

type sym = { sid : int; sname : string; sty : ity }

(** Where an array's storage lives. *)
type arr_ref =
  | Aglobal of string * ity * bool      (* name, element type, volatile *)
  | Alocal of sym * ity * int           (* local array symbol, elem type, count *)
  | Aparam of sym * ity                 (* T name[] parameter *)

type texpr = { te : texpr_desc; tty : ity }

and texpr_desc =
  | TConst of int64
  | TVar of sym
  | TLoadArr of arr_ref * texpr         (* element read; index is u32 *)
  | TBin of Ast.binop * texpr * texpr   (* arithmetic/bitwise, same-type operands *)
  | TCmp of Ast.binop * bool * texpr * texpr  (* predicate, signed?, operands *)
  | TLogAnd of texpr * texpr            (* short-circuit; operands are bool *)
  | TLogOr of texpr * texpr
  | TLogNot of texpr
  | TCast of texpr * ity                (* from te.tty to tty *)
  | TCall of string * texpr list
  | TArrayAddr of arr_ref               (* array decayed to its address (u32) *)
  | TCond of texpr * texpr * texpr

type tlvalue =
  | TLvar of sym
  | TLarr of arr_ref * texpr

type tstmt =
  | TDecl of sym * texpr
  | TDeclArr of sym * ity * int
  | TAssign of tlvalue * texpr
  | TIf of texpr * tstmt list * tstmt list
  | TWhile of texpr * tstmt list
  | TFor of texpr * tstmt list * tstmt list  (* cond, body, step; continue -> step *)
  | TDoWhile of tstmt list * texpr
  | TReturn of texpr option
  | TBreak
  | TContinue
  | TExpr of texpr
  | TLine of int  (* source-line marker; lowering stamps it on instrs *)

type tparam = { p_sym : sym; p_array : bool; p_elem : ity }

type tfunc = {
  tf_name : string;
  tf_ret : ity option;
  tf_params : tparam list;
  tf_body : tstmt list;
}

type tglobal = {
  tg_name : string;
  tg_ty : ity;
  tg_count : int;       (* 1 for scalars *)
  tg_scalar : bool;
  tg_volatile : bool;
  tg_init : int64 array;
}

type tprogram = { tfuncs : tfunc list; tglobals : tglobal list }
