(* Hand-written lexer for MiniC. *)

type token =
  | INT of int64
  | IDENT of string
  | STRING of string
  | KW of string          (* type names, control keywords, volatile, void *)
  | PUNCT of string       (* operators and delimiters *)
  | EOF

type lexed = { tok : token; line : int }

exception Error of string * int

let keywords =
  [ "u8"; "u16"; "u32"; "u64"; "i8"; "i16"; "i32"; "i64"; "void"; "volatile";
    "if"; "else"; "while"; "do"; "for"; "return"; "break"; "continue" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let emit t = toks := { tok = t; line = !line } :: !toks in
  let escape c =
    match c with
    | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | '0' -> '\000'
    | '\\' -> '\\' | '\'' -> '\'' | '"' -> '"'
    | c -> raise (Error (Printf.sprintf "bad escape \\%c" c, !line))
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin incr line; incr pos end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do incr pos done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while not !closed do
        if !pos >= n then raise (Error ("unterminated comment", !line));
        if src.[!pos] = '\n' then incr line;
        if src.[!pos] = '*' && peek 1 = Some '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do incr pos done;
      let s = String.sub src start (!pos - start) in
      emit (if List.mem s keywords then KW s else IDENT s)
    end
    else if is_digit c then begin
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        pos := !pos + 2;
        let start = !pos in
        while !pos < n && is_hex src.[!pos] do incr pos done;
        if !pos = start then raise (Error ("bad hex literal", !line));
        let s = String.sub src start (!pos - start) in
        (* adversarial input: a literal too wide for int64 must be a
           structured error, not an uncaught Failure *)
        (match Int64.of_string_opt ("0x" ^ s) with
        | Some v -> emit (INT v)
        | None -> raise (Error ("integer literal out of range", !line)))
      end
      else begin
        let start = !pos in
        while !pos < n && is_digit src.[!pos] do incr pos done;
        match Int64.of_string_opt (String.sub src start (!pos - start)) with
        | Some v -> emit (INT v)
        | None -> raise (Error ("integer literal out of range", !line))
      end;
      (* C-style suffixes are accepted and ignored: sizing comes from the
         declared types. *)
      while !pos < n && (let c = src.[!pos] in c = 'u' || c = 'U' || c = 'l' || c = 'L') do
        incr pos
      done
    end
    else if c = '\'' then begin
      incr pos;
      if !pos >= n then raise (Error ("unterminated char", !line));
      let v =
        if src.[!pos] = '\\' then begin
          incr pos;
          if !pos >= n then raise (Error ("unterminated char", !line));
          let e = escape src.[!pos] in
          incr pos;
          e
        end
        else begin
          let ch = src.[!pos] in
          incr pos;
          ch
        end
      in
      if !pos >= n || src.[!pos] <> '\'' then
        raise (Error ("unterminated char", !line));
      incr pos;
      emit (INT (Int64.of_int (Char.code v)))
    end
    else if c = '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !pos >= n then raise (Error ("unterminated string", !line));
        if src.[!pos] = '"' then begin closed := true; incr pos end
        else if src.[!pos] = '\\' then begin
          incr pos;
          if !pos >= n then raise (Error ("unterminated string", !line));
          Buffer.add_char buf (escape src.[!pos]);
          incr pos
        end
        else begin
          Buffer.add_char buf src.[!pos];
          incr pos
        end
      done;
      emit (STRING (Buffer.contents buf))
    end
    else begin
      (* Longest-match punctuation. *)
      let try3 =
        if !pos + 2 < n then Some (String.sub src !pos 3) else None
      in
      let try2 =
        if !pos + 1 < n then Some (String.sub src !pos 2) else None
      in
      let three = [ "<<="; ">>=" ] in
      let two =
        [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
          "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^=" ]
      in
      match try3 with
      | Some s when List.mem s three ->
          emit (PUNCT s);
          pos := !pos + 3
      | _ -> (
          match try2 with
          | Some s when List.mem s two ->
              emit (PUNCT s);
              pos := !pos + 2
          | _ ->
              let one = "+-*/%&|^~!<>=(){}[];,?:" in
              if String.contains one c then begin
                emit (PUNCT (String.make 1 c));
                incr pos
              end
              else raise (Error (Printf.sprintf "unexpected character %c" c, !line)))
    end
  done;
  emit EOF;
  List.rev !toks
