open Bs_ir

(* Recursive-descent parser for MiniC, following C operator precedence. *)

exception Error of string * int

type state = {
  mutable toks : Lexer.lexed list;
  (* combined expression/statement nesting depth: adversarial inputs like
     100k open parens or braces must produce a structured [Error], not
     blow the host stack (the typechecker and lowering recurse over the
     same tree, so the limit protects them too) *)
  mutable depth : int;
}

let max_depth = 400

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> { Lexer.tok = Lexer.EOF; line = 0 }

let line st = (peek st).Lexer.line

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let fail st msg = raise (Error (msg, line st))

(* [nested st f] runs one recursion step of the descent under the depth
   limit.  [Error] aborts the whole parse, so the counter need not be
   restored on the failure path. *)
let nested st f =
  st.depth <- st.depth + 1;
  if st.depth > max_depth then
    fail st (Printf.sprintf "nesting too deep (limit %d)" max_depth);
  let r = f () in
  st.depth <- st.depth - 1;
  r

let expect_punct st p =
  match (peek st).Lexer.tok with
  | Lexer.PUNCT q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" p)

let accept_punct st p =
  match (peek st).Lexer.tok with
  | Lexer.PUNCT q when q = p ->
      advance st;
      true
  | _ -> false

let accept_kw st k =
  match (peek st).Lexer.tok with
  | Lexer.KW q when q = k ->
      advance st;
      true
  | _ -> false

let expect_ident st =
  match (peek st).Lexer.tok with
  | Lexer.IDENT s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let ity_of_kw = function
  | "u8" -> Some Ast.u8 | "u16" -> Some Ast.u16
  | "u32" -> Some Ast.u32 | "u64" -> Some Ast.u64
  | "i8" -> Some Ast.i8 | "i16" -> Some Ast.i16
  | "i32" -> Some Ast.i32 | "i64" -> Some Ast.i64
  | _ -> None

let peek_type st =
  match (peek st).Lexer.tok with
  | Lexer.KW k -> ity_of_kw k
  | _ -> None

let parse_type st =
  match peek_type st with
  | Some t ->
      advance st;
      t
  | None -> fail st "expected type"

(* --- expressions ------------------------------------------------------ *)

let mk st e = { Ast.e; eline = line st }

let rec parse_expr st = nested st (fun () -> parse_ternary st)

and parse_ternary st =
  let c = parse_logor st in
  if accept_punct st "?" then begin
    let a = parse_expr st in
    expect_punct st ":";
    let b = parse_ternary st in
    mk st (Ast.Cond (c, a, b))
  end
  else c

and parse_binlevel st ops next =
  let rec loop lhs =
    match (peek st).Lexer.tok with
    | Lexer.PUNCT p when List.mem_assoc p ops ->
        advance st;
        let rhs = next st in
        loop (mk st (Ast.Bin (List.assoc p ops, lhs, rhs)))
    | _ -> lhs
  in
  loop (next st)

and parse_logor st = parse_binlevel st [ ("||", Ast.BLogOr) ] parse_logand
and parse_logand st = parse_binlevel st [ ("&&", Ast.BLogAnd) ] parse_bitor
and parse_bitor st = parse_binlevel st [ ("|", Ast.BOr) ] parse_bitxor
and parse_bitxor st = parse_binlevel st [ ("^", Ast.BXor) ] parse_bitand
and parse_bitand st = parse_binlevel st [ ("&", Ast.BAnd) ] parse_equality

and parse_equality st =
  parse_binlevel st [ ("==", Ast.BEq); ("!=", Ast.BNe) ] parse_relational

and parse_relational st =
  parse_binlevel st
    [ ("<", Ast.BLt); ("<=", Ast.BLe); (">", Ast.BGt); (">=", Ast.BGe) ]
    parse_shift

and parse_shift st =
  parse_binlevel st [ ("<<", Ast.BShl); (">>", Ast.BShr) ] parse_additive

and parse_additive st =
  parse_binlevel st [ ("+", Ast.BAdd); ("-", Ast.BSub) ] parse_multiplicative

and parse_multiplicative st =
  parse_binlevel st
    [ ("*", Ast.BMul); ("/", Ast.BDiv); ("%", Ast.BMod) ]
    parse_unary

and parse_unary st = nested st (fun () -> parse_unary_inner st)

and parse_unary_inner st =
  match (peek st).Lexer.tok with
  | Lexer.PUNCT "-" ->
      advance st;
      mk st (Ast.Un (Ast.UNeg, parse_unary st))
  | Lexer.PUNCT "~" ->
      advance st;
      mk st (Ast.Un (Ast.UNot, parse_unary st))
  | Lexer.PUNCT "!" ->
      advance st;
      mk st (Ast.Un (Ast.ULogNot, parse_unary st))
  | Lexer.PUNCT "(" -> (
      (* Either a cast or a parenthesised expression. *)
      match st.toks with
      | _ :: { Lexer.tok = Lexer.KW k; _ } :: { Lexer.tok = Lexer.PUNCT ")"; _ } :: _
        when ity_of_kw k <> None ->
          advance st;
          let t = parse_type st in
          expect_punct st ")";
          mk st (Ast.CastE (t, parse_unary st))
      | _ ->
          advance st;
          let e = parse_expr st in
          expect_punct st ")";
          e)
  | _ -> parse_postfix st

and parse_postfix st =
  match (peek st).Lexer.tok with
  | Lexer.INT v ->
      advance st;
      mk st (Ast.Int v)
  | Lexer.IDENT name -> (
      advance st;
      match (peek st).Lexer.tok with
      | Lexer.PUNCT "(" ->
          advance st;
          let args = ref [] in
          if not (accept_punct st ")") then begin
            args := [ parse_expr st ];
            while accept_punct st "," do
              args := parse_expr st :: !args
            done;
            expect_punct st ")"
          end;
          mk st (Ast.CallE (name, List.rev !args))
      | Lexer.PUNCT "[" ->
          advance st;
          let idx = parse_expr st in
          expect_punct st "]";
          mk st (Ast.Index (name, idx))
      | _ -> mk st (Ast.Ident name))
  | _ -> fail st "expected expression"

(* --- statements ------------------------------------------------------- *)

let op_assign_table =
  [ ("+=", Ast.BAdd); ("-=", Ast.BSub); ("*=", Ast.BMul); ("/=", Ast.BDiv);
    ("%=", Ast.BMod); ("&=", Ast.BAnd); ("|=", Ast.BOr); ("^=", Ast.BXor);
    ("<<=", Ast.BShl); (">>=", Ast.BShr) ]


let rec parse_stmt st : Ast.stmt = nested st (fun () -> parse_stmt_inner st)

and parse_stmt_inner st : Ast.stmt =
  let l = line st in
  match (peek st).Lexer.tok with
  | Lexer.PUNCT "{" ->
      advance st;
      let body = parse_stmts_until st "}" in
      { Ast.s = Ast.Block body; sline = l }
  | Lexer.KW "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let thn = parse_branch st in
      let els = if accept_kw st "else" then parse_branch st else [] in
      { Ast.s = Ast.If (c, thn, els); sline = l }
  | Lexer.KW "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let body = parse_branch st in
      { Ast.s = Ast.While (c, body); sline = l }
  | Lexer.KW "do" ->
      advance st;
      let body = parse_branch st in
      if not (accept_kw st "while") then fail st "expected 'while'";
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      { Ast.s = Ast.DoWhile (body, c); sline = l }
  | Lexer.KW "for" ->
      advance st;
      expect_punct st "(";
      let init =
        if accept_punct st ";" then None
        else begin
          let s = parse_simple_stmt st in
          expect_punct st ";";
          Some s
        end
      in
      let cond = if accept_punct st ";" then None
        else begin
          let e = parse_expr st in
          expect_punct st ";";
          Some e
        end
      in
      let step =
        match (peek st).Lexer.tok with
        | Lexer.PUNCT ")" -> None
        | _ -> Some (parse_simple_stmt st)
      in
      expect_punct st ")";
      let body = parse_branch st in
      { Ast.s = Ast.For (init, cond, step, body); sline = l }
  | Lexer.KW "return" ->
      advance st;
      let v = if accept_punct st ";" then None
        else begin
          let e = parse_expr st in
          expect_punct st ";";
          Some e
        end
      in
      { Ast.s = Ast.Return v; sline = l }
  | Lexer.KW "break" ->
      advance st;
      expect_punct st ";";
      { Ast.s = Ast.Break; sline = l }
  | Lexer.KW "continue" ->
      advance st;
      expect_punct st ";";
      { Ast.s = Ast.Continue; sline = l }
  | _ ->
      let s = parse_simple_stmt st in
      expect_punct st ";";
      s

(* A branch body: a braced block or a single statement. *)
and parse_branch st =
  if accept_punct st "{" then parse_stmts_until st "}" else [ parse_stmt st ]

and parse_stmts_until st closer =
  let acc = ref [] in
  while not (accept_punct st closer) do
    if (peek st).Lexer.tok = Lexer.EOF then fail st "unexpected end of file";
    acc := parse_stmt st :: !acc
  done;
  List.rev !acc

(* Declarations, assignments and expression statements (no trailing ';'). *)
and parse_simple_stmt st : Ast.stmt =
  let l = line st in
  match peek_type st with
  | Some t -> (
      advance st;
      let name = expect_ident st in
      if accept_punct st "[" then begin
        let count =
          match (peek st).Lexer.tok with
          | Lexer.INT v ->
              advance st;
              Int64.to_int v
          | _ -> fail st "expected array size"
        in
        expect_punct st "]";
        { Ast.s = Ast.DeclArr (t, name, count); sline = l }
      end
      else
        let init = if accept_punct st "=" then Some (parse_expr st) else None in
        { Ast.s = Ast.Decl (t, name, init); sline = l })
  | None -> (
      (* assignment / op-assignment / expression *)
      let e = parse_expr st in
      let as_lvalue () =
        match e.Ast.e with
        | Ast.Ident n -> Ast.Lid n
        | Ast.Index (n, i) -> Ast.Lindex (n, i)
        | _ -> fail st "invalid assignment target"
      in
      match (peek st).Lexer.tok with
      | Lexer.PUNCT "=" ->
          advance st;
          let rhs = parse_expr st in
          { Ast.s = Ast.Assign (as_lvalue (), rhs); sline = l }
      | Lexer.PUNCT p when List.mem_assoc p op_assign_table ->
          advance st;
          let rhs = parse_expr st in
          { Ast.s = Ast.OpAssign (List.assoc p op_assign_table, as_lvalue (), rhs);
            sline = l }
      | _ -> { Ast.s = Ast.ExprStmt e; sline = l })

(* --- top level -------------------------------------------------------- *)

let parse_param st =
  let t = parse_type st in
  let name = expect_ident st in
  if accept_punct st "[" then begin
    expect_punct st "]";
    Ast.Parray (t, name)
  end
  else Ast.Pscalar (t, name)

let parse_global_init st (t : Ast.ity) =
  if accept_punct st "=" then begin
    match (peek st).Lexer.tok with
    | Lexer.STRING s ->
        advance st;
        Ast.Gstring s
    | Lexer.PUNCT "{" ->
        advance st;
        let items = ref [] in
        if not (accept_punct st "}") then begin
          let item () =
            let neg = accept_punct st "-" in
            match (peek st).Lexer.tok with
            | Lexer.INT v ->
                advance st;
                let v = if neg then Int64.neg v else v in
                items := Width.trunc t.Ast.w v :: !items
            | _ -> fail st "expected integer in initializer"
          in
          item ();
          while accept_punct st "," do
            item ()
          done;
          expect_punct st "}"
        end;
        Ast.Glist (List.rev !items)
    | _ ->
        let neg = accept_punct st "-" in
        (match (peek st).Lexer.tok with
        | Lexer.INT v ->
            advance st;
            let v = if neg then Int64.neg v else v in
            Ast.Gscalar (Width.trunc t.Ast.w v)
        | _ -> fail st "expected initializer")
  end
  else Ast.Gnone

let parse_top st : Ast.top =
  let volatile = accept_kw st "volatile" in
  let rty =
    if accept_kw st "void" then None
    else Some (parse_type st)
  in
  let name = expect_ident st in
  if accept_punct st "(" then begin
    if volatile then fail st "'volatile' is only valid on globals";
    let params = ref [] in
    if not (accept_punct st ")") then begin
      params := [ parse_param st ];
      while accept_punct st "," do
        params := parse_param st :: !params
      done;
      expect_punct st ")"
    end;
    expect_punct st "{";
    let body = parse_stmts_until st "}" in
    Ast.Fdecl { rty; fnname = name; fparams = List.rev !params; body }
  end
  else begin
    let t =
      match rty with
      | Some t -> t
      | None -> fail st "global cannot have type void"
    in
    let count =
      if accept_punct st "[" then begin
        match (peek st).Lexer.tok with
        | Lexer.INT v ->
            advance st;
            expect_punct st "]";
            Int64.to_int v
        | Lexer.PUNCT "]" ->
            (* size inferred from the initializer *)
            advance st;
            -1
        | _ -> fail st "expected array size"
      end
      else 0 (* scalar *)
    in
    let init = parse_global_init st t in
    expect_punct st ";";
    let count =
      if count >= 0 then count
      else
        match init with
        | Ast.Gstring s -> String.length s + 1
        | Ast.Glist l -> List.length l
        | _ -> fail st "cannot infer array size"
    in
    Ast.Gdecl { gty = t; gname = name; count; init; volatile }
  end

(** [parse src] lexes and parses a MiniC compilation unit.
    @raise Error or {!Lexer.Error} on malformed input. *)
let parse src : Ast.program =
  let st = { toks = Lexer.tokenize src; depth = 0 } in
  let tops = ref [] in
  while (peek st).Lexer.tok <> Lexer.EOF do
    tops := parse_top st :: !tops
  done;
  List.rev !tops
