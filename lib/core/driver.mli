(** The BITSPEC compilation driver (the paper's Figure 4 pipeline).

    [compile] takes MiniC source through the front-end, the expander
    (§3.2.1), CFG preparation (§3.2.3 pass ①), profile-guided squeezing
    (passes ②③), the BITSPEC-specific optimisations, and the back-end to a
    linked binary image; [run_machine] executes that image on the
    cycle-level machine model.

    Failure policy: in {!Strict} mode (the default) the first pass failure
    propagates as an exception.  In {!Degrade} mode pass failures are
    isolated per function — a function the squeezer, verifier, or register
    allocator cannot handle falls back to its baseline (non-speculative)
    compilation, a structured {!Bs_support.Diag.t} is recorded, and the
    rest of the module still ships as BITSPEC. *)

(** Target architectures: the paper's BASELINE processor, the processor
    with the BITSPEC ISA/microarchitecture extensions, and the
    compact-ISA comparison point of RQ9. *)
type arch = Baseline | Bitspec_arch | Thumb

(** Failure policy: fail-fast, or per-function graceful degradation. *)
type mode = Strict | Degrade

type config = {
  arch : arch;
  heuristic : Bs_interp.Profile.heuristic;  (** T = MAX / AVG / MIN (§3.2.2) *)
  expander : Expander.config;               (** inlining/unrolling budgets *)
  speculate : bool;  (** [false] = RQ2's no-speculation variant *)
  compare_elim : bool;   (** §3.2.4 *)
  bitmask_elide : bool;  (** RQ3's second ablation *)
  orig_first : bool;
      (** RQ5: invert the allocator's handler branch weights so CFG_orig
          gets first pick of registers *)
}

val bitspec_config : config
(** The paper's default BITSPEC build: T = MAX, expander on, both
    optimisations enabled. *)

val baseline_config : config
(** The BASELINE build: conventional ISA, no speculation. *)

val thumb_config : config
(** RQ9's compact-ISA build: 8 registers, 2-address operations. *)

val config_tag : config -> string
(** An injective rendering of every code-affecting field — the
    configuration half of a {!Compile_cache} key (and the bench
    harness's cell keys). *)

val expander_tag : config -> string
(** The expander-only slice of {!config_tag}.  Configurations with
    equal expander tags shape identical pre-squeeze modules from the
    same source, so their training runs observe identical profiles —
    the configuration half of a [profile_key] (see {!compile}). *)

(** Compiler-level fault injection: force one pass to fail on one
    function, exercising the degradation machinery end to end.
    [Fault_squeeze] and [Fault_regalloc] raise inside the pass (degrade
    mode recovers them); [Fault_miscompile] silently flips one operation
    of the function {e after} all passes and verification, planting a
    genuine miscompile that only differential testing can observe — the
    fuzz subsystem's self-test. *)
type injected_pass = Fault_squeeze | Fault_regalloc | Fault_miscompile

type pass_fault = { fault_pass : injected_pass; fault_func : string }

exception Injected_fault of string

type compiled = {
  ir : Bs_ir.Ir.modul;                      (** the final (squeezed) SIR *)
  program : Bs_backend.Asm.program;         (** linked binary image *)
  config : config;
  profile : Bs_interp.Profile.t option;     (** the training profile used *)
  squeeze_stats : Squeezer.stats option;
  diagnostics : Bs_support.Diag.t list;
      (** degradations and skipped passes, in pipeline order; empty in a
          clean strict build *)
  remarks : Bs_obs.Remark.t list;
      (** optimisation remarks from the squeezer, compare elimination
          and bitmask elision, in canonical ({!Bs_obs.Remark.compare})
          order — identical at any job count *)
}

val profile_module :
  Bs_ir.Ir.modul ->
  ?setup:(Bs_ir.Ir.modul -> Bs_interp.Memimage.t -> unit) ->
  ?interp_engine:Bs_interp.Interp.engine ->
  train:(string * int64 list) list ->
  unit ->
  Bs_interp.Profile.t
(** [profile_module m ~train ()] interprets [m] on each [(entry, args)]
    training run, recording per-variable bitwidth statistics (§3.2.2).
    [setup] initialises workload input data in each run's memory image;
    [interp_engine] (default [Compiled]) picks the interpreter engine —
    the recorded profile is engine-invariant. *)

val lower_to_machine :
  ?orig_first:bool -> Bs_ir.Ir.modul -> arch:arch -> Bs_backend.Asm.program
(** Back-end only: instruction selection, register allocation, layout and
    linking of an already-prepared module. *)

val compile :
  ?mode:mode ->
  ?pass_fault:pass_fault ->
  ?interp_engine:Bs_interp.Interp.engine ->
  ?profile_key:string ->
  config:config ->
  source:string ->
  ?setup:(Bs_ir.Ir.modul -> Bs_interp.Memimage.t -> unit) ->
  train:(string * int64 list) list ->
  unit ->
  compiled
(** Full pipeline from MiniC source.  [train] and [setup] drive the
    profiler; they are ignored by non-speculative configurations.
    [mode] selects the failure policy (default {!Strict}); front-end
    errors ([Lexer.Error], [Parser.Error], [Typecheck.Error],
    [Lower.Error]) always raise — there is no module to degrade yet.
    [pass_fault] injects a compiler fault for testing; [interp_engine]
    picks the profiling interpreter's engine (the compiled artifact is
    engine-invariant).

    [profile_key] opts the training run into a process-wide memo:
    profiling is heuristic-independent, so configurations that share a
    pre-squeeze form (a MAX/AVG/MIN sweep) reuse one run.  The caller
    must content-address everything the profile depends on — source,
    {!expander_tag}, training entries/args, the profile input's
    identity — and the resulting {!Profile.t} is shared, read-only.
    Ignored in degrade mode or under [pass_fault], where the
    pre-squeeze module is no longer the pure function the key names. *)

val try_compile :
  ?pass_fault:pass_fault ->
  ?interp_engine:Bs_interp.Interp.engine ->
  config:config ->
  source:string ->
  ?setup:(Bs_ir.Ir.modul -> Bs_interp.Memimage.t -> unit) ->
  train:(string * int64 list) list ->
  unit ->
  (compiled, Bs_support.Diag.t list) result
(** Total degrade-mode compilation: never raises.  [Error] carries at
    least one diagnostic (front-end failures included). *)

val run_machine :
  ?setup:(Bs_interp.Memimage.t -> unit) ->
  ?fuel:int ->
  ?fault:Bs_sim.Machine.fault ->
  ?power:Bs_sim.Machine.power ->
  ?engine:Bs_sim.Machine.engine ->
  compiled ->
  entry:string ->
  args:int64 list ->
  Bs_sim.Machine.result
(** Simulate the compiled binary on a fresh memory image.  [setup] fills
    workload inputs; [fuel] bounds dynamic instructions; [fault] injects a
    single bit flip mid-run; [power] runs under injected power failures
    with checkpoint/restore; [engine] picks the dispatch engine (default
    [Jit]; results are identical across engines). *)

val run_reference :
  ?setup:(Bs_interp.Memimage.t -> unit) ->
  ?interp_engine:Bs_interp.Interp.engine ->
  compiled ->
  entry:string ->
  args:int64 list ->
  Bs_interp.Interp.result
(** Execute the compiled module's IR on the reference interpreter (the
    differential-testing oracle).  [interp_engine] (default [Compiled])
    picks the interpreter engine; results are engine-invariant. *)
