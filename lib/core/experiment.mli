(** The experiment harness: compile a workload under a configuration,
    simulate it on its test input, and collect every metric the paper's
    figures report.  Relative numbers are always against the BASELINE
    build of the same workload, as in §4. *)

type metrics = {
  checksum : int64;          (** the workload's result (correctness oracle) *)
  instrs : int;              (** dynamic instructions *)
  cycles : int;
  misspecs : int;            (** Table 2 *)
  energy : Bs_energy.Energy.breakdown;  (** Figure 9 components *)
  total_energy : float;      (** Figure 8 *)
  epi : float;               (** energy per instruction *)
  spill_loads : int;         (** Figure 10 *)
  spill_stores : int;
  copies : int;
  reg_accesses_32 : int;     (** Figure 11 *)
  reg_accesses_8 : int;
  icache_accesses : int;
  dcache_accesses : int;
}

val metrics_of_run : Bs_sim.Machine.result -> metrics
(** Collect metrics from one simulation. *)

val compile_workload :
  ?origin:Compile_cache.origin ref ->
  ?profile_input:Bs_workloads.Workload.input ->
  ?profile_tag:string ->
  ?interp_engine:Bs_interp.Interp.engine ->
  Driver.config ->
  Bs_workloads.Workload.t ->
  Driver.compiled
(** Compile a workload, profiling on its train input (or [profile_input] —
    RQ6 passes the alternate input here).  Compiles are served from
    {!Compile_cache}: the default train input is cached under the label
    ["train"]; a custom [profile_input] is cached only when the caller
    names it with [profile_tag] (an anonymous input closure has no
    content address).  [origin] reports where this call's compile was
    served from (the compile service's per-response [cached] flag).
    [interp_engine] picks the profiling interpreter's engine; it is NOT
    part of the cache key because the compiled artifact is
    engine-invariant.  Callers measuring compile time itself should call
    {!Driver.compile} directly. *)

val run_compiled :
  Driver.compiled ->
  Bs_workloads.Workload.t ->
  input:Bs_workloads.Workload.input ->
  metrics
(** Simulate an already-compiled workload on an arbitrary input. *)

val misspec_sites :
  Driver.compiled ->
  Bs_sim.Machine.result ->
  ((string * string * int) * int) list
(** Fold the run's per-pc misspeculation counts into per-source-site
    rows (((function, variable, line), count)) through the program's
    srcmap, most-frequent first.  Counts sum to the run's
    [ctr.misspecs]. *)

val pp_misspec_sites :
  Format.formatter -> ((string * string * int) * int) list -> unit
(** Print a [misspec_sites] histogram with its total. *)

val run_test :
  Driver.config ->
  Bs_workloads.Workload.t ->
  Driver.compiled * Bs_sim.Machine.result
(** Compile (via the compile cache) and simulate the workload's test
    input, with the raw result memoized per (config, source) — callers
    that need the execution itself (misspec attribution) and callers
    that need metrics share one simulation.  Treat the result as
    read-only. *)

val run :
  ?profile_input:Bs_workloads.Workload.input ->
  ?profile_tag:string ->
  Driver.config ->
  Bs_workloads.Workload.t ->
  metrics
(** One-call experiment: compile under the configuration (cached, see
    {!compile_workload}), measure on the workload's test input.  Plain
    calls (no [profile_input]/[profile_tag]) route through {!run_test}
    and share its memoized simulation. *)

val reference_checksum :
  ?interp_engine:Bs_interp.Interp.engine -> Bs_workloads.Workload.t -> int64
(** The reference interpreter's checksum on the test input; every
    simulated build must reproduce it.  Computed once per process per
    (workload, engine).  [interp_engine] defaults to [Compiled]; the
    fault and intermittent-power campaigns pass [Tree] so the oracle for
    injected-fault runs stays on the engine with no compilation layer of
    its own. *)

val rel : float -> float -> float
(** [rel v base] = v / base (1 when base is 0). *)
