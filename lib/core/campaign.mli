(** Fault-injection campaigns over built-in workloads.

    A campaign compiles the workload, establishes the fault-free machine
    run and the reference interpreter's checksum (the differential
    oracle), then replays the test input N times, each with one seeded
    single-bit flip, and tabulates {!Bs_sim.Faultinject}'s
    masked / detected / trapped / sdc / hung classification.  Fixed seed
    ⇒ identical trials, bit for bit: the whole fault list is drawn from
    the seed before any trial runs, so a parallel campaign ([jobs] > 1)
    is byte-identical to a sequential one. *)

type t = {
  workload : string;
  arch : Driver.arch;
  seed : int64;
  golden_instrs : int;     (** fault-free dynamic instruction count *)
  golden_misspecs : int;   (** fault-free misspeculation count *)
  expected : int64;        (** the reference interpreter's checksum *)
  trials : Bs_sim.Faultinject.trial list;
}

val run :
  ?config:Driver.config ->
  ?jobs:int ->
  trials:int ->
  seed:int64 ->
  Bs_workloads.Workload.t ->
  t
(** Run an N-trial campaign (default config: the BITSPEC build).
    [jobs] (default 1) fans the trials out over a domain pool; the
    result does not depend on it. *)

val report : ?max_examples:int -> t -> string
(** Human-readable classification table, plus the faults the
    misspeculation hardware caught. *)

val arch_name : Driver.arch -> string

val sharded : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** The campaign fan-out engine: map pre-drawn (randomness-free) work
    over the pool in fixed-size shards.  Results are in input order and
    byte-identical at any [jobs]. *)

(** {1 Intermittent-power campaigns} *)

(** Per-trial classification of a run under injected power failures.
    Restores roll architectural state back exactly, so [P_sdc] (finished,
    wrong checksum) indicates a checkpoint/restore bug — the campaign
    doubles as the rollback machinery's own test. *)
type power_verdict =
  | P_completed           (** finished correctly, no outage struck *)
  | P_restored of int     (** finished correctly through [n] restores *)
  | P_sdc of int64        (** finished with a wrong checksum *)
  | P_trapped of Bs_support.Outcome.trap
  | P_hung                (** exceeded the re-execution fuel budget *)
  | P_livelock            (** the retry limit gave up (Outcome.Livelock) *)

type power_trial = {
  pt_seed : int64;             (** this trial's power-trace seed *)
  pt_verdict : power_verdict;
  pt_restores : int;
  pt_checkpoints : int;
  pt_ckpt_bytes : int;
  pt_reexec : int;             (** re-executed (wasted) instructions *)
  pt_instrs : int;
  pt_run_energy : float;       (** the execution breakdown's total *)
  pt_ckpt_energy : float;      (** checkpoint writes + restore cost *)
  pt_reexec_energy : float;    (** re-executed share of the run energy *)
}

type power_campaign = {
  p_workload : string;
  p_dist : Bs_sim.Powertrace.dist;
  p_policy : Bs_sim.Checkpoint.policy;
  p_retries : int;
  p_seed : int64;
  p_golden_instrs : int;
  p_golden_energy : float;
  p_expected : int64;
  p_trials : power_trial list;
}

val power_bucket : power_verdict -> string
(** The shared triage key ({!Bs_support.Bucket} namespace): "completed",
    "restored", "reexec-livelock", "hang", "sdc", "trapped:<name>". *)

val run_power :
  ?config:Driver.config ->
  ?jobs:int ->
  ?policy:Bs_sim.Checkpoint.policy ->
  ?retries:int ->
  dist:Bs_sim.Powertrace.dist ->
  trials:int ->
  seed:int64 ->
  Bs_workloads.Workload.t ->
  power_campaign
(** Run [trials] intermittent-power executions, each under a fresh
    seeded {!Bs_sim.Powertrace} (per-trial seeds drawn up front from
    [seed]).  Defaults: checkpoint every 500 instructions, 8 retries.
    Byte-identical at any [jobs]. *)

val power_report : power_campaign -> string
(** The harvest report: bucket tally plus restore/checkpoint means and
    the checkpoint / re-execution energy overheads. *)

(** {1 Predicted-vs-measured bit-level validation} *)

type bit_row = {
  v_bit : int;
  v_trials : int;
  v_masked : int;     (** measured masked count at this bit *)
  v_caught : int;     (** measured detected count *)
  v_corrupt : int;    (** measured sdc + trapped + hung *)
}

type validation = {
  v_workload : string;
  v_seed : int64;
  v_pred : Bs_analysis.Vulnerability.t;
  v_rows : bit_row array;  (** 32 rows, one per register bit *)
  v_agreement : float;     (** trial-weighted dominant-class agreement, % *)
}

val measured_class :
  Bs_sim.Faultinject.verdict -> Bs_analysis.Vulnerability.clazz
(** Fold a measured injection verdict onto the analysis's three-class
    lattice: Detected ⇒ caught; Sdc, Trapped and Hung ⇒ corrupt. *)

val validate :
  ?config:Driver.config ->
  ?jobs:int ->
  trials:int ->
  seed:int64 ->
  Bs_workloads.Workload.t ->
  validation
(** Cross-validate {!Bs_analysis.Vulnerability} against a measured
    register-flip campaign: every trial flips one register bit, sampling
    that bit position's measured class distribution. *)

val validation_report : validation -> string
(** Per-bit predicted-vs-measured table plus the agreement summary. *)
