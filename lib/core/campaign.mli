(** Fault-injection campaigns over built-in workloads.

    A campaign compiles the workload, establishes the fault-free machine
    run and the reference interpreter's checksum (the differential
    oracle), then replays the test input N times, each with one seeded
    single-bit flip, and tabulates {!Bs_sim.Faultinject}'s
    masked / detected / trapped / sdc / hung classification.  Fixed seed
    ⇒ identical trials, bit for bit: the whole fault list is drawn from
    the seed before any trial runs, so a parallel campaign ([jobs] > 1)
    is byte-identical to a sequential one. *)

type t = {
  workload : string;
  arch : Driver.arch;
  seed : int64;
  golden_instrs : int;     (** fault-free dynamic instruction count *)
  golden_misspecs : int;   (** fault-free misspeculation count *)
  expected : int64;        (** the reference interpreter's checksum *)
  trials : Bs_sim.Faultinject.trial list;
}

val run :
  ?config:Driver.config ->
  ?jobs:int ->
  trials:int ->
  seed:int64 ->
  Bs_workloads.Workload.t ->
  t
(** Run an N-trial campaign (default config: the BITSPEC build).
    [jobs] (default 1) fans the trials out over a domain pool; the
    result does not depend on it. *)

val report : ?max_examples:int -> t -> string
(** Human-readable classification table, plus the faults the
    misspeculation hardware caught. *)

val arch_name : Driver.arch -> string
