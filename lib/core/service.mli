(** The compile service's wire protocol: request/response types and
    their newline-delimited JSON codec.

    One JSON object per line in each direction.  Requests carry a
    client-chosen [id]; responses echo it, and a connection may carry
    responses out of submission order (clients that pipeline must
    demultiplex by id).

    The protocol is deliberately workload-addressed: a request names a
    built-in workload and a configuration, and the server compiles and
    simulates it — the shape every campaign client (autotuning sweeps,
    fuzz fleets, drift studies) consumes.  Chaos knobs ([chaos] field)
    let tests and the load generator inject worker crashes and hangs
    mid-request to exercise the supervision tree. *)

(** Injected worker misbehaviour, for fault campaigns against the
    server itself. *)
type chaos =
  | Crash_before of int
      (** raise (transiently) while the attempt number is below [n] —
          [Crash_before 2] fails attempt 1 and succeeds on attempt 2 *)
  | Hang_ms of int
      (** sleep this long mid-attempt {e without} polling the deadline
          token, simulating a wedged worker the watchdog must answer
          for *)

type bench_req = {
  b_workload : string;             (** a {!Bs_workloads.Registry} name *)
  b_arch : Driver.arch;
  b_heuristic : Bs_interp.Profile.heuristic;
  b_no_expander : bool;
}

type op =
  | Ping
  | Stats
  | Health  (** liveness/degradation probe; answered without queueing *)
  | Shutdown  (** graceful: drain the queue, then exit *)
  | Bench of bench_req

type request = {
  rq_id : int;
  rq_op : op;
  rq_deadline_ms : int option;  (** overrides the server default *)
  rq_fuel : int option;         (** overrides the server default *)
  rq_chaos : chaos option;
}

type metrics_summary = {
  m_checksum : int64;
  m_instrs : int;
  m_cycles : int;
  m_misspecs : int;
  m_energy : float;
  m_epi : float;
}

type server_stats = {
  st_served : int;      (** bench requests answered (any status) *)
  st_ok : int;
  st_errors : int;
  st_timeouts : int;
  st_shed : int;
  st_retries : int;     (** re-executions beyond first attempts *)
  st_replaced : int;    (** workers retired by the watchdog *)
  st_depth : int;       (** current queue depth *)
  st_mem_hits : int;    (** in-memory compile-cache hits *)
  st_mem_misses : int;
  st_disk_hits : int;   (** persistent-layer hits (0 without a cache dir) *)
  st_disk_misses : int;
  st_entries : int;     (** committed entries on disk *)
  st_quarantined : int; (** files in quarantine/ on disk *)
  st_uptime_ms : float;
  st_metrics : Bs_support.Jsonx.t;
      (** full metrics-registry snapshot ({!Bs_obs.Metrics.snapshot_json}
          shape: counters/gauges/volatile/histograms); [Null] when the
          peer predates the field *)
}

type health_report = {
  hr_ok : bool;  (** no degradation reasons *)
  hr_reasons : string list;
      (** machine-matchable degradation causes, e.g. ["draining"],
          ["shed-rate"], ["wedged-workers"], ["quarantine"] *)
}

type status =
  | Done of metrics_summary           (** a bench request succeeded *)
  | Pong
  | Stats_reply of server_stats
  | Health_reply of health_report
  | Bye                               (** shutdown acknowledged *)
  | Failed of Bs_support.Diag.t list  (** structured, machine-matchable *)
  | Overloaded of int
      (** shed at admission: queue depth was at the high-water mark
          (the payload); retry later with backoff *)
  | Timed_out                         (** deadline passed before completion *)

type response = {
  rs_id : int;
  rs_status : status;
  rs_attempts : int;  (** executions performed for this request (≥ 1) *)
  rs_cached : bool;   (** compile served from a cache layer (memory/disk) *)
  rs_ms : float;      (** server-side latency, admission to response *)
}

(** Stable diagnostic codes for service-level failures. *)

val diag_bad_request : string -> Bs_support.Diag.t       (* BS-SRV-01 *)
val diag_unknown_workload : string -> Bs_support.Diag.t  (* BS-SRV-02 *)
val diag_crash : attempts:int -> string -> Bs_support.Diag.t (* BS-SRV-03 *)
val diag_fuel : Bs_support.Diag.t                        (* BS-SRV-04 *)
val diag_trap : Bs_support.Outcome.trap -> Bs_support.Diag.t (* BS-SRV-05 *)
val diag_internal : string -> Bs_support.Diag.t          (* BS-SRV-07 *)

exception Injected_crash of int
(** Raised by the chaos [Crash_before] knob (payload: the attempt); the
    one exception the server classifies as transient. *)

val chaos_of_string : string -> chaos option
(** ["crash:N"] or ["hang:MS"]. *)

val chaos_to_string : chaos -> string

(* --- codec ------------------------------------------------------------- *)

val request_to_json : request -> Bs_support.Jsonx.t
val request_of_json : Bs_support.Jsonx.t -> (request, string) result
val response_to_json : response -> Bs_support.Jsonx.t
val response_of_json : Bs_support.Jsonx.t -> (response, string) result

val stats_to_json : server_stats -> Bs_support.Jsonx.t
(** Exposed for reporting code that embeds the server view (e.g. the
    loadgen cross-check artifact); [response_to_json] uses it. *)

val request_of_line : string -> (request, string) result
val request_line : request -> string
val response_line : response -> string
(** Line forms: parse/print including the JSON framing (no trailing
    newline on output). *)

val status_name : status -> string
(** ["ok"], ["pong"], ["stats"], ["health"], ["bye"], ["error"],
    ["overloaded"], ["timeout"]. *)

val op_label : op -> string
(** Canonical label, e.g. ["bench:CRC32/bitspec/max/exp"] — injective
    over the op space. *)

val canonical_line : request -> response -> string
(** One deterministic log line for a (request, response) pair: id, op
    label, status, attempts, and the checksum or first diagnostic code —
    everything except timing and cache origin, which legitimately vary
    across schedules.  Sorted over ids, these lines form the canonical
    server log that must be byte-identical at any [--jobs]. *)
