(** Seeded zipfian load generator for the compile service.

    The request stream is generated {e up front} from the seed — a
    fixed sequence of (workload × configuration) cells drawn from a
    zipfian popularity distribution — and then issued closed-loop by
    [clients] concurrent threads.  The stream is therefore identical
    for any client count or target transport; only the interleaving
    varies, which is exactly what the canonical-log determinism check
    relies on. *)

type target =
  | In_process of Server.t       (** drive the engine directly *)
  | Connect of string            (** dial a Unix socket per client *)

type cfg = {
  lg_seed : int64;
  lg_requests : int;
  lg_clients : int;
  lg_zipf_s : float;        (** zipf exponent; 1.1 is a good default *)
  lg_deadline_ms : int option;
  lg_fuel : int option;
  lg_crash_every : int;     (** inject [Crash_before 2] on every n-th
                                request (1-based stream index); 0 = never *)
}

val default_cfg : cfg
(** seed 42, 200 requests, 4 clients, s = 1.1, no deadline/fuel
    overrides, no chaos. *)

type summary = {
  sm_requests : int;
  sm_ok : int;
  sm_errors : int;
  sm_timeouts : int;
  sm_shed : int;
  sm_retries : int;      (** total re-executions across the run *)
  sm_wall_s : float;
  sm_rps : float;
  sm_p50_ms : float;     (** server-side latency percentiles *)
  sm_p99_ms : float;
  sm_client_p50_ms : float;
      (** percentiles of the client's own wall clock around each call —
          measured independently of the server-reported [rs_ms] *)
  sm_client_p99_ms : float;
  sm_hit_rate : float;   (** cached compiles among [Done] responses *)
  sm_shed_rate : float;  (** shed among all responses *)
}

val cells : (string * Service.bench_req) list
(** The request population: every registry workload crossed with four
    configuration variants, in deterministic order (label, request). *)

val plan : cfg -> Service.request list
(** The deterministic request stream (ids [1..requests]), before any
    I/O — exposed for tests. *)

val run : cfg -> target -> (Service.request * Service.response) list * summary
(** Issue the stream closed-loop and collect every (request, response)
    pair (in stream order) plus the aggregate summary. *)

val summary_json : summary -> Bs_support.Jsonx.t
(** Keys: [requests], [ok], [errors], [timeouts], [shed], [retries],
    [wall_s], [rps], [p50_ms], [p99_ms], [client_p50_ms],
    [client_p99_ms], [cache_hit_rate], [shed_rate]. *)

(** {2 Server-side view and reconciliation} *)

val server_stats : target -> Service.server_stats option
(** Issue one [Stats] request to the target (id 0, outside the plan's
    id space).  [None] if the server is unreachable or answered with
    anything but a stats reply. *)

type cross_check = {
  cc_client_count : int;   (** non-shed responses the client collected *)
  cc_server_count : int;   (** server latency-histogram count; -1 if absent *)
  cc_client_p50 : float;   (** rank-statistic quantiles of the client's
                               [rs_ms] collection *)
  cc_client_p99 : float;
  cc_server_p50 : float;   (** server histogram estimates *)
  cc_server_p99 : float;
  cc_count_ok : bool;      (** counts agree exactly *)
  cc_p50_ok : bool;        (** within one bucket ratio *)
  cc_p99_ok : bool;
  cc_ok : bool;
}

val cross_check :
  (Service.request * Service.response) list -> Service.server_stats ->
  cross_check
(** Reconcile the server's [serve_request_ms] histogram (from
    [st_metrics]) against the client-side collection of the same
    [rs_ms] values: counts must match exactly, quantile estimates must
    sit in [[exact, max(exact·bucket_ratio, bucket_floor)]].  Only
    sound against a server that has served exactly this run's
    requests. *)

val check_json : cross_check -> Bs_support.Jsonx.t

val canonical_log : (Service.request * Service.response) list -> string list
(** {!Service.canonical_line} for each pair, sorted by request id —
    byte-identical across [--jobs] values for the same plan. *)
