open Bs_exec

(* Two single-flight tables, one per entry-point shape.  Capacity bounds
   keep long fuzz campaigns (unique source per trial) from accumulating
   unboundedly: a flush only costs recompiles, never changes results.

   Optionally backed by a persistent Disk_cache layer: a memory miss
   consults the disk before compiling, and a fresh compile is written
   back (successes only — failures are never persisted, so a transient
   fault can never poison the cache across processes).  The disk lookup
   runs inside the memo thunk, i.e. still single-flight per key. *)

(* Memory-tier cache traffic.  Single-flight makes these deterministic
   for a given workload: of N requesters for one key, exactly one runs
   the thunk (miss) and the rest are hits, whatever the schedule — so
   the totals are --jobs-invariant and live in the deterministic
   counters section.  (Disk-tier counters live in Disk_cache.) *)
let mem_hit =
  Bs_obs.Metrics.counter "cache_events_total"
    ~labels:[ ("tier", "memory"); ("event", "hit") ]

let mem_miss =
  Bs_obs.Metrics.counter "cache_events_total"
    ~labels:[ ("tier", "memory"); ("event", "miss") ]

let strict_tbl : (string, Driver.compiled) Memo.t = Memo.create ~cap:512 ()

let total_tbl :
    (string, (Driver.compiled, Bs_support.Diag.t list) result) Memo.t =
  Memo.create ~cap:512 ()

let source_key source = Digest.to_hex (Digest.string source)

(* --- persistence ------------------------------------------------------- *)

(* Entry payloads are Marshal images of [Driver.compiled] — pure data
   (arrays, hashtables, no closures).  The schema token versions the
   marshalled layout: Disk_cache's checksum protects against corruption
   but not against a payload written by an incompatible build, so the
   token participates in the disk key and layout changes simply miss. *)
let persist_schema = "cc-v1"

let disk : Disk_cache.t option Atomic.t = Atomic.make None

let set_persistent = function
  | None -> Atomic.set disk None
  | Some dir -> Atomic.set disk (Some (Disk_cache.open_dir dir))

let persistent () = Atomic.get disk

let disk_stats () = Option.map Disk_cache.stats (Atomic.get disk)

let disk_key key = persist_schema ^ "|" ^ key

let compiled_to_bytes (c : Driver.compiled) = Marshal.to_bytes c []

let compiled_of_bytes (b : bytes) : Driver.compiled option =
  match Marshal.from_bytes b 0 with
  | c -> Some c
  | exception _ -> None

type origin = Memory | Disk | Fresh

(* The disk-then-compile path shared by both entry points; runs inside
   the memo thunk.  [persist] decides whether a fresh value is written
   back (try_compile persists successes only). *)
let disk_or_compute ~key ~set ~encode ~decode ~persist thunk =
  match Atomic.get disk with
  | None ->
      set Fresh;
      thunk ()
  | Some dc -> (
      let dkey = disk_key key in
      match Disk_cache.load dc ~key:dkey with
      | Some payload -> (
          match decode payload with
          | Some v ->
              set Disk;
              v
          | None ->
              (* checksum passed but the decode didn't: an incompatible
                 build wrote it.  Quarantine and recompile. *)
              Disk_cache.invalidate dc ~key:dkey;
              set Fresh;
              let v = thunk () in
              if persist v then Disk_cache.store dc ~key:dkey (encode v);
              v)
      | None ->
          set Fresh;
          let v = thunk () in
          if persist v then Disk_cache.store dc ~key:dkey (encode v);
          v)

(* Run one memoised lookup and bump the memory-tier counters: the
   requester whose thunk actually ran is the miss, everyone else
   (including requesters that waited on an in-flight computation) is a
   hit — the same accounting Memo itself keeps.  Exceptions (pinned or
   fresh failures) are counted too, then rethrown. *)
let counted find =
  let ran = ref false in
  match find ran with
  | v ->
      Bs_obs.Metrics.inc (if !ran then mem_miss else mem_hit);
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Bs_obs.Metrics.inc (if !ran then mem_miss else mem_hit);
      Printexc.raise_with_backtrace e bt

let compile ?origin ~key thunk =
  let set o = match origin with Some r -> r := o | None -> () in
  set Memory;
  counted (fun ran ->
      Memo.find_or_add strict_tbl key (fun () ->
          ran := true;
          disk_or_compute ~key ~set ~encode:compiled_to_bytes
            ~decode:compiled_of_bytes
            ~persist:(fun _ -> true)
            thunk))

let try_compile ?origin ~key thunk =
  let set o = match origin with Some r -> r := o | None -> () in
  set Memory;
  counted (fun ran ->
      Memo.find_or_add total_tbl key (fun () ->
          ran := true;
          disk_or_compute ~key ~set
            ~encode:(function
              | Ok c -> compiled_to_bytes c
              | Error _ -> assert false (* persist is false for errors *))
            ~decode:(fun b -> Option.map Result.ok (compiled_of_bytes b))
            ~persist:Result.is_ok thunk))

let hits () = Memo.hits strict_tbl + Memo.hits total_tbl
let misses () = Memo.misses strict_tbl + Memo.misses total_tbl

(* Snapshot each table's (hits, misses) pair under its lock so a
   concurrent compile can never tear a pair; the two tables are summed
   without a global lock, which at worst lags one in-flight compile. *)
let stats () =
  let sh, sm = Memo.stats strict_tbl in
  let th, tm = Memo.stats total_tbl in
  (sh + th, sm + tm)

let reset () =
  Memo.clear strict_tbl;
  Memo.clear total_tbl
