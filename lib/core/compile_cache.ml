open Bs_exec

(* Two single-flight tables, one per entry-point shape.  Capacity bounds
   keep long fuzz campaigns (unique source per trial) from accumulating
   unboundedly: a flush only costs recompiles, never changes results. *)

let strict_tbl : (string, Driver.compiled) Memo.t = Memo.create ~cap:512 ()

let total_tbl :
    (string, (Driver.compiled, Bs_support.Diag.t list) result) Memo.t =
  Memo.create ~cap:512 ()

let source_key source = Digest.to_hex (Digest.string source)

let compile ~key thunk = Memo.find_or_add strict_tbl key thunk

let try_compile ~key thunk = Memo.find_or_add total_tbl key thunk

let hits () = Memo.hits strict_tbl + Memo.hits total_tbl
let misses () = Memo.misses strict_tbl + Memo.misses total_tbl

let reset () =
  Memo.clear strict_tbl;
  Memo.clear total_tbl
