open Bs_ir

(* Bitmask elision (RQ3).

   Encoding kernels mask values with 0xFF constantly (`R2 = and R1, 0xFF`).
   When such a masked value then feeds a *speculative* truncate inserted by
   the squeezer, the truncate can never misspeculate — the mask already
   guarantees the value fits the slice — so it is rewritten into an *exact*
   truncate of the unmasked source, which the back-end lowers to a plain
   register-slice move (no misspeculation hardware involved, no handler
   entry possible).  If every consumer of the AND is rewritten this way the
   AND itself dies at the next DCE. *)

let slice_mask = Width.mask Specops.slice_width

let run_func ?remarks (f : Ir.func) =
  let remark r = match remarks with Some sink -> sink r | None -> () in
  let elided = ref 0 in
  (* map: result of `and x, 0xFF` -> x *)
  let masked : (int, Ir.operand) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.op with
          | Ir.Bin (Ir.And, x, Ir.Const c)
            when c.cval = slice_mask && i.width > Specops.slice_width
                 && not i.speculative ->
              Hashtbl.replace masked i.iid x
          | Ir.Bin (Ir.And, Ir.Const c, x)
            when c.cval = slice_mask && i.width > Specops.slice_width
                 && not i.speculative ->
              Hashtbl.replace masked i.iid x
          | _ -> ())
        b.instrs)
    f.blocks;
  if Hashtbl.length masked > 0 then
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            match i.op with
            | Ir.Cast (Ir.TruncCast, Ir.Var v)
              when i.speculative && i.width = Specops.slice_width
                   && Hashtbl.mem masked v ->
                (* trunc8(and(x, 0xFF)) = trunc8(x), exactly *)
                i.op <- Ir.Cast (Ir.TruncCast, Hashtbl.find masked v);
                i.speculative <- false;
                incr elided;
                let var =
                  if i.iname <> "" then i.iname
                  else Printf.sprintf "%%%d" i.iid
                in
                remark
                  (Bs_obs.Remark.elided_mask ~fn:f.fname ~var ~line:i.line)
            | _ -> ())
          b.instrs)
      f.blocks;
  !elided

let run ?remarks (m : Ir.modul) =
  List.fold_left (fun n f -> n + run_func ?remarks f) 0 m.funcs
