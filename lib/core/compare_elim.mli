(** Compare elimination (§3.2.4): a compare between a speculated 8-bit
    value and a constant that cannot fit the slice is decided by the
    speculation outcome alone, so it folds to a constant while execution
    remains in CFG_spec.  Evidence that the value fits is either a
    squeezed definition or a dominating committed speculative truncate. *)

val run_func : ?remarks:Bs_obs.Remark.sink -> Bs_ir.Ir.func -> int
(** Returns the number of compares eliminated; [remarks] receives one
    record per eliminated compare. *)

val run : ?remarks:Bs_obs.Remark.sink -> Bs_ir.Ir.modul -> int
