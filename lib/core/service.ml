open Bs_support

(* Wire protocol for the compile service.  See the interface; this file
   is the codec plus the canonical-log rendering.  Everything here is
   pure — the server engine lives in Server. *)

type chaos = Crash_before of int | Hang_ms of int

type bench_req = {
  b_workload : string;
  b_arch : Driver.arch;
  b_heuristic : Bs_interp.Profile.heuristic;
  b_no_expander : bool;
}

type op = Ping | Stats | Health | Shutdown | Bench of bench_req

type request = {
  rq_id : int;
  rq_op : op;
  rq_deadline_ms : int option;
  rq_fuel : int option;
  rq_chaos : chaos option;
}

type metrics_summary = {
  m_checksum : int64;
  m_instrs : int;
  m_cycles : int;
  m_misspecs : int;
  m_energy : float;
  m_epi : float;
}

type server_stats = {
  st_served : int;
  st_ok : int;
  st_errors : int;
  st_timeouts : int;
  st_shed : int;
  st_retries : int;
  st_replaced : int;
  st_depth : int;
  st_mem_hits : int;
  st_mem_misses : int;
  st_disk_hits : int;
  st_disk_misses : int;
  st_entries : int;
  st_quarantined : int;
  st_uptime_ms : float;
  st_metrics : Jsonx.t;
      (* full Metrics.snapshot_json payload; Null when absent *)
}

type health_report = {
  hr_ok : bool;
  hr_reasons : string list;  (* why degraded; empty iff hr_ok *)
}

type status =
  | Done of metrics_summary
  | Pong
  | Stats_reply of server_stats
  | Health_reply of health_report
  | Bye
  | Failed of Diag.t list
  | Overloaded of int
  | Timed_out

type response = {
  rs_id : int;
  rs_status : status;
  rs_attempts : int;
  rs_cached : bool;
  rs_ms : float;
}

(* --- diagnostics ------------------------------------------------------- *)

let diag_bad_request msg =
  Diag.error ~code:"BS-SRV-01" ~phase:Diag.Other ("bad request: " ^ msg)

let diag_unknown_workload name =
  Diag.error ~code:"BS-SRV-02" ~phase:Diag.Other ("unknown workload " ^ name)

let diag_crash ~attempts msg =
  Diag.error ~code:"BS-SRV-03" ~phase:Diag.Other
    (Printf.sprintf "worker crashed on all %d attempts: %s" attempts msg)

let diag_fuel =
  Diag.error ~code:"BS-SRV-04" ~phase:Diag.Sim
    "simulation exhausted its fuel budget"

let diag_trap trap =
  Diag.error ~code:"BS-SRV-05" ~phase:Diag.Sim
    ("simulation trapped: " ^ Outcome.trap_message trap)

let diag_internal msg =
  Diag.error ~code:"BS-SRV-07" ~phase:Diag.Other ("internal: " ^ msg)

exception Injected_crash of int

(* --- small enums ------------------------------------------------------- *)

let arch_names =
  [ ("baseline", Driver.Baseline); ("bitspec", Driver.Bitspec_arch);
    ("thumb", Driver.Thumb) ]

let heuristic_names =
  [ ("max", Bs_interp.Profile.Hmax); ("avg", Bs_interp.Profile.Havg);
    ("min", Bs_interp.Profile.Hmin) ]

let name_of assoc v =
  fst (List.find (fun (_, v') -> v' = v) assoc)

let of_name assoc n = List.assoc_opt n assoc

let chaos_of_string s =
  match String.split_on_char ':' s with
  | [ "crash"; n ] -> Option.map (fun n -> Crash_before n) (int_of_string_opt n)
  | [ "hang"; ms ] -> Option.map (fun ms -> Hang_ms ms) (int_of_string_opt ms)
  | _ -> None

let chaos_to_string = function
  | Crash_before n -> Printf.sprintf "crash:%d" n
  | Hang_ms ms -> Printf.sprintf "hang:%d" ms

let status_name = function
  | Done _ -> "ok"
  | Pong -> "pong"
  | Stats_reply _ -> "stats"
  | Health_reply _ -> "health"
  | Bye -> "bye"
  | Failed _ -> "error"
  | Overloaded _ -> "overloaded"
  | Timed_out -> "timeout"

(* --- encoding ---------------------------------------------------------- *)

open Jsonx

let opt_field k f = function None -> [] | Some v -> [ (k, f v) ]

let request_to_json (r : request) : Jsonx.t =
  let op_fields =
    match r.rq_op with
    | Ping -> [ ("op", Str "ping") ]
    | Stats -> [ ("op", Str "stats") ]
    | Health -> [ ("op", Str "health") ]
    | Shutdown -> [ ("op", Str "shutdown") ]
    | Bench b ->
        [ ("op", Str "bench");
          ("workload", Str b.b_workload);
          ("arch", Str (name_of arch_names b.b_arch));
          ("heuristic", Str (name_of heuristic_names b.b_heuristic)) ]
        @ (if b.b_no_expander then [ ("no_expander", Bool true) ] else [])
  in
  Obj
    ((("id", int r.rq_id) :: op_fields)
    @ opt_field "deadline_ms" int r.rq_deadline_ms
    @ opt_field "fuel" int r.rq_fuel
    @ opt_field "chaos" (fun c -> Str (chaos_to_string c)) r.rq_chaos)

let metrics_to_json (m : metrics_summary) : Jsonx.t =
  Obj
    [ ("checksum", Str (Int64.to_string m.m_checksum));
      ("instrs", int m.m_instrs);
      ("cycles", int m.m_cycles);
      ("misspecs", int m.m_misspecs);
      ("energy", Num m.m_energy);
      ("epi", Num m.m_epi) ]

let diag_to_json (d : Diag.t) : Jsonx.t =
  Obj
    ([ ("code", Str d.Diag.code);
       ("severity", Str (Diag.severity_name d.Diag.severity));
       ("phase", Str (Diag.phase_name d.Diag.phase)) ]
    @ opt_field "func" (fun f -> Str f) d.Diag.func
    @ opt_field "line" int d.Diag.line
    @ [ ("message", Str d.Diag.message) ])

let stats_to_json (s : server_stats) : Jsonx.t =
  Obj
    [ ("served", int s.st_served);
      ("ok", int s.st_ok);
      ("errors", int s.st_errors);
      ("timeouts", int s.st_timeouts);
      ("shed", int s.st_shed);
      ("retries", int s.st_retries);
      ("replaced_workers", int s.st_replaced);
      ("queue_depth", int s.st_depth);
      ("cache_mem_hits", int s.st_mem_hits);
      ("cache_mem_misses", int s.st_mem_misses);
      ("cache_disk_hits", int s.st_disk_hits);
      ("cache_disk_misses", int s.st_disk_misses);
      ("cache_entries", int s.st_entries);
      ("cache_quarantined", int s.st_quarantined);
      ("uptime_ms", Num s.st_uptime_ms);
      ("metrics", s.st_metrics) ]

let response_to_json (r : response) : Jsonx.t =
  let status_fields =
    match r.rs_status with
    | Done m -> [ ("metrics", metrics_to_json m) ]
    | Pong | Bye -> []
    | Stats_reply s -> [ ("stats", stats_to_json s) ]
    | Health_reply h ->
        [ ("ok", Bool h.hr_ok);
          ("reasons", Arr (List.map (fun r -> Str r) h.hr_reasons)) ]
    | Failed ds -> [ ("diags", Arr (List.map diag_to_json ds)) ]
    | Overloaded depth -> [ ("queue_depth", int depth) ]
    | Timed_out -> []
  in
  Obj
    ([ ("id", int r.rs_id); ("status", Str (status_name r.rs_status)) ]
    @ status_fields
    @ [ ("attempts", int r.rs_attempts);
        ("cached", Bool r.rs_cached);
        ("ms", Num r.rs_ms) ])

(* --- decoding ---------------------------------------------------------- *)

let ( let* ) r f = Result.bind r f

let require what = function
  | Some v -> Ok v
  | None -> Error ("missing or ill-typed " ^ what)

let request_of_json (j : Jsonx.t) : (request, string) result =
  let* id = require "id" (mem_int "id" j) in
  let* opname = require "op" (mem_string "op" j) in
  let* chaos =
    match mem_string "chaos" j with
    | None -> Ok None
    | Some s -> (
        match chaos_of_string s with
        | Some c -> Ok (Some c)
        | None -> Error ("bad chaos spec " ^ s))
  in
  let* op =
    match opname with
    | "ping" -> Ok Ping
    | "stats" -> Ok Stats
    | "health" -> Ok Health
    | "shutdown" -> Ok Shutdown
    | "bench" ->
        let* w = require "workload" (mem_string "workload" j) in
        let* arch =
          match mem_string "arch" j with
          | None -> Ok Driver.Bitspec_arch
          | Some a -> require ("arch " ^ a) (of_name arch_names a)
        in
        let* heuristic =
          match mem_string "heuristic" j with
          | None -> Ok Bs_interp.Profile.Hmax
          | Some h -> require ("heuristic " ^ h) (of_name heuristic_names h)
        in
        let no_expander =
          Option.value ~default:false (mem_bool "no_expander" j)
        in
        Ok
          (Bench
             { b_workload = w; b_arch = arch; b_heuristic = heuristic;
               b_no_expander = no_expander })
    | other -> Error ("unknown op " ^ other)
  in
  Ok
    { rq_id = id; rq_op = op;
      rq_deadline_ms = mem_int "deadline_ms" j;
      rq_fuel = mem_int "fuel" j;
      rq_chaos = chaos }

let severity_of_name = function
  | "error" -> Diag.Error
  | "warning" -> Diag.Warning
  | _ -> Diag.Info

let diag_of_json (j : Jsonx.t) : Diag.t =
  let phase =
    (* service-side diags only ever use these two; anything else shown
       to a client keeps its name inside the message *)
    match mem_string "phase" j with
    | Some "sim" -> Diag.Sim
    | _ -> Diag.Other
  in
  Diag.make
    ~severity:
      (severity_of_name (Option.value ~default:"error" (mem_string "severity" j)))
    ?func:(mem_string "func" j)
    ?line:(mem_int "line" j)
    ~code:(Option.value ~default:"BS-SRV-07" (mem_string "code" j))
    ~phase
    (Option.value ~default:"" (mem_string "message" j))

let metrics_of_json (j : Jsonx.t) : (metrics_summary, string) result =
  let* checksum_s = require "checksum" (mem_string "checksum" j) in
  let* checksum =
    match Int64.of_string_opt checksum_s with
    | Some c -> Ok c
    | None -> Error "bad checksum"
  in
  let* instrs = require "instrs" (mem_int "instrs" j) in
  let* cycles = require "cycles" (mem_int "cycles" j) in
  let* misspecs = require "misspecs" (mem_int "misspecs" j) in
  let* energy = require "energy" (mem_float "energy" j) in
  let* epi = require "epi" (mem_float "epi" j) in
  Ok
    { m_checksum = checksum; m_instrs = instrs; m_cycles = cycles;
      m_misspecs = misspecs; m_energy = energy; m_epi = epi }

let stats_of_json (j : Jsonx.t) : server_stats =
  let geti k = Option.value ~default:0 (mem_int k j) in
  { st_served = geti "served"; st_ok = geti "ok"; st_errors = geti "errors";
    st_timeouts = geti "timeouts"; st_shed = geti "shed";
    st_retries = geti "retries"; st_replaced = geti "replaced_workers";
    st_depth = geti "queue_depth";
    st_mem_hits = geti "cache_mem_hits";
    st_mem_misses = geti "cache_mem_misses";
    st_disk_hits = geti "cache_disk_hits";
    st_disk_misses = geti "cache_disk_misses";
    st_entries = geti "cache_entries";
    st_quarantined = geti "cache_quarantined";
    st_uptime_ms = Option.value ~default:0.0 (mem_float "uptime_ms" j);
    st_metrics = Option.value ~default:Null (member "metrics" j) }

let response_of_json (j : Jsonx.t) : (response, string) result =
  let* id = require "id" (mem_int "id" j) in
  let* status_s = require "status" (mem_string "status" j) in
  let* status =
    match status_s with
    | "pong" -> Ok Pong
    | "bye" -> Ok Bye
    | "timeout" -> Ok Timed_out
    | "overloaded" ->
        Ok (Overloaded (Option.value ~default:0 (mem_int "queue_depth" j)))
    | "stats" ->
        let* sj = require "stats" (member "stats" j) in
        Ok (Stats_reply (stats_of_json sj))
    | "health" ->
        let* ok = require "ok" (mem_bool "ok" j) in
        let reasons =
          match Option.bind (member "reasons" j) get_list with
          | Some rs -> List.filter_map get_string rs
          | None -> []
        in
        Ok (Health_reply { hr_ok = ok; hr_reasons = reasons })
    | "error" ->
        let diags =
          match Option.bind (member "diags" j) get_list with
          | Some ds -> List.map diag_of_json ds
          | None -> [ diag_internal "error response without diags" ]
        in
        Ok (Failed diags)
    | "ok" ->
        let* mj = require "metrics" (member "metrics" j) in
        let* m = metrics_of_json mj in
        Ok (Done m)
    | other -> Error ("unknown status " ^ other)
  in
  Ok
    { rs_id = id; rs_status = status;
      rs_attempts = Option.value ~default:1 (mem_int "attempts" j);
      rs_cached = Option.value ~default:false (mem_bool "cached" j);
      rs_ms = Option.value ~default:0.0 (mem_float "ms" j) }

let request_of_line line =
  match Jsonx.parse line with
  | Error e -> Error e
  | Ok j -> request_of_json j

let request_line r = Jsonx.to_string (request_to_json r)
let response_line r = Jsonx.to_string (response_to_json r)

(* --- canonical log ----------------------------------------------------- *)

let op_label = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Health -> "health"
  | Shutdown -> "shutdown"
  | Bench b ->
      Printf.sprintf "bench:%s/%s/%s/%s" b.b_workload
        (name_of arch_names b.b_arch)
        (name_of heuristic_names b.b_heuristic)
        (if b.b_no_expander then "noexp" else "exp")

let canonical_line (rq : request) (rs : response) =
  let tail =
    match rs.rs_status with
    | Done m -> Printf.sprintf " checksum=%Ld" m.m_checksum
    | Failed (d :: _) -> " diag=" ^ d.Diag.code
    | Failed [] -> ""
    | Overloaded _ | Timed_out | Pong | Bye | Stats_reply _
    | Health_reply _ -> ""
  in
  Printf.sprintf "id=%d op=%s status=%s attempts=%d%s" rq.rq_id
    (op_label rq.rq_op) (status_name rs.rs_status) rs.rs_attempts tail
