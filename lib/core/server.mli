(** The long-running compile+simulate server: a bounded admission
    queue, a supervised pool of worker domains, a watchdog, and the
    Unix-socket / stdio transports for `bitspecc serve`.

    Supervision follows the paper's own speculate/detect/recover shape
    applied to the systems layer:

    - {b Admission / load shedding.}  A request is either admitted to
      the bounded queue or immediately answered [Overloaded] once the
      queue is at its high-water mark; nothing blocks, nothing is
      silently dropped.  Control-plane ops (ping / stats / shutdown)
      bypass the queue so the server stays observable under overload.
    - {b Deadlines.}  Each request carries a wall-clock deadline token
      from admission.  Workers poll it at phase boundaries, simulation
      is fuel-bounded, and a watchdog domain answers [Timed_out] on
      behalf of any request whose deadline passes — then retires the
      worker if it is still stuck (a zombie exits when it eventually
      finishes; a replacement is spawned so capacity is not lost).
      The {e request} is therefore never lost to a hung worker.
    - {b Retries.}  Failures classified transient
      ({!Service.Injected_crash}) are re-executed up to [retries] times
      with deterministic exponential backoff + jitter keyed by
      (server seed, request id, attempt).  Everything else —
      diagnostics, traps, fuel exhaustion, deadline — is answered
      structurally on first occurrence.
    - {b Crash isolation.}  A worker catches every per-request
      exception and answers with structured diagnostics; the in-memory
      compile cache bounds failure memoisation and the persistent
      layer stores successes only, so one poisoned request never takes
      the server down or poisons later identical requests. *)

type config = {
  jobs : int;            (** worker domains *)
  queue_depth : int;     (** admission high-water mark *)
  deadline_ms : int;     (** default per-request deadline; 0 = none *)
  fuel : int;            (** default simulation instruction budget *)
  retries : int;         (** max re-executions of a transient failure *)
  backoff_base_ms : float;
  backoff_cap_ms : float;
  seed : int64;          (** jitter seed; part of the determinism story *)
  cache_dir : string option;
      (** attach {!Compile_cache}'s persistent layer here *)
  interp_engine : Bs_interp.Interp.engine;
      (** engine for the profiling interpreter on cache-miss compiles *)
}

val default_config : config
(** 4 workers, depth 64, 30 s deadline, 2×10{^8} fuel, 2 retries,
    base 25 ms / cap 400 ms, seed 1, no cache dir, compiled interp. *)

type t

val start : config -> t
(** Spawn the worker pool and the watchdog.  If [cache_dir] is set,
    opens (or reopens) the persistent cache first — a corrupt store
    quarantines bad entries rather than failing startup. *)

val submit : t -> Service.request -> (Service.response -> unit) -> unit
(** Asynchronous submission.  The callback runs exactly once, on a
    worker, watchdog, or the submitting thread (shed / control ops);
    it must be thread-safe and quick. *)

val submit_wait : t -> Service.request -> Service.response
(** Synchronous submission (blocks the calling thread). *)

val stats : t -> Service.server_stats
(** Counter snapshot plus the full metrics-registry snapshot in
    [st_metrics]. *)

val health : t -> Service.health_report
(** Degradation probe: ok unless draining, shedding more than 10% of
    admissions, holding wedged (watchdog-retired but still running)
    workers, or quarantining persistent-cache entries. *)

val stop : t -> unit
(** Graceful shutdown: refuse new work, drain the queue, join workers
    and watchdog.  Idempotent.  May wait for a straggling worker's
    current item (bounded by fuel / chaos hang duration). *)

val draining : t -> bool
(** True once shutdown was initiated (via {!stop} or a [Shutdown]
    request). *)

(* --- transports -------------------------------------------------------- *)

val serve_unix :
  t -> socket:string -> ?on_ready:(unit -> unit) -> unit -> unit
(** Bind a Unix-domain listening socket and serve newline-delimited
    JSON until a [Shutdown] request or SIGTERM/SIGINT arrives, then
    drain and return.  Each connection gets a reader thread; responses
    are written as they complete (out of submission order when
    pipelined).  A stale socket file from a dead server is replaced; a
    live one is reported as an error.  [on_ready] runs once the socket
    is accepting. *)

val serve_stdio : t -> unit -> unit
(** Same protocol over stdin/stdout: serve until EOF or [Shutdown],
    then drain and return.  One response line per request line. *)

(* --- client ------------------------------------------------------------ *)

type conn

val connect : socket:string -> conn
(** Connect to a serving socket.  Raises [Unix.Unix_error] on
    failure. *)

val call : conn -> Service.request -> Service.response
(** Send one request and block for its response (matching by id;
    intervening responses to other ids on the same connection are
    discarded — use one connection per in-flight request when driving
    the server concurrently). *)

val close : conn -> unit
