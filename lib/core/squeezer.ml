open Bs_ir
open Bs_interp

(* The squeezer (§3.2.3): speculative bitwidth reduction.

   Pass ① (CFG preparation) lives in {!Cfg_prep}.  This module implements
   passes ② and ③:

   ② duplicate the CFG into CFG_spec (the blocks execution enters) and
     CFG_orig (the full-width fallback), then retype every squeezable
     variable in CFG_spec at the 8-bit slice width, inserting speculative
     truncates for wide operands and zero-extensions where squeezed values
     feed full-width consumers;

   ③ for every CFG_spec block that can misspeculate, create a speculative
     region and a handler that extends the live state back to its original
     width and branches to the block's CFG_orig clone, then repair SSA so
     the φ-merge of equation (8) materialises at every join.

   Equation (9)'s BB_clone isolation is not materialised as extra blocks;
   the same guarantee (no register of a speculative region may be reused
   while the region can still misspeculate) is enforced by the SMIR
   predecessor relation of equation (2) during register allocation, which
   extends every region definition's live range to the handler. *)

type stats = {
  mutable squeezed : int;       (* instructions re-typed to 8 bits *)
  mutable truncs : int;         (* speculative truncates inserted *)
  mutable exts : int;           (* zero-extensions inserted *)
  mutable regions : int;        (* speculative regions created *)
}

let fresh_stats () = { squeezed = 0; truncs = 0; exts = 0; regions = 0 }

module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

(* --- eligibility (the Squeezable? relation, equation 3) --------------- *)

let slice = Specops.slice_width

let target_ok profile fname iid =
  match Profile.target profile Profile.Hmax ~func:fname ~iid with
  | Some _ -> true
  | None -> false

let operand_target profile heuristic (f : Ir.func) fname (o : Ir.operand) =
  match o with
  | Ir.Const c -> if Width.fits slice c.cval then Some slice else Some 64
  | Ir.Var v -> (
      let w = (Ir.instr f v).width in
      if w <= slice then Some slice
      else
        match Profile.target profile heuristic ~func:fname ~iid:v with
        | Some t -> Some t
        | None -> None)

(** [squeezable profile heuristic f i] decides membership in the squeezed
    set: a speculative machine operation must exist, the defining block
    must be idempotent, and the heuristic's target for the variable and
    all its operands must fit the slice (the BW formula of §3.2.2). *)
let squeezable profile heuristic (f : Ir.func) (b : Ir.block)
    idempotent_of (i : Ir.instr) =
  Specops.speculative_op i.op
  &&
  let fname = f.fname in
  let operands_fit () =
    List.for_all
      (fun o ->
        match operand_target profile heuristic f fname o with
        | Some t -> t <= slice
        | None -> false)
      (Ir.operands i)
  in
  match i.op with
  | Ir.Cmp (_, a, c) ->
      let w = Ir.operand_width f a in
      ignore c;
      w > slice && w <= 64 && idempotent_of b.bid && operands_fit ()
  | Ir.Phi incoming ->
      i.width > slice
      && target_ok profile fname i.iid
      && (match Profile.target profile heuristic ~func:fname ~iid:i.iid with
         | Some t -> t <= slice
         | None -> false)
      && operands_fit ()
      (* A truncate for a wide incoming lands at the end of the
         predecessor block; that block must be idempotent (it can become a
         speculative region) and must contain no phis — a region whose
         re-executed clone starts with phis would need handler incomings
         that equation (6) deliberately rules out. *)
      && List.for_all
           (fun (p, v) ->
             match v with
             | Ir.Const _ -> true
             | Ir.Var x ->
                 let narrow = (Ir.instr f x).width <= slice in
                 narrow
                 || (idempotent_of p
                    && not
                         (List.exists Ir.is_phi (Ir.block f p).instrs)))
           incoming
  | Ir.Bin _ ->
      i.width > slice
      && idempotent_of b.bid
      && (match Profile.target profile heuristic ~func:fname ~iid:i.iid with
         | Some t -> t <= slice
         | None -> false)
      && operands_fit ()
  | _ -> false

(* --- the transformation ------------------------------------------------ *)

let run_func ?remarks (m : Ir.modul) (f : Ir.func) ~profile ~heuristic :
    stats =
  ignore m;
  let remark r = match remarks with Some sink -> sink r | None -> () in
  let var_name (i : Ir.instr) =
    if i.iname <> "" then i.iname else Printf.sprintf "%%%d" i.iid
  in
  let st = fresh_stats () in
  let idempotent_tbl = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace idempotent_tbl b.bid (Specops.idempotent_block b))
    f.blocks;
  let idempotent_of bid =
    match Hashtbl.find_opt idempotent_tbl bid with Some x -> x | None -> false
  in
  (* Squeezed set S. *)
  let s_set = ref IntSet.empty in
  let orig_width : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          if squeezable profile heuristic f b idempotent_of i then begin
            s_set := IntSet.add i.iid !s_set;
            Hashtbl.replace orig_width i.iid i.width
          end)
        b.instrs)
    f.blocks;
  (* Cost-aware pruning: squeezing an instruction whose operands and
     consumers are mostly full-width buys slice arithmetic at the price of
     a truncate per wide operand and an extension per wide consumer.  Keep
     a member only while it needs at most one boundary cast; a wide load
     feeding a single speculative truncate is free (it fuses into the
     speculative load of Table 1).  Iterated to a fixpoint because pruning
     one member adds boundary casts to its neighbours. *)
  let uses_tbl = Ir.uses f in
  let is_free_operand o =
    match o with
    | Ir.Const _ -> true
    | Ir.Var v ->
        let vi = Ir.instr f v in
        vi.width <= slice
        || IntSet.mem v !s_set
        || (match vi.op with
           (* a single-use wide load fuses into Table 1's speculative load *)
           | Ir.Load l when (not l.l_volatile) && vi.width = 32 -> (
               match Hashtbl.find_opt uses_tbl v with
               | Some [ _ ] -> true
               | _ -> false)
           (* a slice-mask result becomes an exact slice move under bitmask
              elision (RQ3): its truncate is free and never misspeculates *)
           | Ir.Bin (Ir.And, _, Ir.Const c) when c.cval = Width.mask slice ->
               true
           | Ir.Bin (Ir.And, Ir.Const c, _) when c.cval = Width.mask slice ->
               true
           | _ -> false)
  in
  (* A full-width consumer that takes the value through a slice anyway
     (byte store, truncate back down) costs no extension. *)
  let user_free iid (u : Ir.instr) =
    IntSet.mem u.Ir.iid !s_set
    ||
    match u.Ir.op with
    | Ir.Store st -> (
        st.s_width = slice
        && match st.s_value with Ir.Var v -> v = iid | _ -> false)
    | Ir.Cast (Ir.TruncCast, _) -> u.Ir.width <= slice
    | _ -> false
  in
  let boundary_cost (i : Ir.instr) =
    let ops = List.sort_uniq compare (Ir.operands i) in
    let truncs =
      List.length (List.filter (fun o -> not (is_free_operand o)) ops)
    in
    let exts =
      match i.op with
      | Ir.Cmp _ -> 0 (* i1 result needs no widening *)
      | _ -> (
          match Hashtbl.find_opt uses_tbl i.iid with
          | Some users
            when List.exists (fun u -> not (user_free i.iid u)) users ->
              1
          | _ -> 0)
    in
    truncs + exts
  in
  let candidates = !s_set in
  let pruning = ref true in
  while !pruning do
    pruning := false;
    IntSet.iter
      (fun iid ->
        let i = Ir.instr f iid in
        if boundary_cost i > 1 then begin
          s_set := IntSet.remove iid !s_set;
          pruning := true
        end)
      !s_set
  done;
  (* Report each candidate the cost model pruned (IntSet order: stable). *)
  IntSet.iter
    (fun iid ->
      let i = Ir.instr f iid in
      remark
        (Bs_obs.Remark.rejected ~fn:f.fname ~var:(var_name i) ~line:i.line
           (Printf.sprintf "boundary cost %d > 1 cast" (boundary_cost i))))
    (IntSet.diff candidates !s_set);
  if IntSet.is_empty !s_set then st
  else begin
    let spec_blocks = f.blocks in
    (* ② step 1: duplicate the CFG.  The existing blocks become CFG_spec
       (execution enters them); the clones are CFG_orig. *)
    let cm, _orig_blocks = Ir.clone_blocks f spec_blocks ~suffix:".o" in
    let orig_of_block bid = Hashtbl.find cm.Ir.cm_block bid in
    let spec_of_var =
      (* inverse of cm_instr: orig iid -> spec iid *)
      let inv = Hashtbl.create 64 in
      Hashtbl.iter (fun k v -> Hashtbl.replace inv v k) cm.Ir.cm_instr;
      fun v -> Hashtbl.find_opt inv v
    in
    (* Liveness snapshot before handlers exist: live-in of each CFG_orig
       block, in terms of CFG_orig variables. *)
    let live = Liveness.compute ~preds:(Ir.preds_map f) f in
    (* ② step 2a: retype S members. *)
    IntSet.iter
      (fun iid ->
        let i = Ir.instr f iid in
        let from_ =
          match i.op with
          | Ir.Cmp (_, a, b) ->
              (* an i1-result compare is squeezed via its operands: report
                 the comparison width, not the result width *)
              let ow o =
                match o with
                | Ir.Var v when Hashtbl.mem orig_width v ->
                    Hashtbl.find orig_width v
                | o -> Ir.operand_width f o
              in
              max (ow a) (ow b)
          | _ -> (
              match Hashtbl.find_opt orig_width iid with
              | Some w -> w
              | None -> i.width)
        in
        (match i.op with
        | Ir.Cmp _ -> () (* result stays i1; operands are squeezed below *)
        | _ -> i.width <- slice);
        i.speculative <- true;
        st.squeezed <- st.squeezed + 1;
        remark
          (Bs_obs.Remark.squeezed ~fn:f.fname ~var:(var_name i) ~line:i.line
             ~from_ ~to_:slice))
      !s_set;
    (* ② step 2b: operand narrowing. *)
    (* caches are keyed by (block, placement kind, value): an End-placed
       cast must never satisfy a Before-placed request, which would produce
       a use before its definition *)
    let trunc_cache : (int * bool * int, Ir.operand) Hashtbl.t = Hashtbl.create 32 in
    let insert_before (b : Ir.block) (anchor : Ir.instr) (ni : Ir.instr) =
      let rec place = function
        | [] -> [ ni ]
        | x :: rest when x.Ir.iid = anchor.Ir.iid -> ni :: x :: rest
        | x :: rest -> x :: place rest
      in
      b.instrs <- place b.instrs
    in
    let insert_at_end (b : Ir.block) (ni : Ir.instr) =
      let rec place = function
        | [] -> [ ni ]
        | [ t ] when Ir.is_terminator t -> [ ni; t ]
        | x :: rest -> x :: place rest
      in
      b.instrs <- place b.instrs
    in
    let get8 ~(where : [ `Before of Ir.block * Ir.instr | `End of Ir.block ])
        (o : Ir.operand) =
      match o with
      | Ir.Const c -> Ir.const ~width:slice c.cval
      | Ir.Var v ->
          let vi = Ir.instr f v in
          if vi.width <= slice then o
          else
            let key =
              match where with
              | `Before (b, _) -> (b.Ir.bid, false, v)
              | `End b -> (b.Ir.bid, true, v)
            in
            (match Hashtbl.find_opt trunc_cache key with
            | Some cached -> cached
            | None ->
                let line =
                  (* parameters carry no line; fall back to the consumer *)
                  if vi.line > 0 then vi.line
                  else
                    match where with
                    | `Before (_, (anchor : Ir.instr)) -> anchor.line
                    | `End _ -> 0
                in
                let t =
                  Ir.mk_instr f ~name:(vi.iname ^ ".sq") ~line ~width:slice
                    (Ir.Cast (Ir.TruncCast, o))
                in
                t.speculative <- true;
                st.truncs <- st.truncs + 1;
                (match where with
                | `Before (b, anchor) -> insert_before b anchor t
                | `End b -> insert_at_end b t);
                let res = Ir.Var t.iid in
                Hashtbl.replace trunc_cache key res;
                res)
    in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            if IntSet.mem i.iid !s_set then
              match i.op with
              | Ir.Phi incoming ->
                  i.op <-
                    Ir.Phi
                      (List.map
                         (fun (p, v) ->
                           (p, get8 ~where:(`End (Ir.block f p)) v))
                         incoming)
              | _ ->
                  Ir.map_operands (fun o -> get8 ~where:(`Before (b, i)) o) i)
          b.instrs)
      spec_blocks;
    (* ② step 2c: widen squeezed values feeding full-width consumers. *)
    let ext_cache : (int * bool * int, Ir.operand) Hashtbl.t = Hashtbl.create 32 in
    let get_wide ~where (v : int) =
      let ow = Hashtbl.find orig_width v in
      let key =
        match where with
        | `Before (b, _) -> (b.Ir.bid, false, v)
        | `End b -> (b.Ir.bid, true, v)
      in
      match Hashtbl.find_opt ext_cache key with
      | Some cached -> cached
      | None ->
          let vi = Ir.instr f v in
          let e =
            Ir.mk_instr f ~name:(vi.iname ^ ".w") ~line:vi.line ~width:ow
              (Ir.Cast (Ir.Zext, Ir.Var v))
          in
          st.exts <- st.exts + 1;
          (match where with
          | `Before (b, anchor) -> insert_before b anchor e
          | `End b -> insert_at_end b e);
          let res = Ir.Var e.iid in
          Hashtbl.replace ext_cache key res;
          res
    in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            if not (IntSet.mem i.iid !s_set) then
              match i.op with
              | Ir.Phi incoming ->
                  i.op <-
                    Ir.Phi
                      (List.map
                         (fun (p, v) ->
                           match v with
                           | Ir.Var x
                             when IntSet.mem x !s_set
                                  && (Ir.instr f x).width = slice ->
                               (p, get_wide ~where:(`End (Ir.block f p)) x)
                           | _ -> (p, v))
                         incoming)
              | _ ->
                  Ir.map_operands
                    (fun o ->
                      match o with
                      | Ir.Var x
                        when IntSet.mem x !s_set
                             && (Ir.instr f x).width = slice ->
                          get_wide ~where:(`Before (b, i)) x
                      | o -> o)
                    i)
          b.instrs)
      spec_blocks;
    (* ③ regions and handlers: one region per spec block that can actually
       misspeculate. *)
    let extra_defs : (int * Ir.operand) list IntMap.t ref = ref IntMap.empty in
    List.iter
      (fun (b : Ir.block) ->
        let can_misspec =
          List.exists Specops.can_misspeculate b.instrs
        in
        if can_misspec then begin
          let orig_bid = orig_of_block b.bid in
          let handler = Ir.add_block f (b.bname ^ ".h") in
          ignore (Ir.add_region f ~blocks:[ b.bid ] ~handler:handler.Ir.bid);
          st.regions <- st.regions + 1;
          (* live state at the entry of the re-executed original block *)
          let li = Liveness.live_in live orig_bid in
          Liveness.IntSet.iter
            (fun v_orig ->
              let v_spec =
                match spec_of_var v_orig with
                | Some s -> s
                | None -> v_orig (* parameters are shared, not cloned *)
              in
              if v_spec <> v_orig then begin
                let wo = (Ir.instr f v_orig).width in
                let ws = (Ir.instr f v_spec).width in
                let def =
                  if ws < wo then begin
                    let e =
                      Ir.mk_instr f
                        ~name:((Ir.instr f v_spec).iname ^ ".x")
                        ~width:wo
                        (Ir.Cast (Ir.Zext, Ir.Var v_spec))
                    in
                    Ir.append_instr handler e;
                    st.exts <- st.exts + 1;
                    Ir.Var e.iid
                  end
                  else Ir.Var v_spec
                in
                extra_defs :=
                  IntMap.update v_orig
                    (fun cur ->
                      Some ((handler.Ir.bid, def) :: Option.value cur ~default:[]))
                    !extra_defs
              end)
            li;
          Ir.append_instr handler (Ir.mk_instr f ~width:0 (Ir.Br orig_bid))
        end)
      spec_blocks;
    (* ③ SSA repair: make every CFG_orig use observe the right definition
       (the φ of equation (8) appears at each join). *)
    let preds_final = Ir.preds_map f in
    IntMap.iter
      (fun v_orig defs ->
        Ssa_repair.repair f ~var:v_orig ~extra_defs:defs ~preds:preds_final)
      !extra_defs;
    (* Prune CFG_orig blocks no handler can reach (dead fallback code). *)
    let reachable = Hashtbl.create 16 in
    List.iter (fun bid -> Hashtbl.replace reachable bid ()) (Ir.reverse_postorder f);
    let dead_ids =
      List.filter_map
        (fun (b : Ir.block) ->
          if Hashtbl.mem reachable b.bid then None else Some b.bid)
        f.blocks
    in
    if dead_ids <> [] then begin
      f.blocks <-
        List.filter (fun (b : Ir.block) -> Hashtbl.mem reachable b.bid) f.blocks;
      List.iter (fun bid -> Hashtbl.remove f.btbl bid) dead_ids;
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.op with
              | Ir.Phi incoming ->
                  i.op <-
                    Ir.Phi
                      (List.filter
                         (fun (p, _) -> not (List.mem p dead_ids))
                         incoming)
              | _ -> ())
            b.instrs)
        f.blocks;
      f.regions <-
        List.filter
          (fun (r : Ir.region) ->
            List.for_all (fun bid -> not (List.mem bid dead_ids)) r.rblocks
            && not (List.mem r.rhandler dead_ids))
          f.regions
    end;
    st
  end

(** Squeeze every profiled function of [m]. *)
let run ?remarks (m : Ir.modul) ~profile ~heuristic : stats =
  let total = fresh_stats () in
  List.iter
    (fun (f : Ir.func) ->
      let st = run_func ?remarks m f ~profile ~heuristic in
      total.squeezed <- total.squeezed + st.squeezed;
      total.truncs <- total.truncs + st.truncs;
      total.exts <- total.exts + st.exts;
      total.regions <- total.regions + st.regions)
    m.funcs;
  total
