open Bs_ir

(* Compare elimination (§3.2.4).

   A compare between a speculated variable and a constant too large for
   the slice is decided by speculation alone: while execution remains in
   CFG_spec, every committed speculative truncate of [v] proves
   [v < 2^8], so the comparison's outcome is a constant.  The speculative
   source must stay alive — control flow now depends on its speculation
   outcome — which DCE guarantees by never deleting speculative
   instructions.

   Accepted evidence that the compared value fits the slice:
   - the operand is itself a squeezed (8-bit speculative) value, possibly
     behind the zero-extension the squeezer inserted for wide consumers;
   - a speculative truncate (or fused speculative load) of the operand
     dominates the compare: had it misspeculated, control would already
     have left CFG_spec. *)

let slice = Specops.slice_width

let decide (op : Ir.cmpop) =
  (* value < 2^8 <= c *)
  match op with
  | Ir.Ult | Ir.Ule -> Some 1L
  | Ir.Ugt | Ir.Uge -> Some 0L
  | Ir.Eq -> Some 0L
  | Ir.Ne -> Some 1L
  | Ir.Slt | Ir.Sle | Ir.Sgt | Ir.Sge -> None

let mirror : Ir.cmpop -> Ir.cmpop = function
  | Ir.Ult -> Ir.Ugt | Ir.Ule -> Ir.Uge
  | Ir.Ugt -> Ir.Ult | Ir.Uge -> Ir.Ule
  | other -> other

let run_func ?remarks (f : Ir.func) =
  let remark r = match remarks with Some sink -> sink r | None -> () in
  let eliminated = ref 0 in
  (* index: variable -> speculative truncates of it, with their block *)
  let spec_truncs : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let block_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let pos_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.block) ->
      List.iteri
        (fun k (i : Ir.instr) ->
          Hashtbl.replace block_of i.iid b.bid;
          Hashtbl.replace pos_of i.iid k;
          match i.op with
          | Ir.Cast (Ir.TruncCast, Ir.Var v)
            when i.speculative && i.width = slice ->
              let cur = try Hashtbl.find spec_truncs v with Not_found -> [] in
              Hashtbl.replace spec_truncs v (i.iid :: cur)
          | _ -> ())
        b.instrs)
    f.blocks;
  let dom = lazy (Dom.compute f) in
  (* Is [o] proven to fit the slice at instruction [at]? *)
  let fits_at (o : Ir.operand) (at : Ir.instr) =
    match o with
    | Ir.Const _ -> false
    | Ir.Var v -> (
        let vi = Ir.instr f v in
        let direct =
          (vi.speculative && vi.width = slice)
          ||
          match vi.op with
          | Ir.Cast (Ir.Zext, Ir.Var x) ->
              let xi = Ir.instr f x in
              xi.speculative && xi.width = slice
          | _ -> false
        in
        direct
        ||
        match Hashtbl.find_opt spec_truncs v with
        | None -> false
        | Some truncs ->
            let at_block = Hashtbl.find block_of at.iid in
            List.exists
              (fun t ->
                let tb = Hashtbl.find block_of t in
                if tb = at_block then Hashtbl.find pos_of t < Hashtbl.find pos_of at.iid
                else Dom.strictly_dominates (Lazy.force dom) tb at_block)
              truncs)
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          let fold op a c =
            if
              Width.required_bits c.Ir.cval > slice
              && fits_at a i
            then
              match decide op with
              | Some v ->
                  Ir.replace_all_uses f ~old_id:i.iid ~by:(Ir.const ~width:1 v);
                  incr eliminated;
                  let var =
                    if i.iname <> "" then i.iname
                    else Printf.sprintf "%%%d" i.iid
                  in
                  remark
                    (Bs_obs.Remark.compare_elim ~fn:f.fname ~var ~line:i.line
                       (v <> 0L))
              | None -> ()
          in
          match i.op with
          | Ir.Cmp (op, a, Ir.Const c) -> fold op a c
          | Ir.Cmp (op, Ir.Const c, a) -> fold (mirror op) a c
          | _ -> ())
        b.instrs)
    f.blocks;
  !eliminated

let run ?remarks (m : Ir.modul) =
  List.fold_left (fun n f -> n + run_func ?remarks f) 0 m.funcs
