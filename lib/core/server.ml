open Bs_support
open Bs_exec
open Bs_workloads

(* The compile service engine.  One mutex [lock] guards the queue, the
   worker table and the counters; the per-slot [s_responded] flag is an
   Atomic CAS gate so exactly one of {worker, watchdog, shedder} ever
   answers a request.  Respond callbacks (which may write to sockets)
   are always invoked OUTSIDE [lock]. *)

type config = {
  jobs : int;
  queue_depth : int;
  deadline_ms : int;
  fuel : int;
  retries : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  seed : int64;
  cache_dir : string option;
  interp_engine : Bs_interp.Interp.engine;
}

let default_config =
  { jobs = 4; queue_depth = 64; deadline_ms = 30_000; fuel = 200_000_000;
    retries = 2; backoff_base_ms = 25.0; backoff_cap_ms = 400.0; seed = 1L;
    cache_dir = None; interp_engine = Bs_interp.Interp.Compiled }

type slot = {
  s_req : Service.request;
  s_cb : Service.response -> unit;
  s_token : Supervisor.token;
  s_enq_ns : int64;
  s_responded : bool Atomic.t;
  s_attempts : int Atomic.t;  (* last attempt started (watchdog reads it) *)
  mutable s_claim_ns : int64; (* when a worker picked it up; 0 = queued *)
  mutable s_origin : string;  (* cache origin of the last compile *)
}

type t = {
  cfg : config;
  lock : Mutex.t;
  cond : Condition.t;
  queue : slot Queue.t;
  mutable stopping : bool;
  mutable watchdog_stop : bool;
  mutable workers : (int * unit Domain.t) list;  (* worker gen -> domain *)
  mutable next_gen : int;
  retired : (int, unit) Hashtbl.t;
  inflight : (int, slot) Hashtbl.t;              (* worker gen -> slot *)
  mutable watchdog : unit Domain.t option;
  started_ns : int64;
  (* counters, under [lock] *)
  mutable served : int;
  mutable ok : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable shed : int;
  mutable retries_done : int;
  mutable replaced : int;
}

(* A service-level failure with its structured diagnostics attached;
   never classified transient. *)
exception Srv_fail of Diag.t list

let ms_of_ns ns = Int64.to_float ns /. 1e6

(* --- metrics ------------------------------------------------------------ *)

(* All serve instruments are registered at module-init time so the
   registry contents — and hence the snapshot shape — do not depend on
   which code paths happened to fire.  Everything here is deterministic
   for a scripted request mix: outcome counts, accepted/shed,
   retries/backoff sleeps (chaos is part of the request), watchdog
   counts (0 without hangs), and the depth/in-flight gauges (0 at
   quiescence).  Latency histograms are inherently run-dependent and
   live in the snapshot's histogram section. *)
module M = Bs_obs.Metrics

let m_req_ok = M.counter "serve_requests_total" ~labels:[ ("outcome", "ok") ]

let m_req_error =
  M.counter "serve_requests_total" ~labels:[ ("outcome", "error") ]

let m_req_timeout =
  M.counter "serve_requests_total" ~labels:[ ("outcome", "timeout") ]

let m_req_shed =
  M.counter "serve_requests_total" ~labels:[ ("outcome", "shed") ]

let m_accepted = M.counter "serve_accepted_total"
let m_retries = M.counter "serve_retries_total"
let m_backoff_sleeps = M.counter "serve_backoff_sleeps_total"
let m_wd_timeouts = M.counter "serve_watchdog_timeouts_total"
let m_wd_retired = M.counter "serve_watchdog_retirements_total"
let m_inflight = M.gauge "serve_inflight"
let m_queue_depth = M.gauge "serve_queue_depth"
let m_queue_wait = M.histogram "serve_queue_wait_ms"
let m_latency = M.histogram "serve_request_ms"

let m_latency_origin =
  let mk o = (o, M.histogram "serve_request_ms" ~labels:[ ("origin", o) ]) in
  [ mk "memory"; mk "disk"; mk "fresh" ]

let flow_name = "serve:req"

(* --- responding (exactly once per request) ----------------------------- *)

let mk_response (slot : slot) status ~cached =
  { Service.rs_id = slot.s_req.Service.rq_id;
    rs_status = status;
    rs_attempts = max 1 (Atomic.get slot.s_attempts);
    rs_cached = cached;
    rs_ms =
      ms_of_ns (Int64.sub (Supervisor.now_ns ()) slot.s_enq_ns) }

(* Must be called WITHOUT [t.lock] held.

   Outcome counters and the latency histograms cover bench requests
   only (control ops are answered inline and carry no workload), and
   shed responses are excluded from the latency histograms — matching
   the client side, where Loadgen's percentiles skip Overloaded.  The
   observed sample is [rs_ms] itself, the exact value the client will
   read back off the wire, so the server histogram describes the same
   multiset of numbers the client measures. *)
let respond t slot status ~cached =
  if Atomic.compare_and_set slot.s_responded false true then begin
    Mutex.lock t.lock;
    t.served <- t.served + 1;
    (match status with
    | Service.Done _ -> t.ok <- t.ok + 1
    | Service.Failed _ -> t.errors <- t.errors + 1
    | Service.Timed_out -> t.timeouts <- t.timeouts + 1
    | Service.Overloaded _ | Service.Pong | Service.Bye
    | Service.Stats_reply _ | Service.Health_reply _ -> ());
    Mutex.unlock t.lock;
    let resp = mk_response slot status ~cached in
    let observe_latency () =
      M.observe m_latency resp.Service.rs_ms;
      match List.assoc_opt slot.s_origin m_latency_origin with
      | Some h -> M.observe h resp.Service.rs_ms
      | None -> ()
    in
    (match status with
    | Service.Done _ ->
        M.inc m_req_ok;
        observe_latency ()
    | Service.Failed _ ->
        M.inc m_req_error;
        observe_latency ()
    | Service.Timed_out ->
        M.inc m_req_timeout;
        observe_latency ()
    | Service.Overloaded _ -> M.inc m_req_shed
    | Service.Pong | Service.Bye | Service.Stats_reply _
    | Service.Health_reply _ -> ());
    (match status with
    | Service.Done _ | Service.Failed _ | Service.Timed_out
    | Service.Overloaded _ ->
        Bs_obs.Trace.flow_end ~id:slot.s_req.Service.rq_id
          ~args:[ ("status", Service.status_name status) ]
          flow_name
    | _ -> ());
    slot.s_cb resp
  end

(* --- the bench work itself --------------------------------------------- *)

let config_of (b : Service.bench_req) : Driver.config =
  let base =
    match b.Service.b_arch with
    | Driver.Baseline -> Driver.baseline_config
    | Driver.Bitspec_arch -> Driver.bitspec_config
    | Driver.Thumb -> Driver.thumb_config
  in
  let base = { base with Driver.heuristic = b.Service.b_heuristic } in
  if b.Service.b_no_expander then
    { base with Driver.expander = Expander.disabled }
  else base

let summarize (r : Bs_sim.Machine.result) : Service.metrics_summary =
  let m = Experiment.metrics_of_run r in
  { Service.m_checksum = m.Experiment.checksum;
    m_instrs = m.Experiment.instrs;
    m_cycles = m.Experiment.cycles;
    m_misspecs = m.Experiment.misspecs;
    m_energy = m.Experiment.total_energy;
    m_epi = m.Experiment.epi }

(* One attempt: chaos, compile (cached), simulate (fuel-bounded) —
   polling the deadline token at each phase boundary. *)
let attempt_bench t (slot : slot) (b : Service.bench_req) ~attempt ~cached =
  let rq = slot.s_req in
  Atomic.set slot.s_attempts attempt;
  cached := false;
  Supervisor.check slot.s_token;
  (match rq.Service.rq_chaos with
  | Some (Service.Crash_before n) when attempt < n ->
      raise (Service.Injected_crash attempt)
  | Some (Service.Hang_ms ms) ->
      (* a wedged worker: sleeps WITHOUT polling the token, so only the
         watchdog can answer for it if the deadline passes meanwhile *)
      Unix.sleepf (float_of_int ms /. 1000.0)
  | _ -> ());
  let w =
    match Registry.find b.Service.b_workload with
    | w -> w
    | exception Invalid_argument _ ->
        raise (Srv_fail [ Service.diag_unknown_workload b.Service.b_workload ])
  in
  let origin = ref Compile_cache.Fresh in
  let c =
    Experiment.compile_workload ~origin ~interp_engine:t.cfg.interp_engine
      (config_of b) w
  in
  (match !origin with
  | Compile_cache.Memory | Compile_cache.Disk -> cached := true
  | Compile_cache.Fresh -> ());
  slot.s_origin <-
    (match !origin with
    | Compile_cache.Memory -> "memory"
    | Compile_cache.Disk -> "disk"
    | Compile_cache.Fresh -> "fresh");
  Supervisor.check slot.s_token;
  let fuel = Option.value rq.Service.rq_fuel ~default:t.cfg.fuel in
  let r =
    Driver.run_machine
      ~setup:(w.Workload.test.Workload.setup c.Driver.ir)
      ~fuel c ~entry:w.Workload.entry ~args:w.Workload.test.Workload.args
  in
  Supervisor.check slot.s_token;
  match r.Bs_sim.Machine.outcome with
  | Outcome.Finished -> summarize r
  | Outcome.Out_of_fuel -> raise (Srv_fail [ Service.diag_fuel ])
  | Outcome.Trapped k -> raise (Srv_fail [ Service.diag_trap k ])
  | Outcome.Livelock ->
      raise (Srv_fail [ Service.diag_internal "simulation livelocked" ])

let process_bench t (slot : slot) (b : Service.bench_req) =
  let cached = ref false in
  let key = string_of_int slot.s_req.Service.rq_id in
  let base_ns = Int64.of_float (t.cfg.backoff_base_ms *. 1e6) in
  let cap_ns = Int64.of_float (t.cfg.backoff_cap_ms *. 1e6) in
  let outcome =
    Backoff.run ~retries:t.cfg.retries
      ~is_transient:(function Service.Injected_crash _ -> true | _ -> false)
      ~sleep:(fun ns ->
        M.inc m_backoff_sleeps;
        Supervisor.sleep_ns ~token:slot.s_token ns)
      ~delay:(fun ~attempt ->
        Backoff.delay_ns ~base_ns ~cap_ns ~seed:t.cfg.seed ~key ~attempt)
      (fun ~attempt -> attempt_bench t slot b ~attempt ~cached)
  in
  (match outcome.Backoff.result with
  | Ok _ | Error _ ->
      if outcome.Backoff.attempts > 1 then begin
        Mutex.lock t.lock;
        t.retries_done <- t.retries_done + (outcome.Backoff.attempts - 1);
        Mutex.unlock t.lock;
        M.inc ~by:(outcome.Backoff.attempts - 1) m_retries
      end);
  match outcome.Backoff.result with
  | Ok m -> respond t slot (Service.Done m) ~cached:!cached
  | Error (Supervisor.Deadline_exceeded, _) ->
      respond t slot Service.Timed_out ~cached:false
  | Error (Service.Injected_crash _, _) ->
      respond t slot
        (Service.Failed
           [ Service.diag_crash ~attempts:outcome.Backoff.attempts
               "injected worker crash" ])
        ~cached:false
  | Error (Srv_fail ds, _) ->
      respond t slot (Service.Failed ds) ~cached:false
  | Error (e, _) ->
      respond t slot
        (Service.Failed [ Service.diag_internal (Printexc.to_string e) ])
        ~cached:false

(* --- workers ----------------------------------------------------------- *)

let rec worker_loop t gen =
  Mutex.lock t.lock;
  let rec await () =
    if Hashtbl.mem t.retired gen then begin
      Mutex.unlock t.lock;
      None
    end
    else if not (Queue.is_empty t.queue) then begin
      let slot = Queue.pop t.queue in
      slot.s_claim_ns <- Supervisor.now_ns ();
      Hashtbl.replace t.inflight gen slot;
      let depth = Queue.length t.queue in
      Mutex.unlock t.lock;
      M.set_gauge m_queue_depth (float_of_int depth);
      M.observe m_queue_wait
        (ms_of_ns (Int64.sub slot.s_claim_ns slot.s_enq_ns));
      M.add_gauge m_inflight 1.0;
      Bs_obs.Trace.flow_step ~id:slot.s_req.Service.rq_id
        ~args:[ ("gen", string_of_int gen) ]
        flow_name;
      Some slot
    end
    else if t.stopping then begin
      Mutex.unlock t.lock;
      None
    end
    else begin
      Condition.wait t.cond t.lock;
      await ()
    end
  in
  match await () with
  | None -> ()
  | Some slot ->
      (match slot.s_req.Service.rq_op with
      | Service.Bench b -> (
          let rid = string_of_int slot.s_req.Service.rq_id in
          try
            Bs_obs.Trace.with_context [ ("rid", rid) ] (fun () ->
                process_bench t slot b)
          with e ->
            (* never let anything escape a worker *)
            respond t slot
              (Service.Failed
                 [ Service.diag_internal (Printexc.to_string e) ])
              ~cached:false)
      | Service.Ping | Service.Stats | Service.Health | Service.Shutdown ->
          (* control ops never reach the queue *)
          respond t slot Service.Pong ~cached:false);
      M.add_gauge m_inflight (-1.0);
      Mutex.lock t.lock;
      Hashtbl.remove t.inflight gen;
      let gone = Hashtbl.mem t.retired gen in
      Mutex.unlock t.lock;
      if not gone then worker_loop t gen

let spawn_worker t =
  (* call with [t.lock] held *)
  let gen = t.next_gen in
  t.next_gen <- gen + 1;
  let d = Domain.spawn (fun () -> worker_loop t gen) in
  t.workers <- (gen, d) :: t.workers

(* --- watchdog ---------------------------------------------------------- *)

let stall_grace_ns = 50_000_000L (* 50 ms past the deadline = stuck *)

let watchdog_tick t =
  let now = Supervisor.now_ns () in
  let expired = ref [] in
  let stuck = ref [] in
  Mutex.lock t.lock;
  let max_gens = (4 * t.cfg.jobs) + 2 in
  Hashtbl.iter
    (fun gen slot ->
      if
        Supervisor.cancelled slot.s_token
        && not (Atomic.get slot.s_responded)
      then expired := slot :: !expired;
      match Supervisor.deadline_ns slot.s_token with
      | Some d
        when Int64.compare now (Int64.add d stall_grace_ns) > 0
             && (not (Hashtbl.mem t.retired gen))
             && (not t.stopping)
             && t.next_gen < max_gens ->
          (* the worker overshot its deadline by the grace period: it is
             wedged (or close enough).  Retire it — it will exit when
             its item finally finishes — and restore capacity. *)
          Hashtbl.replace t.retired gen ();
          t.replaced <- t.replaced + 1;
          M.inc m_wd_retired;
          stuck := gen :: !stuck;
          spawn_worker t
      | _ -> ())
    t.inflight;
  Mutex.unlock t.lock;
  (* answer for the expired requests outside the lock; the CAS in
     [respond] makes this race-free against a worker finishing late *)
  List.iter
    (fun slot ->
      Supervisor.cancel slot.s_token;
      M.inc m_wd_timeouts;
      respond t slot Service.Timed_out ~cached:false)
    !expired;
  ignore !stuck

let rec watchdog_loop t =
  (try Unix.sleepf 0.002 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
  watchdog_tick t;
  (* also wake queued-but-expired requests promptly: workers popping
     them will observe the cancelled token on first check *)
  let stop =
    Mutex.lock t.lock;
    let s = t.watchdog_stop in
    Mutex.unlock t.lock;
    s
  in
  if not stop then watchdog_loop t

(* --- lifecycle --------------------------------------------------------- *)

let start cfg =
  if cfg.jobs < 1 then invalid_arg "Server.start: jobs < 1";
  if cfg.queue_depth < 1 then invalid_arg "Server.start: queue_depth < 1";
  Compile_cache.set_persistent cfg.cache_dir;
  let t =
    { cfg; lock = Mutex.create (); cond = Condition.create ();
      queue = Queue.create (); stopping = false; watchdog_stop = false;
      workers = []; next_gen = 0; retired = Hashtbl.create 16;
      inflight = Hashtbl.create 16; watchdog = None;
      started_ns = Supervisor.now_ns (); served = 0; ok = 0; errors = 0;
      timeouts = 0; shed = 0; retries_done = 0; replaced = 0 }
  in
  Mutex.lock t.lock;
  for _ = 1 to cfg.jobs do
    spawn_worker t
  done;
  Mutex.unlock t.lock;
  t.watchdog <- Some (Domain.spawn (fun () -> watchdog_loop t));
  t

let draining t =
  Mutex.lock t.lock;
  let s = t.stopping in
  Mutex.unlock t.lock;
  s

let stats t : Service.server_stats =
  let dc = Compile_cache.persistent () in
  let ds = Compile_cache.disk_stats () in
  (* snapshot the registry before taking [t.lock]: snapshot_json takes
     the registry and histogram locks, never t.lock, so ordering is
     one-way *)
  let metrics = M.snapshot_json () in
  Mutex.lock t.lock;
  let depth = Queue.length t.queue in
  let s =
    { Service.st_served = t.served; st_ok = t.ok; st_errors = t.errors;
      st_timeouts = t.timeouts; st_shed = t.shed;
      st_retries = t.retries_done; st_replaced = t.replaced;
      st_depth = depth;
      st_mem_hits = Compile_cache.hits ();
      st_mem_misses = Compile_cache.misses ();
      st_disk_hits =
        (match ds with Some s -> s.Disk_cache.hits | None -> 0);
      st_disk_misses =
        (match ds with Some s -> s.Disk_cache.misses | None -> 0);
      st_entries =
        (match dc with Some d -> Disk_cache.entries d | None -> 0);
      st_quarantined =
        (match dc with Some d -> Disk_cache.quarantine_count d | None -> 0);
      st_uptime_ms =
        ms_of_ns (Int64.sub (Supervisor.now_ns ()) t.started_ns);
      st_metrics = metrics }
  in
  Mutex.unlock t.lock;
  s

(* Degradation probe: cheap, answered inline (never queued), and
   side-effect free.  A reason string is machine-matchable; the report
   is ok iff there are none. *)
let health t : Service.health_report =
  Mutex.lock t.lock;
  let stopping = t.stopping in
  let served = t.served and shed = t.shed in
  (* a retired generation still holding an in-flight slot is a wedged
     worker: the watchdog answered for its request, but the domain has
     not returned from the item it is stuck in *)
  let wedged =
    Hashtbl.fold
      (fun gen _ acc -> if Hashtbl.mem t.retired gen then acc + 1 else acc)
      t.inflight 0
  in
  Mutex.unlock t.lock;
  let quarantined =
    match Compile_cache.persistent () with
    | Some d -> Disk_cache.quarantine_count d
    | None -> 0
  in
  let reasons = ref [] in
  let flag cond reason = if cond then reasons := reason :: !reasons in
  flag stopping "draining";
  let denom = served + shed in
  flag (denom > 0 && float_of_int shed /. float_of_int denom > 0.10)
    "shed-rate";
  flag (wedged > 0) "wedged-workers";
  flag (quarantined > 0) "quarantine";
  { Service.hr_ok = !reasons = []; hr_reasons = List.rev !reasons }

let initiate_stop t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

let stop t =
  initiate_stop t;
  (* join workers until the set is stable (the watchdog may have spawned
     replacements while we were joining) *)
  let rec drain_workers () =
    Mutex.lock t.lock;
    let ws = t.workers in
    t.workers <- [];
    Mutex.unlock t.lock;
    if ws <> [] then begin
      List.iter (fun (_, d) -> Domain.join d) ws;
      drain_workers ()
    end
  in
  drain_workers ();
  Mutex.lock t.lock;
  t.watchdog_stop <- true;
  Mutex.unlock t.lock;
  (match t.watchdog with Some d -> Domain.join d | None -> ());
  t.watchdog <- None

(* --- submission -------------------------------------------------------- *)

let mk_slot t rq cb =
  let deadline_ms =
    match rq.Service.rq_deadline_ms with
    | Some ms -> ms
    | None -> t.cfg.deadline_ms
  in
  let token =
    if deadline_ms > 0 then Supervisor.of_timeout_ms deadline_ms
    else Supervisor.create ()
  in
  { s_req = rq; s_cb = cb; s_token = token;
    s_enq_ns = Supervisor.now_ns (); s_responded = Atomic.make false;
    s_attempts = Atomic.make 1; s_claim_ns = 0L; s_origin = "fresh" }

let submit t rq cb =
  let slot = mk_slot t rq cb in
  match rq.Service.rq_op with
  | Service.Ping -> respond t slot Service.Pong ~cached:false
  | Service.Stats ->
      respond t slot (Service.Stats_reply (stats t)) ~cached:false
  | Service.Health ->
      respond t slot (Service.Health_reply (health t)) ~cached:false
  | Service.Shutdown ->
      initiate_stop t;
      respond t slot Service.Bye ~cached:false
  | Service.Bench _ ->
      let verdict =
        Mutex.lock t.lock;
        let v =
          if t.stopping then `Draining
          else if Queue.length t.queue >= t.cfg.queue_depth then begin
            t.shed <- t.shed + 1;
            `Shed (Queue.length t.queue)
          end
          else begin
            Queue.push slot t.queue;
            Condition.signal t.cond;
            `Queued (Queue.length t.queue)
          end
        in
        Mutex.unlock t.lock;
        v
      in
      (match verdict with
      | `Queued depth ->
          M.inc m_accepted;
          M.set_gauge m_queue_depth (float_of_int depth);
          Bs_obs.Trace.flow_start ~id:rq.Service.rq_id
            ~args:[ ("op", Service.op_label rq.Service.rq_op) ]
            flow_name
      | `Shed depth ->
          respond t slot (Service.Overloaded depth) ~cached:false
      | `Draining ->
          respond t slot
            (Service.Failed
               [ Service.diag_internal "server is shutting down" ])
            ~cached:false)

let submit_wait t rq =
  let m = Mutex.create () in
  let c = Condition.create () in
  let cell = ref None in
  submit t rq (fun resp ->
      Mutex.lock m;
      cell := Some resp;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while Option.is_none !cell do
    Condition.wait c m
  done;
  let r = Option.get !cell in
  Mutex.unlock m;
  r

(* --- transports -------------------------------------------------------- *)

let send_line oc wlock resp =
  Mutex.lock wlock;
  (try
     output_string oc (Service.response_line resp);
     output_char oc '\n';
     flush oc
   with Sys_error _ ->
     (* client went away; the work was still done and accounted *)
     ());
  Mutex.unlock wlock

let handle_conn t ~notify_shutdown fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let wlock = Mutex.create () in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line -> (
        match Service.request_of_line line with
        | Error e ->
            send_line oc wlock
              { Service.rs_id = -1;
                rs_status = Service.Failed [ Service.diag_bad_request e ];
                rs_attempts = 1; rs_cached = false; rs_ms = 0.0 };
            loop ()
        | Ok rq ->
            submit t rq (send_line oc wlock);
            if rq.Service.rq_op = Service.Shutdown then notify_shutdown ()
            else loop ())
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let replace_stale_socket path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then failwith (path ^ ": a server is already listening here");
    (try Sys.remove path with Sys_error _ -> ())
  end

let serve_unix t ~socket ?(on_ready = fun () -> ()) () =
  replace_stale_socket socket;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX socket);
  Unix.listen lfd 64;
  (* [close] does not wake a thread blocked in [accept]; [shutdown]
     does, making accept return EINVAL immediately *)
  let wake_listener () =
    try Unix.shutdown lfd Unix.SHUTDOWN_RECEIVE
    with Unix.Unix_error _ -> ()
  in
  let on_signal _ =
    initiate_stop t;
    wake_listener ()
  in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  on_ready ();
  let rec accept_loop () =
    match Unix.accept lfd with
    | fd, _ ->
        ignore
          (Thread.create
             (fun () -> handle_conn t ~notify_shutdown:wake_listener fd)
             ());
        accept_loop ()
    | exception
        Unix.Unix_error
          ((Unix.EINTR | Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      ->
        if draining t then () else accept_loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      (try Sys.remove socket with Sys_error _ -> ());
      stop t)
    accept_loop

let serve_stdio t () =
  let wlock = Mutex.create () in
  let send = send_line stdout wlock in
  let rec loop () =
    match input_line stdin with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line -> (
        match Service.request_of_line line with
        | Error e ->
            send
              { Service.rs_id = -1;
                rs_status = Service.Failed [ Service.diag_bad_request e ];
                rs_attempts = 1; rs_cached = false; rs_ms = 0.0 };
            loop ()
        | Ok rq ->
            submit t rq send;
            if rq.Service.rq_op <> Service.Shutdown then loop ())
  in
  loop ();
  stop t

(* --- client ------------------------------------------------------------ *)

type conn = { c_fd : Unix.file_descr; c_ic : in_channel; c_oc : out_channel }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { c_fd = fd; c_ic = Unix.in_channel_of_descr fd;
    c_oc = Unix.out_channel_of_descr fd }

let call conn rq =
  output_string conn.c_oc (Service.request_line rq);
  output_char conn.c_oc '\n';
  flush conn.c_oc;
  let rec read () =
    let line = input_line conn.c_ic in
    match Service.response_of_json (Result.get_ok (Jsonx.parse line)) with
    | Ok resp when resp.Service.rs_id = rq.Service.rq_id -> resp
    | Ok _ -> read ()  (* response to a different pipelined request *)
    | Error e -> failwith ("bad response from server: " ^ e)
    | exception Invalid_argument _ ->
        failwith ("unparsable response from server: " ^ line)
  in
  read ()

let close conn =
  (try close_out_noerr conn.c_oc with _ -> ());
  try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
