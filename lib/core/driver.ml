open Bs_support
open Bs_ir
open Bs_frontend
open Bs_interp
open Bs_backend
open Bs_sim

(* The BITSPEC compilation driver (Figure 4): front-end → expander →
   CFG preparation → profile → squeeze → BITSPEC optimisations → back-end
   → binary, plus the baseline pipeline that skips the speculative
   stages.

   Two failure policies.  [Strict] is fail-fast: the first pass failure
   propagates as an exception.  [Degrade] isolates faults per function:
   when the squeezer, the verifier, or the register allocator fails on one
   function, that function falls back to its baseline (pre-squeeze) form,
   a structured diagnostic is recorded, and the rest of the module still
   ships as BITSPEC.  Module-level passes roll back to a snapshot and are
   skipped on failure.  [compile] returns the accumulated diagnostics next
   to the binary. *)

type arch = Baseline | Bitspec_arch | Thumb

type mode = Strict | Degrade

type config = {
  arch : arch;
  heuristic : Profile.heuristic;
  expander : Expander.config;
  speculate : bool;               (* RQ2: false = static narrowing only *)
  compare_elim : bool;
  bitmask_elide : bool;
  orig_first : bool;
      (* RQ5: invert the allocator's handler branch weights, giving
         CFG_orig first pick of registers *)
}

let bitspec_config =
  { arch = Bitspec_arch; heuristic = Profile.Hmax;
    expander = Expander.default; speculate = true; compare_elim = true;
    bitmask_elide = true; orig_first = false }

let baseline_config =
  { bitspec_config with arch = Baseline; speculate = false;
    compare_elim = false; bitmask_elide = false }

(** RQ9: the compact-ISA build (Thumb-like: 8 registers, 2-address ops). *)
let thumb_config = { baseline_config with arch = Thumb }

(* A complete, injective rendering of a configuration — the compiler half
   of every compile-cache key.  Every field that can change generated code
   appears; adding a config field without extending this tag would let the
   cache conflate distinct builds, so keep them in lockstep. *)
let config_tag (c : config) =
  Printf.sprintf "%s:%s:s%b:ce%b:bm%b:of%b:u%d.f%d.l%d"
    (match c.arch with
    | Baseline -> "base"
    | Bitspec_arch -> "spec"
    | Thumb -> "thumb")
    (Profile.heuristic_name c.heuristic)
    c.speculate c.compare_elim c.bitmask_elide c.orig_first
    c.expander.Expander.unroll_factor c.expander.Expander.max_fn_size
    c.expander.Expander.max_loop_size

(* The expander-only slice of [config_tag].  Two configurations with equal
   expander tags shape identical pre-squeeze modules from the same source,
   so their training runs observe identical profiles — this is the
   configuration half of a profile-sharing key (see [compile]'s
   [profile_key]). *)
let expander_tag (c : config) =
  Printf.sprintf "u%d.f%d.l%d" c.expander.Expander.unroll_factor
    c.expander.Expander.max_fn_size c.expander.Expander.max_loop_size

(* Compiler-level fault injection: force one pass to fail on one function,
   to exercise the degradation machinery (and prove in tests that a
   degraded module still runs to the right checksum).  [Fault_miscompile]
   is different in kind: instead of raising (which degradation would catch
   and repair) it silently corrupts the function's code after every pass
   and verification has run — a planted miscompile that only a
   differential oracle can see. *)
type injected_pass = Fault_squeeze | Fault_regalloc | Fault_miscompile

type pass_fault = { fault_pass : injected_pass; fault_func : string }

exception Injected_fault of string

let maybe_pass_fault pass_fault pass fname =
  match pass_fault with
  | Some pf when pf.fault_pass = pass && pf.fault_func = fname ->
      raise (Injected_fault ("injected pass fault in " ^ fname))
  | _ -> ()

(* Silently change the semantics of [fname]: flip the first binary
   operation (Add<->Sub, And<->Or, ...), or failing that negate the first
   comparison.  The mutation is type- and SSA-preserving, so the verifier
   accepts it and nothing downstream can tell — exactly the shape of bug
   the fuzzer's differential oracle exists to catch.  Division never
   appears on the right of the table, so the mutation cannot introduce a
   trap that was not already reachable. *)
let plant_miscompile (m : Ir.modul) fname =
  match Ir.find_func m fname with
  | None -> ()
  | Some f ->
      let flip_bin = function
        | Ir.Add -> Ir.Sub | Ir.Sub -> Ir.Add
        | Ir.Mul -> Ir.Add
        | Ir.Udiv -> Ir.Urem | Ir.Sdiv -> Ir.Srem
        | Ir.Urem -> Ir.And | Ir.Srem -> Ir.And
        | Ir.And -> Ir.Or | Ir.Or -> Ir.And | Ir.Xor -> Ir.Or
        | Ir.Shl -> Ir.Lshr | Ir.Lshr -> Ir.Shl | Ir.Ashr -> Ir.Shl
      in
      let flip_cmp = function
        | Ir.Eq -> Ir.Ne | Ir.Ne -> Ir.Eq
        | Ir.Ult -> Ir.Uge | Ir.Ule -> Ir.Ugt
        | Ir.Ugt -> Ir.Ule | Ir.Uge -> Ir.Ult
        | Ir.Slt -> Ir.Sge | Ir.Sle -> Ir.Sgt
        | Ir.Sgt -> Ir.Sle | Ir.Sge -> Ir.Slt
      in
      let instrs =
        List.concat_map (fun (b : Ir.block) -> b.Ir.instrs) f.Ir.blocks
      in
      let first p = List.find_opt p instrs in
      let is_bin i = match i.Ir.op with Ir.Bin _ -> true | _ -> false in
      let is_cmp i = match i.Ir.op with Ir.Cmp _ -> true | _ -> false in
      (match first is_bin with
      | Some i -> (
          match i.Ir.op with
          | Ir.Bin (op, a, b) -> i.Ir.op <- Ir.Bin (flip_bin op, a, b)
          | _ -> ())
      | None -> (
          match first is_cmp with
          | Some i -> (
              match i.Ir.op with
              | Ir.Cmp (op, a, b) -> i.Ir.op <- Ir.Cmp (flip_cmp op, a, b)
              | _ -> ())
          | None -> ()))

type compiled = {
  ir : Ir.modul;
  program : Asm.program;
  config : config;
  profile : Profile.t option;
  squeeze_stats : Squeezer.stats option;
  diagnostics : Diag.t list;
  remarks : Bs_obs.Remark.t list;
}

let describe_exn = function
  | Failure m | Invalid_argument m -> m
  | Injected_fault m -> m
  | Lexer.Error (m, _) | Parser.Error (m, _) | Typecheck.Error (m, _) -> m
  | Lower.Error m -> m
  | Verifier.Invalid m -> "verifier: " ^ m
  | Interp.Trap m -> "interpreter trap: " ^ m
  | Memimage.Layout_error d -> Diag.to_string d
  | Memimage.Fault m -> "memory fault: " ^ m
  | e -> Printexc.to_string e

(* Throughput gauges: last observed interpreter / machine-model speed,
   millions of (IR steps | instructions) per wall second.  Volatile by
   nature — wall time varies run to run — so they live in the volatile
   snapshot section. *)
let interp_mips_gauge = Bs_obs.Metrics.gauge ~volatile:true "interp_mips"
let machine_mips_gauge = Bs_obs.Metrics.gauge ~volatile:true "machine_mips"

let set_interp_mips ~steps ~wall_s =
  if wall_s > 0.0 && steps > 0 then
    Bs_obs.Metrics.set_gauge interp_mips_gauge
      (float_of_int steps /. wall_s /. 1e6)

(** Profile [m] by interpreting it on the training runs: each run is an
    (entry, args) pair; [setup] (if any) initialises workload inputs given
    the in-flight module. *)
let profile_module (m : Ir.modul) ?setup ?(interp_engine = Interp.Compiled)
    ~(train : (string * int64 list) list) () =
  let profile = Profile.create () in
  let opts =
    { Interp.default_opts with profile = Some profile; engine = interp_engine }
  in
  let t0 = Unix.gettimeofday () in
  let steps = ref 0 in
  List.iter
    (fun (entry, args) ->
      let s = Option.map (fun f -> f m) setup in
      let r, mem = Interp.run_fresh ~opts ?setup:s m ~entry ~args in
      steps := !steps + r.Interp.steps;
      (* the training run's image is dead; park its buffer for the next *)
      Memimage.recycle mem)
    train;
  set_interp_mips ~steps:!steps ~wall_s:(Unix.gettimeofday () -. t0);
  profile

(* Profiling is heuristic-independent: it runs on the pre-squeeze module,
   which only the front-end and the expander shape.  A MAX/AVG/MIN sweep
   therefore repeats the same training run three times.  Callers that can
   content-address the training input (source digest + expander tag +
   input identity) pass [profile_key] to [compile] and every
   configuration sharing that pre-squeeze form reuses one run.  Shared
   profiles are read-only downstream — the squeezer only queries them.
   Keyed by (fname, iid), which deterministic front-end + expander make
   stable across identical modules. *)
let profile_tbl : (string, Profile.t) Bs_exec.Memo.t =
  Bs_exec.Memo.create ~cap:256 ()

(* Back-end for one function: instruction selection + register
   allocation. *)
let lower_one_func ~arch ~orig_first (f : Ir.func) =
  let slices = arch = Bitspec_arch in
  let mf = Isel.lower_func ~slices f in
  let ra =
    match arch with
    | Thumb -> Regalloc.run ~regs:Thumb.thumb_regs ~orig_first mf
    | Baseline | Bitspec_arch -> Regalloc.run ~orig_first mf
  in
  (mf, ra)

let assemble_funcs (m : Ir.modul) ~arch funcs =
  (* the assembler only resolves addresses — the layout table alone is
     enough; building (zeroing, initialising) a full image here cost
     several ms per compile *)
  let layout = Memimage.layout_table m in
  let addr_of_global name =
    match Hashtbl.find_opt layout name with
    | Some a -> a
    | None -> raise (Memimage.Fault ("unknown global " ^ name))
  in
  let p = Asm.assemble ~addr_of_global funcs in
  match arch with Thumb -> Thumb.expand p | Baseline | Bitspec_arch -> p

let lower_to_machine ?(orig_first = false) (m : Ir.modul) ~arch : Asm.program =
  assemble_funcs m ~arch
    (List.map (lower_one_func ~arch ~orig_first) m.Ir.funcs)

(** [compile ~config ~source ~train] runs the full pipeline on MiniC
    source.  [train] supplies the profiling runs (ignored by the baseline
    pipeline).  In [Degrade] mode pass failures are isolated per function
    (falling back to the baseline compilation of that function) and
    reported in [diagnostics]; [Strict] (the default) fails fast. *)
let compile ?(mode = Strict) ?pass_fault ?interp_engine ?profile_key
    ~config ~source ?setup ~train () : compiled =
  let degrade = mode = Degrade in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* Per-compile remark sink: passes append here; the result carries the
     canonically-sorted list, so printing is identical at any --jobs. *)
  let remarks_acc = ref [] in
  let remark r = remarks_acc := r :: !remarks_acc in
  let m =
    ref (Bs_obs.Trace.with_span "frontend" (fun () -> Lower.compile source))
  in
  (* Module-level pass with snapshot/rollback: on failure in degrade mode
     the module is restored and the pass skipped. *)
  let guarded ~phase ~code name f =
    Bs_obs.Trace.with_span name @@ fun () ->
    if degrade then begin
      let snap = Ir.copy_module !m in
      match f () with
      | () -> true
      | exception e ->
          m := snap;
          add
            (Diag.error ~code ~phase
               (Printf.sprintf "%s failed (%s); pass skipped" name
                  (describe_exn e)));
          false
    end
    else begin f (); true end
  in
  ignore
    (guarded ~phase:Diag.Expand ~code:"BS-EXP-01" "expander" (fun () ->
         ignore (Expander.run !m config.expander);
         Verifier.verify_exn !m));
  let cfg_ok =
    guarded ~phase:Diag.Cfg_prep ~code:"BS-CFG-01" "CFG preparation"
      (fun () ->
        ignore (Cfg_prep.run !m);
        Verifier.verify_exn !m)
  in
  (* The pre-squeeze snapshot: the baseline (non-speculative) form every
     degraded function falls back to. *)
  let baseline = lazy (Ir.copy_module !m) in
  let baseline_func fname =
    match Ir.find_func (Lazy.force baseline) fname with
    | Some f -> Ir.copy_func f
    | None -> invalid_arg ("no baseline form for " ^ fname)
  in
  let restore_func fname =
    let bf = baseline_func fname in
    (!m).Ir.funcs <-
      List.map
        (fun (g : Ir.func) -> if g.Ir.fname = fname then bf else g)
        (!m).Ir.funcs
  in
  if degrade then ignore (Lazy.force baseline);
  let profile, squeeze_stats =
    if config.arch = Bitspec_arch && config.speculate && cfg_ok then begin
      let run_profile () =
        Bs_obs.Trace.with_span "profile" (fun () ->
            profile_module !m ?setup ?interp_engine ~train ())
      in
      match
        (* Sharing is only sound when the pre-squeeze module is the pure
           function of (source, expander) the key encodes — injected pass
           faults and degrade-mode rollbacks both break that, so they
           bypass the memo. *)
        match profile_key with
        | Some k when (not degrade) && pass_fault = None ->
            Bs_exec.Memo.find_or_add profile_tbl k run_profile
        | _ -> run_profile ()
      with
      | exception e when degrade ->
          add
            (Diag.error ~code:"BS-PRO-01" ~phase:Diag.Profile
               (Printf.sprintf
                  "training run failed (%s); speculation disabled"
                  (describe_exn e)));
          (None, None)
      | profile ->
          let total = Squeezer.fresh_stats () in
          List.iter
            (fun (f : Ir.func) ->
              let squeeze () =
                Bs_obs.Trace.with_span ~args:[ ("fn", f.Ir.fname) ]
                  "squeeze"
                @@ fun () ->
                maybe_pass_fault pass_fault Fault_squeeze f.Ir.fname;
                let s =
                  Squeezer.run_func ~remarks:remark !m f ~profile
                    ~heuristic:config.heuristic
                in
                Verifier.check_func f;
                total.Squeezer.squeezed <-
                  total.Squeezer.squeezed + s.Squeezer.squeezed;
                total.Squeezer.truncs <-
                  total.Squeezer.truncs + s.Squeezer.truncs;
                total.Squeezer.exts <- total.Squeezer.exts + s.Squeezer.exts;
                total.Squeezer.regions <-
                  total.Squeezer.regions + s.Squeezer.regions
              in
              if degrade then
                try squeeze ()
                with e ->
                  restore_func f.Ir.fname;
                  add
                    (Diag.error ~code:"BS-SQZ-01" ~phase:Diag.Squeeze
                       ~func:f.Ir.fname
                       (Printf.sprintf
                          "squeezing failed (%s); function degraded to \
                           the baseline pipeline"
                          (describe_exn e)))
              else squeeze ())
            (!m).Ir.funcs;
          (if config.compare_elim then
             ignore
               (guarded ~phase:Diag.Compare_elim ~code:"BS-CEL-01"
                  "compare elimination" (fun () ->
                    ignore (Compare_elim.run ~remarks:remark !m);
                    Verifier.verify_exn !m)));
          (if config.bitmask_elide then
             ignore
               (guarded ~phase:Diag.Bitmask_elide ~code:"BS-BME-01"
                  "bitmask elision" (fun () ->
                    ignore (Bitmask_elide.run ~remarks:remark !m);
                    Verifier.verify_exn !m)));
          ignore
            (guarded ~phase:Diag.Opt ~code:"BS-OPT-01" "late optimisations"
               (fun () ->
                 ignore (Bs_opt.Constfold.run !m);
                 ignore (Bs_opt.Dce.run !m)));
          (* final validation; in degrade mode an invalid function falls
             back to its baseline form instead of aborting the module *)
          if degrade then
            List.iter
              (fun (f : Ir.func) ->
                try Verifier.check_func f
                with e ->
                  restore_func f.Ir.fname;
                  add
                    (Diag.error ~code:"BS-VRF-01" ~phase:Diag.Verify
                       ~func:f.Ir.fname
                       (Printf.sprintf
                          "post-squeeze verification failed (%s); function \
                           degraded to the baseline pipeline"
                          (describe_exn e))))
              (!m).Ir.funcs
          else Verifier.verify_exn !m;
          (Some profile, Some total)
    end
    else (None, None)
  in
  (* Planted miscompile: applied after all passes and verification so the
     corruption ships in the binary (and in [ir]); the pristine lowering
     of the same source is the only witness. *)
  (match pass_fault with
  | Some { fault_pass = Fault_miscompile; fault_func } ->
      plant_miscompile !m fault_func
  | _ -> ());
  let funcs =
    Bs_obs.Trace.with_span "lower" @@ fun () ->
    List.map
      (fun (f : Ir.func) ->
        let lower f =
          maybe_pass_fault pass_fault Fault_regalloc f.Ir.fname;
          lower_one_func ~arch:config.arch ~orig_first:config.orig_first f
        in
        if degrade then
          try lower f
          with e ->
            add
              (Diag.error ~code:"BS-RA-01" ~phase:Diag.Regalloc
                 ~func:f.Ir.fname
                 (Printf.sprintf
                    "back-end failed (%s); function degraded to the \
                     baseline pipeline"
                    (describe_exn e)));
            let bf = baseline_func f.Ir.fname in
            (!m).Ir.funcs <-
              List.map
                (fun (g : Ir.func) ->
                  if g.Ir.fname = f.Ir.fname then bf else g)
                (!m).Ir.funcs;
            (* the baseline form must lower; if it cannot, the failure is
               not degradable and propagates (try_compile catches it) *)
            lower_one_func ~arch:config.arch ~orig_first:config.orig_first
              bf
        else lower f)
      (!m).Ir.funcs
  in
  let program =
    Bs_obs.Trace.with_span "assemble" (fun () ->
        assemble_funcs !m ~arch:config.arch funcs)
  in
  { ir = !m; program; config; profile; squeeze_stats;
    diagnostics = List.rev !diags;
    remarks = List.sort Bs_obs.Remark.compare !remarks_acc }

(** Total compilation: never raises.  Degrade-mode [compile], with any
    escaping exception (front-end errors included) converted into
    diagnostics. *)
let try_compile ?pass_fault ?interp_engine ~config ~source ?setup ~train () :
    (compiled, Diag.t list) result =
  match
    compile ~mode:Degrade ?pass_fault ?interp_engine ~config ~source ?setup
      ~train ()
  with
  | c -> Ok c
  | exception e ->
      let phase, line =
        match e with
        | Lexer.Error (_, l) | Parser.Error (_, l) -> (Diag.Parse, Some l)
        | Typecheck.Error (_, l) -> (Diag.Typecheck, Some l)
        | Lower.Error _ -> (Diag.Lowering, None)
        | _ -> (Diag.Other, None)
      in
      Error
        [ Diag.error ?line ~code:"BS-FE-01" ~phase (describe_exn e) ]

(** Run the compiled binary on the machine model.  [fault] injects a
    single bit flip (see {!Bs_sim.Machine.fault}); [power] runs under
    injected power failures with checkpoint/restore
    (see {!Bs_sim.Machine.power}); [engine] picks the dispatch engine
    (results are identical across engines; [Jit] is the default). *)
let run_machine ?setup ?(fuel = 1_000_000_000) ?fault ?power
    ?(engine = Machine.Jit) (c : compiled) ~entry ~args =
  let mem = Memimage.create c.ir in
  (match setup with Some f -> f mem | None -> ());
  let mode =
    if c.config.arch = Bitspec_arch then Bs_isa.Isa.Bitspec
    else Bs_isa.Isa.Classic
  in
  let r =
    Machine.run ~config:{ Machine.mode; fuel; fault; power; engine }
      c.program mem ~entry ~args
  in
  (* the result captures everything observable; the image is dead, so its
     buffer can serve the next run *)
  Memimage.recycle mem;
  let mips = Bs_sim.Counters.simulated_mips r.Machine.ctr in
  if mips > 0.0 then Bs_obs.Metrics.set_gauge machine_mips_gauge mips;
  r

(** Run the reference interpreter on the same IR (for differential
    checks). *)
let run_reference ?setup ?(interp_engine = Interp.Compiled) (c : compiled)
    ~entry ~args =
  let opts = { Interp.default_opts with engine = interp_engine } in
  let t0 = Unix.gettimeofday () in
  let r, mem = Interp.run_fresh ~opts ?setup c.ir ~entry ~args in
  set_interp_mips ~steps:r.Interp.steps ~wall_s:(Unix.gettimeofday () -. t0);
  Memimage.recycle mem;
  r
