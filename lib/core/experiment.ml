open Bs_interp
open Bs_sim
open Bs_energy
open Bs_workloads

(* The experiment harness: compile a workload under a configuration,
   simulate it on its test input, and collect every metric the paper's
   figures report.  All relative numbers are against the BASELINE build of
   the same workload, as in §4. *)

type metrics = {
  checksum : int64;
  instrs : int;
  cycles : int;
  misspecs : int;
  energy : Energy.breakdown;
  total_energy : float;
  epi : float;
  spill_loads : int;
  spill_stores : int;
  copies : int;
  reg_accesses_32 : int;
  reg_accesses_8 : int;
  icache_accesses : int;
  dcache_accesses : int;
}

let metrics_of_run (r : Machine.result) : metrics =
  let b = Energy.of_result r in
  let c = r.Machine.ctr in
  { checksum = r.Machine.r0;
    instrs = c.Counters.instrs;
    cycles = c.Counters.cycles;
    misspecs = c.Counters.misspecs;
    energy = b;
    total_energy = Energy.total b;
    epi = Energy.epi b c;
    spill_loads = c.Counters.spill_loads;
    spill_stores = c.Counters.spill_stores;
    copies = c.Counters.copies;
    reg_accesses_32 = c.Counters.reg_read32 + c.Counters.reg_write32;
    reg_accesses_8 = c.Counters.reg_read8 + c.Counters.reg_write8;
    icache_accesses = Cache.accesses r.Machine.icache;
    dcache_accesses = Cache.accesses r.Machine.dcache }

(** [compile_workload config w] compiles [w] under [config], profiling on
    the train input (or [profile_input] when given — RQ6 swaps in the
    alternate input here).

    Compilations are routed through the process-wide {!Compile_cache}:
    the key is the source digest, the full configuration tag, and the
    profile input's identity.  The train input is content-known (it
    belongs to the workload), so plain compiles are cached under the
    label ["train"].  An anonymous [profile_input] closure has no
    content address — callers that reuse one (fig16's image sweep) pass
    [profile_tag] to opt in; without a tag the compile runs uncached. *)
let compile_workload ?(origin : Compile_cache.origin ref option)
    ?(profile_input : Workload.input option)
    ?(profile_tag : string option) ?interp_engine (config : Driver.config)
    (w : Workload.t) : Driver.compiled =
  Bs_obs.Trace.with_span
    ~args:[ ("workload", w.Workload.name) ]
    "experiment:compile"
  @@ fun () ->
  let pi = Option.value profile_input ~default:w.train in
  let label =
    match (profile_tag, profile_input) with
    | Some t, _ -> Some t
    | None, None -> Some "train"
    | None, Some _ -> None
  in
  (* Profiling sees only the pre-squeeze module, so its identity is the
     source, the expander tag, the training run and the engine — NOT the
     heuristic or the squeeze flags.  A content-addressed input (same
     [label] basis as the compile key) lets Driver share the training
     run across a MAX/AVG/MIN sweep. *)
  let profile_key =
    Option.map
      (fun l ->
        Printf.sprintf "%s|%s|%s|%s:%s@%s|%s" w.Workload.name
          (Compile_cache.source_key w.Workload.source)
          (Driver.expander_tag config) l w.entry
          (String.concat "," (List.map Int64.to_string pi.Workload.args))
          (match interp_engine with Some Interp.Tree -> "t" | _ -> "c"))
      label
  in
  let thunk () =
    Driver.compile ?interp_engine ?profile_key ~config ~source:w.source
      ~setup:pi.Workload.setup
      ~train:[ (w.entry, pi.Workload.args) ] ()
  in
  match label with
  | None ->
      (match origin with Some r -> r := Compile_cache.Fresh | None -> ());
      thunk ()
  | Some label ->
      let key =
        Printf.sprintf "%s|%s|%s|%s@%s" w.Workload.name
          (Compile_cache.source_key w.Workload.source)
          (Driver.config_tag config)
          label
          (String.concat "," (List.map Int64.to_string pi.Workload.args))
      in
      Compile_cache.compile ?origin ~key thunk

(** [run_compiled c w ~input] simulates and collects metrics. *)
let run_compiled (c : Driver.compiled) (w : Workload.t)
    ~(input : Workload.input) : metrics =
  Bs_obs.Trace.with_span
    ~args:[ ("workload", w.Workload.name) ]
    "experiment:simulate"
  @@ fun () ->
  let r =
    Driver.run_machine ~setup:(input.Workload.setup c.Driver.ir) c
      ~entry:w.entry ~args:input.Workload.args
  in
  metrics_of_run r

(* Attribution: fold a run's per-pc misspeculation counts into
   per-source-site rows through the program's srcmap.  Rows come out
   most-frequent first (ties by site) and the counts sum to
   [r.ctr.misspecs]; pcs the assembler could not attribute (none in
   practice — every misspeculating insn carries a site) fall back to a
   synthetic "pc:N" row rather than being dropped. *)
let misspec_sites (c : Driver.compiled) (r : Machine.result) :
    ((string * string * int) * int) list =
  let srcmap = c.Driver.program.Bs_backend.Asm.srcmap in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (pc, n) ->
      let key =
        match if pc < Array.length srcmap then srcmap.(pc) else None with
        | Some s ->
            (s.Bs_backend.Mir.s_fn, s.Bs_backend.Mir.s_var,
             s.Bs_backend.Mir.s_line)
        | None -> ("?", Printf.sprintf "pc:%d" pc, 0)
      in
      match Hashtbl.find_opt tbl key with
      | Some m -> Hashtbl.replace tbl key (m + n)
      | None -> Hashtbl.add tbl key n)
    r.Machine.misspec_pcs;
  List.sort
    (fun (ka, na) (kb, nb) ->
      let cn = Int.compare nb na in
      if cn <> 0 then cn else compare ka kb)
    (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])

let pp_misspec_sites ppf sites =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 sites in
  Format.fprintf ppf "misspeculation sites (total %d):@." total;
  List.iter
    (fun ((fn, var, line), n) ->
      let where = if line > 0 then Printf.sprintf "%s:%d" fn line else fn in
      Format.fprintf ppf "  %8d  %s (%s)@." n var where)
    sites

(* The test-input simulation of a plain (train-profiled) build is the
   workhorse run: the figure sections measure it and the misspeculation
   report re-attributes the very same execution.  Memoize the raw
   [Machine.result] per (config, source) so each is simulated once per
   process; consumers only read the result (counters, misspec pcs), and
   simulation is deterministic, so sharing is unobservable except in
   time.  Runs on custom inputs ([profile_input]/[run_compiled]) have no
   content address and stay uncached. *)
let test_run_tbl : (string, Machine.result) Bs_exec.Memo.t =
  Bs_exec.Memo.create ~cap:256 ()

(** [run_test config w] compiles (via the compile cache) and simulates
    [w]'s test input, memoized per process. *)
let run_test (config : Driver.config) (w : Workload.t) :
    Driver.compiled * Machine.result =
  let c = compile_workload config w in
  let key =
    Driver.config_tag config ^ "|" ^ w.Workload.name ^ "|"
    ^ Compile_cache.source_key w.Workload.source
  in
  let r =
    Bs_exec.Memo.find_or_add test_run_tbl key (fun () ->
        Bs_obs.Trace.with_span
          ~args:[ ("workload", w.Workload.name) ]
          "experiment:simulate"
        @@ fun () ->
        Driver.run_machine
          ~setup:(w.test.Workload.setup c.Driver.ir)
          c ~entry:w.entry ~args:w.test.Workload.args)
  in
  (c, r)

(** One-call experiment: compile under [config] and measure on the test
    input. *)
let run ?profile_input ?profile_tag (config : Driver.config) (w : Workload.t)
    : metrics =
  match (profile_input, profile_tag) with
  | None, None ->
      let _, r = run_test config w in
      metrics_of_run r
  | _ ->
      let c = compile_workload ?profile_input ?profile_tag config w in
      run_compiled c w ~input:w.test

(* The reference checksum only depends on the workload's source and test
   input, so it too is computed once per process (campaigns and the
   bench subcommand both ask for it). *)
let reference_tbl : (string, int64) Bs_exec.Memo.t =
  Bs_exec.Memo.create ~cap:256 ()

(** Reference-interpreter checksum on the test input (correctness oracle:
    any simulated build must reproduce it).  The engine participates in
    the memo key: the checksums are engine-invariant by construction,
    but a caller that asked for [Tree] (the injection campaigns) must
    not be served a value another caller computed under [Compiled]. *)
let reference_checksum ?(interp_engine = Interp.Compiled) (w : Workload.t) :
    int64 =
  let etag = match interp_engine with Interp.Tree -> "t" | Interp.Compiled -> "c" in
  Bs_exec.Memo.find_or_add reference_tbl
    (w.Workload.name ^ "|"
    ^ Compile_cache.source_key w.Workload.source
    ^ "|" ^ etag)
    (fun () ->
      let m = Bs_frontend.Lower.compile w.source in
      let opts = { Interp.default_opts with engine = interp_engine } in
      let r, _ =
        Interp.run_fresh ~opts ~setup:(w.test.Workload.setup m) m
          ~entry:w.entry ~args:w.test.Workload.args
      in
      match r.Interp.ret with
      | Some v -> Int64.logand v 0xFFFFFFFFL
      | None -> 0L)

(** Relative value helper: [rel v base] = v / base. *)
let rel v base = if base = 0.0 then 1.0 else v /. base
