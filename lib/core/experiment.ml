open Bs_interp
open Bs_sim
open Bs_energy
open Bs_workloads

(* The experiment harness: compile a workload under a configuration,
   simulate it on its test input, and collect every metric the paper's
   figures report.  All relative numbers are against the BASELINE build of
   the same workload, as in §4. *)

type metrics = {
  checksum : int64;
  instrs : int;
  cycles : int;
  misspecs : int;
  energy : Energy.breakdown;
  total_energy : float;
  epi : float;
  spill_loads : int;
  spill_stores : int;
  copies : int;
  reg_accesses_32 : int;
  reg_accesses_8 : int;
  icache_accesses : int;
  dcache_accesses : int;
}

let metrics_of_run (r : Machine.result) : metrics =
  let b = Energy.of_result r in
  let c = r.Machine.ctr in
  { checksum = r.Machine.r0;
    instrs = c.Counters.instrs;
    cycles = c.Counters.cycles;
    misspecs = c.Counters.misspecs;
    energy = b;
    total_energy = Energy.total b;
    epi = Energy.epi b c;
    spill_loads = c.Counters.spill_loads;
    spill_stores = c.Counters.spill_stores;
    copies = c.Counters.copies;
    reg_accesses_32 = c.Counters.reg_read32 + c.Counters.reg_write32;
    reg_accesses_8 = c.Counters.reg_read8 + c.Counters.reg_write8;
    icache_accesses = Cache.accesses r.Machine.icache;
    dcache_accesses = Cache.accesses r.Machine.dcache }

(** [compile_workload config w] compiles [w] under [config], profiling on
    the train input (or [profile_input] when given — RQ6 swaps in the
    alternate input here).

    Compilations are routed through the process-wide {!Compile_cache}:
    the key is the source digest, the full configuration tag, and the
    profile input's identity.  The train input is content-known (it
    belongs to the workload), so plain compiles are cached under the
    label ["train"].  An anonymous [profile_input] closure has no
    content address — callers that reuse one (fig16's image sweep) pass
    [profile_tag] to opt in; without a tag the compile runs uncached. *)
let compile_workload ?(origin : Compile_cache.origin ref option)
    ?(profile_input : Workload.input option)
    ?(profile_tag : string option) (config : Driver.config) (w : Workload.t)
    : Driver.compiled =
  Bs_obs.Trace.with_span
    ~args:[ ("workload", w.Workload.name) ]
    "experiment:compile"
  @@ fun () ->
  let pi = Option.value profile_input ~default:w.train in
  let thunk () =
    Driver.compile ~config ~source:w.source ~setup:pi.Workload.setup
      ~train:[ (w.entry, pi.Workload.args) ] ()
  in
  let label =
    match (profile_tag, profile_input) with
    | Some t, _ -> Some t
    | None, None -> Some "train"
    | None, Some _ -> None
  in
  match label with
  | None ->
      (match origin with Some r -> r := Compile_cache.Fresh | None -> ());
      thunk ()
  | Some label ->
      let key =
        Printf.sprintf "%s|%s|%s|%s@%s" w.Workload.name
          (Compile_cache.source_key w.Workload.source)
          (Driver.config_tag config)
          label
          (String.concat "," (List.map Int64.to_string pi.Workload.args))
      in
      Compile_cache.compile ?origin ~key thunk

(** [run_compiled c w ~input] simulates and collects metrics. *)
let run_compiled (c : Driver.compiled) (w : Workload.t)
    ~(input : Workload.input) : metrics =
  Bs_obs.Trace.with_span
    ~args:[ ("workload", w.Workload.name) ]
    "experiment:simulate"
  @@ fun () ->
  let r =
    Driver.run_machine ~setup:(input.Workload.setup c.Driver.ir) c
      ~entry:w.entry ~args:input.Workload.args
  in
  metrics_of_run r

(* Attribution: fold a run's per-pc misspeculation counts into
   per-source-site rows through the program's srcmap.  Rows come out
   most-frequent first (ties by site) and the counts sum to
   [r.ctr.misspecs]; pcs the assembler could not attribute (none in
   practice — every misspeculating insn carries a site) fall back to a
   synthetic "pc:N" row rather than being dropped. *)
let misspec_sites (c : Driver.compiled) (r : Machine.result) :
    ((string * string * int) * int) list =
  let srcmap = c.Driver.program.Bs_backend.Asm.srcmap in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (pc, n) ->
      let key =
        match if pc < Array.length srcmap then srcmap.(pc) else None with
        | Some s ->
            (s.Bs_backend.Mir.s_fn, s.Bs_backend.Mir.s_var,
             s.Bs_backend.Mir.s_line)
        | None -> ("?", Printf.sprintf "pc:%d" pc, 0)
      in
      match Hashtbl.find_opt tbl key with
      | Some m -> Hashtbl.replace tbl key (m + n)
      | None -> Hashtbl.add tbl key n)
    r.Machine.misspec_pcs;
  List.sort
    (fun (ka, na) (kb, nb) ->
      let cn = Int.compare nb na in
      if cn <> 0 then cn else compare ka kb)
    (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])

let pp_misspec_sites ppf sites =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 sites in
  Format.fprintf ppf "misspeculation sites (total %d):@." total;
  List.iter
    (fun ((fn, var, line), n) ->
      let where = if line > 0 then Printf.sprintf "%s:%d" fn line else fn in
      Format.fprintf ppf "  %8d  %s (%s)@." n var where)
    sites

(** One-call experiment: compile under [config] and measure on the test
    input. *)
let run ?profile_input ?profile_tag (config : Driver.config) (w : Workload.t)
    : metrics =
  let c = compile_workload ?profile_input ?profile_tag config w in
  run_compiled c w ~input:w.test

(* The reference checksum only depends on the workload's source and test
   input, so it too is computed once per process (campaigns and the
   bench subcommand both ask for it). *)
let reference_tbl : (string, int64) Bs_exec.Memo.t =
  Bs_exec.Memo.create ~cap:256 ()

(** Reference-interpreter checksum on the test input (correctness oracle:
    any simulated build must reproduce it). *)
let reference_checksum (w : Workload.t) : int64 =
  Bs_exec.Memo.find_or_add reference_tbl
    (w.Workload.name ^ "|" ^ Compile_cache.source_key w.Workload.source)
    (fun () ->
      let m = Bs_frontend.Lower.compile w.source in
      let r, _ =
        Interp.run_fresh ~setup:(w.test.Workload.setup m) m ~entry:w.entry
          ~args:w.test.Workload.args
      in
      match r.Interp.ret with
      | Some v -> Int64.logand v 0xFFFFFFFFL
      | None -> 0L)

(** Relative value helper: [rel v base] = v / base. *)
let rel v base = if base = 0.0 then 1.0 else v /. base
