(** The squeezer (§3.2.3): profile-guided speculative bitwidth reduction.

    Expects modules already put through {!Cfg_prep}.  Duplicates each
    function's CFG into CFG_spec/CFG_orig, retypes squeezable variables at
    the 8-bit slice width, inserts speculative truncates and extensions at
    the boundaries, and builds one speculative region + misspeculation
    handler per block that can misspeculate, with equation (8)'s φ-merge
    materialised by SSA repair. *)

type stats = {
  mutable squeezed : int;  (** instructions re-typed to the slice width *)
  mutable truncs : int;    (** speculative truncates inserted *)
  mutable exts : int;      (** zero-extensions inserted *)
  mutable regions : int;   (** speculative regions created *)
}

val fresh_stats : unit -> stats

val squeezable :
  Bs_interp.Profile.t ->
  Bs_interp.Profile.heuristic ->
  Bs_ir.Ir.func ->
  Bs_ir.Ir.block ->
  (int -> bool) ->
  Bs_ir.Ir.instr ->
  bool
(** The Squeezable? relation of equation (3): a speculative machine
    operation exists, the block is idempotent, and the heuristic's targets
    for the variable and its operands fit the slice. *)

val run_func :
  ?remarks:Bs_obs.Remark.sink ->
  Bs_ir.Ir.modul ->
  Bs_ir.Ir.func ->
  profile:Bs_interp.Profile.t ->
  heuristic:Bs_interp.Profile.heuristic ->
  stats
(** Squeeze one function in place.  [remarks] receives one record per
    variable squeezed and per candidate the cost model rejected. *)

val run :
  ?remarks:Bs_obs.Remark.sink ->
  Bs_ir.Ir.modul ->
  profile:Bs_interp.Profile.t ->
  heuristic:Bs_interp.Profile.heuristic ->
  stats
(** Squeeze every function of the module; returns aggregate statistics. *)
