(* Content-addressed on-disk store with atomic writes and quarantine.
   See the interface for the durability discipline.

   On-disk layout:

     root/
       ab/abcdef...        committed entries (md5 of the key, sharded
                           by the first byte to keep directories small)
       tmp-PID-N-abcdef... in-flight writes (unique per writer; swept
                           on open)
       quarantine/...      entries that failed verification

   Entry format: a one-line ASCII header, the key, then the payload.

     BSDC1 <keylen> <payloadlen> <md5hex(payload)>\n
     <key>\n
     <payload bytes>

   The header is verified field by field before the payload is handed
   back; in particular the payload digest runs before any caller
   unmarshals it. *)

let magic = "BSDC1"

type stats = {
  hits : int;
  misses : int;
  writes : int;
  quarantined : int;
  swept_tmp : int;
}

type t = {
  root : string;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable quarantined : int;
  swept : int;
}

let tmp_counter = Atomic.make 0

(* Disk-tier cache traffic, aggregated across all open stores into the
   global registry (per-instance accounting stays in [stats]).  The
   disk sits under the single-flight memory tier, so for a fixed
   workload and a fresh cache dir the totals are --jobs-invariant:
   exactly one disk probe per memory miss. *)
let m_hit =
  Bs_obs.Metrics.counter "cache_events_total"
    ~labels:[ ("tier", "disk"); ("event", "hit") ]

let m_miss =
  Bs_obs.Metrics.counter "cache_events_total"
    ~labels:[ ("tier", "disk"); ("event", "miss") ]

let m_write =
  Bs_obs.Metrics.counter "cache_events_total"
    ~labels:[ ("tier", "disk"); ("event", "write") ]

let m_quarantine =
  Bs_obs.Metrics.counter "cache_events_total"
    ~labels:[ ("tier", "disk"); ("event", "quarantine") ]

let mkdir_p path =
  let rec go p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let is_tmp name = String.length name >= 4 && String.sub name 0 4 = "tmp-"

let open_dir root =
  mkdir_p root;
  mkdir_p (Filename.concat root "quarantine");
  (* sweep leftovers from writers that died mid-store: they were never
     renamed, so they were never visible — plain garbage *)
  let swept = ref 0 in
  Array.iter
    (fun name ->
      if is_tmp name then begin
        (try Sys.remove (Filename.concat root name) with Sys_error _ -> ());
        incr swept
      end)
    (Sys.readdir root);
  { root; lock = Mutex.create (); hits = 0; misses = 0; writes = 0;
    quarantined = 0; swept = !swept }

let dir t = t.root

let name_of_key key = Digest.to_hex (Digest.string key)

let key_path t ~key =
  let name = name_of_key key in
  Filename.concat (Filename.concat t.root (String.sub name 0 2)) name

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

(* Move a bad entry aside (keeping it for post-mortem) instead of
   deleting or crashing.  Unique suffix: two processes quarantining the
   same entry must not collide. *)
let quarantine t path =
  let uniq =
    Printf.sprintf "%s-%d-%d" (Filename.basename path) (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let dest = Filename.concat (Filename.concat t.root "quarantine") uniq in
  (try Sys.rename path dest
   with Sys_error _ -> (try Sys.remove path with Sys_error _ -> ()));
  Bs_obs.Metrics.inc m_quarantine;
  bump t (fun t -> t.quarantined <- t.quarantined + 1)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse and verify an entry; any failure is reported as [None] and the
   reason discarded — the caller's recovery (recompile) is the same
   whatever went wrong. *)
let verify ~key contents =
  match String.index_opt contents '\n' with
  | None -> None
  | Some eol -> (
      let header = String.sub contents 0 eol in
      match String.split_on_char ' ' header with
      | [ m; klen; plen; digest ]
        when m = magic ->
          (match (int_of_string_opt klen, int_of_string_opt plen) with
          | Some klen, Some plen
            when klen >= 0 && plen >= 0
                 && String.length contents = eol + 1 + klen + 1 + plen ->
              let k = String.sub contents (eol + 1) klen in
              let payload = String.sub contents (eol + 1 + klen + 1) plen in
              if k = key && Digest.to_hex (Digest.string payload) = digest
              then Some (Bytes.of_string payload)
              else None
          | _ -> None)
      | _ -> None)

let load t ~key =
  let path = key_path t ~key in
  if not (Sys.file_exists path) then begin
    Bs_obs.Metrics.inc m_miss;
    bump t (fun t -> t.misses <- t.misses + 1);
    None
  end
  else
    match verify ~key (read_file path) with
    | Some payload ->
        Bs_obs.Metrics.inc m_hit;
        bump t (fun t -> t.hits <- t.hits + 1);
        Some payload
    | None | (exception Sys_error _) ->
        (* unreadable or failed verification: quarantine and miss *)
        quarantine t path;
        Bs_obs.Metrics.inc m_miss;
        bump t (fun t -> t.misses <- t.misses + 1);
        None

let store t ~key payload =
  let path = key_path t ~key in
  mkdir_p (Filename.dirname path);
  let tmp =
    Filename.concat t.root
      (Printf.sprintf "tmp-%d-%d-%s" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1)
         (Filename.basename path))
  in
  let header =
    Printf.sprintf "%s %d %d %s\n" magic (String.length key)
      (Bytes.length payload)
      (Digest.to_hex (Digest.bytes payload))
  in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let write_all s =
        let b = Bytes.of_string s in
        let rec go off =
          if off < Bytes.length b then
            go (off + Unix.write fd b off (Bytes.length b - off))
        in
        go 0
      in
      write_all header;
      write_all key;
      write_all "\n";
      write_all (Bytes.to_string payload);
      (* make the bytes durable before the entry becomes visible *)
      Unix.fsync fd);
  Sys.rename tmp path;
  Bs_obs.Metrics.inc m_write;
  bump t (fun t -> t.writes <- t.writes + 1)

let invalidate t ~key =
  let path = key_path t ~key in
  if Sys.file_exists path then quarantine t path

let count_dir path pred =
  if Sys.file_exists path && Sys.is_directory path then
    Array.fold_left
      (fun acc name -> if pred name then acc + 1 else acc)
      0 (Sys.readdir path)
  else 0

let entries t =
  Array.fold_left
    (fun acc shard ->
      let p = Filename.concat t.root shard in
      if String.length shard = 2 && Sys.is_directory p then
        acc + count_dir p (fun n -> not (is_tmp n))
      else acc)
    0 (Sys.readdir t.root)

let quarantine_count t =
  count_dir (Filename.concat t.root "quarantine") (fun _ -> true)

let stats t =
  Mutex.lock t.lock;
  let s =
    { hits = t.hits; misses = t.misses; writes = t.writes;
      quarantined = t.quarantined; swept_tmp = t.swept }
  in
  Mutex.unlock t.lock;
  s
