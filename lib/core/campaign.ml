open Bs_support
open Bs_interp
open Bs_sim
open Bs_workloads

(* Fault-injection campaigns over built-in workloads.

   A campaign compiles the workload under a configuration, establishes the
   fault-free ("golden") machine run and the reference interpreter's
   checksum (the differential oracle, via Experiment), then replays the
   test input N times, each with one seeded single-bit flip, and tabulates
   Faultinject's masked / detected / trapped / sdc / hung classification.
   Everything downstream of the seed is deterministic. *)

type t = {
  workload : string;
  arch : Driver.arch;
  seed : int64;
  golden_instrs : int;
  golden_misspecs : int;
  expected : int64;            (* the reference interpreter's checksum *)
  trials : Faultinject.trial list;
}

let arch_name = function
  | Driver.Baseline -> "baseline"
  | Driver.Bitspec_arch -> "bitspec"
  | Driver.Thumb -> "thumb"

let run ?(config = Driver.bitspec_config) ?(jobs = 1) ~trials ~seed
    (w : Workload.t) : t =
  let c = Experiment.compile_workload config w in
  let input = w.Workload.test in
  let mem () =
    let mem = Memimage.create c.Driver.ir in
    input.Workload.setup c.Driver.ir mem;
    mem
  in
  let mode =
    if config.Driver.arch = Driver.Bitspec_arch then Bs_isa.Isa.Bitspec
    else Bs_isa.Isa.Classic
  in
  let golden =
    Machine.run ~config:{ Machine.mode; fuel = 1_000_000_000; fault = None }
      c.Driver.program (mem ()) ~entry:w.Workload.entry
      ~args:input.Workload.args
  in
  let expected = Experiment.reference_checksum w in
  let golden_instrs = golden.Machine.ctr.Counters.instrs in
  let golden_misspecs = golden.Machine.ctr.Counters.misspecs in
  (* a hung run is one that outlives the golden instruction count by 4x *)
  let fuel = (golden_instrs * 4) + 10_000 in
  let sample = mem () in
  let mem_lo = Memimage.globals_base
  and mem_hi = Memimage.size sample - 1 in
  (* Split the seed stream up front: the whole fault list is drawn from
     the rng sequentially, then the (independent, rng-free) trials fan
     out over the pool.  The trial list is identical whatever [jobs]. *)
  let rng = Rng.create seed in
  let faults =
    Array.init trials (fun _ ->
        Faultinject.gen_fault rng ~max_instr:golden_instrs ~mem_lo ~mem_hi)
  in
  let results =
    Bs_obs.Trace.with_span
      ~args:[ ("workload", w.Workload.name) ]
      "campaign:fanout"
    @@ fun () ->
    Array.to_list
      (Bs_exec.Pool.map ~jobs
         (fun fault ->
           Faultinject.run_trial ~mode ~fuel ~program:c.Driver.program ~mem
             ~entry:w.Workload.entry ~args:input.Workload.args ~expected
             ~golden_misspecs fault)
         faults)
  in
  { workload = w.Workload.name; arch = config.Driver.arch; seed;
    golden_instrs; golden_misspecs; expected; trials = results }

let report ?(max_examples = 8) (t : t) : string =
  let b = Buffer.create 1024 in
  let n = List.length t.trials in
  Buffer.add_string b
    (Printf.sprintf
       "fault-injection campaign: %s (%s), %d trials, seed %Ld\n"
       t.workload (arch_name t.arch) n t.seed);
  Buffer.add_string b
    (Printf.sprintf
       "golden run: %d instrs, %d misspecs, checksum %Ld\n\n"
       t.golden_instrs t.golden_misspecs t.expected);
  let s = Faultinject.summarize t.trials in
  Buffer.add_string b (Printf.sprintf "%-10s %6s %7s\n" "verdict" "count" "%");
  List.iter
    (fun (name, count) ->
      Buffer.add_string b
        (Printf.sprintf "%-10s %6d %6.1f%%\n" name count
           (if n = 0 then 0.0 else 100.0 *. float_of_int count /. float_of_int n)))
    (Faultinject.summary_rows s);
  let detected =
    List.filter
      (fun (tr : Faultinject.trial) ->
        match tr.Faultinject.verdict with
        | Faultinject.Detected _ -> true
        | _ -> false)
      t.trials
  in
  if detected <> [] then begin
    Buffer.add_string b
      "\nfaults caught by the misspeculation hardware (detected):\n";
    List.iteri
      (fun i tr ->
        if i < max_examples then
          Buffer.add_string b ("  " ^ Faultinject.describe_trial tr ^ "\n"))
      detected;
    if List.length detected > max_examples then
      Buffer.add_string b
        (Printf.sprintf "  ... and %d more\n"
           (List.length detected - max_examples))
  end;
  Buffer.contents b
