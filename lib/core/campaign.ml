open Bs_support
open Bs_interp
open Bs_sim
open Bs_workloads

(* Fault-injection campaigns over built-in workloads.

   A campaign compiles the workload under a configuration, establishes the
   fault-free ("golden") machine run and the reference interpreter's
   checksum (the differential oracle, via Experiment), then replays the
   test input N times, each with one seeded single-bit flip, and tabulates
   Faultinject's masked / detected / trapped / sdc / hung classification.
   Everything downstream of the seed is deterministic. *)

type t = {
  workload : string;
  arch : Driver.arch;
  seed : int64;
  golden_instrs : int;
  golden_misspecs : int;
  expected : int64;            (* the reference interpreter's checksum *)
  trials : Faultinject.trial list;
}

let arch_name = function
  | Driver.Baseline -> "baseline"
  | Driver.Bitspec_arch -> "bitspec"
  | Driver.Thumb -> "thumb"

(* The sharded fan-out engine shared by every campaign flavour.  The
   work array is pre-drawn (all randomness consumed before any trial
   runs), chunked into fixed-size shards, and mapped over the pool;
   shards come back in submission order and concatenate to exactly the
   sequential result, so a campaign is byte-identical at any [jobs].
   Sharding amortises the pool's per-task cost over 32 trials. *)
let shard_size = 32

let sharded ~jobs f (work : 'a array) : 'b array =
  let n = Array.length work in
  if n = 0 then [||]
  else begin
    let nshards = (n + shard_size - 1) / shard_size in
    let shards =
      Array.init nshards (fun s ->
          let lo = s * shard_size in
          Array.sub work lo (min n (lo + shard_size) - lo))
    in
    Array.concat
      (Array.to_list (Bs_exec.Pool.map ~jobs (Array.map f) shards))
  end

let run ?(config = Driver.bitspec_config) ?(jobs = 1) ~trials ~seed
    (w : Workload.t) : t =
  let c = Experiment.compile_workload config w in
  let input = w.Workload.test in
  let mem () =
    let mem = Memimage.create c.Driver.ir in
    input.Workload.setup c.Driver.ir mem;
    mem
  in
  let mode =
    if config.Driver.arch = Driver.Bitspec_arch then Bs_isa.Isa.Bitspec
    else Bs_isa.Isa.Classic
  in
  let golden =
    Machine.run
      ~config:
        { Machine.mode; fuel = 1_000_000_000; fault = None; power = None;
          engine = Machine.Jit }
      c.Driver.program (mem ()) ~entry:w.Workload.entry
      ~args:input.Workload.args
  in
  (* injected-fault oracles stay on the tree engine: no compilation
     layer of their own between the IR and the reference checksum *)
  let expected = Experiment.reference_checksum ~interp_engine:Interp.Tree w in
  let golden_instrs = golden.Machine.ctr.Counters.instrs in
  let golden_misspecs = golden.Machine.ctr.Counters.misspecs in
  (* a hung run is one that outlives the golden instruction count by 4x
     (the budget formula is shared with the fuzz oracle) *)
  let fuel = Outcome.hang_fuel ~steps:golden_instrs ~factor:4 in
  let sample = mem () in
  let mem_lo = Memimage.globals_base
  and mem_hi = Memimage.size sample - 1 in
  (* Split the seed stream up front: the whole fault list is drawn from
     the rng sequentially, then the (independent, rng-free) trials fan
     out over the pool.  The trial list is identical whatever [jobs]. *)
  let rng = Rng.create seed in
  let faults =
    Array.init trials (fun _ ->
        Faultinject.gen_fault rng ~max_instr:golden_instrs ~mem_lo ~mem_hi)
  in
  let results =
    Bs_obs.Trace.with_span
      ~args:[ ("workload", w.Workload.name) ]
      "campaign:fanout"
    @@ fun () ->
    Array.to_list
      (sharded ~jobs
         (fun fault ->
           Faultinject.run_trial ~mode ~fuel ~program:c.Driver.program ~mem
             ~entry:w.Workload.entry ~args:input.Workload.args ~expected
             ~golden_misspecs fault)
         faults)
  in
  { workload = w.Workload.name; arch = config.Driver.arch; seed;
    golden_instrs; golden_misspecs; expected; trials = results }

let report ?(max_examples = 8) (t : t) : string =
  let b = Buffer.create 1024 in
  let n = List.length t.trials in
  Buffer.add_string b
    (Printf.sprintf
       "fault-injection campaign: %s (%s), %d trials, seed %Ld\n"
       t.workload (arch_name t.arch) n t.seed);
  Buffer.add_string b
    (Printf.sprintf
       "golden run: %d instrs, %d misspecs, checksum %Ld\n\n"
       t.golden_instrs t.golden_misspecs t.expected);
  let s = Faultinject.summarize t.trials in
  Buffer.add_string b (Printf.sprintf "%-10s %6s %7s\n" "verdict" "count" "%");
  List.iter
    (fun (name, count) ->
      Buffer.add_string b
        (Printf.sprintf "%-10s %6d %6.1f%%\n" name count
           (if n = 0 then 0.0 else 100.0 *. float_of_int count /. float_of_int n)))
    (Faultinject.summary_rows s);
  let detected =
    List.filter
      (fun (tr : Faultinject.trial) ->
        match tr.Faultinject.verdict with
        | Faultinject.Detected _ -> true
        | _ -> false)
      t.trials
  in
  if detected <> [] then begin
    Buffer.add_string b
      "\nfaults caught by the misspeculation hardware (detected):\n";
    List.iteri
      (fun i tr ->
        if i < max_examples then
          Buffer.add_string b ("  " ^ Faultinject.describe_trial tr ^ "\n"))
      detected;
    if List.length detected > max_examples then
      Buffer.add_string b
        (Printf.sprintf "  ... and %d more\n"
           (List.length detected - max_examples))
  end;
  Buffer.contents b

(* --- intermittent-power campaigns -------------------------------------- *)

(* One trial = one full run under a seeded power-failure trace with
   checkpoint/restore.  Restores roll state back exactly, so a finished
   run with a wrong checksum ([P_sdc]) indicates a checkpoint/restore
   bug — the campaign doubles as the rollback machinery's own test. *)

type power_verdict =
  | P_completed
  | P_restored of int
  | P_sdc of int64
  | P_trapped of Outcome.trap
  | P_hung
  | P_livelock

type power_trial = {
  pt_seed : int64;
  pt_verdict : power_verdict;
  pt_restores : int;
  pt_checkpoints : int;
  pt_ckpt_bytes : int;
  pt_reexec : int;
  pt_instrs : int;
  pt_run_energy : float;       (* the execution breakdown's total *)
  pt_ckpt_energy : float;      (* checkpoint writes + restore cost *)
  pt_reexec_energy : float;    (* re-executed share of the run energy *)
}

type power_campaign = {
  p_workload : string;
  p_dist : Powertrace.dist;
  p_policy : Checkpoint.policy;
  p_retries : int;
  p_seed : int64;
  p_golden_instrs : int;
  p_golden_energy : float;
  p_expected : int64;
  p_trials : power_trial list;
}

(* The shared triage key: power campaigns tally into the same bucket
   namespace the fuzz corpus uses, so "restored" or "reexec-livelock"
   means the same thing in a harvest report and a reproducer header. *)
let power_bucket = function
  | P_completed -> "completed"
  | P_restored _ -> Bucket.key (Bucket.restored ())
  | P_livelock -> Bucket.key (Bucket.reexec_livelock ())
  | P_hung -> Bucket.key (Bucket.hang ())
  | P_sdc _ -> "sdc"
  | P_trapped t -> "trapped:" ^ Outcome.trap_name t

let hot_pcs_of (p : Bs_backend.Asm.program) =
  let acc = ref [] in
  Array.iteri
    (fun pc s -> if s <> None then acc := pc :: !acc)
    p.Bs_backend.Asm.srcmap;
  List.rev !acc

let run_power ?(config = Driver.bitspec_config) ?(jobs = 1)
    ?(policy = Checkpoint.Interval 500) ?(retries = 8) ~dist ~trials ~seed
    (w : Workload.t) : power_campaign =
  let c = Experiment.compile_workload config w in
  let input = w.Workload.test in
  let mem () =
    let mem = Memimage.create c.Driver.ir in
    input.Workload.setup c.Driver.ir mem;
    mem
  in
  let mode =
    if config.Driver.arch = Driver.Bitspec_arch then Bs_isa.Isa.Bitspec
    else Bs_isa.Isa.Classic
  in
  let golden =
    Machine.run
      ~config:
        { Machine.mode; fuel = 1_000_000_000; fault = None; power = None;
          engine = Machine.Jit }
      c.Driver.program (mem ()) ~entry:w.Workload.entry
      ~args:input.Workload.args
  in
  (* injected-fault oracles stay on the tree engine: no compilation
     layer of their own between the IR and the reference checksum *)
  let expected = Experiment.reference_checksum ~interp_engine:Interp.Tree w in
  let golden_instrs = golden.Machine.ctr.Counters.instrs in
  let golden_energy =
    Bs_energy.Energy.total (Bs_energy.Energy.of_result golden)
  in
  (* an intermittent run legitimately re-executes work, so its budget is
     wider than the soft-error campaigns' 4x before it counts as hung *)
  let fuel = Outcome.hang_fuel ~steps:golden_instrs ~factor:8 in
  let hot_pcs = hot_pcs_of c.Driver.program in
  (* one seed per trial, drawn sequentially up front (jobs-invariant) *)
  let rng = Rng.create seed in
  let pseeds = Array.init trials (fun _ -> Rng.next rng) in
  let run_one pseed =
    let trace = Powertrace.create ~seed:pseed ~hot_pcs dist in
    let power = Some { Machine.trace; policy; max_retries = retries } in
    let config =
      { Machine.mode; fuel; fault = None; power; engine = Machine.Jit }
    in
    match
      Machine.run ~config c.Driver.program (mem ()) ~entry:w.Workload.entry
        ~args:input.Workload.args
    with
    | r ->
        let ctr = r.Machine.ctr in
        let b = Bs_energy.Energy.of_result r in
        let verdict =
          match r.Machine.outcome with
          | Outcome.Livelock -> P_livelock
          | Outcome.Out_of_fuel -> P_hung
          | Outcome.Trapped t -> P_trapped t
          | Outcome.Finished ->
              if r.Machine.r0 <> expected then P_sdc r.Machine.r0
              else if ctr.Counters.restores > 0 then
                P_restored ctr.Counters.restores
              else P_completed
        in
        { pt_seed = pseed; pt_verdict = verdict;
          pt_restores = ctr.Counters.restores;
          pt_checkpoints = ctr.Counters.checkpoints;
          pt_ckpt_bytes = ctr.Counters.checkpoint_bytes;
          pt_reexec = ctr.Counters.reexec_instrs;
          pt_instrs = ctr.Counters.instrs;
          pt_run_energy = Bs_energy.Energy.total b;
          pt_ckpt_energy = Bs_energy.Energy.checkpoint_energy ctr;
          pt_reexec_energy = Bs_energy.Energy.reexec_energy b ctr }
    | exception Machine.Sim_trap t ->
        { pt_seed = pseed; pt_verdict = P_trapped t; pt_restores = 0;
          pt_checkpoints = 0; pt_ckpt_bytes = 0; pt_reexec = 0;
          pt_instrs = 0; pt_run_energy = 0.0; pt_ckpt_energy = 0.0;
          pt_reexec_energy = 0.0 }
    | exception Memimage.Fault m ->
        { pt_seed = pseed; pt_verdict = P_trapped (Outcome.Memory_fault m);
          pt_restores = 0; pt_checkpoints = 0; pt_ckpt_bytes = 0;
          pt_reexec = 0; pt_instrs = 0; pt_run_energy = 0.0;
          pt_ckpt_energy = 0.0; pt_reexec_energy = 0.0 }
  in
  let results =
    Bs_obs.Trace.with_span
      ~args:[ ("workload", w.Workload.name) ]
      "campaign:power"
    @@ fun () -> Array.to_list (sharded ~jobs run_one pseeds)
  in
  { p_workload = w.Workload.name; p_dist = dist; p_policy = policy;
    p_retries = retries; p_seed = seed; p_golden_instrs = golden_instrs;
    p_golden_energy = golden_energy; p_expected = expected;
    p_trials = results }

let power_report (t : power_campaign) : string =
  let b = Buffer.create 1024 in
  let n = List.length t.p_trials in
  Buffer.add_string b
    (Printf.sprintf
       "power-failure campaign: %s, %d trials, dist %s, policy %s, \
        retries %d, seed %Ld\n"
       t.p_workload n
       (Powertrace.dist_to_string t.p_dist)
       (Checkpoint.policy_name t.p_policy)
       t.p_retries t.p_seed);
  Buffer.add_string b
    (Printf.sprintf "golden run: %d instrs, energy %.0f, checksum %Ld\n\n"
       t.p_golden_instrs t.p_golden_energy t.p_expected);
  let tally =
    List.fold_left
      (fun acc tr -> Bucket.add acc (power_bucket tr.pt_verdict))
      Bucket.empty_tally t.p_trials
  in
  Buffer.add_string b (Bucket.report tally);
  if n > 0 then begin
    let fi = float_of_int in
    let sum f = List.fold_left (fun acc tr -> acc + f tr) 0 t.p_trials in
    let sumf f = List.fold_left (fun acc tr -> acc +. f tr) 0.0 t.p_trials in
    let restores = sum (fun tr -> tr.pt_restores) in
    let ckpts = sum (fun tr -> tr.pt_checkpoints) in
    let instrs = sum (fun tr -> tr.pt_instrs) in
    let reexec = sum (fun tr -> tr.pt_reexec) in
    let run_e = sumf (fun tr -> tr.pt_run_energy) in
    let ckpt_e = sumf (fun tr -> tr.pt_ckpt_energy) in
    let re_e = sumf (fun tr -> tr.pt_reexec_energy) in
    let pct a b = if b = 0.0 then 0.0 else 100.0 *. a /. b in
    Buffer.add_string b
      (Printf.sprintf
         "\nmeans per trial: %.1f restores, %.1f checkpoints\n"
         (fi restores /. fi n) (fi ckpts /. fi n));
    Buffer.add_string b
      (Printf.sprintf "re-executed instructions: %.1f%% of %d\n"
         (pct (fi reexec) (fi instrs)) instrs);
    Buffer.add_string b
      (Printf.sprintf
         "energy overhead: %.1f%% checkpoints + %.1f%% re-execution \
          (vs golden %.1f%%)\n"
         (pct ckpt_e run_e) (pct re_e run_e)
         (pct (ckpt_e +. re_e)
            (float_of_int n *. t.p_golden_energy)))
  end;
  Buffer.contents b

(* --- predicted-vs-measured bit-level validation ------------------------ *)

(* Cross-validate the static {!Bs_analysis.Vulnerability} prediction
   against a measured register-flip campaign: every trial flips exactly
   one register bit, so its verdict is a sample of that bit position's
   measured class distribution. *)

type bit_row = {
  v_bit : int;
  v_trials : int;
  v_masked : int;      (* measured masked count *)
  v_caught : int;      (* measured detected count *)
  v_corrupt : int;     (* measured sdc + trapped + hung *)
}

type validation = {
  v_workload : string;
  v_seed : int64;
  v_pred : Bs_analysis.Vulnerability.t;
  v_rows : bit_row array;  (* 32 rows, one per register bit *)
  v_agreement : float;     (* trial-weighted dominant-class agreement *)
}

let measured_class (v : Faultinject.verdict) : Bs_analysis.Vulnerability.clazz =
  match v with
  | Faultinject.Masked -> Bs_analysis.Vulnerability.Masked
  | Faultinject.Detected _ -> Bs_analysis.Vulnerability.Caught
  | Faultinject.Sdc _ | Faultinject.Trapped _ | Faultinject.Hung ->
      Bs_analysis.Vulnerability.Sdc

let validate ?(config = Driver.bitspec_config) ?(jobs = 1) ~trials ~seed
    (w : Workload.t) : validation =
  let c = Experiment.compile_workload config w in
  let input = w.Workload.test in
  let mem () =
    let mem = Memimage.create c.Driver.ir in
    input.Workload.setup c.Driver.ir mem;
    mem
  in
  let mode =
    if config.Driver.arch = Driver.Bitspec_arch then Bs_isa.Isa.Bitspec
    else Bs_isa.Isa.Classic
  in
  let golden =
    Machine.run
      ~config:
        { Machine.mode; fuel = 1_000_000_000; fault = None; power = None;
          engine = Machine.Jit }
      c.Driver.program (mem ()) ~entry:w.Workload.entry
      ~args:input.Workload.args
  in
  (* injected-fault oracles stay on the tree engine: no compilation
     layer of their own between the IR and the reference checksum *)
  let expected = Experiment.reference_checksum ~interp_engine:Interp.Tree w in
  let golden_instrs = golden.Machine.ctr.Counters.instrs in
  let golden_misspecs = golden.Machine.ctr.Counters.misspecs in
  let fuel = Outcome.hang_fuel ~steps:golden_instrs ~factor:4 in
  let rng = Rng.create seed in
  let faults =
    Array.init trials (fun _ ->
        Faultinject.gen_reg_fault rng ~max_instr:golden_instrs)
  in
  let results =
    Bs_obs.Trace.with_span
      ~args:[ ("workload", w.Workload.name) ]
      "campaign:validate"
    @@ fun () ->
    sharded ~jobs
      (fun fault ->
        Faultinject.run_trial ~mode ~fuel ~program:c.Driver.program ~mem
          ~entry:w.Workload.entry ~args:input.Workload.args ~expected
          ~golden_misspecs fault)
      faults
  in
  let pred = Bs_analysis.Vulnerability.analyze c.Driver.ir in
  let masked = Array.make 32 0
  and caught = Array.make 32 0
  and corrupt = Array.make 32 0 in
  Array.iter
    (fun (tr : Faultinject.trial) ->
      match tr.Faultinject.tfault.Machine.target with
      | Machine.Flip_reg (_, bit) -> (
          match measured_class tr.Faultinject.verdict with
          | Bs_analysis.Vulnerability.Masked ->
              masked.(bit) <- masked.(bit) + 1
          | Bs_analysis.Vulnerability.Caught ->
              caught.(bit) <- caught.(bit) + 1
          | Bs_analysis.Vulnerability.Sdc ->
              corrupt.(bit) <- corrupt.(bit) + 1)
      | _ -> ())
    results;
  let rows =
    Array.init 32 (fun b ->
        { v_bit = b; v_trials = masked.(b) + caught.(b) + corrupt.(b);
          v_masked = masked.(b); v_caught = caught.(b);
          v_corrupt = corrupt.(b) })
  in
  (* trial-weighted agreement: a trial agrees when its measured class is
     the statically-predicted dominant class at its bit *)
  let agree = ref 0 and total = ref 0 in
  Array.iteri
    (fun b row ->
      let dom =
        Bs_analysis.Vulnerability.dominant
          pred.Bs_analysis.Vulnerability.bits.(b)
      in
      total := !total + row.v_trials;
      agree :=
        !agree
        + (match dom with
          | Bs_analysis.Vulnerability.Masked -> row.v_masked
          | Bs_analysis.Vulnerability.Caught -> row.v_caught
          | Bs_analysis.Vulnerability.Sdc -> row.v_corrupt))
    rows;
  let agreement =
    if !total = 0 then 0.0
    else 100.0 *. float_of_int !agree /. float_of_int !total
  in
  { v_workload = w.Workload.name; v_seed = seed; v_pred = pred;
    v_rows = rows; v_agreement = agreement }

let validation_report (v : validation) : string =
  let b = Buffer.create 2048 in
  let open Bs_analysis in
  Buffer.add_string b
    (Printf.sprintf
       "bit-level validation: %s, %d register-flip trials, seed %Ld\n"
       v.v_workload
       (Array.fold_left (fun acc r -> acc + r.v_trials) 0 v.v_rows)
       v.v_seed);
  Buffer.add_string b
    (Printf.sprintf
       "%-4s %10s %10s | %8s %8s %8s | %s\n" "bit" "predicted" "measured"
       "masked" "caught" "corrupt" "n");
  Array.iter
    (fun row ->
      let p = v.v_pred.Vulnerability.bits.(row.v_bit) in
      let pdom = Vulnerability.dominant p in
      let mdom =
        if row.v_trials = 0 then "-"
        else if row.v_masked >= row.v_caught && row.v_masked >= row.v_corrupt
        then "masked"
        else if row.v_caught >= row.v_corrupt then "caught"
        else "sdc"
      in
      let pct c =
        if row.v_trials = 0 then 0.0
        else 100.0 *. float_of_int c /. float_of_int row.v_trials
      in
      Buffer.add_string b
        (Printf.sprintf
           "%-4d %10s %10s | %7.1f%% %7.1f%% %7.1f%% | %d\n" row.v_bit
           (Vulnerability.class_name pdom) mdom (pct row.v_masked)
           (pct row.v_caught) (pct row.v_corrupt) row.v_trials))
    v.v_rows;
  Buffer.add_string b
    (Printf.sprintf "dominant-class agreement: %.1f%% of trials\n"
       v.v_agreement);
  Buffer.contents b
