(** Bitmask elision (RQ3): a speculative truncate fed by [v & 0xFF]
    becomes an exact truncate of [v] — the back-end lowers it to a plain
    register-slice move that can never misspeculate, and the mask itself
    dies at the next DCE.  The pattern dominates encoder kernels
    (blowfish, rijndael). *)

val run_func : ?remarks:Bs_obs.Remark.sink -> Bs_ir.Ir.func -> int
(** Returns the number of truncates de-speculated; [remarks] receives
    one record per elided mask. *)

val run : ?remarks:Bs_obs.Remark.sink -> Bs_ir.Ir.modul -> int
