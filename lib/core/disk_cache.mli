(** A crash-safe, content-addressed on-disk store.

    This is the persistence layer under {!Compile_cache}: entries are
    opaque byte payloads keyed by the same content keys the in-memory
    cache uses (source digest + injective config tag), so a compile
    survives the process that performed it.

    Durability discipline — the speculate/detect/recover shape applied
    to storage:

    - {b Atomic visibility.}  A store writes a uniquely-named temp file
      in the cache directory, fsyncs it, and [rename]s it into place.
      A crash (SIGKILL included) at any point leaves either the old
      state or the new entry — never a partially-visible one.  Stale
      temp files from crashed writers are swept on [open_dir].
    - {b Integrity.}  Every entry carries a header with a format magic,
      the entry key, and the MD5 of the payload.  [load] verifies all
      three before a byte of the payload is trusted ([Marshal] on a
      corrupt buffer is memory-unsafe — the checksum runs first).
    - {b Quarantine, not crash.}  A corrupt or foreign entry is moved
      aside into [quarantine/] and reported as a miss, so the caller
      recompiles; the poisoned file is kept for post-mortem.  A
      corrupt cache can cost recompiles, never wrong results or a
      wedged server.

    All operations are safe under concurrent use from multiple domains
    and multiple processes sharing the directory (unique temp names;
    last rename wins — contents are identical by content-addressing). *)

type t

type stats = {
  hits : int;       (** loads served from disk *)
  misses : int;     (** loads that found no entry *)
  writes : int;     (** entries stored *)
  quarantined : int;
      (** corrupt entries moved to [quarantine/] since [open_dir] *)
  swept_tmp : int;  (** stale temp files removed by [open_dir] *)
}

val open_dir : string -> t
(** Open (creating if needed) a cache rooted at the given directory and
    sweep stale temp files.  Raises [Sys_error] if the directory cannot
    be created. *)

val dir : t -> string

val load : t -> key:string -> bytes option
(** [load t ~key] returns the payload stored under [key], or [None] if
    absent {e or} if the entry failed verification (in which case it
    has been quarantined). *)

val store : t -> key:string -> bytes -> unit
(** [store t ~key payload] makes the entry durably visible via
    temp-file + fsync + atomic rename.  Overwrites any existing
    entry. *)

val entries : t -> int
(** Number of committed entries currently on disk (counted by walking
    the directory). *)

val quarantine_count : t -> int
(** Files currently in [quarantine/] (walks the directory, so it also
    sees quarantines performed by other processes). *)

val invalidate : t -> key:string -> unit
(** Quarantine whatever is stored under [key], if anything.  Used when
    an entry passes byte-level verification but fails a caller-level
    decode (e.g. a marshalled value from an incompatible build). *)

val stats : t -> stats

val key_path : t -> key:string -> string
(** The path an entry for [key] lives at (for tests and tooling; the
    file may not exist). *)
