(** The process-wide content-addressed compile cache.

    Every evidence-producing loop (the bench harness's 19 sections,
    fault-injection campaigns, differential fuzzing) repeatedly compiles
    the same (source, configuration) pairs.  This cache keys a compile
    on content — the MD5 digest of the source, {!Driver.config_tag},
    the training runs, and the profile-input label — and computes each
    key exactly once per process, across domains ({!Bs_exec.Memo} is
    single-flight).

    Cached {!Driver.compiled} values are shared, so callers must treat
    them as read-only; simulation already does (every run builds a
    fresh memory image).

    Callers that must measure real compile time (the bechamel section)
    bypass the cache by calling {!Driver.compile} directly. *)

val source_key : string -> string
(** MD5 digest (hex) of a source string — the content half of a key. *)

val compile :
  key:string -> (unit -> Driver.compiled) -> Driver.compiled
(** [compile ~key thunk] returns the cached compilation for [key],
    running [thunk] on first request.  Exceptions are cached and
    rethrown (a deterministic compiler fails identically each time). *)

val try_compile :
  key:string ->
  (unit -> (Driver.compiled, Bs_support.Diag.t list) result) ->
  (Driver.compiled, Bs_support.Diag.t list) result
(** Same, for the total (degrade-mode) entry point used by the fuzz
    oracle. *)

val hits : unit -> int
(** Compiles served from the cache since the last [reset]. *)

val misses : unit -> int
(** Compiles actually executed since the last [reset]. *)

val reset : unit -> unit
(** Drop everything and zero the counters (tests, long campaigns). *)
