(** The process-wide content-addressed compile cache.

    Every evidence-producing loop (the bench harness's 19 sections,
    fault-injection campaigns, differential fuzzing, the compile
    service) repeatedly compiles the same (source, configuration)
    pairs.  This cache keys a compile on content — the MD5 digest of
    the source, {!Driver.config_tag}, the training runs, and the
    profile-input label — and computes each key exactly once per
    process, across domains ({!Bs_exec.Memo} is single-flight).

    With {!set_persistent}, the in-memory layer is backed by a
    {!Disk_cache}: a memory miss consults the disk before compiling,
    and fresh {e successful} compiles are written back atomically, so
    a compile survives the process (and the crash) that performed it.
    Failures are never persisted — a transient fault cannot poison the
    cache for later identical requests, matching the bounded
    failure-retry semantics of the in-memory {!Bs_exec.Memo}.

    Cached {!Driver.compiled} values are shared, so callers must treat
    them as read-only; simulation already does (every run builds a
    fresh memory image).

    Callers that must measure real compile time (the bechamel section)
    bypass the cache by calling {!Driver.compile} directly. *)

val source_key : string -> string
(** MD5 digest (hex) of a source string — the content half of a key. *)

(** Where a served compile came from: the in-memory table, the
    persistent disk layer, or a real compiler run. *)
type origin = Memory | Disk | Fresh

val compile :
  ?origin:origin ref ->
  key:string -> (unit -> Driver.compiled) -> Driver.compiled
(** [compile ~key thunk] returns the cached compilation for [key],
    running [thunk] on first request.  Exceptions are cached with a
    bounded retry budget and rethrown (see {!Bs_exec.Memo}).  When
    [origin] is given it is set to where this particular call was
    served from. *)

val try_compile :
  ?origin:origin ref ->
  key:string ->
  (unit -> (Driver.compiled, Bs_support.Diag.t list) result) ->
  (Driver.compiled, Bs_support.Diag.t list) result
(** Same, for the total (degrade-mode) entry point used by the fuzz
    oracle.  Only [Ok] results are persisted. *)

val set_persistent : string option -> unit
(** [set_persistent (Some dir)] opens (creating if needed) a
    {!Disk_cache} at [dir] and routes every subsequent miss through
    it; [None] detaches.  Call once at startup, before worker domains
    exist. *)

val persistent : unit -> Disk_cache.t option
(** The attached disk layer, if any. *)

val disk_stats : unit -> Disk_cache.stats option
(** Hit/miss/write/quarantine counters of the disk layer. *)

val hits : unit -> int
(** Compiles served from the in-memory cache since the last [reset]. *)

val misses : unit -> int
(** Compiles that missed the in-memory cache (served from disk or
    actually executed) since the last [reset]. *)

val stats : unit -> int * int
(** [(hits, misses)] with each table's pair snapshotted under its lock
    ({!Bs_exec.Memo.stats}), so reporting code running alongside worker
    domains cannot observe a torn pair.  Use this — not {!hits} +
    {!misses} read separately — wherever rates or section sums are
    derived. *)

val reset : unit -> unit
(** Drop the in-memory tables and zero their counters (tests, long
    campaigns).  The persistent layer is untouched. *)
