open Bs_support
open Bs_workloads

type target = In_process of Server.t | Connect of string

type cfg = {
  lg_seed : int64;
  lg_requests : int;
  lg_clients : int;
  lg_zipf_s : float;
  lg_deadline_ms : int option;
  lg_fuel : int option;
  lg_crash_every : int;
}

let default_cfg =
  { lg_seed = 42L; lg_requests = 200; lg_clients = 4; lg_zipf_s = 1.1;
    lg_deadline_ms = None; lg_fuel = None; lg_crash_every = 0 }

type summary = {
  sm_requests : int;
  sm_ok : int;
  sm_errors : int;
  sm_timeouts : int;
  sm_shed : int;
  sm_retries : int;
  sm_wall_s : float;
  sm_rps : float;
  sm_p50_ms : float;
  sm_p99_ms : float;
  sm_client_p50_ms : float;
  sm_client_p99_ms : float;
  sm_hit_rate : float;
  sm_shed_rate : float;
}

(* Four configuration variants per workload: the paper's main arch,
   the averaging heuristic, the expander ablation, and the baseline. *)
let variants =
  [ ("bitspec/max", Driver.Bitspec_arch, Bs_interp.Profile.Hmax, false);
    ("bitspec/avg", Driver.Bitspec_arch, Bs_interp.Profile.Havg, false);
    ("bitspec/max/noexp", Driver.Bitspec_arch, Bs_interp.Profile.Hmax, true);
    ("baseline/max", Driver.Baseline, Bs_interp.Profile.Hmax, false) ]

let cells =
  List.concat_map
    (fun name ->
      List.map
        (fun (vlabel, arch, heuristic, noexp) ->
          ( name ^ "/" ^ vlabel,
            { Service.b_workload = name; b_arch = arch;
              b_heuristic = heuristic; b_no_expander = noexp } ))
        variants)
    Registry.names

(* Zipfian sampler over the cell list: rank k gets weight 1/k^s. *)
let zipf_cdf s n =
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let sample_rank cdf u =
  let n = Array.length cdf in
  let rec bisect lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then bisect (mid + 1) hi else bisect lo mid
  in
  min (n - 1) (bisect 0 (n - 1))

let plan cfg =
  let cells = Array.of_list cells in
  let cdf = zipf_cdf cfg.lg_zipf_s (Array.length cells) in
  let rng = Rng.create cfg.lg_seed in
  List.init cfg.lg_requests (fun i ->
      let idx = i + 1 in
      let _, bench = cells.(sample_rank cdf (Rng.float rng)) in
      let chaos =
        if cfg.lg_crash_every > 0 && idx mod cfg.lg_crash_every = 0 then
          Some (Service.Crash_before 2)
        else None
      in
      { Service.rq_id = idx; rq_op = Service.Bench bench;
        rq_deadline_ms = cfg.lg_deadline_ms; rq_fuel = cfg.lg_fuel;
        rq_chaos = chaos })

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let summarize ?(client_ms = [||]) (pairs : (Service.request * Service.response) list)
    ~wall_s =
  let n = List.length pairs in
  let ok = ref 0 and errors = ref 0 and timeouts = ref 0 and shed = ref 0 in
  let retries = ref 0 and hits = ref 0 in
  let lat = ref [] in
  List.iter
    (fun ((_ : Service.request), (rs : Service.response)) ->
      retries := !retries + max 0 (rs.Service.rs_attempts - 1);
      (match rs.Service.rs_status with
      | Service.Done _ ->
          incr ok;
          if rs.Service.rs_cached then incr hits
      | Service.Failed _ -> incr errors
      | Service.Timed_out -> incr timeouts
      | Service.Overloaded _ -> incr shed
      | Service.Pong | Service.Bye | Service.Stats_reply _
      | Service.Health_reply _ -> ());
      match rs.Service.rs_status with
      | Service.Overloaded _ -> ()  (* shed before any work: not a latency *)
      | _ -> lat := rs.Service.rs_ms :: !lat)
    pairs;
  let lat = Array.of_list !lat in
  Array.sort compare lat;
  let cms = Array.copy client_ms in
  Array.sort compare cms;
  let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  { sm_requests = n; sm_ok = !ok; sm_errors = !errors;
    sm_timeouts = !timeouts; sm_shed = !shed; sm_retries = !retries;
    sm_wall_s = wall_s;
    sm_rps = (if wall_s > 0.0 then float_of_int n /. wall_s else 0.0);
    sm_p50_ms = percentile lat 0.50; sm_p99_ms = percentile lat 0.99;
    sm_client_p50_ms = percentile cms 0.50;
    sm_client_p99_ms = percentile cms 0.99;
    sm_hit_rate = ratio !hits !ok; sm_shed_rate = ratio !shed n }

let run cfg target =
  if cfg.lg_requests < 0 then invalid_arg "Loadgen.run: negative requests";
  let clients = max 1 cfg.lg_clients in
  let reqs = Array.of_list (plan cfg) in
  let n = Array.length reqs in
  let results : Service.response option array = Array.make n None in
  (* the client's own end-to-end wall clock per request — measured
     independently of the server-reported rs_ms, so the two views can
     be reconciled after a run *)
  let client_ms = Array.make n 0.0 in
  let cursor = Atomic.make 0 in
  let issue_with call =
    let rec loop () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        let c0 = Unix.gettimeofday () in
        results.(i) <- Some (call reqs.(i));
        client_ms.(i) <- (Unix.gettimeofday () -. c0) *. 1e3;
        loop ()
      end
    in
    loop ()
  in
  let client_body () =
    match target with
    | In_process srv -> issue_with (Server.submit_wait srv)
    | Connect socket ->
        let conn = Server.connect ~socket in
        Fun.protect
          ~finally:(fun () -> Server.close conn)
          (fun () -> issue_with (Server.call conn))
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun _ -> Thread.create client_body ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let pairs =
    Array.to_list
      (Array.mapi
         (fun i rs ->
           match rs with
           | Some rs -> (reqs.(i), rs)
           | None -> assert false (* every index was claimed and answered *))
         results)
  in
  (pairs, summarize ~client_ms pairs ~wall_s)

let summary_json s =
  Jsonx.Obj
    [ ("requests", Jsonx.int s.sm_requests);
      ("ok", Jsonx.int s.sm_ok);
      ("errors", Jsonx.int s.sm_errors);
      ("timeouts", Jsonx.int s.sm_timeouts);
      ("shed", Jsonx.int s.sm_shed);
      ("retries", Jsonx.int s.sm_retries);
      ("wall_s", Jsonx.Num s.sm_wall_s);
      ("rps", Jsonx.Num s.sm_rps);
      ("p50_ms", Jsonx.Num s.sm_p50_ms);
      ("p99_ms", Jsonx.Num s.sm_p99_ms);
      ("client_p50_ms", Jsonx.Num s.sm_client_p50_ms);
      ("client_p99_ms", Jsonx.Num s.sm_client_p99_ms);
      ("cache_hit_rate", Jsonx.Num s.sm_hit_rate);
      ("shed_rate", Jsonx.Num s.sm_shed_rate) ]

(* --- server-side view and reconciliation ------------------------------- *)

let server_stats target =
  let rq =
    { Service.rq_id = 0; rq_op = Service.Stats; rq_deadline_ms = None;
      rq_fuel = None; rq_chaos = None }
  in
  let rs =
    match target with
    | In_process srv -> Some (Server.submit_wait srv rq)
    | Connect socket -> (
        match Server.connect ~socket with
        | conn ->
            Fun.protect
              ~finally:(fun () -> Server.close conn)
              (fun () -> match Server.call conn rq with
                | rs -> Some rs
                | exception _ -> None)
        | exception Unix.Unix_error _ -> None)
  in
  match rs with
  | Some { Service.rs_status = Service.Stats_reply st; _ } -> Some st
  | _ -> None

type cross_check = {
  cc_client_count : int;
  cc_server_count : int;
  cc_client_p50 : float;
  cc_client_p99 : float;
  cc_server_p50 : float;
  cc_server_p99 : float;
  cc_count_ok : bool;
  cc_p50_ok : bool;
  cc_p99_ok : bool;
  cc_ok : bool;
}

(* Rank-statistic quantile — the same definition Metrics uses for its
   estimates, so the tolerance argument below is exact rather than
   fuzzy: the histogram estimate of a quantile q is min(upper bucket
   bound, max) of the bucket holding the ceil(q·n)-th smallest sample,
   hence exact <= estimate <= max(exact · bucket_ratio, bucket_floor). *)
let rank_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank =
      max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n))))
    in
    sorted.(rank - 1)

let find_histogram metrics ~name =
  match Jsonx.member "histograms" metrics with
  | Some (Jsonx.Arr hs) ->
      List.find_opt
        (fun h ->
          Jsonx.mem_string "name" h = Some name
          && Jsonx.mem_string "labels" h = Some "")
        hs
  | _ -> None

(* Reconcile the server's own latency histogram against the client's
   collection of the same rs_ms values.  Counts must agree exactly
   (both sides count every non-shed bench response once; rs_ms
   round-trips bit-exactly through the JSON codec).  Quantiles must
   agree within one histogram bucket ratio (plus the bucket floor for
   sub-microsecond samples and a small absolute epsilon for float
   noise). *)
let cross_check (pairs : (Service.request * Service.response) list)
    (st : Service.server_stats) =
  let lat =
    List.filter_map
      (fun ((_ : Service.request), (rs : Service.response)) ->
        match rs.Service.rs_status with
        | Service.Overloaded _ -> None
        | _ -> Some rs.Service.rs_ms)
      pairs
  in
  let lat = Array.of_list lat in
  Array.sort compare lat;
  let client_count = Array.length lat in
  let client_p50 = rank_quantile lat 0.50 in
  let client_p99 = rank_quantile lat 0.99 in
  let server_count, server_p50, server_p99 =
    match find_histogram st.Service.st_metrics ~name:"serve_request_ms" with
    | Some h ->
        ( Option.value ~default:(-1) (Jsonx.mem_int "count" h),
          Option.value ~default:(-1.0) (Jsonx.mem_float "p50" h),
          Option.value ~default:(-1.0) (Jsonx.mem_float "p99" h) )
    | None -> (-1, -1.0, -1.0)
  in
  let eps = 1e-9 in
  let within exact est =
    est +. eps >= exact
    && est
       <= Float.max (exact *. Bs_obs.Metrics.bucket_ratio)
            Bs_obs.Metrics.bucket_floor
          +. eps
  in
  let count_ok = server_count = client_count in
  let p50_ok = within client_p50 server_p50 in
  let p99_ok = within client_p99 server_p99 in
  { cc_client_count = client_count; cc_server_count = server_count;
    cc_client_p50 = client_p50; cc_client_p99 = client_p99;
    cc_server_p50 = server_p50; cc_server_p99 = server_p99;
    cc_count_ok = count_ok; cc_p50_ok = p50_ok; cc_p99_ok = p99_ok;
    cc_ok = count_ok && p50_ok && p99_ok }

let check_json c =
  Jsonx.Obj
    [ ("client_count", Jsonx.int c.cc_client_count);
      ("server_count", Jsonx.int c.cc_server_count);
      ("client_p50_ms", Jsonx.Num c.cc_client_p50);
      ("server_p50_ms", Jsonx.Num c.cc_server_p50);
      ("client_p99_ms", Jsonx.Num c.cc_client_p99);
      ("server_p99_ms", Jsonx.Num c.cc_server_p99);
      ("count_ok", Jsonx.Bool c.cc_count_ok);
      ("p50_ok", Jsonx.Bool c.cc_p50_ok);
      ("p99_ok", Jsonx.Bool c.cc_p99_ok);
      ("ok", Jsonx.Bool c.cc_ok) ]

let canonical_log pairs =
  let sorted =
    List.sort
      (fun ((a : Service.request), _) (b, _) ->
        compare a.Service.rq_id b.Service.rq_id)
      pairs
  in
  List.map (fun (rq, rs) -> Service.canonical_line rq rs) sorted
