open Bs_support
open Bs_workloads

type target = In_process of Server.t | Connect of string

type cfg = {
  lg_seed : int64;
  lg_requests : int;
  lg_clients : int;
  lg_zipf_s : float;
  lg_deadline_ms : int option;
  lg_fuel : int option;
  lg_crash_every : int;
}

let default_cfg =
  { lg_seed = 42L; lg_requests = 200; lg_clients = 4; lg_zipf_s = 1.1;
    lg_deadline_ms = None; lg_fuel = None; lg_crash_every = 0 }

type summary = {
  sm_requests : int;
  sm_ok : int;
  sm_errors : int;
  sm_timeouts : int;
  sm_shed : int;
  sm_retries : int;
  sm_wall_s : float;
  sm_rps : float;
  sm_p50_ms : float;
  sm_p99_ms : float;
  sm_hit_rate : float;
  sm_shed_rate : float;
}

(* Four configuration variants per workload: the paper's main arch,
   the averaging heuristic, the expander ablation, and the baseline. *)
let variants =
  [ ("bitspec/max", Driver.Bitspec_arch, Bs_interp.Profile.Hmax, false);
    ("bitspec/avg", Driver.Bitspec_arch, Bs_interp.Profile.Havg, false);
    ("bitspec/max/noexp", Driver.Bitspec_arch, Bs_interp.Profile.Hmax, true);
    ("baseline/max", Driver.Baseline, Bs_interp.Profile.Hmax, false) ]

let cells =
  List.concat_map
    (fun name ->
      List.map
        (fun (vlabel, arch, heuristic, noexp) ->
          ( name ^ "/" ^ vlabel,
            { Service.b_workload = name; b_arch = arch;
              b_heuristic = heuristic; b_no_expander = noexp } ))
        variants)
    Registry.names

(* Zipfian sampler over the cell list: rank k gets weight 1/k^s. *)
let zipf_cdf s n =
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let sample_rank cdf u =
  let n = Array.length cdf in
  let rec bisect lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then bisect (mid + 1) hi else bisect lo mid
  in
  min (n - 1) (bisect 0 (n - 1))

let plan cfg =
  let cells = Array.of_list cells in
  let cdf = zipf_cdf cfg.lg_zipf_s (Array.length cells) in
  let rng = Rng.create cfg.lg_seed in
  List.init cfg.lg_requests (fun i ->
      let idx = i + 1 in
      let _, bench = cells.(sample_rank cdf (Rng.float rng)) in
      let chaos =
        if cfg.lg_crash_every > 0 && idx mod cfg.lg_crash_every = 0 then
          Some (Service.Crash_before 2)
        else None
      in
      { Service.rq_id = idx; rq_op = Service.Bench bench;
        rq_deadline_ms = cfg.lg_deadline_ms; rq_fuel = cfg.lg_fuel;
        rq_chaos = chaos })

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let summarize (pairs : (Service.request * Service.response) list) ~wall_s =
  let n = List.length pairs in
  let ok = ref 0 and errors = ref 0 and timeouts = ref 0 and shed = ref 0 in
  let retries = ref 0 and hits = ref 0 in
  let lat = ref [] in
  List.iter
    (fun ((_ : Service.request), (rs : Service.response)) ->
      retries := !retries + max 0 (rs.Service.rs_attempts - 1);
      (match rs.Service.rs_status with
      | Service.Done _ ->
          incr ok;
          if rs.Service.rs_cached then incr hits
      | Service.Failed _ -> incr errors
      | Service.Timed_out -> incr timeouts
      | Service.Overloaded _ -> incr shed
      | Service.Pong | Service.Bye | Service.Stats_reply _ -> ());
      match rs.Service.rs_status with
      | Service.Overloaded _ -> ()  (* shed before any work: not a latency *)
      | _ -> lat := rs.Service.rs_ms :: !lat)
    pairs;
  let lat = Array.of_list !lat in
  Array.sort compare lat;
  let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  { sm_requests = n; sm_ok = !ok; sm_errors = !errors;
    sm_timeouts = !timeouts; sm_shed = !shed; sm_retries = !retries;
    sm_wall_s = wall_s;
    sm_rps = (if wall_s > 0.0 then float_of_int n /. wall_s else 0.0);
    sm_p50_ms = percentile lat 0.50; sm_p99_ms = percentile lat 0.99;
    sm_hit_rate = ratio !hits !ok; sm_shed_rate = ratio !shed n }

let run cfg target =
  if cfg.lg_requests < 0 then invalid_arg "Loadgen.run: negative requests";
  let clients = max 1 cfg.lg_clients in
  let reqs = Array.of_list (plan cfg) in
  let n = Array.length reqs in
  let results : Service.response option array = Array.make n None in
  let cursor = Atomic.make 0 in
  let issue_with call =
    let rec loop () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        results.(i) <- Some (call reqs.(i));
        loop ()
      end
    in
    loop ()
  in
  let client_body () =
    match target with
    | In_process srv -> issue_with (Server.submit_wait srv)
    | Connect socket ->
        let conn = Server.connect ~socket in
        Fun.protect
          ~finally:(fun () -> Server.close conn)
          (fun () -> issue_with (Server.call conn))
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun _ -> Thread.create client_body ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let pairs =
    Array.to_list
      (Array.mapi
         (fun i rs ->
           match rs with
           | Some rs -> (reqs.(i), rs)
           | None -> assert false (* every index was claimed and answered *))
         results)
  in
  (pairs, summarize pairs ~wall_s)

let summary_json s =
  Jsonx.Obj
    [ ("requests", Jsonx.int s.sm_requests);
      ("ok", Jsonx.int s.sm_ok);
      ("errors", Jsonx.int s.sm_errors);
      ("timeouts", Jsonx.int s.sm_timeouts);
      ("shed", Jsonx.int s.sm_shed);
      ("retries", Jsonx.int s.sm_retries);
      ("wall_s", Jsonx.Num s.sm_wall_s);
      ("rps", Jsonx.Num s.sm_rps);
      ("p50_ms", Jsonx.Num s.sm_p50_ms);
      ("p99_ms", Jsonx.Num s.sm_p99_ms);
      ("cache_hit_rate", Jsonx.Num s.sm_hit_rate);
      ("shed_rate", Jsonx.Num s.sm_shed_rate) ]

let canonical_log pairs =
  let sorted =
    List.sort
      (fun ((a : Service.request), _) (b, _) ->
        compare a.Service.rq_id b.Service.rq_id)
      pairs
  in
  List.map (fun (rq, rs) -> Service.canonical_line rq rs) sorted
