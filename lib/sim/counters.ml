(* Activity counters — the simulator's equivalent of the paper's
   gate-level activity tracking, consumed by the energy model (Figure 9)
   and the microarchitectural breakdowns (Figures 10 and 11). *)

type t = {
  mutable cycles : int;
  mutable instrs : int;                (* dynamic instructions *)
  mutable misspecs : int;
  (* register file (Figure 11) *)
  mutable reg_read32 : int;
  mutable reg_read8 : int;
  mutable reg_write32 : int;
  mutable reg_write8 : int;
  (* ALU activity *)
  mutable alu32 : int;
  mutable alu8 : int;
  mutable mul_ops : int;
  mutable div_ops : int;
  (* memory *)
  mutable loads : int;
  mutable stores : int;
  (* spill traffic (Figure 10) *)
  mutable spill_loads : int;
  mutable spill_stores : int;
  mutable copies : int;
  (* stalls *)
  mutable stall_cycles : int;
  mutable branch_stalls : int;
  mutable load_use_stalls : int;
  (* intermittent-power execution: checkpoint/restore traffic.
     [reexec_instrs] is the subset of [instrs] that was re-executed after
     a power-fail restore — wasted work, costed separately by the energy
     model. *)
  mutable checkpoints : int;
  mutable checkpoint_bytes : int;   (* register file + control + dirty memory *)
  mutable restores : int;
  mutable reexec_instrs : int;
  mutable livelock_degrades : int;  (* policy fell back to checkpoint-every-store *)
  (* host wall-clock time the simulator spent producing these counters
     (nanoseconds).  Deliberately EXCLUDED from [to_assoc]: it is
     non-deterministic, and the counter dump must stay byte-identical
     across runs and --jobs values.  [simulated_mips] derives from it. *)
  mutable wall_ns : int;
}

let create () =
  { cycles = 0; instrs = 0; misspecs = 0;
    reg_read32 = 0; reg_read8 = 0; reg_write32 = 0; reg_write8 = 0;
    alu32 = 0; alu8 = 0; mul_ops = 0; div_ops = 0;
    loads = 0; stores = 0;
    spill_loads = 0; spill_stores = 0; copies = 0;
    stall_cycles = 0; branch_stalls = 0; load_use_stalls = 0;
    checkpoints = 0; checkpoint_bytes = 0; restores = 0; reexec_instrs = 0;
    livelock_degrades = 0; wall_ns = 0 }

let reg_reads t = t.reg_read32 + t.reg_read8
let reg_writes t = t.reg_write32 + t.reg_write8
let reg_accesses t = reg_reads t + reg_writes t

(* Field-wise accumulation, used to total counters across runs. *)
let add ~into t =
  into.cycles <- into.cycles + t.cycles;
  into.instrs <- into.instrs + t.instrs;
  into.misspecs <- into.misspecs + t.misspecs;
  into.reg_read32 <- into.reg_read32 + t.reg_read32;
  into.reg_read8 <- into.reg_read8 + t.reg_read8;
  into.reg_write32 <- into.reg_write32 + t.reg_write32;
  into.reg_write8 <- into.reg_write8 + t.reg_write8;
  into.alu32 <- into.alu32 + t.alu32;
  into.alu8 <- into.alu8 + t.alu8;
  into.mul_ops <- into.mul_ops + t.mul_ops;
  into.div_ops <- into.div_ops + t.div_ops;
  into.loads <- into.loads + t.loads;
  into.stores <- into.stores + t.stores;
  into.spill_loads <- into.spill_loads + t.spill_loads;
  into.spill_stores <- into.spill_stores + t.spill_stores;
  into.copies <- into.copies + t.copies;
  into.stall_cycles <- into.stall_cycles + t.stall_cycles;
  into.branch_stalls <- into.branch_stalls + t.branch_stalls;
  into.load_use_stalls <- into.load_use_stalls + t.load_use_stalls;
  into.checkpoints <- into.checkpoints + t.checkpoints;
  into.checkpoint_bytes <- into.checkpoint_bytes + t.checkpoint_bytes;
  into.restores <- into.restores + t.restores;
  into.reexec_instrs <- into.reexec_instrs + t.reexec_instrs;
  into.livelock_degrades <- into.livelock_degrades + t.livelock_degrades;
  into.wall_ns <- into.wall_ns + t.wall_ns

(* Simulated millions of instructions per host second.  0 when the run
   carries no timing (wall_ns = 0), e.g. counters built by hand. *)
let simulated_mips t =
  if t.wall_ns <= 0 then 0.0
  else float_of_int t.instrs *. 1000.0 /. float_of_int t.wall_ns

(* Stable field order, for metric dumps and JSON emission.  [wall_ns] is
   intentionally absent: it is host-dependent, and this dump must be
   byte-identical across runs (the jobs-invariance smokes compare it). *)
let to_assoc t =
  [ ("cycles", t.cycles);
    ("instrs", t.instrs);
    ("misspecs", t.misspecs);
    ("reg_read32", t.reg_read32);
    ("reg_read8", t.reg_read8);
    ("reg_write32", t.reg_write32);
    ("reg_write8", t.reg_write8);
    ("alu32", t.alu32);
    ("alu8", t.alu8);
    ("mul_ops", t.mul_ops);
    ("div_ops", t.div_ops);
    ("loads", t.loads);
    ("stores", t.stores);
    ("spill_loads", t.spill_loads);
    ("spill_stores", t.spill_stores);
    ("copies", t.copies);
    ("stall_cycles", t.stall_cycles);
    ("branch_stalls", t.branch_stalls);
    ("load_use_stalls", t.load_use_stalls);
    ("checkpoints", t.checkpoints);
    ("checkpoint_bytes", t.checkpoint_bytes);
    ("restores", t.restores);
    ("reexec_instrs", t.reexec_instrs);
    ("livelock_degrades", t.livelock_degrades) ]
