open Bs_isa
open Isa
open Bs_interp

(* Closure-compiled dispatch engines for the BSARM machine model.

   Two layers, both built once per run and amortised over millions of
   dynamic steps:

   - Direct-threaded dispatch ([compile_bodies]): every PC is pre-decoded
     into a closure of type [unit -> int] that performs the instruction's
     semantics — hazard checks, counter increments, the operation itself —
     and returns the successor PC.  The hot loop becomes one indirect call
     per step instead of a constructor match plus operand decode.

   - The superblock trace-JIT ([detect] + [install_jit]): maximal
     straight-line runs of fusible instructions are found statically at
     block leaders (entries, branch targets, fall-throughs, static
     misspeculation targets); a profiling closure at each head counts
     executions, and past [promote_threshold] it replaces itself with a
     single fused closure chaining the run's bodies with direct calls.
     Inside a fused trace the per-step loop overhead disappears:
     instruction and cycle counts are flushed as per-exit constants, and
     instruction fetches are batched per cache line (within a straight
     line, only the first access of each I$ line can miss — the rest are
     replayed with {!Cache.bump_hits}).

   Guard exits mirror the hardware's own Δ fallback: a misspeculating
   instruction ends the trace early, flushes the counters and batched
   fetches accumulated so far, and returns [pc + Δ] to the threaded loop.
   Fuel and CLASSIC-mode entry guards fall back to the plain head body, so
   the exact single-step semantics decide boundary cases.  Traces are only
   installed when the run has no power trace and no fault injection — an
   outage or checkpoint can strike between any two instructions, so under
   those configs every instruction is a superblock boundary and the JIT
   degenerates to threaded dispatch.

   Every path here must be byte-identical in observable effect (counters,
   outcome, memory image, cache hit/miss/LRU state) to the classic
   interpreter loop in [Machine].  The one sanctioned divergence: when an
   instruction raises (division by zero, memory fault, classic-mode slice
   use), counters and run-local cache state may be part-updated — the
   exception escapes [Machine.run], so no caller can observe them. *)

exception Sim_trap of Bs_support.Outcome.trap

(* latencies (cycles) *)
let l2_latency = 8
let dram_latency = 60
let branch_penalty = 2
let mul_penalty = 2
let div_penalty = 10

type state = {
  regs : int array;            (* 32-bit values *)
  mutable pc : int;
  mutable next : int;          (* in-flight successor PC (classic loop only) *)
  mutable delta : int;
  mutable mode : Isa.mode;
  mutable halted : bool;
  (* compare state (condition evaluation without explicit flag bits) *)
  mutable cmp_a : int;
  mutable cmp_b : int;
  mutable cmp_width8 : bool;
  mutable last_load_dest : int; (* reg written by the previous load, -1 none *)
  mutable loaded : int;         (* load destination of the current step, -1;
                                   classic loop only — bodies write
                                   [last_load_dest] directly *)
}

let mask32 v = v land 0xFFFFFFFF

let read_reg st ctr r =
  ctr.Counters.reg_read32 <- ctr.Counters.reg_read32 + 1;
  st.regs.(r)

let write_reg st ctr r v =
  ctr.Counters.reg_write32 <- ctr.Counters.reg_write32 + 1;
  st.regs.(r) <- mask32 v

let read_slice st ctr (s : slice) =
  ctr.Counters.reg_read8 <- ctr.Counters.reg_read8 + 1;
  (st.regs.(s.sl_reg) lsr (8 * s.sl_byte)) land 0xFF

let write_slice st ctr (s : slice) v =
  ctr.Counters.reg_write8 <- ctr.Counters.reg_write8 + 1;
  let shift = 8 * s.sl_byte in
  let keep = lnot (0xFF lsl shift) land 0xFFFFFFFF in
  st.regs.(s.sl_reg) <- st.regs.(s.sl_reg) land keep lor ((v land 0xFF) lsl shift)

let eval_cond st (c : cond) =
  let a = st.cmp_a and b = st.cmp_b in
  let ua = a land 0xFFFFFFFF and ub = b land 0xFFFFFFFF in
  let sa = if st.cmp_width8 then ua else if ua land 0x80000000 <> 0 then ua - 0x100000000 else ua in
  let sb = if st.cmp_width8 then ub else if ub land 0x80000000 <> 0 then ub - 0x100000000 else ub in
  match c with
  | CEq -> ua = ub
  | CNe -> ua <> ub
  | CUlt -> ua < ub
  | CUle -> ua <= ub
  | CUgt -> ua > ub
  | CUge -> ua >= ub
  | CSlt -> sa < sb
  | CSle -> sa <= sb
  | CSgt -> sa > sb
  | CSge -> sa >= sb

(* stall helpers: every stall burns cycles and is attributed to a kind *)
let stall_other ctr n =
  ctr.Counters.cycles <- ctr.Counters.cycles + n;
  ctr.Counters.stall_cycles <- ctr.Counters.stall_cycles + n

let stall_branch ctr =
  ctr.Counters.cycles <- ctr.Counters.cycles + branch_penalty;
  ctr.Counters.stall_cycles <- ctr.Counters.stall_cycles + branch_penalty;
  ctr.Counters.branch_stalls <- ctr.Counters.branch_stalls + branch_penalty

let stall_load_use ctr =
  ctr.Counters.cycles <- ctr.Counters.cycles + 1;
  ctr.Counters.stall_cycles <- ctr.Counters.stall_cycles + 1;
  ctr.Counters.load_use_stalls <- ctr.Counters.load_use_stalls + 1

(* Everything a dispatch engine needs, bundled once per run. *)
type ctx = {
  st : state;
  ctr : Counters.t;
  mem : Memimage.t;
  icache : Cache.t;
  dcache : Cache.t;
  l2 : Cache.t;
  pc_counts : (int, int) Hashtbl.t;   (* misspeculation attribution *)
  prog : Bs_backend.Asm.program;
  fuel : int;
}

(* D$ -> L2 -> DRAM *)
let mem_access cx addr =
  if not (Cache.access cx.dcache addr) then
    if Cache.access cx.l2 addr then stall_other cx.ctr l2_latency
    else stall_other cx.ctr (l2_latency + dram_latency)

(* I$ -> L2 -> DRAM; code lives at 0x40_0000 in the L2's address space *)
let fetch cx pcv =
  if not (Cache.access cx.icache (pcv * 4)) then
    if Cache.access cx.l2 (0x40_0000 + (pcv * 4)) then
      stall_other cx.ctr l2_latency
    else stall_other cx.ctr (l2_latency + dram_latency)

(* Misspeculation at [pc]: count, attribute, pay the redirect, and return
   the displaced successor.  Identical arithmetic to the classic loop's
   [misspeculate], with the faulting pc passed statically. *)
let misspec cx pc =
  let ctr = cx.ctr in
  ctr.Counters.misspecs <- ctr.Counters.misspecs + 1;
  (match Hashtbl.find_opt cx.pc_counts pc with
  | Some n -> Hashtbl.replace cx.pc_counts pc (n + 1)
  | None -> Hashtbl.add cx.pc_counts pc 1);
  stall_branch ctr;
  pc + cx.st.delta

let classic_slice_trap st =
  if st.mode = Isa.Classic then
    raise (Sim_trap Bs_support.Outcome.Classic_mode_slice)

(* --- the threaded body compiler ----------------------------------------- *)

(* One closure per PC.  Contract with the dispatch loops: when the body is
   called, the loop has already bounds-checked the pc, fetched it through
   the I$, charged 1 instruction + 1 cycle, and checked fuel.  The body
   performs load-use hazard checks against [st.last_load_dest], the
   operation (counters included), writes [st.last_load_dest] for the next
   step, and returns the successor pc.  All operands are decoded at
   compile time, so the only per-step work left is the semantics. *)
let compile_op (cx : ctx) pcv (insn : insn) : unit -> int =
  let st = cx.st and ctr = cx.ctr and mem = cx.mem in
  let nx = pcv + 1 in
  let check1 a = if st.last_load_dest = a then stall_load_use ctr in
  let check2 a b =
    if st.last_load_dest = a || st.last_load_dest = b then stall_load_use ctr
  in
  let alu32 () = ctr.Counters.alu32 <- ctr.Counters.alu32 + 1 in
  let alu8 () = ctr.Counters.alu8 <- ctr.Counters.alu8 + 1 in
  match insn with
  | MOV (d, s) ->
      fun () ->
        check1 s;
        write_reg st ctr d (read_reg st ctr s);
        st.last_load_dest <- -1;
        nx
  | MOVW (d, v) ->
      fun () ->
        write_reg st ctr d v;
        st.last_load_dest <- -1;
        nx
  | MOVT (d, v) ->
      let hi = v lsl 16 in
      fun () ->
        check1 d;
        write_reg st ctr d ((st.regs.(d) land 0xFFFF) lor hi);
        st.last_load_dest <- -1;
        nx
  | ALU (op, d, n, o) -> (
      (* fully specialised per (operation, operand shape): the hot ALU
         path must not pay a dispatch on either *)
      match o with
      | Reg m -> (
          let rr f =
            fun () ->
              check2 n m;
              alu32 ();
              write_reg st ctr d (f (read_reg st ctr n) (read_reg st ctr m));
              st.last_load_dest <- -1;
              nx
          in
          match op with
          | OpAdd -> rr ( + )
          | OpSub -> rr ( - )
          | OpAnd -> rr ( land )
          | OpOrr -> rr ( lor )
          | OpEor -> rr ( lxor )
          | OpLsl -> rr (fun a b -> a lsl (b land 31))
          | OpLsr -> rr (fun a b -> (a land 0xFFFFFFFF) lsr (b land 31))
          | OpAsr ->
              rr (fun a b ->
                  let sa =
                    if a land 0x80000000 <> 0 then a - 0x100000000 else a
                  in
                  sa asr (b land 31)))
      | Imm v -> (
          let ri f =
            fun () ->
              check1 n;
              alu32 ();
              write_reg st ctr d (f (read_reg st ctr n));
              st.last_load_dest <- -1;
              nx
          in
          match op with
          | OpAdd -> ri (fun a -> a + v)
          | OpSub -> ri (fun a -> a - v)
          | OpAnd -> ri (fun a -> a land v)
          | OpOrr -> ri (fun a -> a lor v)
          | OpEor -> ri (fun a -> a lxor v)
          | OpLsl ->
              let sh = v land 31 in
              ri (fun a -> a lsl sh)
          | OpLsr ->
              let sh = v land 31 in
              ri (fun a -> (a land 0xFFFFFFFF) lsr sh)
          | OpAsr ->
              let sh = v land 31 in
              ri (fun a ->
                  let sa =
                    if a land 0x80000000 <> 0 then a - 0x100000000 else a
                  in
                  sa asr sh)))
  | MUL (d, n, m) ->
      fun () ->
        check2 n m;
        ctr.Counters.mul_ops <- ctr.Counters.mul_ops + 1;
        stall_other ctr mul_penalty;
        write_reg st ctr d (read_reg st ctr n * read_reg st ctr m);
        st.last_load_dest <- -1;
        nx
  | DIV (sg, d, n, m) ->
      let signed = sg = Signed in
      fun () ->
        check2 n m;
        ctr.Counters.div_ops <- ctr.Counters.div_ops + 1;
        stall_other ctr div_penalty;
        let a = read_reg st ctr n and b = read_reg st ctr m in
        if b = 0 then raise (Sim_trap Bs_support.Outcome.Division_by_zero);
        let r =
          if signed then
            let s v = if v land 0x80000000 <> 0 then v - 0x100000000 else v in
            s a / s b
          else a / b
        in
        write_reg st ctr d r;
        st.last_load_dest <- -1;
        nx
  | CMP (n, o) -> (
      match o with
      | Reg m ->
          fun () ->
            check2 n m;
            alu32 ();
            st.cmp_a <- read_reg st ctr n;
            st.cmp_b <- read_reg st ctr m;
            st.cmp_width8 <- false;
            st.last_load_dest <- -1;
            nx
      | Imm v ->
          fun () ->
            check1 n;
            alu32 ();
            st.cmp_a <- read_reg st ctr n;
            st.cmp_b <- v;
            st.cmp_width8 <- false;
            st.last_load_dest <- -1;
            nx)
  | CSET (c, d) ->
      fun () ->
        alu32 ();
        write_reg st ctr d (if eval_cond st c then 1 else 0);
        st.last_load_dest <- -1;
        nx
  | B t ->
      fun () ->
        stall_branch ctr;
        st.last_load_dest <- -1;
        t
  | BC (c, t) ->
      fun () ->
        alu32 ();
        st.last_load_dest <- -1;
        if eval_cond st c then begin
          stall_branch ctr;
          t
        end
        else nx
  | BL t ->
      fun () ->
        write_reg st ctr lr nx;
        stall_branch ctr;
        st.last_load_dest <- -1;
        t
  | BX_LR ->
      fun () ->
        let t = read_reg st ctr lr in
        stall_branch ctr;
        st.last_load_dest <- -1;
        t
  | LDR (w, sg, d, n, off) -> (
      let width = match w with W8 -> 8 | W16 -> 16 | W32 -> 32 in
      let finish v =
        write_reg st ctr d v;
        st.last_load_dest <- d;
        nx
      in
      let start () =
        check1 n;
        let addr = (read_reg st ctr n + off) land 0xFFFFFFFF in
        ctr.Counters.loads <- ctr.Counters.loads + 1;
        mem_access cx addr;
        Memimage.read_int mem ~width addr
      in
      match (sg, w) with
      | Signed, W8 ->
          fun () ->
            let v = start () in
            finish (if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v)
      | Signed, W16 ->
          fun () ->
            let v = start () in
            finish (if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v)
      | _ -> fun () -> finish (start ()))
  | STR (w, s, n, off) ->
      let width = match w with W8 -> 8 | W16 -> 16 | W32 -> 32 in
      fun () ->
        check2 s n;
        let addr = (read_reg st ctr n + off) land 0xFFFFFFFF in
        ctr.Counters.stores <- ctr.Counters.stores + 1;
        mem_access cx addr;
        Memimage.write_int mem ~width addr (read_reg st ctr s);
        st.last_load_dest <- -1;
        nx
  | SXT (w, d, s) -> (
      let fin r =
        write_reg st ctr d r;
        st.last_load_dest <- -1;
        nx
      in
      match w with
      | W8 ->
          fun () ->
            check1 s;
            alu32 ();
            let v = read_reg st ctr s in
            fin (if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v land 0xFF)
      | W16 ->
          fun () ->
            check1 s;
            alu32 ();
            let v = read_reg st ctr s in
            fin
              (if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v land 0xFFFF)
      | W32 ->
          fun () ->
            check1 s;
            alu32 ();
            fin (read_reg st ctr s))
  | UXT (w, d, s) ->
      let m = match w with W8 -> 0xFF | W16 -> 0xFFFF | W32 -> 0xFFFFFFFF in
      fun () ->
        check1 s;
        alu32 ();
        write_reg st ctr d (read_reg st ctr s land m);
        st.last_load_dest <- -1;
        nx
  | BALU (op, d, n, o) -> (
      let operand () =
        match o with Sl s -> read_slice cx.st cx.ctr s | BImm v -> v land 0xFF
      in
      match op with
      | BAdd ->
          fun () ->
            classic_slice_trap st;
            check1 n.sl_reg;
            alu8 ();
            let a = read_slice st ctr n in
            let b = operand () in
            let r = a + b in
            st.last_load_dest <- -1;
            if r > 0xFF then misspec cx pcv
            else begin
              write_slice st ctr d r;
              nx
            end
      | BSub ->
          fun () ->
            classic_slice_trap st;
            check1 n.sl_reg;
            alu8 ();
            let a = read_slice st ctr n in
            let b = operand () in
            let r = a - b in
            st.last_load_dest <- -1;
            if r < 0 then misspec cx pcv
            else begin
              write_slice st ctr d r;
              nx
            end
      | BAnd | BOrr | BEor ->
          let f =
            match op with
            | BAnd -> ( land )
            | BOrr -> ( lor )
            | _ -> ( lxor )
          in
          fun () ->
            classic_slice_trap st;
            check1 n.sl_reg;
            alu8 ();
            let a = read_slice st ctr n in
            let b = operand () in
            write_slice st ctr d (f a b);
            st.last_load_dest <- -1;
            nx)
  | BCMPS (n, o) ->
      let operand () =
        match o with Sl s -> read_slice cx.st cx.ctr s | BImm v -> v land 0xFF
      in
      fun () ->
        classic_slice_trap st;
        alu8 ();
        st.cmp_a <- read_slice st ctr n;
        st.cmp_b <- operand ();
        st.cmp_width8 <- true;
        st.last_load_dest <- -1;
        nx
  | BLDRS (d, n, x) ->
      let offset () =
        match x with BOff o -> o | BIdx i -> read_slice cx.st cx.ctr i
      in
      fun () ->
        classic_slice_trap st;
        check1 n;
        let off = offset () in
        let addr = (read_reg st ctr n + off) land 0xFFFFFFFF in
        ctr.Counters.loads <- ctr.Counters.loads + 1;
        mem_access cx addr;
        let v = Memimage.read_int mem ~width:32 addr in
        if v land 0xFFFFFF00 <> 0 then begin
          st.last_load_dest <- -1;
          misspec cx pcv
        end
        else begin
          write_slice st ctr d v;
          st.last_load_dest <- d.sl_reg;
          nx
        end
  | BLDRB (d, n, x) ->
      let offset () =
        match x with BOff o -> o | BIdx i -> read_slice cx.st cx.ctr i
      in
      fun () ->
        classic_slice_trap st;
        check1 n;
        let off = offset () in
        let addr = (read_reg st ctr n + off) land 0xFFFFFFFF in
        ctr.Counters.loads <- ctr.Counters.loads + 1;
        mem_access cx addr;
        write_slice st ctr d (Memimage.read_int mem ~width:8 addr);
        st.last_load_dest <- d.sl_reg;
        nx
  | BSTRB (s, n, x) ->
      let offset () =
        match x with BOff o -> o | BIdx i -> read_slice cx.st cx.ctr i
      in
      fun () ->
        classic_slice_trap st;
        check2 s.sl_reg n;
        let off = offset () in
        let addr = (read_reg st ctr n + off) land 0xFFFFFFFF in
        ctr.Counters.stores <- ctr.Counters.stores + 1;
        mem_access cx addr;
        Memimage.write_int mem ~width:8 addr (read_slice st ctr s);
        st.last_load_dest <- -1;
        nx
  | BEXT (sg, d, s) -> (
      match sg with
      | Unsigned ->
          fun () ->
            classic_slice_trap st;
            check1 s.sl_reg;
            alu8 ();
            write_reg st ctr d (read_slice st ctr s);
            st.last_load_dest <- -1;
            nx
      | Signed ->
          fun () ->
            classic_slice_trap st;
            check1 s.sl_reg;
            alu8 ();
            let v = read_slice st ctr s in
            write_reg st ctr d
              (if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v);
            st.last_load_dest <- -1;
            nx)
  | BTRN (d, s) ->
      fun () ->
        classic_slice_trap st;
        check1 s;
        alu8 ();
        let v = read_reg st ctr s in
        st.last_load_dest <- -1;
        if v land 0xFFFFFF00 <> 0 then misspec cx pcv
        else begin
          write_slice st ctr d v;
          nx
        end
  | BMOV (d, s) ->
      fun () ->
        classic_slice_trap st;
        check1 s.sl_reg;
        write_slice st ctr d (read_slice st ctr s);
        st.last_load_dest <- -1;
        nx
  | BMOVI (d, v) ->
      fun () ->
        classic_slice_trap st;
        write_slice st ctr d v;
        st.last_load_dest <- -1;
        nx
  | SETDELTA v ->
      fun () ->
        st.delta <- v;
        st.last_load_dest <- -1;
        nx
  | SETMODE m ->
      fun () ->
        st.mode <- m;
        st.last_load_dest <- -1;
        nx
  | NOP ->
      fun () ->
        st.last_load_dest <- -1;
        nx
  | HALT ->
      fun () ->
        st.halted <- true;
        st.last_load_dest <- -1;
        nx

let compile_body (cx : ctx) pcv : unit -> int =
  let body = compile_op cx pcv cx.prog.Bs_backend.Asm.code.(pcv) in
  let ctr = cx.ctr in
  (* provenance counting is baked into the body, so untagged instructions
     (the overwhelming majority) pay nothing *)
  match cx.prog.Bs_backend.Asm.prov.(pcv) with
  | PSpillLoad ->
      fun () ->
        ctr.Counters.spill_loads <- ctr.Counters.spill_loads + 1;
        body ()
  | PSpillStore ->
      fun () ->
        ctr.Counters.spill_stores <- ctr.Counters.spill_stores + 1;
        body ()
  | PCopy ->
      fun () ->
        ctr.Counters.copies <- ctr.Counters.copies + 1;
        body ()
  | _ -> body

let compile_bodies (cx : ctx) : (unit -> int) array =
  Array.init (Array.length cx.prog.Bs_backend.Asm.code) (compile_body cx)

(* --- superblock detection ------------------------------------------------ *)

(* An instruction may join a trace if control always falls through it
   (misspeculation exits via a guard) and it cannot change the dispatch
   mode or Δ mid-trace.  Everything else ends the straight line. *)
let fusible = function
  | B _ | BC _ | BL _ | BX_LR | HALT | SETDELTA _ | SETMODE _ -> false
  | _ -> true

let min_trace_len = 2
let max_trace_len = 128
let promote_threshold = 8

type trace = {
  t_head : int;      (* = t_pcs.(0); the dispatch slot the trace owns *)
  t_pcs : int array; (* the executed path: straight-line runs stitched
                        together through interior unconditional jumps and
                        forward conditionals (fall-through direction) *)
  t_stop : int;      (* the first pc NOT on the path: a terminal branch
                        to absorb, or the fall-through successor *)
}

(* Static trace heads: block leaders of the straight-line CFG — function
   entries, branch/call targets, fall-throughs after control flow — plus
   the static misspeculation targets (pc + Δ lands on the skeleton slot
   mirroring pc).

   From each head the trace follows the superblock path:

   - a fusible instruction falls through;
   - a forward conditional continues on its fall-through direction (the
     taken direction becomes a counted guard exit, like a misspeculation
     guard);
   - an unconditional [B] is followed THROUGH: control always transfers,
     so the jump is pure static accounting (taken-branch penalty plus its
     fetch) and the path resumes at the target — this stitches the
     backend's trampolined basic blocks into whole loop bodies;
   - anything with a dynamic or mode-changing successor (BL, BX_LR, HALT,
     SETMODE, SETDELTA), a backward conditional (left terminal so a
     loop-back to the head can re-enter the fused chain directly), a jump
     back to the head or to any pc already on the path (the path would
     cycle), or the length cap ends the walk. *)
let detect (p : Bs_backend.Asm.program) : trace list =
  let code = p.Bs_backend.Asm.code in
  let n = Array.length code in
  let leader = Array.make n false in
  let mark t = if t >= 0 && t < n then leader.(t) <- true in
  Hashtbl.iter (fun _ e -> mark e) p.Bs_backend.Asm.entries;
  Array.iteri
    (fun pcv insn ->
      (match insn with
      | B t -> mark t; mark (pcv + 1)
      | BC (_, t) -> mark t; mark (pcv + 1)
      | BL t -> mark t; mark (pcv + 1)   (* pcv+1 is the return target *)
      | BX_LR | HALT -> mark (pcv + 1)
      | _ -> ());
      if can_misspeculate insn then mark (pcv + p.Bs_backend.Asm.delta))
    code;
  (* [stamp.(pc) = key] marks pc as on the path currently being walked;
     the key is unique per (head, direction preference), so no clearing
     between walks *)
  let stamp = Array.make n (-1) in
  let path = Array.make max_trace_len 0 in
  (* walk the superblock path from head [h].  [prefer_taken] picks the
     direction followed through a forward conditional whose fall-through
     is an unconditional jump — the backend's loop-continue idiom is
     [bcmp; b.cond CONTINUE; b EXIT], so following the taken side can
     close the loop back to [h]; the fall-through side is the safe
     default when it doesn't (a wrong taken-guess would make the hot
     path exit the trace at the guard every time). *)
  let walk h ~prefer_taken =
    let key = (2 * h) + if prefer_taken then 1 else 0 in
    let len = ref 0 in
    let pc = ref h and stop = ref (-1) in
    while !stop < 0 do
      let pcv = !pc in
      if !len = max_trace_len || pcv < 0 || pcv >= n || stamp.(pcv) = key
      then stop := pcv
      else begin
        let continue_at nx =
          path.(!len) <- pcv;
          incr len;
          stamp.(pcv) <- key;
          pc := nx
        in
        match code.(pcv) with
        | B t | BL t ->
            (* jumps and calls transfer unconditionally, so they are pure
               static accounting (plus the link write, for calls) and the
               walk follows them through *)
            if t = h || t < 0 || t >= n || stamp.(t) = key then stop := pcv
            else continue_at t
        | BC (_, t) ->
            if t = h then stop := pcv (* loop-back to the head *)
            else if
              prefer_taken
              && t >= 0 && t < n && stamp.(t) <> key
              && pcv + 1 < n
              && match code.(pcv + 1) with B _ -> true | _ -> false
            then continue_at t
            else continue_at (pcv + 1)
        | insn when fusible insn -> continue_at (pcv + 1)
        | _ -> stop := pcv
      end
    done;
    (!len, !stop)
  in
  let traces = ref [] in
  for h = 0 to n - 1 do
    if leader.(h) && fusible code.(h) then begin
      (* try the loop-seeking walk first; keep it only if it actually
         closes the loop, else take the fall-through walk *)
      let len, stop =
        let len, stop = walk h ~prefer_taken:true in
        let closed =
          stop >= 0 && stop < n
          && match code.(stop) with B t | BC (_, t) -> t = h | _ -> false
        in
        if closed then (len, stop) else walk h ~prefer_taken:false
      in
      (* a trace ending at a branch absorbs it into the fused exit, so
         even a single-instruction block is worth fusing there *)
      let terminal_branch =
        stop >= 0 && stop < n
        && match code.(stop) with
           | B _ | BC _ | BL _ | BX_LR -> true
           | _ -> false
      in
      if len >= min_trace_len || (len >= 1 && terminal_branch) then
        traces :=
          { t_head = h; t_pcs = Array.sub path 0 len; t_stop = stop }
          :: !traces
    end
  done;
  List.rev !traces

(* --- trace fusion -------------------------------------------------------- *)

(* Inside a straight-line trace, almost all bookkeeping is static:

   - every counter a threaded body bumps (register-file reads/writes, ALU
     activity, MUL/DIV penalties, load/store counts, spill provenance) is
     a constant of the opcode;
   - every load-use hazard except the first instruction's is resolved at
     fuse time, because each instruction's [last_load_dest] contribution
     is itself static on the fall-through path;
   - [last_load_dest] only matters to whoever runs AFTER the trace, so it
     is written once at each exit instead of once per instruction.

   Fusion therefore compiles counter-free semantic closures
   ({!fused_step}) and folds the whole static ledger into per-exit
   prefix-sum constants ({!delta}), applied by the exit that actually
   fires: the tail (whole trace completed), or a misspeculation guard at
   position j (instructions 0..j-1 completed plus j's execute side — a
   misspeculating instruction reads its operands and pays its ALU but
   suppresses its write-back).  Dynamic costs — D$/L2 stalls, the entry
   hazard, the misspeculation redirect itself — are still charged at
   runtime as they occur, and a DIV-by-zero raise escapes [run] before
   any result is observable, so deferred flushing is exact. *)

(* Static per-instruction counter ledger: everything a threaded body
   would bump, minus the loop's 1 instr + 1 cycle (charged separately at
   exits) and minus dynamic memory stalls. *)
type delta = {
  x_cycles : int;  (* beyond the base cycle: MUL/DIV penalties, static
                      load-use stalls *)
  x_stall : int;
  x_lu : int;
  x_br : int;      (* branch-stall cycles; only deferred loop-back
                      iterations accumulate these *)
  x_rr32 : int;
  x_rw32 : int;
  x_rr8 : int;
  x_rw8 : int;
  x_alu32 : int;
  x_alu8 : int;
  x_mul : int;
  x_div : int;
  x_loads : int;
  x_stores : int;
  x_spl : int;
  x_sps : int;
  x_cop : int;
}

let dzero =
  { x_cycles = 0; x_stall = 0; x_lu = 0; x_br = 0; x_rr32 = 0; x_rw32 = 0;
    x_rr8 = 0;
    x_rw8 = 0; x_alu32 = 0; x_alu8 = 0; x_mul = 0; x_div = 0; x_loads = 0;
    x_stores = 0; x_spl = 0; x_sps = 0; x_cop = 0 }

let dadd a b =
  { x_cycles = a.x_cycles + b.x_cycles;
    x_stall = a.x_stall + b.x_stall;
    x_lu = a.x_lu + b.x_lu;
    x_br = a.x_br + b.x_br;
    x_rr32 = a.x_rr32 + b.x_rr32;
    x_rw32 = a.x_rw32 + b.x_rw32;
    x_rr8 = a.x_rr8 + b.x_rr8;
    x_rw8 = a.x_rw8 + b.x_rw8;
    x_alu32 = a.x_alu32 + b.x_alu32;
    x_alu8 = a.x_alu8 + b.x_alu8;
    x_mul = a.x_mul + b.x_mul;
    x_div = a.x_div + b.x_div;
    x_loads = a.x_loads + b.x_loads;
    x_stores = a.x_stores + b.x_stores;
    x_spl = a.x_spl + b.x_spl;
    x_sps = a.x_sps + b.x_sps;
    x_cop = a.x_cop + b.x_cop }

(* [dscale d n] = n deferred loop-back iterations' worth of [d]. *)
let dscale d n =
  { x_cycles = d.x_cycles * n;
    x_stall = d.x_stall * n;
    x_lu = d.x_lu * n;
    x_br = d.x_br * n;
    x_rr32 = d.x_rr32 * n;
    x_rw32 = d.x_rw32 * n;
    x_rr8 = d.x_rr8 * n;
    x_rw8 = d.x_rw8 * n;
    x_alu32 = d.x_alu32 * n;
    x_alu8 = d.x_alu8 * n;
    x_mul = d.x_mul * n;
    x_div = d.x_div * n;
    x_loads = d.x_loads * n;
    x_stores = d.x_stores * n;
    x_spl = d.x_spl * n;
    x_sps = d.x_sps * n;
    x_cop = d.x_cop * n }

(* [apply_delta ctr d base]: flush one exit's ledger; [base] is the
   number of completed instructions still owed to instrs/cycles (the
   dispatch loop pre-charged the trace head's). *)
let apply_delta ctr (d : delta) base =
  let open Counters in
  ctr.instrs <- ctr.instrs + base;
  ctr.cycles <- ctr.cycles + base + d.x_cycles;
  (* zero groups are the norm for short traces: skip their writes *)
  if d.x_stall lor d.x_lu lor d.x_br <> 0 then begin
    ctr.stall_cycles <- ctr.stall_cycles + d.x_stall;
    ctr.load_use_stalls <- ctr.load_use_stalls + d.x_lu;
    ctr.branch_stalls <- ctr.branch_stalls + d.x_br
  end;
  if d.x_rr32 lor d.x_rw32 lor d.x_alu32 <> 0 then begin
    ctr.reg_read32 <- ctr.reg_read32 + d.x_rr32;
    ctr.reg_write32 <- ctr.reg_write32 + d.x_rw32;
    ctr.alu32 <- ctr.alu32 + d.x_alu32
  end;
  if d.x_loads lor d.x_stores <> 0 then begin
    ctr.loads <- ctr.loads + d.x_loads;
    ctr.stores <- ctr.stores + d.x_stores
  end;
  if d.x_rr8 lor d.x_rw8 lor d.x_alu8 <> 0 then begin
    ctr.reg_read8 <- ctr.reg_read8 + d.x_rr8;
    ctr.reg_write8 <- ctr.reg_write8 + d.x_rw8;
    ctr.alu8 <- ctr.alu8 + d.x_alu8
  end;
  if d.x_mul lor d.x_div <> 0 then begin
    ctr.mul_ops <- ctr.mul_ops + d.x_mul;
    ctr.div_ops <- ctr.div_ops + d.x_div
  end;
  if d.x_spl lor d.x_sps lor d.x_cop <> 0 then begin
    ctr.spill_loads <- ctr.spill_loads + d.x_spl;
    ctr.spill_stores <- ctr.spill_stores + d.x_sps;
    ctr.copies <- ctr.copies + d.x_cop
  end

let slice_operand_reads = function Sl _ -> 1 | BImm _ -> 0
let boff_reads = function BOff _ -> 0 | BIdx _ -> 1

(* The counters an instruction bumps before (or regardless of) its
   write-back — paid even when it misspeculates.  Must mirror
   {!compile_op} bump for bump; note the asymmetries it inherits from the
   classic loop: MOVT reads its register directly (no read counter), and
   CSET/BCMPS do not hazard-check. *)
let exec_side (insn : insn) =
  match insn with
  | MOV _ -> { dzero with x_rr32 = 1 }
  | MOVW _ | MOVT _ -> dzero
  | ALU (_, _, _, Reg _) -> { dzero with x_rr32 = 2; x_alu32 = 1 }
  | ALU (_, _, _, Imm _) -> { dzero with x_rr32 = 1; x_alu32 = 1 }
  | MUL _ ->
      { dzero with x_rr32 = 2; x_mul = 1; x_cycles = mul_penalty;
        x_stall = mul_penalty }
  | DIV _ ->
      { dzero with x_rr32 = 2; x_div = 1; x_cycles = div_penalty;
        x_stall = div_penalty }
  | CMP (_, Reg _) -> { dzero with x_rr32 = 2; x_alu32 = 1 }
  | CMP (_, Imm _) -> { dzero with x_rr32 = 1; x_alu32 = 1 }
  | CSET _ -> { dzero with x_alu32 = 1 }
  | LDR _ -> { dzero with x_rr32 = 1; x_loads = 1 }
  | STR _ -> { dzero with x_rr32 = 2; x_stores = 1 }
  | SXT _ | UXT _ -> { dzero with x_rr32 = 1; x_alu32 = 1 }
  | BALU (_, _, _, o) ->
      { dzero with x_rr8 = 1 + slice_operand_reads o; x_alu8 = 1 }
  | BCMPS (_, o) -> { dzero with x_rr8 = 1 + slice_operand_reads o; x_alu8 = 1 }
  | BLDRS (_, _, x) | BLDRB (_, _, x) ->
      { dzero with x_rr32 = 1; x_rr8 = boff_reads x; x_loads = 1 }
  | BSTRB (_, _, x) ->
      { dzero with x_rr32 = 1; x_rr8 = 1 + boff_reads x; x_stores = 1 }
  | BEXT _ -> { dzero with x_rr8 = 1; x_alu8 = 1 }
  | BTRN _ -> { dzero with x_rr32 = 1; x_alu8 = 1 }
  | BMOV _ -> { dzero with x_rr8 = 1 }
  | BMOVI _ | NOP -> dzero
  | BC _ -> { dzero with x_alu32 = 1 } (* interior: condition evaluation *)
  | B _ ->
      (* interior: always taken, so the penalty is static *)
      { dzero with x_cycles = branch_penalty; x_stall = branch_penalty;
        x_br = branch_penalty }
  | BL _ ->
      (* interior call: always taken, plus the link-register write *)
      { dzero with x_cycles = branch_penalty; x_stall = branch_penalty;
        x_br = branch_penalty; x_rw32 = 1 }
  | BX_LR | HALT | SETDELTA _ | SETMODE _ ->
      assert false (* never on a trace path *)

(* The write-back counter, suppressed by a misspeculation. *)
let write_side (insn : insn) =
  match insn with
  | MOV _ | MOVW _ | MOVT _ | ALU _ | MUL _ | DIV _ | CSET _ | LDR _
  | SXT _ | UXT _ | BEXT _ ->
      { dzero with x_rw32 = 1 }
  | BALU _ | BLDRS _ | BLDRB _ | BMOV _ | BMOVI _ | BTRN _ ->
      { dzero with x_rw8 = 1 }
  | CMP _ | BCMPS _ | STR _ | BSTRB _ | NOP | BC _ | B _ | BL _ -> dzero
  | BX_LR | HALT | SETDELTA _ | SETMODE _ -> assert false

let prov_delta = function
  | PSpillLoad -> { dzero with x_spl = 1 }
  | PSpillStore -> { dzero with x_sps = 1 }
  | PCopy -> { dzero with x_cop = 1 }
  | _ -> dzero

(* The registers an instruction's load-use hazard check watches — exactly
   the check1/check2 arguments in {!compile_op} (empty where the classic
   loop performs no check). *)
let hazard_regs (insn : insn) =
  match insn with
  | MOV (_, s) -> [ s ]
  | MOVT (d, _) -> [ d ]
  | ALU (_, _, n, Reg m) -> [ n; m ]
  | ALU (_, _, n, Imm _) -> [ n ]
  | MUL (_, n, m) | DIV (_, _, n, m) -> [ n; m ]
  | CMP (n, Reg m) -> [ n; m ]
  | CMP (n, Imm _) -> [ n ]
  | LDR (_, _, _, n, _) -> [ n ]
  | STR (_, s, n, _) -> [ s; n ]
  | SXT (_, _, s) | UXT (_, _, s) -> [ s ]
  | BALU (_, _, n, _) -> [ n.sl_reg ]
  | BLDRS (_, n, _) | BLDRB (_, n, _) -> [ n ]
  | BSTRB (s, n, _) -> [ s.sl_reg; n ]
  | BEXT (_, _, s) -> [ s.sl_reg ]
  | BTRN (_, s) -> [ s ]
  | BMOV (_, s) -> [ s.sl_reg ]
  | MOVW _ | CSET _ | BCMPS _ | BMOVI _ | NOP -> []
  | B _ | BC _ | BL _ | BX_LR | HALT | SETDELTA _ | SETMODE _ -> []

(* The [last_load_dest] an instruction leaves behind on its fall-through
   path (every misspeculation path leaves -1 and exits the trace). *)
let static_load_dest (insn : insn) =
  match insn with
  | LDR (_, _, d, _, _) -> d
  | BLDRS (d, _, _) | BLDRB (d, _, _) -> d.sl_reg
  | _ -> -1

(* Every register-file index an instruction touches.  Fused steps use
   unchecked array accesses, so {!fuse} refuses to fuse any trace whose
   indices are not proven in range here (the assembler never emits such a
   program, but a malformed one must keep the classic engine's
   out-of-bounds exception rather than read garbage). *)
let regs_of_insn (insn : insn) =
  let op = function Sl s -> [ s.sl_reg ] | BImm _ -> [] in
  let idx = function BOff _ -> [] | BIdx i -> [ i.sl_reg ] in
  match insn with
  | MOV (d, s) -> [ d; s ]
  | MOVW (d, _) | MOVT (d, _) | CSET (_, d) -> [ d ]
  | ALU (_, d, n, Reg m) -> [ d; n; m ]
  | ALU (_, d, n, Imm _) -> [ d; n ]
  | MUL (d, n, m) | DIV (_, d, n, m) -> [ d; n; m ]
  | CMP (n, Reg m) -> [ n; m ]
  | CMP (n, Imm _) -> [ n ]
  | LDR (_, _, d, n, _) -> [ d; n ]
  | STR (_, s, n, _) -> [ s; n ]
  | SXT (_, d, s) | UXT (_, d, s) -> [ d; s ]
  | BALU (_, d, n, o) -> d.sl_reg :: n.sl_reg :: op o
  | BCMPS (n, o) -> n.sl_reg :: op o
  | BLDRS (d, n, x) | BLDRB (d, n, x) -> d.sl_reg :: n :: idx x
  | BSTRB (s, n, x) -> s.sl_reg :: n :: idx x
  | BEXT (_, d, s) -> [ d; s.sl_reg ]
  | BTRN (d, s) -> [ d.sl_reg; s ]
  | BMOV (d, s) -> [ d.sl_reg; s.sl_reg ]
  | BMOVI (d, _) -> [ d.sl_reg ]
  | NOP -> []
  | B _ | BC _ | HALT | SETDELTA _ | SETMODE _ -> []
  | BL _ | BX_LR -> [ lr ]

(* One fused position: pure semantics.  No counters, no hazard checks, no
   [last_load_dest] writes, no CLASSIC-mode trap (the trace entry guard
   falls back when the mode is wrong, and SETMODE is not fusible, so the
   mode cannot change mid-trace).  [next] continues the chain; [mis] is
   the counted guard exit for instructions that can misspeculate. *)
let fused_step (cx : ctx) (insn : insn) ~(next : unit -> int)
    ~(mis : (unit -> int) option) : unit -> int =
  let st = cx.st and mem = cx.mem in
  let regs = st.regs in
  (* unchecked register-file accesses — {!fuse} proved every index in
     range via {!regs_of_insn} before building any step *)
  let ( .%() ) = Array.unsafe_get in
  let ( .%()<- ) = Array.unsafe_set in
  (* slice operands are decoded to (index, shift, keep-mask) ints here, and
     every arm below inlines the reads/writes — a fused step is exactly one
     closure call, not a chain of operand thunks *)
  match insn with
  | MOV (d, s) ->
      fun () ->
        regs.%(d) <- regs.%(s);
        next ()
  | MOVW (d, v) ->
      let v = mask32 v in
      fun () ->
        regs.%(d) <- v;
        next ()
  | MOVT (d, v) ->
      let hi = mask32 (v lsl 16) in
      fun () ->
        regs.%(d) <- regs.%(d) land 0xFFFF lor hi;
        next ()
  | ALU (op, d, n, o) -> (
      match o with
      | Reg m -> (
          let rr f =
            fun () ->
              regs.%(d) <- mask32 (f regs.%(n) regs.%(m));
              next ()
          in
          match op with
          | OpAdd -> rr ( + )
          | OpSub -> rr ( - )
          | OpAnd -> rr ( land )
          | OpOrr -> rr ( lor )
          | OpEor -> rr ( lxor )
          | OpLsl -> rr (fun a b -> a lsl (b land 31))
          | OpLsr -> rr (fun a b -> (a land 0xFFFFFFFF) lsr (b land 31))
          | OpAsr ->
              rr (fun a b ->
                  let sa =
                    if a land 0x80000000 <> 0 then a - 0x100000000 else a
                  in
                  sa asr (b land 31)))
      | Imm v -> (
          let ri f =
            fun () ->
              regs.%(d) <- mask32 (f regs.%(n));
              next ()
          in
          match op with
          | OpAdd -> ri (fun a -> a + v)
          | OpSub -> ri (fun a -> a - v)
          | OpAnd -> ri (fun a -> a land v)
          | OpOrr -> ri (fun a -> a lor v)
          | OpEor -> ri (fun a -> a lxor v)
          | OpLsl ->
              let sh = v land 31 in
              ri (fun a -> a lsl sh)
          | OpLsr ->
              let sh = v land 31 in
              ri (fun a -> (a land 0xFFFFFFFF) lsr sh)
          | OpAsr ->
              let sh = v land 31 in
              ri (fun a ->
                  let sa =
                    if a land 0x80000000 <> 0 then a - 0x100000000 else a
                  in
                  sa asr sh)))
  | MUL (d, n, m) ->
      fun () ->
        regs.%(d) <- mask32 (regs.%(n) * regs.%(m));
        next ()
  | DIV (sg, d, n, m) ->
      let signed = sg = Signed in
      fun () ->
        let a = regs.%(n) and b = regs.%(m) in
        if b = 0 then raise (Sim_trap Bs_support.Outcome.Division_by_zero);
        let r =
          if signed then
            let s v = if v land 0x80000000 <> 0 then v - 0x100000000 else v in
            s a / s b
          else a / b
        in
        regs.%(d) <- mask32 r;
        next ()
  | CMP (n, o) -> (
      match o with
      | Reg m ->
          fun () ->
            st.cmp_a <- regs.%(n);
            st.cmp_b <- regs.%(m);
            st.cmp_width8 <- false;
            next ()
      | Imm v ->
          fun () ->
            st.cmp_a <- regs.%(n);
            st.cmp_b <- v;
            st.cmp_width8 <- false;
            next ())
  | CSET (c, d) ->
      fun () ->
        regs.%(d) <- (if eval_cond st c then 1 else 0);
        next ()
  | LDR (w, sg, d, n, off) -> (
      match (sg, w) with
      | Signed, W8 ->
          fun () ->
            let addr = (regs.%(n) + off) land 0xFFFFFFFF in
            mem_access cx addr;
            let v = Memimage.read_int mem ~width:8 addr in
            regs.%(d) <- (if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v);
            next ()
      | Signed, W16 ->
          fun () ->
            let addr = (regs.%(n) + off) land 0xFFFFFFFF in
            mem_access cx addr;
            let v = Memimage.read_int mem ~width:16 addr in
            regs.%(d) <-
              (if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v);
            next ()
      | _ ->
          let width = match w with W8 -> 8 | W16 -> 16 | W32 -> 32 in
          fun () ->
            let addr = (regs.%(n) + off) land 0xFFFFFFFF in
            mem_access cx addr;
            regs.%(d) <- Memimage.read_int mem ~width addr;
            next ())
  | STR (w, s, n, off) ->
      let width = match w with W8 -> 8 | W16 -> 16 | W32 -> 32 in
      fun () ->
        let addr = (regs.%(n) + off) land 0xFFFFFFFF in
        mem_access cx addr;
        Memimage.write_int mem ~width addr regs.%(s);
        next ()
  | SXT (w, d, s) -> (
      match w with
      | W8 ->
          fun () ->
            let v = regs.%(s) in
            regs.%(d) <-
              (if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v land 0xFF);
            next ()
      | W16 ->
          fun () ->
            let v = regs.%(s) in
            regs.%(d) <-
              (if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v land 0xFFFF);
            next ()
      | W32 ->
          fun () ->
            regs.%(d) <- regs.%(s);
            next ())
  | UXT (w, d, s) ->
      let m = match w with W8 -> 0xFF | W16 -> 0xFFFF | W32 -> 0xFFFFFFFF in
      fun () ->
        regs.%(d) <- regs.%(s) land m;
        next ()
  | BALU (op, d, n, o) -> (
      let nr = n.sl_reg and ns = 8 * n.sl_byte in
      let dr = d.sl_reg and ds = 8 * d.sl_byte in
      let keep = lnot (0xFF lsl ds) land 0xFFFFFFFF in
      (* every fall-through value below is already in [0, 0xFF] (guarded
         for add/sub, structural for the logic ops), so the slice write
         skips the byte mask *)
      match (op, o) with
      | BAdd, Sl s ->
          let sr = s.sl_reg and ss = 8 * s.sl_byte in
          let mis = Option.get mis in
          fun () ->
            let r =
              ((regs.%(nr) lsr ns) land 0xFF)
              + ((regs.%(sr) lsr ss) land 0xFF)
            in
            if r > 0xFF then mis ()
            else begin
              regs.%(dr) <- regs.%(dr) land keep lor (r lsl ds);
              next ()
            end
      | BAdd, BImm v ->
          let v = v land 0xFF in
          let mis = Option.get mis in
          fun () ->
            let r = ((regs.%(nr) lsr ns) land 0xFF) + v in
            if r > 0xFF then mis ()
            else begin
              regs.%(dr) <- regs.%(dr) land keep lor (r lsl ds);
              next ()
            end
      | BSub, Sl s ->
          let sr = s.sl_reg and ss = 8 * s.sl_byte in
          let mis = Option.get mis in
          fun () ->
            let r =
              ((regs.%(nr) lsr ns) land 0xFF)
              - ((regs.%(sr) lsr ss) land 0xFF)
            in
            if r < 0 then mis ()
            else begin
              regs.%(dr) <- regs.%(dr) land keep lor (r lsl ds);
              next ()
            end
      | BSub, BImm v ->
          let v = v land 0xFF in
          let mis = Option.get mis in
          fun () ->
            let r = ((regs.%(nr) lsr ns) land 0xFF) - v in
            if r < 0 then mis ()
            else begin
              regs.%(dr) <- regs.%(dr) land keep lor (r lsl ds);
              next ()
            end
      | BAnd, Sl s ->
          let sr = s.sl_reg and ss = 8 * s.sl_byte in
          fun () ->
            let r = (regs.%(nr) lsr ns) land (regs.%(sr) lsr ss) land 0xFF in
            regs.%(dr) <- regs.%(dr) land keep lor (r lsl ds);
            next ()
      | BAnd, BImm v ->
          let v = v land 0xFF in
          fun () ->
            let r = (regs.%(nr) lsr ns) land v in
            regs.%(dr) <- regs.%(dr) land keep lor (r lsl ds);
            next ()
      | BOrr, Sl s ->
          let sr = s.sl_reg and ss = 8 * s.sl_byte in
          fun () ->
            let r =
              ((regs.%(nr) lsr ns) lor (regs.%(sr) lsr ss)) land 0xFF
            in
            regs.%(dr) <- regs.%(dr) land keep lor (r lsl ds);
            next ()
      | BOrr, BImm v ->
          let v = v land 0xFF in
          fun () ->
            let r = ((regs.%(nr) lsr ns) land 0xFF) lor v in
            regs.%(dr) <- regs.%(dr) land keep lor (r lsl ds);
            next ()
      | BEor, Sl s ->
          let sr = s.sl_reg and ss = 8 * s.sl_byte in
          fun () ->
            let r =
              ((regs.%(nr) lsr ns) lxor (regs.%(sr) lsr ss)) land 0xFF
            in
            regs.%(dr) <- regs.%(dr) land keep lor (r lsl ds);
            next ()
      | BEor, BImm v ->
          let v = v land 0xFF in
          fun () ->
            let r = ((regs.%(nr) lsr ns) land 0xFF) lxor v in
            regs.%(dr) <- regs.%(dr) land keep lor (r lsl ds);
            next ())
  | BCMPS (n, o) -> (
      let nr = n.sl_reg and ns = 8 * n.sl_byte in
      match o with
      | Sl s ->
          let sr = s.sl_reg and ss = 8 * s.sl_byte in
          fun () ->
            st.cmp_a <- (regs.%(nr) lsr ns) land 0xFF;
            st.cmp_b <- (regs.%(sr) lsr ss) land 0xFF;
            st.cmp_width8 <- true;
            next ()
      | BImm v ->
          let v = v land 0xFF in
          fun () ->
            st.cmp_a <- (regs.%(nr) lsr ns) land 0xFF;
            st.cmp_b <- v;
            st.cmp_width8 <- true;
            next ())
  | BLDRS (d, n, x) -> (
      let dr = d.sl_reg and ds = 8 * d.sl_byte in
      let keep = lnot (0xFF lsl ds) land 0xFFFFFFFF in
      let mis = Option.get mis in
      match x with
      | BOff o ->
          fun () ->
            let addr = (regs.%(n) + o) land 0xFFFFFFFF in
            mem_access cx addr;
            let v = Memimage.read_int mem ~width:32 addr in
            if v land 0xFFFFFF00 <> 0 then mis ()
            else begin
              regs.%(dr) <- regs.%(dr) land keep lor (v lsl ds);
              next ()
            end
      | BIdx i ->
          let ir = i.sl_reg and is = 8 * i.sl_byte in
          fun () ->
            let addr =
              (regs.%(n) + ((regs.%(ir) lsr is) land 0xFF)) land 0xFFFFFFFF
            in
            mem_access cx addr;
            let v = Memimage.read_int mem ~width:32 addr in
            if v land 0xFFFFFF00 <> 0 then mis ()
            else begin
              regs.%(dr) <- regs.%(dr) land keep lor (v lsl ds);
              next ()
            end)
  | BLDRB (d, n, x) -> (
      let dr = d.sl_reg and ds = 8 * d.sl_byte in
      let keep = lnot (0xFF lsl ds) land 0xFFFFFFFF in
      match x with
      | BOff o ->
          fun () ->
            let addr = (regs.%(n) + o) land 0xFFFFFFFF in
            mem_access cx addr;
            let v = Memimage.read_int mem ~width:8 addr in
            regs.%(dr) <- regs.%(dr) land keep lor (v lsl ds);
            next ()
      | BIdx i ->
          let ir = i.sl_reg and is = 8 * i.sl_byte in
          fun () ->
            let addr =
              (regs.%(n) + ((regs.%(ir) lsr is) land 0xFF)) land 0xFFFFFFFF
            in
            mem_access cx addr;
            let v = Memimage.read_int mem ~width:8 addr in
            regs.%(dr) <- regs.%(dr) land keep lor (v lsl ds);
            next ())
  | BSTRB (s, n, x) -> (
      let sr = s.sl_reg and ss = 8 * s.sl_byte in
      match x with
      | BOff o ->
          fun () ->
            let addr = (regs.%(n) + o) land 0xFFFFFFFF in
            mem_access cx addr;
            Memimage.write_int mem ~width:8 addr
              ((regs.%(sr) lsr ss) land 0xFF);
            next ()
      | BIdx i ->
          let ir = i.sl_reg and is = 8 * i.sl_byte in
          fun () ->
            let addr =
              (regs.%(n) + ((regs.%(ir) lsr is) land 0xFF)) land 0xFFFFFFFF
            in
            mem_access cx addr;
            Memimage.write_int mem ~width:8 addr
              ((regs.%(sr) lsr ss) land 0xFF);
            next ())
  | BEXT (sg, d, s) -> (
      let sr = s.sl_reg and ss = 8 * s.sl_byte in
      match sg with
      | Unsigned ->
          fun () ->
            regs.%(d) <- (regs.%(sr) lsr ss) land 0xFF;
            next ()
      | Signed ->
          fun () ->
            let v = (regs.%(sr) lsr ss) land 0xFF in
            regs.%(d) <- (if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v);
            next ())
  | BTRN (d, s) ->
      let dr = d.sl_reg and ds = 8 * d.sl_byte in
      let keep = lnot (0xFF lsl ds) land 0xFFFFFFFF in
      let mis = Option.get mis in
      fun () ->
        let v = regs.%(s) in
        if v land 0xFFFFFF00 <> 0 then mis ()
        else begin
          regs.%(dr) <- regs.%(dr) land keep lor (v lsl ds);
          next ()
        end
  | BMOV (d, s) ->
      let dr = d.sl_reg and ds = 8 * d.sl_byte in
      let keep = lnot (0xFF lsl ds) land 0xFFFFFFFF in
      let sr = s.sl_reg and ss = 8 * s.sl_byte in
      fun () ->
        let v = (regs.%(sr) lsr ss) land 0xFF in
        regs.%(dr) <- regs.%(dr) land keep lor (v lsl ds);
        next ()
  | BMOVI (d, v) ->
      let dr = d.sl_reg and ds = 8 * d.sl_byte in
      let keep = lnot (0xFF lsl ds) land 0xFFFFFFFF in
      let bits = (v land 0xFF) lsl ds in
      fun () ->
        regs.%(dr) <- regs.%(dr) land keep lor bits;
        next ()
  | NOP -> next
  | B _ | BC _ | BL _ | BX_LR | HALT | SETDELTA _ | SETMODE _ ->
      assert false

(* Fuse one trace into a single closure with the same contract as a body:
   called after the loop has fetched/charged/fuel-checked the head, it
   executes the whole straight line and returns the successor pc.

   What the fusion removes relative to the threaded loop:

   - the per-instruction loop itself (fetch, charge, fuel check,
     dispatch): fetches are batched per I$ line — the first access of
     each line goes through {!fetch} at the crossing (it alone can miss),
     the rest are replayed as guaranteed same-line hits with
     {!Cache.bump_hits} at the next crossing or exit;
   - every static counter bump and statically-resolved hazard stall,
     flushed as one precomputed {!delta} at the exit that fires;
   - fuel is checked once at entry (if the budget could expire mid-trace,
     fall back to single-step dispatch, which finds the exact boundary).

   Guard exits: a misspeculating instruction branches to its dedicated
   exit closure, which flushes the prefix ledger (its own execute side
   included, its write-back suppressed), restores [last_load_dest], pays
   the redirect through {!misspec} and returns the displaced pc — the
   software mirror of the hardware's PC := PC + Δ fallback. *)
(* Precondition for {!fuse}: every register-file index in the trace is in
   range, so the unchecked accesses in {!fused_step} are sound.  Any
   program the assembler emits passes; a malformed one stays on the
   threaded bodies and raises exactly where the classic engine would. *)
let trace_regs_ok (cx : ctx) (tr : trace) =
  let code = cx.prog.Bs_backend.Asm.code in
  let nregs = Array.length cx.st.regs in
  let ok = ref true in
  Array.iter
    (fun pcv ->
      List.iter
        (fun r -> if r < 0 || r >= nregs then ok := false)
        (regs_of_insn code.(pcv)))
    tr.t_pcs;
  !ok

let fuse (cx : ctx) (tr : trace) (fallback : unit -> int) : unit -> int =
  let ctr = cx.ctr and icache = cx.icache and st = cx.st in
  let pcs = tr.t_pcs and stop = tr.t_stop in
  let head = tr.t_head and len = Array.length tr.t_pcs in
  let code = cx.prog.Bs_backend.Asm.code in
  let prov = cx.prog.Bs_backend.Asm.prov in
  let fuel = cx.fuel in
  (* patched to the first chained step once it exists; the looping tail
     tail-calls through it to start the next iteration without bouncing
     through the dispatch loop *)
  let first_ref = ref fallback in
  let has_slice = ref false in
  for j = 0 to len - 1 do
    if is_slice_insn code.(pcs.(j)) then has_slice := true
  done;
  let has_slice = !has_slice in
  (* pend.(j): same-line fetch hits deferred up to and including position
     j's fetch (position 0 was fetched by the loop, so pend.(0) = 0) *)
  let line pcv = pcv lsr 3 in          (* 32-byte lines, 4-byte slots *)
  let pend = Array.make len 0 in
  for j = 1 to len - 1 do
    pend.(j) <-
      (if line pcs.(j) <> line pcs.(j - 1) then 0 else pend.(j - 1) + 1)
  done;
  (* the static ledger: exec.(j) is position j's execute side (operand
     reads, ALU activity, penalties, provenance, and — statically
     resolved for j >= 1 — its load-use stall); pre.(j) accumulates the
     full fall-through ledger of positions 0..j-1 *)
  (* the path position after j: the next element, or the trace's stop *)
  let succ j = if j + 1 < len then pcs.(j + 1) else stop in
  (* a conditional on the path followed its taken direction (the
     not-taken side is its guard exit, so the taken penalty is static) *)
  let followed_taken j =
    match code.(pcs.(j)) with BC (_, t) -> succ j = t | _ -> false
  in
  let exec =
    Array.init len (fun j ->
        let insn = code.(pcs.(j)) in
        let d = dadd (exec_side insn) (prov_delta prov.(pcs.(j))) in
        let d =
          if followed_taken j then
            { d with x_cycles = d.x_cycles + branch_penalty;
              x_stall = d.x_stall + branch_penalty;
              x_br = d.x_br + branch_penalty }
          else d
        in
        if j = 0 then d (* the entry hazard is dynamic; checked at runtime *)
        else
          let prev = static_load_dest code.(pcs.(j - 1)) in
          if prev >= 0 && List.mem prev (hazard_regs insn) then
            { d with x_cycles = d.x_cycles + 1; x_stall = d.x_stall + 1;
              x_lu = d.x_lu + 1 }
          else d)
  in
  let pre = Array.make (len + 1) dzero in
  for j = 0 to len - 1 do
    pre.(j + 1) <- dadd pre.(j) (dadd exec.(j) (write_side code.(pcs.(j))))
  done;
  (* terminal detection comes first: a terminal branch back to the trace
     head makes this a LOOP trace, whose taken path defers its ledger *)
  let term =
    if stop >= 0 && stop < Array.length code then
      match code.(stop) with
      | (B _ | BC _ | BL _ | BX_LR) as i -> Some i
      | _ -> None
    else None
  in
  let d_tail =
    match term with
    | None -> pre.(len)
    | Some br -> (
        let d = dadd pre.(len) (prov_delta prov.(stop)) in
        match br with
        | BC _ -> { d with x_alu32 = d.x_alu32 + 1 }
        | BL _ -> { d with x_rw32 = d.x_rw32 + 1 }
        | BX_LR -> { d with x_rr32 = d.x_rr32 + 1 }
        | _ -> d)
  in
  let looping =
    match term with
    | Some (B t) | Some (BC (_, t)) -> t = head
    | _ -> false
  in
  (* A loop trace defers whole iterations: its taken loop-back branch
     only counts the finished iteration in [k] and tail-calls back into
     the chain; every real exit settles the [k] outstanding iterations in
     one scaled flush.  Each deferred iteration owes the full tail ledger
     [d_tail], the taken-branch penalty, and the next head's pre-charge
     (the +1 inside [lenp1]).  Instruction-cache traffic is NOT deferred
     — every iteration fetches for real — so the cache model stays exact
     at every point.  [k] is zero whenever the trace is entered from the
     dispatch loop: every exit below settles it, and an exception
     escaping mid-trace aborts the run before the closure can be entered
     again. *)
  let k = ref 0 in
  let lenp1 = len + 1 in
  let d_iter =
    dadd d_tail
      { dzero with x_cycles = branch_penalty; x_stall = branch_penalty;
        x_br = branch_penalty }
  in
  let flush d base =
    let kk = !k in
    if kk = 0 then apply_delta ctr d base
    else begin
      k := 0;
      apply_delta ctr (dadd (dscale d_iter kk) d) ((kk * lenp1) + base)
    end
  in
  (* guard exit at position j: 0..j-1 completed, j misspeculated *)
  let mis_exit j =
    let d = dadd pre.(j) exec.(j) and p = pend.(j) and pc = pcs.(j) in
    fun () ->
      Cache.bump_hits icache p;
      flush d j;
      st.last_load_dest <- -1;
      misspec cx pc
  in
  (* the normal exit charges the full trace; if the straight line ends at
     a branch, absorb it — the branch's fetch is either one more batched
     same-line hit or the first access of its line, its instr/cycle joins
     the flush, and the exit returns the branch target directly instead
     of bouncing the branch through the dispatch loop *)
  let tail =
    match term with
    | None ->
        let d = pre.(len) and p = pend.(len - 1) in
        let lld = static_load_dest code.(pcs.(len - 1)) in
        let nx = stop in
        fun () ->
          Cache.bump_hits icache p;
          apply_delta ctr d (len - 1);
          st.last_load_dest <- lld;
          nx
    | Some br -> (
        let same_line = line stop = line pcs.(len - 1) in
        let p = if same_line then pend.(len - 1) + 1 else pend.(len - 1) in
        if looping then
          (* The taken path replays the dispatch loop's per-instruction
             work inline — fetch the head, defer its pre-charge into [k],
             re-check the fuel budget — and tail-calls back into the
             chain.  The entry-time guards hold statically on this path:
             the dynamic position-0 hazard cannot fire because a branch
             leaves [last_load_dest] = -1, and the CLASSIC-mode slice
             check cannot change inside the trace (SETMODE is not
             fusible and every misspeculation exits).  When the next
             iteration might cross the fuel limit, settle and return to
             the dispatch loop, which re-enters through the guarded
             entry and single-steps up to the exact boundary. *)
          let taken_continue () =
            if ctr.Counters.instrs + ((!k + 1) * lenp1) + len > fuel
            then begin
              stall_branch ctr;
              flush d_tail len;
              st.last_load_dest <- -1;
              head
            end
            else begin
              incr k;
              fetch cx head;
              !first_ref ()
            end
          in
          match br with
          | B _ ->
              if same_line then
                fun () ->
                  Cache.bump_hits icache p;
                  taken_continue ()
              else
                fun () ->
                  Cache.bump_hits icache p;
                  fetch cx stop;
                  taken_continue ()
          | BC (c, _) ->
              let nx = stop + 1 in
              let exit_nx () =
                flush d_tail len;
                st.last_load_dest <- -1;
                nx
              in
              if same_line then
                fun () ->
                  Cache.bump_hits icache p;
                  if eval_cond st c then taken_continue () else exit_nx ()
              else
                fun () ->
                  Cache.bump_hits icache p;
                  fetch cx stop;
                  if eval_cond st c then taken_continue () else exit_nx ()
          | _ -> assert false
        else
          let fin =
            match br with
            | B t ->
                fun () ->
                  stall_branch ctr;
                  t
            | BC (c, t) ->
                let nx = stop + 1 in
                fun () ->
                  if eval_cond st c then begin
                    stall_branch ctr;
                    t
                  end
                  else nx
            | BL t ->
                let link = stop + 1 in
                fun () ->
                  st.regs.(lr) <- link;
                  stall_branch ctr;
                  t
            | BX_LR ->
                fun () ->
                  stall_branch ctr;
                  st.regs.(lr)
            | _ -> assert false
          in
          if same_line then
            fun () ->
              Cache.bump_hits icache p;
              apply_delta ctr d_tail len;
              st.last_load_dest <- -1;
              fin ()
          else
            fun () ->
              Cache.bump_hits icache p;
              fetch cx stop;
              apply_delta ctr d_tail len;
              st.last_load_dest <- -1;
              fin ())
  in
  (* build the chain back to front *)
  let chain = ref tail in
  for j = len - 1 downto 0 do
    let pcv = pcs.(j) in
    let insn = code.(pcv) in
    let step =
      match insn with
      | B _ ->
          (* interior unconditional jump: control always transfers, so
             there is nothing to do at runtime — its ledger (always-taken
             penalty, provenance) is static in [exec.(j)], and the
             target's fetch is the next position's line-crossing
             wrapper *)
          !chain
      | BL _ ->
          (* interior call: like a jump, but the link write is
             semantic — only the register store happens at runtime (its
             counter is static, in [exec.(j)]) *)
          let link = pcv + 1 in
          let nx = !chain in
          fun () ->
            st.regs.(lr) <- link;
            nx ()
      | BC (c, _) when followed_taken j ->
          (* interior conditional followed on its taken direction: the
             chain continues at the target (the taken penalty is static,
             in [exec.(j)]); the not-taken direction is a counted guard
             exit — positions 0..j complete, minus the unpaid penalty *)
          let d =
            dadd pre.(j)
              { exec.(j) with
                x_cycles = exec.(j).x_cycles - branch_penalty;
                x_stall = exec.(j).x_stall - branch_penalty;
                x_br = exec.(j).x_br - branch_penalty }
          and p = pend.(j) in
          let nx = !chain in
          let ft = pcv + 1 in
          fun () ->
            if eval_cond st c then nx ()
            else begin
              Cache.bump_hits icache p;
              flush d j;
              st.last_load_dest <- -1;
              ft
            end
      | BC (c, t) ->
          (* interior forward conditional on its fall-through direction:
             the taken direction is a counted guard exit — positions 0..j
             (the branch included) complete, plus the taken-branch
             penalty *)
          let d = dadd pre.(j) exec.(j) and p = pend.(j) in
          let nx = !chain in
          fun () ->
            if eval_cond st c then begin
              Cache.bump_hits icache p;
              flush d j;
              st.last_load_dest <- -1;
              stall_branch ctr;
              t
            end
            else nx ()
      | _ ->
          let mis =
            if can_misspeculate insn then Some (mis_exit j) else None
          in
          fused_step cx insn ~next:!chain ~mis
    in
    chain :=
      if j > 0 && line pcv <> line pcs.(j - 1) then begin
        let p = pend.(j - 1) in
        fun () ->
          Cache.bump_hits icache p;
          fetch cx pcv;
          step ()
      end
      else step
  done;
  (* position 0: already fetched and charged by the loop, but its hazard
     depends on whatever loaded before the trace — keep it dynamic *)
  let first = !chain in
  first_ref := first;
  let entry =
    match hazard_regs code.(head) with
    | [] -> first
    | [ a ] ->
        fun () ->
          if st.last_load_dest = a then stall_load_use ctr;
          first ()
    | [ a; b ] ->
        fun () ->
          if st.last_load_dest = a || st.last_load_dest = b then
            stall_load_use ctr;
          first ()
    | _ -> assert false
  in
  let budget = match term with None -> len - 1 | Some _ -> len in
  fun () ->
    (* entry guards: if fuel can expire inside the trace, or a CLASSIC-mode
       slice trap must fire at its exact instruction, fall back to the
       single-step head body and let the threaded loop decide *)
    if ctr.Counters.instrs + budget > fuel then fallback ()
    else if has_slice && st.mode = Isa.Classic then fallback ()
    else entry ()

(* Lazy promotion: each trace head starts as a profiling closure counting
   executions; at [promote_threshold] it fuses the trace once and replaces
   itself.  Cold heads never pay fusion. *)
let install_jit (cx : ctx) (bodies : (unit -> int) array) :
    (unit -> int) array =
  let dispatch = Array.copy bodies in
  List.iter
    (fun tr ->
      let head = tr.t_head in
      let base = bodies.(head) in
      let count = ref 0 in
      dispatch.(head) <-
        (fun () ->
          incr count;
          if !count >= promote_threshold then begin
            let fused =
              if trace_regs_ok cx tr then fuse cx tr base else base
            in
            dispatch.(head) <- fused;
            fused ()
          end
          else base ()))
    (detect cx.prog);
  dispatch
