open Bs_isa
open Isa
open Bs_interp
open Superblock

(* The BSARM machine model: a 32-bit, single-issue, in-order 6-stage
   pipeline with the BITSPEC misspeculation hardware (§3.5).

   Register slices alias register bytes exactly as in hardware: reading
   slice (r, k) extracts byte k of Rr, writing it replaces that byte only.
   The slice ALU detects misspeculation from carry/overflow at the slice
   boundary; on misspeculation the result is not written and the PC is
   displaced by the Δ special register, landing on the skeleton branch
   that enters the current region's handler.

   Timing: 1 cycle per instruction, +2 for taken branches (fetch
   redirect), +1 for load-use hazards, +2 for MUL, +10 for DIV, plus the
   memory hierarchy (L1 hit 0, L2 8, DRAM 60 extra cycles).  Misspeculation
   costs the redirect plus the skeleton branch.

   Three dispatch engines execute the same model (see [Superblock]):

   - [Classic]: the reference fetch-decode-execute loop, one big match
     per step.  The baseline the other engines are differenced against.
   - [Threaded]: direct-threaded dispatch — per-PC pre-compiled closures,
     one indirect call per step.
   - [Jit]: threaded dispatch plus the superblock trace-JIT fusing hot
     straight-line runs into single closures with guard exits.  Under
     power traces or fault injection every instruction is a potential
     checkpoint/outage/fault boundary, so the JIT degenerates to
     threaded dispatch.

   All three must produce byte-identical results — counters, outcome,
   memory image, cache state.  CI and the engine-equivalence property
   tests difference them across the fuzz corpus. *)

exception Sim_trap = Superblock.Sim_trap

(* Fault injection (soft-error model): one single-bit flip, applied just
   before the [at_instr]-th dynamic instruction executes.  Targets mirror
   the hardware state the paper's mechanism touches: register (slice)
   bits, memory bits, and the Δ redirect register. *)
type fault_target =
  | Flip_reg of int * int     (* register, bit 0-31 (bits 0-7 of byte k
                                 alias slice (r, k)) *)
  | Flip_mem of int * int     (* byte address, bit 0-7 *)
  | Flip_delta of int         (* bit of the Δ special register *)

type fault = { at_instr : int; target : fault_target }

(* Intermittent-power execution: run under a seeded outage trace with a
   checkpoint policy.  On an outage the machine rolls back to the last
   checkpoint (registers via [Checkpoint.saved], memory via the
   [Memimage] undo journal) and re-executes; [max_retries] consecutive
   restores without an intervening checkpoint degrade the policy to
   additionally checkpoint before every store, and twice that gives up
   with the [Livelock] outcome. *)
type power = {
  trace : Powertrace.t;
  policy : Checkpoint.policy;
  max_retries : int;
}

type engine = Classic | Threaded | Jit

type config = {
  mode : Isa.mode;
  fuel : int;                 (* max dynamic instructions *)
  fault : fault option;       (* inject one bit flip during the run *)
  power : power option;       (* run under injected power failures *)
  engine : engine;            (* dispatch engine; identical results *)
}

let default_config =
  { mode = Isa.Bitspec; fuel = 1_000_000_000; fault = None; power = None;
    engine = Jit }

type result = {
  r0 : int64;
  outcome : Bs_support.Outcome.t;
  fault_applied : bool;
  ctr : Counters.t;
  icache : Cache.t;
  dcache : Cache.t;
  l2 : Cache.t;
  misspec_pcs : (int * int) list;
      (* (pc, count) per misspeculating instruction, sorted by pc;
         counts sum to [ctr.misspecs].  Resolve pcs to source sites
         through [Asm.program.srcmap]. *)
}

(* Misspeculation: redirect the in-flight PC ([st.next]) by Δ.
   [pc_counts] charges the event to the faulting pc for attribution.
   (Classic loop only — the threaded bodies use [Superblock.misspec],
   which returns the displaced successor instead.) *)
let misspeculate ctr pc_counts (st : state) =
  ctr.Counters.misspecs <- ctr.Counters.misspecs + 1;
  (match Hashtbl.find_opt pc_counts st.pc with
  | Some n -> Hashtbl.replace pc_counts st.pc (n + 1)
  | None -> Hashtbl.add pc_counts st.pc 1);
  st.next <- st.pc + st.delta;
  ctr.Counters.cycles <- ctr.Counters.cycles + branch_penalty;
  ctr.Counters.stall_cycles <- ctr.Counters.stall_cycles + branch_penalty;
  ctr.Counters.branch_stalls <- ctr.Counters.branch_stalls + branch_penalty

(* Pre-decoded per-PC metadata, computed once per run (O(static code),
   amortised over millions of dynamic steps): the provenance counter tag
   and the slice-extension flag, packed in one int so the fetch-execute
   loop reads a single flat array instead of re-inspecting the encoded
   stream every step. *)
let meta_none = 0
let meta_spill_load = 1
let meta_spill_store = 2
let meta_copy = 3
let meta_prov_mask = 3
let meta_slice = 4
let meta_store = 8

let predecode (p : Bs_backend.Asm.program) : int array =
  let n = Array.length p.Bs_backend.Asm.code in
  let meta = Array.make n 0 in
  for pc = 0 to n - 1 do
    let prov_tag =
      match p.Bs_backend.Asm.prov.(pc) with
      | PSpillLoad -> meta_spill_load
      | PSpillStore -> meta_spill_store
      | PCopy -> meta_copy
      | _ -> meta_none
    in
    let slice =
      if is_slice_insn p.Bs_backend.Asm.code.(pc) then meta_slice else 0
    in
    let store =
      match p.Bs_backend.Asm.code.(pc) with
      | STR _ | BSTRB _ -> meta_store
      | _ -> 0
    in
    meta.(pc) <- prov_tag lor slice lor store
  done;
  meta

let run ?(config = default_config) (p : Bs_backend.Asm.program)
    (mem : Memimage.t) ~entry ~(args : int64 list) : result =
  let t_start = Unix.gettimeofday () in
  let ctr = Counters.create () in
  let misspec_pc_counts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let icache = Cache.l1i () and dcache = Cache.l1d () and l2 = Cache.l2 () in
  let st =
    { Superblock.regs = Array.make num_regs 0; pc = 0; next = 0;
      delta = p.Bs_backend.Asm.delta;
      mode = config.mode; halted = false; cmp_a = 0; cmp_b = 0;
      cmp_width8 = false; last_load_dest = -1; loaded = -1 }
  in
  let code = p.Bs_backend.Asm.code in
  let meta = predecode p in
  let entry_pc =
    match Hashtbl.find_opt p.Bs_backend.Asm.entries entry with
    | Some e -> e
    | None -> raise (Sim_trap (Bs_support.Outcome.Unknown_entry entry))
  in
  (* stack and arguments (stack-args convention) *)
  let sp_top = Memimage.size mem - 64 in
  let n = List.length args in
  let sp0 = sp_top - (4 * n) in
  List.iteri
    (fun k a -> Memimage.write mem ~width:32 (sp0 + (4 * k)) a)
    args;
  st.regs.(sp) <- sp0;
  st.regs.(lr) <- p.Bs_backend.Asm.halt_pc;
  st.pc <- entry_pc;
  let stall n kind =
    ctr.Counters.cycles <- ctr.Counters.cycles + n;
    ctr.Counters.stall_cycles <- ctr.Counters.stall_cycles + n;
    match kind with
    | `Branch -> ctr.Counters.branch_stalls <- ctr.Counters.branch_stalls + n
    | `LoadUse -> ctr.Counters.load_use_stalls <- ctr.Counters.load_use_stalls + n
    | `Other -> ()
  in
  let mem_access addr =
    (* D$ -> L2 -> DRAM *)
    ctr.Counters.cycles <- ctr.Counters.cycles + 0;
    if not (Cache.access dcache addr) then
      if Cache.access l2 addr then stall l2_latency `Other
      else stall (l2_latency + dram_latency) `Other
  in
  let fetch pcv =
    if not (Cache.access icache (pcv * 4)) then
      if Cache.access l2 (0x40_0000 + (pcv * 4)) then stall l2_latency `Other
      else stall (l2_latency + dram_latency) `Other
  in
  let alu32_count () = ctr.Counters.alu32 <- ctr.Counters.alu32 + 1 in
  let alu8_count () = ctr.Counters.alu8 <- ctr.Counters.alu8 + 1 in
  (* load-use hazard checks, register operands passed directly (the hot
     loop allocates no per-step lists; [last_load_dest] is -1 when the
     previous instruction was not a load, and registers are >= 0) *)
  let check1 a = if st.last_load_dest = a then stall 1 `LoadUse in
  let check2 a b =
    if st.last_load_dest = a || st.last_load_dest = b then stall 1 `LoadUse
  in
  let outcome = ref Bs_support.Outcome.Finished in
  let fault_applied = ref false in
  let apply_fault () =
    match config.fault with
    | Some f when (not !fault_applied) && ctr.Counters.instrs >= f.at_instr
      -> (
        fault_applied := true;
        match f.target with
        | Flip_reg (r, b) -> st.regs.(r) <- mask32 (st.regs.(r) lxor (1 lsl b))
        | Flip_mem (addr, b) ->
            let v = Memimage.read mem ~width:8 addr in
            Memimage.write mem ~width:8 addr
              (Int64.logxor v (Int64.of_int (1 lsl b)))
        | Flip_delta b -> st.delta <- st.delta lxor (1 lsl b))
    | _ -> ()
  in
  (* --- intermittent-power machinery ------------------------------------ *)
  (* One capture buffer per run; capture and restore are allocation-free
     (the pre-store policy checkpoints on every store). *)
  let saved = Checkpoint.create ~num_regs in
  let restores_since_ckpt = ref 0 in
  let degraded = ref false in
  (* instr count at the last checkpoint or restore: re-executed (wasted)
     work at an outage is what ran since the last resume point, not since
     the checkpoint — consecutive strikes without an intervening
     checkpoint must not re-count earlier losses *)
  let resumed_at = ref 0 in
  (* net useful instrs captured by the last checkpoint.  A checkpoint
     only counts as progress — and only then resets the retry budget —
     if it snapshots a state further along than the previous one;
     re-checkpointing the same spot after a rollback must not. *)
  let last_ckpt_net = ref (-1) in
  let take_checkpoint () =
    ctr.Counters.checkpoint_bytes <-
      ctr.Counters.checkpoint_bytes
      + Checkpoint.cost_bytes ~num_regs ~dirty:(Memimage.journal_pending mem);
    Memimage.journal_commit mem;
    Array.blit st.regs 0 saved.Checkpoint.s_regs 0 num_regs;
    saved.Checkpoint.s_pc <- st.pc;
    saved.Checkpoint.s_delta <- st.delta;
    saved.Checkpoint.s_mode <- st.mode;
    saved.Checkpoint.s_cmp_a <- st.cmp_a;
    saved.Checkpoint.s_cmp_b <- st.cmp_b;
    saved.Checkpoint.s_cmp_width8 <- st.cmp_width8;
    saved.Checkpoint.s_last_load_dest <- st.last_load_dest;
    saved.Checkpoint.s_at_instrs <- ctr.Counters.instrs;
    resumed_at := ctr.Counters.instrs;
    (let net = ctr.Counters.instrs - ctr.Counters.reexec_instrs in
     if net > !last_ckpt_net then begin
       last_ckpt_net := net;
       restores_since_ckpt := 0
     end);
    ctr.Counters.checkpoints <- ctr.Counters.checkpoints + 1;
    stall Checkpoint.checkpoint_cycles `Other
  in
  let restore_checkpoint max_retries =
    ctr.Counters.restores <- ctr.Counters.restores + 1;
    ctr.Counters.reexec_instrs <-
      ctr.Counters.reexec_instrs + (ctr.Counters.instrs - !resumed_at);
    resumed_at := ctr.Counters.instrs;
    Memimage.journal_undo mem;
    Array.blit saved.Checkpoint.s_regs 0 st.regs 0 num_regs;
    st.pc <- saved.Checkpoint.s_pc;
    st.delta <- saved.Checkpoint.s_delta;
    st.mode <- saved.Checkpoint.s_mode;
    st.cmp_a <- saved.Checkpoint.s_cmp_a;
    st.cmp_b <- saved.Checkpoint.s_cmp_b;
    st.cmp_width8 <- saved.Checkpoint.s_cmp_width8;
    st.last_load_dest <- saved.Checkpoint.s_last_load_dest;
    st.loaded <- -1;
    stall Checkpoint.restore_cycles `Other;
    incr restores_since_ckpt;
    (* Livelock detection: repeated restores with no forward-progress
       checkpoint in between mean every outage precedes the next commit
       point (re-checkpointing the same spot does not count — see
       [last_ckpt_net]).  Degrade once to additionally checkpoint before
       every store; if even that cannot outrun the outages, give up. *)
    if !restores_since_ckpt > max_retries then
      if not !degraded then begin
        degraded := true;
        ctr.Counters.livelock_degrades <- ctr.Counters.livelock_degrades + 1
      end
      else if !restores_since_ckpt > 2 * max_retries then begin
        outcome := Bs_support.Outcome.Livelock;
        st.halted <- true
      end
  in
  (match config.power with
  | Some _ ->
      (* boot commit: entry state (arguments included) survives the
         first outage *)
      Memimage.journal_start mem;
      take_checkpoint ()
  | None -> ());
  (* decide once per step-kind, not once per step: checkpoint/outage
     policy evaluation is shared verbatim between the classic and hooked
     threaded loops *)
  let power_step m =
    match config.power with
    | None -> false
    | Some pw ->
        let want_ckpt =
          (match pw.policy with
          | Checkpoint.Interval n ->
              ctr.Counters.instrs - saved.Checkpoint.s_at_instrs >= n
          | Checkpoint.Pre_store -> m land meta_store <> 0
          | Checkpoint.Pre_speculation -> m land meta_slice <> 0)
          || (!degraded && m land meta_store <> 0)
        in
        if want_ckpt then take_checkpoint ();
        if Powertrace.fires pw.trace ~instrs:ctr.Counters.instrs ~pc:st.pc
        then begin
          restore_checkpoint pw.max_retries;
          true
        end
        else false
  in
  (match config.engine with
  | Threaded | Jit ->
      (* --- closure-compiled engines (see [Superblock]) ----------------- *)
      let cx =
        { Superblock.st; ctr; mem; icache; dcache; l2;
          pc_counts = misspec_pc_counts; prog = p; fuel = config.fuel }
      in
      let bodies = compile_bodies cx in
      let dispatch =
        (* traces fuse multiple instructions into one closure, so they are
           only sound when nothing can strike between two instructions *)
        if config.engine = Jit && config.power = None && config.fault = None
        then install_jit cx bodies
        else bodies
      in
      let ncode = Array.length code in
      let fuel = config.fuel in
      if config.power = None && config.fault = None then
        (* fast loop: bounds, fetch, charge, fuel, one indirect call *)
        while not st.halted do
          let pc = st.pc in
          if pc < 0 || pc >= ncode then
            raise (Sim_trap (Bs_support.Outcome.Pc_out_of_range pc));
          Superblock.fetch cx pc;
          ctr.Counters.instrs <- ctr.Counters.instrs + 1;
          ctr.Counters.cycles <- ctr.Counters.cycles + 1;
          if ctr.Counters.instrs > fuel then begin
            outcome := Bs_support.Outcome.Out_of_fuel;
            st.halted <- true
          end
          else st.pc <- (Array.unsafe_get dispatch pc) ()
        done
      else
        (* hooked loop: the classic step order with checkpoint/outage and
           fault hooks between the slice-mode check and the body *)
        while not st.halted do
          let pc = st.pc in
          if pc < 0 || pc >= ncode then
            raise (Sim_trap (Bs_support.Outcome.Pc_out_of_range pc));
          let m = Array.unsafe_get meta pc in
          if m land meta_slice <> 0 && st.mode = Isa.Classic then
            raise (Sim_trap Bs_support.Outcome.Classic_mode_slice);
          if not (power_step m) then begin
            Superblock.fetch cx pc;
            ctr.Counters.instrs <- ctr.Counters.instrs + 1;
            ctr.Counters.cycles <- ctr.Counters.cycles + 1;
            if ctr.Counters.instrs > fuel then begin
              outcome := Bs_support.Outcome.Out_of_fuel;
              st.halted <- true
            end
            else begin
              apply_fault ();
              let nx = (Array.unsafe_get dispatch pc) () in
              if not st.halted then st.pc <- nx
            end
          end
        done
  | Classic ->
  while not st.halted do
    if st.pc < 0 || st.pc >= Array.length code then
      raise (Sim_trap (Bs_support.Outcome.Pc_out_of_range st.pc));
    let insn = Array.unsafe_get code st.pc in
    let m = Array.unsafe_get meta st.pc in
    if m land meta_slice <> 0 && st.mode = Isa.Classic then
      raise (Sim_trap Bs_support.Outcome.Classic_mode_slice);
    let outage = power_step m in
    if not outage then begin
    fetch st.pc;
    ctr.Counters.instrs <- ctr.Counters.instrs + 1;
    ctr.Counters.cycles <- ctr.Counters.cycles + 1;
    if ctr.Counters.instrs > config.fuel then begin
      outcome := Bs_support.Outcome.Out_of_fuel;
      st.halted <- true
    end
    else begin
    apply_fault ();
    (match m land meta_prov_mask with
    | 1 -> ctr.Counters.spill_loads <- ctr.Counters.spill_loads + 1
    | 2 -> ctr.Counters.spill_stores <- ctr.Counters.spill_stores + 1
    | 3 -> ctr.Counters.copies <- ctr.Counters.copies + 1
    | _ -> ());
    st.next <- st.pc + 1;
    st.loaded <- -1;
    (match insn with
    | MOV (d, s) ->
        check1 s;
        write_reg st ctr d (read_reg st ctr s)
    | MOVW (d, v) -> write_reg st ctr d v
    | MOVT (d, v) ->
        check1 d;
        write_reg st ctr d ((st.regs.(d) land 0xFFFF) lor (v lsl 16))
    | ALU (op, d, n, o) ->
        (match o with Reg m -> check2 n m | Imm _ -> check1 n);
        alu32_count ();
        let a = read_reg st ctr n in
        let b = match o with Reg m -> read_reg st ctr m | Imm v -> v in
        let r =
          match op with
          | OpAdd -> a + b
          | OpSub -> a - b
          | OpAnd -> a land b
          | OpOrr -> a lor b
          | OpEor -> a lxor b
          | OpLsl -> a lsl (b land 31)
          | OpLsr -> (a land 0xFFFFFFFF) lsr (b land 31)
          | OpAsr ->
              let sa = if a land 0x80000000 <> 0 then a - 0x100000000 else a in
              sa asr (b land 31)
        in
        write_reg st ctr d r
    | MUL (d, n, m) ->
        check2 n m;
        ctr.Counters.mul_ops <- ctr.Counters.mul_ops + 1;
        stall mul_penalty `Other;
        write_reg st ctr d (read_reg st ctr n * read_reg st ctr m)
    | DIV (sg, d, n, m) ->
        check2 n m;
        ctr.Counters.div_ops <- ctr.Counters.div_ops + 1;
        stall div_penalty `Other;
        let a = read_reg st ctr n and b = read_reg st ctr m in
        if b = 0 then raise (Sim_trap Bs_support.Outcome.Division_by_zero);
        let r =
          match sg with
          | Unsigned -> a / b
          | Signed ->
              let s v = if v land 0x80000000 <> 0 then v - 0x100000000 else v in
              s a / s b
        in
        write_reg st ctr d r
    | CMP (n, o) ->
        (match o with Reg m -> check2 n m | Imm _ -> check1 n);
        alu32_count ();
        st.cmp_a <- read_reg st ctr n;
        st.cmp_b <- (match o with Reg m -> read_reg st ctr m | Imm v -> v);
        st.cmp_width8 <- false
    | CSET (c, d) ->
        alu32_count ();
        write_reg st ctr d (if eval_cond st c then 1 else 0)
    | B t ->
        st.next <- t;
        stall branch_penalty `Branch
    | BC (c, t) ->
        alu32_count ();
        if eval_cond st c then begin
          st.next <- t;
          stall branch_penalty `Branch
        end
    | BL t ->
        write_reg st ctr lr (st.pc + 1);
        st.next <- t;
        stall branch_penalty `Branch
    | BX_LR ->
        st.next <- read_reg st ctr lr;
        stall branch_penalty `Branch
    | LDR (w, sg, d, n, off) ->
        check1 n;
        let addr = (read_reg st ctr n + off) land 0xFFFFFFFF in
        ctr.Counters.loads <- ctr.Counters.loads + 1;
        mem_access addr;
        let width = match w with W8 -> 8 | W16 -> 16 | W32 -> 32 in
        let v = Memimage.read_int mem ~width addr in
        let v =
          match (sg, w) with
          | Signed, W8 -> if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v
          | Signed, W16 -> if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v
          | _ -> v
        in
        write_reg st ctr d v;
        st.loaded <- d
    | STR (w, s, n, off) ->
        check2 s n;
        let addr = (read_reg st ctr n + off) land 0xFFFFFFFF in
        ctr.Counters.stores <- ctr.Counters.stores + 1;
        mem_access addr;
        let width = match w with W8 -> 8 | W16 -> 16 | W32 -> 32 in
        Memimage.write_int mem ~width addr (read_reg st ctr s)
    | SXT (w, d, s) ->
        check1 s;
        alu32_count ();
        let v = read_reg st ctr s in
        let r =
          match w with
          | W8 -> if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v land 0xFF
          | W16 -> if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v land 0xFFFF
          | W32 -> v
        in
        write_reg st ctr d r
    | UXT (w, d, s) ->
        check1 s;
        alu32_count ();
        let v = read_reg st ctr s in
        let r = match w with W8 -> v land 0xFF | W16 -> v land 0xFFFF | W32 -> v in
        write_reg st ctr d r
    | BALU (op, d, n, o) -> (
        check1 n.sl_reg;
        alu8_count ();
        let a = read_slice st ctr n in
        let b =
          match o with Sl s -> read_slice st ctr s | BImm v -> v land 0xFF
        in
        match op with
        | BAdd ->
            let r = a + b in
            if r > 0xFF then misspeculate ctr misspec_pc_counts st
            else write_slice st ctr d r
        | BSub ->
            let r = a - b in
            if r < 0 then misspeculate ctr misspec_pc_counts st
            else write_slice st ctr d r
        | BAnd -> write_slice st ctr d (a land b)
        | BOrr -> write_slice st ctr d (a lor b)
        | BEor -> write_slice st ctr d (a lxor b))
    | BCMPS (n, o) ->
        alu8_count ();
        st.cmp_a <- read_slice st ctr n;
        st.cmp_b <- (match o with Sl s -> read_slice st ctr s | BImm v -> v land 0xFF);
        st.cmp_width8 <- true
    | BLDRS (d, n, x) ->
        check1 n;
        let off =
          match x with BOff o -> o | BIdx i -> read_slice st ctr i
        in
        let addr = (read_reg st ctr n + off) land 0xFFFFFFFF in
        ctr.Counters.loads <- ctr.Counters.loads + 1;
        mem_access addr;
        let v = Memimage.read_int mem ~width:32 addr in
        if v land 0xFFFFFF00 <> 0 then misspeculate ctr misspec_pc_counts st
        else begin
          write_slice st ctr d v;
          st.loaded <- d.sl_reg
        end
    | BLDRB (d, n, x) ->
        check1 n;
        let off =
          match x with BOff o -> o | BIdx i -> read_slice st ctr i
        in
        let addr = (read_reg st ctr n + off) land 0xFFFFFFFF in
        ctr.Counters.loads <- ctr.Counters.loads + 1;
        mem_access addr;
        write_slice st ctr d (Memimage.read_int mem ~width:8 addr);
        st.loaded <- d.sl_reg
    | BSTRB (s, n, x) ->
        check2 s.sl_reg n;
        let off =
          match x with BOff o -> o | BIdx i -> read_slice st ctr i
        in
        let addr = (read_reg st ctr n + off) land 0xFFFFFFFF in
        ctr.Counters.stores <- ctr.Counters.stores + 1;
        mem_access addr;
        Memimage.write_int mem ~width:8 addr (read_slice st ctr s)
    | BEXT (sg, d, s) ->
        check1 s.sl_reg;
        alu8_count ();
        let v = read_slice st ctr s in
        let r =
          match sg with
          | Unsigned -> v
          | Signed -> if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v
        in
        write_reg st ctr d r
    | BTRN (d, s) ->
        check1 s;
        alu8_count ();
        let v = read_reg st ctr s in
        if v land 0xFFFFFF00 <> 0 then misspeculate ctr misspec_pc_counts st
        else write_slice st ctr d v
    | BMOV (d, s) ->
        check1 s.sl_reg;
        write_slice st ctr d (read_slice st ctr s)
    | BMOVI (d, v) -> write_slice st ctr d v
    | SETDELTA v -> st.delta <- v
    | SETMODE m -> st.mode <- m
    | NOP -> ()
    | HALT -> st.halted <- true);
    st.last_load_dest <- st.loaded;
    if not st.halted then st.pc <- st.next
    end
    end
  done);
  if config.power <> None then Memimage.journal_stop mem;
  let misspec_pcs =
    List.sort compare
      (Hashtbl.fold (fun pc n acc -> (pc, n) :: acc) misspec_pc_counts [])
  in
  ctr.Counters.wall_ns <-
    int_of_float ((Unix.gettimeofday () -. t_start) *. 1e9);
  { r0 = Int64.of_int (st.regs.(0) land 0xFFFFFFFF); outcome = !outcome;
    fault_applied = !fault_applied; ctr; icache; dcache; l2; misspec_pcs }
