(** Deterministic single-bit fault injection (soft-error model).

    Faults are drawn from a seeded splitmix64 stream and applied by the
    machine model mid-run ({!Machine.config}'s [fault]); each run is
    classified against the fault-free execution and the reference
    checksum.  The interesting bucket is [Detected]: the flip pushed a
    value out of its slice, the BITSPEC overflow detector caught it, and
    the misspeculation handler's full-width re-execution repaired the
    damage — recovery hardware acting as a free soft-error net. *)

type verdict =
  | Masked                            (** correct result, no hardware event *)
  | Detected of int
      (** correct result recovered through [n] extra misspeculations *)
  | Trapped of Bs_support.Outcome.trap  (** died on a structured trap *)
  | Sdc of int64                      (** silent data corruption (bad checksum) *)
  | Hung                              (** fuel budget exhausted *)

type trial = { tfault : Machine.fault; verdict : verdict }

val verdict_name : verdict -> string
val verdict_names : string list
(** The five classification buckets, in table order. *)

val describe_fault : Machine.fault -> string
val describe_trial : trial -> string

val gen_fault :
  Bs_support.Rng.t -> max_instr:int -> mem_lo:int -> mem_hi:int ->
  Machine.fault
(** Draw one fault: a dynamic instruction index in [\[1, max_instr\]] and
    a target (register bit, memory bit in [\[mem_lo, mem_hi\]], or a Δ
    bit). *)

val gen_reg_fault :
  Bs_support.Rng.t -> max_instr:int -> Machine.fault
(** Draw a register-bit flip only — the population the bit-level
    vulnerability validation samples, where every trial maps to one
    register bit position. *)

val run_trial :
  mode:Bs_isa.Isa.mode ->
  fuel:int ->
  program:Bs_backend.Asm.program ->
  mem:(unit -> Bs_interp.Memimage.t) ->
  entry:string ->
  args:int64 list ->
  expected:int64 ->
  golden_misspecs:int ->
  Machine.fault ->
  trial
(** Run the program once with the fault injected ([mem] must build a fresh
    image per call) and classify the outcome against [expected] (the
    reference checksum) and [golden_misspecs] (the fault-free
    misspeculation count).  Never raises: traps become [Trapped]. *)

type summary = {
  trials : int;
  masked : int;
  detected : int;
  trapped : int;
  sdc : int;
  hung : int;
}

val summarize : trial list -> summary
val summary_rows : summary -> (string * int) list
