(** Power-failure traces for intermittent execution.

    A trace decides, per dynamic instruction, whether the supply browns
    out before that instruction executes.  All randomness is drawn from
    a seeded splitmix64 stream, so a trace is a pure function of
    (seed, distribution) and campaigns that pre-draw per-trial seeds are
    byte-identical at any [--jobs] value. *)

(** Outage distributions. *)
type dist =
  | Periodic of int
      (** one outage every [n] instructions, seeded initial phase *)
  | Exponential of float
      (** i.i.d. exponential gaps with the given mean — the memoryless
          harvested-energy supply model *)
  | Adversarial of { every : int }
      (** recharge for [every] instructions, then strike at the next
          {e hot} PC — a speculative-instruction site from the
          program's srcmap *)

type t

val create : ?seed:int64 -> ?hot_pcs:int list -> dist -> t
(** [hot_pcs] are the PCs an [Adversarial] trace strikes at (ignored by
    the other distributions; an adversarial trace with no hot PCs never
    fires).  @raise Invalid_argument on a non-positive period/mean. *)

val fires : t -> instrs:int -> pc:int -> bool
(** [fires t ~instrs ~pc] — does an outage strike before the instruction
    at [pc] (the [instrs]-th dynamic instruction) executes?  Advances
    the trace's internal schedule when it returns [true].  [instrs]
    must be non-decreasing across calls. *)

val dist_to_string : dist -> string
(** ["periodic:N"], ["exp:N"], ["hotpc:N"] — the CLI / reproducer-header
    syntax. *)

val dist_of_string : string -> dist option
