(* Set-associative LRU cache model.

   The configuration mirrors the paper's platform: 8 KiB 4-way L1
   instruction and data caches with 32-byte lines, backed by a 256 KiB
   8-way L2 and fixed-latency DRAM.

   Tags and LRU stamps live in flat [sets * ways] arrays indexed by
   [set * ways + way]: the way scan on the simulator's hottest path is a
   handful of adjacent unchecked loads instead of a bounds-checked
   two-level indirection.  Every index is derived from [set_mask] and
   [ways], so it is in range by construction. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bytes : int;
  line_shift : int;              (* log2 line_bytes *)
  set_mask : int;                (* sets - 1; geometry is power-of-two *)
  set_shift : int;               (* log2 sets *)
  tags : int array;              (* [set * ways + way] = tag, -1 empty *)
  stamp : int array;             (* LRU timestamps, same layout *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable last_line : int;       (* line of the previous access, -1 none *)
  mutable last_slot : int;       (* flat slot it resides in *)
}

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else go (k + 1) in
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Cache.create: geometry must be a power of two"
  else go 0

let create ~name ~size_bytes ~ways ~line_bytes =
  let lines = size_bytes / line_bytes in
  let sets = lines / ways in
  { name; sets; ways; line_bytes;
    line_shift = log2_exact line_bytes;
    set_mask = sets - 1;
    set_shift = log2_exact sets;
    tags = Array.make (sets * ways) (-1);
    stamp = Array.make (sets * ways) 0;
    tick = 0; hits = 0; misses = 0; last_line = -1; last_slot = 0 }

(** [access t addr] looks the address up, updating LRU state and filling on
    miss.  Returns [true] on hit. *)
let access t addr =
  t.tick <- t.tick + 1;
  let line = addr lsr t.line_shift in
  (* Back-to-back accesses to the same line always hit (nothing between
     two accesses of this cache can evict it), so the common sequential
     case skips the way scan; hit/miss/LRU state stays exact. *)
  if line = t.last_line then begin
    t.hits <- t.hits + 1;
    Array.unsafe_set t.stamp t.last_slot t.tick;
    true
  end
  else begin
    let set = line land t.set_mask in
    let tag = line lsr t.set_shift in
    let base = set * t.ways in
    let tags = t.tags and stamp = t.stamp in
    let hit_slot = ref (-1) in
    for w = base to base + t.ways - 1 do
      if Array.unsafe_get tags w = tag then begin
        hit_slot := w;
        Array.unsafe_set stamp w t.tick
      end
    done;
    t.last_line <- line;
    if !hit_slot >= 0 then begin
      t.hits <- t.hits + 1;
      t.last_slot <- !hit_slot;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      (* evict LRU *)
      let victim = ref base in
      for w = base + 1 to base + t.ways - 1 do
        if Array.unsafe_get stamp w < Array.unsafe_get stamp !victim then
          victim := w
      done;
      Array.unsafe_set tags !victim tag;
      Array.unsafe_set stamp !victim t.tick;
      t.last_slot <- !victim;
      false
    end
  end

(** [bump_hits t n] records [n] guaranteed same-line hits to the line of
    the previous access, exactly as if {!access} had been called [n] more
    times with addresses in that line: the tick advances by [n], the hit
    counter by [n], and the line's LRU stamp moves to the new tick.  The
    caller must guarantee nothing touched this cache since the last
    access (the trace-JIT batches the fetches of a fused superblock this
    way: within one straight-line run, only the first access of each
    instruction-cache line can miss). *)
let bump_hits t n =
  if n > 0 then begin
    t.tick <- t.tick + n;
    t.hits <- t.hits + n;
    Array.unsafe_set t.stamp t.last_slot t.tick
  end

let accesses t = t.hits + t.misses

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.last_line <- -1;
  t.last_slot <- 0

(** The paper's memory hierarchy, fresh. *)
let l1i () = create ~name:"I$" ~size_bytes:(8 * 1024) ~ways:4 ~line_bytes:32
let l1d () = create ~name:"D$" ~size_bytes:(8 * 1024) ~ways:4 ~line_bytes:32
let l2 () = create ~name:"L2" ~size_bytes:(256 * 1024) ~ways:8 ~line_bytes:32
