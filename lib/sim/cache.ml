(* Set-associative LRU cache model.

   The configuration mirrors the paper's platform: 8 KiB 4-way L1
   instruction and data caches with 32-byte lines, backed by a 256 KiB
   8-way L2 and fixed-latency DRAM. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bytes : int;
  line_shift : int;              (* log2 line_bytes *)
  set_mask : int;                (* sets - 1; geometry is power-of-two *)
  set_shift : int;               (* log2 sets *)
  tags : int array array;        (* [set].[way] = tag, -1 empty *)
  stamp : int array array;       (* LRU timestamps *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable last_line : int;       (* line of the previous access, -1 none *)
  mutable last_way : int;        (* way it resides in *)
}

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else go (k + 1) in
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Cache.create: geometry must be a power of two"
  else go 0

let create ~name ~size_bytes ~ways ~line_bytes =
  let lines = size_bytes / line_bytes in
  let sets = lines / ways in
  { name; sets; ways; line_bytes;
    line_shift = log2_exact line_bytes;
    set_mask = sets - 1;
    set_shift = log2_exact sets;
    tags = Array.make_matrix sets ways (-1);
    stamp = Array.make_matrix sets ways 0;
    tick = 0; hits = 0; misses = 0; last_line = -1; last_way = 0 }

(** [access t addr] looks the address up, updating LRU state and filling on
    miss.  Returns [true] on hit. *)
let access t addr =
  t.tick <- t.tick + 1;
  let line = addr lsr t.line_shift in
  (* Back-to-back accesses to the same line always hit (nothing between
     two accesses of this cache can evict it), so the common sequential
     case skips the way scan; hit/miss/LRU state stays exact. *)
  if line = t.last_line then begin
    t.hits <- t.hits + 1;
    t.stamp.(line land t.set_mask).(t.last_way) <- t.tick;
    true
  end
  else begin
    let set = line land t.set_mask in
    let tag = line lsr t.set_shift in
    let ways_tags = t.tags.(set) and ways_stamp = t.stamp.(set) in
    let hit_way = ref (-1) in
    for w = 0 to t.ways - 1 do
      if ways_tags.(w) = tag then begin
        hit_way := w;
        ways_stamp.(w) <- t.tick
      end
    done;
    t.last_line <- line;
    if !hit_way >= 0 then begin
      t.hits <- t.hits + 1;
      t.last_way <- !hit_way;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      (* evict LRU *)
      let victim = ref 0 in
      for w = 1 to t.ways - 1 do
        if ways_stamp.(w) < ways_stamp.(!victim) then victim := w
      done;
      ways_tags.(!victim) <- tag;
      ways_stamp.(!victim) <- t.tick;
      t.last_way <- !victim;
      false
    end
  end

let accesses t = t.hits + t.misses

let reset t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) (-1)) t.tags;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.stamp;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.last_line <- -1;
  t.last_way <- 0

(** The paper's memory hierarchy, fresh. *)
let l1i () = create ~name:"I$" ~size_bytes:(8 * 1024) ~ways:4 ~line_bytes:32
let l1d () = create ~name:"D$" ~size_bytes:(8 * 1024) ~ways:4 ~line_bytes:32
let l2 () = create ~name:"L2" ~size_bytes:(256 * 1024) ~ways:8 ~line_bytes:32
