(** Architectural checkpoints for intermittent-power execution.

    A checkpoint captures everything a power failure would lose: the
    register file (slice views alias register bytes, so one copy covers
    both), the PC, the Δ redirect register, the mode bit and the compare
    state.  Memory is rolled back through {!Bs_interp.Memimage}'s undo
    journal instead of being copied, so a checkpoint's memory cost is
    only the dirty bytes flushed at commit time. *)

(** When the machine takes checkpoints. *)
type policy =
  | Interval of int   (** every [n] dynamic instructions *)
  | Pre_store         (** before every memory store *)
  | Pre_speculation   (** before every slice instruction *)

val policy_name : policy -> string
(** ["interval:N"], ["pre-store"], ["pre-spec"]. *)

val policy_of_string : string -> policy option

(** Saved architectural state.  All-mutable and allocated once per run:
    capture must not allocate (the pre-store policy checkpoints on every
    store). *)
type saved = {
  s_regs : int array;
  mutable s_pc : int;
  mutable s_delta : int;
  mutable s_mode : Bs_isa.Isa.mode;
  mutable s_cmp_a : int;
  mutable s_cmp_b : int;
  mutable s_cmp_width8 : bool;
  mutable s_last_load_dest : int;
  mutable s_at_instrs : int;  (** dynamic instruction count at capture *)
}

val create : num_regs:int -> saved
(** A zeroed capture buffer. *)

val cost_bytes : num_regs:int -> dirty:int -> int
(** Bytes a checkpoint commit writes to non-volatile storage: the
    register file, the control/compare state, and the [dirty] journalled
    memory bytes. *)

val checkpoint_cycles : int
(** Pipeline cost of a checkpoint commit. *)

val restore_cycles : int
(** Pipeline cost of a power-fail restore (supply ramp + refill). *)
