(** Activity counters — the simulator's equivalent of the paper's
    gate-level activity tracking, consumed by the energy model
    (Figure 9) and the microarchitectural breakdowns (Figures 10
    and 11).  All fields are mutable: the machine increments them in
    its fetch-execute loop. *)

type t = {
  mutable cycles : int;
  mutable instrs : int;  (** dynamic instructions *)
  mutable misspecs : int;
  mutable reg_read32 : int;  (** register file (Figure 11) *)
  mutable reg_read8 : int;
  mutable reg_write32 : int;
  mutable reg_write8 : int;
  mutable alu32 : int;  (** ALU activity *)
  mutable alu8 : int;
  mutable mul_ops : int;
  mutable div_ops : int;
  mutable loads : int;  (** memory *)
  mutable stores : int;
  mutable spill_loads : int;  (** spill traffic (Figure 10) *)
  mutable spill_stores : int;
  mutable copies : int;
  mutable stall_cycles : int;  (** stalls *)
  mutable branch_stalls : int;
  mutable load_use_stalls : int;
  mutable checkpoints : int;  (** intermittent-power execution *)
  mutable checkpoint_bytes : int;
      (** register file + control state + dirty memory flushed *)
  mutable restores : int;
  mutable reexec_instrs : int;
      (** subset of [instrs] re-executed after power-fail restores *)
  mutable livelock_degrades : int;
      (** times the checkpoint policy fell back to checkpoint-every-store *)
  mutable wall_ns : int;
      (** host wall-clock nanoseconds the simulator spent on this run.
          Non-deterministic, so excluded from {!to_assoc}; the input of
          {!simulated_mips}. *)
}

val create : unit -> t
(** All counters at zero. *)

val reg_reads : t -> int
val reg_writes : t -> int
val reg_accesses : t -> int

val add : into:t -> t -> unit
(** [add ~into t] accumulates every field of [t] into [into]
    ([wall_ns] included, so aggregated counters keep a meaningful
    {!simulated_mips}). *)

val simulated_mips : t -> float
(** Simulated millions of instructions per host wall-clock second —
    [instrs / wall_ns * 1000].  [0.0] when the run carries no timing. *)

val to_assoc : t -> (string * int) list
(** Every counter as a (name, value) row, in declaration order — a
    stable shape for metric dumps and JSON emission.  [wall_ns] is
    excluded: it is host-dependent, and this dump stays byte-identical
    across runs and [--jobs] values. *)
