(** Set-associative LRU cache model.  The preset constructors mirror the
    paper's platform: 8 KiB 4-way L1 instruction and data caches with
    32-byte lines, backed by a 256 KiB 8-way L2. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bytes : int;
  line_shift : int;
  set_mask : int;
  set_shift : int;
  tags : int array;
  stamp : int array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable last_line : int;
  mutable last_slot : int;
}

val create : name:string -> size_bytes:int -> ways:int -> line_bytes:int -> t

val access : t -> int -> bool
(** [access t addr] updates LRU state (filling on miss) and returns
    [true] on hit. *)

val bump_hits : t -> int -> unit
(** [bump_hits t n] records [n] guaranteed same-line hits to the line of
    the previous access in one step — byte-identical to calling {!access}
    [n] more times with addresses in that line.  Only valid when nothing
    has touched the cache since the last access; the superblock trace-JIT
    uses it to batch the fetches of a fused straight-line run. *)

val accesses : t -> int
(** Total accesses (hits + misses). *)

val reset : t -> unit

val l1i : unit -> t
val l1d : unit -> t
val l2 : unit -> t
