open Bs_support

(* Power-failure traces for intermittent execution.

   A trace decides, per dynamic instruction, whether the supply browns
   out before that instruction executes.  Everything is drawn up front
   from a seeded splitmix64 stream, so a trace is a pure function of
   (seed, distribution): campaigns pre-draw one seed per trial and stay
   byte-identical at any job count.

   Three outage distributions:
   - [Periodic n]: an outage every [n] dynamic instructions, with a
     seeded initial phase so different trials sample different cut
     points of the same program;
   - [Exponential mean]: i.i.d. exponential gaps — the standard model of
     a harvested-energy supply (capacitor charge crossing the brown-out
     threshold is memoryless across environments);
   - [Adversarial { every }]: after recharging for [every] instructions
     the outage waits for the next {e hot} PC — a speculative
     instruction site (drawn from the program's srcmap) — and strikes
     exactly there, probing the window between a slice operation and its
     Δ-redirect bookkeeping. *)

type dist =
  | Periodic of int
  | Exponential of float
  | Adversarial of { every : int }

type t = {
  dist : dist;
  rng : Rng.t;
  hot : (int, unit) Hashtbl.t;
  mutable next_at : int;   (* instr count at/after which the next outage fires *)
}

(* Exponential gap, at least one instruction.  1 - u avoids log 0. *)
let exp_gap rng mean =
  let u = Rng.float rng in
  max 1 (int_of_float (ceil (-.mean *. log (1.0 -. u))))

let create ?(seed = 1L) ?(hot_pcs = []) dist =
  (match dist with
  | Periodic n when n <= 0 ->
      invalid_arg "Powertrace.create: period must be positive"
  | Exponential m when m <= 0.0 ->
      invalid_arg "Powertrace.create: mean must be positive"
  | Adversarial { every } when every <= 0 ->
      invalid_arg "Powertrace.create: recharge must be positive"
  | _ -> ());
  let rng = Rng.create seed in
  let hot = Hashtbl.create 16 in
  List.iter (fun pc -> Hashtbl.replace hot pc ()) hot_pcs;
  let next_at =
    match dist with
    | Periodic n -> 1 + Rng.int rng n
    | Exponential mean -> exp_gap rng mean
    | Adversarial { every } -> 1 + Rng.int rng every
  in
  { dist; rng; hot; next_at }

let fires t ~instrs ~pc =
  if instrs < t.next_at then false
  else
    match t.dist with
    | Periodic n ->
        t.next_at <- instrs + n;
        true
    | Exponential mean ->
        t.next_at <- instrs + exp_gap t.rng mean;
        true
    | Adversarial { every } ->
        (* charged: strike only at a hot pc (never, if there are none) *)
        if Hashtbl.mem t.hot pc then begin
          t.next_at <- instrs + every;
          true
        end
        else false

(* --- rendering (CLI and reproducer headers) ----------------------------- *)

let dist_to_string = function
  | Periodic n -> "periodic:" ^ string_of_int n
  | Exponential m -> "exp:" ^ string_of_int (int_of_float m)
  | Adversarial { every } -> "hotpc:" ^ string_of_int every

let dist_of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
      let kind = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match (kind, int_of_string_opt v) with
      | "periodic", Some n when n > 0 -> Some (Periodic n)
      | "exp", Some n when n > 0 -> Some (Exponential (float_of_int n))
      | "hotpc", Some n when n > 0 -> Some (Adversarial { every = n })
      | _ -> None)
