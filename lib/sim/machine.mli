(** The BSARM machine model (§3.5): a 32-bit, single-issue, in-order
    6-stage pipeline with the BITSPEC misspeculation hardware.

    Register slices alias register bytes exactly as in hardware.  The
    slice ALU detects misspeculation from carry/overflow at the slice
    boundary; on misspeculation the result is not written and the PC is
    displaced by the Δ special register, landing on the skeleton branch
    that reaches the current region's handler (§3.3.4).

    Timing: 1 cycle per instruction, +2 for taken branches, +1 for
    load-use hazards, +2 MUL, +10 DIV, plus the memory hierarchy (L1 hit
    0, L2 8, DRAM 60 extra cycles). *)

exception Sim_trap of Bs_support.Outcome.trap
(** Structured trap: division by zero, unknown entry, PC escape,
    classic-mode slice use.  Fuel exhaustion does NOT raise — it is
    reported as [Out_of_fuel] in the result's [outcome], the same variant
    the reference interpreter uses.  (This is the same exception as
    {!Superblock.Sim_trap}; either name catches it.) *)

(** Single-bit soft-error injection (the fault model of the resilience
    harness): one flip, applied just before the [at_instr]-th dynamic
    instruction executes. *)
type fault_target =
  | Flip_reg of int * int
      (** [(reg, bit)], bit 0-31; bits [8k..8k+7] alias slice [(reg, k)] *)
  | Flip_mem of int * int   (** [(byte address, bit)], bit 0-7 *)
  | Flip_delta of int       (** bit of the Δ redirect register *)

type fault = { at_instr : int; target : fault_target }

(** Intermittent-power execution: run under a seeded outage trace with a
    checkpoint policy.  On an outage the machine rolls back to the last
    checkpoint (registers via {!Checkpoint.saved}, memory via the
    {!Bs_interp.Memimage} undo journal) and re-executes.  [max_retries]
    consecutive restores without an intervening checkpoint degrade the
    policy to additionally checkpoint before every store; twice that
    gives up with the [Livelock] outcome.  Checkpoint and restore costs
    are charged to the cycle counter and tracked in {!Counters}
    ([checkpoints], [checkpoint_bytes], [restores], [reexec_instrs],
    [livelock_degrades]). *)
type power = {
  trace : Powertrace.t;
  policy : Checkpoint.policy;
  max_retries : int;
}

(** Dispatch engine.  All three produce byte-identical results —
    counters, outcome, memory image, cache state; they differ only in
    host wall-clock speed ([Counters.wall_ns] / [simulated_mips]).

    - [Classic]: the reference fetch-decode-execute loop, one big match
      per step.  The baseline the others are differenced against.
    - [Threaded]: direct-threaded dispatch — per-PC pre-compiled
      closures, one indirect call per step.
    - [Jit]: threaded dispatch plus the superblock trace-JIT
      ({!Superblock}) fusing hot straight-line runs into single closures
      with guard exits.  Under a power trace or fault injection the JIT
      degenerates to threaded dispatch (every instruction is a potential
      checkpoint/outage/fault boundary). *)
type engine = Classic | Threaded | Jit

type config = {
  mode : Bs_isa.Isa.mode;  (** Classic disables the slice extension (§3.4) *)
  fuel : int;              (** dynamic instruction budget *)
  fault : fault option;    (** inject one bit flip during the run *)
  power : power option;    (** run under injected power failures *)
  engine : engine;         (** dispatch engine; results are identical *)
}

val default_config : config
(** Bitspec mode, 10^9 fuel, no fault, no power failures, [Jit] engine. *)

type result = {
  r0 : int64;          (** the return register after HALT *)
  outcome : Bs_support.Outcome.t;
      (** [Finished], or [Out_of_fuel] when the budget ran out ([r0] is
          then meaningless) *)
  fault_applied : bool;   (** the configured fault's trigger was reached *)
  ctr : Counters.t;    (** activity counters (figures 8-11), plus the
                           host [wall_ns] feeding [simulated_mips] *)
  icache : Cache.t;
  dcache : Cache.t;
  l2 : Cache.t;
  misspec_pcs : (int * int) list;
      (** (pc, count) per misspeculating instruction, sorted by pc; the
          counts sum to [ctr.misspecs].  Resolve each pc to its source
          variable/line via [Bs_backend.Asm.program.srcmap]. *)
}

val run :
  ?config:config ->
  Bs_backend.Asm.program ->
  Bs_interp.Memimage.t ->
  entry:string ->
  args:int64 list ->
  result
(** Execute [entry] with the stack-args calling convention until the
    bootstrap HALT.  Arguments are pushed onto the simulated stack; the
    result is read from R0.  Fuel exhaustion is returned as the
    [Out_of_fuel] outcome.
    @raise Sim_trap on division by zero, PC escapes, unknown entries, or
    classic-mode slice use.
    @raise Bs_interp.Memimage.Fault when an access leaves the image. *)
